# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check crashtest scrubtest sanitize lint pmlint bench readpath-bench shard-bench pipeline-bench soak soak-bench doctor perf-gate fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full crash-consistency sweep: crash at every injection site of the demo
# workload, recover, check invariants. SITES=50 for a quick smoke pass.
SITES ?= all
crashtest:
	dune exec bin/pm_blade_cli.exe -- crashtest --sites $(SITES)

# Corruption sweep: inject seeded bit rot into PM tables, SSTables, the
# WAL and the manifest, and fail (exit 1) on any silent wrong answer,
# undetected corruption, or crash. CORRUPTIONS picks the point count.
CORRUPTIONS ?= 16
scrubtest:
	dune exec bin/pm_blade_cli.exe -- scrub --corruptions $(CORRUPTIONS)

# Sanitizer gauntlet: pmsan (persistence ordering + redundant-flush
# audit) over a clean engine workload, schedsan (happens-before races,
# lost wakeups) over the scheduling harness, and a sanitized crash-sweep
# sample. Exits 1 on any finding. SAN_SITES picks the sweep sample size.
SAN_SITES ?= 50
sanitize:
	dune exec bin/pm_blade_cli.exe -- sanitize --sites $(SAN_SITES)

# Source hygiene: no Obj.magic, no console output in lib/, no partial
# accessors in the storage core, a .mli for every lib/ module — plus the
# pmlint static analyzer for the AST-level rules.
lint:
	sh scripts/lint.sh

# Static analyzer on its own: pmlint parses every lib/ module with
# compiler-libs and enforces the protocol rules (flush-before-commit,
# checked-path, suspend-in-critical-section, metric-hygiene,
# partial-accessor); only reasoned inline allow markers silence a
# finding. Writes the machine-readable report to PMLINT.json. The
# planted leg (PMB_PLANT=pmlint_fixture scripts/check_pmlint.sh) adds
# the dirty fixtures and must fail.
pmlint:
	sh scripts/check_pmlint.sh PMLINT.json

check: build test lint

bench:
	dune exec bench/main.exe

# Read-path benchmark (block cache, PM blooms, fence pruning) with the
# liveness smoke check: fails if the cache hit ratio or the bloom filter
# rate comes out zero. Writes BENCH_readpath.json.
readpath-bench:
	sh scripts/check_readpath.sh BENCH_readpath.json

# Sharded front-door benchmark (range-sharded router, group commit,
# admission control) with the liveness smoke check: fails on zero
# batching, a shard left stalled over the hard limit at run end, or a
# 4-shard scaling ratio below 1.5x. Writes BENCH_shard.json; the gate
# compares it against the committed baseline via
#   dune exec bin/perf_gate.exe -- BENCH_shard.json <fresh>
shard-bench:
	sh scripts/check_shard.sh BENCH_shard.json

# Pipelined-compaction benchmark (staged read/merge/build/write overlap
# vs the Table III serial baseline) with the liveness smoke check: fails
# on a 4-core speedup under 1.8x, a stage with zero overlap work,
# idleness not below the serial run, or replay sanitizer findings.
# Writes BENCH_pipeline.json; the gate compares it against the committed
# baseline via
#   dune exec bin/perf_gate.exe -- BENCH_pipeline.json <fresh>
pipeline-bench:
	sh scripts/check_pipeline.sh BENCH_pipeline.json

# Chaos soak via the CLI: seeded rounds of gray faults, crash-restart
# cycles (including a crash during recovery) and bit rot, driven through
# the health-aware router, checked against a golden model. SOAK_ROUNDS
# picks the length. Exits 1 on any violation.
SOAK_ROUNDS ?= 16
soak:
	dune exec bin/pm_blade_cli.exe -- soak --rounds $(SOAK_ROUNDS)

# Chaos-soak benchmark with the availability gate: fails on any
# correctness violation, a healthy-shard within-budget ratio under 0.99,
# or a deadline-ok ratio under 0.992 (the bar a breaker-less build
# misses). Writes BENCH_soak.json; the perf gate compares it against the
# committed baseline via
#   dune exec bin/perf_gate.exe -- BENCH_soak.json <fresh>
soak-bench:
	sh scripts/check_soak.sh BENCH_soak.json

# Performance diagnosis: one YCSB-A run with per-op latency attribution —
# where each operation's simulated time went (phase breakdown), the
# amplification/stall ledger, read-path effectiveness and sanitizer
# status. Exits 1 if the attributed phases fail to cover op time.
doctor:
	dune exec bin/pm_blade_cli.exe -- doctor

# Perf-regression gate: rerun the attribution benchmark and compare its
# metrics against the committed BENCH_attr.json baseline with per-metric
# tolerances. Refresh the baseline after an intentional perf change:
#   dune exec bench/main.exe -- attr --json BENCH_attr.json
perf-gate:
	sh scripts/check_perf.sh BENCH_attr.json

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean

# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build test

bench:
	dune exec bench/main.exe

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean

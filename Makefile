# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check crashtest bench fmt clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full crash-consistency sweep: crash at every injection site of the demo
# workload, recover, check invariants. SITES=50 for a quick smoke pass.
SITES ?= all
crashtest:
	dune exec bin/pm_blade_cli.exe -- crashtest --sites $(SITES)

check: build test

bench:
	dune exec bench/main.exe

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean

bench/bench_ablate.ml: Array Compaction Core List Pmem Pmtable Report Sim Util

bench/bench_fig10.ml: Compaction Core List Pmem Printf Report Util Workload

bench/bench_fig11.ml: Compaction Core List Pmem Report Util Workload

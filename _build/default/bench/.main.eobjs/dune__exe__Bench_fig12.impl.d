bench/bench_fig12.ml: Core List Report Workload

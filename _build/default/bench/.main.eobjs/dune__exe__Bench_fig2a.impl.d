bench/bench_fig2a.ml: Array List Pmem Pmtable Printf Report Sim Util

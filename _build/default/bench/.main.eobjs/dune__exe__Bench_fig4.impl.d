bench/bench_fig4.ml: Bytes Coroutine Exec_model List Printf Report Sim Ssd

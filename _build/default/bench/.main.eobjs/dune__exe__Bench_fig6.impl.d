bench/bench_fig6.ml: Array List Pmem Pmtable Printf Report Sim Ssd Sstable String Util

bench/bench_fig7.ml: Core Coroutine Exec_model List Printf Report Sim Ssd Util

bench/bench_fig8.ml: Compaction Core List Pmem Printf Report Util

bench/bench_fig9.ml: Coroutine Exec_model List Printf Report

bench/bench_micro.ml: Analyze Array Bechamel Benchmark Bloom Compress Hashtbl Instance List Measure Pmem Pmtable Printf Report Sim Staged String Test Time Toolkit Util

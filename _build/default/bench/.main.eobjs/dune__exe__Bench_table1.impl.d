bench/bench_table1.ml: Array List Pmem Pmtable Report Sim Ssd Sstable String Util

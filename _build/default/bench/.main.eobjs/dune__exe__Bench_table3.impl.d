bench/bench_table3.ml: Coroutine Exec_model List Report

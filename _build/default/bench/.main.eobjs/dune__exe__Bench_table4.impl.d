bench/bench_table4.ml: Core List Pmem Printf Report Util

bench/bench_table5.ml: Core List Printf Report Sim Util

bench/main.mli:

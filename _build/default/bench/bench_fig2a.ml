(* Fig. 2(a) — time breakdown of flushing an array-based table to the
   PM-backed level-0: how much of a minor compaction is spent writing the
   persistent-memory device, by entry size.

   The paper's observation: past ~40 B entries, PM writes dominate (>50%),
   which is what motivates compressing the PM table. *)

let data_bytes = 2 * 1024 * 1024

let run () =
  Report.heading "Fig 2a: minor compaction time breakdown (array-based PM table)";
  let sizes = [ 8; 16; 32; 40; 64; 128; 256 ] in
  let rows =
    List.map
      (fun value_bytes ->
        let clock = Sim.Clock.create () in
        let pm = Pmem.create ~params:{ Pmem.default_params with capacity = 64 * 1024 * 1024 } clock in
        let n = data_bytes / (value_bytes + 24) in
        let rng = Util.Xoshiro.create 3 in
        let entries =
          Array.init n (fun i ->
              Util.Kv.entry
                ~key:(Util.Keys.record_key ~table_id:1 ~row_id:i)
                ~seq:(i + 1)
                (Util.Xoshiro.string rng value_bytes))
        in
        (* The memtable read side of the flush: charge DRAM iteration. *)
        let t0 = Sim.Clock.now clock in
        Sim.Clock.advance clock (float_of_int n *. 50.0);
        let pm_time s = s.Pmem.write_time +. s.Pmem.flush_time in
        let w0 = pm_time (Pmem.stats pm) in
        let tbl = Pmtable.Array_table.build pm entries in
        let total = Sim.Clock.now clock -. t0 in
        let pm_write = pm_time (Pmem.stats pm) -. w0 in
        Pmtable.Array_table.free tbl;
        [
          Printf.sprintf "%dB" value_bytes;
          Report.duration total;
          Report.duration pm_write;
          Report.pct (pm_write /. total);
        ])
      sizes
  in
  Report.table ~header:[ "entry size"; "flush time"; "PM write time"; "PM write share" ] rows;
  Report.note "paper: PM-write share exceeds 50%% once entries pass ~40B."

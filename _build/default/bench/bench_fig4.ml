(* Fig. 4 — behaviours of different compaction processes, rendered from
   actual execution. Two compaction coroutines share one core and the SSD;
   each row is one coroutine's timeline bucketed at a fixed resolution:

     1  reading an input block (S1)
     2  merging (S2)
     3  writing, blocked on the device (S3)
     .  idle / waiting

   Under synchronous writes (Fig. 4b/4c) the erratic write-buffer fill cuts
   S2 into fragments and both coroutines end up blocked in S3 together —
   the wasted CPU the paper points at. Under the flush coroutine (Fig. 4d)
   S3 never clips S2 ('q' marks the instantaneous hand-off) and the
   timelines stay dense. *)

type span = { task : int; stage : string; t0 : float; t1 : float }

let run_traced ~offload =
  let clock = Sim.Clock.create () in
  let des = Sim.Des.create clock in
  let ssd = Ssd.create ~params:{ Ssd.default_params with Ssd.channels = 1 } clock in
  let policy =
    if offload then Coroutine.Scheduler.default_flush_coroutine ~q_max:4 ()
    else Coroutine.Scheduler.default_cooperative
  in
  let sched = Coroutine.Scheduler.create ~cores:1 ~policy des ssd in
  let spans = ref [] in
  for task = 0 to 1 do
    let params =
      {
        Exec_model.Task.default with
        input_bytes = 1024 * 1024;
        value_bytes = 256;
        read_block = 128 * 1024;
        write_buffer = 192 * 1024;
        pm_input_fraction = 1.0;
        dedup_spread = 0.3;
        offload_s3 = offload;
        seed = 7 + (31 * task);
        on_stage = Some (fun stage t0 t1 -> spans := { task; stage; t0; t1 } :: !spans);
      }
    in
    Coroutine.Scheduler.spawn sched 0 (Exec_model.Task.compaction params)
  done;
  let makespan = Coroutine.Scheduler.run_to_completion sched in
  (List.rev !spans, makespan, Coroutine.Scheduler.report sched ~makespan)

let render ~title spans makespan =
  Printf.printf "\n%s (makespan %.2f ms)\n" title (makespan /. 1e6);
  let columns = 96 in
  let bucket = makespan /. float_of_int columns in
  for task = 0 to 1 do
    let line = Bytes.make columns '.' in
    List.iter
      (fun s ->
        if s.task = task then begin
          let mark =
            match s.stage with "S1" -> '1' | "S2" -> '2' | "S3" -> '3' | _ -> 'q'
          in
          let c0 = int_of_float (s.t0 /. bucket) in
          let c1 = int_of_float (s.t1 /. bucket) in
          for c = max 0 c0 to min (columns - 1) (max c0 c1) do
            (* later stages overwrite idle, never a previous stage's mark,
               except the instantaneous hand-off which must stay visible *)
            if Bytes.get line c = '.' || mark = 'q' then Bytes.set line c mark
          done
        end)
      spans;
    Printf.printf "  coroutine-%d |%s|\n" (task + 1) (Bytes.to_string line)
  done

let run () =
  Report.heading "Fig 4: compaction process behaviour (rendered from execution)";
  let spans_sync, makespan_sync, report_sync = run_traced ~offload:false in
  render ~title:"synchronous S3 (Fig. 4b/4c: fragments, shared blocking)" spans_sync
    makespan_sync;
  let spans_flush, makespan_flush, report_flush = run_traced ~offload:true in
  render ~title:"flush coroutine + q_flush (Fig. 4d)" spans_flush makespan_flush;
  Report.note "paper: S3 cuts S2 into fragments and both coroutines end up";
  Report.note "blocked in S3 together (the '3' runs overlapping across rows);";
  Report.note "the flush coroutine removes every cut ('q' hand-offs).";
  Report.note "measured CPU utilization: %.0f%% -> %.0f%% (tail = device drain)"
    (100. *. report_sync.Coroutine.Scheduler.cpu_utilization)
    (100. *. report_flush.Coroutine.Scheduler.cpu_utilization)

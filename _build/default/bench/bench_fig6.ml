(* Fig. 6 — evaluation of the PM-table design (§VI-B).

   (a) minor compaction duration of five level-0 structures, normalised to
       the PM table; dataset is index-table keys with a 120-byte index
       column, as the paper builds from its real workload.
   (b) read latency of the same five structures by data size.

   Expected shape: the compressed PM table builds fastest (fewest PM bytes)
   and reads fastest (one access per probe, sequential group scan);
   Array-snappy pays a decompression per probe; Array-snappy-group a whole
   group per probe; the SSTable is an order of magnitude slower on SSD. *)

let value_bytes = 32
let index_column_bytes = 120

(* 120-byte index columns: ~11 rows share each column value (an order's
   merchant/city), and the column body is value-specific text — redundant
   across entries with the same column, not within one entry. *)
let dataset n =
  let rng = Util.Xoshiro.create 5 in
  let entries =
    Array.init n (fun i ->
        let column =
          let base = Printf.sprintf "city-%s-" (Util.Keys.fixed_int ~width:6 (i / 11)) in
          let filler = Util.Xoshiro.create (i / 11) in
          base ^ Util.Xoshiro.string filler (index_column_bytes - String.length base)
        in
        Util.Kv.entry
          ~key:(Util.Keys.index_key ~table_id:(i mod 4) ~index_id:1 ~column ~row_id:i)
          ~seq:(i + 1)
          (Util.Xoshiro.string rng value_bytes))
  in
  Array.sort Util.Kv.compare_entry entries;
  entries

let structures =
  [
    ("PM table", `Kind Pmtable.Table.Pm_compressed);
    ("Array-based", `Kind Pmtable.Table.Array_plain);
    ("Array-snappy", `Kind Pmtable.Table.Array_snappy);
    ("Array-snappy-group", `Kind Pmtable.Table.Array_snappy_group);
    ("SSTable", `Sstable);
  ]

type built =
  | T of Pmtable.Table.t
  | S of Sstable.t

let build clock entries = function
  | `Kind kind ->
      let pm =
        Pmem.create ~params:{ Pmem.default_params with capacity = 512 * 1024 * 1024 } clock
      in
      let t0 = Sim.Clock.now clock in
      let tbl = Pmtable.Table.build pm ~kind entries in
      (T tbl, Sim.Clock.now clock -. t0)
  | `Sstable ->
      let ssd = Ssd.create clock in
      let t0 = Sim.Clock.now clock in
      let sst = Sstable.build ssd entries in
      (S sst, Sim.Clock.now clock -. t0)

let get built key =
  match built with
  | T tbl -> Pmtable.Table.get tbl key <> None
  | S sst -> Sstable.get sst key <> None

let run () =
  Report.heading "Fig 6a: minor compaction duration by level-0 structure";
  let n = 8192 in
  let entries = dataset n in
  let builds =
    List.map
      (fun (name, spec) ->
        let clock = Sim.Clock.create () in
        let built, duration = build clock entries spec in
        (name, built, clock, duration))
      structures
  in
  let base =
    match builds with (_, _, _, d) :: _ -> d | [] -> assert false
  in
  Report.table
    ~header:[ "structure"; "flush duration"; "normalized" ]
    (List.map
       (fun (name, _, _, d) -> [ name; Report.duration d; Report.ratio (d /. base) ])
       builds);
  Report.note "paper: PM table ~40%% faster than Array-based, ~70%% faster than";
  Report.note "SSTable; Array-snappy no better than Array-based; snappy-group ~40%% faster.";

  Report.heading "Fig 6b: read latency by level-0 structure and data size";
  let probes = 1_000 in
  let sizes = [ 2048; 8192; 32768 ] in
  let rows =
    List.map
      (fun (name, spec) ->
        let cells =
          List.map
            (fun n ->
              let entries = dataset n in
              let clock = Sim.Clock.create () in
              let built, _ = build clock entries spec in
              (match built with S sst -> ignore (Sstable.byte_size sst) | T _ -> ());
              let rng = Util.Xoshiro.create 13 in
              let t0 = Sim.Clock.now clock in
              for _ = 1 to probes do
                let i = Util.Xoshiro.int rng n in
                ignore (get built entries.(i).Util.Kv.key)
              done;
              Report.us ((Sim.Clock.now clock -. t0) /. float_of_int probes))
            sizes
        in
        name :: cells)
      structures
  in
  Report.table
    ~header:
      ("structure"
      :: List.map (fun n -> Printf.sprintf "%d entries" n) sizes)
    rows;
  Report.note "paper: PM table ~22%% below Array-based at small sizes, up to 89%%";
  Report.note "below SSTable; Array-snappy ~2.3x Array-based; snappy-group worst."

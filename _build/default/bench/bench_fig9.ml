(* Fig. 9 — coroutine-based compaction (§VI-C): CPU utilization, I/O device
   utilization, mean I/O latency and compaction duration across value
   sizes, for the Thread / Coroutine / PMBlade schedulers. The paper's
   configuration: 2 GB of data (scaled to 2 MB per task here), 4 compaction
   tasks, 2 cores, maximum I/O concurrency 4. *)

let value_sizes = [ 32; 64; 128; 256; 512; 1024 ]
let modes =
  [
    ("Thread", Exec_model.Harness.Thread);
    ("Coroutine", Exec_model.Harness.Basic_coroutine);
    ("PMBlade", Exec_model.Harness.Pmblade);
  ]

let run_one mode value_bytes =
  Exec_model.Harness.run
    {
      Exec_model.Harness.default with
      mode;
      cores = 2;
      tasks = 4;
      q_max = 4;
      task_params =
        { Exec_model.Task.default with value_bytes; input_bytes = 2 * 1024 * 1024 };
    }

let run () =
  let results =
    List.map
      (fun (name, mode) -> (name, List.map (fun v -> (v, run_one mode v)) value_sizes))
      modes
  in
  let series title extract fmt =
    Report.heading title;
    Report.table
      ~header:("scheduler" :: List.map (fun v -> Printf.sprintf "%dB" v) value_sizes)
      (List.map
         (fun (name, per_size) ->
           name :: List.map (fun (_, r) -> fmt (extract r)) per_size)
         results)
  in
  series "Fig 9a: CPU utilization during major compaction"
    (fun r -> r.Coroutine.Scheduler.cpu_utilization)
    Report.pct;
  Report.note "paper: PMBlade ~23%% above Thread and ~14%% above Coroutine at 256B.";
  series "Fig 9b: I/O device utilization"
    (fun r -> r.Coroutine.Scheduler.io_utilization)
    Report.pct;
  Report.note "paper: PMBlade ~35%% above Thread at 32B; near 100%% past 128B.";
  series "Fig 9c: mean I/O latency"
    (fun r -> r.Coroutine.Scheduler.io_mean_latency)
    Report.ms;
  Report.note "paper: PMBlade lowest (about 66%% of Thread at 512B) - q_flush";
  Report.note "admission avoids bursty concurrent writes.";
  series "Fig 9d: compaction duration"
    (fun r -> r.Coroutine.Scheduler.makespan)
    Report.ms;
  Report.note "paper: PMBlade ~71%% of Thread and ~80%% of Coroutine at 64B."

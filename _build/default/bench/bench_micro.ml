(* Wall-clock micro-benchmarks (Bechamel) of the in-memory primitives, as a
   sanity layer under the simulated-time experiments: the three-layer PM
   table lookup, the plain array-table lookup, the LZ codec, and the Bloom
   filter. These measure real host nanoseconds, not simulated time. *)

open Bechamel
open Toolkit

let make_pm_fixture () =
  let clock = Sim.Clock.create () in
  let pm = Pmem.create ~params:{ Pmem.default_params with capacity = 64 * 1024 * 1024 } clock in
  let rng = Util.Xoshiro.create 9 in
  let entries =
    Array.init 4096 (fun i ->
        Util.Kv.entry
          ~key:(Util.Keys.record_key ~table_id:(i mod 4) ~row_id:(i * 2))
          ~seq:(i + 1)
          (Util.Xoshiro.string rng 64))
  in
  Array.sort Util.Kv.compare_entry entries;
  let pm_tbl = Pmtable.Pm_table.build pm entries in
  let arr_tbl = Pmtable.Array_table.build pm entries in
  (entries, pm_tbl, arr_tbl)

let tests () =
  let entries, pm_tbl, arr_tbl = make_pm_fixture () in
  let rng = Util.Xoshiro.create 17 in
  let key () = entries.(Util.Xoshiro.int rng 4096).Util.Kv.key in
  let sample = String.concat "" (List.init 64 (fun i -> Printf.sprintf "key%06d=value" i)) in
  let compressed = Compress.Lz.compress sample in
  let bloom = Bloom.of_keys ~bits_per_key:10 (Array.to_list (Array.map (fun e -> e.Util.Kv.key) entries)) in
  [
    Test.make ~name:"pm_table.get" (Staged.stage (fun () -> ignore (Pmtable.Pm_table.get pm_tbl (key ()))));
    Test.make ~name:"array_table.get" (Staged.stage (fun () -> ignore (Pmtable.Array_table.get arr_tbl (key ()))));
    Test.make ~name:"lz.compress-1KB" (Staged.stage (fun () -> ignore (Compress.Lz.compress sample)));
    Test.make ~name:"lz.decompress-1KB" (Staged.stage (fun () -> ignore (Compress.Lz.decompress compressed)));
    Test.make ~name:"bloom.mem" (Staged.stage (fun () -> ignore (Bloom.mem bloom (key ()))));
  ]

let run () =
  Report.heading "Micro: wall-clock cost of core primitives (Bechamel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let analysis = Analyze.all ols Instance.monotonic_clock results in
        let estimate =
          Hashtbl.fold
            (fun _ v acc ->
              match Analyze.OLS.estimates v with
              | Some [ e ] -> e
              | _ -> acc)
            analysis 0.0
        in
        [ name; Printf.sprintf "%.0f ns/op" estimate ])
      (tests ())
  in
  Report.table ~header:[ "primitive"; "wall-clock cost" ] rows

(* Table I — query latency of a table on PM vs an SSTable in the DRAM cache
   vs an SSTable on SSD, for 1/2/4/8 overlapping tables.

   This reproduces the paper's motivating measurement (§I, Opportunity 2):
   "an array-based structure on PM that supports binary search" — here a
   fixed-stride record array binary-searched with one PM access per probe —
   against RocksDB SSTables read from the block cache and from the SSD.
   Lookups probe the tables in order until the key is found (unsorted
   level-0 semantics; the Bloom filter is off, as in the paper's simple
   structures), so latency grows roughly linearly with the table count.
   Scaled to 100k entries per table. *)

let entries_per_table = 100_000
let probes = 1_500
let record_bytes = 24 (* 16-byte key + 8-byte payload, fixed stride *)

let key_of ~table_idx ~i = Util.Keys.fixed_int ~width:16 ((i * 8) + table_idx)

(* The paper's structure: sorted fixed-size records on PM, binary search
   reading one record per probe (built through the buffered writer so the
   flush cost is charged like any PM table). *)
module Pm_array = struct
  type t = { dev : Pmem.t; region : Pmem.region; count : int }

  let build dev ~table_idx =
    let region = Pmem.alloc dev (entries_per_table * record_bytes) in
    let builder = Pmtable.Builder.create dev region in
    for i = 0 to entries_per_table - 1 do
      Pmtable.Builder.add_string builder (key_of ~table_idx ~i ^ "payload!")
    done;
    ignore (Pmtable.Builder.finish builder);
    { dev; region; count = entries_per_table }

  let get t key =
    let lo = ref 0 and hi = ref (t.count - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let record = Pmem.read t.dev t.region ~off:(mid * record_bytes) ~len:record_bytes in
      let k = String.sub record 0 16 in
      let c = String.compare k key in
      if c = 0 then found := Some (String.sub record 16 8)
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !found
end

let dataset ~table_idx =
  Array.init entries_per_table (fun i ->
      Util.Kv.entry ~key:(key_of ~table_idx ~i) ~seq:(i + 1) "payload!")

(* Probe the tables in order until the key is found; the key lives in
   exactly one table, uniformly chosen, so on average (k+1)/2 tables are
   searched — the level-0 read-amplification pattern. *)
let measure_latency clock ~tables ~get =
  let rng = Util.Xoshiro.create 97 in
  let k = List.length tables in
  let total = ref 0.0 in
  for _ = 1 to probes do
    let owner = Util.Xoshiro.int rng k in
    let i = Util.Xoshiro.int rng entries_per_table in
    let key = key_of ~table_idx:owner ~i in
    let t0 = Sim.Clock.now clock in
    let found = List.exists (fun tbl -> get tbl key <> None) tables in
    assert found;
    total := !total +. (Sim.Clock.now clock -. t0)
  done;
  !total /. float_of_int probes

let run () =
  Report.heading "Table I: query latency by storage medium";
  let counts = [ 1; 2; 4; 8 ] in
  let row_pm =
    List.map
      (fun k ->
        let clock = Sim.Clock.create () in
        let pm =
          Pmem.create ~params:{ Pmem.default_params with capacity = 256 * 1024 * 1024 } clock
        in
        let tables = List.init k (fun t -> Pm_array.build pm ~table_idx:t) in
        Report.us (measure_latency clock ~tables ~get:Pm_array.get))
      counts
  in
  let sstables ssd k = List.init k (fun t -> Sstable.build ssd (dataset ~table_idx:t)) in
  let sst_get t key = Sstable.get ~use_bloom:false t key in
  let row_cache =
    List.map
      (fun k ->
        let clock = Sim.Clock.create () in
        let ssd = Ssd.create clock in
        let tables = sstables ssd k in
        List.iter Sstable.warm_cache tables;
        Report.us (measure_latency clock ~tables ~get:sst_get))
      counts
  in
  let row_ssd =
    List.map
      (fun k ->
        let clock = Sim.Clock.create () in
        let ssd = Ssd.create clock in
        let tables = sstables ssd k in
        Report.us (measure_latency clock ~tables ~get:sst_get))
      counts
  in
  Report.table
    ~header:("The number of tables" :: List.map string_of_int counts)
    [
      "Table on PM" :: row_pm;
      "SSTable in cache" :: row_cache;
      "SSTable in SSD" :: row_ssd;
    ];
  Report.note "paper: PM 3.3-14.5us, cache 2.6-10.7us, SSD 22.3-100.2us;";
  Report.note "shape: PM close to cache, SSD ~7-10x slower, ~linear in table count."

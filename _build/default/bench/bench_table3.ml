(* Table III — resource utilization of compaction scheduled by OS threads:
   a fixed amount of compaction work split over 1..5 threads pinned to a
   single core. Speed-up saturates well below the thread count, both the
   CPU and the I/O device stay substantially idle, and per-request I/O
   latency climbs with concurrency. *)

let total_work = 8 * 1024 * 1024

let run () =
  Report.heading "Table III: compaction with multi-threads (1 core)";
  let base = ref 0.0 in
  let rows =
    List.map
      (fun threads ->
        let config =
          {
            Exec_model.Harness.default with
            mode = Exec_model.Harness.Thread;
            cores = 1;
            tasks = threads;
            task_params =
              {
                Exec_model.Task.default with
                input_bytes = total_work / threads;
                pm_input_fraction = 0.0;
              };
          }
        in
        let r = Exec_model.Harness.run config in
        if threads = 1 then base := r.Coroutine.Scheduler.makespan;
        [
          string_of_int threads;
          Report.ratio (!base /. r.Coroutine.Scheduler.makespan);
          Report.pct r.cpu_idleness;
          Report.pct r.io_idleness;
          Report.ms r.io_mean_latency;
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~header:[ "threads"; "time speed up"; "CPU idleness"; "I/O idleness"; "I/O latency" ]
    rows;
  Report.note "paper: speedup 1x->1.9x saturating, CPU idle 43->30%%, I/O idle";
  Report.note "47->37%%, I/O latency 3.9->10.9ms rising with concurrency."

(* Table rendering for the benchmark harness: every experiment prints the
   rows of its paper artefact plus a short "paper vs measured" shape
   note. *)

let heading title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

(* Print a table given a header and string rows; column widths auto-fit. *)
let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun c _ -> Printf.printf "%s  " (String.make (List.nth widths c) '-'))
    header;
  print_newline ();
  List.iter print_row rows

let us ns = Printf.sprintf "%.1f us" (ns /. 1e3)
let ms ns = Printf.sprintf "%.2f ms" (ns /. 1e6)
let s ns = Printf.sprintf "%.3f s" (ns /. 1e9)
let pct x = Printf.sprintf "%.1f%%" (x *. 100.0)
let mb bytes = Printf.sprintf "%.1f MB" (float_of_int bytes /. 1048576.0)
let ratio x = Printf.sprintf "%.2fx" x

let duration ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then us ns
  else if ns < 1e9 then ms ns
  else s ns

bin/benchmark_kv.ml: Arg Cmd Cmdliner Core Fmt List Printf Term Util Workload

bin/benchmark_kv.mli:

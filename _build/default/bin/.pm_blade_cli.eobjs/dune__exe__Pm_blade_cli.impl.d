bin/pm_blade_cli.ml: Arg Cmd Cmdliner Core Fmt List Pmtable Printf String Term Workload

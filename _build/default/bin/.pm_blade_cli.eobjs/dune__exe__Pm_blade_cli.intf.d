bin/pm_blade_cli.mli:

(* benchmark_kv — the paper's micro-benchmark tool (§VI-A): db_bench-style
   key-value benchmarks extended with record tables and index tables on top
   of the store.

     dune exec bin/benchmark_kv.exe -- fillseq --num 20000
     dune exec bin/benchmark_kv.exe -- readrandom --num 20000 --reads 5000
     dune exec bin/benchmark_kv.exe -- filltables --tables 4 --indexes 3
     dune exec bin/benchmark_kv.exe -- indexscan --tables 4 --indexes 3 *)

open Cmdliner

let systems =
  [
    ("pmblade", Core.Config.pmblade);
    ("pmblade-pm", Core.Config.pmblade_pm);
    ("pmblade-ssd", Core.Config.pmblade_ssd);
    ("rocksdb", Core.Config.rocksdb_like);
    ("matrixkv8", Core.Config.matrixkv_8);
  ]

let system_arg =
  let parse s =
    match List.assoc_opt s systems with
    | Some cfg -> Ok cfg
    | None -> Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  Arg.(value
      & opt (conv (parse, fun ppf (c : Core.Config.t) -> Fmt.string ppf c.name)) Core.Config.pmblade
      & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc:"Engine variant.")

let num_arg = Arg.(value & opt int 20_000 & info [ "n"; "num" ] ~doc:"Keys to load.")
let reads_arg = Arg.(value & opt int 5_000 & info [ "reads" ] ~doc:"Read operations.")
let value_arg = Arg.(value & opt int 256 & info [ "value-bytes" ] ~doc:"Value size.")
let tables_arg = Arg.(value & opt int 4 & info [ "tables" ] ~doc:"Record tables to create.")
let indexes_arg = Arg.(value & opt int 3 & info [ "indexes" ] ~doc:"Indexes per table.")

let report name engine summary =
  Fmt.pr "%-14s %10.0f ops/s   read avg %8.1f us   write avg %8.1f us@." name
    summary.Workload.Driver.throughput
    (summary.read_avg_ns /. 1e3)
    (summary.write_avg_ns /. 1e3);
  Fmt.pr "%-14s WA %.2fx (PM %d KB, SSD %d KB)@." ""
    (float_of_int (summary.pm_bytes_written + summary.ssd_bytes_written)
    /. float_of_int (max 1 summary.user_bytes))
    (Core.Engine.pm_bytes_written engine / 1024)
    (Core.Engine.ssd_bytes_written engine / 1024)

(* --- plain KV benchmarks (db_bench-style) --------------------------------- *)

let fillseq cfg num value_bytes =
  let engine = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 1 in
  let s =
    Workload.Driver.measure engine ~ops:num (fun i ->
        Core.Engine.put engine ~key:(Util.Keys.ycsb_key i) (Util.Xoshiro.string rng value_bytes))
  in
  report "fillseq" engine s

let fillrandom cfg num value_bytes =
  let engine = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 1 in
  let s =
    Workload.Driver.measure engine ~ops:num (fun _ ->
        Core.Engine.put ~update:true engine
          ~key:(Util.Keys.ycsb_key (Util.Xoshiro.int rng num))
          (Util.Xoshiro.string rng value_bytes))
  in
  report "fillrandom" engine s

let readrandom cfg num reads value_bytes =
  let engine = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 1 in
  for i = 0 to num - 1 do
    Core.Engine.put engine ~key:(Util.Keys.ycsb_key i) (Util.Xoshiro.string rng value_bytes)
  done;
  let s =
    Workload.Driver.measure engine ~ops:reads (fun _ ->
        ignore (Core.Engine.get engine (Util.Keys.ycsb_key (Util.Xoshiro.int rng num))))
  in
  report "readrandom" engine s

let readseq cfg num reads value_bytes =
  let engine = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 1 in
  for i = 0 to num - 1 do
    Core.Engine.put engine ~key:(Util.Keys.ycsb_key i) (Util.Xoshiro.string rng value_bytes)
  done;
  let s =
    Workload.Driver.measure engine ~ops:reads (fun _ ->
        let start = Util.Xoshiro.int rng (max 1 (num - 100)) in
        ignore (Core.Engine.scan engine ~start:(Util.Keys.ycsb_key start) ~limit:100))
  in
  report "readseq(100)" engine s

(* --- record/index table benchmarks (the paper's extension) ---------------- *)

(* Create [tables] record tables with [indexes] secondary indexes each and
   fill them — sequential record writes plus the random index-entry writes
   the paper identifies as a write-amplification source. *)
let fill_tables engine ~tables ~indexes ~rows rng =
  for row_id = 0 to rows - 1 do
    for table_id = 0 to tables - 1 do
      Core.Engine.put engine
        ~key:(Util.Keys.record_key ~table_id ~row_id)
        (Util.Xoshiro.string rng 128);
      for index_id = 0 to indexes - 1 do
        let column = Printf.sprintf "c%s" (Util.Keys.fixed_int ~width:6 (row_id * 31 mod 9973)) in
        Core.Engine.put engine
          ~key:(Util.Keys.index_key ~table_id ~index_id ~column ~row_id)
          (Util.Keys.fixed_int ~width:12 row_id)
      done
    done
  done

let filltables cfg tables indexes num =
  let engine = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 1 in
  let rows = num / (tables * (1 + indexes)) in
  let s =
    Workload.Driver.measure engine ~ops:1 (fun _ ->
        fill_tables engine ~tables ~indexes ~rows rng)
  in
  Fmt.pr "filled %d tables x %d rows with %d indexes each@." tables rows indexes;
  report "filltables" engine { s with Workload.Driver.ops = rows * tables * (1 + indexes) }

let indexscan cfg tables indexes num reads =
  let engine = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 1 in
  let rows = max 1 (num / (tables * (1 + indexes))) in
  fill_tables engine ~tables ~indexes ~rows rng;
  let s =
    Workload.Driver.measure engine ~ops:reads (fun _ ->
        let table_id = Util.Xoshiro.int rng tables in
        let index_id = Util.Xoshiro.int rng indexes in
        let row = Util.Xoshiro.int rng rows in
        let column = Printf.sprintf "c%s" (Util.Keys.fixed_int ~width:6 (row * 31 mod 9973)) in
        let prefix = Util.Keys.index_scan_prefix ~table_id ~index_id ~column in
        let hits =
          Core.Engine.scan_range engine ~start:prefix
            ~stop:(Util.Keys.prefix_successor prefix)
        in
        List.iter
          (fun (_k, row_id) ->
            match int_of_string_opt row_id with
            | Some row_id ->
                ignore (Core.Engine.get engine (Util.Keys.record_key ~table_id ~row_id))
            | None -> ())
          hits)
  in
  Fmt.pr "index queries over %d tables (%d rows, %d indexes)@." tables rows indexes;
  report "indexscan" engine s

(* --- command wiring --------------------------------------------------------- *)

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  let doc = "db_bench-style micro-benchmarks with record and index tables (paper §VI-A)." in
  let cmds =
    [
      cmd "fillseq" "Sequential inserts."
        Term.(const fillseq $ system_arg $ num_arg $ value_arg);
      cmd "fillrandom" "Random overwrites."
        Term.(const fillrandom $ system_arg $ num_arg $ value_arg);
      cmd "readrandom" "Point reads over a loaded store."
        Term.(const readrandom $ system_arg $ num_arg $ reads_arg $ value_arg);
      cmd "readseq" "Short sequential scans."
        Term.(const readseq $ system_arg $ num_arg $ reads_arg $ value_arg);
      cmd "filltables" "Create and fill record tables with secondary indexes."
        Term.(const filltables $ system_arg $ tables_arg $ indexes_arg $ num_arg);
      cmd "indexscan" "Index queries: scan the index, point-read the rows."
        Term.(const indexscan $ system_arg $ tables_arg $ indexes_arg $ num_arg $ reads_arg);
    ]
  in
  exit (Cmd.eval (Cmd.group (Cmd.info "benchmark_kv" ~doc) cmds))

(* Command-line front end: run a workload against any engine variant and
   print the measurement summary.

     dune exec bin/pm_blade_cli.exe -- ycsb --workload a --system pmblade
     dune exec bin/pm_blade_cli.exe -- retail --orders 2000 --system matrixkv8
     dune exec bin/pm_blade_cli.exe -- info *)

open Cmdliner

let systems =
  [
    ("pmblade", Core.Config.pmblade);
    ("pmblade-pm", Core.Config.pmblade_pm);
    ("pmblade-ssd", Core.Config.pmblade_ssd);
    ("rocksdb", Core.Config.rocksdb_like);
    ("matrixkv8", Core.Config.matrixkv_8);
    ("matrixkv80", Core.Config.matrixkv_80);
    ("pmb-p", Core.Config.pmb_p);
    ("pmb-pi", Core.Config.pmb_pi);
    ("pmb-pic", Core.Config.pmb_pic);
  ]

let system_arg =
  let parse s =
    match List.assoc_opt s systems with
    | Some cfg -> Ok cfg
    | None -> Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  let print ppf (cfg : Core.Config.t) = Fmt.string ppf cfg.name in
  Arg.(value
      & opt (conv (parse, print)) Core.Config.pmblade
      & info [ "s"; "system" ] ~docv:"SYSTEM"
          ~doc:(Printf.sprintf "Engine variant: %s."
                  (String.concat ", " (List.map fst systems))))

let print_summary engine summary =
  Fmt.pr "%a@." Workload.Driver.pp_summary summary;
  Fmt.pr "%a@." Core.Engine.pp_stats engine

(* --- ycsb ----------------------------------------------------------------- *)

let ycsb_cmd =
  let workload =
    Arg.(value & opt string "a" & info [ "w"; "workload" ] ~docv:"WORKLOAD"
           ~doc:"YCSB workload: load, a, b, c, d, e or f.")
  in
  let records =
    Arg.(value & opt int 10_000 & info [ "records" ] ~doc:"Records loaded before the run.")
  in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Operations to run.") in
  let value_bytes =
    Arg.(value & opt int 1024 & info [ "value-bytes" ] ~doc:"Value size in bytes.")
  in
  let run cfg workload records ops value_bytes =
    let engine = Core.Engine.create cfg in
    let w = Workload.Ycsb.of_string workload in
    let y = Workload.Ycsb.create ~value_bytes () in
    Workload.Ycsb.load y engine ~records;
    Fmt.pr "loaded %d records into %s; running YCSB %s...@." records
      cfg.Core.Config.name (Workload.Ycsb.name w);
    let summary =
      Workload.Driver.measure engine ~ops (fun _ -> Workload.Ycsb.step y engine w)
    in
    print_summary engine summary
  in
  Cmd.v (Cmd.info "ycsb" ~doc:"Run a YCSB core workload.")
    Term.(const run $ system_arg $ workload $ records $ ops $ value_bytes)

(* --- retail ----------------------------------------------------------------- *)

let retail_cmd =
  let orders =
    Arg.(value & opt int 2_000 & info [ "orders" ] ~doc:"Orders loaded before the run.")
  in
  let transactions =
    Arg.(value & opt int 5_000 & info [ "transactions" ] ~doc:"Transactions to run.")
  in
  let run cfg orders transactions =
    let engine = Core.Engine.create cfg in
    let retail = Workload.Retail.create () in
    Workload.Retail.load retail engine ~orders;
    Fmt.pr "loaded %d orders into %s; running %d retail transactions...@." orders
      cfg.Core.Config.name transactions;
    let summary =
      Workload.Driver.measure engine ~ops:transactions (fun _ ->
          Workload.Retail.step retail engine)
    in
    print_summary engine summary
  in
  Cmd.v (Cmd.info "retail" ~doc:"Run the online-retail (Meituan-style) workload.")
    Term.(const run $ system_arg $ orders $ transactions)

(* --- info ---------------------------------------------------------------- *)

let info_cmd =
  let run () =
    Fmt.pr "%-12s %-6s %-10s %-22s %s@." "system" "L0" "capacity" "strategy" "table";
    List.iter
      (fun (name, (cfg : Core.Config.t)) ->
        Fmt.pr "%-12s %-6s %-10s %-22s %s@." name
          (match cfg.l0_medium with Core.Config.L0_pm -> "PM" | L0_ssd -> "SSD")
          (Printf.sprintf "%dMB" (cfg.l0_capacity / 1024 / 1024))
          (match cfg.l0_strategy with
          | Core.Config.Cost_based _ -> "cost-based (Eq.1-3)"
          | Core.Config.Conventional { max_tables = Some n; _ } ->
              Printf.sprintf "major at %d tables" n
          | Core.Config.Conventional _ -> "major when full"
          | Core.Config.Matrix { columns; _ } ->
              Printf.sprintf "column compaction/%d" columns)
          (match cfg.table_kind with
          | Pmtable.Table.Pm_compressed -> "compressed PM table"
          | Array_plain -> "array"
          | Array_snappy -> "array+snappy"
          | Array_snappy_group -> "array+snappy-group"))
      systems
  in
  Cmd.v (Cmd.info "info" ~doc:"List the engine variants.") Term.(const run $ const ())

let () =
  let doc = "PM-Blade: a persistent-memory augmented LSM-tree storage engine (simulated)." in
  exit (Cmd.eval (Cmd.group (Cmd.info "pm_blade_cli" ~doc) [ ycsb_cmd; retail_cmd; info_cmd ]))

examples/crash_recovery.ml: Core Pmem Printf Sim Util

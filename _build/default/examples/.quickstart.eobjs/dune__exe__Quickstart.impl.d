examples/quickstart.ml: Core List Option Printf String Util

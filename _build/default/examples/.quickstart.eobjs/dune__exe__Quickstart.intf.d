examples/quickstart.mli:

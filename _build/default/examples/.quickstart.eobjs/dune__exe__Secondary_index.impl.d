examples/secondary_index.ml: Array Core List Option Printf String Util

examples/takeout_orders.ml: Array Core List Printf Util

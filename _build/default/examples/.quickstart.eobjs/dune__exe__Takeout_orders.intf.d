examples/takeout_orders.mli:

examples/ycsb_demo.ml: Core List Printf Workload

(* Crash and recovery: the persistence story that motivates putting level-0
   on persistent memory in the first place. A durable engine maintains a
   write-ahead log and a manifest; after a "crash" (every DRAM structure
   dropped), Engine.recover rebuilds the handles from the devices — PM
   tables are reopened in place, SSTables from their meta blocks, and the
   WAL replays the writes the memtable lost.

     dune exec examples/crash_recovery.exe *)

let () =
  let config = { Core.Config.pmblade with Core.Config.durable = true } in
  let engine = Core.Engine.create config in

  (* A busy afternoon: orders written and updated, some spilled to level-0,
     the most recent still in the DRAM memtable. *)
  let rng = Util.Xoshiro.create 7 in
  for i = 0 to 4_999 do
    Core.Engine.put ~update:(i > 2000) engine
      ~key:(Util.Keys.record_key ~table_id:1 ~row_id:(i mod 2500))
      (Printf.sprintf "status=%d payload=%s" (i mod 5) (Util.Xoshiro.string rng 64))
  done;
  let last_key = Util.Keys.record_key ~table_id:1 ~row_id:(4999 mod 2500) in
  let expected = Core.Engine.get engine last_key in
  let m = Core.Engine.metrics engine in
  Printf.printf "before crash: %d writes, %d minor compactions, L0 %d KB\n"
    m.Core.Metrics.writes m.minor_compactions
    (Core.Engine.l0_bytes engine / 1024);

  (* CRASH. The engine value (memtable, partition handles, statistics) is
     dropped on the floor; only the simulated devices survive. *)
  let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
  print_endline "-- crash --";

  let t0 = Sim.Clock.now (Pmem.clock pm) in
  let recovered = Core.Engine.recover config ~pm ~ssd in
  let recovery_time = Sim.Clock.now (Pmem.clock pm) -. t0 in
  Printf.printf "recovered in %.2f simulated ms (manifest + reopen + WAL replay)\n"
    (recovery_time /. 1e6);

  (* Every write — including the ones that only ever lived in the DRAM
     memtable — is back. *)
  let got = Core.Engine.get recovered last_key in
  assert (got = expected);
  Printf.printf "last pre-crash write intact: %b\n" (got = expected);

  let missing = ref 0 in
  for row_id = 0 to 2499 do
    if Core.Engine.get recovered (Util.Keys.record_key ~table_id:1 ~row_id) = None then
      incr missing
  done;
  Printf.printf "missing keys after recovery: %d / 2500\n" !missing;

  (* And it keeps serving. *)
  Core.Engine.put recovered ~key:(Util.Keys.record_key ~table_id:1 ~row_id:9999) "post-crash";
  Printf.printf "post-crash write readable: %b\n"
    (Core.Engine.get recovered (Util.Keys.record_key ~table_id:1 ~row_id:9999)
    = Some "post-crash")

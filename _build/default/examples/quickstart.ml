(* Quickstart: open a PM-Blade engine, write, read, scan, delete, and look
   at the storage statistics.

     dune exec examples/quickstart.exe *)

let () =
  (* The full PM-Blade configuration: compressed PM tables in an 80 MB
     level-0, cost-based internal compaction, coroutine-based major
     compaction. *)
  let engine = Core.Engine.create Core.Config.pmblade in

  (* Store some rows of a database table (table 1). Keys built through
     Util.Keys share prefixes, which the PM table compresses away. *)
  for row_id = 0 to 999 do
    let key = Util.Keys.record_key ~table_id:1 ~row_id in
    Core.Engine.put engine ~key (Printf.sprintf "order status=%d" (row_id mod 5))
  done;

  (* Point reads. *)
  (match Core.Engine.get engine (Util.Keys.record_key ~table_id:1 ~row_id:42) with
  | Some value -> Printf.printf "row 42 -> %s\n" value
  | None -> print_endline "row 42 missing?!");

  (* Overwrites keep the newest version visible. *)
  let hot = Util.Keys.record_key ~table_id:1 ~row_id:42 in
  Core.Engine.put ~update:true engine ~key:hot "order status=delivered";
  Printf.printf "row 42 -> %s\n" (Option.get (Core.Engine.get engine hot));

  (* Range scan over the table prefix. *)
  let rows =
    Core.Engine.scan_range engine
      ~start:(Util.Keys.record_key ~table_id:1 ~row_id:10)
      ~stop:(Util.Keys.record_key ~table_id:1 ~row_id:15)
  in
  Printf.printf "scan rows 10-14: %d results\n" (List.length rows);

  (* Deletes are tombstones; reads see them immediately. *)
  Core.Engine.delete engine hot;
  assert (Core.Engine.get engine hot = None);
  print_endline "row 42 deleted";

  (* A merged forward cursor over the live keyspace. *)
  let it = Core.Iterator.seek engine (Util.Keys.record_key ~table_id:1 ~row_id:500) in
  let window = Core.Iterator.take it 3 in
  Printf.printf "cursor from row 500: %s\n"
    (String.concat ", " (List.map fst window));

  (* Simulated-storage statistics: where did reads land, what did devices
     write, how many compactions ran? *)
  let m = Core.Engine.metrics engine in
  Printf.printf "reads: %d (PM hit ratio %.2f)\n" m.Core.Metrics.reads
    (Core.Metrics.pm_hit_ratio m);
  Printf.printf "user bytes: %d, PM written: %d, SSD written: %d\n"
    (Core.Engine.user_bytes engine)
    (Core.Engine.pm_bytes_written engine)
    (Core.Engine.ssd_bytes_written engine);
  Printf.printf "compactions: %d minor, %d internal, %d major\n"
    m.minor_compactions m.internal_compactions m.major_compactions;
  Printf.printf "avg write latency (simulated): %.1f us\n"
    (Util.Histogram.mean m.write_latency /. 1e3)

(* Secondary indexes on an LSM store, the access pattern §VI-D describes:
   index tables are small but updated randomly (a classic write
   amplification source), and index queries are a scan over the index
   prefix followed by point reads of the base rows.

     dune exec examples/secondary_index.exe *)

let table_id = 3
let city_index = 0
let cities = [| "beijing"; "shanghai"; "shenzhen"; "chengdu"; "wuhan" |]

let city_of_row value =
  (* rows look like "city=<name> rating=<n>" *)
  match String.split_on_char ' ' value with
  | first :: _ -> (
      match String.split_on_char '=' first with
      | [ "city"; city ] -> Some city
      | _ -> None)
  | [] -> None

(* Write one merchant row plus its city index entry; index maintenance on
   update deletes the old entry (the read-before-write every LSM secondary
   index pays). *)
let insert_merchant engine ~merchant_id ~city =
  let key = Util.Keys.record_key ~table_id ~row_id:merchant_id in
  (match Option.bind (Core.Engine.get engine key) city_of_row with
  | Some old_city when old_city <> city ->
      Core.Engine.delete engine
        (Util.Keys.index_key ~table_id ~index_id:city_index ~column:old_city ~row_id:merchant_id)
  | Some _ | None -> ());
  Core.Engine.put ~update:true engine ~key
    (Printf.sprintf "city=%s rating=%d" city (merchant_id mod 50));
  let ikey = Util.Keys.index_key ~table_id ~index_id:city_index ~column:city ~row_id:merchant_id in
  Core.Engine.put ~update:true engine ~key:ikey (string_of_int merchant_id)

(* Index query: scan the index for the city, then point-read each row. *)
let merchants_in engine city =
  let prefix = Util.Keys.index_scan_prefix ~table_id ~index_id:city_index ~column:city in
  let hits = Core.Engine.scan_range engine ~start:prefix ~stop:(Util.Keys.prefix_successor prefix) in
  List.filter_map
    (fun (_ikey, row_id) ->
      match int_of_string_opt row_id with
      | Some row_id -> Core.Engine.get engine (Util.Keys.record_key ~table_id ~row_id)
      | None -> None)
    hits

let () =
  let engine = Core.Engine.create Core.Config.pmblade in
  let rng = Util.Xoshiro.create 2024 in

  for merchant_id = 0 to 4_999 do
    insert_merchant engine ~merchant_id ~city:cities.(Util.Xoshiro.int rng 5)
  done;

  (* Merchants move: the index entry is rewritten (a random small write —
     exactly the index-table update churn the paper calls out). *)
  for _ = 1 to 2_000 do
    let merchant_id = Util.Xoshiro.int rng 5_000 in
    insert_merchant engine ~merchant_id ~city:cities.(Util.Xoshiro.int rng 5)
  done;

  List.iter
    (fun city ->
      let merchants = merchants_in engine city in
      Printf.printf "%-9s %4d merchants (sample: %s)\n" city (List.length merchants)
        (match merchants with v :: _ -> v | [] -> "-"))
    (Array.to_list cities);

  let m = Core.Engine.metrics engine in
  Printf.printf "\nindex queries ran %d scans and %d point reads;\n" m.Core.Metrics.scans
    m.Core.Metrics.reads;
  Printf.printf "avg scan %.0f us, avg read %.1f us, PM hit ratio %.2f\n"
    (Util.Histogram.mean m.scan_latency /. 1e3)
    (Util.Histogram.mean m.read_latency /. 1e3)
    (Core.Metrics.pm_hit_ratio m)

(* The paper's motivating scenario (§I): the lifecycle of take-out orders.

   An order is inserted across several tables, updated repeatedly while
   hot (payment -> packing -> delivery), queried while warm (recent
   history), and finally goes cold. The example shows how PM-Blade's
   level-0 keeps the hot and warm phases on fast storage while the cost
   models push cold history to the SSD.

     dune exec examples/takeout_orders.exe *)

let statuses = [| "placed"; "paid"; "packing"; "delivering"; "delivered" |]

let order_key order_id = Util.Keys.record_key ~table_id:1 ~row_id:order_id
let delivery_key order_id = Util.Keys.record_key ~table_id:2 ~row_id:order_id

let place_order engine ~order_id =
  Core.Engine.put engine ~key:(order_key order_id)
    (Printf.sprintf "user=%06d status=%s" (order_id * 7 mod 99991) statuses.(0));
  Core.Engine.put engine ~key:(delivery_key order_id) "courier=unassigned"

let progress_order engine ~order_id ~stage =
  Core.Engine.put ~update:true engine ~key:(order_key order_id)
    (Printf.sprintf "user=%06d status=%s" (order_id * 7 mod 99991) statuses.(stage));
  if stage = 3 then
    Core.Engine.put ~update:true engine ~key:(delivery_key order_id)
      (Printf.sprintf "courier=%04d" (order_id mod 500))

let () =
  let engine = Core.Engine.create Core.Config.pmblade in
  let total_orders = 3_000 in

  (* Orders arrive continuously; each order progresses through its
     lifecycle over the next ~4 arrival slots (hot phase: many updates). *)
  print_endline "simulating one afternoon of take-out ordering...";
  for t = 0 to total_orders + 4 do
    if t < total_orders then place_order engine ~order_id:t;
    for stage = 1 to 4 do
      let order_id = t - stage in
      if order_id >= 0 && order_id < total_orders then
        progress_order engine ~order_id ~stage
    done;
    (* Users refresh recent orders (warm reads). *)
    if t > 10 then
      for back = 1 to 3 do
        ignore (Core.Engine.get engine (order_key (t - (back * 3))))
      done
  done;

  (* A customer-service lookup on recent history (warm). *)
  let recent = total_orders - 50 in
  (match Core.Engine.get engine (order_key recent) with
  | Some v -> Printf.printf "order %d: %s\n" recent v
  | None -> ());

  (* An analytics scan over a slice of old, cold orders. *)
  let cold =
    Core.Engine.scan_range engine ~start:(order_key 100) ~stop:(order_key 160)
  in
  Printf.printf "cold history scan: %d orders\n" (List.length cold);

  let m = Core.Engine.metrics engine in
  Printf.printf "\nafter %d orders (every order written %d times):\n" total_orders 5;
  Printf.printf "  PM hit ratio:        %.2f (hot/warm data stays in level-0)\n"
    (Core.Metrics.pm_hit_ratio m);
  Printf.printf "  avg read latency:    %.1f us\n" (Util.Histogram.mean m.read_latency /. 1e3);
  Printf.printf "  internal compactions: %d (dedup hot updates inside PM)\n"
    m.internal_compactions;
  Printf.printf "  PM written: %.1f MB, SSD written: %.1f MB, user: %.1f MB\n"
    (float_of_int (Core.Engine.pm_bytes_written engine) /. 1048576.)
    (float_of_int (Core.Engine.ssd_bytes_written engine) /. 1048576.)
    (float_of_int (Core.Engine.user_bytes engine) /. 1048576.)

(* Run the YCSB core workloads against two engine configurations and
   compare — a miniature of the paper's Fig. 12.

     dune exec examples/ycsb_demo.exe *)

let run_system name (cfg : Core.Config.t) =
  let engine = Core.Engine.create cfg in
  let y = Workload.Ycsb.create ~value_bytes:256 () in
  Printf.printf "%s:\n" name;
  let load = Workload.Driver.measure engine ~ops:4_000 (fun _ ->
      Workload.Ycsb.step y engine Workload.Ycsb.Load) in
  Printf.printf "  %-5s %8.0f ops/s\n" "Load" load.Workload.Driver.throughput;
  List.iter
    (fun w ->
      let s = Workload.Driver.measure engine ~ops:1_000 (fun _ -> Workload.Ycsb.step y engine w) in
      Printf.printf "  %-5s %8.0f ops/s  (read avg %.1f us)\n" (Workload.Ycsb.name w)
        s.Workload.Driver.throughput
        (s.read_avg_ns /. 1e3))
    [ Workload.Ycsb.A; B; C; E ];
  let m = Core.Engine.metrics engine in
  Printf.printf "  PM hit ratio %.2f, WA %.1fx\n\n" (Core.Metrics.pm_hit_ratio m)
    (float_of_int (Core.Engine.pm_bytes_written engine + Core.Engine.ssd_bytes_written engine)
    /. float_of_int (max 1 (Core.Engine.user_bytes engine)))

let () =
  run_system "PM-Blade (PM level-0, cost-based compaction)" Core.Config.pmblade;
  run_system "Conventional LSM (SSD level-0)" Core.Config.rocksdb_like

(* Bloom filter with double hashing (Kirsch-Mitzenmacher).

   One filter per SSTable, sized by bits-per-key like LevelDB/RocksDB.
   k probe positions are derived from two independent 32-bit hashes of the
   key: g_i = h1 + i*h2. No false negatives (property-tested); false
   positive rate ~ (1 - e^{-kn/m})^k. *)

type t = { bits : Bytes.t; nbits : int; k : int }

(* FNV-1a, then a murmur-style finalizer for the second hash. *)
let hash1 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x7fffffff)
    s;
  !h

let hash2 s =
  let h = ref (hash1 s lxor 0x5bd1e995) in
  h := !h * 0xcc9e2d51 land 0x7fffffff;
  h := !h lxor (!h lsr 15);
  h := !h * 0x1b873593 land 0x7fffffff;
  h := !h lxor (!h lsr 13);
  (* An even h2 would make probes cycle; force odd. *)
  !h lor 1

let optimal_k bits_per_key =
  let k = int_of_float (float_of_int bits_per_key *. 0.69) in
  if k < 1 then 1 else if k > 30 then 30 else k

let create ~bits_per_key n =
  let n = max n 1 in
  let nbits = max 64 (n * bits_per_key) in
  { bits = Bytes.make ((nbits + 7) / 8) '\000'; nbits; k = optimal_k bits_per_key }

let set_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i / 8 and bit = i mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let add t key =
  let h1 = hash1 key and h2 = hash2 key in
  for i = 0 to t.k - 1 do
    set_bit t ((h1 + (i * h2)) mod t.nbits)
  done

let mem t key =
  let h1 = hash1 key and h2 = hash2 key in
  let rec probe i = i >= t.k || (get_bit t ((h1 + (i * h2)) mod t.nbits) && probe (i + 1)) in
  probe 0

let size_bytes t = Bytes.length t.bits

let of_keys ~bits_per_key keys =
  let t = create ~bits_per_key (List.length keys) in
  List.iter (add t) keys;
  t

(* Persisted form: varint nbits, varint k, raw bit bytes — so SSTable meta
   blocks can store the filter and recovery can reopen it. *)
let serialize t =
  let buf = Buffer.create (Bytes.length t.bits + 8) in
  Util.Varint.write buf t.nbits;
  Util.Varint.write buf t.k;
  Buffer.add_bytes buf t.bits;
  Buffer.contents buf

let deserialize s =
  let nbits, pos = Util.Varint.read s 0 in
  let k, pos = Util.Varint.read s pos in
  let byte_count = (nbits + 7) / 8 in
  if String.length s - pos < byte_count then failwith "Bloom.deserialize: truncated";
  { bits = Bytes.of_string (String.sub s pos byte_count); nbits; k }

let serialized_size t = Util.Varint.size t.nbits + Util.Varint.size t.k + Bytes.length t.bits

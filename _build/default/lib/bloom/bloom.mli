(** Bloom filter with double hashing, one per SSTable, sized by
    bits-per-key as in LevelDB/RocksDB. No false negatives. *)

type t

val create : bits_per_key:int -> int -> t
(** [create ~bits_per_key n] sizes the filter for [n] expected keys. *)

val add : t -> string -> unit
val mem : t -> string -> bool
val size_bytes : t -> int
val of_keys : bits_per_key:int -> string list -> t

val serialize : t -> string
(** Persisted form, for SSTable meta blocks. *)

val deserialize : string -> t
(** Raises [Failure] on truncated input. *)

val serialized_size : t -> int

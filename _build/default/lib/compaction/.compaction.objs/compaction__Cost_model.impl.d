lib/compaction/cost_model.ml: List

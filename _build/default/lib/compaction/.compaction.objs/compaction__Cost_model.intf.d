lib/compaction/cost_model.mli:

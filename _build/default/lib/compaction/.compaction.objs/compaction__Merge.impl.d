lib/compaction/merge.ml: Array List Sim Util

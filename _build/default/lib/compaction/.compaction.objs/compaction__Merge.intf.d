lib/compaction/merge.mli: Sim Util

(** The three compaction cost models of §IV-C (Table II, Algorithm 1).

    Eq. 1 triggers internal compaction when per-second read savings exceed
    the compaction spend rate; Eq. 2 when eliminating duplicate records
    saves more future major-compaction cost than the compaction spends on
    PM (gated on s_i >= tau_w); Eq. 3 greedily keeps the highest
    read-density partitions in PM under capacity tau_t.

    Note on Eq. 2: the paper's Table II prints "n_aft = n_u", under which
    an update-only workload would save nothing — contradicting its own
    Table IV — so this implementation uses the evident intent
    n_aft = n_w − n_u (eliminated records = updates). See DESIGN.md. *)

type params = {
  i_b : float;
  i_p : float;
  i_s : float;
  t_p : float;
  spend_scale : float;
      (** share of one core the engine may spend on internal compaction;
          scales Eq. 1's spend rate to the simulation's op-rate regime *)
  tau_w : int;
  tau_m : int;
  tau_t : int;
}

val default : params

val delta_cost_rf : params -> reads_per_sec:float -> unsorted:int -> float
val should_internal_compact_rf : params -> reads_per_sec:float -> unsorted:int -> bool

val delta_cost_wf : params -> l0_records:int -> updates:int -> float
val should_internal_compact_wf : params -> size:int -> l0_records:int -> updates:int -> bool

val select_preserved : params -> (int * int * int) list -> int list
(** [select_preserved p [(id, reads, size); ...]] returns the ids preserved
    in PM (the paper's set Φ), greedy by read density under tau_t. *)

val should_major_compact : params -> l0_bytes:int -> bool

(** K-way merge of sorted entry runs with version shadowing.

    Inputs are sorted by {!Util.Kv.compare_entry}; older versions of a key
    are dropped, tombstones only when [drop_tombstones] (output lands at the
    bottom of the tree). Merge CPU is charged to the virtual clock. *)

type stats = {
  input_entries : int;
  output_entries : int;
  dropped_versions : int;
  dropped_tombstones : int;
}

val merge :
  ?drop_tombstones:bool ->
  clock:Sim.Clock.t ->
  Util.Kv.entry list list ->
  Util.Kv.entry list * stats

val split_run : target_bytes:int -> Util.Kv.entry list -> Util.Kv.entry list list
(** Cut a sorted run into consecutive slices of at most [target_bytes],
    never splitting one key's versions across slices. *)

val cpu_per_entry_ns : float
val cpu_per_byte_ns : float

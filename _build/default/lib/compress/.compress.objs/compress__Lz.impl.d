lib/compress/lz.ml: Array Buffer Char Printf String Util

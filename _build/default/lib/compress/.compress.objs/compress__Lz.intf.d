lib/compress/lz.mli:

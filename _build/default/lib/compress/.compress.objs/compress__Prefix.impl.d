lib/compress/prefix.ml: Array String Util

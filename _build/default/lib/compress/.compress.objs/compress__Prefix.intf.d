lib/compress/prefix.mli:

(** Snappy-like LZ77 byte compressor.

    Stands in for Google Snappy in the Array-snappy baselines of Fig. 6:
    greedy matching, literal/copy stream, no entropy coding. Roundtrip
    ([decompress (compress s) = s]) is property-tested. *)

val compress : string -> string
val decompress : string -> string
(** Raises [Failure] on malformed input. *)

val compress_cost_ns_per_byte : float
(** Simulated CPU cost charged by table builders that use the codec. *)

val decompress_cost_ns_per_byte : float

val compress_call_ns : float
(** Fixed per-call overhead; penalises compressing tiny units. *)

val decompress_call_ns : float

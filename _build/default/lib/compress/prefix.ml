(* Prefix compression for sorted key runs (paper §IV-A).

   Two cooperating layers:

   - [strip_meta]: database keys open with a {tableID} tag shared by every
     entry of the same table; the meta layer stores each distinct tag once
     and entries reference it by index.

   - group prefixes: sorted keys are cut into groups of [group_size]
     (8 or 16 in the paper); each group stores one fixed-length prefix taken
     from its first key, and members store only their suffix. The fixed
     width makes the prefix layer binary-searchable with O(1)-size probes.

   Encoding/decoding here is pure; device placement and time charging live
   in Pmtable. *)

let default_group_size = 8
let default_prefix_len = 8

(* Longest prefix (capped at [max_len]) shared by every key in
   [keys.(lo .. hi-1)]. Sortedness means it equals the common prefix of the
   first and last key. *)
let group_prefix ~max_len keys lo hi =
  if hi <= lo then ""
  else begin
    let first = keys.(lo) and last = keys.(hi - 1) in
    let n = min max_len (Util.Keys.common_prefix_len first last) in
    String.sub first 0 n
  end

type group = { prefix : string; first_key : string; members : (string * int) array }
(* members: (suffix, payload index); payload indices point into the caller's
   entry array so the codec never copies values. *)

type plan = { group_size : int; prefix_len : int; groups : group array }

let plan ?(group_size = default_group_size) ?(prefix_len = default_prefix_len) keys =
  if group_size <= 0 then invalid_arg "Prefix.plan: group_size must be positive";
  let n = Array.length keys in
  let group_count = (n + group_size - 1) / group_size in
  let groups =
    Array.init group_count (fun g ->
        let lo = g * group_size in
        let hi = min n (lo + group_size) in
        let prefix = group_prefix ~max_len:prefix_len keys lo hi in
        let plen = String.length prefix in
        let members =
          Array.init (hi - lo) (fun k ->
              let key = keys.(lo + k) in
              (String.sub key plen (String.length key - plen), lo + k))
        in
        { prefix; first_key = (if hi > lo then keys.(lo) else ""); members })
  in
  { group_size; prefix_len; groups }

(* Index of the last group whose first_key <= key, or None when the key
   precedes every group. Binary search on the (fixed-width comparable)
   group boundaries. *)
let locate_group plan key =
  let groups = plan.groups in
  let n = Array.length groups in
  if n = 0 || String.compare key groups.(0).first_key < 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if String.compare groups.(mid).first_key key <= 0 then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let total_bytes_saved plan original_keys =
  let saved = ref 0 in
  Array.iter
    (fun g -> saved := !saved + (String.length g.prefix * (Array.length g.members - 1)))
    plan.groups;
  ignore original_keys;
  !saved

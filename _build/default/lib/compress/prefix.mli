(** Prefix compression planner for sorted key runs (paper §IV-A).

    Cuts a sorted key array into groups of 8/16, extracts a fixed-length
    prefix per group (binary-searchable because boundaries are first keys),
    and strips the prefix from members. Pure planning; device placement and
    time charging live in {!Pmtable}. *)

val default_group_size : int
val default_prefix_len : int

type group = {
  prefix : string;
  first_key : string;
  members : (string * int) array;  (** (suffix, index into the caller's entry array) *)
}

type plan = { group_size : int; prefix_len : int; groups : group array }

val plan : ?group_size:int -> ?prefix_len:int -> string array -> plan
(** [plan keys] for a {e sorted} key array. *)

val locate_group : plan -> string -> int option
(** Index of the last group whose first key is <= the probe, or [None] when
    the probe precedes every group. *)

val group_prefix : max_len:int -> string array -> int -> int -> string
(** Longest shared prefix of [keys.(lo..hi-1)], capped (exposed for tests). *)

val total_bytes_saved : plan -> string array -> int
(** Bytes removed from the entry layer relative to storing full keys. *)

lib/core/config.ml: Compaction Pmem Pmtable Printf Ssd

lib/core/config.mli: Compaction Pmem Pmtable Ssd

lib/core/engine.ml: Array Compaction Config Float Fmt Fun Hashtbl List Manifest Memtable Metrics Option Pmem Pmtable Printf Sim Ssd Sstable String Util Wal

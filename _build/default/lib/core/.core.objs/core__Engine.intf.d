lib/core/engine.mli: Config Fmt Metrics Pmem Sim Ssd

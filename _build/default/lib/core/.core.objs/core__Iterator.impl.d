lib/core/iterator.ml: Engine List

lib/core/iterator.mli: Engine

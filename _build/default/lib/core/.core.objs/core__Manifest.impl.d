lib/core/manifest.ml: Buffer List Option Ssd Util

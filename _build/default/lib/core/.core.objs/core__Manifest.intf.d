lib/core/manifest.mli: Ssd

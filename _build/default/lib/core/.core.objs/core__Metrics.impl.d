lib/core/metrics.ml: Util

lib/core/metrics.mli: Util

lib/core/wal.ml: Buffer Printf Ssd Util

lib/core/wal.mli: Ssd Util

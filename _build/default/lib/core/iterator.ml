(* Forward iterator over the live keyspace of an engine.

   A cursor fetches windows of merged, tombstone-resolved pairs through
   Engine.collect_window and serves them one at a time; when a window
   drains it refetches from the successor of the last delivered key. Each
   window read is charged like any other engine read, so iterating is as
   expensive as the scans it replaces.

   No snapshot is taken: a window reflects the engine at the moment it was
   fetched, so writes racing the iteration may or may not appear — the
   usual contract of an unpinned LSM cursor. *)

type t = {
  engine : Engine.t;
  window : int;
  mutable buffer : (string * string) list;
  mutable resume : string option;  (* next window's start; None = exhausted *)
}

let key_successor k = k ^ "\x00"

let rec refill t =
  match t.resume with
  | None -> ()
  | Some start ->
      let pairs, bound = Engine.collect_window t.engine ~start ~limit:t.window in
      t.buffer <- pairs;
      (match (pairs, bound) with
      | _, None ->
          (* every source exhausted: this buffer is the final one *)
          t.resume <- None
      | [], Some bound ->
          (* a window full of shadowed versions or tombstones: advance past
             the safe bound and try again (guaranteed progress: the bound
             is at least the window's start key) *)
          t.resume <- Some (key_successor bound);
          refill t
      | pairs, Some _ ->
          let last = fst (List.nth pairs (List.length pairs - 1)) in
          t.resume <- Some (key_successor last))

let seek ?(window = 64) engine start =
  if window <= 0 then invalid_arg "Iterator.seek: window must be positive";
  let t = { engine; window; buffer = []; resume = Some start } in
  refill t;
  t

let valid t = t.buffer <> []

let key t =
  match t.buffer with
  | (k, _) :: _ -> k
  | [] -> invalid_arg "Iterator.key: iterator exhausted"

let value t =
  match t.buffer with
  | (_, v) :: _ -> v
  | [] -> invalid_arg "Iterator.value: iterator exhausted"

let next t =
  match t.buffer with
  | [] -> invalid_arg "Iterator.next: iterator exhausted"
  | _ :: rest ->
      t.buffer <- rest;
      if rest = [] then refill t

let fold ?window engine ~start ~init f =
  let it = seek ?window engine start in
  let acc = ref init in
  while valid it do
    acc := f !acc (key it) (value it);
    next it
  done;
  !acc

let take it n =
  let rec loop acc n =
    if n = 0 || not (valid it) then List.rev acc
    else begin
      let pair = (key it, value it) in
      next it;
      loop (pair :: acc) (n - 1)
    end
  in
  loop [] n

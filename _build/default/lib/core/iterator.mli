(** Forward iterator over the live keyspace of an engine: merged across the
    memtable, level-0, and the SSD levels, tombstone-resolved, served in
    windows whose reads are charged like any other engine access. No
    snapshot is taken (the usual unpinned-LSM-cursor contract). *)

type t

val seek : ?window:int -> Engine.t -> string -> t
(** Position at the first live key >= the probe. [window] is the fetch
    granularity (default 64 keys). *)

val valid : t -> bool
val key : t -> string
(** Raises [Invalid_argument] when exhausted. *)

val value : t -> string
val next : t -> unit

val fold :
  ?window:int -> Engine.t -> start:string -> init:'a -> ('a -> string -> string -> 'a) -> 'a
(** Fold over every live pair from [start] to the end of the keyspace. *)

val take : t -> int -> (string * string) list
(** Consume up to [n] pairs from the cursor. *)

(** The engine's structural state, persisted to an SSD file reachable from
    the device superblock: every PM region and SSD file of every partition,
    the WAL id, and the sequence high-water mark. Recovery starts here. *)

type row = { region_id : int; watermark : string }

type partition_state = {
  lo : string;
  hi : string;
  unsorted : row list;
  sorted_run : int list;
  ssd_l0 : int list;
  levels : int list list;
}

type state = {
  next_seq : int;
  wal_file_id : int option;
  partitions : partition_state list;
}

val encode : state -> string
val decode : string -> state
(** Raises [Failure] on a bad magic or truncation. *)

val persist : Ssd.t -> state -> unit
(** Write a fresh manifest file, repoint the superblock, delete the old. *)

val load : Ssd.t -> state option
(** [None] on a fresh device. *)

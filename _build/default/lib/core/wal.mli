(** Write-ahead log on the SSD: appended (durably) before the memtable, so
    recovery replays it after a crash. Rotates after each memtable flush.
    Appends are group-committed to amortise device writes. *)

type t

val create : ?group_bytes:int -> Ssd.t -> t
val file_id : t -> int
val append : t -> Util.Kv.entry -> unit

val sync : t -> unit
(** Force the group-commit buffer to the device. *)

val rotate : t -> unit
(** Start a fresh log; the previous one's data is durable in level-0. *)

val entry_count : t -> int

val replay : t -> (Util.Kv.entry -> unit) -> unit
(** Visit every logged entry oldest-first (syncs the buffer first). *)

val open_existing : Ssd.t -> file_id:int -> t
(** Reattach to a persisted log. Raises [Failure] if the file is gone. *)

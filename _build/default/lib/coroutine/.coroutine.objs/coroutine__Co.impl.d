lib/coroutine/co.ml: Effect

lib/coroutine/co.mli: Effect

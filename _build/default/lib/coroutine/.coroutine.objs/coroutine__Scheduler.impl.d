lib/coroutine/scheduler.ml: Array Co Effect Float Printf Queue Sim Ssd Util

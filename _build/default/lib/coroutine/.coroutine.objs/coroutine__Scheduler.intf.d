lib/coroutine/scheduler.mli: Sim Ssd

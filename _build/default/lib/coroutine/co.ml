(* Coroutine primitives as OCaml 5 effects.

   A coroutine is ordinary OCaml code that performs these effects; the
   scheduler's handler suspends the one-shot continuation and decides when
   (in simulated time) to resume it. This mirrors the paper's C++
   stackful-coroutine implementation: suspension points are exactly the
   simulated-CPU and simulated-I/O calls. *)

type io_kind = Read | Write

type _ Effect.t +=
  | Work : float -> unit Effect.t
      (* consume simulated CPU for the duration on the owning core *)
  | Io : io_kind * int -> float Effect.t
      (* blocking device I/O of [bytes]; resumes with the observed latency *)
  | Offload_write : int -> unit Effect.t
      (* hand an S3 write of [bytes] to the worker's flush coroutine and
         continue immediately (PM-Blade §V-C) *)
  | Yield : unit Effect.t
  | Now : float Effect.t
      (* current simulated time; resumes immediately (tracing) *)

let work duration = Effect.perform (Work duration)
let io kind bytes = Effect.perform (Io (kind, bytes))
let read bytes = io Read bytes
let write bytes = io Write bytes
let offload_write bytes = Effect.perform (Offload_write bytes)
let yield () = Effect.perform Yield
let now () = Effect.perform Now

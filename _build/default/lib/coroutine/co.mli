(** Coroutine primitives as OCaml 5 effects.

    A coroutine is ordinary OCaml code performing these effects; the
    {!Scheduler}'s handler suspends the one-shot continuation and resumes it
    at the right simulated time. Suspension points mirror the paper's
    stackful coroutines: simulated CPU bursts and simulated device I/O. *)

type io_kind = Read | Write

type _ Effect.t +=
  | Work : float -> unit Effect.t
  | Io : io_kind * int -> float Effect.t
  | Offload_write : int -> unit Effect.t
  | Yield : unit Effect.t
  | Now : float Effect.t

val work : float -> unit
(** Consume simulated CPU for the duration on the owning core. *)

val io : io_kind -> int -> float
(** Blocking device I/O; returns the observed latency (queueing included). *)

val read : int -> float
val write : int -> float

val offload_write : int -> unit
(** Hand an S3 write to the worker's flush coroutine and continue without
    blocking (the PM-Blade §V-C optimisation). Falls back to blocking
    {!write} under schedulers with no flush coroutine. *)

val yield : unit -> unit

val now : unit -> float
(** Current simulated time; resumes immediately (for stage tracing). *)

lib/exec/harness.ml: Coroutine Sim Ssd Task

lib/exec/harness.mli: Coroutine Ssd Task

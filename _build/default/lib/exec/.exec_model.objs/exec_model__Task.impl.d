lib/exec/task.ml: Coroutine Float Util

lib/exec/task.mli:

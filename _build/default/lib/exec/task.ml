(* The compaction process as a coroutine: the S1/S2/S3 loop of Fig. 4/5.

   S1 reads an input block (from the SSD, or from PM — a memory-time Work —
   for the level-0 share of the input), S2 merges it (CPU time proportional
   to entry count) while dropping duplicated entries, and S3 fires whenever
   the surviving output fills the write buffer. Because the number of
   survivors per block varies with the workload, S3's trigger timing is
   unpredictable and S2 gets cut into "fragments" under synchronous writes
   (§V-B) — the behaviour the flush coroutine removes.

   Per-block dedup is drawn around [dedup_ratio] with spread so the erratic
   behaviour emerges rather than being scripted. *)

type params = {
  input_bytes : int;
  value_bytes : int;
  entry_overhead : int;       (* key + metadata bytes per entry *)
  read_block : int;           (* S1 granularity *)
  write_buffer : int;         (* S3 granularity *)
  pm_input_fraction : float;  (* share of input blocks living on PM level-0 *)
  dedup_ratio : float;        (* mean fraction of entries dropped by merge *)
  dedup_spread : float;       (* per-block variation around the mean *)
  cpu_per_entry_ns : float;   (* S2 per-entry cost: compares, heap ops *)
  cpu_per_byte_ns : float;    (* S2 per-byte cost: copies, checksums *)
  pm_read_ns_per_byte : float;
  offload_s3 : bool;          (* S3 via flush coroutine (PM-Blade) or blocking *)
  seed : int;
  on_stage : (string -> float -> float -> unit) option;
      (* stage tracing: name ("S1"/"S2"/"S3"/"S3q"), start, finish in
         simulated time — what the Fig. 4 timelines render *)
}

let default =
  {
    input_bytes = 2 * 1024 * 1024;
    value_bytes = 1024;
    entry_overhead = 24;
    read_block = 256 * 1024;
    write_buffer = 1024 * 1024;
    pm_input_fraction = 0.5;
    dedup_ratio = 0.2;
    dedup_spread = 0.15;
    cpu_per_entry_ns = 250.0;
    cpu_per_byte_ns = 1.6;
    pm_read_ns_per_byte = 0.35;
    offload_s3 = false;
    seed = 7;
    on_stage = None;
  }

(* One compaction (sub)task as a closure for Coroutine.Scheduler.spawn. *)
let compaction p () =
  let rng = Util.Xoshiro.create p.seed in
  let entry_size = p.value_bytes + p.entry_overhead in
  let remaining = ref p.input_bytes in
  let write_fill = ref 0 in
  let staged name (f : unit -> unit) =
    match p.on_stage with
    | None -> f ()
    | Some trace ->
        let t0 = Coroutine.Co.now () in
        f ();
        trace name t0 (Coroutine.Co.now ())
  in
  let emit bytes =
    if p.offload_s3 then staged "S3q" (fun () -> Coroutine.Co.offload_write bytes)
    else staged "S3" (fun () -> ignore (Coroutine.Co.write bytes))
  in
  while !remaining > 0 do
    let block = min p.read_block !remaining in
    remaining := !remaining - block;
    (* S1: level-0 input is a PM (memory) read; level-1 input hits the SSD. *)
    staged "S1" (fun () ->
        if Util.Xoshiro.float rng 1.0 < p.pm_input_fraction then
          Coroutine.Co.work (float_of_int block *. p.pm_read_ns_per_byte)
        else ignore (Coroutine.Co.read block));
    (* S2: merge the block's entries; duplicates are discarded. *)
    let entries = max 1 (block / entry_size) in
    staged "S2" (fun () ->
        Coroutine.Co.work
          ((float_of_int entries *. p.cpu_per_entry_ns)
          +. (float_of_int block *. p.cpu_per_byte_ns)));
    let dedup =
      let d =
        p.dedup_ratio +. ((Util.Xoshiro.float rng 2.0 -. 1.0) *. p.dedup_spread)
      in
      Float.max 0.0 (Float.min 0.95 d)
    in
    let survivors = int_of_float (float_of_int entries *. (1.0 -. dedup)) in
    write_fill := !write_fill + (survivors * entry_size);
    (* S3: flush whenever the write buffer fills. *)
    while !write_fill >= p.write_buffer do
      emit p.write_buffer;
      write_fill := !write_fill - p.write_buffer
    done
  done;
  if !write_fill > 0 then emit !write_fill

(** The compaction process as a coroutine: the S1 (read block) / S2 (merge)
    / S3 (write block) loop of the paper's Fig. 4/5. Per-block dedup varies
    around the mean so S3's trigger timing is erratic, producing the S2
    "fragments" that motivate the flush coroutine. *)

type params = {
  input_bytes : int;
  value_bytes : int;
  entry_overhead : int;
  read_block : int;
  write_buffer : int;
  pm_input_fraction : float;
  dedup_ratio : float;
  dedup_spread : float;
  cpu_per_entry_ns : float;
  cpu_per_byte_ns : float;
  pm_read_ns_per_byte : float;
  offload_s3 : bool;
  seed : int;
  on_stage : (string -> float -> float -> unit) option;
      (** stage tracing: name ("S1"/"S2"/"S3"/"S3q"), start, finish *)
}

val default : params

val compaction : params -> unit -> unit
(** A compaction (sub)task as a closure for {!Coroutine.Scheduler.spawn}; performs
    {!Co} effects. *)

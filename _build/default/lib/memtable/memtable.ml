(* DRAM memtable: a skiplist ordered by (key asc, seq desc).

   The write path of every engine variant inserts here; when [byte_size]
   crosses the configured limit the table is rotated to immutable and handed
   to minor compaction. Ordering by seq-descending within a key means a
   point lookup is "seek to (key, +inf seq) and take the first node with
   that key" — the newest version — and iteration yields versions
   newest-first as every merge expects.

   DRAM access costs are charged to the virtual clock per touched node, so
   memtable reads participate in end-to-end simulated latency. *)

let max_level = 12
let branching = 4

type node = {
  entry : Util.Kv.entry;
  next : node option array; (* length = node's level *)
}

type t = {
  clock : Sim.Clock.t;
  rng : Util.Xoshiro.t;
  head : node option array;
  mutable level : int;
  mutable count : int;
  mutable bytes : int;
  mutable min_seq : int;
  mutable max_seq : int;
  dram_access_ns : float;
}

let dram_access_ns_default = 100.0

let create ?(dram_access_ns = dram_access_ns_default) ?(seed = 42) clock =
  {
    clock;
    rng = Util.Xoshiro.create seed;
    head = Array.make max_level None;
    level = 1;
    count = 0;
    bytes = 0;
    min_seq = max_int;
    max_seq = min_int;
    dram_access_ns;
  }

let count t = t.count
let byte_size t = t.bytes
let is_empty t = t.count = 0
let seq_range t = if t.count = 0 then None else Some (t.min_seq, t.max_seq)

let charge t n = Sim.Clock.advance t.clock (float_of_int n *. t.dram_access_ns)

let random_level t =
  let rec loop lvl =
    if lvl < max_level && Util.Xoshiro.int t.rng branching = 0 then loop (lvl + 1) else lvl
  in
  loop 1

(* Strictly-less in skiplist order: (key asc, seq desc). *)
let node_before entry candidate = Util.Kv.compare_entry candidate entry < 0

let insert t entry =
  let update = Array.make max_level None in
  let touched = ref 0 in
  (* Walk from the top level down, recording the rightmost node < entry. *)
  let rec walk level prev =
    if level < 0 then ()
    else begin
      let rec advance prev =
        let next =
          match prev with
          | None -> t.head.(level)
          | Some node -> node.next.(level)
        in
        match next with
        | Some n when node_before entry n.entry ->
            incr touched;
            advance (Some n)
        | _ -> prev
      in
      let prev = advance prev in
      update.(level) <- prev;
      walk (level - 1) prev
    end
  in
  walk (t.level - 1) None;
  let level = random_level t in
  if level > t.level then begin
    for l = t.level to level - 1 do
      update.(l) <- None
    done;
    t.level <- level
  end;
  let node = { entry; next = Array.make level None } in
  for l = 0 to level - 1 do
    match update.(l) with
    | None ->
        node.next.(l) <- t.head.(l);
        t.head.(l) <- Some node
    | Some prev ->
        node.next.(l) <- prev.next.(l);
        prev.next.(l) <- Some node
  done;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + Util.Kv.encoded_size entry;
  if entry.seq < t.min_seq then t.min_seq <- entry.seq;
  if entry.seq > t.max_seq then t.max_seq <- entry.seq;
  charge t (!touched + level)

(* First node in order with node.entry >= probe (probe = (key, max_int) for
   point lookups so the newest version of the key comes first). *)
let seek_node t ~key ~seq =
  let probe = Util.Kv.entry ~key ~seq "" in
  let touched = ref 0 in
  let rec walk level prev =
    let rec advance prev =
      let next = match prev with None -> t.head.(level) | Some n -> n.next.(level) in
      match next with
      | Some n when node_before probe n.entry ->
          incr touched;
          advance (Some n)
      | _ -> prev
    in
    let prev = advance prev in
    if level = 0 then
      match prev with None -> t.head.(0) | Some n -> n.next.(0)
    else walk (level - 1) prev
  in
  let result = walk (t.level - 1) None in
  charge t (max 1 !touched);
  result

let find t key =
  match seek_node t ~key ~seq:max_int with
  | Some node when node.entry.key = key -> Some node.entry
  | _ -> None

let get t key =
  match find t key with
  | Some { kind = Util.Kv.Put; value; _ } -> Some value
  | Some { kind = Util.Kv.Delete; _ } | None -> None

(* All entries in (key asc, seq desc) order; charges a scan cost. *)
let to_list t =
  charge t t.count;
  let rec loop acc = function
    | None -> List.rev acc
    | Some node -> loop (node.entry :: acc) node.next.(0)
  in
  loop [] t.head.(0)

let iter t f =
  charge t t.count;
  let rec loop = function
    | None -> ()
    | Some node ->
        f node.entry;
        loop node.next.(0)
  in
  loop t.head.(0)

(* Entries with key in [start, stop), newest versions first within a key. *)
let range t ~start ~stop =
  let rec collect acc = function
    | None -> List.rev acc
    | Some node ->
        if String.compare node.entry.Util.Kv.key stop >= 0 then List.rev acc
        else begin
          charge t 1;
          collect (node.entry :: acc) node.next.(0)
        end
  in
  collect [] (seek_node t ~key:start ~seq:max_int)

(* Up to [limit] entries with key >= start (for windowed iteration). *)
let from t ~start ~limit =
  let rec collect n acc = function
    | None -> List.rev acc
    | Some node ->
        if n >= limit then List.rev acc
        else begin
          charge t 1;
          collect (n + 1) (node.entry :: acc) node.next.(0)
        end
  in
  collect 0 [] (seek_node t ~key:start ~seq:max_int)

(** DRAM memtable: skiplist ordered by (key asc, seq desc).

    Newest version of a key first, which is the order every merge and point
    lookup relies on. DRAM access costs are charged to the virtual clock per
    touched node so memtable reads participate in simulated latency. *)

type t

val create : ?dram_access_ns:float -> ?seed:int -> Sim.Clock.t -> t
val count : t -> int
val byte_size : t -> int
(** Sum of encoded entry sizes; the rotation trigger compares this against
    the configured memtable limit (64 MB in the paper, scaled here). *)

val is_empty : t -> bool
val seq_range : t -> (int * int) option

val insert : t -> Util.Kv.entry -> unit

val find : t -> string -> Util.Kv.entry option
(** Newest version of the key (may be a tombstone). *)

val get : t -> string -> string option
(** Newest visible value; [None] for absent or deleted keys. *)

val to_list : t -> Util.Kv.entry list
(** All entries in (key asc, seq desc) order. *)

val iter : t -> (Util.Kv.entry -> unit) -> unit

val range : t -> start:string -> stop:string -> Util.Kv.entry list
(** Entries with key in [\[start, stop)]. *)

val from : t -> start:string -> limit:int -> Util.Kv.entry list
(** Up to [limit] entries with key >= [start] (windowed iteration). *)

lib/pmtable/array_table.ml: Array Buffer Builder List Pmem Sim String Util

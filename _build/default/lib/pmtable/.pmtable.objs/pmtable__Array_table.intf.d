lib/pmtable/array_table.mli: Pmem Util

lib/pmtable/builder.ml: Buffer Char Pmem String Util

lib/pmtable/builder.mli: Pmem

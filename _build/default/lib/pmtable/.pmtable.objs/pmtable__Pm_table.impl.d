lib/pmtable/pm_table.ml: Array Buffer Builder Char List Pmem Sim String Util

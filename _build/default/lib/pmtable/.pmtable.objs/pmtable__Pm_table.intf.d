lib/pmtable/pm_table.mli: Pmem Util

lib/pmtable/snappy_table.ml: Array Buffer Builder Compress List Pmem Sim String Util

lib/pmtable/snappy_table.mli: Pmem Util

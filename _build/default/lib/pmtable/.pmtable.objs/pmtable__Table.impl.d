lib/pmtable/table.ml: Array Array_table Pm_table Snappy_table String

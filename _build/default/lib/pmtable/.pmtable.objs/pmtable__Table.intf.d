lib/pmtable/table.mli: Pmem Util

(* Uncompressed array-based PM table (the structure MatrixKV uses, and the
   "Array-based" baseline of Fig. 6).

   Layout on the region:

     [ entry data ........ ][ offset slots: u32 per entry ]

   The data area holds entries encoded back-to-back with Kv.encode; the
   metadata area holds one fixed-width offset per entry so binary search can
   jump to any entry. Each binary-search probe therefore costs two PM
   accesses: one for the offset slot, one for the entry bytes -- the double
   access the paper's three-layer structure is designed to avoid. *)

type t = {
  dev : Pmem.t;
  region : Pmem.region;
  count : int;
  slots_off : int;      (* start of the offset area *)
  data_len : int;
  min_key : string;
  max_key : string;
  min_seq : int;
  max_seq : int;
  payload_bytes : int;  (* uncompressed logical size *)
}

(* CPU cost of encoding/decoding one entry, charged alongside device time. *)
let encode_cpu_ns = 30.0
let decode_cpu_ns = 25.0

let charge_cpu dev ns = Sim.Clock.advance (Pmem.clock dev) ns

let build dev (entries : Util.Kv.entry array) =
  let n = Array.length entries in
  if n = 0 then invalid_arg "Array_table.build: empty input";
  for i = 1 to n - 1 do
    if Util.Kv.compare_entry entries.(i - 1) entries.(i) > 0 then
      invalid_arg "Array_table.build: input not sorted by Kv.compare_entry"
  done;
  let payload = Buffer.create 4096 in
  let offsets = Array.make n 0 in
  let min_seq = ref max_int and max_seq = ref min_int in
  Array.iteri
    (fun i e ->
      offsets.(i) <- Buffer.length payload;
      Util.Kv.encode payload e;
      if e.Util.Kv.seq < !min_seq then min_seq := e.seq;
      if e.seq > !max_seq then max_seq := e.seq)
    entries;
  charge_cpu dev (float_of_int n *. encode_cpu_ns);
  let data_len = Buffer.length payload in
  let total = data_len + (4 * n) in
  let region = Pmem.alloc dev total in
  let builder = Builder.create dev region in
  Builder.add_string builder (Buffer.contents payload);
  Array.iter (fun off -> Builder.add_u32 builder off) offsets;
  let written = Builder.finish builder in
  assert (written = total);
  {
    dev;
    region;
    count = n;
    slots_off = data_len;
    data_len;
    min_key = entries.(0).key;
    max_key = entries.(n - 1).key;
    min_seq = !min_seq;
    max_seq = !max_seq;
    payload_bytes = data_len;
  }

let count t = t.count
let byte_size t = Pmem.region_len t.region
let payload_bytes t = t.payload_bytes
let min_key t = t.min_key
let max_key t = t.max_key
let seq_range t = (t.min_seq, t.max_seq)
let free t = Pmem.free t.dev t.region
let region_id t = Pmem.region_id t.region

let entry_bounds t i =
  let slot = Pmem.read t.dev t.region ~off:(t.slots_off + (4 * i)) ~len:4 in
  let start = Builder.read_u32 slot 0 in
  let stop =
    if i + 1 < t.count then
      let slot = Pmem.read t.dev t.region ~off:(t.slots_off + (4 * (i + 1))) ~len:4 in
      Builder.read_u32 slot 0
    else t.data_len
  in
  (start, stop)

(* One probe = offset-slot read + entry read: the two PM accesses per
   lookup step that motivate the compressed layout. *)
let read_entry t i =
  let start, stop = entry_bounds t i in
  let raw = Pmem.read t.dev t.region ~off:start ~len:(stop - start) in
  charge_cpu t.dev decode_cpu_ns;
  fst (Util.Kv.decode raw 0)

(* Index of the first entry >= (key, max seq), i.e. the newest version of
   [key] if present. *)
let lower_bound t key =
  let probe = Util.Kv.entry ~key ~seq:max_int "" in
  let lo = ref 0 and hi = ref t.count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let e = read_entry t mid in
    if Util.Kv.compare_entry e probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let get t key =
  if key < t.min_key || key > t.max_key then None
  else begin
    let i = lower_bound t key in
    if i >= t.count then None
    else
      let e = read_entry t i in
      if e.Util.Kv.key = key then Some e else None
  end

(* Sequential scan: read the data area in chunk-sized pieces (charging
   bandwidth, not per-entry random accesses), then decode. *)
let read_data_sequential t =
  let chunk = 4096 in
  let pieces = Buffer.create t.data_len in
  let off = ref 0 in
  while !off < t.data_len do
    let len = min chunk (t.data_len - !off) in
    Buffer.add_string pieces (Pmem.read t.dev t.region ~off:!off ~len);
    off := !off + len
  done;
  Buffer.contents pieces

let iter t f =
  let data = read_data_sequential t in
  charge_cpu t.dev (float_of_int t.count *. decode_cpu_ns);
  let pos = ref 0 in
  for _ = 1 to t.count do
    let e, next = Util.Kv.decode data !pos in
    pos := next;
    f e
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

(* Entries with key in [start, stop): binary search to the start, then
   sequential reads. *)
let range t ~start ~stop f =
  if stop > t.min_key && start <= t.max_key then begin
    let i0 = lower_bound t start in
    let rec loop i =
      if i < t.count then begin
        let e = read_entry t i in
        if String.compare e.Util.Kv.key stop < 0 then begin
          f e;
          loop (i + 1)
        end
      end
    in
    loop i0
  end

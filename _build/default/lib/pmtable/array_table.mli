(** Uncompressed array-based PM table: entry data followed by fixed-width
    offset slots (the structure MatrixKV uses; the "Array-based" baseline of
    Fig. 6). Each binary-search probe costs two PM accesses — offset slot
    then entry — the double access the three-layer PM table avoids. *)

type t

val build : Pmem.t -> Util.Kv.entry array -> t
(** Build from entries sorted by {!Util.Kv.compare_entry}. Charges encode
    CPU plus buffered PM writes. Raises [Invalid_argument] on empty input
    and [Pmem.Out_of_space] when the device is full. *)

val count : t -> int
val byte_size : t -> int
(** Bytes occupied on the device (data + offset slots). *)

val payload_bytes : t -> int
(** Uncompressed logical size (same as the data area here). *)

val min_key : t -> string
val max_key : t -> string
val seq_range : t -> int * int
val free : t -> unit

val get : t -> string -> Util.Kv.entry option
(** Newest version of the key in this table. *)

val iter : t -> (Util.Kv.entry -> unit) -> unit
(** All entries in (key asc, seq desc) order at sequential-read cost. *)

val to_list : t -> Util.Kv.entry list

val range : t -> start:string -> stop:string -> (Util.Kv.entry -> unit) -> unit
(** Entries with key in [\[start, stop)]. *)

val region_id : t -> int
(** The PM region id, manifest-stable across restarts. *)

(* Buffered sequential writer onto a PM region.

   Table builders append through a DRAM staging buffer that is written to
   the device in [chunk] -sized pieces, amortising the per-access write cost
   the way real PM code batches ntstore/clwb. Each chunk is flushed
   (clwb'd) as it lands so the table is durable once [finish] drains. *)

type t = {
  dev : Pmem.t;
  region : Pmem.region;
  chunk : int;
  staging : Buffer.t;
  mutable written : int;  (* bytes already on the device *)
}

let default_chunk = 4096

let create ?(chunk = default_chunk) dev region =
  { dev; region; chunk; staging = Buffer.create chunk; written = 0 }

let position t = t.written + Buffer.length t.staging

let spill t =
  let data = Buffer.contents t.staging in
  if String.length data > 0 then begin
    Pmem.write t.dev t.region ~off:t.written data;
    Pmem.flush t.dev t.region ~off:t.written ~len:(String.length data);
    t.written <- t.written + String.length data;
    Buffer.clear t.staging
  end

let add_string t s =
  Buffer.add_string t.staging s;
  if Buffer.length t.staging >= t.chunk then spill t

let add_char t c =
  Buffer.add_char t.staging c;
  if Buffer.length t.staging >= t.chunk then spill t

let add_varint t v =
  Util.Varint.write t.staging v;
  if Buffer.length t.staging >= t.chunk then spill t

(* Fixed-width big-endian u32, for binary-searchable offset slots. *)
let add_u32 t v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Builder.add_u32: out of range";
  add_char t (Char.chr ((v lsr 24) land 0xff));
  add_char t (Char.chr ((v lsr 16) land 0xff));
  add_char t (Char.chr ((v lsr 8) land 0xff));
  add_char t (Char.chr (v land 0xff))

let add_u16 t v =
  if v < 0 || v > 0xFFFF then invalid_arg "Builder.add_u16: out of range";
  add_char t (Char.chr ((v lsr 8) land 0xff));
  add_char t (Char.chr (v land 0xff))

let finish t =
  spill t;
  Pmem.drain t.dev;
  t.written

let read_u32 s pos =
  let b k = Char.code s.[pos + k] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let read_u16 s pos =
  let b k = Char.code s.[pos + k] in
  (b 0 lsl 8) lor b 1

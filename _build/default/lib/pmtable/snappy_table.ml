(* Array-based PM tables compressed with the snappy-like LZ codec — the
   "Array-snappy" and "Array-snappy-group" baselines of Fig. 6.

   Per-pair mode: each encoded entry is compressed independently.

     [ compressed entries back-to-back ][ u32 slot per entry ]

   A binary-search probe must read and *decompress one entry* to learn its
   key, which is why the paper measures ~2.3x higher read latency than the
   plain array table.

   Group mode: [members_per_group] encoded entries are concatenated and
   compressed together.

     [ compressed groups back-to-back ][ u32 slot per group ]

   Fewer, larger compression calls make building faster and the ratio
   better, but a probe must decompress a *whole group*, making reads slower
   still — exactly the trade-off Fig. 6 reports. *)

type mode = Per_pair | Grouped of int

type t = {
  dev : Pmem.t;
  region : Pmem.region;
  mode : mode;
  count : int;        (* entries *)
  chunks : int;       (* compressed units: entries or groups *)
  slots_off : int;
  data_len : int;
  min_key : string;
  max_key : string;
  min_seq : int;
  max_seq : int;
  payload_bytes : int;
}

let encode_cpu_ns = 30.0
let charge_cpu dev ns = Sim.Clock.advance (Pmem.clock dev) ns

let charge_compress dev input_bytes =
  charge_cpu dev
    (Compress.Lz.compress_call_ns
    +. (float_of_int input_bytes *. Compress.Lz.compress_cost_ns_per_byte))

let charge_decompress dev output_bytes =
  charge_cpu dev
    (Compress.Lz.decompress_call_ns
    +. (float_of_int output_bytes *. Compress.Lz.decompress_cost_ns_per_byte))

let members_of_mode = function Per_pair -> 1 | Grouped k -> k

let build ?(mode = Per_pair) dev (entries : Util.Kv.entry array) =
  let n = Array.length entries in
  if n = 0 then invalid_arg "Snappy_table.build: empty input";
  for i = 1 to n - 1 do
    if Util.Kv.compare_entry entries.(i - 1) entries.(i) > 0 then
      invalid_arg "Snappy_table.build: input not sorted by Kv.compare_entry"
  done;
  let members = members_of_mode mode in
  if members <= 0 then invalid_arg "Snappy_table.build: group size must be positive";
  let chunk_count = (n + members - 1) / members in
  let data = Buffer.create 4096 in
  let offsets = Array.make chunk_count 0 in
  let min_seq = ref max_int and max_seq = ref min_int and payload = ref 0 in
  for c = 0 to chunk_count - 1 do
    offsets.(c) <- Buffer.length data;
    let lo = c * members and hi = min n ((c + 1) * members) in
    let raw = Buffer.create 256 in
    for i = lo to hi - 1 do
      let e = entries.(i) in
      Util.Kv.encode raw e;
      payload := !payload + Util.Kv.encoded_size e;
      if e.Util.Kv.seq < !min_seq then min_seq := e.seq;
      if e.seq > !max_seq then max_seq := e.seq
    done;
    let raw = Buffer.contents raw in
    charge_compress dev (String.length raw);
    Buffer.add_string data (Compress.Lz.compress raw)
  done;
  charge_cpu dev (float_of_int n *. encode_cpu_ns);
  let data_len = Buffer.length data in
  let total = data_len + (4 * chunk_count) in
  let region = Pmem.alloc dev total in
  let builder = Builder.create dev region in
  Builder.add_string builder (Buffer.contents data);
  Array.iter (fun off -> Builder.add_u32 builder off) offsets;
  let written = Builder.finish builder in
  assert (written = total);
  {
    dev;
    region;
    mode;
    count = n;
    chunks = chunk_count;
    slots_off = data_len;
    data_len;
    min_key = entries.(0).key;
    max_key = entries.(n - 1).key;
    min_seq = !min_seq;
    max_seq = !max_seq;
    payload_bytes = !payload;
  }

let count t = t.count
let byte_size t = Pmem.region_len t.region
let payload_bytes t = t.payload_bytes
let min_key t = t.min_key
let max_key t = t.max_key
let seq_range t = (t.min_seq, t.max_seq)
let free t = Pmem.free t.dev t.region
let region_id t = Pmem.region_id t.region

let chunk_bounds t c =
  let slot = Pmem.read t.dev t.region ~off:(t.slots_off + (4 * c)) ~len:4 in
  let start = Builder.read_u32 slot 0 in
  let stop =
    if c + 1 < t.chunks then
      let slot = Pmem.read t.dev t.region ~off:(t.slots_off + (4 * (c + 1))) ~len:4 in
      Builder.read_u32 slot 0
    else t.data_len
  in
  (start, stop)

(* Read + decompress + decode one compressed unit. *)
let read_chunk t c =
  let start, stop = chunk_bounds t c in
  let compressed = Pmem.read t.dev t.region ~off:start ~len:(stop - start) in
  let raw = Compress.Lz.decompress compressed in
  charge_decompress t.dev (String.length raw);
  let members = members_of_mode t.mode in
  let lo = c * members in
  let count = min members (t.count - lo) in
  let pos = ref 0 in
  Array.init count (fun _ ->
      let e, next = Util.Kv.decode raw !pos in
      pos := next;
      e)

(* Last chunk whose first entry <= probe (by entry order). Every probe pays
   a full chunk decompression — the cost Fig. 6b measures. *)
let locate_chunk t probe =
  let first_entry c = (read_chunk t c).(0) in
  if Util.Kv.compare_entry (first_entry 0) probe > 0 then None
  else begin
    let lo = ref 0 and hi = ref (t.chunks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Util.Kv.compare_entry (first_entry mid) probe <= 0 then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let get t key =
  if key < t.min_key || key > t.max_key then None
  else begin
    let probe = Util.Kv.entry ~key ~seq:max_int "" in
    let find_in c = Array.find_opt (fun (e : Util.Kv.entry) -> e.key = key) (read_chunk t c) in
    match locate_chunk t probe with
    | None ->
        (* (key, +inf) sorts before every version of its own key, so a key
           that opens the table lands here: check the first chunk. *)
        find_in 0
    | Some c -> (
        match find_in c with
        | Some e -> Some e
        | None ->
            (* The newest version can open the next chunk when the probe
               falls exactly on a chunk boundary. *)
            if c + 1 < t.chunks then find_in (c + 1) else None)
  end

let iter t f =
  for c = 0 to t.chunks - 1 do
    Array.iter f (read_chunk t c)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let range t ~start ~stop f =
  if stop > t.min_key && start <= t.max_key then begin
    let probe = Util.Kv.entry ~key:start ~seq:max_int "" in
    let c0 = match locate_chunk t probe with None -> 0 | Some c -> c in
    let continue = ref true in
    let c = ref c0 in
    while !continue && !c < t.chunks do
      Array.iter
        (fun (e : Util.Kv.entry) ->
          if String.compare e.key stop >= 0 then continue := false
          else if String.compare e.key start >= 0 then f e)
        (read_chunk t !c);
      incr c
    done
  end

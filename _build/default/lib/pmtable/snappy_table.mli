(** Array-based PM tables compressed with the snappy-like LZ codec — the
    "Array-snappy" (per-pair) and "Array-snappy-group" baselines of Fig. 6.
    Per-pair probes decompress one entry per binary-search step; group
    probes decompress a whole group, trading read cost for build speed and
    compression ratio. *)

type mode = Per_pair | Grouped of int

type t

val build : ?mode:mode -> Pmem.t -> Util.Kv.entry array -> t
(** Build from sorted entries. [mode] defaults to [Per_pair]; the paper's
    group variant is [Grouped 8]. *)

val count : t -> int
val byte_size : t -> int
val payload_bytes : t -> int
val min_key : t -> string
val max_key : t -> string
val seq_range : t -> int * int
val free : t -> unit

val get : t -> string -> Util.Kv.entry option
val iter : t -> (Util.Kv.entry -> unit) -> unit
val to_list : t -> Util.Kv.entry list
val range : t -> start:string -> stop:string -> (Util.Kv.entry -> unit) -> unit

val region_id : t -> int
(** The PM region id, manifest-stable across restarts. *)

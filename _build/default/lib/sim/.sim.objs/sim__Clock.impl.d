lib/sim/clock.ml: Float Fmt

lib/sim/clock.mli: Fmt

lib/sim/des.ml: Array Clock

lib/sim/des.mli: Clock

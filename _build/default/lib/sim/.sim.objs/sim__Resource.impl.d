lib/sim/resource.ml: Clock Float

lib/sim/resource.mli: Clock

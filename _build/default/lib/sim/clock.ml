(* Virtual clock, in nanoseconds.

   Every simulated device charges time here. Single-threaded engine
   experiments measure an operation's latency as the clock delta across the
   call; the discrete-event scheduler (Des) drives the same clock from its
   event queue. *)

type t = { mutable now : float }

let create () = { now = 0.0 }
let now t = t.now
let advance t dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative delta";
  t.now <- t.now +. dt

let advance_to t at = if at > t.now then t.now <- at

(* Pull the clock back, for overlap rebates: a single-threaded simulation
   that charged CPU and I/O serially can model their concurrent execution
   by rewinding the overlapped share (see Engine.with_major_timing). *)
let rewind t dt =
  if dt < 0.0 then invalid_arg "Clock.rewind: negative delta";
  t.now <- Float.max 0.0 (t.now -. dt)

let reset t = t.now <- 0.0

(* Measure the simulated duration of [f]. *)
let time t f =
  let t0 = t.now in
  let result = f () in
  (result, t.now -. t0)

let ns x = x
let us x = x *. 1e3
let ms x = x *. 1e6
let s x = x *. 1e9

let to_us x = x /. 1e3
let to_ms x = x /. 1e6
let to_s x = x /. 1e9

let pp_duration ppf x =
  if x < 1e3 then Fmt.pf ppf "%.0f ns" x
  else if x < 1e6 then Fmt.pf ppf "%.1f us" (x /. 1e3)
  else if x < 1e9 then Fmt.pf ppf "%.1f ms" (x /. 1e6)
  else Fmt.pf ppf "%.2f s" (x /. 1e9)

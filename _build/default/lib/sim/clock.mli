(** Virtual clock in nanoseconds of simulated time.

    Every simulated device (PM, SSD, CPU cost model) charges time here, so
    latency and duration measurements are deterministic and hardware
    independent. *)

type t

val create : unit -> t
val now : t -> float
val advance : t -> float -> unit
val advance_to : t -> float -> unit

(** Pull the clock back by a duration — the overlap rebate used to model
    CPU/I-O concurrency inside an otherwise serial simulation. *)
val rewind : t -> float -> unit
val reset : t -> unit

val time : t -> (unit -> 'a) -> 'a * float
(** [time t f] runs [f] and returns its result with the simulated duration. *)

(** Unit helpers: [us 3.0] is 3 microseconds in nanoseconds, etc. *)

val ns : float -> float
val us : float -> float
val ms : float -> float
val s : float -> float
val to_us : float -> float
val to_ms : float -> float
val to_s : float -> float

val pp_duration : float Fmt.t
(** Human-readable rendering with an auto-selected unit. *)

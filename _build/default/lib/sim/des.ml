(* Discrete-event scheduler over the virtual clock.

   A binary min-heap of (time, sequence, thunk) events. The sequence number
   makes simultaneous events fire in schedule order, which keeps every run
   deterministic. Used by the execution model (lib/exec) for the scheduling
   experiments (Table III, Fig. 9). *)

type event = { at : float; seq : int; run : unit -> unit }

type t = {
  clock : Clock.t;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
}

let create clock = { clock; heap = Array.make 64 { at = 0.0; seq = 0; run = ignore }; size = 0; next_seq = 0 }

let clock t = t.clock

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let bigger = Array.make (Array.length t.heap * 2) t.heap.(0) in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let schedule_at t at run =
  if at < Clock.now t.clock then invalid_arg "Des.schedule_at: in the past";
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- { at; seq = t.next_seq; run };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_after t delay run = schedule_at t (Clock.now t.clock +. delay) run

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0;
    Some top
  end

let pending t = t.size

(* Run events until the queue drains or [until] is reached. Each event may
   schedule further events. *)
let run ?until t =
  let limit = match until with Some u -> u | None -> infinity in
  let continue = ref true in
  while !continue do
    match pop t with
    | None -> continue := false
    | Some ev ->
        if ev.at > limit then begin
          (* Put it back and stop; heap re-insert keeps order. *)
          schedule_at t ev.at ev.run;
          Clock.advance_to t.clock limit;
          continue := false
        end
        else begin
          Clock.advance_to t.clock ev.at;
          ev.run ()
        end
  done

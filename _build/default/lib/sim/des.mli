(** Deterministic discrete-event scheduler over the virtual clock.

    Simultaneous events fire in schedule order. Drives the execution model
    used in the compaction-scheduling experiments (Table III, Fig. 9). *)

type t

val create : Clock.t -> t
val clock : t -> Clock.t

val schedule_at : t -> float -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute simulated time. Raises
    [Invalid_argument] when the time is in the past. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** Schedule relative to the current clock. *)

val pending : t -> int
(** Number of queued events. *)

val run : ?until:float -> t -> unit
(** Fire events in time order until the queue drains (or [until] is
    reached), advancing the clock to each event's timestamp. *)

(* Busy/idle accounting for a simulated resource (a CPU core, the SSD).

   The scheduling experiments report "CPU idleness" and "I/O device
   idleness" (Table III) and utilisations (Fig. 9a/9b); this tracker turns
   mark_busy/mark_idle transitions on the virtual clock into those numbers.
   Conservation (busy + idle = observed window) is checked by tests. *)

type t = {
  clock : Clock.t;
  name : string;
  mutable busy_since : float option;
  mutable busy_total : float;
  mutable window_start : float;
}

let create ?(name = "resource") clock =
  { clock; name; busy_since = None; busy_total = 0.0; window_start = Clock.now clock }

let name t = t.name

let mark_busy t =
  match t.busy_since with
  | Some _ -> () (* already busy; nested marks collapse *)
  | None -> t.busy_since <- Some (Clock.now t.clock)

let mark_idle t =
  match t.busy_since with
  | None -> ()
  | Some since ->
      t.busy_total <- t.busy_total +. (Clock.now t.clock -. since);
      t.busy_since <- None

let is_busy t = t.busy_since <> None

let busy_time t =
  let extra = match t.busy_since with Some since -> Clock.now t.clock -. since | None -> 0.0 in
  t.busy_total +. extra

let elapsed t = Clock.now t.clock -. t.window_start

let idle_time t = Float.max 0.0 (elapsed t -. busy_time t)

let utilization t =
  let e = elapsed t in
  if e <= 0.0 then 0.0 else busy_time t /. e

let idleness t = 1.0 -. utilization t

let reset t =
  t.busy_total <- 0.0;
  t.window_start <- Clock.now t.clock;
  (match t.busy_since with Some _ -> t.busy_since <- Some t.window_start | None -> ())

(** Busy/idle accounting for a simulated resource (CPU core, I/O device).

    Produces the idleness and utilisation figures reported in Table III and
    Fig. 9. Invariant (tested): busy + idle = elapsed window. *)

type t

val create : ?name:string -> Clock.t -> t
val name : t -> string

val mark_busy : t -> unit
(** Transition to busy at the current clock; nested marks collapse. *)

val mark_idle : t -> unit
(** Transition to idle at the current clock; idempotent. *)

val is_busy : t -> bool
val busy_time : t -> float
val idle_time : t -> float
val elapsed : t -> float

val utilization : t -> float
(** busy / elapsed, in [0, 1]. *)

val idleness : t -> float
(** 1 - utilization. *)

val reset : t -> unit
(** Restart the observation window at the current clock. *)

lib/util/histogram.mli:

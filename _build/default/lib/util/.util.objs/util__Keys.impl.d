lib/util/keys.ml: Char Printf String

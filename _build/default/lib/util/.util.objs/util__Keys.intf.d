lib/util/keys.mli:

lib/util/kv.ml: Buffer Fmt String Varint

lib/util/kv.mli: Buffer Fmt

lib/util/xoshiro.ml: Array Char Int64 String

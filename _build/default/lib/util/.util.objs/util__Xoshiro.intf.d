lib/util/xoshiro.mli:

lib/util/zipf.ml: Float Xoshiro

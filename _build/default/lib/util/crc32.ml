(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Used to detect
   torn or corrupted PM-table and SSTable blocks in tests that inject
   faults. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)

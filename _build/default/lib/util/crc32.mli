(** CRC-32 (IEEE polynomial) checksums for on-device block integrity. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends [crc] over [s.[pos .. pos+len-1]]. *)

val string : string -> int
(** Checksum of a whole string. *)

(* Database-style key construction.

   The paper's level-0 compression exploits the structure of database keys:
   a record key is {tableID}{primary key} and an index key is
   {tableID}{indexed column value}{row id}, so keys within one table share a
   long common prefix. These helpers build such keys with fixed-width,
   order-preserving encodings so lexicographic byte order equals logical
   order. *)

let fixed_int ~width v =
  if v < 0 then invalid_arg "Keys.fixed_int: negative";
  let s = string_of_int v in
  if String.length s > width then invalid_arg "Keys.fixed_int: width too small";
  String.make (width - String.length s) '0' ^ s

let table_prefix table_id = Printf.sprintf "t%s" (fixed_int ~width:4 table_id)

let record_key ~table_id ~row_id =
  table_prefix table_id ^ "r" ^ fixed_int ~width:12 row_id

let index_key ~table_id ~index_id ~column ~row_id =
  table_prefix table_id ^ "i" ^ fixed_int ~width:2 index_id ^ column ^ "#"
  ^ fixed_int ~width:12 row_id

let index_scan_prefix ~table_id ~index_id ~column =
  table_prefix table_id ^ "i" ^ fixed_int ~width:2 index_id ^ column

(* YCSB-style user keys: "user" + zero-padded rank. *)
let ycsb_key rank = "user" ^ fixed_int ~width:12 rank

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec loop i = if i < n && a.[i] = b.[i] then loop (i + 1) else i in
  loop 0

let is_prefix ~prefix s =
  String.length prefix <= String.length s
  && String.sub s 0 (String.length prefix) = prefix

(* Smallest key strictly greater than every key having [prefix]: increment
   the last non-0xff byte and truncate. Raises if prefix is all 0xff. *)
let prefix_successor prefix =
  let rec loop i =
    if i < 0 then invalid_arg "Keys.prefix_successor: prefix is all 0xff"
    else if prefix.[i] = '\xff' then loop (i - 1)
    else String.sub prefix 0 i ^ String.make 1 (Char.chr (Char.code prefix.[i] + 1))
  in
  loop (String.length prefix - 1)

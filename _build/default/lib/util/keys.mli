(** Database-style key construction with order-preserving encodings.

    Record keys are [{tableID}{row id}]; secondary-index keys are
    [{tableID}{index id}{column value}#{row id}]. Keys within one table share
    long common prefixes, which is what the PM table's prefix compression
    exploits (paper §IV-A, Fig. 2b). *)

val fixed_int : width:int -> int -> string
(** Zero-padded decimal rendering; lexicographic order = numeric order. *)

val table_prefix : int -> string
val record_key : table_id:int -> row_id:int -> string
val index_key : table_id:int -> index_id:int -> column:string -> row_id:int -> string
val index_scan_prefix : table_id:int -> index_id:int -> column:string -> string

val ycsb_key : int -> string
(** ["user" ^ zero-padded rank], as YCSB generates. *)

val common_prefix_len : string -> string -> int
val is_prefix : prefix:string -> string -> bool

val prefix_successor : string -> string
(** Smallest key strictly greater than every key carrying the prefix. Raises
    [Invalid_argument] when the prefix is all [0xff] bytes. *)

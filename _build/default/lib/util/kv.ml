(* The record type flowing through every layer of the LSM-tree.

   Keys and values are opaque byte strings. Each write is stamped with a
   monotonically increasing sequence number; a (key, seq) pair identifies one
   version. Within a key, higher seq shadows lower seq. Deletes are
   tombstones that shadow older versions and are dropped only when the merge
   reaches the bottom level. *)

type kind = Put | Delete

type entry = { key : string; seq : int; kind : kind; value : string }

let entry ?(kind = Put) ~key ~seq value = { key; seq; kind; value }

let tombstone ~key ~seq = { key; seq; kind = Delete; value = "" }

(* Internal ordering: by key ascending, then by seq *descending*, so the
   newest version of a key sorts first — the order every merge relies on. *)
let compare_entry a b =
  let c = String.compare a.key b.key in
  if c <> 0 then c else compare b.seq a.seq

let encoded_size e =
  Varint.size (String.length e.key)
  + String.length e.key
  + Varint.size e.seq
  + 1
  + Varint.size (String.length e.value)
  + String.length e.value

let encode buf e =
  Varint.write_string buf e.key;
  Varint.write buf e.seq;
  Buffer.add_char buf (match e.kind with Put -> '\001' | Delete -> '\000');
  Varint.write_string buf e.value

let decode s pos =
  let key, pos = Varint.read_string s pos in
  let seq, pos = Varint.read s pos in
  if pos >= String.length s then failwith "Kv.decode: truncated entry";
  let kind = if s.[pos] = '\000' then Delete else Put in
  let value, pos = Varint.read_string s (pos + 1) in
  ({ key; seq; kind; value }, pos)

let pp_kind ppf = function
  | Put -> Fmt.string ppf "put"
  | Delete -> Fmt.string ppf "del"

let pp ppf e =
  Fmt.pf ppf "@[<h>%s@%d %a %S@]" e.key e.seq pp_kind e.kind e.value

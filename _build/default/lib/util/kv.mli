(** The versioned key-value record flowing through every layer of the tree.

    A [(key, seq)] pair identifies one version; within a key, higher [seq]
    shadows lower. Deletes are tombstones dropped only at the bottom level. *)

type kind = Put | Delete

type entry = { key : string; seq : int; kind : kind; value : string }

val entry : ?kind:kind -> key:string -> seq:int -> string -> entry
val tombstone : key:string -> seq:int -> entry

val compare_entry : entry -> entry -> int
(** Key ascending, then seq {e descending} — newest version of a key first.
    This is the invariant every merge iterator relies on. *)

val encoded_size : entry -> int

val encode : Buffer.t -> entry -> unit
val decode : string -> int -> entry * int

val pp : entry Fmt.t
val pp_kind : kind Fmt.t

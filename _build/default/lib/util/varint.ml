(* LEB128-style variable-length integers, used by every on-device encoding
   (PM tables, SSTable blocks). Little-endian base-128 with a continuation
   bit, as in protobuf/LevelDB. *)

let write buf v =
  if v < 0 then invalid_arg "Varint.write: negative";
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr ((!v land 0x7f) lor 0x80));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let read s pos =
  let result = ref 0 in
  let shift = ref 0 in
  let pos = ref pos in
  let continue = ref true in
  while !continue do
    if !pos >= String.length s then failwith "Varint.read: truncated input";
    let byte = Char.code s.[!pos] in
    incr pos;
    result := !result lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte < 0x80 then continue := false
    else if !shift > 62 then failwith "Varint.read: overflow"
  done;
  (!result, !pos)

let size v =
  if v < 0 then invalid_arg "Varint.size: negative";
  let rec loop v acc = if v < 0x80 then acc else loop (v lsr 7) (acc + 1) in
  loop v 1

let write_string buf s =
  write buf (String.length s);
  Buffer.add_string buf s

let read_string s pos =
  let len, pos = read s pos in
  if pos + len > String.length s then failwith "Varint.read_string: truncated input";
  (String.sub s pos len, pos + len)

(** LEB128-style variable-length integer and length-prefixed string codecs,
    shared by the PM-table and SSTable on-device encodings. *)

val write : Buffer.t -> int -> unit
(** Append a non-negative integer. Raises [Invalid_argument] on negatives. *)

val read : string -> int -> int * int
(** [read s pos] decodes at [pos], returning [(value, next_pos)].
    Raises [Failure] on truncated or overlong input. *)

val size : int -> int
(** Encoded byte length of a non-negative integer. *)

val write_string : Buffer.t -> string -> unit
(** Append a length-prefixed string. *)

val read_string : string -> int -> string * int
(** Decode a length-prefixed string, returning [(value, next_pos)]. *)

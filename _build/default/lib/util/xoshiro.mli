(** Deterministic PRNG: xoshiro256** seeded via splitmix64.

    All randomness in the repository flows through this module so that every
    experiment and every property test is reproducible from an integer seed. *)

type t

val create : int -> t
(** [create seed] builds an independent generator from [seed]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int
(** Next non-negative (62-bit) integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] when
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val string : t -> int -> string
(** [string t len] is a random lowercase ASCII string of length [len]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

(* Zipfian key chooser, following the rejection-free YCSB/Gray construction.

   [theta] is the skew parameter: 0.0 degenerates to uniform, 0.99 is the
   YCSB default, and values near 1.0 concentrate almost all mass on a few
   items. The generator returns ranks in [0, n); rank 0 is the most popular
   item. A scrambled variant spreads the popular ranks over the keyspace the
   way YCSB's ScrambledZipfian does. *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
  rng : Xoshiro.t;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) ~n rng =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta must be in [0, 1)";
  if theta = 0.0 then
    { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; half_pow_theta = 0.0; rng }
  else
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta = (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta)) /. (1.0 -. (zeta2 /. zetan)) in
    { n; theta; alpha; zetan; eta; half_pow_theta = 0.5 ** theta; rng }

let next t =
  if t.theta = 0.0 then Xoshiro.int t.rng t.n
  else begin
    let u = Xoshiro.float t.rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else
      let rank =
        int_of_float (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      if rank >= t.n then t.n - 1 else rank
  end

(* Golden-ratio multiplicative hash used to scatter ranks over the keyspace. *)
let scramble t rank =
  let h = rank * 0x9E3779B1 in
  (h land max_int) mod t.n

let next_scrambled t = scramble t (next t)

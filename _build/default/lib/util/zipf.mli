(** Zipfian rank chooser (YCSB-style construction).

    Used by every skewed workload in the paper: Table IV, Fig. 8, and the
    YCSB workloads. [theta = 0.0] is uniform; the paper's "data skew" axis is
    mapped onto theta directly. *)

type t

val create : ?theta:float -> n:int -> Xoshiro.t -> t
(** [create ~theta ~n rng] draws ranks in [\[0, n)], rank 0 most popular.
    [theta] defaults to the YCSB standard 0.99 and must lie in [\[0, 1)]. *)

val next : t -> int
(** Next rank; rank 0 is the hottest. *)

val next_scrambled : t -> int
(** Next rank scattered over the keyspace with a multiplicative hash, so hot
    keys are not clustered in key order (YCSB ScrambledZipfian behaviour). *)

val zeta : int -> float -> float
(** [zeta n theta] = sum of 1/i^theta for i in [1..n] (exposed for tests). *)

lib/workload/driver.ml: Core Fmt Sim Util

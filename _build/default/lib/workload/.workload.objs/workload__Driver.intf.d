lib/workload/driver.mli: Core Fmt

lib/workload/retail.ml: Core List Printf String Util

lib/workload/retail.mli: Core

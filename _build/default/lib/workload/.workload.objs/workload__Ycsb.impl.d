lib/workload/ycsb.ml: Core Util

lib/workload/ycsb.mli: Core

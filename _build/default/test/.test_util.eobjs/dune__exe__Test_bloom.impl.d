test/test_bloom.ml: Alcotest Bloom Gen List Printf QCheck QCheck_alcotest

test/test_compaction.ml: Alcotest Compaction Gen Hashtbl List Option Printf QCheck QCheck_alcotest Sim String Util

test/test_coroutine.ml: Alcotest Coroutine List Printf Sim Ssd

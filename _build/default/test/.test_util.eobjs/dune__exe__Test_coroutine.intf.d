test/test_coroutine.mli:

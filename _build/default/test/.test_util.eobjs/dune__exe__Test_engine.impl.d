test/test_engine.ml: Alcotest Array Core Hashtbl List Pmem Printf QCheck QCheck_alcotest Util

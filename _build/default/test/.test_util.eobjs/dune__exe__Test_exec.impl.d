test/test_exec.ml: Alcotest Coroutine Exec_model List

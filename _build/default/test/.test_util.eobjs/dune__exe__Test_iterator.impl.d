test/test_iterator.ml: Alcotest Core Hashtbl List Printf QCheck QCheck_alcotest Util

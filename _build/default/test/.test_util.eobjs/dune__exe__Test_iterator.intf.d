test/test_iterator.mli:

test/test_memtable.ml: Alcotest Gen Hashtbl List Memtable Printf QCheck QCheck_alcotest Sim String Util

test/test_memtable.mli:

test/test_pmtable.ml: Alcotest Gen Hashtbl List Option Pmem Pmtable Printf QCheck QCheck_alcotest Sim String Util

test/test_pmtable.mli:

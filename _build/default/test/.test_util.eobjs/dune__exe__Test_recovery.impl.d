test/test_recovery.ml: Alcotest Array Core Hashtbl List Option Pmem Pmtable Printf QCheck QCheck_alcotest Sim Ssd Sstable String Util

test/test_ssd.ml: Alcotest Float List Pmem Sim Ssd String

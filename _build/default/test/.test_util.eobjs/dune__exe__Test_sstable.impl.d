test/test_sstable.ml: Alcotest Gen Hashtbl List Option Printf QCheck QCheck_alcotest Sim Ssd Sstable Util

test/test_util.ml: Alcotest Array Buffer Bytes Float Fmt Fun Gen List QCheck QCheck_alcotest String Util

test/test_workload.ml: Alcotest Core List Printf Util Workload

(* Tests for the merge machinery and the three cost models. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let clock () = Sim.Clock.create ()

let e key seq value = Util.Kv.entry ~key ~seq value
let d key seq = Util.Kv.tombstone ~key ~seq

(* --- Merge ------------------------------------------------------------- *)

let test_merge_two_runs () =
  let run1 = [ e "a" 1 "a1"; e "c" 3 "c3" ] in
  let run2 = [ e "b" 2 "b2"; e "d" 4 "d4" ] in
  let merged, stats = Compaction.Merge.merge ~clock:(clock ()) [ run1; run2 ] in
  check (Alcotest.list Alcotest.string) "interleaved" [ "a"; "b"; "c"; "d" ]
    (List.map (fun (x : Util.Kv.entry) -> x.key) merged);
  check Alcotest.int "inputs" 4 stats.Compaction.Merge.input_entries;
  check Alcotest.int "outputs" 4 stats.output_entries

let test_merge_shadows_old_versions () =
  let run1 = [ e "k" 5 "new" ] in
  let run2 = [ e "k" 2 "old"; e "k" 1 "older" ] in
  let merged, stats = Compaction.Merge.merge ~clock:(clock ()) [ run1; run2 ] in
  check Alcotest.int "one survivor" 1 (List.length merged);
  check Alcotest.string "newest survives" "new" (List.hd merged).Util.Kv.value;
  check Alcotest.int "dropped versions" 2 stats.Compaction.Merge.dropped_versions

let test_merge_tombstones_kept_by_default () =
  let merged, _ = Compaction.Merge.merge ~clock:(clock ()) [ [ d "k" 5 ]; [ e "k" 2 "v" ] ] in
  check Alcotest.int "tombstone survives" 1 (List.length merged);
  check Alcotest.bool "is a tombstone" true ((List.hd merged).Util.Kv.kind = Util.Kv.Delete)

let test_merge_tombstones_dropped_at_bottom () =
  let merged, stats =
    Compaction.Merge.merge ~drop_tombstones:true ~clock:(clock ())
      [ [ d "k" 5 ]; [ e "k" 2 "v"; e "live" 1 "x" ] ]
  in
  check (Alcotest.list Alcotest.string) "only live key" [ "live" ]
    (List.map (fun (x : Util.Kv.entry) -> x.key) merged);
  check Alcotest.int "tombstone dropped" 1 stats.Compaction.Merge.dropped_tombstones

let test_merge_charges_cpu () =
  let c = clock () in
  let t0 = Sim.Clock.now c in
  ignore (Compaction.Merge.merge ~clock:c [ List.init 100 (fun i -> e (Printf.sprintf "%03d" i) i "v") ]);
  check Alcotest.bool "cpu charged" true (Sim.Clock.now c > t0)

let test_merge_empty_inputs () =
  let merged, stats = Compaction.Merge.merge ~clock:(clock ()) [ []; []; [] ] in
  check Alcotest.int "empty" 0 (List.length merged);
  check Alcotest.int "no inputs" 0 stats.Compaction.Merge.input_entries

(* Model: merge = sort entries, keep max-seq per key. *)
let prop_merge_model =
  let run_gen =
    QCheck.Gen.(
      list_size (int_range 0 40)
        (pair (string_size ~gen:(char_range 'a' 'e') (int_range 1 2)) (int_range 0 1000)))
  in
  QCheck.Test.make ~name:"merge = model (newest per key)" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 5) run_gen))
    (fun raw_runs ->
      (* give entries globally unique seqs so 'newest' is well-defined *)
      let seq = ref 0 in
      let runs =
        List.map
          (fun pairs ->
            List.map
              (fun (key, _) ->
                incr seq;
                e key !seq "v")
              pairs
            |> List.sort Util.Kv.compare_entry)
          raw_runs
      in
      let merged, _ = Compaction.Merge.merge ~clock:(clock ()) runs in
      let model = Hashtbl.create 16 in
      List.iter
        (fun run ->
          List.iter
            (fun (x : Util.Kv.entry) ->
              match Hashtbl.find_opt model x.key with
              | Some (p : Util.Kv.entry) when p.seq >= x.seq -> ()
              | _ -> Hashtbl.replace model x.key x)
            run)
        runs;
      List.length merged = Hashtbl.length model
      && List.for_all
           (fun (x : Util.Kv.entry) ->
             match Hashtbl.find_opt model x.key with
             | Some m -> m.seq = x.seq
             | None -> false)
           merged
      && merged = List.sort Util.Kv.compare_entry merged)

(* --- split_run -------------------------------------------------------- *)

let test_split_run_sizes () =
  let entries = List.init 100 (fun i -> e (Printf.sprintf "%03d" i) i (String.make 50 'v')) in
  let slices = Compaction.Merge.split_run ~target_bytes:300 entries in
  check Alcotest.bool "several slices" true (List.length slices > 1);
  check Alcotest.int "no entry lost" 100 (List.fold_left (fun a s -> a + List.length s) 0 slices);
  (* concatenation preserves order *)
  check Alcotest.bool "order preserved" true (List.concat slices = entries)

let test_split_run_never_splits_key_versions () =
  let entries =
    [ e "a" 9 (String.make 100 'x'); e "a" 8 (String.make 100 'x'); e "a" 7 (String.make 100 'x');
      e "b" 1 "small" ]
  in
  let slices = Compaction.Merge.split_run ~target_bytes:150 entries in
  (* all three versions of "a" must stay in one slice *)
  let slice_of_a =
    List.filter (fun s -> List.exists (fun (x : Util.Kv.entry) -> x.key = "a") s) slices
  in
  check Alcotest.int "one slice holds every version of a" 1 (List.length slice_of_a);
  check Alcotest.int "all versions together" 3
    (List.length (List.filter (fun (x : Util.Kv.entry) -> x.key = "a") (List.hd slice_of_a)))

let prop_split_concat_identity =
  QCheck.Test.make ~name:"split_run concat = input" ~count:200
    QCheck.(pair (int_range 50 500) (list_of_size Gen.(int_range 0 60) (string_of_size Gen.(int_range 1 4))))
    (fun (target, keys) ->
      let entries =
        List.mapi (fun i k -> e k i "value") (List.sort compare keys)
        |> List.sort Util.Kv.compare_entry
      in
      List.concat (Compaction.Merge.split_run ~target_bytes:target entries) = entries)

(* --- Cost models -------------------------------------------------------- *)

let params = Compaction.Cost_model.default

let test_eq1_hot_partition_triggers () =
  (* many unsorted tables + hot reads -> compact *)
  check Alcotest.bool "hot triggers" true
    (Compaction.Cost_model.should_internal_compact_rf params ~reads_per_sec:1e6 ~unsorted:8);
  (* cold partition: no reads -> never *)
  check Alcotest.bool "cold never triggers" false
    (Compaction.Cost_model.should_internal_compact_rf params ~reads_per_sec:0.0 ~unsorted:100);
  (* no unsorted tables -> nothing to do *)
  check Alcotest.bool "sorted-only never triggers" false
    (Compaction.Cost_model.should_internal_compact_rf params ~reads_per_sec:1e9 ~unsorted:0)

let test_eq1_monotone_in_unsorted () =
  let d n = Compaction.Cost_model.delta_cost_rf params ~reads_per_sec:1e5 ~unsorted:n in
  check Alcotest.bool "more unsorted, more benefit" true (d 10 > d 2)

let test_eq2_update_heavy_triggers () =
  check Alcotest.bool "update-heavy triggers" true
    (Compaction.Cost_model.should_internal_compact_wf params ~size:params.tau_w
       ~l0_records:1000 ~updates:900);
  check Alcotest.bool "insert-only never triggers" false
    (Compaction.Cost_model.should_internal_compact_wf params ~size:params.tau_w
       ~l0_records:1000 ~updates:0);
  check Alcotest.bool "small partition gated by tau_w" false
    (Compaction.Cost_model.should_internal_compact_wf params ~size:(params.tau_w - 1)
       ~l0_records:1000 ~updates:900)

let test_eq3_greedy_respects_capacity () =
  let p = { params with tau_t = 100 } in
  let chosen =
    Compaction.Cost_model.select_preserved p
      [ (0, 1000, 60); (1, 900, 60); (2, 10, 30); (3, 800, 39) ]
  in
  let total =
    List.fold_left
      (fun acc id -> acc + List.assoc id [ (0, 60); (1, 60); (2, 30); (3, 39) ])
      0 chosen
  in
  check Alcotest.bool "capacity respected" true (total <= 100);
  check Alcotest.bool "hottest density first" true (List.mem 3 chosen)

let test_eq3_prefers_read_density () =
  let p = { params with tau_t = 50 } in
  (* id 1 has fewer reads but much better reads/size density *)
  let chosen = Compaction.Cost_model.select_preserved p [ (0, 1000, 200); (1, 400, 40) ] in
  check (Alcotest.list Alcotest.int) "density winner" [ 1 ] chosen

let prop_eq3_feasible =
  QCheck.Test.make ~name:"greedy knapsack always feasible" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 20) (pair (int_range 0 10000) (int_range 1 10_000_000)))
    (fun cands ->
      let cands = List.mapi (fun i (r, s) -> (i, r, s)) cands in
      let chosen = Compaction.Cost_model.select_preserved params cands in
      let size_of id = List.find_map (fun (i, _, s) -> if i = id then Some s else None) cands in
      let total = List.fold_left (fun acc id -> acc + Option.get (size_of id)) 0 chosen in
      total <= params.tau_m + params.tau_t && total <= params.tau_t)

let test_major_threshold () =
  check Alcotest.bool "under" false
    (Compaction.Cost_model.should_major_compact params ~l0_bytes:(params.tau_m - 1));
  check Alcotest.bool "at" true
    (Compaction.Cost_model.should_major_compact params ~l0_bytes:params.tau_m)

let () =
  Alcotest.run "compaction"
    [
      ( "merge",
        [
          Alcotest.test_case "two runs" `Quick test_merge_two_runs;
          Alcotest.test_case "shadows old versions" `Quick test_merge_shadows_old_versions;
          Alcotest.test_case "tombstones kept" `Quick test_merge_tombstones_kept_by_default;
          Alcotest.test_case "tombstones dropped at bottom" `Quick test_merge_tombstones_dropped_at_bottom;
          Alcotest.test_case "charges cpu" `Quick test_merge_charges_cpu;
          Alcotest.test_case "empty inputs" `Quick test_merge_empty_inputs;
          qtest prop_merge_model;
        ] );
      ( "split_run",
        [
          Alcotest.test_case "sizes" `Quick test_split_run_sizes;
          Alcotest.test_case "keeps key versions together" `Quick test_split_run_never_splits_key_versions;
          qtest prop_split_concat_identity;
        ] );
      ( "cost models",
        [
          Alcotest.test_case "eq1 hot/cold" `Quick test_eq1_hot_partition_triggers;
          Alcotest.test_case "eq1 monotone" `Quick test_eq1_monotone_in_unsorted;
          Alcotest.test_case "eq2 updates" `Quick test_eq2_update_heavy_triggers;
          Alcotest.test_case "eq3 capacity" `Quick test_eq3_greedy_respects_capacity;
          Alcotest.test_case "eq3 density" `Quick test_eq3_prefers_read_density;
          qtest prop_eq3_feasible;
          Alcotest.test_case "major threshold" `Quick test_major_threshold;
        ] );
    ]

(* Tests for the LZ (snappy-like) codec and the prefix-compression
   planner. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Lz ------------------------------------------------------------------ *)

let prop_lz_roundtrip =
  QCheck.Test.make ~name:"lz roundtrip on arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 2000))
    (fun s -> Compress.Lz.decompress (Compress.Lz.compress s) = s)

let prop_lz_roundtrip_repetitive =
  QCheck.Test.make ~name:"lz roundtrip on repetitive input" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 1 20)) (int_range 1 200))
    (fun (unit, reps) ->
      let s = String.concat "" (List.init reps (fun _ -> unit)) in
      Compress.Lz.decompress (Compress.Lz.compress s) = s)

let test_lz_compresses_redundancy () =
  let s = String.concat "" (List.init 200 (fun i -> Printf.sprintf "key%06d-value" i)) in
  let c = Compress.Lz.compress s in
  check Alcotest.bool "smaller than input" true (String.length c < String.length s)

let test_lz_incompressible_bounded_expansion () =
  let rng = Util.Xoshiro.create 99 in
  let s = String.init 1000 (fun _ -> Char.chr (Util.Xoshiro.int rng 256)) in
  let c = Compress.Lz.compress s in
  (* Worst case adds tag+length bytes per literal run; must stay modest. *)
  check Alcotest.bool "expansion < 10%" true
    (String.length c < String.length s + (String.length s / 10) + 16)

let test_lz_empty_and_tiny () =
  check Alcotest.string "empty" "" (Compress.Lz.decompress (Compress.Lz.compress ""));
  check Alcotest.string "one byte" "a" (Compress.Lz.decompress (Compress.Lz.compress "a"));
  check Alcotest.string "three bytes" "abc" (Compress.Lz.decompress (Compress.Lz.compress "abc"))

let test_lz_overlapping_copy () =
  (* RLE-style: copy that overlaps its own output. *)
  let s = String.make 500 'z' in
  check Alcotest.string "rle" s (Compress.Lz.decompress (Compress.Lz.compress s))

let test_lz_rejects_garbage () =
  check Alcotest.bool "garbage raises" true
    (try ignore (Compress.Lz.decompress "\x05Qxxxx"); false with Failure _ -> true)

(* --- Prefix ----------------------------------------------------------------- *)

let sorted_keys n = Array.init n (fun i -> Printf.sprintf "t0001r%012d" (i * 3))

let test_prefix_plan_groups () =
  let keys = sorted_keys 20 in
  let plan = Compress.Prefix.plan ~group_size:8 keys in
  check Alcotest.int "group count" 3 (Array.length plan.Compress.Prefix.groups);
  let g0 = plan.Compress.Prefix.groups.(0) in
  check Alcotest.int "members" 8 (Array.length g0.Compress.Prefix.members);
  check Alcotest.string "first key recorded" keys.(0) g0.Compress.Prefix.first_key

let test_prefix_members_reconstruct () =
  let keys = sorted_keys 20 in
  let plan = Compress.Prefix.plan ~group_size:8 ~prefix_len:10 keys in
  Array.iter
    (fun g ->
      Array.iter
        (fun (suffix, idx) ->
          check Alcotest.string "prefix ^ suffix = key" keys.(idx)
            (g.Compress.Prefix.prefix ^ suffix))
        g.Compress.Prefix.members)
    plan.Compress.Prefix.groups

let test_prefix_locate_group () =
  let keys = sorted_keys 64 in
  let plan = Compress.Prefix.plan ~group_size:8 keys in
  (* every key must locate to the group that contains it *)
  Array.iteri
    (fun i key ->
      match Compress.Prefix.locate_group plan key with
      | None -> Alcotest.failf "key %s located no group" key
      | Some g ->
          check Alcotest.bool "group covers key" true (g = i / 8 || g = (i / 8) - 1))
    keys;
  check Alcotest.bool "below first key" true
    (Compress.Prefix.locate_group plan "a" = None)

let test_prefix_group_prefix_cap () =
  let keys = [| "aaaa1"; "aaaa2"; "aaaa3" |] in
  check Alcotest.string "capped" "aa" (Compress.Prefix.group_prefix ~max_len:2 keys 0 3);
  check Alcotest.string "full shared" "aaaa" (Compress.Prefix.group_prefix ~max_len:10 keys 0 3)

let prop_prefix_plan_reconstructs =
  QCheck.Test.make ~name:"plan reconstructs every key" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (string_of_size Gen.(int_range 1 20)))
    (fun keys ->
      let keys = Array.of_list (List.sort_uniq String.compare keys) in
      let plan = Compress.Prefix.plan ~group_size:4 ~prefix_len:6 keys in
      Array.for_all
        (fun g ->
          Array.for_all
            (fun (suffix, idx) -> g.Compress.Prefix.prefix ^ suffix = keys.(idx))
            g.Compress.Prefix.members)
        plan.Compress.Prefix.groups)

let test_prefix_savings_positive_on_shared_keys () =
  let keys = sorted_keys 64 in
  let plan = Compress.Prefix.plan ~group_size:8 ~prefix_len:8 keys in
  check Alcotest.bool "saves bytes" true (Compress.Prefix.total_bytes_saved plan keys > 0)

let () =
  Alcotest.run "compress"
    [
      ( "lz",
        [
          qtest prop_lz_roundtrip;
          qtest prop_lz_roundtrip_repetitive;
          Alcotest.test_case "compresses redundancy" `Quick test_lz_compresses_redundancy;
          Alcotest.test_case "bounded expansion" `Quick test_lz_incompressible_bounded_expansion;
          Alcotest.test_case "empty and tiny" `Quick test_lz_empty_and_tiny;
          Alcotest.test_case "overlapping copy" `Quick test_lz_overlapping_copy;
          Alcotest.test_case "rejects garbage" `Quick test_lz_rejects_garbage;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "plan groups" `Quick test_prefix_plan_groups;
          Alcotest.test_case "members reconstruct" `Quick test_prefix_members_reconstruct;
          Alcotest.test_case "locate group" `Quick test_prefix_locate_group;
          Alcotest.test_case "group prefix cap" `Quick test_prefix_group_prefix_cap;
          qtest prop_prefix_plan_reconstructs;
          Alcotest.test_case "savings on shared keys" `Quick test_prefix_savings_positive_on_shared_keys;
        ] );
    ]

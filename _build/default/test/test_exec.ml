(* Tests for the compaction execution model: determinism, conservation
   laws, and the policy orderings Table III and Fig. 9 depend on. *)

let check = Alcotest.check

let config mode ~tasks ~cores =
  { Exec_model.Harness.default with mode; tasks; cores }

let test_deterministic () =
  let r1 = Exec_model.Harness.run (config Exec_model.Harness.Thread ~tasks:2 ~cores:1) in
  let r2 = Exec_model.Harness.run (config Exec_model.Harness.Thread ~tasks:2 ~cores:1) in
  check (Alcotest.float 1e-9) "same makespan" r1.Coroutine.Scheduler.makespan
    r2.Coroutine.Scheduler.makespan;
  check (Alcotest.float 1e-9) "same cpu util" r1.cpu_utilization r2.cpu_utilization

let test_utilizations_bounded () =
  List.iter
    (fun mode ->
      let r = Exec_model.Harness.run (config mode ~tasks:4 ~cores:2) in
      check Alcotest.bool "cpu in [0,1]" true
        (r.Coroutine.Scheduler.cpu_utilization >= 0.0 && r.cpu_utilization <= 1.0);
      check Alcotest.bool "io in [0,1]" true
        (r.io_utilization >= 0.0 && r.io_utilization <= 1.0);
      check Alcotest.bool "makespan positive" true (r.makespan > 0.0))
    [ Exec_model.Harness.Thread; Basic_coroutine; Pmblade ]

let test_pmblade_beats_thread () =
  (* Fig. 9's headline: the flush coroutine shortens compaction and lifts
     CPU utilization relative to OS threads. *)
  let thread = Exec_model.Harness.run (config Exec_model.Harness.Thread ~tasks:4 ~cores:2) in
  let pmblade = Exec_model.Harness.run (config Exec_model.Harness.Pmblade ~tasks:4 ~cores:2) in
  check Alcotest.bool "shorter makespan" true
    (pmblade.Coroutine.Scheduler.makespan < thread.Coroutine.Scheduler.makespan);
  check Alcotest.bool "higher cpu utilization" true
    (pmblade.cpu_utilization > thread.cpu_utilization)

let test_coroutine_between_thread_and_pmblade () =
  let run mode = Exec_model.Harness.run (config mode ~tasks:4 ~cores:2) in
  let thread = run Exec_model.Harness.Thread in
  let coro = run Exec_model.Harness.Basic_coroutine in
  let pmblade = run Exec_model.Harness.Pmblade in
  check Alcotest.bool "coroutine >= thread on cpu" true
    (coro.Coroutine.Scheduler.cpu_utilization >= thread.Coroutine.Scheduler.cpu_utilization);
  check Alcotest.bool "pmblade >= coroutine on cpu" true
    (pmblade.Coroutine.Scheduler.cpu_utilization >= coro.Coroutine.Scheduler.cpu_utilization)

let test_more_threads_more_io_latency () =
  (* Table III's I/O latency column: concurrency raises per-request latency. *)
  let latency n =
    let cfg = config Exec_model.Harness.Thread ~tasks:n ~cores:1 in
    let cfg =
      { cfg with task_params = { cfg.task_params with input_bytes = 4 * 1024 * 1024 / n } }
    in
    (Exec_model.Harness.run cfg).Coroutine.Scheduler.io_mean_latency
  in
  check Alcotest.bool "latency grows 1 -> 4 threads" true (latency 4 > latency 1)

let test_fixed_work_speedup () =
  (* Table III's speed-up column: same total work, more threads, bounded
     speed-up that saturates. *)
  let makespan n =
    let cfg = config Exec_model.Harness.Thread ~tasks:n ~cores:1 in
    let cfg =
      { cfg with task_params = { cfg.task_params with input_bytes = 4 * 1024 * 1024 / n } }
    in
    (Exec_model.Harness.run cfg).Coroutine.Scheduler.makespan
  in
  let m1 = makespan 1 and m2 = makespan 2 and m4 = makespan 4 in
  check Alcotest.bool "2 threads faster than 1" true (m2 < m1);
  check Alcotest.bool "speedup bounded by 2.5x" true (m1 /. m4 < 2.5)

let test_subtask_count () =
  let cfg = config Exec_model.Harness.Pmblade ~tasks:4 ~cores:2 in
  (* k = max(q/c, 1) = 2 subtasks per core -> 4 units *)
  check Alcotest.int "k*c units" 4 (Exec_model.Harness.subtask_count cfg);
  let cfg = config Exec_model.Harness.Thread ~tasks:3 ~cores:2 in
  check Alcotest.int "threads: one unit per task" 3 (Exec_model.Harness.subtask_count cfg)

let test_value_size_shifts_bottleneck () =
  (* Fig. 9b: larger values push I/O utilization up. *)
  let io_util value_bytes =
    let cfg = config Exec_model.Harness.Pmblade ~tasks:4 ~cores:2 in
    let cfg = { cfg with task_params = { cfg.task_params with value_bytes } } in
    (Exec_model.Harness.run cfg).Coroutine.Scheduler.io_utilization
  in
  check Alcotest.bool "64K values more IO-bound than 32B" true (io_util 65536 > io_util 32)

let () =
  Alcotest.run "exec"
    [
      ( "harness",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "utilizations bounded" `Quick test_utilizations_bounded;
          Alcotest.test_case "subtask count" `Quick test_subtask_count;
        ] );
      ( "paper shapes",
        [
          Alcotest.test_case "pmblade beats thread" `Quick test_pmblade_beats_thread;
          Alcotest.test_case "coroutine in between" `Quick test_coroutine_between_thread_and_pmblade;
          Alcotest.test_case "io latency grows with threads" `Quick test_more_threads_more_io_latency;
          Alcotest.test_case "bounded speedup" `Quick test_fixed_work_speedup;
          Alcotest.test_case "value size shifts bottleneck" `Quick test_value_size_shifts_bottleneck;
        ] );
    ]

(* Iterator tests: model equivalence across every structure mix, window
   boundaries, tombstone handling, version shadowing, and progress
   guarantees on degenerate keyspaces. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small cfg =
  {
    cfg with
    Core.Config.memtable_bytes = 4 * 1024;
    l0_run_table_bytes = 8 * 1024;
    level_base_bytes = 64 * 1024;
    sstable_target_bytes = 16 * 1024;
  }

(* Engine with data spread over memtable, level-0, and the SSD levels, plus
   the reference map. *)
let build_mixed ~ops ~with_deletes seed =
  let eng = Core.Engine.create (small Core.Config.pmblade) in
  let model = Hashtbl.create 128 in
  let rng = Util.Xoshiro.create seed in
  for i = 0 to ops - 1 do
    let key = Util.Keys.record_key ~table_id:(i mod 3) ~row_id:(Util.Xoshiro.int rng 400) in
    if with_deletes && Util.Xoshiro.int rng 9 = 0 then begin
      Hashtbl.remove model key;
      Core.Engine.delete eng key
    end
    else begin
      let v = Util.Xoshiro.string rng 40 in
      Hashtbl.replace model key v;
      Core.Engine.put ~update:true eng ~key v
    end
  done;
  (eng, model)

let sorted_model model =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare

let test_full_iteration_equals_model () =
  let eng, model = build_mixed ~ops:2500 ~with_deletes:true 5 in
  let got =
    Core.Iterator.fold eng ~start:"" ~init:[] (fun acc k v -> (k, v) :: acc) |> List.rev
  in
  let expected = sorted_model model in
  check Alcotest.int "pair count" (List.length expected) (List.length got);
  check Alcotest.bool "identical stream" true (got = expected)

let test_seek_mid_keyspace () =
  let eng, model = build_mixed ~ops:2000 ~with_deletes:false 7 in
  let start = Util.Keys.record_key ~table_id:1 ~row_id:200 in
  let expected = List.filter (fun (k, _) -> k >= start) (sorted_model model) in
  let it = Core.Iterator.seek eng start in
  let got = Core.Iterator.take it (List.length expected + 10) in
  check Alcotest.bool "suffix stream" true (got = expected)

let test_window_boundaries_irrelevant () =
  let eng, model = build_mixed ~ops:1500 ~with_deletes:true 11 in
  let expected = sorted_model model in
  List.iter
    (fun window ->
      let got =
        Core.Iterator.fold ~window eng ~start:"" ~init:[] (fun acc k v -> (k, v) :: acc)
        |> List.rev
      in
      check Alcotest.bool (Printf.sprintf "window=%d" window) true (got = expected))
    [ 1; 2; 7; 64; 1000 ]

let test_take_and_exhaustion () =
  let eng = Core.Engine.create (small Core.Config.pmblade) in
  for i = 0 to 9 do
    Core.Engine.put eng ~key:(Util.Keys.ycsb_key i) (string_of_int i)
  done;
  let it = Core.Iterator.seek eng "" in
  let first_five = Core.Iterator.take it 5 in
  check Alcotest.int "five pairs" 5 (List.length first_five);
  check Alcotest.string "continues in order" (Util.Keys.ycsb_key 5) (Core.Iterator.key it);
  let rest = Core.Iterator.take it 100 in
  check Alcotest.int "remaining" 5 (List.length rest);
  check Alcotest.bool "exhausted" false (Core.Iterator.valid it);
  check Alcotest.bool "key raises when exhausted" true
    (try ignore (Core.Iterator.key it); false with Invalid_argument _ -> true)

let test_tombstone_heavy_windows_progress () =
  (* Delete a long contiguous run so whole windows contain only tombstones:
     the iterator must skip across them without stalling. *)
  let eng = Core.Engine.create (small Core.Config.pmblade) in
  for i = 0 to 499 do
    Core.Engine.put eng ~key:(Util.Keys.ycsb_key i) "v"
  done;
  for i = 50 to 449 do
    Core.Engine.delete eng (Util.Keys.ycsb_key i)
  done;
  let got =
    Core.Iterator.fold ~window:8 eng ~start:"" ~init:0 (fun acc _ _ -> acc + 1)
  in
  check Alcotest.int "live keys only" 100 got

let test_version_pileup_single_delivery () =
  (* Many versions of one key must be delivered exactly once, newest. *)
  let eng = Core.Engine.create (small Core.Config.pmblade) in
  let hot = Util.Keys.ycsb_key 1 in
  for i = 1 to 200 do
    Core.Engine.put ~update:true eng ~key:hot (Printf.sprintf "v%d" i)
  done;
  Core.Engine.put eng ~key:(Util.Keys.ycsb_key 2) "other";
  let it = Core.Iterator.seek ~window:4 eng "" in
  let got = Core.Iterator.take it 10 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "dedup to newest" [ (hot, "v200"); (Util.Keys.ycsb_key 2, "other") ]
    got

let test_empty_engine () =
  let eng = Core.Engine.create (small Core.Config.pmblade) in
  let it = Core.Iterator.seek eng "" in
  check Alcotest.bool "nothing to iterate" false (Core.Iterator.valid it)

let prop_iterator_model =
  QCheck.Test.make ~name:"iterator = sorted model under random ops" ~count:12
    QCheck.(pair (int_range 0 2000) (int_range 1 40))
    (fun (ops, window) ->
      let eng, model = build_mixed ~ops ~with_deletes:true (ops + window) in
      let got =
        Core.Iterator.fold ~window eng ~start:"" ~init:[] (fun acc k v -> (k, v) :: acc)
        |> List.rev
      in
      got = sorted_model model)

let () =
  Alcotest.run "iterator"
    [
      ( "iterator",
        [
          Alcotest.test_case "full iteration = model" `Quick test_full_iteration_equals_model;
          Alcotest.test_case "seek mid keyspace" `Quick test_seek_mid_keyspace;
          Alcotest.test_case "window boundaries irrelevant" `Quick test_window_boundaries_irrelevant;
          Alcotest.test_case "take + exhaustion" `Quick test_take_and_exhaustion;
          Alcotest.test_case "tombstone-heavy progress" `Quick test_tombstone_heavy_windows_progress;
          Alcotest.test_case "version pileup" `Quick test_version_pileup_single_delivery;
          Alcotest.test_case "empty engine" `Quick test_empty_engine;
          qtest prop_iterator_model;
        ] );
    ]

(* Memtable tests: equivalence with a model map under random operations,
   version semantics, ordering, range queries, and cost charging. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let make () =
  let clock = Sim.Clock.create () in
  (clock, Memtable.create clock)

let test_insert_get () =
  let _, mt = make () in
  Memtable.insert mt (Util.Kv.entry ~key:"a" ~seq:1 "v1");
  Memtable.insert mt (Util.Kv.entry ~key:"b" ~seq:2 "v2");
  check (Alcotest.option Alcotest.string) "a" (Some "v1") (Memtable.get mt "a");
  check (Alcotest.option Alcotest.string) "b" (Some "v2") (Memtable.get mt "b");
  check (Alcotest.option Alcotest.string) "missing" None (Memtable.get mt "c")

let test_newest_version_wins () =
  let _, mt = make () in
  Memtable.insert mt (Util.Kv.entry ~key:"k" ~seq:1 "old");
  Memtable.insert mt (Util.Kv.entry ~key:"k" ~seq:5 "new");
  Memtable.insert mt (Util.Kv.entry ~key:"k" ~seq:3 "middle");
  check (Alcotest.option Alcotest.string) "newest" (Some "new") (Memtable.get mt "k")

let test_tombstone_hides () =
  let _, mt = make () in
  Memtable.insert mt (Util.Kv.entry ~key:"k" ~seq:1 "v");
  Memtable.insert mt (Util.Kv.tombstone ~key:"k" ~seq:2);
  check (Alcotest.option Alcotest.string) "deleted" None (Memtable.get mt "k");
  (* find still surfaces the tombstone for the merge path *)
  match Memtable.find mt "k" with
  | Some e -> check Alcotest.bool "tombstone visible to find" true (e.Util.Kv.kind = Util.Kv.Delete)
  | None -> Alcotest.fail "find lost the tombstone"

let test_to_list_sorted () =
  let _, mt = make () in
  List.iter
    (fun (k, s) -> Memtable.insert mt (Util.Kv.entry ~key:k ~seq:s "v"))
    [ ("c", 1); ("a", 2); ("b", 3); ("a", 9); ("c", 4) ];
  let l = Memtable.to_list mt in
  check Alcotest.int "all entries" 5 (List.length l);
  let sorted = List.sort Util.Kv.compare_entry l in
  check Alcotest.bool "sorted by (key asc, seq desc)" true (l = sorted)

let test_range () =
  let _, mt = make () in
  for i = 0 to 9 do
    Memtable.insert mt (Util.Kv.entry ~key:(Printf.sprintf "k%02d" i) ~seq:i "v")
  done;
  let r = Memtable.range mt ~start:"k03" ~stop:"k07" in
  check
    (Alcotest.list Alcotest.string)
    "range keys" [ "k03"; "k04"; "k05"; "k06" ]
    (List.map (fun e -> e.Util.Kv.key) r)

let test_byte_size_tracks () =
  let _, mt = make () in
  check Alcotest.int "empty" 0 (Memtable.byte_size mt);
  let e = Util.Kv.entry ~key:"key" ~seq:1 (String.make 100 'v') in
  Memtable.insert mt e;
  check Alcotest.int "tracks encoded size" (Util.Kv.encoded_size e) (Memtable.byte_size mt)

let test_charges_clock () =
  let clock, mt = make () in
  let t0 = Sim.Clock.now clock in
  for i = 0 to 99 do
    Memtable.insert mt (Util.Kv.entry ~key:(string_of_int i) ~seq:i "v")
  done;
  check Alcotest.bool "inserts charge time" true (Sim.Clock.now clock > t0);
  let t1 = Sim.Clock.now clock in
  ignore (Memtable.get mt "50");
  check Alcotest.bool "reads charge time" true (Sim.Clock.now clock > t1)

let test_seq_range () =
  let _, mt = make () in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "empty" None
    (Memtable.seq_range mt);
  Memtable.insert mt (Util.Kv.entry ~key:"a" ~seq:5 "v");
  Memtable.insert mt (Util.Kv.entry ~key:"b" ~seq:2 "v");
  Memtable.insert mt (Util.Kv.entry ~key:"c" ~seq:9 "v");
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "min/max" (Some (2, 9)) (Memtable.seq_range mt)

(* Model-based property: a random op sequence agrees with a reference map
   keyed on newest-seq-wins. *)
let prop_model_equivalence =
  let op_gen =
    QCheck.Gen.(
      pair (string_size ~gen:(char_range 'a' 'f') (int_range 1 3)) (option (string_size (int_range 0 8))))
  in
  QCheck.Test.make ~name:"model equivalence with deletes" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 120) op_gen))
    (fun ops ->
      let _, mt = make () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun seq (key, value) ->
          match value with
          | Some v ->
              Hashtbl.replace model key (Some v);
              Memtable.insert mt (Util.Kv.entry ~key ~seq v)
          | None ->
              Hashtbl.replace model key None;
              Memtable.insert mt (Util.Kv.tombstone ~key ~seq))
        ops;
      Hashtbl.fold
        (fun key expected acc -> acc && Memtable.get mt key = expected)
        model true)

let prop_to_list_count =
  QCheck.Test.make ~name:"to_list preserves every version" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 80) (string_gen_of_size Gen.(int_range 1 2) Gen.(char_range 'a' 'd')))
    (fun keys ->
      let _, mt = make () in
      List.iteri (fun seq key -> Memtable.insert mt (Util.Kv.entry ~key ~seq "v")) keys;
      List.length (Memtable.to_list mt) = List.length keys)

let () =
  Alcotest.run "memtable"
    [
      ( "memtable",
        [
          Alcotest.test_case "insert/get" `Quick test_insert_get;
          Alcotest.test_case "newest version wins" `Quick test_newest_version_wins;
          Alcotest.test_case "tombstone hides" `Quick test_tombstone_hides;
          Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "byte size" `Quick test_byte_size_tracks;
          Alcotest.test_case "charges clock" `Quick test_charges_clock;
          Alcotest.test_case "seq range" `Quick test_seq_range;
          qtest prop_model_equivalence;
          qtest prop_to_list_count;
        ] );
    ]

(* Tests for the persistent-memory device simulator. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let make () =
  let clock = Sim.Clock.create () in
  (clock, Pmem.create clock)

let test_alloc_free_accounting () =
  let _, dev = make () in
  let r1 = Pmem.alloc dev 1000 in
  let r2 = Pmem.alloc dev 2000 in
  check Alcotest.int "used" 3000 (Pmem.used dev);
  Pmem.free dev r1;
  check Alcotest.int "freed" 2000 (Pmem.used dev);
  Pmem.free dev r1;
  check Alcotest.int "double free is idempotent" 2000 (Pmem.used dev);
  Pmem.free dev r2;
  check Alcotest.int "all freed" 0 (Pmem.used dev)

let test_out_of_space () =
  let clock = Sim.Clock.create () in
  let dev = Pmem.create ~params:{ Pmem.default_params with capacity = 100 } clock in
  let _ = Pmem.alloc dev 80 in
  check Alcotest.bool "over-capacity raises" true
    (try ignore (Pmem.alloc dev 30); false with Pmem.Out_of_space _ -> true);
  (* and the failed alloc must not leak accounting *)
  check Alcotest.int "used unchanged" 80 (Pmem.used dev)

let test_write_read_roundtrip () =
  let _, dev = make () in
  let r = Pmem.alloc dev 64 in
  Pmem.write dev r ~off:10 "hello";
  check Alcotest.string "readback" "hello" (Pmem.read dev r ~off:10 ~len:5);
  check Alcotest.char "read_byte" 'e' (Pmem.read_byte dev r ~off:11)

let test_bounds_checked () =
  let _, dev = make () in
  let r = Pmem.alloc dev 16 in
  check Alcotest.bool "oob write raises" true
    (try Pmem.write dev r ~off:10 "longer than six"; false with Invalid_argument _ -> true);
  check Alcotest.bool "oob read raises" true
    (try ignore (Pmem.read dev r ~off:12 ~len:8); false with Invalid_argument _ -> true);
  Pmem.free dev r;
  check Alcotest.bool "use after free raises" true
    (try ignore (Pmem.read dev r ~off:0 ~len:1); false with Invalid_argument _ -> true)

let test_latency_charged () =
  let clock, dev = make () in
  let r = Pmem.alloc dev 4096 in
  let t0 = Sim.Clock.now clock in
  ignore (Pmem.read dev r ~off:0 ~len:64);
  let read_cost = Sim.Clock.now clock -. t0 in
  check Alcotest.bool "read charges access + bytes" true
    (read_cost >= Pmem.default_params.read_access_ns);
  let t1 = Sim.Clock.now clock in
  Pmem.write dev r ~off:0 (String.make 64 'x');
  let write_cost = Sim.Clock.now clock -. t1 in
  check Alcotest.bool "write slower than read" true (write_cost > read_cost)

let test_read_write_asymmetry_matches_optane () =
  (* The calibration must keep writes ~3x reads at small sizes. *)
  let p = Pmem.default_params in
  let read = p.read_access_ns +. (64.0 *. p.read_byte_ns) in
  let write = p.write_access_ns +. (64.0 *. p.write_byte_ns) in
  check Alcotest.bool "write/read between 2x and 5x" true
    (write /. read > 2.0 && write /. read < 5.0)

let test_stats_counters () =
  let _, dev = make () in
  let r = Pmem.alloc dev 1024 in
  Pmem.write dev r ~off:0 (String.make 100 'a');
  ignore (Pmem.read dev r ~off:0 ~len:50);
  ignore (Pmem.read dev r ~off:50 ~len:25);
  let s = Pmem.stats dev in
  check Alcotest.int "writes" 1 s.Pmem.writes;
  check Alcotest.int "bytes written" 100 s.Pmem.bytes_written;
  check Alcotest.int "reads" 2 s.Pmem.reads;
  check Alcotest.int "bytes read" 75 s.Pmem.bytes_read;
  Pmem.reset_stats dev;
  check Alcotest.int "reset" 0 (Pmem.stats dev).Pmem.reads

let test_crash_discards_unflushed () =
  let clock = Sim.Clock.create () in
  let dev = Pmem.create clock in
  Pmem.enable_crash_mode dev;
  let r = Pmem.alloc dev 32 in
  Pmem.write dev r ~off:0 "durable!";
  Pmem.flush dev r ~off:0 ~len:8;
  Pmem.drain dev;
  Pmem.write dev r ~off:8 "volatile";
  Pmem.crash dev;
  check Alcotest.string "flushed bytes survive" "durable!" (Pmem.unsafe_peek r ~off:0 ~len:8);
  check Alcotest.bool "unflushed bytes reverted" true
    (Pmem.unsafe_peek r ~off:8 ~len:8 <> "volatile");
  check Alcotest.int "durable watermark" 8 (Pmem.durable_upto r)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"write/read roundtrip at random offsets" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 1 64)) (int_range 0 100))
    (fun (data, off) ->
      let _, dev = make () in
      let r = Pmem.alloc dev 256 in
      if off + String.length data > 256 then true
      else begin
        Pmem.write dev r ~off data;
        Pmem.read dev r ~off ~len:(String.length data) = data
      end)

let () =
  Alcotest.run "pmem"
    [
      ( "pmem",
        [
          Alcotest.test_case "alloc/free accounting" `Quick test_alloc_free_accounting;
          Alcotest.test_case "out of space" `Quick test_out_of_space;
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
          Alcotest.test_case "latency charged" `Quick test_latency_charged;
          Alcotest.test_case "optane asymmetry" `Quick test_read_write_asymmetry_matches_optane;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "crash discards unflushed" `Quick test_crash_discards_unflushed;
          qtest prop_roundtrip_random;
        ] );
    ]

(* Tests for the virtual clock, discrete-event scheduler, and resource
   accounting. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Clock ------------------------------------------------------------- *)

let test_clock_advance () =
  let c = Sim.Clock.create () in
  check (Alcotest.float 1e-9) "starts at zero" 0.0 (Sim.Clock.now c);
  Sim.Clock.advance c 100.0;
  Sim.Clock.advance c 50.0;
  check (Alcotest.float 1e-9) "accumulates" 150.0 (Sim.Clock.now c);
  check Alcotest.bool "negative rejected" true
    (try Sim.Clock.advance c (-1.0); false with Invalid_argument _ -> true)

let test_clock_advance_to () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance_to c 500.0;
  Sim.Clock.advance_to c 100.0;
  check (Alcotest.float 1e-9) "never goes back" 500.0 (Sim.Clock.now c)

let test_clock_rewind () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance c 100.0;
  Sim.Clock.rewind c 30.0;
  check (Alcotest.float 1e-9) "rewound" 70.0 (Sim.Clock.now c);
  Sim.Clock.rewind c 1000.0;
  check (Alcotest.float 1e-9) "clamped at zero" 0.0 (Sim.Clock.now c)

let test_clock_time () =
  let c = Sim.Clock.create () in
  let result, duration = Sim.Clock.time c (fun () -> Sim.Clock.advance c 42.0; "done") in
  check Alcotest.string "result passes through" "done" result;
  check (Alcotest.float 1e-9) "duration measured" 42.0 duration

let test_clock_units () =
  check (Alcotest.float 1e-9) "us" 3000.0 (Sim.Clock.us 3.0);
  check (Alcotest.float 1e-9) "ms" 2e6 (Sim.Clock.ms 2.0);
  check (Alcotest.float 1e-9) "s" 1e9 (Sim.Clock.s 1.0);
  check (Alcotest.float 1e-9) "to_us inverse" 5.0 (Sim.Clock.to_us (Sim.Clock.us 5.0))

(* --- Des ---------------------------------------------------------------- *)

let test_des_fires_in_time_order () =
  let c = Sim.Clock.create () in
  let des = Sim.Des.create c in
  let log = ref [] in
  Sim.Des.schedule_at des 300.0 (fun () -> log := 3 :: !log);
  Sim.Des.schedule_at des 100.0 (fun () -> log := 1 :: !log);
  Sim.Des.schedule_at des 200.0 (fun () -> log := 2 :: !log);
  Sim.Des.run des;
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 300.0 (Sim.Clock.now c)

let test_des_simultaneous_fifo () =
  let c = Sim.Clock.create () in
  let des = Sim.Des.create c in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Des.schedule_at des 100.0 (fun () -> log := i :: !log)
  done;
  Sim.Des.run des;
  check (Alcotest.list Alcotest.int) "schedule order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_des_cascading () =
  let c = Sim.Clock.create () in
  let des = Sim.Des.create c in
  let fired = ref 0 in
  let rec chain n =
    if n > 0 then
      Sim.Des.schedule_after des 10.0 (fun () ->
          incr fired;
          chain (n - 1))
  in
  chain 10;
  Sim.Des.run des;
  check Alcotest.int "all chained events fired" 10 !fired;
  check (Alcotest.float 1e-9) "time accumulated" 100.0 (Sim.Clock.now c)

let test_des_until () =
  let c = Sim.Clock.create () in
  let des = Sim.Des.create c in
  let fired = ref [] in
  List.iter
    (fun at -> Sim.Des.schedule_at des at (fun () -> fired := at :: !fired))
    [ 50.0; 150.0; 250.0 ];
  Sim.Des.run ~until:200.0 des;
  check (Alcotest.list (Alcotest.float 1e-9)) "only events <= until" [ 50.0; 150.0 ]
    (List.rev !fired);
  check Alcotest.int "event kept queued" 1 (Sim.Des.pending des);
  Sim.Des.run des;
  check Alcotest.int "remaining fires later" 3 (List.length !fired)

let test_des_past_rejected () =
  let c = Sim.Clock.create () in
  Sim.Clock.advance c 100.0;
  let des = Sim.Des.create c in
  check Alcotest.bool "past raises" true
    (try Sim.Des.schedule_at des 50.0 ignore; false with Invalid_argument _ -> true)

let prop_des_random_order =
  QCheck.Test.make ~name:"random schedules fire sorted" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 1e6))
    (fun times ->
      let c = Sim.Clock.create () in
      let des = Sim.Des.create c in
      let fired = ref [] in
      List.iter (fun at -> Sim.Des.schedule_at des at (fun () -> fired := at :: !fired)) times;
      Sim.Des.run des;
      let fired = List.rev !fired in
      fired = List.stable_sort compare times)

(* --- Resource ------------------------------------------------------------ *)

let test_resource_conservation () =
  let c = Sim.Clock.create () in
  let r = Sim.Resource.create ~name:"cpu" c in
  Sim.Clock.advance c 100.0;
  Sim.Resource.mark_busy r;
  Sim.Clock.advance c 300.0;
  Sim.Resource.mark_idle r;
  Sim.Clock.advance c 100.0;
  check (Alcotest.float 1e-9) "busy" 300.0 (Sim.Resource.busy_time r);
  check (Alcotest.float 1e-9) "idle" 200.0 (Sim.Resource.idle_time r);
  check (Alcotest.float 1e-9) "conservation" (Sim.Resource.elapsed r)
    (Sim.Resource.busy_time r +. Sim.Resource.idle_time r);
  check (Alcotest.float 1e-9) "utilization" 0.6 (Sim.Resource.utilization r)

let test_resource_nested_marks_collapse () =
  let c = Sim.Clock.create () in
  let r = Sim.Resource.create c in
  Sim.Resource.mark_busy r;
  Sim.Clock.advance c 50.0;
  Sim.Resource.mark_busy r;
  Sim.Clock.advance c 50.0;
  Sim.Resource.mark_idle r;
  Sim.Resource.mark_idle r;
  check (Alcotest.float 1e-9) "single busy span" 100.0 (Sim.Resource.busy_time r)

let test_resource_busy_in_flight () =
  let c = Sim.Clock.create () in
  let r = Sim.Resource.create c in
  Sim.Resource.mark_busy r;
  Sim.Clock.advance c 70.0;
  check Alcotest.bool "is busy" true (Sim.Resource.is_busy r);
  check (Alcotest.float 1e-9) "open busy span counted" 70.0 (Sim.Resource.busy_time r)

let test_resource_reset () =
  let c = Sim.Clock.create () in
  let r = Sim.Resource.create c in
  Sim.Resource.mark_busy r;
  Sim.Clock.advance c 100.0;
  Sim.Resource.reset r;
  Sim.Clock.advance c 10.0;
  check (Alcotest.float 1e-9) "busy restarts from reset" 10.0 (Sim.Resource.busy_time r);
  check (Alcotest.float 1e-9) "elapsed restarts" 10.0 (Sim.Resource.elapsed r)

let () =
  Alcotest.run "sim"
    [
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "advance_to monotone" `Quick test_clock_advance_to;
          Alcotest.test_case "rewind" `Quick test_clock_rewind;
          Alcotest.test_case "time combinator" `Quick test_clock_time;
          Alcotest.test_case "unit helpers" `Quick test_clock_units;
        ] );
      ( "des",
        [
          Alcotest.test_case "time order" `Quick test_des_fires_in_time_order;
          Alcotest.test_case "simultaneous FIFO" `Quick test_des_simultaneous_fifo;
          Alcotest.test_case "cascading events" `Quick test_des_cascading;
          Alcotest.test_case "run until" `Quick test_des_until;
          Alcotest.test_case "past rejected" `Quick test_des_past_rejected;
          qtest prop_des_random_order;
        ] );
      ( "resource",
        [
          Alcotest.test_case "conservation" `Quick test_resource_conservation;
          Alcotest.test_case "nested marks collapse" `Quick test_resource_nested_marks_collapse;
          Alcotest.test_case "open busy span" `Quick test_resource_busy_in_flight;
          Alcotest.test_case "reset" `Quick test_resource_reset;
        ] );
    ]

(* SSTable tests: builder/reader roundtrip, bloom-screened gets, block
   cache behaviour (the "SSTable in cache" configuration of Table I),
   ranges, and overlap metadata. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let make () =
  let clock = Sim.Clock.create () in
  (clock, Ssd.create clock)

let entries n =
  List.init n (fun i ->
      Util.Kv.entry ~key:(Util.Keys.ycsb_key (i * 2)) ~seq:(i + 1) (Printf.sprintf "value-%05d" i))

let test_roundtrip () =
  let _, ssd = make () in
  let es = entries 500 in
  let sst = Sstable.of_sorted_list ssd es in
  check Alcotest.int "count" 500 (Sstable.count sst);
  check Alcotest.bool "stream identical" true
    (List.for_all2 (fun (a : Util.Kv.entry) b -> a = b) es (Sstable.to_list sst));
  List.iter
    (fun (e : Util.Kv.entry) ->
      match Sstable.get sst e.key with
      | Some got -> check Alcotest.string ("get " ^ e.key) e.value got.Util.Kv.value
      | None -> Alcotest.failf "lost %s" e.key)
    (List.filteri (fun i _ -> i mod 13 = 0) es)

let test_absent_keys () =
  let _, ssd = make () in
  let sst = Sstable.of_sorted_list ssd (entries 100) in
  (* odd ranks were never inserted *)
  check Alcotest.bool "absent inside range" true (Sstable.get sst (Util.Keys.ycsb_key 3) = None);
  check Alcotest.bool "absent below" true (Sstable.get sst "a" = None);
  check Alcotest.bool "absent above" true (Sstable.get sst "z" = None)

let test_bloom_saves_reads () =
  let _, ssd = make () in
  let sst = Sstable.of_sorted_list ssd (entries 1000) in
  let misses () =
    for i = 0 to 499 do
      ignore (Sstable.get sst (Util.Keys.ycsb_key ((i * 2) + 1)))
    done
  in
  let reads_before = (Ssd.stats ssd).Ssd.reads in
  misses ();
  let with_bloom = (Ssd.stats ssd).Ssd.reads - reads_before in
  let reads_before = (Ssd.stats ssd).Ssd.reads in
  for i = 0 to 499 do
    ignore (Sstable.get ~use_bloom:false sst (Util.Keys.ycsb_key ((i * 2) + 1)))
  done;
  let without_bloom = (Ssd.stats ssd).Ssd.reads - reads_before in
  check Alcotest.bool
    (Printf.sprintf "bloom suppresses device reads (%d < %d)" with_bloom without_bloom)
    true
    (with_bloom < without_bloom / 5)

let test_block_cache_latency () =
  let clock, ssd = make () in
  let sst = Sstable.of_sorted_list ssd (entries 1000) in
  let probe = Util.Keys.ycsb_key 500 in
  let timed f = snd (Sim.Clock.time clock f) in
  let cold = timed (fun () -> ignore (Sstable.get sst probe)) in
  Sstable.warm_cache sst;
  let warm = timed (fun () -> ignore (Sstable.get sst probe)) in
  check Alcotest.bool
    (Printf.sprintf "cache hit much faster (%.0fns vs %.0fns)" warm cold)
    true
    (warm < cold /. 5.0);
  Sstable.drop_cache sst;
  let cold2 = timed (fun () -> ignore (Sstable.get sst probe)) in
  check Alcotest.bool "dropping cache restores device reads" true (cold2 > warm *. 5.0)

let test_range () =
  let _, ssd = make () in
  let es = entries 300 in
  let sst = Sstable.of_sorted_list ssd es in
  let start = Util.Keys.ycsb_key 100 and stop = Util.Keys.ycsb_key 200 in
  let expected = List.filter (fun (e : Util.Kv.entry) -> e.key >= start && e.key < stop) es in
  let got = ref [] in
  Sstable.range sst ~start ~stop (fun e -> got := e :: !got);
  check Alcotest.int "range count" (List.length expected) (List.length !got)

let test_metadata_and_overlap () =
  let _, ssd = make () in
  let es = entries 50 in
  let sst = Sstable.of_sorted_list ssd es in
  check Alcotest.string "min" (Util.Keys.ycsb_key 0) (Sstable.min_key sst);
  check Alcotest.string "max" (Util.Keys.ycsb_key 98) (Sstable.max_key sst);
  check Alcotest.bool "overlap inside" true
    (Sstable.overlaps sst ~min:(Util.Keys.ycsb_key 10) ~max:(Util.Keys.ycsb_key 20));
  check Alcotest.bool "overlap outside" false
    (Sstable.overlaps sst ~min:(Util.Keys.ycsb_key 99) ~max:(Util.Keys.ycsb_key 200));
  (* a table bigger than one block splits *)
  let big = Sstable.of_sorted_list ssd (entries 500) in
  check Alcotest.bool "multi-block" true (Sstable.block_count big > 1)

let test_versions_within_table () =
  let _, ssd = make () in
  let es =
    [
      Util.Kv.entry ~key:"k" ~seq:9 "newest";
      Util.Kv.entry ~key:"k" ~seq:5 "older";
      Util.Kv.tombstone ~key:"m" ~seq:7;
    ]
    |> List.sort Util.Kv.compare_entry
  in
  let sst = Sstable.of_sorted_list ssd es in
  (match Sstable.get sst "k" with
  | Some e -> check Alcotest.string "newest version" "newest" e.Util.Kv.value
  | None -> Alcotest.fail "lost k");
  match Sstable.get sst "m" with
  | Some e -> check Alcotest.bool "tombstone surfaced" true (e.Util.Kv.kind = Util.Kv.Delete)
  | None -> Alcotest.fail "tombstone must be visible to reads"

let test_empty_rejected () =
  let _, ssd = make () in
  let b = Sstable.create_builder ssd in
  check Alcotest.bool "empty raises" true
    (try ignore (Sstable.finish b); false with Invalid_argument _ -> true)

let test_write_charged () =
  let clock, ssd = make () in
  let t0 = Sim.Clock.now clock in
  ignore (Sstable.of_sorted_list ssd (entries 500));
  check Alcotest.bool "build charges device time" true (Sim.Clock.now clock > t0);
  check Alcotest.bool "bytes accounted" true ((Ssd.stats ssd).Ssd.bytes_written > 0)

let prop_model =
  QCheck.Test.make ~name:"sstable get = model" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 100) (pair (string_of_size Gen.(int_range 1 16)) (string_of_size Gen.(int_range 0 40))))
    (fun pairs ->
      let _, ssd = make () in
      let entries =
        List.mapi (fun seq (key, value) -> Util.Kv.entry ~key ~seq value) pairs
        |> List.sort Util.Kv.compare_entry
      in
      let sst = Sstable.of_sorted_list ssd entries in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (e : Util.Kv.entry) ->
          match Hashtbl.find_opt model e.key with
          | Some (p : Util.Kv.entry) when p.seq >= e.seq -> ()
          | _ -> Hashtbl.replace model e.key e)
        entries;
      Hashtbl.fold
        (fun key (expected : Util.Kv.entry) acc ->
          acc
          &&
          match Sstable.get sst key with
          | Some got -> got.Util.Kv.seq = expected.seq
          | None -> false)
        model true)


let test_checksum_detects_corruption () =
  let _, ssd = make () in
  let sst = Sstable.of_sorted_list ssd (entries 200) in
  (* healthy read first *)
  check Alcotest.bool "clean read works" true (Sstable.get sst (Util.Keys.ycsb_key 100) <> None);
  (* flip a byte inside the first data block *)
  let file = Option.get (Ssd.find_file ssd (Sstable.file_id sst)) in
  Ssd.corrupt_file ssd file ~off:10;
  check Alcotest.bool "corrupted block detected" true
    (try ignore (Sstable.get sst (Util.Keys.ycsb_key 0)); false
     with Sstable.Corrupted_block _ -> true);
  (* blocks further in are unaffected *)
  check Alcotest.bool "other blocks still readable" true
    (Sstable.get sst (Util.Keys.ycsb_key 398) <> None)

let () =
  Alcotest.run "sstable"
    [
      ( "sstable",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "absent keys" `Quick test_absent_keys;
          Alcotest.test_case "bloom saves reads" `Quick test_bloom_saves_reads;
          Alcotest.test_case "block cache latency" `Quick test_block_cache_latency;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "metadata + overlap" `Quick test_metadata_and_overlap;
          Alcotest.test_case "versions within table" `Quick test_versions_within_table;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "writes charged" `Quick test_write_charged;
          Alcotest.test_case "checksum detects corruption" `Quick test_checksum_detects_corruption;
          qtest prop_model;
        ] );
    ]

(* Workload generator tests: YCSB mixes, key choosers, the retail
   transaction mix, and the measurement driver. *)

let check = Alcotest.check

let small_engine () =
  Core.Engine.create
    {
      Core.Config.pmblade with
      Core.Config.memtable_bytes = 8 * 1024;
      l0_run_table_bytes = 16 * 1024;
    }

let test_load_inserts_records () =
  let eng = small_engine () in
  let y = Workload.Ycsb.create ~value_bytes:64 () in
  Workload.Ycsb.load y eng ~records:200;
  check Alcotest.int "record count" 200 (Workload.Ycsb.record_count y);
  (* all loaded keys readable *)
  let missing = ref 0 in
  for i = 0 to 199 do
    if Core.Engine.get eng (Util.Keys.ycsb_key i) = None then incr missing
  done;
  check Alcotest.int "none missing" 0 !missing

let test_workload_c_read_only () =
  let eng = small_engine () in
  let y = Workload.Ycsb.create ~value_bytes:64 () in
  Workload.Ycsb.load y eng ~records:300;
  let writes_before = (Core.Engine.metrics eng).Core.Metrics.writes in
  Workload.Ycsb.run y eng Workload.Ycsb.C ~ops:200;
  check Alcotest.int "C adds no writes" writes_before (Core.Engine.metrics eng).Core.Metrics.writes;
  check Alcotest.bool "C adds reads" true ((Core.Engine.metrics eng).Core.Metrics.reads >= 200)

let test_workload_a_mix () =
  let eng = small_engine () in
  let y = Workload.Ycsb.create ~value_bytes:64 () in
  Workload.Ycsb.load y eng ~records:300;
  let m = Core.Engine.metrics eng in
  let w0 = m.Core.Metrics.writes and r0 = m.Core.Metrics.reads in
  Workload.Ycsb.run y eng Workload.Ycsb.A ~ops:1000;
  let dw = m.Core.Metrics.writes - w0 and dr = m.Core.Metrics.reads - r0 in
  check Alcotest.int "ops conserved" 1000 (dw + dr);
  (* 50/50 within generous tolerance *)
  check Alcotest.bool (Printf.sprintf "balanced mix r=%d w=%d" dr dw) true
    (abs (dw - dr) < 200)

let test_workload_e_scans () =
  let eng = small_engine () in
  let y = Workload.Ycsb.create ~value_bytes:64 () in
  Workload.Ycsb.load y eng ~records:300;
  let s0 = (Core.Engine.metrics eng).Core.Metrics.scans in
  Workload.Ycsb.run y eng Workload.Ycsb.E ~ops:100;
  check Alcotest.bool "E mostly scans" true
    ((Core.Engine.metrics eng).Core.Metrics.scans - s0 > 80)

let test_workload_d_inserts_grow_keyspace () =
  let eng = small_engine () in
  let y = Workload.Ycsb.create ~value_bytes:64 () in
  Workload.Ycsb.load y eng ~records:100;
  Workload.Ycsb.run y eng Workload.Ycsb.D ~ops:500;
  check Alcotest.bool "D inserted some records" true (Workload.Ycsb.record_count y > 100)

let test_of_string () =
  check Alcotest.bool "parse" true (Workload.Ycsb.of_string "a" = Workload.Ycsb.A);
  check Alcotest.bool "parse load" true (Workload.Ycsb.of_string "Load" = Workload.Ycsb.Load);
  check Alcotest.bool "unknown raises" true
    (try ignore (Workload.Ycsb.of_string "z"); false with Invalid_argument _ -> true)

(* --- Retail ---------------------------------------------------------------- *)

let test_retail_order_lifecycle () =
  let eng = small_engine () in
  let r = Workload.Retail.create ~row_bytes:64 () in
  Workload.Retail.new_order r eng;
  check Alcotest.int "one order" 1 (Workload.Retail.order_count r);
  (* the order's main row and its index entries must be readable *)
  check Alcotest.bool "row present" true
    (Core.Engine.get eng (Util.Keys.record_key ~table_id:0 ~row_id:0) <> None);
  let hits = Core.Engine.scan_range eng ~start:"t0000i" ~stop:"t0000j" in
  check Alcotest.bool "index entries present" true (List.length hits >= 3)

let test_retail_index_query_reads_rows () =
  let eng = small_engine () in
  let r = Workload.Retail.create ~row_bytes:64 () in
  Workload.Retail.load r eng ~orders:50;
  let m = Core.Engine.metrics eng in
  let r0 = m.Core.Metrics.reads in
  Workload.Retail.index_query r eng;
  check Alcotest.bool "index query performs point reads" true (m.Core.Metrics.reads > r0)

let test_retail_updates_are_marked () =
  let eng = small_engine () in
  let r = Workload.Retail.create ~row_bytes:64 () in
  Workload.Retail.load r eng ~orders:30;
  Workload.Retail.run r eng ~transactions:200;
  check Alcotest.bool "transactions executed" true (Workload.Retail.order_count r > 30)

let test_retail_deterministic () =
  let run () =
    let eng = small_engine () in
    let r = Workload.Retail.create ~row_bytes:64 () in
    Workload.Retail.load r eng ~orders:40;
    Workload.Retail.run r eng ~transactions:100;
    (Core.Engine.user_bytes eng, (Core.Engine.metrics eng).Core.Metrics.reads)
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "two runs identical" (run ()) (run ())

(* --- Driver ----------------------------------------------------------------- *)

let test_driver_measures () =
  let eng = small_engine () in
  let y = Workload.Ycsb.create ~value_bytes:64 () in
  Workload.Ycsb.load y eng ~records:200;
  let s = Workload.Driver.measure eng ~ops:300 (fun _ -> Workload.Ycsb.step y eng Workload.Ycsb.A) in
  check Alcotest.int "ops recorded" 300 s.Workload.Driver.ops;
  check Alcotest.bool "throughput positive" true (s.throughput > 0.0);
  check Alcotest.bool "sim time advanced" true (s.sim_seconds > 0.0);
  check Alcotest.bool "latencies populated" true (s.read_avg_ns > 0.0 && s.write_avg_ns > 0.0);
  check Alcotest.bool "user bytes counted" true (s.user_bytes > 0)

let () =
  Alcotest.run "workload"
    [
      ( "ycsb",
        [
          Alcotest.test_case "load inserts" `Quick test_load_inserts_records;
          Alcotest.test_case "C read-only" `Quick test_workload_c_read_only;
          Alcotest.test_case "A mix" `Quick test_workload_a_mix;
          Alcotest.test_case "E scans" `Quick test_workload_e_scans;
          Alcotest.test_case "D grows keyspace" `Quick test_workload_d_inserts_grow_keyspace;
          Alcotest.test_case "of_string" `Quick test_of_string;
        ] );
      ( "retail",
        [
          Alcotest.test_case "order lifecycle" `Quick test_retail_order_lifecycle;
          Alcotest.test_case "index query" `Quick test_retail_index_query_reads_rows;
          Alcotest.test_case "transaction mix" `Quick test_retail_updates_are_marked;
          Alcotest.test_case "deterministic" `Quick test_retail_deterministic;
        ] );
      ("driver", [ Alcotest.test_case "measures" `Quick test_driver_measures ]);
    ]

(* Design-choice ablations beyond the paper's figures (DESIGN.md):

   - group size 8 vs 16 in the PM table's prefix layer (the paper says
     "eight or sixteen elements" without evaluating the choice);
   - the three cost models enabled selectively, showing what each equation
     buys on an update-heavy mixed workload;
   - the greedy warm-set selection (Eq. 3) against evicting everything. *)

let ablate_group () =
  Report.heading "Ablation: PM-table prefix group size";
  let entries =
    let rng = Util.Xoshiro.create 5 in
    let raw =
      Array.init 8192 (fun i ->
          Util.Kv.entry
            ~key:(Util.Keys.record_key ~table_id:(i mod 4) ~row_id:(i * 3))
            ~seq:(i + 1)
            (Util.Xoshiro.string rng 64))
    in
    Array.sort Util.Kv.compare_entry raw;
    raw
  in
  let rows =
    List.map
      (fun group_size ->
        let clock = Sim.Clock.create () in
        let pm = Pmem.create ~params:{ Pmem.default_params with capacity = 64 * 1024 * 1024 } clock in
        let t0 = Sim.Clock.now clock in
        let tbl = Pmtable.Pm_table.build ~group_size pm entries in
        let build = Sim.Clock.now clock -. t0 in
        let rng = Util.Xoshiro.create 11 in
        let t1 = Sim.Clock.now clock in
        let probes = 2000 in
        for _ = 1 to probes do
          ignore (Pmtable.Pm_table.get tbl entries.(Util.Xoshiro.int rng 8192).Util.Kv.key)
        done;
        let read = (Sim.Clock.now clock -. t1) /. float_of_int probes in
        [
          string_of_int group_size;
          Report.duration build;
          string_of_int (Pmtable.Pm_table.byte_size tbl);
          Report.us read;
        ])
      [ 4; 8; 16; 32 ]
  in
  Report.table ~header:[ "group size"; "build time"; "bytes"; "read latency" ] rows;
  Report.note "larger groups: fewer prefix records (smaller, faster build) but";
  Report.note "longer sequential scans per lookup - 8/16 is the sweet spot."

let ablate_cost () =
  Report.heading "Ablation: cost-model equations enabled selectively";
  (* PM is shrunk below the dataset so evictions (and SSD writes) happen
     during the run, letting each equation's contribution show. *)
  let tau_m = 7 * 1024 * 1024 and tau_t = 5 * 1024 * 1024 in
  let base_params =
    { Core.Config.scaled_cost_model with Compaction.Cost_model.tau_m; tau_t;
      tau_w = 256 * 1024 }
  in
  let variants =
    [
      ("none (conventional)",
       Core.Config.Conventional { max_tables = None; max_bytes = Some tau_m });
      ("Eq.2 only (write amp)",
       Core.Config.Cost_based { base_params with Compaction.Cost_model.i_b = 0.0 });
      ("Eq.1 only (read amp)",
       Core.Config.Cost_based { base_params with Compaction.Cost_model.i_s = 0.0 });
      ("Eq.1+2", Core.Config.Cost_based base_params);
    ]
  in
  let rows =
    List.map
      (fun (name, strategy) ->
        let cfg =
          { Core.Config.pmblade with
            Core.Config.l0_strategy = strategy;
            l0_capacity = 8 * 1024 * 1024;
            pm_params = { Pmem.default_params with capacity = 12 * 1024 * 1024 } }
        in
        Report.note_config cfg;
        let eng = Core.Engine.create cfg in
        let rng = Util.Xoshiro.create 31 in
        let keyspace = 20_000 in
        let ops = 60_000 in
        let m = Core.Engine.metrics eng in
        for i = 1 to ops do
          let key = Util.Keys.ycsb_key (Util.Xoshiro.int rng keyspace) in
          if i land 1 = 0 then ignore (Core.Engine.get eng key)
          else Core.Engine.put ~update:(i > keyspace) eng ~key (Util.Xoshiro.string rng 512)
        done;
        [
          name;
          Report.us (Util.Histogram.mean m.Core.Metrics.read_latency);
          Report.mb (Core.Engine.ssd_bytes_written eng);
          string_of_int m.Core.Metrics.internal_compactions;
        ])
      variants
  in
  Report.table
    ~header:[ "cost models"; "read avg"; "SSD written"; "internal compactions" ]
    rows

let ablate_warm () =
  Report.heading "Ablation: Eq.3 warm-set selection vs evict-everything";
  let measure keep_warm =
    let strategy =
      Core.Config.Cost_based
        { Core.Config.scaled_cost_model with
          Compaction.Cost_model.tau_m = 7 * 1024 * 1024;
          tau_t = (if keep_warm then 5 * 1024 * 1024 else 0) }
    in
    let cfg =
      { Core.Config.pmblade with
        Core.Config.l0_strategy = strategy;
        l0_capacity = 8 * 1024 * 1024;
        pm_params = { Pmem.default_params with capacity = 12 * 1024 * 1024 } }
    in
    Report.note_config cfg;
    let eng = Core.Engine.create cfg in
    let rng = Util.Xoshiro.create 37 in
    (* Orthogonal distributions isolate Eq. 3: writes churn uniformly over
       the whole keyspace while reads concentrate on a fixed warm range —
       the warm range is rarely rewritten, so only the knapsack keeps its
       partitions in PM across majors. *)
    let keyspace = 20_000 and warm = 2_000 in
    for i = 0 to warm - 1 do
      Core.Engine.put eng ~key:(Util.Keys.ycsb_key i) (Util.Xoshiro.string rng 512)
    done;
    for i = 1 to 60_000 do
      if i land 1 = 0 then
        ignore (Core.Engine.get eng (Util.Keys.ycsb_key (Util.Xoshiro.int rng warm)))
      else
        Core.Engine.put ~update:true eng
          ~key:(Util.Keys.ycsb_key (warm + Util.Xoshiro.int rng keyspace))
          (Util.Xoshiro.string rng 512)
    done;
    (* run-long hit ratio: the warm set's effect accumulates across every
       major compaction of the run *)
    Core.Metrics.pm_hit_ratio (Core.Engine.metrics eng)
  in
  Report.table
    ~header:[ "strategy"; "PM hit ratio" ]
    [
      [ "greedy warm set (tau_t > 0)"; Report.pct (measure true) ];
      [ "evict everything (tau_t = 0)"; Report.pct (measure false) ];
    ]

let run () =
  ablate_group ();
  ablate_cost ();
  ablate_warm ()

(* Attribution baseline (BENCH_attr): one deterministic YCSB-A run with the
   per-op profiler enabled, printed as a per-phase breakdown and recorded
   as the scalar metrics the perf gate compares against the committed
   BENCH_attr.json baseline (scripts/check_perf.sh).

   The dataset exceeds the PM level-0 budget so reads exercise every layer
   the profiler attributes: memtable, PM blooms, the block cache, PM and
   SSD media, and the WAL on the write side.

     dune exec bench/main.exe -- attr --json BENCH_attr.json

   PMB_PLANT=cache_off runs the same experiment with the block cache
   disabled while still stamping the *nominal* config fingerprint — a
   planted regression that must make the gate fail on metrics, proving the
   gate can catch a real perf bug rather than just config drift. *)

let records = 12_000
let ops = 10_000
let cache_mb = 8
let pm_budget = 6 * 1024 * 1024
let tau_m = 5 * 1024 * 1024
let tau_t = 3 * 1024 * 1024

let nominal =
  let cfg = Core.Config.pmblade in
  {
    cfg with
    Core.Config.l0_capacity = pm_budget;
    pm_params = { Pmem.default_params with capacity = pm_budget + (4 * 1024 * 1024) };
    l0_strategy =
      (match cfg.Core.Config.l0_strategy with
      | Core.Config.Cost_based p ->
          Core.Config.Cost_based { p with Compaction.Cost_model.tau_m; tau_t }
      | s -> s);
    block_cache_mb = cache_mb;
    (* durable so the WAL stage/sync phases show up in the breakdown *)
    durable = true;
  }

let planted () =
  match Sys.getenv_opt "PMB_PLANT" with Some "cache_off" -> true | _ -> false

let run () =
  Report.heading "Attr: per-op attribution + perf-gate baseline (YCSB-A)";
  (* The planted variant keeps the nominal fingerprint on purpose: the gate
     must catch the regression through metrics, not a config mismatch. *)
  Report.note_config nominal;
  let cfg =
    if planted () then { nominal with Core.Config.block_cache_mb = 0 } else nominal
  in
  let eng = Core.Engine.create cfg in
  let y = Workload.Ycsb.create () in
  Workload.Ycsb.load y eng ~records;
  Core.Engine.flush eng;
  Core.Engine.force_internal_compaction eng;
  Obs.Attr.enable ~clock:(Core.Engine.clock eng);
  let summary =
    Workload.Driver.measure eng ~ops (fun _ -> Workload.Ycsb.step y eng Workload.Ycsb.A)
  in
  let snap = Obs.Attr.snapshot () in
  let op_ns = Obs.Attr.op_ns () in
  let accounted = Obs.Attr.accounted_ns () in
  let coverage = if op_ns > 0.0 then accounted /. op_ns else 0.0 in
  let phases =
    snap.Obs.Attr.op_phases
    |> List.filter (fun (_, ns) -> ns > 0.0)
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  Report.table
    ~header:[ "phase"; "op time"; "share"; "events" ]
    (List.map
       (fun (p, ns) ->
         [
           Obs.Attr.phase_name p;
           Report.duration ns;
           Report.pct (ns /. op_ns);
           string_of_int
             (Option.value ~default:0
                (List.assoc_opt p snap.Obs.Attr.phase_counts));
         ])
       phases);
  Report.note "attribution coverage: %s of %s measured op time"
    (Report.pct coverage) (Report.duration op_ns);
  let hit_ratio =
    match Core.Engine.block_cache eng with
    | Some c -> Cache.Block_cache.hit_ratio c
    | None -> 0.0
  in
  let m = Core.Engine.metrics eng in
  let metric name v =
    Report.record_metric name v;
    Printf.printf "  ATTR %s %.6g\n" name v
  in
  metric "attr.ycsb_a.throughput_ops" summary.Workload.Driver.throughput;
  metric "attr.ycsb_a.read_avg_ns" summary.Workload.Driver.read_avg_ns;
  metric "attr.ycsb_a.read_p999_ns" summary.Workload.Driver.read_p999_ns;
  metric "attr.ycsb_a.write_avg_ns" summary.Workload.Driver.write_avg_ns;
  metric "attr.coverage" coverage;
  metric "engine.waf" (Core.Engine.write_amplification eng);
  metric "engine.raf" (Core.Engine.read_amplification eng);
  metric "engine.write_stall_ns" m.Core.Metrics.write_stall_time;
  metric "engine.debt_bytes" (float_of_int (Core.Engine.compaction_debt_bytes eng));
  metric "cache.hit_ratio" hit_ratio;
  Obs.Attr.disable ();
  if planted () then Report.note "PLANTED regression active: block cache disabled"

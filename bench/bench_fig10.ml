(* Fig. 10 — ablation study on the online-retail workload (§VI-D): how much
   each technique contributes. Configurations ladder up from PMBlade-SSD
   (nothing enabled, no PM) through PMB-P (PM level-0), PMB-PI (+ internal
   compaction under the cost models), PMB-PIC (+ compressed PM tables) to
   PMBlade (+ coroutine compaction).

   The paper loads 200 GB against 80 GB of PM; the scaled run keeps the
   pressure ratio with a 20 MB PM budget and a ~2x dataset, so minor,
   internal and major compactions all run during the measurement. *)

let orders = 5_000
let transactions = 4_000

let pm_budget = 20 * 1024 * 1024
let tau_m = 18 * 1024 * 1024
let tau_t = 12 * 1024 * 1024

let shrink (cfg : Core.Config.t) =
  {
    cfg with
    Core.Config.l0_capacity = pm_budget;
    pm_params = { Pmem.default_params with capacity = pm_budget + (4 * 1024 * 1024) };
    l0_strategy =
      (match cfg.Core.Config.l0_strategy with
      | Core.Config.Cost_based p ->
          Core.Config.Cost_based { p with Compaction.Cost_model.tau_m; tau_t }
      | Core.Config.Conventional { max_tables = Some _; _ } as s -> s
      | Core.Config.Conventional _ ->
          Core.Config.Conventional { max_tables = None; max_bytes = Some tau_m }
      | Core.Config.Matrix m -> Core.Config.Matrix m);
  }

let configs =
  [
    ("PMBlade-SSD", shrink Core.Config.pmblade_ssd);
    ("PMB-P", shrink Core.Config.pmb_p);
    ("PMB-PI", shrink Core.Config.pmb_pi);
    ("PMB-PIC", shrink Core.Config.pmb_pic);
    ("PMBlade", shrink Core.Config.pmblade);
  ]

let run_one (cfg : Core.Config.t) =
  Report.note_config cfg;
  let eng = Core.Engine.create cfg in
  let retail = Workload.Retail.create () in
  Workload.Retail.load retail eng ~orders;
  let m = Core.Engine.metrics eng in
  Util.Histogram.reset m.Core.Metrics.read_latency;
  Util.Histogram.reset m.Core.Metrics.write_latency;
  Util.Histogram.reset m.Core.Metrics.scan_latency;
  let summary =
    Workload.Driver.measure eng ~ops:transactions (fun _ -> Workload.Retail.step retail eng)
  in
  (eng, summary)

let run () =
  Report.heading "Fig 10a/10b: ablation on the retail workload";
  let results = List.map (fun (name, cfg) -> (name, run_one cfg)) configs in
  Report.table
    ~header:
      [ "configuration"; "read avg"; "scan avg"; "write avg"; "throughput (tx/s)";
        "internal compactions" ]
    (List.map
       (fun (name, (eng, s)) ->
         [
           name;
           Report.us s.Workload.Driver.read_avg_ns;
           Report.us s.scan_avg_ns;
           Report.us s.write_avg_ns;
           Printf.sprintf "%.0f" s.throughput;
           string_of_int (Core.Engine.metrics eng).Core.Metrics.internal_compactions;
         ])
       results);
  (match (List.assoc_opt "PMB-P" results, List.assoc_opt "PMBlade" results) with
  | Some (_, p), Some (_, full) ->
      Report.note "PMBlade vs PMB-P: read %.0f%%, write %.0f%%, scan %.0f%%, throughput %+.0f%%"
        (100. *. (1. -. (full.Workload.Driver.read_avg_ns /. p.Workload.Driver.read_avg_ns)))
        (100. *. (1. -. (full.write_avg_ns /. p.write_avg_ns)))
        (100. *. (1. -. (full.scan_avg_ns /. p.scan_avg_ns)))
        (100. *. ((full.throughput /. p.throughput) -. 1.))
  | _ -> ());
  Report.note "paper: vs PMB-P, PMBlade cuts read 40%%, write 48%%, scan 54%%";
  Report.note "and lifts throughput 51%%; internal compaction contributes most."

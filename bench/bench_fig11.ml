(* Fig. 11 — head-to-head on the online-retail workload (§VI-E): write
   amplification (split by device), read / write / scan latency and
   normalised throughput for PMBlade, MatrixKV-8GB, MatrixKV-80GB and
   RocksDB. *)

let orders = 5_000
let transactions = 4_000

(* Scaled like fig10: 20 MB PM budget under a ~2x dataset; MatrixKV keeps
   its own (8 MB / 20 MB) container budgets. *)
let pm_budget = 20 * 1024 * 1024
let tau_m = 18 * 1024 * 1024
let tau_t = 12 * 1024 * 1024

let shrink (cfg : Core.Config.t) =
  {
    cfg with
    Core.Config.l0_capacity = min cfg.Core.Config.l0_capacity pm_budget;
    pm_params = { Pmem.default_params with capacity = pm_budget + (4 * 1024 * 1024) };
    l0_strategy =
      (match cfg.Core.Config.l0_strategy with
      | Core.Config.Cost_based p ->
          Core.Config.Cost_based { p with Compaction.Cost_model.tau_m; tau_t }
      | Core.Config.Conventional _ as s -> s
      | Core.Config.Matrix { columns; trigger_bytes } ->
          Core.Config.Matrix { columns; trigger_bytes = min trigger_bytes tau_m });
  }

let systems =
  [
    ("PMBlade", shrink Core.Config.pmblade);
    ("MatrixKV-8GB", shrink Core.Config.matrixkv_8);
    ("MatrixKV-80GB", shrink Core.Config.matrixkv_80);
    ("RocksDB", shrink Core.Config.rocksdb_like);
  ]

let run_one (cfg : Core.Config.t) =
  Report.note_config cfg;
  let eng = Core.Engine.create cfg in
  let retail = Workload.Retail.create () in
  Workload.Retail.load retail eng ~orders;
  let m = Core.Engine.metrics eng in
  Util.Histogram.reset m.Core.Metrics.read_latency;
  Util.Histogram.reset m.Core.Metrics.write_latency;
  Util.Histogram.reset m.Core.Metrics.scan_latency;
  let summary =
    Workload.Driver.measure eng ~ops:transactions (fun _ -> Workload.Retail.step retail eng)
  in
  summary

let run () =
  Report.heading "Fig 11: real-world (retail) workload, four systems";
  let results = List.map (fun (name, cfg) -> (name, run_one cfg)) systems in
  let base_tp =
    match List.assoc_opt "RocksDB" results with
    | Some s -> s.Workload.Driver.throughput
    | None -> 1.0
  in
  Report.table
    ~header:
      [ "system"; "PM written"; "SSD written"; "WA"; "read avg"; "write avg"; "scan avg";
        "throughput vs RocksDB" ]
    (List.map
       (fun (name, s) ->
         [
           name;
           Report.mb s.Workload.Driver.pm_bytes_written;
           Report.mb s.ssd_bytes_written;
           Report.ratio
             (float_of_int (s.pm_bytes_written + s.ssd_bytes_written)
             /. float_of_int (max 1 s.user_bytes));
           Report.us s.read_avg_ns;
           Report.us s.write_avg_ns;
           Report.us s.scan_avg_ns;
           Report.ratio (s.throughput /. base_tp);
         ])
       results);
  Report.note "paper: PMBlade WA 197 GB (18%% of RocksDB), write latency 33%% of";
  Report.note "RocksDB / 48%% of MatrixKV-8, scan 22%%/34%%, throughput 3.7x RocksDB";
  Report.note "and ~2.5-2.6x both MatrixKV configurations."

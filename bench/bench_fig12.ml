(* Fig. 12 — YCSB Load + A-F normalised throughput for PMBlade, RocksDB,
   MatrixKV-8GB and MatrixKV-80GB. Standard YCSB procedure: load a dataset,
   then run each core workload on the same store, measuring simulated
   throughput per phase. Scaled: 16k x 1 KB records, 3k ops per phase. *)

let records = 16_000
let ops_per_phase = 3_000

let systems =
  [
    ("PMBlade", Core.Config.pmblade);
    ("RocksDB", Core.Config.rocksdb_like);
    ("MatrixKV-8GB", Core.Config.matrixkv_8);
    ("MatrixKV-80GB", Core.Config.matrixkv_80);
  ]

let phases =
  [ Workload.Ycsb.Load; Workload.Ycsb.A; B; C; D; E; F ]

let run_system (cfg : Core.Config.t) =
  Report.note_config cfg;
  let eng = Core.Engine.create cfg in
  let y = Workload.Ycsb.create () in
  List.map
    (fun phase ->
      let summary =
        match phase with
        | Workload.Ycsb.Load ->
            Workload.Driver.measure eng ~ops:records (fun _ ->
                Workload.Ycsb.step y eng Workload.Ycsb.Load)
        | w ->
            Workload.Driver.measure eng ~ops:ops_per_phase (fun _ ->
                Workload.Ycsb.step y eng w)
      in
      (phase, summary.Workload.Driver.throughput))
    phases

let run () =
  Report.heading "Fig 12: YCSB throughput, normalized to RocksDB";
  let results = List.map (fun (name, cfg) -> (name, run_system cfg)) systems in
  let rocksdb = List.assoc "RocksDB" results in
  Report.table
    ~header:("system" :: List.map Workload.Ycsb.name phases)
    (List.map
       (fun (name, per_phase) ->
         name
         :: List.map
              (fun (phase, tp) ->
                let base = List.assoc phase rocksdb in
                Report.ratio (tp /. base))
              per_phase)
       results);
  Report.note "paper: Load 3.5x RocksDB / 1.8x MatrixKV-8; E 2.0x RocksDB /";
  Report.note "2.4x MatrixKV; A 1.5x RocksDB / 1.3x MatrixKV-8."

(* Fig. 7 — read performance under internal compaction (§VI-B).

   (a) Level-0 read latency as data accumulates, 50% read / 50% write, for
       PMBlade (internal compaction), PMBlade-PM (PM level-0, no internal
       compaction) and PMBlade-SSD (conventional SSD level-0). PMBlade's
       latency stays flat; the other two grow with the unsorted table
       count / SSD depth.

   (b) Read latency while a compaction is in flight: client reads share the
       device with the compaction's I/O, so avg and p99.9 rise — mildly for
       the PM-internal compaction, brutally for the SSD one. Modelled on
       the discrete-event scheduler with a client coroutine issuing point
       reads against the same device the compaction writes. *)

let passive_strategy = Core.Config.Conventional { max_tables = None; max_bytes = None }

let fig7a () =
  Report.heading "Fig 7a: level-0 read latency vs accumulated data (50r/50w)";
  let value_bytes = 256 in
  let checkpoints = [ 1; 2; 4; 8 ] in
  (* in MB written *)
  let run_config (cfg : Core.Config.t) =
    (* For the no-internal-compaction variants, let level-0 grow unbounded
       so read amplification shows; PMBlade keeps its cost models. *)
    Report.note_config cfg;
    let eng = Core.Engine.create cfg in
    let rng = Util.Xoshiro.create 7 in
    let keyspace = 20_000 in
    let written = ref 0 in
    let metrics = Core.Engine.metrics eng in
    List.map
      (fun target_mb ->
        let target = target_mb * 1024 * 1024 in
        while !written < target do
          let key = Util.Keys.ycsb_key (Util.Xoshiro.int rng keyspace) in
          Core.Engine.put ~update:true eng ~key (Util.Xoshiro.string rng value_bytes);
          written := !written + value_bytes + 32;
          ignore (Core.Engine.get eng (Util.Keys.ycsb_key (Util.Xoshiro.int rng keyspace)))
        done;
        Util.Histogram.reset metrics.Core.Metrics.read_latency;
        for _ = 1 to 300 do
          ignore (Core.Engine.get eng (Util.Keys.ycsb_key (Util.Xoshiro.int rng keyspace)))
        done;
        Report.us (Util.Histogram.mean metrics.Core.Metrics.read_latency))
      checkpoints
  in
  let pmblade = run_config Core.Config.pmblade in
  let pmblade_pm =
    run_config { Core.Config.pmblade_pm with Core.Config.l0_strategy = passive_strategy }
  in
  let pmblade_ssd =
    run_config
      { Core.Config.pmblade_ssd with
        Core.Config.l0_strategy = Core.Config.Conventional { max_tables = Some 64; max_bytes = None } }
  in
  Report.table
    ~header:("system" :: List.map (fun mb -> Printf.sprintf "%d MB" mb) checkpoints)
    [ "PMBlade" :: pmblade; "PMBlade-PM" :: pmblade_pm; "PMBlade-SSD" :: pmblade_ssd ];
  Report.note "paper: PMBlade stays low (up to 82%% below PMBlade-PM); the";
  Report.note "no-internal-compaction variants climb as level-0 accumulates."

(* A client coroutine issuing point reads with think time against the same
   device an optional compaction is writing; interference (reads queueing
   behind compaction I/O) produces the avg and tail inflation. *)
let latency_during ~device_params ~write_buffer ~with_compaction ~offload =
  let clock = Sim.Clock.create () in
  let des = Sim.Des.create clock in
  let dev = Ssd.create ~params:device_params clock in
  let policy =
    (* PM writes are admitted under a small q so foreground reads rarely
       queue behind more than one flush chunk. *)
    if offload then Coroutine.Scheduler.default_flush_coroutine ~q_max:2 ()
    else Coroutine.Scheduler.default_thread_like
  in
  let sched = Coroutine.Scheduler.create ~cores:2 ~policy des dev in
  let hist = Util.Histogram.create () in
  let reads = 400 in
  Coroutine.Scheduler.spawn sched 0 (fun () ->
      for _ = 1 to reads do
        let latency = Coroutine.Co.read 4096 in
        Util.Histogram.record hist latency;
        Coroutine.Co.work (Sim.Clock.us 20.0)
      done);
  if with_compaction then
    Coroutine.Scheduler.spawn sched 1
      (Exec_model.Task.compaction
         {
           Exec_model.Task.default with
           input_bytes = 16 * 1024 * 1024;
           value_bytes = 1024;
           write_buffer;
           read_block = 2 * write_buffer;
           offload_s3 = offload;
           pm_input_fraction = (if offload then 1.0 else 0.0);
         });
  ignore (Coroutine.Scheduler.run_to_completion sched);
  (Util.Histogram.mean hist, Util.Histogram.percentile hist 99.9)

let fig7b () =
  Report.heading "Fig 7b: read latency during an in-flight compaction";
  (* PMBlade: reads and internal compaction both on the PM device; the
     queued-device model runs with PM-like service times. *)
  let pm_like =
    {
      Ssd.default_params with
      Ssd.read_latency_ns = 400.0;
      write_latency_ns = 800.0;
      read_byte_ns = 0.35;
      write_byte_ns = 1.0;
      channels = 1;
    }
  in
  let ssd_like = { Ssd.default_params with Ssd.channels = 1 } in
  (* PM writes are persisted in small buffered chunks; the SSD flushes a
     RocksDB-scale write buffer. *)
  let pm_chunk = 32 * 1024 and ssd_chunk = 128 * 1024 in
  let rows =
    [
      ( "PMBlade",
        latency_during ~device_params:pm_like ~write_buffer:pm_chunk ~with_compaction:true
          ~offload:true );
      ( "PMBlade-noComp",
        latency_during ~device_params:pm_like ~write_buffer:pm_chunk ~with_compaction:false
          ~offload:true );
      ( "PMBlade-SSD",
        latency_during ~device_params:ssd_like ~write_buffer:ssd_chunk ~with_compaction:true
          ~offload:false );
      ( "PMBlade-SSD-noComp",
        latency_during ~device_params:ssd_like ~write_buffer:ssd_chunk ~with_compaction:false
          ~offload:false );
    ]
  in
  Report.table
    ~header:[ "configuration"; "avg read latency"; "p99.9 read latency" ]
    (List.map (fun (name, (avg, p999)) -> [ name; Report.us avg; Report.us p999 ]) rows);
  Report.note "paper: compaction lifts PMBlade avg ~1.7x and p99.9 ~5.3x over";
  Report.note "noComp, yet stays at ~23%%/21%% of the SSD configuration."

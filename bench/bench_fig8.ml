(* Fig. 8 — effect of the cost-based compaction models (§VI-B).

   (a) Write amplification of RocksDB / PMBlade-PM / PMBlade after an
       update-heavy load under different key distributions, split by device
       (the paper reports the PM and SSD components for PMBlade).

   (b) Fraction of reads served from PM under a 50r/50w workload by data
       skew: PMBlade's Eq. 3 keeps warm partitions in PM, the conventional
       whole-level-0 strategy periodically evicts everything.

   The paper loads 200 GB against an 80 GB PM level-0 (2.5x) and a dataset
   larger than PM; the scaled runs keep those ratios: 20 MB PM level-0,
   50 MB written, dataset footprint larger than PM. *)

let value_bytes = 1024
let written_bytes = 50 * 1024 * 1024
let keyspace = 24_000 (* ~24 MB footprint > PM budget *)

let pm_budget = 20 * 1024 * 1024
let tau_m = 18 * 1024 * 1024
let tau_t = 12 * 1024 * 1024

(* Shrink a variant's PM and thresholds to this experiment's scale. *)
let shrink (cfg : Core.Config.t) =
  {
    cfg with
    Core.Config.l0_capacity = pm_budget;
    pm_params = { Pmem.default_params with capacity = pm_budget + (4 * 1024 * 1024) };
    l0_strategy =
      (match cfg.Core.Config.l0_strategy with
      | Core.Config.Cost_based p ->
          Core.Config.Cost_based { p with Compaction.Cost_model.tau_m; tau_t }
      | Core.Config.Conventional { max_tables = Some _; _ } as s -> s
      | Core.Config.Conventional _ ->
          Core.Config.Conventional { max_tables = None; max_bytes = Some tau_m }
      | Core.Config.Matrix m -> Core.Config.Matrix m);
  }

let systems =
  [
    ("RocksDB", shrink Core.Config.rocksdb_like);
    ("PMBlade-PM", shrink Core.Config.pmblade_pm);
    ("PMBlade", shrink Core.Config.pmblade);
  ]

let load (cfg : Core.Config.t) ~theta =
  Report.note_config cfg;
  let eng = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 43 in
  let zipf = Util.Zipf.create ~theta ~n:keyspace rng in
  let writes = written_bytes / (value_bytes + 32) in
  for i = 1 to writes do
    let key = Util.Keys.ycsb_key (Util.Zipf.next_scrambled zipf) in
    Core.Engine.put ~update:(i > keyspace) eng ~key (Util.Xoshiro.string rng value_bytes)
  done;
  eng

let fig8a () =
  Report.heading "Fig 8a: write amplification by distribution";
  let distributions = [ ("uniform", 0.0); ("zipf 0.6", 0.6); ("zipf 0.99", 0.99) ] in
  let rows =
    List.concat_map
      (fun (dname, theta) ->
        List.map
          (fun (sname, cfg) ->
            let eng = load cfg ~theta in
            let user = Core.Engine.user_bytes eng in
            let pm_w = Core.Engine.pm_bytes_written eng in
            let ssd_w = Core.Engine.ssd_bytes_written eng in
            [
              dname;
              sname;
              Report.mb user;
              Report.mb pm_w;
              Report.mb ssd_w;
              Report.ratio (float_of_int (pm_w + ssd_w) /. float_of_int user);
            ])
          systems)
      distributions
  in
  Report.table
    ~header:[ "distribution"; "system"; "user bytes"; "PM written"; "SSD written"; "total WA" ]
    rows;
  Report.note "paper (uniform, 200 GB): RocksDB 2573 GB, PMBlade-PM 825 GB,";
  Report.note "PMBlade 359 GB (201 PM + 158 SSD) - PMBlade absorbs WA in PM."

let fig8b () =
  Report.heading "Fig 8b: fraction of reads served from PM vs data skew (50r/50w)";
  let skews = [ 0.0; 0.3; 0.6; 0.9; 0.99 ] in
  let measure (cfg : Core.Config.t) theta =
    Report.note_config cfg;
    let eng = Core.Engine.create cfg in
    let rng = Util.Xoshiro.create 53 in
    let zipf = Util.Zipf.create ~theta ~n:keyspace rng in
    let ops = 64_000 in
    for i = 1 to ops do
      let key = Util.Keys.ycsb_key (Util.Zipf.next_scrambled zipf) in
      if i land 1 = 0 then ignore (Core.Engine.get eng key)
      else Core.Engine.put ~update:true eng ~key (Util.Xoshiro.string rng value_bytes)
    done;
    let m = Core.Engine.metrics eng in
    Core.Metrics.reset_read_sources m;
    for _ = 1 to 4_000 do
      ignore (Core.Engine.get eng (Util.Keys.ycsb_key (Util.Zipf.next_scrambled zipf)))
    done;
    Core.Metrics.pm_hit_ratio m
  in
  let rows =
    List.map
      (fun theta ->
        let pmblade = measure (shrink Core.Config.pmblade) theta in
        let pmblade_pm = measure (shrink Core.Config.pmblade_pm) theta in
        [ Printf.sprintf "%.2f" theta; Report.pct pmblade; Report.pct pmblade_pm ])
      skews
  in
  Report.table ~header:[ "data skew"; "PMBlade"; "PMBlade-PM" ] rows;
  Report.note "paper: hit rate rises with skew; the cost model keeps warm data";
  Report.note "in PM (+34%% at skew 0 vs the conventional strategy)."

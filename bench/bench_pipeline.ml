(* Pipelined compaction: staged read/merge/build/write overlap vs the
   Table III serial baseline.

   The serial side is the exact Table III threads=1 configuration (one
   blocking compaction task on one core, all input on the SSD).  The
   pipelined side replays the same cost tokens — derived with the same
   seeded dedup discipline as Exec_model.Task.compaction, so the output
   volume matches — through Compaction.Pipeline.simulate at 1, 2 and 4
   cores, and reports speedup, bottleneck-core CPU idleness, device
   idleness and queue behaviour.

   PMB_PLANT=serial_pipeline switches the replay to the Serial_stages
   plant (stages gate on their predecessor draining), which
   scripts/check_pipeline.sh must catch as speedup <= 1. *)

module Pipeline = Compaction.Pipeline

let total_work = 8 * 1024 * 1024
let core_points = [ 1; 2; 4 ]

let planted () =
  match Sys.getenv_opt "PMB_PLANT" with
  | Some "serial_pipeline" -> true
  | _ -> false

(* Mirror Task.compaction's token stream: same block walk, same rng draw
   order, same survivor arithmetic.  S2's per-entry share is the merge
   token and its per-byte share (copies, checksums) the build token; the
   split leaves the serial sum identical to the Thread-mode run. *)
let recording_of_task (p : Exec_model.Task.params) (sp : Ssd.params) =
  let r = Pipeline.create_recording () in
  let rng = Util.Xoshiro.create p.seed in
  let entry_size = p.value_bytes + p.entry_overhead in
  let remaining = ref p.input_bytes in
  let out_bytes = ref 0 in
  while !remaining > 0 do
    let block = min p.read_block !remaining in
    remaining := !remaining - block;
    (if Util.Xoshiro.float rng 1.0 < p.pm_input_fraction then
       Pipeline.record_read r Pipeline.Pm ~bytes:block
         ~cost_ns:(float_of_int block *. p.pm_read_ns_per_byte)
     else
       Pipeline.record_read r Pipeline.Ssd ~bytes:block
         ~cost_ns:
           (sp.Ssd.read_latency_ns +. (float_of_int block *. sp.Ssd.read_byte_ns)));
    let entries = max 1 (block / entry_size) in
    Pipeline.record_merge r ~entries
      ~cost_ns:(float_of_int entries *. p.cpu_per_entry_ns);
    Pipeline.record_build r ~cost_ns:(float_of_int block *. p.cpu_per_byte_ns);
    let dedup =
      let d =
        p.dedup_ratio +. ((Util.Xoshiro.float rng 2.0 -. 1.0) *. p.dedup_spread)
      in
      Float.max 0.0 (Float.min 0.95 d)
    in
    let survivors = int_of_float (float_of_int entries *. (1.0 -. dedup)) in
    out_bytes := !out_bytes + (survivors * entry_size)
  done;
  let rem = ref !out_bytes in
  while !rem > 0 do
    let chunk = min p.write_buffer !rem in
    rem := !rem - chunk;
    Pipeline.record_write r Pipeline.Ssd ~bytes:chunk
      ~cost_ns:
        (sp.Ssd.write_latency_ns +. (float_of_int chunk *. sp.Ssd.write_byte_ns))
  done;
  r

let sim_config ~cores =
  let cfg = Core.Config.pmblade in
  {
    Pipeline.cores;
    queue_capacity = cfg.Core.Config.pipeline_queue_capacity;
    block_bytes = cfg.Core.Config.pipeline_block_bytes;
    q_max = cfg.Core.Config.pipeline_q_max;
    flush_reserve = cfg.Core.Config.pipeline_flush_reserve;
    ssd_params = Ssd.default_params;
  }

let stage_busy (res : Pipeline.result) stage =
  match
    List.find_opt (fun s -> s.Pipeline.s_stage = stage) res.Pipeline.stages
  with
  | Some s -> s.Pipeline.busy_ns
  | None -> 0.0

(* The pipeline never runs a stage on more than one core, so aggregate
   idleness over all cores undersells the overlap; the honest CPU figure
   is the bottleneck core's idle share. *)
let bottleneck_idle (res : Pipeline.result) =
  let busiest =
    List.fold_left
      (fun acc s -> Float.max acc s.Pipeline.busy_ns)
      0.0 res.Pipeline.stages
  in
  if res.Pipeline.makespan <= 0.0 then 0.0
  else Float.max 0.0 (1.0 -. (busiest /. res.Pipeline.makespan))

let run () =
  Report.heading
    "Pipelined compaction: staged overlap vs Table III serial baseline";
  Report.note_config Core.Config.pmblade;
  let plant = if planted () then Pipeline.Serial_stages else Pipeline.No_plant in
  if planted () then
    Report.note "PLANTED regression active: stages forced serial";
  let task_params =
    {
      Exec_model.Task.default with
      input_bytes = total_work;
      pm_input_fraction = 0.0;
    }
  in
  let serial =
    Exec_model.Harness.run
      {
        Exec_model.Harness.default with
        mode = Exec_model.Harness.Thread;
        cores = 1;
        tasks = 1;
        task_params;
      }
  in
  let recording = recording_of_task task_params Ssd.default_params in
  Report.note "serial (Table III, 1 thread): makespan %s, CPU idle %s, IO idle %s"
    (Report.ms serial.Coroutine.Scheduler.makespan)
    (Report.pct serial.Coroutine.Scheduler.cpu_idleness)
    (Report.pct serial.Coroutine.Scheduler.io_idleness);
  Report.note "recorded serial token sum: %s over %d read blocks"
    (Report.ms (Pipeline.serial_ns recording))
    (total_work / Exec_model.Task.default.Exec_model.Task.read_block);
  let results =
    List.map (fun cores -> (cores, Pipeline.simulate ~plant (sim_config ~cores) recording)) core_points
  in
  Report.table
    ~header:
      [ "cores"; "makespan"; "speedup"; "cpu idle*"; "io idle"; "q wait"; "races" ]
    (List.map
       (fun (cores, res) ->
         [
           string_of_int cores;
           Report.ms res.Pipeline.makespan;
           Report.ratio (serial.Coroutine.Scheduler.makespan /. res.Pipeline.makespan);
           Report.pct (bottleneck_idle res);
           Report.pct res.Pipeline.sched.Coroutine.Scheduler.io_idleness;
           Report.ms res.Pipeline.queue_wait_total_ns;
           string_of_int res.Pipeline.races;
         ])
       results);
  Report.note "cpu idle* = bottleneck-core idleness (stages are single-core)";
  let res4 = List.assoc 4 results in
  Report.table
    ~header:[ "stage"; "busy"; "wait"; "items"; "busy/makespan" ]
    (List.map
       (fun s ->
         [
           Pipeline.stage_name s.Pipeline.s_stage;
           Report.ms s.Pipeline.busy_ns;
           Report.ms s.Pipeline.wait_ns;
           string_of_int s.Pipeline.items;
           Report.pct (s.Pipeline.busy_ns /. res4.Pipeline.makespan);
         ])
       res4.Pipeline.stages);
  List.iter
    (fun (q, d) -> Report.note "queue %s high-water depth: %d" q d)
    res4.Pipeline.queue_max_depths;
  let speedup_at cores =
    let res = List.assoc cores results in
    serial.Coroutine.Scheduler.makespan /. res.Pipeline.makespan
  in
  Report.record_metric "pipeline.serial_makespan_ns"
    serial.Coroutine.Scheduler.makespan;
  Report.record_metric "pipeline.serial_cpu_idle"
    serial.Coroutine.Scheduler.cpu_idleness;
  Report.record_metric "pipeline.serial_io_idle"
    serial.Coroutine.Scheduler.io_idleness;
  List.iter
    (fun (cores, res) ->
      Report.record_metric
        (Printf.sprintf "pipeline.speedup%d" cores)
        (speedup_at cores);
      Report.record_metric
        (Printf.sprintf "pipeline.makespan%d_ns" cores)
        res.Pipeline.makespan)
    results;
  Report.record_metric "pipeline.cpu_idle4" (bottleneck_idle res4);
  Report.record_metric "pipeline.io_idle4"
    res4.Pipeline.sched.Coroutine.Scheduler.io_idleness;
  Report.record_metric "pipeline.queue_wait4_ns" res4.Pipeline.queue_wait_total_ns;
  Report.record_metric "pipeline.races4" (float_of_int res4.Pipeline.races);
  Report.record_metric "pipeline.lost_wakeups4"
    (float_of_int res4.Pipeline.lost_wakeups);
  (* machine-greppable line for scripts/check_pipeline.sh *)
  Printf.printf
    "PIPELINE speedup4=%.3f makespan4_ns=%.0f serial_ns=%.0f cpu_idle4=%.4f \
     io_idle4=%.4f serial_cpu_idle=%.4f serial_io_idle=%.4f read_busy=%.0f \
     merge_busy=%.0f build_busy=%.0f write_busy=%.0f races=%d lost_wakeups=%d\n"
    (speedup_at 4) res4.Pipeline.makespan serial.Coroutine.Scheduler.makespan
    (bottleneck_idle res4) res4.Pipeline.sched.Coroutine.Scheduler.io_idleness
    serial.Coroutine.Scheduler.cpu_idleness
    serial.Coroutine.Scheduler.io_idleness
    (stage_busy res4 Pipeline.Read)
    (stage_busy res4 Pipeline.Merge)
    (stage_busy res4 Pipeline.Build)
    (stage_busy res4 Pipeline.Write)
    res4.Pipeline.races res4.Pipeline.lost_wakeups

(* Read-path acceleration benchmark (BENCH_readpath).

   Three phases over a dataset larger than the PM level-0 budget, so a
   meaningful share of the keyspace lives in the SSD levels:

   - zipf:     YCSB-C style Zipfian point gets, run twice on identically
               loaded engines — block cache off vs on — comparing p50/p99
               get latency, simulated SSD block reads per get, and the
               cache hit ratio.
   - negative: uniform lookups of keys that were never written (each sorts
               just after an existing key, so min/max screens cannot answer
               them); measures how many complete without a single PM group
               read or SSD block read, and the PM-table bloom filter rate.
   - scan:     short Zipfian-start range scans, cache off vs on.

     dune exec bench/main.exe -- readpath --json BENCH_readpath.json *)

let value_bytes = 512
let keyspace = 20_000 (* ~10 MB of values, > the 6 MB PM budget *)
let zipf_ops = 30_000
let negative_ops = 10_000
let scan_ops = 1_000
let scan_len = 10
let cache_mb = 16

let pm_budget = 6 * 1024 * 1024
let tau_m = 5 * 1024 * 1024
let tau_t = 3 * 1024 * 1024

let config ~cache_mb =
  let cfg = Core.Config.pmblade in
  {
    cfg with
    Core.Config.l0_capacity = pm_budget;
    pm_params = { Pmem.default_params with capacity = pm_budget + (4 * 1024 * 1024) };
    l0_strategy =
      (match cfg.Core.Config.l0_strategy with
      | Core.Config.Cost_based p ->
          Core.Config.Cost_based { p with Compaction.Cost_model.tau_m; tau_t }
      | s -> s);
    block_cache_mb = cache_mb;
  }

(* Deterministic load shared by the off/on engines: every rank written once,
   then the level-0 stack merged into the sorted runs. The dataset exceeds
   the PM budget, so the load's own major compactions leave the cold
   partitions on SSD while the warm sorted runs stay in PM — both the SSD
   block cache and the PM-table blooms have something to do. *)
let load cfg =
  Report.note_config cfg;
  let eng = Core.Engine.create cfg in
  let rng = Util.Xoshiro.create 71 in
  for rank = 0 to keyspace - 1 do
    Core.Engine.put eng ~key:(Util.Keys.ycsb_key rank) (Util.Xoshiro.string rng value_bytes)
  done;
  Core.Engine.flush eng;
  Core.Engine.force_internal_compaction eng;
  eng

let zipf_ranks () =
  let rng = Util.Xoshiro.create 97 in
  let zipf = Util.Zipf.create ~theta:0.99 ~n:keyspace rng in
  Array.init zipf_ops (fun _ -> Util.Zipf.next_scrambled zipf)

(* One Zipfian get phase; returns (p50_ns, p99_ns, ssd_reads, cache_hit_ratio). *)
let run_gets eng ranks =
  let clock = Core.Engine.clock eng in
  let ssd_stats = Ssd.stats (Core.Engine.ssd eng) in
  let h = Util.Histogram.create () in
  let ssd0 = ssd_stats.Ssd.reads in
  Array.iter
    (fun rank ->
      let t0 = Sim.Clock.now clock in
      ignore (Core.Engine.get eng (Util.Keys.ycsb_key rank));
      Util.Histogram.record h (Sim.Clock.now clock -. t0))
    ranks;
  let hit_ratio =
    match Core.Engine.block_cache eng with
    | Some c -> Cache.Block_cache.hit_ratio c
    | None -> 0.0
  in
  (Util.Histogram.percentile h 50.0, Util.Histogram.percentile h 99.0,
   ssd_stats.Ssd.reads - ssd0, hit_ratio)

(* Uniform lookups of absent keys on [eng]; returns
   (device_free_fraction, bloom_filter_rate). *)
let run_negatives eng =
  let rng = Util.Xoshiro.create 131 in
  let pm_stats = Pmem.stats (Core.Engine.pm eng) in
  let ssd_stats = Ssd.stats (Core.Engine.ssd eng) in
  let probes0 = !Pmtable.Pm_table.bloom_probes in
  let negs0 = !Pmtable.Pm_table.bloom_negatives in
  let device_free = ref 0 in
  for _ = 1 to negative_ops do
    let key = Util.Keys.ycsb_key (Util.Xoshiro.int rng keyspace) ^ "x" in
    let pr = pm_stats.Pmem.reads and sr = ssd_stats.Ssd.reads in
    (match Core.Engine.get eng key with
    | Some _ -> failwith "readpath: negative key unexpectedly present"
    | None -> ());
    if pm_stats.Pmem.reads = pr && ssd_stats.Ssd.reads = sr then incr device_free
  done;
  let probes = !Pmtable.Pm_table.bloom_probes - probes0 in
  let negs = !Pmtable.Pm_table.bloom_negatives - negs0 in
  ( float_of_int !device_free /. float_of_int negative_ops,
    if probes = 0 then 0.0 else float_of_int negs /. float_of_int probes )

(* Short scans from Zipfian start ranks; returns (p50_ns, p99_ns). *)
let run_scans eng =
  let rng = Util.Xoshiro.create 173 in
  let zipf = Util.Zipf.create ~theta:0.99 ~n:keyspace rng in
  let clock = Core.Engine.clock eng in
  let h = Util.Histogram.create () in
  for _ = 1 to scan_ops do
    let start = Util.Keys.ycsb_key (Util.Zipf.next_scrambled zipf) in
    let t0 = Sim.Clock.now clock in
    ignore (Core.Engine.scan eng ~start ~limit:scan_len);
    Util.Histogram.record h (Sim.Clock.now clock -. t0)
  done;
  (Util.Histogram.percentile h 50.0, Util.Histogram.percentile h 99.0)

let run () =
  Report.heading "Read path: block cache + PM blooms + fence pruning";
  let ranks = zipf_ranks () in
  let off = load (config ~cache_mb:0) in
  let on = load (config ~cache_mb) in

  let off_p50, off_p99, off_ssd, _ = run_gets off ranks in
  let on_p50, on_p99, on_ssd, hit_ratio = run_gets on ranks in
  let per_get reads = float_of_int reads /. float_of_int zipf_ops in
  Report.table
    ~header:[ "phase"; "cache"; "p50 get"; "p99 get"; "SSD reads/get"; "cache hits" ]
    [
      [ "zipf"; "off"; Report.us off_p50; Report.us off_p99;
        Printf.sprintf "%.3f" (per_get off_ssd); "-" ];
      [ "zipf"; "on"; Report.us on_p50; Report.us on_p99;
        Printf.sprintf "%.3f" (per_get on_ssd); Report.pct hit_ratio ];
    ];
  let reduction =
    if off_ssd = 0 then 0.0
    else 1.0 -. (float_of_int on_ssd /. float_of_int off_ssd)
  in
  Report.note "zipf gets: %d SSD block reads cache-off vs %d cache-on (%.0f%% fewer)"
    off_ssd on_ssd (reduction *. 100.0);

  let device_free, filter_rate = run_negatives on in
  Report.table
    ~header:[ "phase"; "device-free"; "bloom filter rate" ]
    [ [ "negative"; Report.pct device_free; Report.pct filter_rate ] ];
  Report.note "negative lookups answered from DRAM alone: %.1f%% (PM blooms screen %.1f%%)"
    (device_free *. 100.0) (filter_rate *. 100.0);

  let soff_p50, soff_p99 = run_scans off in
  let son_p50, son_p99 = run_scans on in
  Report.table
    ~header:[ "phase"; "cache"; "p50 scan"; "p99 scan" ]
    [
      [ "scan"; "off"; Report.us soff_p50; Report.us soff_p99 ];
      [ "scan"; "on"; Report.us son_p50; Report.us son_p99 ];
    ];

  (* Machine-greppable summary for scripts/check_readpath.sh. *)
  Report.note
    "READPATH ssd_read_reduction=%.3f cache_hit_ratio=%.3f bloom_filter_rate=%.3f \
     device_free_negatives=%.3f"
    reduction hit_ratio filter_rate device_free

(* Sharding benchmark (BENCH_shard): multi-client YCSB-A/B through the
   range-sharded front door at 1/2/4/8 shards, group commit on.

   Eight client coroutines drive the router under one cooperative
   scheduler; every shard runs with the WAL durability point in the group
   committer and background work (flush + admission-driven compaction
   relief) on the shard's modelled worker. The headline claim is the
   sharding one: level-0 flush and compaction serialise behind a single
   worker on one shard but overlap N ways on N, so aggregate put
   throughput at 4 shards must clear 1.5x the single-shard run — that
   ratio, the group-commit mean batch size, and the tail latencies are
   the perf-gate metrics against the committed BENCH_shard.json.

     dune exec bench/main.exe -- shard --json BENCH_shard.json

   One machine-greppable summary line for CI (scripts/check_shard.sh):

     SHARD speedup4=S mean_batch4=M stalled=K completed=N

   PMB_PLANT=no_batch forces every commit to sync alone (window and max
   batch collapse to nothing) while stamping the nominal fingerprint: the
   planted regression must trip the gate and the mean-batch check. *)

let records = 12_000
let ops = 10_000
let clients = 8
let value_bytes = 400

let planted () =
  match Sys.getenv_opt "PMB_PLANT" with Some "no_batch" -> true | _ -> false

(* Small memtables and a compaction strategy that never self-triggers:
   all background work flows through the router's per-shard worker
   (pre-emptive flush, admission-driven relief), which is exactly the
   work sharding parallelises. *)
let config shards =
  {
    Core.Config.pmblade with
    Core.Config.name = Printf.sprintf "shard-s%d" shards;
    memtable_bytes = 16 * 1024;
    l0_run_table_bytes = 32 * 1024;
    l0_strategy = Core.Config.Conventional { max_tables = None; max_bytes = None };
    block_cache_mb = 8;
    durable = true;
    shard_count = shards;
    group_commit_window_ns = 30_000.0;
    group_commit_max = 16;
    admission_soft_tables = 24;
    admission_hard_tables = 48;
  }

type run = {
  shards : int;
  throughput : float;  (* all ops per simulated second *)
  put_throughput : float;
  p99_ns : float;
  p999_ns : float;
  mean_batch : float;
  stalls : int;
  stalled_at_end : bool;  (* a shard still over the hard limit after the run *)
}

let run_one workload shards =
  let cfg = config shards in
  Report.note_config cfg;
  let cfg =
    if planted () then
      { cfg with Core.Config.group_commit_window_ns = 0.0; group_commit_max = 1 }
    else cfg
  in
  let boundaries = Shard.Router.ycsb_boundaries ~records ~shards in
  let router = Shard.Router.create ~boundaries cfg in
  let y = Workload.Ycsb.create ~value_bytes () in
  let sink = Shard.Router.sink router in
  Workload.Ycsb.load_sink y sink ~records;
  Shard.Router.flush router;
  let clock = Shard.Router.clock router in
  let des = Sim.Des.create clock in
  let sched =
    Coroutine.Scheduler.create ~cores:1
      ~policy:(Coroutine.Scheduler.Cooperative { switch_cost = 0.0 })
      des (Shard.Router.ssd router)
  in
  (* Only the measured phase batches: the load above ran in [Sync] mode,
     so batch statistics are deltas from here. *)
  let batches0 = Shard.Router.gc_batches router in
  let synced0 = Shard.Router.gc_synced_entries router in
  let op_lat = Util.Histogram.create () in
  Shard.Router.enable_group_commit router sched;
  let t_start = Sim.Clock.now clock in
  let per_client = ops / clients in
  for c = 0 to clients - 1 do
    Coroutine.Scheduler.spawn ~name:(Printf.sprintf "client-%d" c) sched 0 (fun () ->
        for _ = 1 to per_client do
          let t0 = Sim.Clock.now clock in
          Workload.Ycsb.step_sink y sink workload;
          Util.Histogram.record op_lat (Sim.Clock.now clock -. t0);
          Coroutine.Co.yield ()
        done)
  done;
  ignore (Coroutine.Scheduler.run_to_completion sched);
  Shard.Router.disable_group_commit router;
  let elapsed = Sim.Clock.now clock -. t_start in
  let run_ops = per_client * clients in
  let batches = Shard.Router.gc_batches router - batches0 in
  let synced = Shard.Router.gc_synced_entries router - synced0 in
  let seconds = Sim.Clock.to_s elapsed in
  let throughput = if seconds > 0.0 then float_of_int run_ops /. seconds else 0.0 in
  let put_throughput =
    if seconds > 0.0 then float_of_int synced /. seconds else 0.0
  in
  let stalled_at_end =
    Array.exists
      (fun e ->
        Core.Engine.compaction_debt_tables e >= cfg.Core.Config.admission_hard_tables)
      (Shard.Router.engines router)
  in
  let r =
    {
      shards;
      throughput;
      put_throughput;
      p99_ns = Util.Histogram.percentile op_lat 99.0;
      p999_ns = Util.Histogram.percentile op_lat 99.9;
      mean_batch =
        (if batches > 0 then float_of_int synced /. float_of_int batches else 0.0);
      stalls = Shard.Router.stall_count router;
      stalled_at_end;
    }
  in
  Shard.Router.close router;
  r

let metric name v =
  Report.record_metric name v;
  Printf.printf "  SHARDM %s %.6g\n" name v

let run_workload wname workload counts =
  Report.heading
    (Printf.sprintf "Shard: %d-client YCSB-%s over range shards" clients wname);
  let runs = List.map (run_one workload) counts in
  Report.table
    ~header:
      [ "shards"; "ops/s"; "puts/s"; "p99"; "p99.9"; "mean batch"; "stalls" ]
    (List.map
       (fun r ->
         [
           string_of_int r.shards;
           Printf.sprintf "%.0f" r.throughput;
           Printf.sprintf "%.0f" r.put_throughput;
           Report.duration r.p99_ns;
           Report.duration r.p999_ns;
           Printf.sprintf "%.2f" r.mean_batch;
           string_of_int r.stalls;
         ])
       runs);
  let tag = "shard.ycsb_" ^ String.lowercase_ascii wname in
  List.iter
    (fun r ->
      let m name = Printf.sprintf "%s.s%d.%s" tag r.shards name in
      metric (m "throughput_ops") r.throughput;
      metric (m "put_throughput_ops") r.put_throughput;
      metric (m "p99_ns") r.p99_ns;
      metric (m "p999_ns") r.p999_ns;
      metric (m "mean_batch") r.mean_batch)
    runs;
  runs

let run () =
  let a_runs = run_workload "A" Workload.Ycsb.A [ 1; 2; 4; 8 ] in
  let b_runs = run_workload "B" Workload.Ycsb.B [ 1; 4 ] in
  let find rs n = List.find (fun r -> r.shards = n) rs in
  let a1 = find a_runs 1 and a4 = find a_runs 4 in
  let speedup =
    if a1.put_throughput > 0.0 then a4.put_throughput /. a1.put_throughput else 0.0
  in
  metric "shard.ycsb_a.speedup_4v1" speedup;
  metric "shard.gc.mean_batch_4" a4.mean_batch;
  Report.note "put-throughput speedup at 4 shards: %s over 1 shard"
    (Report.ratio speedup);
  let stalled =
    List.exists (fun r -> r.stalled_at_end) (a_runs @ b_runs)
  in
  let completed = List.length a_runs + List.length b_runs in
  Printf.printf "  SHARD speedup4=%.3f mean_batch4=%.3f stalled=%d completed=%d\n"
    speedup a4.mean_batch
    (if stalled then 1 else 0)
    completed;
  if planted () then Report.note "PLANTED regression active: group commit disabled"

(* Chaos soak benchmark (BENCH_soak): the availability layer under fire.

   One seeded [Shard.Soak] run interleaves calm traffic with fail-slow
   devices (PM flush, SSD read, stuck fsync confined to one sick shard's
   file range), duty-cycled I/O error storms, crash-restart cycles
   (including a crash during recovery), and injected bit rot — all
   through the health-aware router API with deadline budgets on. The
   headline claims are the gray-failure ones: ops routed to *healthy*
   shards keep completing in budget while a sibling's device range is
   sick, the overall deadline-ok ratio stays high because breakers
   convert unbounded waits into fast typed refusals, and the whole run
   ends with zero golden/manifest/sanitizer violations.

     dune exec bench/main.exe -- soak --json BENCH_soak.json

   One machine-greppable summary line for CI (scripts/check_soak.sh):

     SOAK ops=N deadline_ok=D healthy=H sick_within=S violations=V ...

   A second short leg reruns the same gray-fault soak with breakers
   disabled to document the collapse the health layer prevents (metric
   only, not gated). PMB_PLANT=no_breaker instead disables breakers on
   the *main* leg while stamping the nominal fingerprint: the planted
   outage must trip the availability gate. *)

let planted () =
  match Sys.getenv_opt "PMB_PLANT" with Some "no_breaker" -> true | _ -> false

let rounds = 18
let ops_per_round = 600

(* Small memtables so flush/compaction traffic is dense enough for the
   fault episodes to bite; deadline budgets sized so healthy ops pass
   with wide margin while a 25x fail-slow device blows them. *)
let config ~breakers name =
  {
    Core.Config.pmblade with
    Core.Config.name;
    memtable_bytes = 32 * 1024;
    l0_run_table_bytes = 32 * 1024;
    (* scaled-down cost-model thresholds (major compaction at 48 KB of
       level-0, 16 KB preserved warm set) push the working set onto the
       SSD, so fail-slow reads, error storms and bit rot face the sick
       device instead of being absorbed by PM; no block cache for the
       same reason *)
    l0_strategy =
      Core.Config.Cost_based
        {
          Compaction.Cost_model.default with
          tau_w = 8 * 1024;
          tau_m = 48 * 1024;
          tau_t = 16 * 1024;
        };
    l0_capacity = 64 * 1024;
    block_cache_mb = 0;
    durable = true;
    shard_count = 4;
    admission_soft_tables = 24;
    admission_hard_tables = 48;
    deadline_read_ns = 300_000.0;
    deadline_write_ns = 2_000_000.0;
    breaker_enabled = breakers;
  }

let metric name v =
  Report.record_metric name v;
  Printf.printf "  SOAKM %s %.6g\n" name v

let run_leg ~breakers name =
  let cfg = config ~breakers name in
  let scfg = Shard.Soak.config ~seed:42 ~rounds ~ops_per_round ~keyspace:6000 cfg in
  Shard.Soak.run scfg

let run () =
  Report.heading
    "Chaos soak: gray faults, crashes and corruption under deadline serving";
  let cfg = config ~breakers:(not (planted ())) "soak" in
  Report.note_config cfg;
  let r = run_leg ~breakers:(not (planted ())) "soak" in
  let l = r.Shard.Soak.ledger in
  Report.table
    ~header:[ "outcome"; "count" ]
    [
      [ "ok"; string_of_int (Health.Ledger.ok l) ];
      [ "degraded"; string_of_int (Health.Ledger.degraded l) ];
      [ "shed"; string_of_int (Health.Ledger.shed l) ];
      [ "unavailable"; string_of_int (Health.Ledger.unavailable l) ];
      [ "failed"; string_of_int (Health.Ledger.failed l) ];
      [ "deadline_miss"; string_of_int (Health.Ledger.deadline_miss l) ];
    ];
  Report.note "episodes: %s"
    (String.concat " "
       (List.map
          (fun (n, c) -> Printf.sprintf "%s:%d" n c)
          r.Shard.Soak.episode_counts));
  let deadline_ok = Shard.Soak.deadline_ok_ratio r in
  let healthy = Shard.Soak.healthy_ratio r in
  let sick_within = Shard.Soak.sick_within_ratio r in
  let mean_ttr_ms = Shard.Soak.mean_recovery_ns r /. 1e6 in
  metric "soak.ops" (float_of_int r.Shard.Soak.soak_ops);
  metric "soak.deadline_ok_ratio" deadline_ok;
  metric "soak.healthy_ratio" healthy;
  metric "soak.sick_within_ratio" sick_within;
  metric "soak.violations" (float_of_int (List.length r.Shard.Soak.violations));
  metric "soak.breaker_trips" (float_of_int r.Shard.Soak.trips);
  metric "soak.breaker_rejections" (float_of_int r.Shard.Soak.rejections);
  metric "soak.shed" (float_of_int (Health.Ledger.shed l));
  metric "soak.degraded" (float_of_int (Health.Ledger.degraded l));
  metric "soak.unavailable" (float_of_int (Health.Ledger.unavailable l));
  metric "soak.deadline_miss" (float_of_int (Health.Ledger.deadline_miss l));
  metric "soak.injected" (float_of_int r.Shard.Soak.injected);
  metric "soak.crashes" (float_of_int r.Shard.Soak.crashes);
  metric "soak.double_crashes" (float_of_int r.Shard.Soak.double_crashes);
  metric "soak.mean_ttr_ms" mean_ttr_ms;
  List.iter
    (fun v -> Report.note "violation: %s" (Fmt.str "%a" Fault.Checker.pp_violation v))
    r.Shard.Soak.violations;
  (* The counterfactual: identical soak, breakers off. Documents the
     collapse the health layer prevents; gated only through the main
     leg's numbers (which PMB_PLANT=no_breaker turns into this). *)
  if not (planted ()) then begin
    let r0 = run_leg ~breakers:false "soak-no-breaker" in
    metric "soak.no_breaker.deadline_ok_ratio" (Shard.Soak.deadline_ok_ratio r0);
    metric "soak.no_breaker.healthy_ratio" (Shard.Soak.healthy_ratio r0);
    Report.note "without breakers the deadline-ok ratio falls to %.4f"
      (Shard.Soak.deadline_ok_ratio r0)
  end
  else Report.note "PLANTED outage active: breakers disabled on the main leg";
  Printf.printf
    "  SOAK ops=%d deadline_ok=%.4f healthy=%.4f sick_within=%.4f \
     violations=%d trips=%d shed=%d degraded=%d unavailable=%d miss=%d \
     crashes=%d double=%d mean_ttr_ms=%.3f\n"
    r.Shard.Soak.soak_ops deadline_ok healthy sick_within
    (List.length r.Shard.Soak.violations)
    r.Shard.Soak.trips (Health.Ledger.shed l) (Health.Ledger.degraded l)
    (Health.Ledger.unavailable l)
    (Health.Ledger.deadline_miss l)
    r.Shard.Soak.crashes r.Shard.Soak.double_crashes mean_ttr_ms

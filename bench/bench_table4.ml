(* Table IV — PM space released by internal compaction under varying data
   skew. Update-only workload writes 20 MB (the paper's 20 GB, scaled) of
   1 KB values over a keyspace of half that footprint; the more skewed the
   updates, the more shadowed versions the unsorted PM tables hold and the
   more space one internal compaction reclaims. *)

let written_bytes = 20 * 1024 * 1024
let value_bytes = 1024
let keyspace = written_bytes / (2 * (value_bytes + 32))

(* An engine that never compacts on its own, so we control the moment. *)
let passive_config () =
  {
    Core.Config.pmblade with
    Core.Config.name = "passive";
    l0_strategy = Core.Config.Conventional { max_tables = None; max_bytes = None };
    pm_params = { Pmem.default_params with capacity = 96 * 1024 * 1024 };
  }

let run () =
  Report.heading "Table IV: space released by internal compaction vs skew";
  let skews = [ 0.0; 0.2; 0.4; 0.6; 0.8; 0.99 ] in
  let rows =
    List.map
      (fun theta ->
        Report.note_config (passive_config ());
        let eng = Core.Engine.create (passive_config ()) in
        let rng = Util.Xoshiro.create 61 in
        let zipf = Util.Zipf.create ~theta ~n:keyspace rng in
        let writes = written_bytes / (value_bytes + 32) in
        for _ = 1 to writes do
          let key = Util.Keys.ycsb_key (Util.Zipf.next_scrambled zipf) in
          Core.Engine.put ~update:true eng ~key (Util.Xoshiro.string rng value_bytes)
        done;
        Core.Engine.flush eng;
        let before = Pmem.used (Core.Engine.pm eng) in
        Core.Engine.force_internal_compaction eng;
        let after = Pmem.used (Core.Engine.pm eng) in
        [
          Printf.sprintf "%.1f" theta;
          Report.mb (before - after);
          Report.pct (float_of_int (before - after) /. float_of_int before);
        ])
      skews
  in
  Report.table ~header:[ "data skew"; "space released"; "share of used PM" ] rows;
  Report.note "paper: 11.6 GB released at skew 0 rising to 16.2 GB (~80%%) at";
  Report.note "skew 1.0 of a 20 GB update-only load (here x1000 scaled)."

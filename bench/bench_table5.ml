(* Table V — duration of an internal (PM) compaction vs an SSD-based
   compaction of the same data, by value size. 1 MB of data (the paper's
   1 GB, scaled), compaction triggered manually. PM's bandwidth advantage
   should make the internal compaction roughly 2x faster, with the gap
   narrowing a little as values grow (per-entry costs amortise). *)

let data_bytes = 4 * 1024 * 1024

let passive cfg =
  { cfg with Core.Config.l0_strategy = Core.Config.Conventional { max_tables = None; max_bytes = None } }

let insert_data eng ~value_bytes =
  let rng = Util.Xoshiro.create 19 in
  let n = data_bytes / (value_bytes + 32) in
  for i = 0 to max 0 (n - 1) do
    (* updates over a half-size keyspace so compaction has redundancy *)
    let row = if i < n / 2 then i else Util.Xoshiro.int rng (max 1 (n / 2)) in
    Core.Engine.put ~update:(i >= n / 2) eng
      ~key:(Util.Keys.record_key ~table_id:1 ~row_id:row)
      (Util.Xoshiro.string rng value_bytes)
  done;
  Core.Engine.flush eng

let run () =
  Report.heading "Table V: compaction duration, internal (PM) vs SSD";
  let sizes = [ 512; 1024; 4096; 16384; 65536 ] in
  let rows =
    List.map
      (fun value_bytes ->
        (* internal compaction on PM *)
        Report.note_config (passive Core.Config.pmblade);
        let eng_pm = Core.Engine.create (passive Core.Config.pmblade) in
        insert_data eng_pm ~value_bytes;
        let clock = Core.Engine.clock eng_pm in
        let t0 = Sim.Clock.now clock in
        Core.Engine.force_internal_compaction eng_pm;
        let internal = Sim.Clock.now clock -. t0 in
        (* conventional compaction on SSD *)
        Report.note_config (passive Core.Config.pmblade_ssd);
        let eng_ssd = Core.Engine.create (passive Core.Config.pmblade_ssd) in
        insert_data eng_ssd ~value_bytes;
        let clock = Core.Engine.clock eng_ssd in
        let t0 = Sim.Clock.now clock in
        Core.Engine.force_major_compaction eng_ssd;
        let ssd = Sim.Clock.now clock -. t0 in
        [
          (if value_bytes >= 1024 then Printf.sprintf "%dKB" (value_bytes / 1024)
           else Printf.sprintf "%dB" value_bytes);
          Report.duration internal;
          Report.duration ssd;
          Report.ratio (ssd /. internal);
        ])
      sizes
  in
  Report.table ~header:[ "value size"; "PMBlade (internal)"; "PMBlade-SSD"; "SSD/PM" ] rows;
  Report.note "paper: internal 2.1s->1.4s vs SSD 4s->2.8s over 1 GB, i.e. the";
  Report.note "PM-internal compaction is ~2x faster at every value size."

(* Benchmark harness: one experiment per table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus design-choice
   ablations and wall-clock micro-benchmarks.

     dune exec bench/main.exe                       # run everything
     dune exec bench/main.exe -- fig9               # one experiment
     dune exec bench/main.exe -- --list             # list experiment ids
     dune exec bench/main.exe -- fig8 --json r.json # also dump tables as JSON *)

let experiments =
  [
    ("table1", "Table I: query latency PM vs cache vs SSD", Bench_table1.run);
    ("fig2a", "Fig 2a: flush time breakdown on PM", Bench_fig2a.run);
    ("table3", "Table III: multi-thread compaction utilization", Bench_table3.run);
    ("fig4", "Fig 4: compaction process timelines (rendered)", Bench_fig4.run);
    ("fig6a", "Fig 6a+6b: PM-table structures (build + read)", Bench_fig6.run);
    ("table4", "Table IV: space released by internal compaction", Bench_table4.run);
    ("table5", "Table V: internal vs SSD compaction duration", Bench_table5.run);
    ("fig7", "Fig 7a+7b: read latency under internal compaction", fun () ->
        Bench_fig7.fig7a (); Bench_fig7.fig7b ());
    ("fig8", "Fig 8a+8b: write amplification + PM hit ratio", fun () ->
        Bench_fig8.fig8a (); Bench_fig8.fig8b ());
    ("fig9", "Fig 9a-9d: coroutine-based compaction", Bench_fig9.run);
    ("fig10", "Fig 10: ablation on the retail workload", Bench_fig10.run);
    ("fig11", "Fig 11: four systems on the retail workload", Bench_fig11.run);
    ("fig12", "Fig 12: YCSB normalized throughput", Bench_fig12.run);
    ("readpath", "Read path: block cache, PM blooms, fence pruning", Bench_readpath.run);
    ("attr", "Per-op latency attribution + perf-gate baseline", Bench_attr.run);
    ("pipeline", "Pipelined compaction: staged overlap vs Table III serial", Bench_pipeline.run);
    ("shard", "Range-sharded front door: multi-client YCSB over 1-8 shards", Bench_shard.run);
    ("soak", "Chaos soak: gray faults, crashes, corruption, availability gate", Bench_soak.run);
    ("ablate", "Extra ablations: group size, cost models, warm set", Bench_ablate.run);
    ("micro", "Bechamel wall-clock micro-benchmarks", Bench_micro.run);
  ]

let list_ids () =
  List.iter (fun (id, descr, _) -> Printf.printf "%-8s %s\n" id descr) experiments

let run_ids ids =
  let selected =
    match ids with
    | [] -> experiments
    | ids ->
        List.map
          (fun id ->
            match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" id;
                exit 1)
          ids
  in
  List.iter
    (fun (id, _, run) ->
      let t0 = Unix.gettimeofday () in
      run ();
      Printf.printf "  [%s finished in %.1fs wall time]\n%!" id (Unix.gettimeofday () -. t0))
    selected

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_json acc = function
    | "--json" :: path :: rest ->
        Report.set_json_path path;
        split_json acc rest
    | [ "--json" ] ->
        Printf.eprintf "--json requires a FILE argument\n";
        exit 1
    | arg :: rest -> split_json (arg :: acc) rest
    | [] -> List.rev acc
  in
  match split_json [] args with
  | [ "--list" ] -> list_ids ()
  | ids ->
      run_ids ids;
      Report.write_json ()

(* Table rendering for the benchmark harness: every experiment prints the
   rows of its paper artefact plus a short "paper vs measured" shape
   note. *)

(* Optional machine-readable mirror of everything printed: when a JSON path
   is set (bench/main.exe --json FILE), headings, notes and tables are also
   recorded and dumped as one JSON document at exit. *)
type recorded_table = {
  title : string;
  header : string list;
  rows : string list list;
  mutable notes : string list;  (* reversed; notes follow their table *)
}

(* Bump when the JSON document shape changes; the perf gate refuses to
   compare documents of different schema versions. *)
let schema_version = 2

let json_path : string option ref = ref None
let current_heading = ref ""
let recorded : recorded_table list ref = ref []
let configs : (string * string) list ref = ref []
let metrics : (string * float) list ref = ref []

let set_json_path path = json_path := Some path

let record_table ~header rows =
  if !json_path <> None then
    recorded := { title = !current_heading; header; rows; notes = [] } :: !recorded

let record_note s =
  match !recorded with
  | t :: _ when !json_path <> None -> t.notes <- s :: t.notes
  | _ -> ()

(* Stamp the engine configuration an experiment ran under. The JSON
   document carries the name -> fingerprint map so a comparison tool can
   tell config drift apart from a genuine perf change. *)
let note_config (cfg : Core.Config.t) =
  let entry = (cfg.Core.Config.name, Core.Config.fingerprint cfg) in
  if not (List.mem entry !configs) then configs := entry :: !configs

(* A scalar metric for the perf gate: one named number per line of the
   "metrics" JSON object. Last write wins so an experiment can refine. *)
let record_metric name v =
  metrics := (name, v) :: List.remove_assoc name !metrics

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
      let open Obs.Json in
      let strings l = List (List.map (fun s -> String s) l) in
      let tables =
        List.rev_map
          (fun t ->
            Obj
              [
                ("title", String t.title);
                ("header", strings t.header);
                ("rows", List (List.map strings t.rows));
                ("notes", strings (List.rev t.notes));
              ])
          !recorded
      in
      let config_fields =
        List.rev_map (fun (name, fp) -> (name, String fp)) !configs
      in
      let metric_fields =
        List.rev_map (fun (name, v) -> (name, Float v)) !metrics
      in
      let oc = open_out path in
      output_string oc
        (to_string
           (Obj
              [
                ("schema_version", Int schema_version);
                ("configs", Obj config_fields);
                ("metrics", Obj metric_fields);
                ("tables", List tables);
              ]));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nbenchmark tables written to %s\n" path

let heading title =
  current_heading := title;
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let note fmt =
  Printf.ksprintf
    (fun s ->
      record_note s;
      Printf.printf "  %s\n" s)
    fmt

(* Print a table given a header and string rows; column widths auto-fit. *)
let table ~header rows =
  record_table ~header rows;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  List.iteri
    (fun c _ -> Printf.printf "%s  " (String.make (List.nth widths c) '-'))
    header;
  print_newline ();
  List.iter print_row rows

let us ns = Printf.sprintf "%.1f us" (ns /. 1e3)
let ms ns = Printf.sprintf "%.2f ms" (ns /. 1e6)
let s ns = Printf.sprintf "%.3f s" (ns /. 1e9)
let pct x = Printf.sprintf "%.1f%%" (x *. 100.0)
let mb bytes = Printf.sprintf "%.1f MB" (float_of_int bytes /. 1048576.0)
let ratio x = Printf.sprintf "%.2fx" x

let duration ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then us ns
  else if ns < 1e9 then ms ns
  else s ns

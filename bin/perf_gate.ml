(* The perf gate CLI: compare a committed bench JSON baseline against a
   fresh run of the same experiment (see scripts/check_perf.sh).

     dune exec bin/perf_gate.exe -- BASELINE.json CURRENT.json

   Exit 0 when every baseline metric is within its tolerance on the bad
   side and the headers (schema version, config fingerprints) agree;
   exit 1 otherwise, with a per-metric table either way. Tolerances are
   per-metric-family: the simulation is deterministic, so they only exist
   to absorb intentional drift without churning the committed file. *)

let rules =
  [
    (* Attribution coverage is exact by construction; any drop is a bug in
       the accounting, not noise. *)
    Obs.Perf.rule "attr.coverage" ~tol:0.01 ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "attr.ycsb_a.throughput_ops" ~tol:0.05
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "cache.hit_ratio" ~tol:0.05 ~direction:Obs.Perf.Higher_is_better;
    (* Tail latency wobbles more than averages under intentional drift. *)
    Obs.Perf.rule "attr.ycsb_a.read_p999_ns" ~tol:0.10;
    (* Stall time and compaction debt are bulk counters; give them room. *)
    Obs.Perf.rule "engine.write_stall_ns" ~tol:0.15;
    Obs.Perf.rule "engine.debt_bytes" ~tol:0.15;
    (* Sharding bench (BENCH_shard.json): the headline scaling ratio and
       group-commit efficiency must not regress; per-point throughputs
       get the usual drift allowance. *)
    Obs.Perf.rule "shard.ycsb_a.speedup_4v1" ~tol:0.05
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "shard.gc.mean_batch_4" ~tol:0.10
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "shard.ycsb_a.s1.throughput_ops" ~tol:0.05
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "shard.ycsb_a.s4.throughput_ops" ~tol:0.05
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "shard.ycsb_a.s8.throughput_ops" ~tol:0.05
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "shard.ycsb_a.s4.p999_ns" ~tol:0.10;
    Obs.Perf.rule "shard.ycsb_b.s4.p99_ns" ~tol:0.10;
    (* Pipelined compaction (BENCH_pipeline.json): the staged overlap must
       keep its headline speedup and keep both idleness figures down — a
       lost stage overlap shows up as speedup4 falling toward 1 and the
       idles climbing back to the serial numbers. The replay is
       deterministic; zero tolerance on sanitizer findings. *)
    Obs.Perf.rule "pipeline.speedup4" ~tol:0.05
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "pipeline.makespan4_ns" ~tol:0.05;
    Obs.Perf.rule "pipeline.cpu_idle4" ~tol:0.10;
    Obs.Perf.rule "pipeline.io_idle4" ~tol:0.10;
    Obs.Perf.rule "pipeline.queue_wait4_ns" ~tol:0.15;
    Obs.Perf.rule "pipeline.races4" ~tol:0.0;
    Obs.Perf.rule "pipeline.lost_wakeups4" ~tol:0.0;
    (* Chaos soak (BENCH_soak.json): availability under gray faults. The
       ratios are the product claims — zero tolerance on violations, tight
       tolerance on deadline-ok so a broken breaker (which drops it by
       ~0.005 on this seed) cannot hide inside drift. *)
    Obs.Perf.rule "soak.violations" ~tol:0.0;
    Obs.Perf.rule "soak.deadline_ok_ratio" ~tol:0.001
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "soak.healthy_ratio" ~tol:0.005
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "soak.sick_within_ratio" ~tol:0.01
      ~direction:Obs.Perf.Higher_is_better;
    Obs.Perf.rule "soak.mean_ttr_ms" ~tol:0.15;
  ]

let read_doc path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Obs.Json.parse s with
  | doc -> doc
  | exception Obs.Json.Parse_error msg ->
      Printf.eprintf "perf_gate: %s: %s\n" path msg;
      exit 2

let () =
  match Sys.argv with
  | [| _; baseline_path; current_path |] ->
      let baseline = read_doc baseline_path in
      let current = read_doc current_path in
      let report = Obs.Perf.compare_docs ~rules baseline current in
      Fmt.pr "%a@." Obs.Perf.pp_report report;
      exit (if Obs.Perf.passed report then 0 else 1)
  | _ ->
      Printf.eprintf "usage: perf_gate BASELINE.json CURRENT.json\n";
      exit 2

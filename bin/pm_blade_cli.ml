(* Command-line front end: run a workload against any engine variant and
   print the measurement summary, optionally exporting a clock-stamped
   event trace and a machine-readable metrics snapshot.

     dune exec bin/pm_blade_cli.exe -- ycsb --workload a --system pmblade
     dune exec bin/pm_blade_cli.exe -- ycsb --workload a --trace /tmp/t.jsonl --metrics /tmp/m.json
     dune exec bin/pm_blade_cli.exe -- retail --orders 2000 --system matrixkv8
     dune exec bin/pm_blade_cli.exe -- stats --format prometheus
     dune exec bin/pm_blade_cli.exe -- info *)

open Cmdliner

let systems =
  [
    ("pmblade", Core.Config.pmblade);
    ("pmblade-pm", Core.Config.pmblade_pm);
    ("pmblade-ssd", Core.Config.pmblade_ssd);
    ("rocksdb", Core.Config.rocksdb_like);
    ("matrixkv8", Core.Config.matrixkv_8);
    ("matrixkv80", Core.Config.matrixkv_80);
    ("pmb-p", Core.Config.pmb_p);
    ("pmb-pi", Core.Config.pmb_pi);
    ("pmb-pic", Core.Config.pmb_pic);
  ]

let system_arg =
  let parse s =
    match List.assoc_opt s systems with
    | Some cfg -> Ok cfg
    | None -> Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  let print ppf (cfg : Core.Config.t) = Fmt.string ppf cfg.name in
  Arg.(value
      & opt (conv (parse, print)) Core.Config.pmblade
      & info [ "s"; "system" ] ~docv:"SYSTEM"
          ~doc:(Printf.sprintf "Engine variant: %s."
                  (String.concat ", " (List.map fst systems))))

(* Read-path tuning knobs shared by the workload commands. *)

let block_cache_arg =
  Arg.(value & opt (some int) None
      & info [ "block-cache-mb" ] ~docv:"MB"
          ~doc:"DRAM budget of the shared SSTable block cache in MiB \
                (0 disables it; default: the system's configured value).")

let pm_bloom_arg =
  Arg.(value & opt (some int) None
      & info [ "pm-bloom-bits" ] ~docv:"BITS"
          ~doc:"Bloom bits per key of PM level-0 tables (0 writes \
                bloom-less v1 tables; default: the system's configured \
                value).")

let apply_read_path cfg block_cache_mb pm_bloom_bits =
  let cfg =
    match block_cache_mb with
    | Some mb -> { cfg with Core.Config.block_cache_mb = mb }
    | None -> cfg
  in
  match pm_bloom_bits with
  | Some bits -> { cfg with Core.Config.pm_bloom_bits_per_key = bits }
  | None -> cfg

(* Sharded front-door knobs shared by ycsb/retail/stats/doctor. *)

let shards_arg =
  Arg.(value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Range shards behind the router front door. With 1 (the \
                default) the workload drives a single engine directly; \
                with more, N engines split the key range and share the \
                devices, the block cache and the clock, each with its own \
                WAL, memtable and manifest root.")

let gc_window_arg =
  Arg.(value & opt (some float) None
      & info [ "group-commit-window" ] ~docv:"NS"
          ~doc:"Group-commit window in simulated nanoseconds: how long a \
                batch leader holds the WAL sync open for more writers \
                (default: the system's configured value).")

let gc_max_arg =
  Arg.(value & opt (some int) None
      & info [ "group-commit-max" ] ~docv:"N"
          ~doc:"Writers coalesced into one WAL sync before the batch \
                closes early (default: the system's configured value).")

let durable_arg =
  Arg.(value & flag
      & info [ "durable" ]
          ~doc:"Write and sync a WAL for every update. Under the sharded \
                front door this is where group commit earns its keep: \
                concurrent writers on a shard coalesce their syncs.")

let apply_shard cfg shards gc_window gc_max durable =
  let cfg = { cfg with Core.Config.shard_count = max 1 shards } in
  let cfg = if durable then { cfg with Core.Config.durable = true } else cfg in
  let cfg =
    match gc_window with
    | Some w -> { cfg with Core.Config.group_commit_window_ns = Float.max 0.0 w }
    | None -> cfg
  in
  match gc_max with
  | Some m -> { cfg with Core.Config.group_commit_max = max 1 m }
  | None -> cfg

let no_sanitize_arg =
  Arg.(value & flag
      & info [ "no-sanitize" ]
          ~doc:"Detach the persistence-ordering sanitizer (attached by \
                default; its shadow tracking costs real time on large \
                workloads but no simulated time).")

let apply_sanitize cfg no_sanitize =
  if no_sanitize then Sanitize.Control.disable ();
  { cfg with Core.Config.sanitize = not no_sanitize }

(* --- Observability plumbing ---------------------------------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome-trace-compatible JSONL event trace (flush, \
                internal/major compaction, WAL and device I/O, all stamped \
                with the virtual clock) to $(docv). Load it in Perfetto via \
                'jq -s . FILE'.")

let trace_io_arg =
  Arg.(value & flag
      & info [ "trace-no-io" ]
          ~doc:"Omit per-device I/O events from the trace (keeps only \
                structural spans and instants).")

let metrics_arg =
  Arg.(value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot (engine/pmem/ssd/sched \
                registries plus sampled time series) to $(docv).")

let sample_interval_arg =
  let positive =
    let parse s =
      match float_of_string_opt s with
      | Some v when v > 0.0 -> Ok v
      | Some _ -> Error (`Msg "sample interval must be positive")
      | None -> Error (`Msg (Printf.sprintf "invalid interval %S" s))
    in
    Arg.conv (parse, fun ppf v -> Fmt.float ppf v)
  in
  Arg.(value & opt positive 1.0
      & info [ "sample-interval" ] ~docv:"SECONDS"
          ~doc:"Simulated seconds between time-series samples (with \
                $(b,--metrics)).")

let open_out_or_die path =
  try open_out path
  with Sys_error msg ->
    Fmt.epr "pm_blade_cli: cannot open %s (%s)@." path msg;
    exit 1

(* The engine timeline models coroutine compaction as an overlap rebate
   rather than a live scheduler, so attach a monitoring flush-coroutine
   scheduler to the engine's SSD: the sched.* namespace (admission
   headroom, issued I/O) is exported alongside engine/pmem/ssd. *)
let make_registry engine =
  let reg = Obs.Registry.create () in
  Core.Engine.register_metrics reg engine;
  let des = Sim.Des.create (Core.Engine.clock engine) in
  let sched =
    Coroutine.Scheduler.create ~cores:1
      ~policy:(Coroutine.Scheduler.default_flush_coroutine ()) des (Core.Engine.ssd engine)
  in
  Coroutine.Scheduler.register_metrics reg sched;
  reg

let default_columns engine =
  let m = Core.Engine.metrics engine in
  [
    ("ops", fun () ->
        float_of_int (m.Core.Metrics.reads + m.Core.Metrics.writes + m.Core.Metrics.scans));
    ("l0_mb", fun () -> float_of_int (Core.Engine.l0_bytes engine) /. 1048576.0);
    ("pm_hit_ratio", fun () -> Core.Metrics.pm_hit_ratio m);
    ("pm_mb_written", fun () -> float_of_int (Core.Engine.pm_bytes_written engine) /. 1048576.0);
    ("ssd_mb_written", fun () -> float_of_int (Core.Engine.ssd_bytes_written engine) /. 1048576.0);
    ("major_compactions", fun () -> float_of_int m.Core.Metrics.major_compactions);
  ]

(* Set up tracing + sampling per the flags, run [f sampler], then tear the
   tracer down and write the metrics file. Parametric over the store
   front (single engine or sharded router) via [clock], [registry] and
   [columns]. *)
let with_observability_gen ~clock ~name ~registry ~columns ~trace ~trace_no_io
    ~metrics ~interval f =
  (* Per-op latency attribution is cheap (a few float adds per op) and
     feeds the attr.* metrics and op.* trace spans: always on under the
     CLI. [enable] also clears books left by a previous engine. *)
  Obs.Attr.enable ~clock;
  (match trace with
  | Some path ->
      let oc = open_out_or_die path in
      Obs.Trace.enable ~io:(not trace_no_io) ~clock (Obs.Trace.jsonl_sink oc)
  | None -> ());
  let sampler =
    match metrics with
    | Some _ -> Some (Obs.Sampler.create ~interval_s:interval ~clock columns)
    | None -> None
  in
  let finish () =
    Obs.Trace.disable ();
    match metrics with
    | Some path ->
        let series =
          match sampler with Some s -> Obs.Sampler.to_json s | None -> Obs.Json.Null
        in
        let doc =
          Obs.Json.Obj
            [
              ("system", Obs.Json.String name);
              ("metrics", Obs.Registry.snapshot_json registry);
              ("series", series);
            ]
        in
        let oc = open_out_or_die path in
        output_string oc (Obs.Json.to_string doc);
        output_char oc '\n';
        close_out oc;
        Fmt.pr "metrics snapshot written to %s@." path
    | None -> ()
  in
  Fun.protect ~finally:finish (fun () ->
      try f sampler
      with e ->
        (* Uncaught engine exception: push buffered trace events to disk
           before unwinding so the partial trace stays loadable. *)
        Obs.Trace.flush ();
        raise e);
  match trace with Some path -> Fmt.pr "trace written to %s@." path | None -> ()

let with_observability ~trace ~trace_no_io ~metrics ~interval engine f =
  with_observability_gen ~clock:(Core.Engine.clock engine)
    ~name:(Core.Engine.config engine).Core.Config.name ~registry:(make_registry engine)
    ~columns:(default_columns engine) ~trace ~trace_no_io ~metrics ~interval f

(* --- the sharded front door under the CLI ------------------------------- *)

let router_columns router =
  [
    ("ops", fun () -> float_of_int (Shard.Router.dispatched router));
    ("stalls", fun () -> float_of_int (Shard.Router.stall_count router));
    ("gc_batches", fun () -> float_of_int (Shard.Router.gc_batches router));
    ( "gc_mean_batch", fun () -> Shard.Router.gc_mean_batch router );
    ( "l0_mb",
      fun () ->
        float_of_int
          (Array.fold_left
             (fun acc e -> acc + Core.Engine.l0_bytes e)
             0 (Shard.Router.engines router))
        /. 1048576.0 );
  ]

let with_observability_router ~trace ~trace_no_io ~metrics ~interval router f =
  let reg = Obs.Registry.create () in
  Shard.Router.register_metrics reg router;
  with_observability_gen ~clock:(Shard.Router.clock router)
    ~name:(Shard.Router.config router).Core.Config.name ~registry:reg
    ~columns:(router_columns router) ~trace ~trace_no_io ~metrics ~interval f

let router_clients = 8

(* Drive [ops] operations through the router from [router_clients]
   concurrent coroutine clients; durable routers batch their WAL syncs
   through the group committer for the duration. Returns elapsed
   simulated ns. *)
let run_router_ops router ~ops step =
  let clock = Shard.Router.clock router in
  let des = Sim.Des.create clock in
  let sched =
    Coroutine.Scheduler.create ~cores:1
      ~policy:(Coroutine.Scheduler.Cooperative { switch_cost = 0.0 })
      des (Shard.Router.ssd router)
  in
  if (Shard.Router.config router).Core.Config.durable then
    Shard.Router.enable_group_commit router sched;
  let t0 = Sim.Clock.now clock in
  let per_client = max 1 (ops / router_clients) in
  for c = 0 to router_clients - 1 do
    Coroutine.Scheduler.spawn ~name:(Printf.sprintf "client-%d" c) sched 0 (fun () ->
        for _ = 1 to per_client do
          step ();
          Coroutine.Co.yield ()
        done)
  done;
  ignore (Coroutine.Scheduler.run_to_completion sched);
  Shard.Router.disable_group_commit router;
  Sim.Clock.now clock -. t0

let print_summary engine summary =
  Fmt.pr "%a@." Workload.Driver.pp_summary summary;
  Fmt.pr "%a@." Core.Engine.pp_stats engine

(* --- ycsb ----------------------------------------------------------------- *)

let ycsb_cmd =
  let workload =
    Arg.(value & opt string "a" & info [ "w"; "workload" ] ~docv:"WORKLOAD"
           ~doc:"YCSB workload: load, a, b, c, d, e or f.")
  in
  let records =
    Arg.(value & opt int 10_000 & info [ "records" ] ~doc:"Records loaded before the run.")
  in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Operations to run.") in
  let value_bytes =
    Arg.(value & opt int 1024 & info [ "value-bytes" ] ~doc:"Value size in bytes.")
  in
  let run cfg block_cache_mb pm_bloom_bits no_sanitize shards gc_window gc_max
      durable workload records ops value_bytes trace trace_no_io metrics interval =
    let cfg = apply_read_path cfg block_cache_mb pm_bloom_bits in
    let cfg = apply_sanitize cfg no_sanitize in
    let cfg = apply_shard cfg shards gc_window gc_max durable in
    let w = Workload.Ycsb.of_string workload in
    let y = Workload.Ycsb.create ~value_bytes () in
    if cfg.Core.Config.shard_count > 1 then begin
      let shards = cfg.Core.Config.shard_count in
      let router =
        Shard.Router.create
          ~boundaries:(Shard.Router.ycsb_boundaries ~records ~shards)
          cfg
      in
      let sink = Shard.Router.sink router in
      with_observability_router ~trace ~trace_no_io ~metrics ~interval router
        (fun sampler ->
          Workload.Ycsb.load_sink y sink ~records;
          Fmt.pr
            "loaded %d records into %s across %d shards; running YCSB %s with \
             %d clients...@."
            records cfg.Core.Config.name shards (Workload.Ycsb.name w)
            router_clients;
          let elapsed_ns =
            run_router_ops router ~ops (fun () ->
                Workload.Ycsb.step_sink y sink w;
                Option.iter Obs.Sampler.tick sampler)
          in
          let sim_s = elapsed_ns /. 1e9 in
          Fmt.pr "ran %d ops in %.3f simulated s (%.0f ops/s)@." ops sim_s
            (if sim_s > 0.0 then float_of_int ops /. sim_s else 0.0);
          Fmt.pr "%a@." Shard.Router.pp_stats router)
    end
    else begin
      let engine = Core.Engine.create cfg in
      with_observability ~trace ~trace_no_io ~metrics ~interval engine (fun sampler ->
          Workload.Ycsb.load y engine ~records;
          Fmt.pr "loaded %d records into %s; running YCSB %s...@." records
            cfg.Core.Config.name (Workload.Ycsb.name w);
          let summary =
            Workload.Driver.measure ?sampler engine ~ops (fun _ ->
                Workload.Ycsb.step y engine w)
          in
          print_summary engine summary)
    end
  in
  Cmd.v (Cmd.info "ycsb" ~doc:"Run a YCSB core workload.")
    Term.(const run $ system_arg $ block_cache_arg $ pm_bloom_arg $ no_sanitize_arg
          $ shards_arg $ gc_window_arg $ gc_max_arg $ durable_arg
          $ workload $ records
          $ ops $ value_bytes $ trace_arg $ trace_io_arg $ metrics_arg
          $ sample_interval_arg)

(* --- retail ----------------------------------------------------------------- *)

let retail_cmd =
  let orders =
    Arg.(value & opt int 2_000 & info [ "orders" ] ~doc:"Orders loaded before the run.")
  in
  let transactions =
    Arg.(value & opt int 5_000 & info [ "transactions" ] ~doc:"Transactions to run.")
  in
  let run cfg block_cache_mb pm_bloom_bits no_sanitize shards gc_window gc_max
      durable orders transactions trace trace_no_io metrics interval =
    let cfg = apply_read_path cfg block_cache_mb pm_bloom_bits in
    let cfg = apply_sanitize cfg no_sanitize in
    let cfg = apply_shard cfg shards gc_window gc_max durable in
    let retail = Workload.Retail.create () in
    if cfg.Core.Config.shard_count > 1 then begin
      let shards = cfg.Core.Config.shard_count in
      let router =
        Shard.Router.create
          ~boundaries:(Shard.Router.retail_boundaries ~tables:10 ~shards)
          cfg
      in
      let sink = Shard.Router.sink router in
      with_observability_router ~trace ~trace_no_io ~metrics ~interval router
        (fun sampler ->
          Workload.Retail.load_sink retail sink ~orders;
          Fmt.pr
            "loaded %d orders into %s across %d shards; running %d retail \
             transactions with %d clients...@."
            orders cfg.Core.Config.name shards transactions router_clients;
          let elapsed_ns =
            run_router_ops router ~ops:transactions (fun () ->
                Workload.Retail.step_sink retail sink;
                Option.iter Obs.Sampler.tick sampler)
          in
          let sim_s = elapsed_ns /. 1e9 in
          Fmt.pr "ran %d transactions in %.3f simulated s (%.0f tx/s)@."
            transactions sim_s
            (if sim_s > 0.0 then float_of_int transactions /. sim_s else 0.0);
          Fmt.pr "%a@." Shard.Router.pp_stats router)
    end
    else begin
      let engine = Core.Engine.create cfg in
      with_observability ~trace ~trace_no_io ~metrics ~interval engine (fun sampler ->
          Workload.Retail.load retail engine ~orders;
          Fmt.pr "loaded %d orders into %s; running %d retail transactions...@." orders
            cfg.Core.Config.name transactions;
          let summary =
            Workload.Driver.measure ?sampler engine ~ops:transactions (fun _ ->
                Workload.Retail.step retail engine)
          in
          print_summary engine summary)
    end
  in
  Cmd.v (Cmd.info "retail" ~doc:"Run the online-retail (Meituan-style) workload.")
    Term.(const run $ system_arg $ block_cache_arg $ pm_bloom_arg $ no_sanitize_arg
          $ shards_arg $ gc_window_arg $ gc_max_arg $ durable_arg
          $ orders
          $ transactions $ trace_arg $ trace_io_arg $ metrics_arg
          $ sample_interval_arg)

(* --- stats ----------------------------------------------------------------- *)

let stats_cmd =
  let format_arg =
    let parse = function
      | "prometheus" | "prom" -> Ok `Prometheus
      | "json" -> Ok `Json
      | s -> Error (`Msg (Printf.sprintf "unknown format %S (prometheus or json)" s))
    in
    let print ppf f =
      Fmt.string ppf (match f with `Prometheus -> "prometheus" | `Json -> "json")
    in
    Arg.(value & opt (conv (parse, print)) `Prometheus
        & info [ "format" ] ~docv:"FORMAT"
            ~doc:"Exposition format: prometheus (text) or json.")
  in
  let ops =
    Arg.(value & opt int 5_000 & info [ "ops" ] ~doc:"Mixed operations to run first.")
  in
  let run cfg block_cache_mb pm_bloom_bits shards gc_window gc_max durable ops
      format =
    (* A short deterministic mixed workload populates every subsystem, then
       the full registry is dumped — a one-stop look at the metric names. *)
    let cfg = apply_read_path cfg block_cache_mb pm_bloom_bits in
    let cfg = apply_shard cfg shards gc_window gc_max durable in
    let records = max 1 (ops / 2) in
    let y = Workload.Ycsb.create ~value_bytes:256 () in
    let registry =
      if cfg.Core.Config.shard_count > 1 then begin
        let router =
          Shard.Router.create
            ~boundaries:
              (Shard.Router.ycsb_boundaries ~records
                 ~shards:cfg.Core.Config.shard_count)
            cfg
        in
        Obs.Attr.enable ~clock:(Shard.Router.clock router);
        let registry = Obs.Registry.create () in
        Shard.Router.register_metrics registry router;
        let sink = Shard.Router.sink router in
        Workload.Ycsb.load_sink y sink ~records;
        ignore
          (run_router_ops router ~ops (fun () ->
               Workload.Ycsb.step_sink y sink Workload.Ycsb.A));
        registry
      end
      else begin
        let engine = Core.Engine.create cfg in
        let registry = make_registry engine in
        Workload.Ycsb.load y engine ~records;
        for _ = 1 to ops do
          Workload.Ycsb.step y engine Workload.Ycsb.A
        done;
        registry
      end
    in
    match format with
    | `Prometheus -> print_string (Obs.Registry.to_prometheus registry)
    | `Json ->
        print_endline (Obs.Json.to_string (Obs.Registry.snapshot_json registry))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a short mixed workload and dump the full metrics registry.")
    Term.(const run $ system_arg $ block_cache_arg $ pm_bloom_arg $ shards_arg
          $ gc_window_arg $ gc_max_arg $ durable_arg $ ops $ format_arg)

(* --- crashtest ------------------------------------------------------------ *)

let crashtest_cmd =
  let sites_arg =
    let parse = function
      | "all" -> Ok Fault.Crash_sweep.All
      | s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok (Fault.Crash_sweep.Sample n)
          | _ -> Error (`Msg (Printf.sprintf "expected 'all' or a positive count, got %S" s)))
    in
    let print ppf = function
      | Fault.Crash_sweep.All -> Fmt.string ppf "all"
      | Fault.Crash_sweep.Sample n -> Fmt.int ppf n
    in
    Arg.(value
        & opt (conv (parse, print)) Fault.Crash_sweep.All
        & info [ "sites" ] ~docv:"SITES"
            ~doc:"Crash points to test: $(b,all) sweeps every injection site \
                  the workload reaches; an integer tests a seeded sample of \
                  that size (CI smoke runs).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload and sampling seed.")
  in
  let ops =
    Arg.(value & opt int 300 & info [ "ops" ] ~doc:"Operations in the demo workload.")
  in
  let run sites seed ops shards metrics =
    (* A deliberately small engine (4 KiB memtable, 16 KiB SSTables) so the
       short workload exercises flushes, compactions and WAL rotations —
       the windows where crash consistency is earned. *)
    let engine_config =
      {
        Core.Config.pmblade with
        Core.Config.memtable_bytes = 4 * 1024;
        l0_run_table_bytes = 8 * 1024;
        level_base_bytes = 64 * 1024;
        sstable_target_bytes = 16 * 1024;
        durable = true;
        shard_count = max 1 shards;
      }
    in
    let stats = Fault.Plan.make_stats () in
    let write_metrics () =
      match metrics with
      | Some path ->
          let reg = Obs.Registry.create () in
          Fault.Plan.register_metrics reg stats;
          let oc = open_out_or_die path in
          output_string oc (Obs.Json.to_string (Obs.Registry.snapshot_json reg));
          output_char oc '\n';
          close_out oc;
          Fmt.pr "fault metrics written to %s@." path
      | None -> ()
    in
    let pp_selection total ppf = function
      | Fault.Crash_sweep.All -> Fmt.string ppf "all"
      | Fault.Crash_sweep.Sample n -> Fmt.pf ppf "%d sampled" (min n total)
    in
    if shards > 1 then begin
      let cfg = Shard.Sweep.config ~seed ~ops engine_config in
      let total = Shard.Sweep.count_sites cfg in
      Fmt.pr
        "workload reaches %d injection sites across %d shards; sweeping %a \
         crash points...@."
        total shards (pp_selection total) sites;
      let selection =
        match sites with
        | Fault.Crash_sweep.All -> Shard.Sweep.All
        | Fault.Crash_sweep.Sample n -> Shard.Sweep.Sample n
      in
      let tested = ref 0 in
      let progress (p : Shard.Sweep.point) =
        incr tested;
        if p.Shard.Sweep.violations <> [] then
          Fmt.pr "  crash at site %d (%s): %d violation(s)@." p.Shard.Sweep.crash_at
            (Option.value ~default:"end-of-run" p.Shard.Sweep.crash_site)
            (List.length p.Shard.Sweep.violations)
        else if !tested mod 100 = 0 then Fmt.pr "  %d points tested...@." !tested
      in
      let report = Shard.Sweep.sweep ~selection ~stats ~progress cfg in
      Fmt.pr "%a@." Shard.Sweep.pp_report report;
      write_metrics ();
      if not (Shard.Sweep.clean report) then exit 1
    end
    else begin
      let cfg = Fault.Crash_sweep.config ~seed ~ops engine_config in
      let total = Fault.Crash_sweep.count_sites cfg in
      Fmt.pr "workload reaches %d injection sites; sweeping %a crash points...@."
        total (pp_selection total) sites;
      let tested = ref 0 in
      let progress (p : Fault.Crash_sweep.point) =
        incr tested;
        if p.Fault.Crash_sweep.violations <> [] then
          Fmt.pr "  crash at site %d (%s): %d violation(s)@."
            p.Fault.Crash_sweep.crash_at
            (Option.value ~default:"end-of-run" p.Fault.Crash_sweep.crash_site)
            (List.length p.Fault.Crash_sweep.violations)
        else if !tested mod 100 = 0 then Fmt.pr "  %d points tested...@." !tested
      in
      let report = Fault.Crash_sweep.sweep ~selection:sites ~stats ~progress cfg in
      Fmt.pr "%a@." Fault.Crash_sweep.pp_report report;
      write_metrics ();
      if not (Fault.Crash_sweep.clean report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:"Sweep crash points over a demo workload: crash at each injection \
             site, recover, and check the crash-consistency invariants \
             (acked durability, single-op atomicity, no resurrection, \
             manifest/device agreement). With $(b,--shards) > 1 the sweep \
             runs through the range-sharded router (shared devices, \
             per-shard manifest roots, union orphan GC on recovery). Exits \
             1 on any violation.")
    Term.(const run $ sites_arg $ seed $ ops $ shards_arg $ metrics_arg)

(* --- scrub ---------------------------------------------------------------- *)

let scrub_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload and victim-selection seed.")
  in
  let ops =
    Arg.(value & opt int 300 & info [ "ops" ] ~doc:"Operations in the demo workload.")
  in
  let corruptions =
    Arg.(value & opt int 0
        & info [ "corruptions" ] ~docv:"N"
            ~doc:"Run the corruption sweep with $(docv) seeded injection \
                  points (cycling PM table, SSTable, WAL and manifest \
                  targets, bit flips and zeroed ranges). With 0, build the \
                  demo store and scrub it once — expecting a clean bill.")
  in
  let run seed ops corruptions metrics =
    (* The same deliberately small engine as crashtest, so the short
       workload produces PM tables, SSTables and manifest persists for the
       scrubber (and the injector) to chew on. *)
    let engine_config =
      {
        Core.Config.pmblade with
        Core.Config.memtable_bytes = 4 * 1024;
        l0_run_table_bytes = 8 * 1024;
        level_base_bytes = 64 * 1024;
        sstable_target_bytes = 16 * 1024;
        durable = true;
      }
    in
    if corruptions = 0 then begin
      let engine = Core.Engine.create engine_config in
      let rng = Util.Xoshiro.create seed in
      for i = 0 to ops - 1 do
        let key = Printf.sprintf "user%06d" (Util.Xoshiro.int rng 64) in
        Core.Engine.put ~update:true engine ~key
          (Printf.sprintf "%d:%s" i (Util.Xoshiro.string rng 24))
      done;
      Core.Engine.flush engine;
      Core.Engine.force_internal_compaction engine;
      let report = Core.Scrubber.run engine in
      Fmt.pr "%a@." Core.Scrubber.pp_report report;
      if not (Core.Scrubber.clean report) then exit 1
    end
    else begin
      let cfg =
        Fault.Corruption_sweep.config ~seed ~ops ~points:corruptions engine_config
      in
      let stats = Fault.Plan.make_stats () in
      let progress (p : Fault.Corruption_sweep.point) =
        Fmt.pr "  %a: %s@." Fault.Corruption_sweep.pp_point p
          (if p.Fault.Corruption_sweep.victim = None then "skipped (no victim)"
           else if p.Fault.Corruption_sweep.violations <> [] then "VIOLATIONS"
           else "detected, handled")
      in
      let report = Fault.Corruption_sweep.sweep ~stats ~progress cfg in
      Fmt.pr "%a@." Fault.Corruption_sweep.pp_report report;
      (match metrics with
      | Some path ->
          let reg = Obs.Registry.create () in
          Fault.Plan.register_metrics reg stats;
          let oc = open_out_or_die path in
          output_string oc (Obs.Json.to_string (Obs.Registry.snapshot_json reg));
          output_char oc '\n';
          close_out oc;
          Fmt.pr "fault metrics written to %s@." path
      | None -> ());
      if not (Fault.Corruption_sweep.clean report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Verify every checksum in a demo store (PM tables, SSTables, \
             WAL records, manifest slots), or — with $(b,--corruptions) — \
             sweep seeded bit rot over all four targets and check that \
             every injection is detected, quarantined or repaired, and \
             never silently served. Exits 1 on any violation.")
    Term.(const run $ seed $ ops $ corruptions $ metrics_arg)

(* --- sanitize ------------------------------------------------------------- *)

let sanitize_cmd =
  let sites =
    Arg.(value & opt int 50
        & info [ "sites" ] ~docv:"N"
            ~doc:"Sampled crash points for the sanitized crash-sweep leg.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload and sampling seed.")
  in
  let ops =
    Arg.(value & opt int 300 & info [ "ops" ] ~doc:"Operations in the demo workload.")
  in
  let run sites seed ops =
    Sanitize.Control.enable ();
    let errors = ref 0 in
    (* The same deliberately small engine as crashtest, so the short
       workload exercises flushes, compactions and WAL rotations. *)
    let engine_config =
      {
        Core.Config.pmblade with
        Core.Config.memtable_bytes = 4 * 1024;
        l0_run_table_bytes = 8 * 1024;
        level_base_bytes = 64 * 1024;
        sstable_target_bytes = 16 * 1024;
        durable = true;
      }
    in

    (* Leg 1: pmsan over a clean engine workload. Fails on any ordering
       finding and on any redundant flush (the hot paths are expected to
       stay dedup-clean; the per-site table names the offender). *)
    Fmt.pr "== pmsan: sanitized engine workload (%d ops) ==@." ops;
    let engine = Core.Engine.create engine_config in
    let rng = Util.Xoshiro.create (seed lxor 0x9E3779B9) in
    (* wide keyspace + fat values: the memtable threshold trips repeatedly
       and the PM-table builds span several 4 KiB builder chunks, so any
       per-chunk flush overlap on the shared tail line shows up *)
    for i = 0 to ops - 1 do
      let key = Printf.sprintf "user%06d" (Util.Xoshiro.int rng 512) in
      match Util.Xoshiro.int rng 10 with
      | r when r < 7 ->
          Core.Engine.put ~update:true engine ~key
            (Printf.sprintf "%d:%s" i (Util.Xoshiro.string rng 96))
      | 7 | 8 -> ignore (Core.Engine.get engine key)
      | _ -> Core.Engine.delete engine key
    done;
    Core.Engine.flush engine;
    Core.Engine.force_internal_compaction engine;
    ignore (Core.Engine.scan engine ~start:"user000000" ~limit:32);
    (match Pmem.sanitizer (Core.Engine.pm engine) with
    | None ->
        Fmt.pr "pmsan: not attached (sanitizer disabled?)@.";
        incr errors
    | Some san ->
        Fmt.pr "%a" Sanitize.Pmsan.pp san;
        if Sanitize.Pmsan.error_count san > 0 then incr errors;
        if Sanitize.Pmsan.redundant_flushes san > 0 then begin
          Fmt.pr "pmsan: redundant flushes on the hot path (see table above)@.";
          incr errors
        end);

    (* Leg 2: schedsan over the scheduling harness, all three policies. *)
    Fmt.pr "@.== schedsan: scheduler harness (thread / coroutine / pmblade) ==@.";
    List.iter
      (fun mode ->
        ignore
          (Exec_model.Harness.run
             ~inspect:(fun sched ->
               match Coroutine.Scheduler.sanitizer sched with
               | None ->
                   Fmt.pr "schedsan: not attached (sanitizer disabled?)@.";
                   incr errors
               | Some s ->
                   Fmt.pr "%a" Sanitize.Schedsan.pp s;
                   if Sanitize.Schedsan.error_count s > 0 then incr errors)
             { Exec_model.Harness.default with mode; cores = 2; tasks = 4; q_max = 8 }))
      [ Exec_model.Harness.Thread; Basic_coroutine; Pmblade ];

    (* Leg 3: a sanitized crash-sweep sample — every leg's pmsan findings
       count as violations (Fault.Crash_sweep wires them in). *)
    Fmt.pr "@.== sanitized crash sweep (%d sampled sites) ==@." sites;
    let cfg = Fault.Crash_sweep.config ~seed ~ops engine_config in
    let report =
      Fault.Crash_sweep.sweep ~selection:(Fault.Crash_sweep.Sample sites) cfg
    in
    Fmt.pr "%a@." Fault.Crash_sweep.pp_report report;
    if not (Fault.Crash_sweep.clean report) then incr errors;

    if !errors > 0 then begin
      Fmt.pr "@.sanitize: FAILED (%d leg(s) reported findings)@." !errors;
      exit 1
    end
    else Fmt.pr "@.sanitize: clean@."
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"Run the sanitizer gauntlet: pmsan (persistence ordering + \
             redundant flushes) over a clean engine workload, schedsan \
             (happens-before races, lost wakeups) over the scheduling \
             harness, and a sanitized crash-sweep sample. Exits 1 on any \
             finding.")
    Term.(const run $ sites $ seed $ ops)

(* --- doctor --------------------------------------------------------------- *)

let dur ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.3f s" (ns /. 1e9)

let print_top_phases (snap : Obs.Attr.snapshot) op_ns =
  Fmt.pr "top phases by op time:@.";
  Fmt.pr "  %-16s %12s %7s %9s %12s@." "phase" "op time" "share" "events"
    "avg/event";
  List.iter
    (fun (p, ns) ->
      let events =
        Option.value ~default:0 (List.assoc_opt p snap.Obs.Attr.phase_counts)
      in
      Fmt.pr "  %-16s %12s %6.1f%% %9d %12s@." (Obs.Attr.phase_name p) (dur ns)
        (100.0 *. ns /. op_ns)
        events
        (if events > 0 then dur (ns /. float_of_int events) else "-"))
    (snap.Obs.Attr.op_phases
    |> List.filter (fun (_, ns) -> ns > 0.0)
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a))

(* The sharded diagnosis pass: the same YCSB-A attribution story run
   through the router, plus the front-door block — dispatch, admission
   stalls, group-commit batching (with the batch-size distribution) and a
   per-shard backlog table. *)
let doctor_router cfg ~records ~ops ~value_bytes =
  let shards = cfg.Core.Config.shard_count in
  let router =
    Shard.Router.create
      ~boundaries:(Shard.Router.ycsb_boundaries ~records ~shards)
      cfg
  in
  Obs.Attr.enable ~clock:(Shard.Router.clock router);
  let y = Workload.Ycsb.create ~value_bytes () in
  let sink = Shard.Router.sink router in
  Workload.Ycsb.load_sink y sink ~records;
  (* Diagnose the steady-state mix, not the load phase. *)
  Obs.Attr.reset ();
  let elapsed_ns =
    run_router_ops router ~ops (fun () ->
        Workload.Ycsb.step_sink y sink Workload.Ycsb.A)
  in
  let snap = Obs.Attr.snapshot () in
  let op_ns = Obs.Attr.op_ns () in
  let accounted = Obs.Attr.accounted_ns () in
  let coverage = if op_ns > 0.0 then accounted /. op_ns else 0.0 in
  let coverage_ok = Float.abs (1.0 -. coverage) <= 0.05 in
  let mb b = float_of_int b /. 1048576.0 in
  Fmt.pr "== doctor: %s, %d shards (config %s) ==@." cfg.Core.Config.name shards
    (Core.Config.fingerprint cfg);
  Fmt.pr "workload: YCSB-A, %d records + %d ops over %d clients, %.3f simulated s@.@."
    records ops router_clients (elapsed_ns /. 1e9);
  print_top_phases snap op_ns;
  Fmt.pr "attribution coverage: %.1f%% of %s measured op time (%s)@.@."
    (100.0 *. coverage) (dur op_ns)
    (if coverage_ok then "PASS, within 5%" else "FAIL, off by more than 5%");
  let bg p = Option.value ~default:0.0 (List.assoc_opt p snap.Obs.Attr.bg_phases) in
  Fmt.pr "background time (off the op path): flush %s, compaction %s@.@."
    (dur (bg Obs.Attr.Flush))
    (dur (bg Obs.Attr.Compaction));
  Fmt.pr "shard front door:@.";
  Fmt.pr "  dispatch: %d op(s) routed over %d shard(s)@."
    (Shard.Router.dispatched router)
    shards;
  Fmt.pr "  admission: %d hard stall(s) (%s stalled), %d soft delay(s)@."
    (Shard.Router.stall_count router)
    (dur (Shard.Router.stall_ns router))
    (Shard.Router.soft_delays router);
  Fmt.pr "  group commit: %d batch(es), %d entries synced, mean batch %.2f@."
    (Shard.Router.gc_batches router)
    (Shard.Router.gc_synced_entries router)
    (Shard.Router.gc_mean_batch router);
  let h = Shard.Router.gc_size_hist router in
  if Util.Histogram.count h > 0 then
    Fmt.pr "  batch sizes: p50 %.0f  p99 %.0f  max %.0f@."
      (Util.Histogram.percentile h 50.0)
      (Util.Histogram.percentile h 99.0)
      (Util.Histogram.max h)
  else Fmt.pr "  batch sizes: no batches synced@.";
  Fmt.pr "  %-8s %10s %8s %8s@." "shard" "l0" "debt" "stalls";
  Array.iteri
    (fun i e ->
      Fmt.pr "  shard%-3d %7.2f MB %6d t %8d@." i
        (mb (Core.Engine.l0_bytes e))
        (Core.Engine.compaction_debt_tables e)
        (Core.Engine.metrics e).Core.Metrics.write_stalls)
    (Shard.Router.engines router);
  Fmt.pr "@.";
  Fmt.pr "shard health (EWMA latency vs baseline, breaker states):@.";
  Fmt.pr "%a@." Shard.Router.pp_health router;
  (match Pmem.sanitizer (Shard.Router.pm router) with
  | None -> Fmt.pr "sanitizer: not attached@."
  | Some san ->
      let errs = Sanitize.Pmsan.error_count san in
      if errs = 0 then Fmt.pr "sanitizer: clean@."
      else Fmt.pr "sanitizer: %d finding(s) — run 'sanitize' for detail@." errs);
  if coverage_ok then Fmt.pr "@.doctor: OK@."
  else begin
    Fmt.pr "@.doctor: FAIL (attribution does not cover measured op time)@.";
    exit 1
  end

let doctor_cmd =
  let records =
    Arg.(value & opt int 10_000 & info [ "records" ] ~doc:"Records loaded before the run.")
  in
  let ops =
    Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"YCSB-A operations to diagnose.")
  in
  let value_bytes =
    Arg.(value & opt int 1024 & info [ "value-bytes" ] ~doc:"Value size in bytes.")
  in
  let run cfg block_cache_mb pm_bloom_bits no_sanitize shards gc_window gc_max
      durable records ops value_bytes =
    let cfg = apply_read_path cfg block_cache_mb pm_bloom_bits in
    let cfg = apply_sanitize cfg no_sanitize in
    let cfg = apply_shard cfg shards gc_window gc_max durable in
    if cfg.Core.Config.shard_count > 1 then
      doctor_router cfg ~records ~ops ~value_bytes
    else
    let engine = Core.Engine.create cfg in
    Obs.Attr.enable ~clock:(Core.Engine.clock engine);
    let y = Workload.Ycsb.create ~value_bytes () in
    Workload.Ycsb.load y engine ~records;
    (* Diagnose the steady-state mix, not the load phase. *)
    Obs.Attr.reset ();
    let bloom_probes0 = !Pmtable.Pm_table.bloom_probes in
    let bloom_negs0 = !Pmtable.Pm_table.bloom_negatives in
    let summary =
      Workload.Driver.measure engine ~ops (fun _ ->
          Workload.Ycsb.step y engine Workload.Ycsb.A)
    in
    let m = Core.Engine.metrics engine in
    let snap = Obs.Attr.snapshot () in
    let op_ns = Obs.Attr.op_ns () in
    let accounted = Obs.Attr.accounted_ns () in
    let coverage = if op_ns > 0.0 then accounted /. op_ns else 0.0 in
    let coverage_ok = Float.abs (1.0 -. coverage) <= 0.05 in
    (* Ledger figures before the space-amp scan: [logical_bytes] walks the
       whole store and would perturb the device read counters. *)
    let waf = Core.Engine.write_amplification engine in
    let raf = Core.Engine.read_amplification engine in
    let debt_bytes = Core.Engine.compaction_debt_bytes engine in
    let debt_tables = Core.Engine.compaction_debt_tables engine in
    let space = Core.Engine.space_bytes engine in
    let logical = Core.Engine.logical_bytes engine in

    let mb b = float_of_int b /. 1048576.0 in
    Fmt.pr "== doctor: %s (config %s) ==@." cfg.Core.Config.name
      (Core.Config.fingerprint cfg);
    Fmt.pr "workload: YCSB-A, %d records + %d ops, %.3f simulated s@.@." records
      ops summary.Workload.Driver.sim_seconds;

    print_top_phases snap op_ns;
    Fmt.pr "attribution coverage: %.1f%% of %s measured op time (%s)@.@."
      (100.0 *. coverage) (dur op_ns)
      (if coverage_ok then "PASS, within 5%" else "FAIL, off by more than 5%");

    let bg p = Option.value ~default:0.0 (List.assoc_opt p snap.Obs.Attr.bg_phases) in
    Fmt.pr "background time (off the op path): flush %s, compaction %s@.@."
      (dur (bg Obs.Attr.Flush))
      (dur (bg Obs.Attr.Compaction));

    Fmt.pr "amplification:@.";
    Fmt.pr "  write amp %6.2fx  (user %.1f MB -> pm %.1f MB + ssd %.1f MB)@." waf
      (mb m.Core.Metrics.user_bytes_written)
      (mb (Core.Engine.pm_bytes_written engine))
      (mb (Core.Engine.ssd_bytes_written engine));
    Fmt.pr "  read amp  %6.2fx  (user %.1f MB returned, devices read %.1f MB)@."
      raf
      (mb m.Core.Metrics.user_bytes_read)
      (mb (Core.Engine.pm_bytes_read engine + Core.Engine.ssd_bytes_read engine));
    Fmt.pr "  space amp %6.2fx  (physical %.1f MB / logical %.1f MB)@."
      (if logical > 0 then float_of_int space /. float_of_int logical else 0.0)
      (mb space) (mb logical);
    Fmt.pr "compaction debt: %.1f MB of level-0 backlog in %d table(s)@."
      (mb debt_bytes) debt_tables;
    Fmt.pr "write stalls: %d stall(s), %s total@.@." m.Core.Metrics.write_stalls
      (dur m.Core.Metrics.write_stall_time);

    let probes = !Pmtable.Pm_table.bloom_probes - bloom_probes0 in
    let negs = !Pmtable.Pm_table.bloom_negatives - bloom_negs0 in
    Fmt.pr "read-path effectiveness:@.";
    (match Core.Engine.block_cache engine with
    | Some c ->
        Fmt.pr "  block cache hit ratio %.3f (%d hits / %d misses)@."
          (Cache.Block_cache.hit_ratio c)
          (Cache.Block_cache.hits c) (Cache.Block_cache.misses c)
    | None -> Fmt.pr "  block cache: disabled@.");
    if probes > 0 then
      Fmt.pr "  pm bloom filter rate %.3f (%d of %d probes screened)@."
        (float_of_int negs /. float_of_int probes)
        negs probes
    else Fmt.pr "  pm blooms: never probed@.";
    Fmt.pr "  pm hit ratio %.3f (reads answered without the SSD)@.@."
      (Core.Metrics.pm_hit_ratio m);

    let pt = Core.Engine.pipeline_stats engine in
    Fmt.pr "compaction pipeline:@.";
    if pt.Compaction.Pipeline.runs = 0 then
      Fmt.pr "  no staged replays (pipeline %s)@.@."
        (if cfg.Core.Config.pipeline_compaction then "enabled, no overlap work yet"
         else "disabled")
    else begin
      let serial = pt.Compaction.Pipeline.serial_total_ns in
      let piped = pt.Compaction.Pipeline.pipelined_total_ns in
      Fmt.pr "  %d staged replay(s), %d blocks: serial %s -> pipelined %s (%.2fx)@."
        pt.Compaction.Pipeline.runs pt.Compaction.Pipeline.blocks_total
        (dur serial) (dur piped)
        (if piped > 0.0 then serial /. piped else 1.0);
      Fmt.pr "  clock rebate %s, queue wait %s@."
        (dur pt.Compaction.Pipeline.rebate_total_ns)
        (dur pt.Compaction.Pipeline.queue_wait_total);
      Fmt.pr "  stage busy:";
      List.iteri
        (fun i s ->
          Fmt.pr " %s %s"
            (Compaction.Pipeline.stage_name s)
            (dur pt.Compaction.Pipeline.stage_busy_total.(i)))
        Compaction.Pipeline.all_stages;
      Fmt.pr "@.";
      (match pt.Compaction.Pipeline.last with
      | Some last ->
          Fmt.pr "  last replay queue depths:";
          List.iter
            (fun (q, d) -> Fmt.pr " %s %d" q d)
            last.Compaction.Pipeline.queue_max_depths;
          Fmt.pr "@."
      | None -> ());
      if
        pt.Compaction.Pipeline.races_total > 0
        || pt.Compaction.Pipeline.lost_wakeups_total > 0
      then
        Fmt.pr "  replay sanitizer: %d race(s), %d lost wakeup(s) — investigate@."
          pt.Compaction.Pipeline.races_total
          pt.Compaction.Pipeline.lost_wakeups_total
      else Fmt.pr "  replay sanitizer: clean@.";
      Fmt.pr "@."
    end;

    (match Pmem.sanitizer (Core.Engine.pm engine) with
    | None -> Fmt.pr "sanitizer: not attached@."
    | Some san ->
        let errs = Sanitize.Pmsan.error_count san in
        if errs = 0 then Fmt.pr "sanitizer: clean@."
        else Fmt.pr "sanitizer: %d finding(s) — run 'sanitize' for detail@." errs);
    if coverage_ok then Fmt.pr "@.doctor: OK@."
    else begin
      Fmt.pr "@.doctor: FAIL (attribution does not cover measured op time)@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:"Run a YCSB-A diagnosis pass: per-phase latency attribution \
             (where each operation's simulated time went), the \
             amplification/stall ledger (write/read/space amplification, \
             compaction debt, write stalls), read-path effectiveness \
             (block cache, PM blooms) and sanitizer status. With \
             $(b,--shards) > 1 the diagnosis runs through the range-sharded \
             router and adds the front-door block: dispatch and admission \
             stall counts, group-commit batching with the batch-size \
             distribution, and a per-shard backlog table. Exits 1 if the \
             attributed phases fail to cover measured op time within 5%.")
    Term.(const run $ system_arg $ block_cache_arg $ pm_bloom_arg $ no_sanitize_arg
          $ shards_arg $ gc_window_arg $ gc_max_arg $ durable_arg
          $ records $ ops $ value_bytes)

(* --- soak ----------------------------------------------------------------- *)

let soak_cmd =
  let seed =
    Arg.(value & opt int 42
        & info [ "seed" ] ~docv:"SEED"
            ~doc:"Seed for the episode schedule, fault plans and workload.")
  in
  let rounds =
    Arg.(value & opt int 16
        & info [ "rounds" ] ~docv:"N" ~doc:"Chaos episodes to run.")
  in
  let ops =
    Arg.(value & opt int 600
        & info [ "ops-per-round" ] ~docv:"N" ~doc:"Operations per episode.")
  in
  let keyspace =
    Arg.(value & opt int 2_000
        & info [ "keyspace" ] ~docv:"N" ~doc:"Distinct keys in the workload.")
  in
  let quiet =
    Arg.(value & flag
        & info [ "quiet" ] ~doc:"Suppress the per-round episode progress lines.")
  in
  let run cfg shards seed rounds ops keyspace quiet =
    (* Crash episodes replay from the WAL and the deadline budgets are the
       point of the exercise, so durability, sharding and the gray-failure
       knobs are forced on regardless of the base system. *)
    let cfg =
      {
        cfg with
        Core.Config.name = cfg.Core.Config.name ^ "-soak";
        durable = true;
        shard_count = max 2 shards;
        breaker_enabled = true;
        deadline_read_ns = 300_000.0;
        deadline_write_ns = 2_000_000.0;
      }
    in
    let scfg =
      Shard.Soak.config ~seed ~rounds ~ops_per_round:ops ~keyspace cfg
    in
    let progress ~round ~episode =
      if not quiet then Fmt.pr "round %2d: %s@." round episode
    in
    let r = Shard.Soak.run ~progress scfg in
    Fmt.pr "@.%a@." Shard.Soak.pp_report r;
    if Shard.Soak.clean r then Fmt.pr "@.soak: clean@."
    else begin
      Fmt.pr "@.soak: FAILED (%d violation(s))@."
        (List.length r.Shard.Soak.violations);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run the chaos soak: seeded rounds of gray faults (fail-slow \
             devices, I/O-error storms, stuck fsync on one sick shard's \
             range), crash-restart cycles (including a crash during \
             recovery), and bit-rot injection, driven through the \
             health-aware router with deadline budgets, continuously \
             checked against a golden model. Exits 1 on any correctness, \
             manifest or sanitizer violation.")
    Term.(const run $ system_arg $ shards_arg $ seed $ rounds $ ops $ keyspace
          $ quiet)

(* --- info ---------------------------------------------------------------- *)

let info_cmd =
  let run () =
    Fmt.pr "%-12s %-6s %-10s %-22s %s@." "system" "L0" "capacity" "strategy" "table";
    List.iter
      (fun (name, (cfg : Core.Config.t)) ->
        Fmt.pr "%-12s %-6s %-10s %-22s %s@." name
          (match cfg.l0_medium with Core.Config.L0_pm -> "PM" | L0_ssd -> "SSD")
          (Printf.sprintf "%dMB" (cfg.l0_capacity / 1024 / 1024))
          (match cfg.l0_strategy with
          | Core.Config.Cost_based _ -> "cost-based (Eq.1-3)"
          | Core.Config.Conventional { max_tables = Some n; _ } ->
              Printf.sprintf "major at %d tables" n
          | Core.Config.Conventional _ -> "major when full"
          | Core.Config.Matrix { columns; _ } ->
              Printf.sprintf "column compaction/%d" columns)
          (match cfg.table_kind with
          | Pmtable.Table.Pm_compressed -> "compressed PM table"
          | Array_plain -> "array"
          | Array_snappy -> "array+snappy"
          | Array_snappy_group -> "array+snappy-group"))
      systems
  in
  Cmd.v (Cmd.info "info" ~doc:"List the engine variants.") Term.(const run $ const ())

let () =
  let doc = "PM-Blade: a persistent-memory augmented LSM-tree storage engine (simulated)." in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pm_blade_cli" ~doc) [ ycsb_cmd; retail_cmd; stats_cmd; doctor_cmd; crashtest_cmd; scrub_cmd; sanitize_cmd; soak_cmd; info_cmd ]))

(* pmlint: static analyzer for PM-Blade's own sources.

   Parses lib/ with the compiler's parser and enforces the persistence-
   ordering, checked-path, scheduler-safety, metric-hygiene and
   partial-accessor disciplines the compiler cannot see (DESIGN.md
   "static-analysis model"). Exit 1 on any unsuppressed finding.

     pmlint [--json FILE] [--list-rules] [--quiet] [PATH ...]

   PATH defaults to lib; directories are walked recursively for *.ml. *)

let () =
  let json_out = ref None in
  let list_rules = ref false in
  let quiet = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE  write the findings as a JSON artifact" );
      ("--list-rules", Arg.Set list_rules, "  print the rule catalogue and exit");
      ("--quiet", Arg.Set quiet, "  only the final tally, no per-finding lines");
    ]
  in
  let usage = "pmlint [--json FILE] [--list-rules] [--quiet] [PATH ...]" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Analyze.Rule.t) ->
        Printf.printf "%-28s %s\n" r.Analyze.Rule.id r.Analyze.Rule.doc)
      Analyze.Driver.default_rules;
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let summary = Analyze.Driver.run paths in
  (match !json_out with
  | Some file -> Analyze.Report.write_json file summary
  | None -> ());
  if !quiet then
    Format.printf "pmlint: %d unsuppressed finding(s), %d suppressed, %d file(s)@."
      (List.length summary.Analyze.Report.findings)
      (List.length summary.Analyze.Report.suppressed)
      summary.Analyze.Report.files
  else Analyze.Report.pp_text Format.std_formatter summary;
  exit (if Analyze.Driver.has_errors summary then 1 else 0)

(* Bit rot, scrubbed: flip bytes in a live PM table, watch the scrubber
   detect it, salvage the survivors, quarantine the lost key range, and
   keep serving typed (never silently wrong) answers. Then the
   counterfactual that keeps the whole subsystem honest: an engine whose
   checksum verification is switched off sails through the same damage —
   and the corruption sweep catches it red-handed.

     dune exec examples/corruption_scrub.exe *)

let config =
  {
    Core.Config.pmblade with
    Core.Config.memtable_bytes = 4 * 1024;
    l0_run_table_bytes = 8 * 1024;
    level_base_bytes = 64 * 1024;
    sstable_target_bytes = 16 * 1024;
    durable = true;
  }

let key i = Printf.sprintf "user%06d" i

let build_store () =
  let engine = Core.Engine.create config in
  let rng = Util.Xoshiro.create 11 in
  for i = 0 to 299 do
    Core.Engine.put ~update:true engine ~key:(key (i mod 64))
      (Printf.sprintf "gen%d:%s" i (Util.Xoshiro.string rng 24))
  done;
  Core.Engine.flush engine;
  Core.Engine.force_internal_compaction engine;
  engine

let () =
  (* Act 1: rot a live PM table and scrub. *)
  let engine = build_store () in
  let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
  let plan = Fault.Plan.create 11 in
  (match
     Fault.Plan.inject_corruption plan ~pm ~ssd
       ?wal:(Core.Engine.wal engine) ~target:Fault.Plan.Pm_table_bytes
       ~mode:(Fault.Plan.Zero_range 32) ()
   with
  | Some c -> Printf.printf "injected: 32 zeroed bytes at %s\n" c.Fault.Plan.victim
  | None -> failwith "no PM table to corrupt?");

  let report = Core.Scrubber.run engine in
  Fmt.pr "%a@." Core.Scrubber.pp_report report;
  assert (report.Core.Scrubber.engine.Core.Engine.corrupt_pm_tables = 1);
  assert (not (Core.Scrubber.clean report));

  (* The lost range is on the record; every key inside it answers as
     damaged rather than silently missing. *)
  List.iter
    (fun (q : Core.Manifest.quarantine) ->
      Printf.printf "quarantined: keys %S .. %S\n" q.Core.Manifest.q_lo
        q.Core.Manifest.q_hi)
    (Core.Engine.quarantined engine);
  let damaged =
    List.filter (fun i -> Core.Engine.damaged_key engine (key i)) (List.init 64 Fun.id)
  in
  Printf.printf "keys inside the recorded lost range: %d of 64\n" (List.length damaged);
  (* Survivors still read exactly; a second scrub comes back clean. *)
  let survivors =
    List.filter (fun i -> Core.Engine.get engine (key i) <> None) (List.init 64 Fun.id)
  in
  Printf.printf "still readable after salvage: %d of 64\n" (List.length survivors);
  let again = Core.Scrubber.run engine in
  assert (Core.Scrubber.clean again);
  print_endline "re-scrub after salvage: clean\n";

  (* Act 2: the planted bug. Switch checksum verification off — the exact
     "skip the verify" regression a reviewer might wave through — and run
     the corruption sweep. It must come back dirty. *)
  let sweep_cfg = Fault.Corruption_sweep.config ~seed:11 ~points:8 config in
  Fun.protect
    ~finally:(fun () ->
      Pmtable.Pm_table.verify_checksums := true;
      Sstable.verify_checksums := true)
    (fun () ->
      Pmtable.Pm_table.verify_checksums := false;
      Sstable.verify_checksums := false;
      let broken = Fault.Corruption_sweep.sweep sweep_cfg in
      Printf.printf
        "sweep with checksum verification disabled: %d violation(s) across %d point(s)\n"
        (Fault.Corruption_sweep.violation_count broken)
        (List.length broken.Fault.Corruption_sweep.points);
      assert (not (Fault.Corruption_sweep.clean broken));
      print_endline "  (planted integrity bug detected, as it should be)");

  (* And with verification back on, the same sweep is spotless. *)
  let healthy = Fault.Corruption_sweep.sweep sweep_cfg in
  assert (Fault.Corruption_sweep.clean healthy);
  print_endline "sweep with checksums on: clean"

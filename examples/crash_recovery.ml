(* Crash and recovery, now with teeth: instead of politely dropping the
   DRAM structures at a quiet moment, a fault plan cuts the run mid-write
   at a chosen injection site, the devices crash to their durable contents
   (torn SSD tail included), and the recovered engine is audited against a
   golden model of every acknowledged write. The same machinery then shows
   the counterfactual: an engine that skips the WAL barrier loses
   acknowledged writes, and the checker catches it red-handed.

     dune exec examples/crash_recovery.exe *)

let config =
  {
    Core.Config.pmblade with
    Core.Config.memtable_bytes = 4 * 1024;
    l0_run_table_bytes = 8 * 1024;
    level_base_bytes = 64 * 1024;
    sstable_target_bytes = 16 * 1024;
    durable = true;
  }

(* Mirror every operation into the golden model: begin before the engine
   call, ack after it returns. Whatever is pending when the plan raises
   [Crashed] is the one op recovery may legitimately go either way on. *)
let run_workload golden engine ~ops =
  let rng = Util.Xoshiro.create 7 in
  try
    for i = 0 to ops - 1 do
      let key = Util.Keys.record_key ~table_id:1 ~row_id:(Util.Xoshiro.int rng 200) in
      let value =
        Printf.sprintf "status=%d payload=%s" (i mod 5) (Util.Xoshiro.string rng 32)
      in
      Fault.Golden.begin_put golden ~key value;
      Core.Engine.put ~update:true engine ~key value;
      Fault.Golden.ack golden
    done;
    None
  with Fault.Plan.Crashed { site; hit } -> Some (site, hit)

let crash_and_audit ~plan_rules ~crash_at ~label =
  let engine = Core.Engine.create config in
  let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
  Pmem.enable_crash_mode pm;
  Ssd.enable_crash_mode ssd;
  let plan = Fault.Plan.create ~crash_at 7 in
  List.iter
    (fun (site, trigger, action) -> Fault.Plan.add_rule plan ~site ~trigger action)
    plan_rules;
  Fault.Plan.arm plan ~pm ~ssd ?wal:(Core.Engine.wal engine) ();
  let golden = Fault.Golden.create () in
  (match run_workload golden engine ~ops:400 with
  | Some (site, hit) ->
      Printf.printf "%s: crashed mid-run at site %d (%s), %d keys acknowledged\n"
        label hit site (List.length (Fault.Golden.entries golden))
  | None -> Printf.printf "%s: workload outran the crash schedule\n" label);
  Fault.Plan.disarm ~pm ~ssd ?wal:(Core.Engine.wal engine) ();

  (* The devices lose everything not flushed/fsynced; the SSD keeps a
     3-byte torn tail on every file to make replay earn its keep. *)
  Pmem.crash pm;
  Ssd.crash ~keep:(fun ~file_id:_ ~durable:_ ~size:_ -> 3) ssd;

  let t0 = Sim.Clock.now (Pmem.clock pm) in
  let recovered = Core.Engine.recover config ~pm ~ssd in
  Printf.printf "  recovered in %.2f simulated ms (manifest + reopen + WAL replay)\n"
    ((Sim.Clock.now (Pmem.clock pm) -. t0) /. 1e6);

  let violations = Fault.Checker.check golden recovered in
  (match violations with
  | [] ->
      Printf.printf "  invariants: all hold (%d acked keys audited)\n"
        (List.length (Fault.Golden.entries golden))
  | vs ->
      Printf.printf "  invariants VIOLATED (%d shown of %d):\n" (min 5 (List.length vs))
        (List.length vs);
      List.iteri
        (fun i v -> if i < 5 then Fmt.pr "    %a@." Fault.Checker.pp_violation v)
        vs);
  (recovered, violations)

let () =
  (* Act 1: a healthy engine. Crash at the 200th injection site — deep in
     the workload, past memtable flushes and WAL rotations — and every
     acknowledged write comes back. *)
  let recovered, violations =
    crash_and_audit ~plan_rules:[] ~crash_at:200 ~label:"healthy engine"
  in
  assert (violations = []);

  (* ...and it keeps serving. *)
  Core.Engine.put recovered ~key:"post-crash" "still alive";
  Printf.printf "  post-crash write readable: %b\n\n"
    (Core.Engine.get recovered "post-crash" = Some "still alive");

  (* Act 2: the same crash against an engine whose WAL "sync" skips the
     barrier. The writes were acknowledged, the bytes never became
     durable — exactly the bug class this subsystem exists to catch. *)
  let _, violations =
    crash_and_audit
      ~plan_rules:[ ("wal.sync", Fault.Plan.Every, Fault.Plan.Wal_sync_loss) ]
      ~crash_at:200 ~label:"engine with broken WAL barrier"
  in
  assert (violations <> []);
  print_endline "  (planted durability bug detected, as it should be)"

open Parsetree

let path_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | "Stdlib" :: (_ :: _ as rest) -> Some rest
      | p -> Some p
      | exception _ -> None)
  | _ -> None

let ends_with ~suffix path =
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> String.equal x y && is_prefix a' b'
    | _ :: _, [] -> false
  in
  is_prefix (List.rev suffix) (List.rev path)

let last path = match List.rev path with [] -> None | x :: _ -> Some x

let iter_expressions structure f =
  let open Ast_iterator in
  let it =
    { default_iterator with expr = (fun it e -> f e; default_iterator.expr it e) }
  in
  it.structure it structure

let rec strip_funs e =
  match e.pexp_desc with Pexp_fun (_, _, _, body) -> strip_funs body | _ -> e

let is_function e =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

let toplevel_functions structure =
  let acc = ref [] in
  let rec walk_structure items = List.iter walk_item items
  and walk_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | Ppat_var { txt; _ }, (Pexp_fun _ | Pexp_function _) ->
                acc := (txt, strip_funs vb.pvb_expr) :: !acc
            | _ -> ())
          vbs
    | Pstr_module { pmb_expr; _ } -> walk_module pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module mb.pmb_expr) mbs
    | _ -> ()
  and walk_module me =
    match me.pmod_desc with
    | Pmod_structure items -> walk_structure items
    | Pmod_constraint (me, _) -> walk_module me
    | _ -> ()
  in
  walk_structure structure;
  List.rev !acc

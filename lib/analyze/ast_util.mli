(** Small Parsetree helpers shared by the pmlint rules. *)

val path_of : Parsetree.expression -> string list option
(** [Some ["Core"; "Engine"; "get"]] for a [Pexp_ident]; [None]
    otherwise. A leading ["Stdlib"] component is stripped so
    [Stdlib.List.hd] and [List.hd] match the same patterns. *)

val ends_with : suffix:string list -> string list -> bool
(** Does the path end with the given component suffix?
    [ends_with ~suffix:["Engine"; "get"] ["Core"; "Engine"; "get"]] is
    true. *)

val last : string list -> string option

val iter_expressions : Parsetree.structure -> (Parsetree.expression -> unit) -> unit
(** Visit every expression in the structure, including nested modules,
    in source order (via [Ast_iterator]). *)

val toplevel_functions :
  Parsetree.structure -> (string * Parsetree.expression) list
(** [(name, body)] for every structure-level [let name = fun ... ->]
    binding (walking into nested [module M = struct .. end]); the body is
    the expression inside the outermost chain of [fun] abstractions. The
    traversal order is source order, so a later function may call an
    earlier one. *)

val strip_funs : Parsetree.expression -> Parsetree.expression
(** Peel [fun x -> ], [fun ~l:x -> ] and [function]-free parameter chains
    down to the first non-abstraction body. A bare [function cases]
    expression is returned unchanged (the cases are the body). *)

val is_function : Parsetree.expression -> bool
(** Is the expression a syntactic abstraction ([fun] or [function])? *)

let default_rules =
  [
    Rules_pm.rule;
    Rules_checked.rule;
    Rules_sched.rule;
    Rules_metrics.rule;
    Rules_partial.rule;
  ]

let rule_ids rules = List.map (fun (r : Rule.t) -> r.Rule.id) rules

let parse_error_rule = "parse-error"

let run ?(rules = default_rules) paths =
  let files = Loader.collect paths in
  let known = rule_ids rules in
  let parse_failures = ref [] in
  let loaded =
    List.filter_map
      (fun path ->
        match Loader.load path with
        | Ok l -> Some l
        | Error msg ->
            parse_failures :=
              {
                Rule.rule = parse_error_rule;
                sev = Rule.Error;
                file = path;
                line = 1;
                col = 0;
                msg;
              }
              :: !parse_failures;
            None)
      files
  in
  let scans =
    List.map
      (fun (l : Loader.t) ->
        let scan, bad =
          Suppress.scan ~path:l.Loader.path ~known_rules:known l.Loader.source
        in
        (l.Loader.path, (scan, bad)))
      loaded
  in
  let ctxs =
    List.map
      (fun (l : Loader.t) ->
        { Rule.path = l.Loader.path; ast = l.Loader.ast })
      loaded
  in
  let raw =
    List.concat_map
      (fun (r : Rule.t) ->
        List.concat_map (fun ctx -> r.Rule.file_pass ctx) ctxs
        @ r.Rule.global_pass ctxs)
      rules
  in
  let bad_suppress =
    List.concat_map (fun (_, (_, bad)) -> bad) scans
  in
  let kept = ref [] and suppressed = ref [] in
  List.iter
    (fun (f : Rule.finding) ->
      match List.assoc_opt f.Rule.file scans with
      | Some (scan, _) -> (
          match Suppress.covers scan f with
          | Some reason -> suppressed := (f, reason) :: !suppressed
          | None -> kept := f :: !kept)
      | None -> kept := f :: !kept)
    raw;
  {
    Report.files = List.length files;
    findings =
      List.sort Rule.compare_finding
        (!parse_failures @ bad_suppress @ !kept);
    suppressed =
      List.sort
        (fun (a, _) (b, _) -> Rule.compare_finding a b)
        !suppressed;
  }

let has_errors (t : Report.summary) =
  List.exists (fun (f : Rule.finding) -> f.Rule.sev = Rule.Error) t.Report.findings

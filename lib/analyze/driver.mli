(** pmlint driver: collect files, parse, run every rule, apply
    suppressions, and fold the results into one {!Report.summary}.

    Unparseable files become [parse-error] findings (pmlint never
    silently skips a file — a file the analyzer cannot see is a hole in
    the gate). Suppressions are scanned per file and cover same-line and
    next-line findings of the named rules; malformed allows surface as
    [bad-suppress] findings and suppress nothing. *)

val default_rules : Rule.t list
(** R1–R5, report order. *)

val rule_ids : Rule.t list -> string list

val run : ?rules:Rule.t list -> string list -> Report.summary
(** [run paths]: each path is a [.ml] file or a directory walked
    recursively for [*.ml]. *)

val has_errors : Report.summary -> bool
(** Any unsuppressed finding of severity [Error] (the CI gate). *)

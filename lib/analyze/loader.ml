type t = { path : string; source : string; ast : Parsetree.structure }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | source -> (
      let lexbuf = Lexing.from_string source in
      Location.init lexbuf path;
      match Parse.implementation lexbuf with
      | ast -> Ok { path; source; ast }
      | exception exn ->
          let detail =
            match Location.error_of_exn exn with
            | Some (`Ok _) | Some `Already_displayed -> "syntax error"
            | None -> Printexc.to_string exn
          in
          Error (Printf.sprintf "parse error: %s" detail))

let is_ml path = Filename.check_suffix path ".ml"

let rec walk_dir dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
          then acc
          else
            let path = Filename.concat dir entry in
            if Sys.is_directory path then walk_dir path acc
            else if is_ml path then path :: acc
            else acc)
        acc entries

let collect args =
  let files =
    List.concat_map
      (fun arg ->
        if Sys.file_exists arg && Sys.is_directory arg then walk_dir arg []
        else [ arg ])
      args
  in
  List.sort_uniq compare files

(** Parse OCaml implementation files for analysis.

    Uses the compiler's own parser ([compiler-libs]); pmlint therefore
    sees exactly the AST the build sees, not a regex approximation of
    it. Only [.ml] files are analysed — interfaces carry no behaviour. *)

type t = {
  path : string;
  source : string;  (** raw bytes, for the suppression scanner *)
  ast : Parsetree.structure;
}

val load : string -> (t, string) result
(** Read and parse one file. [Error msg] on I/O or syntax errors —
    pmlint reports those as findings rather than aborting the run. *)

val collect : string list -> string list
(** Expand the argument list into the files to analyse: a [.ml] path is
    kept as-is, a directory is walked recursively for [*.ml] (skipping
    [_build] and dot-directories). Sorted, duplicates removed. *)

type summary = {
  files : int;
  findings : Rule.finding list;
  suppressed : (Rule.finding * string) list;
}

let pp_finding ppf (f : Rule.finding) =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.Rule.file f.Rule.line f.Rule.col
    f.Rule.rule f.Rule.msg

let pp_text ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) t.findings;
  Format.fprintf ppf "pmlint: %d unsuppressed finding(s), %d suppressed, %d file(s)@."
    (List.length t.findings)
    (List.length t.suppressed)
    t.files

let json_of_finding ?reason (f : Rule.finding) =
  let base =
    [
      ("file", Obs.Json.String f.Rule.file);
      ("line", Obs.Json.Int f.Rule.line);
      ("col", Obs.Json.Int f.Rule.col);
      ("rule", Obs.Json.String f.Rule.rule);
      ("severity", Obs.Json.String (Rule.severity_name f.Rule.sev));
      ("message", Obs.Json.String f.Rule.msg);
    ]
  in
  Obs.Json.Obj
    (match reason with
    | None -> base
    | Some r -> base @ [ ("reason", Obs.Json.String r) ])

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Int 1);
      ("tool", Obs.Json.String "pmlint");
      ("files", Obs.Json.Int t.files);
      ("unsuppressed", Obs.Json.Int (List.length t.findings));
      ("suppressed", Obs.Json.Int (List.length t.suppressed));
      ( "findings",
        Obs.Json.List (List.map (fun f -> json_of_finding f) t.findings) );
      ( "suppressions",
        Obs.Json.List
          (List.map (fun (f, reason) -> json_of_finding ~reason f) t.suppressed)
      );
    ]

let write_json path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Obs.Json.to_string (to_json t) ^ "\n"))

(** pmlint reporters: a human [file:line:col] listing and a JSON
    artifact mirroring it (schema 1), built on the obs layer's
    hand-rolled codec. *)

type summary = {
  files : int;
  findings : Rule.finding list;  (** unsuppressed, report order *)
  suppressed : (Rule.finding * string) list;  (** finding, reason *)
}

val pp_text : Format.formatter -> summary -> unit
(** One line per unsuppressed finding plus a closing tally. *)

val to_json : summary -> Obs.Json.t
val write_json : string -> summary -> unit

type severity = Error | Warning

type finding = {
  rule : string;
  sev : severity;
  file : string;
  line : int;
  col : int;
  msg : string;
}

type file_ctx = { path : string; ast : Parsetree.structure }

type t = {
  id : string;
  doc : string;
  sev : severity;
  file_pass : file_ctx -> finding list;
  global_pass : file_ctx list -> finding list;
}

let make ~id ~doc ?(sev = Error) ?(global_pass = fun _ -> []) file_pass =
  { id; doc; sev; file_pass; global_pass }

let finding ~rule ?(sev = Error) ~file loc msg =
  let p = loc.Location.loc_start in
  {
    rule;
    sev;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    msg;
  }

let severity_name = function Error -> "error" | Warning -> "warning"

let compare_finding a b =
  match compare a.file b.file with
  | 0 -> (
      match compare a.line b.line with
      | 0 -> (
          match compare a.col b.col with 0 -> compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

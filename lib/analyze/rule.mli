(** pmlint rule framework.

    A rule inspects parsed OCaml sources and emits {!finding}s — one per
    violation, anchored to a file/line/column. Rules are purely syntactic
    and intraprocedural (plus per-file local-function summaries): they are
    the *static screen* in front of the dynamic sanitizers — pmsan proves
    an execution obeyed the persistence protocol, pmlint proves the source
    cannot express the common ways of breaking it. *)

type severity = Error | Warning

type finding = {
  rule : string;  (** the rule id, e.g. ["flush-before-commit"] *)
  sev : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  msg : string;
}

type file_ctx = { path : string; ast : Parsetree.structure }
(** One successfully parsed compilation unit. [path] is as given on the
    command line (rules match on subpaths like ["shard/"]). *)

type t = {
  id : string;
  doc : string;  (** one-line description for [--list-rules] *)
  sev : severity;
  file_pass : file_ctx -> finding list;
  global_pass : file_ctx list -> finding list;
      (** Cross-file pass over every parsed unit (e.g. duplicate metric
          names); runs once after all file passes. *)
}

val make :
  id:string ->
  doc:string ->
  ?sev:severity ->
  ?global_pass:(file_ctx list -> finding list) ->
  (file_ctx -> finding list) ->
  t
(** [sev] defaults to [Error]; [global_pass] defaults to none. *)

val finding :
  rule:string -> ?sev:severity -> file:string -> Location.t -> string -> finding
(** Build a finding anchored at the start of [Location.t]. *)

val severity_name : severity -> string
val compare_finding : finding -> finding -> int
(** Order by file, line, column, rule — the report order. *)

let id = "checked-path"

(* Raw engine entry points with a checked counterpart: reads/scans have
   Engine.get_checked / scan_range_checked, writes have the router's
   breaker+deadline-gated apply path. *)
let raw_ops = [ "get"; "put"; "delete"; "scan_range" ]

let in_scope path =
  let norm = String.map (fun c -> if c = '\\' then '/' else c) path in
  let has_sub sub =
    let n = String.length norm and m = String.length sub in
    let rec go i = i + m <= n && (String.sub norm i m = sub || go (i + 1)) in
    go 0
  in
  has_sub "shard/" || has_sub "health/"

let file_pass (ctx : Rule.file_ctx) =
  if not (in_scope ctx.Rule.path) then []
  else begin
    let out = ref [] in
    Ast_util.iter_expressions ctx.Rule.ast (fun e ->
        match Ast_util.path_of e with
        | Some path ->
            List.iter
              (fun op ->
                if Ast_util.ends_with ~suffix:[ "Engine"; op ] path then
                  out :=
                    Rule.finding ~rule:id ~file:ctx.Rule.path e.Parsetree.pexp_loc
                      (Printf.sprintf
                         "raw Engine.%s bypasses the breaker/deadline gating — \
                          use the checked path (%s_checked or the gated \
                          dispatch helpers)"
                         op op)
                    :: !out)
              raw_ops
        | None -> ());
    List.sort Rule.compare_finding !out
  end

let rule =
  Rule.make ~id
    ~doc:
      "lib/shard and lib/health must route engine reads/writes through the \
       breaker-gated checked paths, not raw Engine.get/put/delete/scan_range"
    file_pass

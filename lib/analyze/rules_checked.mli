(** R2 [checked-path]: the health-aware front door (lib/shard, lib/health)
    must not reach around its own gating. Raw [Core.Engine.get / put /
    delete / scan_range] calls in those modules bypass the circuit
    breakers, deadline budgets and degraded fallbacks that PR 8 put in
    front of every engine touch — use the [_checked] variants (or the
    breaker-gated dispatch helpers), or carry an explicit allow with the
    reason the bypass is safe. *)

val rule : Rule.t
val id : string

open Parsetree

let id = "metric-hygiene"

let register_fns = [ "register_int"; "register_float"; "register_histogram" ]

let is_register_head e =
  match Ast_util.path_of e with
  | Some path -> (
      match Ast_util.last path with
      | Some n -> List.mem n register_fns
      | None -> false)
  | None -> false

(* The registry module defines the registration functions. *)
let exempt path = Filename.basename path = "registry.ml"

type site = {
  site_loc : Location.t;
  site_file : string;
  (* [Some (None, name)]: literal name; [Some (Some helper, lit)]: name
     built as [helper "lit"] (prefix-scoped, comparable within a file);
     [None]: dynamic, not checkable. *)
  site_name : (string option * string) option;
  site_help : [ `Missing | `Empty | `Ok ];
}

let classify_app args =
  let help =
    match
      List.find_map
        (fun (lbl, a) ->
          match lbl with
          | Asttypes.Labelled "help" | Asttypes.Optional "help" -> Some a
          | _ -> None)
        args
    with
    | None -> `Missing
    | Some { pexp_desc = Pexp_constant (Pconst_string ("", _, _)); _ } -> `Empty
    | Some _ -> `Ok
  in
  let name =
    List.find_map
      (fun (lbl, a) ->
        if lbl <> Asttypes.Nolabel then None
        else
          match a.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) -> Some (None, s)
          | Pexp_apply
              ( h,
                [ (Asttypes.Nolabel,
                   { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ })
                ] ) -> (
              match Ast_util.path_of h with
              | Some p ->
                  Option.map (fun n -> (Some n, s)) (Ast_util.last p)
              | None -> None)
          | _ -> None)
      args
  in
  (name, help)

(* Collect registration sites and whether each is lexically inside a
   function body (module-init = not inside any [fun]/[function]). *)
let sites_of (ctx : Rule.file_ctx) =
  let apps = ref [] in
  Ast_util.iter_expressions ctx.Rule.ast (fun e ->
      match e.pexp_desc with
      | Pexp_apply (head, args) when is_register_head head ->
          let name, help = classify_app args in
          apps :=
            ( e.pexp_loc,
              {
                site_loc = e.pexp_loc;
                site_file = ctx.Rule.path;
                site_name = name;
                site_help = help;
              } )
            :: !apps
      | _ -> ());
  let inside_fun = Hashtbl.create 16 in
  Ast_util.iter_expressions ctx.Rule.ast (fun e ->
      let body_exprs body =
        Ast_util.iter_expressions
          [ { pstr_desc = Pstr_eval (body, []); pstr_loc = body.pexp_loc } ]
      in
      let mark body =
        body_exprs body (fun sub ->
            match sub.pexp_desc with
            | Pexp_apply (head, _) when is_register_head head ->
                Hashtbl.replace inside_fun sub.pexp_loc ()
            | _ -> ())
      in
      match e.pexp_desc with
      | Pexp_fun (_, _, _, body) -> mark body
      | Pexp_function cases -> List.iter (fun c -> mark c.pc_rhs) cases
      | _ -> ());
  List.rev_map
    (fun (loc, site) -> (site, Hashtbl.mem inside_fun loc))
    !apps

let file_pass (ctx : Rule.file_ctx) =
  if exempt ctx.Rule.path then []
  else begin
    let out = ref [] in
    let emit loc msg =
      out := Rule.finding ~rule:id ~file:ctx.Rule.path loc msg :: !out
    in
    let sites = sites_of ctx in
    List.iter
      (fun (s, in_fun) ->
        if not in_fun then
          emit s.site_loc
            "metric registered as a module-init side effect — registries are \
             per-engine; do this inside a register_metrics function";
        (match s.site_help with
        | `Missing ->
            emit s.site_loc
              "metric registered without ~help — the Prometheus/JSON exports \
               need a HELP line"
        | `Empty -> emit s.site_loc "metric registered with an empty ~help"
        | `Ok -> ()))
      sites;
    (* same helper-built name twice in this file = duplicate under any
       prefix *)
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (s, _) ->
        match s.site_name with
        | Some ((Some _, _) as key) -> (
            match Hashtbl.find_opt seen key with
            | Some (first : Location.t) ->
                emit s.site_loc
                  (Printf.sprintf
                     "duplicate metric name (same helper and literal as line \
                      %d) — the second registration shadows the first in the \
                      exports"
                     first.Location.loc_start.Lexing.pos_lnum)
            | None -> Hashtbl.add seen key s.site_loc)
        | _ -> ())
      sites;
    List.sort Rule.compare_finding !out
  end

(* Cross-file pass: two string-literal registrations of the same dotted
   name anywhere in the tree. *)
let global_pass (ctxs : Rule.file_ctx list) =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun ctx ->
      if not (exempt ctx.Rule.path) then
        List.iter
          (fun (s, _) ->
            match s.site_name with
            | Some (None, name) ->
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt by_name name)
                in
                Hashtbl.replace by_name name (s :: prev)
            | _ -> ())
          (sites_of ctx))
    ctxs;
  Hashtbl.fold
    (fun name sites acc ->
      match List.rev sites with
      | first :: (_ :: _ as dups) ->
          List.fold_left
            (fun acc s ->
              Rule.finding ~rule:id ~file:s.site_file s.site_loc
                (Printf.sprintf
                   "duplicate metric name %S — already registered at %s:%d" name
                   first.site_file
                   first.site_loc.Location.loc_start.Lexing.pos_lnum)
              :: acc)
            acc dups
      | _ -> acc)
    by_name []
  |> List.sort Rule.compare_finding

let rule =
  Rule.make ~id
    ~doc:
      "metric registrations live in register functions, carry a non-empty \
       ~help, and never duplicate a name already in the registry"
    ~global_pass file_pass

(** R4 [metric-hygiene]: AST-level checks on [Registry.register_int /
    _float / _histogram] call sites across lib/.

    Three checks: (a) no registration as a module-init side effect — the
    registries are per-engine instances wired by [register_metrics]
    functions, and a link-time registration against some global would
    silently never be exported; (b) no duplicate metric names — two
    string-literal registrations of the same dotted name, or the same
    helper-built name twice in one file, shadow each other in the
    Prometheus/JSON exports; (c) every registration carries a [~help]
    that is not the empty literal (replaces lint.sh's line-window grep,
    which line wrapping could fool). *)

val rule : Rule.t
val id : string

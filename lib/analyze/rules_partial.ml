let id = "partial-accessor"

let verdict path =
  if Ast_util.ends_with ~suffix:[ "List"; "hd" ] path then
    Some "List.hd raises on []  — match on the list instead"
  else if Ast_util.ends_with ~suffix:[ "List"; "tl" ] path then
    Some "List.tl raises on [] — match on the list instead"
  else if Ast_util.ends_with ~suffix:[ "Option"; "get" ] path then
    Some "Option.get raises on None — match or provide a default instead"
  else
    match Ast_util.last path with
    | Some (("unsafe_get" | "unsafe_set") as op) when List.length path >= 2 ->
        Some (op ^ " skips bounds checks — use the checked accessor")
    | _ -> None

let file_pass (ctx : Rule.file_ctx) =
  let out = ref [] in
  Ast_util.iter_expressions ctx.Rule.ast (fun e ->
      match Ast_util.path_of e with
      | Some path -> (
          match verdict path with
          | Some msg ->
              out :=
                Rule.finding ~rule:id ~file:ctx.Rule.path e.Parsetree.pexp_loc
                  msg
                :: !out
          | None -> ())
      | None -> ());
  List.sort Rule.compare_finding !out

let rule =
  Rule.make ~id
    ~doc:
      "no List.hd / List.tl / Option.get / unsafe_get / unsafe_set anywhere \
       in lib/ (AST-precise, project-wide)"
    file_pass

(** R5 [partial-accessor]: no partial or unsafe accessors anywhere in
    lib/.

    [List.hd] / [List.tl] / [Option.get] raise on the empty case and
    [*.unsafe_get] / [*.unsafe_set] skip bounds checks — exception
    landmines and memory-unsafety a crash-consistency engine must not
    carry on any path, hot or cold. Precise AST matching on the
    identifier path (so comments, strings and line wrapping cannot fool
    it), project-wide — extending lint.sh rule 3's core/pmem/ssd grep to
    every lib/ module. *)

val rule : Rule.t
val id : string

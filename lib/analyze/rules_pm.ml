open Parsetree

let id = "flush-before-commit"

(* May-state: [dirty] = some PM write may be unflushed; [unfenced] = some
   flush may not have reached a drain yet. *)
type st = { dirty : bool; unfenced : bool }

let clean = { dirty = false; unfenced = false }
let join a b = { dirty = a.dirty || b.dirty; unfenced = a.unfenced || b.unfenced }

(* A local function's transfer: input state -> output state plus the
   findings that fire under that input. *)
type summary = st -> st * Rule.finding list

type env = (string * summary) list

let is_commit_sink path =
  Ast_util.ends_with ~suffix:[ "Pmem"; "commit_point" ] path
  || List.length path >= 2
     &&
     match Ast_util.last path with
     | Some ("seal" | "sync" | "sync_wal") -> true
     | _ -> false

let literal_string_arg args =
  List.find_map
    (fun (_, a) ->
      match a.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Some s
      | _ -> None)
    args

let rec eval ~file ~(emit : Rule.finding -> unit) (env : env) st e =
  let eval' = eval ~file ~emit in
  match e.pexp_desc with
  | Pexp_apply (head, args) -> eval_apply ~file ~emit env st head args
  | Pexp_sequence (a, b) ->
      let st = eval' env st a in
      eval' env st b
  | Pexp_let (rf, vbs, body) ->
      let env', st = eval_let ~file ~emit env st rf vbs in
      eval' env' st body
  | Pexp_ifthenelse (c, t, eo) ->
      let st = eval' env st c in
      let st_t = eval' env st t in
      let st_e = match eo with Some e2 -> eval' env st e2 | None -> st in
      join st_t st_e
  | Pexp_match (scrut, cases) ->
      let st0 = eval' env st scrut in
      eval_cases ~file ~emit env st0 cases
  | Pexp_try (body, cases) ->
      let st0 = eval' env st body in
      join st0 (eval_cases ~file ~emit env st0 cases)
  | Pexp_while (c, body) ->
      let once s = eval' env (eval' env s c) body in
      let s1 = once st in
      let s2 = once (join st s1) in
      join st (join s1 s2)
  | Pexp_for (_, e1, e2, _, body) ->
      let st = eval' env (eval' env st e1) e2 in
      let s1 = eval' env st body in
      let s2 = eval' env (join st s1) body in
      join st (join s1 s2)
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun s x -> eval' env s x) st es
  | Pexp_construct (_, Some e1) | Pexp_variant (_, Some e1) -> eval' env st e1
  | Pexp_record (fields, base) ->
      let st = match base with Some b -> eval' env st b | None -> st in
      List.fold_left (fun s (_, x) -> eval' env s x) st fields
  | Pexp_field (e1, _) -> eval' env st e1
  | Pexp_setfield (a, _, b) -> eval' env (eval' env st a) b
  | Pexp_constraint (e1, _)
  | Pexp_coerce (e1, _, _)
  | Pexp_assert e1
  | Pexp_lazy e1
  | Pexp_open (_, e1)
  | Pexp_newtype (_, e1)
  | Pexp_letexception (_, e1)
  | Pexp_letmodule (_, _, e1) ->
      eval' env st e1
  | _ -> st

and eval_cases ~file ~emit env st0 cases =
  match cases with
  | [] -> st0
  | first :: rest ->
      let case_state c =
        let s =
          match c.pc_guard with
          | Some g -> eval ~file ~emit env st0 g
          | None -> st0
        in
        eval ~file ~emit env s c.pc_rhs
      in
      List.fold_left (fun acc c -> join acc (case_state c)) (case_state first) rest

(* A lambda appearing as an argument is treated as run once, inline, at
   the application point — the [with_phase (fun () -> ...)] /
   [Fun.protect] idiom. *)
and eval_arg ~file ~emit env st a =
  match a.pexp_desc with
  | Pexp_fun _ -> eval ~file ~emit env st (Ast_util.strip_funs a)
  | Pexp_function cases -> eval_cases ~file ~emit env st cases
  | _ -> eval ~file ~emit env st a

and eval_apply ~file ~emit env st head args =
  let st = List.fold_left (fun s (_, a) -> eval_arg ~file ~emit env s a) st args in
  match Ast_util.path_of head with
  | Some path when Ast_util.ends_with ~suffix:[ "Pmem"; "write" ] path ->
      { st with dirty = true }
  | Some path when Ast_util.ends_with ~suffix:[ "Pmem"; "flush" ] path ->
      { dirty = false; unfenced = true }
  | Some path when Ast_util.ends_with ~suffix:[ "Pmem"; "drain" ] path ->
      { st with unfenced = false }
  | Some path when is_commit_sink path ->
      (if st.dirty || st.unfenced then
         let site =
           match literal_string_arg args with
           | Some s -> Printf.sprintf " %S" s
           | None -> ""
         in
         let what =
           if st.dirty then "an unflushed PM write (missing clwb on some path)"
           else "a flushed-but-unfenced PM write (missing drain on some path)"
         in
         emit
           (Rule.finding ~rule:id ~file head.pexp_loc
              (Printf.sprintf
                 "durability point%s is reachable with %s — flush+drain every \
                  PM write before committing"
                 site what)));
      clean
  | Some [ name ] -> (
      match List.assoc_opt name env with
      | Some summary ->
          let out, fs = summary st in
          List.iter emit fs;
          out
      | None -> st)
  | Some _ -> st
  | None -> eval ~file ~emit env st head

(* Bindings: function values get a summary in the environment; plain
   values are evaluated for their effects. [let rec]/[and] groups are
   pre-bound through mutable slots so recursion terminates (a recursive
   call is approximated as the identity transfer). *)
and eval_let ~file ~emit env st rf vbs =
  let is_fun vb = Ast_util.is_function vb.pvb_expr in
  let name_of vb =
    match vb.pvb_pat.ppat_desc with Ppat_var { txt; _ } -> Some txt | _ -> None
  in
  let funs, values = List.partition is_fun vbs in
  let st =
    List.fold_left (fun s vb -> eval ~file ~emit env s vb.pvb_expr) st values
  in
  let named =
    List.filter_map
      (fun vb -> Option.map (fun n -> (n, vb.pvb_expr)) (name_of vb))
      funs
  in
  let slots = List.map (fun (n, _) -> (n, ref (fun s -> (s, [])))) named in
  let env' =
    List.fold_left
      (fun acc (n, slot) -> (n, fun s -> !slot s) :: acc)
      env slots
  in
  let def_env = match rf with Asttypes.Recursive -> env' | Nonrecursive -> env in
  List.iter2
    (fun (_, body) (_, slot) ->
      slot := summarize ~file def_env (Ast_util.strip_funs body))
    named slots;
  (env', st)

and summarize ~file env body : summary =
  let memo = Hashtbl.create 4 in
  fun input ->
    match Hashtbl.find_opt memo input with
    | Some r -> r
    | None ->
        (* recursion cut: in-progress evaluation answers identity *)
        Hashtbl.add memo input (input, []);
        let fs = ref [] in
        let out = eval ~file ~emit:(fun f -> fs := f :: !fs) env input body in
        let r = (out, List.rev !fs) in
        Hashtbl.replace memo input r;
        r

let dedup findings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (f : Rule.finding) ->
      let key = (f.Rule.line, f.Rule.col, f.Rule.rule) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (List.sort Rule.compare_finding findings)

let file_pass (ctx : Rule.file_ctx) =
  (* The device module itself implements write/flush/drain — its
     unqualified internals are not protocol users. *)
  if Filename.basename ctx.Rule.path = "pmem.ml" then []
  else begin
    let out = ref [] in
    let emit f = out := f :: !out in
    let env = ref [] in
    let rec walk_items items = List.iter walk_item items
    and walk_item item =
      match item.pstr_desc with
      | Pstr_value (rf, vbs) ->
          let env', _st =
            eval_let ~file:ctx.Rule.path ~emit !env clean rf vbs
          in
          env := env';
          (* entry analysis: every top-level function, entered clean *)
          List.iter
            (fun vb ->
              match (vb.pvb_pat.ppat_desc, Ast_util.is_function vb.pvb_expr) with
              | Ppat_var { txt; _ }, true -> (
                  match List.assoc_opt txt !env with
                  | Some summary ->
                      let _, fs = summary clean in
                      List.iter emit fs
                  | None -> ())
              | _ -> ())
            vbs
      | Pstr_eval (e, _) ->
          ignore (eval ~file:ctx.Rule.path ~emit !env clean e)
      | Pstr_module { pmb_expr; _ } -> walk_module pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> walk_module mb.pmb_expr) mbs
      | _ -> ()
    and walk_module me =
      match me.pmod_desc with
      | Pmod_structure items -> walk_items items
      | Pmod_constraint (me, _) -> walk_module me
      | _ -> ()
    in
    walk_items ctx.Rule.ast;
    dedup !out
  end

let rule =
  Rule.make ~id
    ~doc:
      "a PM write can reach a durability point (Pmem.commit_point / seal / \
       sync) without an intervening flush+drain on some path"
    file_pass

(** R1 [flush-before-commit]: no path from a PM write to a durability
    point without an intervening flush + drain.

    The static complement of pmsan: pmsan proves a particular execution
    fenced every line it committed; this rule flags source where *some*
    path — a skipped conditional, an early return arm — lets a
    [Pmem.write] reach [Pmem.commit_point] (or a [seal]/[sync] call)
    still dirty or unfenced. Abstraction: two may-bits (unflushed write
    outstanding / flush not yet drained) threaded in evaluation order,
    joined at branches, with per-file summaries for locally-defined
    helper functions so [spill]/[flush_upto]-style decomposition is seen
    through. A flush is assumed to cover all outstanding writes (range
    reasoning is pmsan's job at runtime). *)

val rule : Rule.t
val id : string

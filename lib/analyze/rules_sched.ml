open Parsetree

let id = "suspend-in-critical-section"

(* Suspension points: the Co effects that can deschedule the task.
   [Co.now] resumes immediately and is not one. *)
let is_suspension path =
  List.mem "Co" path
  &&
  match Ast_util.last path with
  | Some ("yield" | "await" | "work" | "io" | "read" | "write" | "offload_write")
    ->
      true
  | _ -> false

let is_schedsan_lock path = Ast_util.ends_with ~suffix:[ "Schedsan"; "lock" ] path
let is_schedsan_unlock path =
  Ast_util.ends_with ~suffix:[ "Schedsan"; "unlock" ] path

(* Which locally-defined functions are lock/unlock wrappers? A wrapper
   calls exactly one side of the bracket — a function that both locks and
   unlocks is a balanced critical section of its own, not a wrapper, and
   its body is checked directly. *)
let wrapper_sets structure =
  let funs = Ast_util.toplevel_functions structure in
  let calls_in body pred =
    let found = ref false in
    let it =
      let open Ast_iterator in
      {
        default_iterator with
        expr =
          (fun it e ->
            (match Ast_util.path_of e with
            | Some p when pred p -> found := true
            | _ -> ());
            default_iterator.expr it e);
      }
    in
    it.expr it body;
    !found
  in
  let classify pred anti =
    List.filter_map
      (fun (name, body) ->
        if calls_in body pred && not (calls_in body anti) then Some name
        else None)
      funs
  in
  ( classify is_schedsan_lock is_schedsan_unlock,
    classify is_schedsan_unlock is_schedsan_lock )

let file_pass (ctx : Rule.file_ctx) =
  (* schedsan's own implementation is out of scope. *)
  if Filename.basename ctx.Rule.path = "schedsan.ml" then []
  else begin
    let locks, unlocks = wrapper_sets ctx.Rule.ast in
    if locks = [] then []
    else begin
      let out = ref [] in
      let emit loc =
        out :=
          Rule.finding ~rule:id ~file:ctx.Rule.path loc
            "possible suspension point inside a schedsan-locked critical \
             section — another task can enter the section at this yield"
          :: !out
      in
      (* Walk in evaluation order with a lock depth; branches join on the
         deepest arm (conservative). Lambda arguments run inline at the
         application point; let-bound local functions are walked at their
         definition as fresh depth-0 contexts. *)
      let rec walk depth e =
        match e.pexp_desc with
        | Pexp_apply (head, args) ->
            let depth =
              List.fold_left (fun d (_, a) -> walk_arg d a) depth args
            in
            let bump d = function
              | Some p when is_schedsan_lock p -> d + 1
              | Some p when is_schedsan_unlock p -> max 0 (d - 1)
              | Some [ n ] when List.mem n locks -> d + 1
              | Some [ n ] when List.mem n unlocks -> max 0 (d - 1)
              | Some p when is_suspension p ->
                  if d > 0 then emit head.pexp_loc;
                  d
              | _ -> d
            in
            bump depth (Ast_util.path_of head)
        | Pexp_sequence (a, b) -> walk (walk depth a) b
        | Pexp_let (_, vbs, body) ->
            let depth =
              List.fold_left
                (fun d vb ->
                  if Ast_util.is_function vb.pvb_expr then begin
                    ignore (walk 0 (Ast_util.strip_funs vb.pvb_expr));
                    d
                  end
                  else walk d vb.pvb_expr)
                depth vbs
            in
            walk depth body
        | Pexp_ifthenelse (c, t, eo) ->
            let d = walk depth c in
            let dt = walk d t in
            let de = match eo with Some e2 -> walk d e2 | None -> d in
            max dt de
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
            let d = walk depth scrut in
            List.fold_left
              (fun acc c ->
                let dg = match c.pc_guard with Some g -> walk d g | None -> d in
                max acc (walk dg c.pc_rhs))
              d cases
        | Pexp_while (c, body) -> walk (walk depth c) body
        | Pexp_for (_, e1, e2, _, body) -> walk (walk (walk depth e1) e2) body
        | Pexp_tuple es | Pexp_array es -> List.fold_left walk depth es
        | Pexp_construct (_, Some e1) | Pexp_variant (_, Some e1) ->
            walk depth e1
        | Pexp_record (fields, base) ->
            let d = match base with Some b -> walk depth b | None -> depth in
            List.fold_left (fun d (_, x) -> walk d x) d fields
        | Pexp_field (e1, _) -> walk depth e1
        | Pexp_setfield (a, _, b) -> walk (walk depth a) b
        | Pexp_constraint (e1, _)
        | Pexp_coerce (e1, _, _)
        | Pexp_assert e1
        | Pexp_lazy e1
        | Pexp_open (_, e1)
        | Pexp_newtype (_, e1)
        | Pexp_letexception (_, e1)
        | Pexp_letmodule (_, _, e1) ->
            walk depth e1
        | Pexp_fun _ | Pexp_function _ ->
            (* a lambda not in argument position: analyse separately *)
            walk_lambda e;
            depth
        | _ -> depth
      and walk_arg depth a =
        match a.pexp_desc with
        | Pexp_fun _ -> walk depth (Ast_util.strip_funs a)
        | Pexp_function cases ->
            List.fold_left (fun acc c -> max acc (walk depth c.pc_rhs)) depth cases
        | _ -> walk depth a
      and walk_lambda e =
        match e.pexp_desc with
        | Pexp_fun _ -> ignore (walk 0 (Ast_util.strip_funs e))
        | Pexp_function cases ->
            List.iter (fun c -> ignore (walk 0 c.pc_rhs)) cases
        | _ -> ()
      in
      List.iter
        (fun (_, body) -> ignore (walk 0 body))
        (Ast_util.toplevel_functions ctx.Rule.ast);
      List.sort Rule.compare_finding !out
    end
  end

let rule =
  Rule.make ~id
    ~doc:
      "no Co.yield / latch await / blocking I/O between schedsan-annotated \
       lock acquire and release (static lost-wakeup/race screen)"
    file_pass

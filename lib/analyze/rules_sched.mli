(** R3 [suspend-in-critical-section]: code between a schedsan-annotated
    lock acquire and its release must not suspend.

    Group commit's leader/follower handoff mutates shared batch state
    under named [Schedsan.lock]/[unlock] brackets; a [Co.yield] /
    [Co.await] / blocking I/O effect inside such a bracket hands the
    scheduler an interleaving where another task enters the section —
    the static shape of the lost-wakeup/race bugs schedsan catches
    dynamically. Local wrappers are seen through: any function in the
    file that (transitively) calls [Schedsan.lock] counts as a lock
    acquire, ditto unlock. *)

val rule : Rule.t
val id : string

(* Covers findings from the marker line through the line after the
   comment closes, so a wrapped allow comment still reaches the
   expression below it. *)
type suppression = {
  s_line : int;
  s_end : int;  (** last covered line *)
  s_rules : string list;
  s_reason : string;
}

type t = suppression list

let bad_suppress_rule = "bad-suppress"

(* Built by concatenation so this file's own source does not contain the
   marker and trip the scanner when pmlint analyses itself. *)
let marker = "pmlint:" ^ "allow"

let trim = String.trim

let split_on_char_map c f s = List.map f (String.split_on_char c s)

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some i
    else go (i + 1)
  in
  go 0

let mk_finding ~path ~line msg =
  {
    Rule.rule = bad_suppress_rule;
    sev = Rule.Error;
    file = path;
    line;
    col = 0;
    msg;
  }

(* One line's allow clause: everything between the marker and the comment
   close (or end of line). *)
let parse_line ~path ~known_rules ~line_no line =
  match find_sub line marker with
  | None -> None
  | Some i -> (
      let rest = String.sub line (i + String.length marker)
                   (String.length line - i - String.length marker) in
      let closed_here, rest =
        match find_sub rest "*)" with
        | Some j -> (true, String.sub rest 0 j)
        | None -> (false, rest)
      in
      match String.index_opt rest ':' with
      | None ->
          Some
            (Error
               (mk_finding ~path ~line:line_no
                  (Printf.sprintf
                     "%s needs a reason: '(* %s <rule>: <why> *)'" marker
                     marker)))
      | Some colon ->
          let ids_part = String.sub rest 0 colon in
          let reason =
            trim
              (String.sub rest (colon + 1) (String.length rest - colon - 1))
          in
          let ids =
            split_on_char_map ',' trim ids_part |> List.filter (( <> ) "")
          in
          let unknown =
            List.filter (fun id -> not (List.mem id known_rules)) ids
          in
          if reason = "" then
            Some
              (Error
                 (mk_finding ~path ~line:line_no
                    (Printf.sprintf "%s has an empty reason" marker)))
          else if ids = [] then
            Some
              (Error
                 (mk_finding ~path ~line:line_no
                    (Printf.sprintf "%s names no rule" marker)))
          else if unknown <> [] then
            Some
              (Error
                 (mk_finding ~path ~line:line_no
                    (Printf.sprintf "%s names unknown rule(s): %s" marker
                       (String.concat ", " unknown))))
          else
            Some
              (Ok
                 ( { s_line = line_no; s_end = line_no + 1; s_rules = ids;
                     s_reason = reason },
                   closed_here )))

let scan ~path ~known_rules source =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let n = Array.length lines in
  (* first line (0-based) at or after [i] whose text closes a comment *)
  let close_after i =
    let rec go j =
      if j >= n then i
      else match find_sub lines.(j) "*)" with Some _ -> j | None -> go (j + 1)
    in
    go i
  in
  let sups = ref [] and bad = ref [] in
  Array.iteri
    (fun i line ->
      match parse_line ~path ~known_rules ~line_no:(i + 1) line with
      | None -> ()
      | Some (Ok (s, closed_here)) ->
          let s =
            if closed_here then s
            else { s with s_end = close_after (i + 1) + 2 }
          in
          sups := s :: !sups
      | Some (Error f) -> bad := f :: !bad)
    lines;
  (List.rev !sups, List.rev !bad)

let covers t (f : Rule.finding) =
  let matching =
    List.find_opt
      (fun s ->
        f.Rule.line >= s.s_line && f.Rule.line <= s.s_end
        && List.mem f.Rule.rule s.s_rules)
      t
  in
  Option.map (fun s -> s.s_reason) matching

(** Inline finding suppressions.

    Syntax, inside any comment, on one line:

    {v (* pmlint:allow <rule-id>[,<rule-id>...]: <reason> *) v}

    The reason is mandatory (and must start on the marker line) — an
    allow without one is itself a finding and suppresses nothing, so the
    tree cannot accumulate unexplained exemptions. A suppression covers
    findings of the listed rules from the marker line through the line
    after the comment closes: it can trail the offending expression or
    sit above it, wrapped over several lines. *)

type t
(** The suppressions scanned from one file. *)

val scan : path:string -> known_rules:string list -> string -> t * Rule.finding list
(** [scan ~path ~known_rules source] extracts suppressions from the raw
    source. The returned findings (rule ["bad-suppress"]) flag allows
    with a missing/empty reason or an unknown rule id; malformed allows
    are not applied. *)

val covers : t -> Rule.finding -> string option
(** [Some reason] when the finding is suppressed. *)

val bad_suppress_rule : string
(** The rule id used for malformed-suppression findings. *)

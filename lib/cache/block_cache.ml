(* Shared DRAM block cache: sharded, strictly capacity-bounded LRU.

   One cache serves every SSTable of an engine (the per-table unbounded
   arrays it replaces could grow past any DRAM budget). Entries are keyed
   by (file_id, block index) and charged their payload size plus a fixed
   bookkeeping overhead; an insert that would overflow a shard evicts from
   its LRU tail *before* admitting, so the resident total never exceeds
   the configured capacity — not even transiently.

   Sharding bounds the cost of the LRU list operations and mirrors how a
   concurrent cache would partition its locks; the shard of a block is a
   hash of its key, so one hot file spreads across shards. Hits charge
   DRAM latency to the virtual clock (fixed access cost plus a per-byte
   stream term), keeping the simulated read path honest about where bytes
   were served from. *)

type node = {
  n_file : int;
  n_block : int;
  n_data : string;
  n_charge : int;
  mutable prev : node;  (* toward MRU; cyclic through the sentinel *)
  mutable next : node;  (* toward LRU *)
}

type shard = {
  tbl : (int * int, node) Hashtbl.t;
  sentinel : node;  (* sentinel.next = MRU head, sentinel.prev = LRU tail *)
  mutable used : int;
  s_capacity : int;
}

type t = {
  shards : shard array;
  capacity : int;
  clock : Sim.Clock.t option;
  dram_access_ns : float;
  dram_byte_ns : float;
  mutable hits : int;
  mutable misses : int;
  mutable admissions : int;
  mutable evictions : int;
  mutable rejections : int;   (* blocks larger than a whole shard *)
  mutable invalidations : int;
}

(* Hashtbl slot + node + key tuple bookkeeping, approximated. *)
let node_overhead = 64

let default_shards = 8
let dram_access_ns_default = 100.0
let dram_byte_ns_default = 0.05

let make_shard s_capacity =
  let rec sentinel =
    { n_file = -1; n_block = -1; n_data = ""; n_charge = 0; prev = sentinel; next = sentinel }
  in
  { tbl = Hashtbl.create 64; sentinel; used = 0; s_capacity }

let create ?(shards = default_shards) ?(dram_access_ns = dram_access_ns_default)
    ?(dram_byte_ns = dram_byte_ns_default) ?clock ~capacity_bytes () =
  if capacity_bytes <= 0 then invalid_arg "Block_cache.create: capacity must be positive";
  let shards = max 1 shards in
  let per_shard = max 1 (capacity_bytes / shards) in
  {
    shards = Array.init shards (fun _ -> make_shard per_shard);
    capacity = per_shard * shards;
    clock;
    dram_access_ns;
    dram_byte_ns;
    hits = 0;
    misses = 0;
    admissions = 0;
    evictions = 0;
    rejections = 0;
    invalidations = 0;
  }

let capacity_bytes t = t.capacity
let resident_bytes t = Array.fold_left (fun acc s -> acc + s.used) 0 t.shards
let resident_blocks t = Array.fold_left (fun acc s -> acc + Hashtbl.length s.tbl) 0 t.shards

let hits t = t.hits
let misses t = t.misses
let admissions t = t.admissions
let evictions t = t.evictions
let rejections t = t.rejections
let invalidations t = t.invalidations

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

(* Hash the key well enough that consecutive blocks of one file spread
   across shards (a hot file must not serialise on one LRU list). *)
let shard_of t ~file_id ~block =
  let h = Hashtbl.hash (file_id, block) in
  t.shards.(h mod Array.length t.shards)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front s n =
  n.next <- s.sentinel.next;
  n.prev <- s.sentinel;
  s.sentinel.next.prev <- n;
  s.sentinel.next <- n

let remove_node s n =
  unlink n;
  Hashtbl.remove s.tbl (n.n_file, n.n_block);
  s.used <- s.used - n.n_charge

let charge_of data = String.length data + node_overhead

let find t ~file_id ~block =
  let s = shard_of t ~file_id ~block in
  match Hashtbl.find_opt s.tbl (file_id, block) with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink n;
      push_front s n;
      (match t.clock with
      | Some clock ->
          let dt =
            t.dram_access_ns +. (float_of_int (String.length n.n_data) *. t.dram_byte_ns)
          in
          Sim.Clock.advance clock dt;
          Obs.Attr.charge Obs.Attr.Cache_hit dt
      | None -> ());
      Some n.n_data
  | None ->
      t.misses <- t.misses + 1;
      Obs.Attr.charge Obs.Attr.Cache_miss 0.0;
      None

let insert t ~file_id ~block data =
  let s = shard_of t ~file_id ~block in
  let charge = charge_of data in
  if charge > s.s_capacity then t.rejections <- t.rejections + 1
  else begin
    (match Hashtbl.find_opt s.tbl (file_id, block) with
    | Some old -> remove_node s old
    | None -> ());
    (* Evict before admitting: the bound holds at every instant. *)
    while s.used + charge > s.s_capacity && s.sentinel.prev != s.sentinel do
      remove_node s s.sentinel.prev;
      t.evictions <- t.evictions + 1
    done;
    let rec n =
      { n_file = file_id; n_block = block; n_data = data; n_charge = charge; prev = n; next = n }
    in
    push_front s n;
    Hashtbl.replace s.tbl (file_id, block) n;
    s.used <- s.used + charge;
    t.admissions <- t.admissions + 1
  end

let mem t ~file_id ~block =
  let s = shard_of t ~file_id ~block in
  Hashtbl.mem s.tbl (file_id, block)

(* Bytes resident for one file — O(resident blocks); used by invalidation
   tests and forensics, never on the per-get path. *)
let file_resident_bytes t ~file_id =
  Array.fold_left
    (fun acc s ->
      Hashtbl.fold
        (fun (f, _) n acc -> if f = file_id then acc + n.n_charge else acc)
        s.tbl acc)
    0 t.shards

(* Drop every block of [file_id]: called when a table is deleted,
   quarantined or salvage-rewritten, so stale bytes can never be served
   for a structure that left the read path. O(resident blocks), and those
   events are rare. *)
let invalidate_file t ~file_id =
  Array.iter
    (fun s ->
      let victims =
        Hashtbl.fold (fun (f, _) n acc -> if f = file_id then n :: acc else acc) s.tbl []
      in
      List.iter
        (fun n ->
          remove_node s n;
          t.invalidations <- t.invalidations + 1)
        victims)
    t.shards

let clear t =
  Array.iter
    (fun s ->
      Hashtbl.reset s.tbl;
      s.sentinel.prev <- s.sentinel;
      s.sentinel.next <- s.sentinel;
      s.used <- 0)
    t.shards

let register_metrics reg ?(prefix = "cache") t =
  let open Obs.Registry in
  let name n = prefix ^ "." ^ n in
  register_int reg (name "hits") ~help:"block reads served from DRAM" (fun () -> t.hits);
  register_int reg (name "misses") ~help:"block reads that went to the device" (fun () ->
      t.misses);
  register_int reg (name "admissions") ~help:"blocks admitted after a miss" (fun () ->
      t.admissions);
  register_int reg (name "evictions") ~help:"blocks evicted to honour the capacity bound"
    (fun () -> t.evictions);
  register_int reg (name "rejections") ~help:"blocks larger than a whole shard, never admitted"
    (fun () -> t.rejections);
  register_int reg (name "invalidations")
    ~help:"blocks dropped because their table was deleted/quarantined/salvaged" (fun () ->
      t.invalidations);
  register_int reg (name "resident_bytes") ~kind:Gauge ~help:"bytes currently cached"
    (fun () -> resident_bytes t);
  register_int reg (name "resident_blocks") ~kind:Gauge ~help:"blocks currently cached"
    (fun () -> resident_blocks t);
  register_int reg (name "capacity_bytes") ~kind:Gauge ~help:"configured cache capacity"
    (fun () -> t.capacity);
  register_float reg (name "hit_ratio") ~help:"fraction of block reads served from DRAM"
    (fun () -> hit_ratio t)

(** Shared DRAM block cache: sharded, strictly capacity-bounded LRU.

    One instance is shared by every SSTable of an engine. Entries are keyed
    by [(file_id, block)] and charged payload size plus a fixed bookkeeping
    overhead; eviction happens {e before} admission, so [resident_bytes]
    never exceeds [capacity_bytes], not even transiently. Hits charge DRAM
    read latency to the simulation clock. *)

type t

val create :
  ?shards:int ->
  ?dram_access_ns:float ->
  ?dram_byte_ns:float ->
  ?clock:Sim.Clock.t ->
  capacity_bytes:int ->
  unit ->
  t
(** [shards] defaults to 8; each shard owns [capacity_bytes / shards] and
    runs its own LRU list. Raises [Invalid_argument] if
    [capacity_bytes <= 0]. *)

val find : t -> file_id:int -> block:int -> string option
(** LRU-promotes on hit and charges [dram_access_ns + len * dram_byte_ns]
    to the clock (if any); counts a miss otherwise. *)

val insert : t -> file_id:int -> block:int -> string -> unit
(** Admits the block, evicting from the shard's LRU tail first so the
    capacity bound holds at every instant. A block larger than a whole
    shard is rejected (counted, never admitted). Re-inserting an existing
    key replaces it. *)

val mem : t -> file_id:int -> block:int -> bool
(** Presence test without LRU promotion, clock charge or counter update. *)

val invalidate_file : t -> file_id:int -> unit
(** Drop every resident block of [file_id] — used when a table is deleted,
    quarantined or salvage-rewritten so stale bytes can never be served. *)

val clear : t -> unit

val capacity_bytes : t -> int
val resident_bytes : t -> int
val resident_blocks : t -> int
val file_resident_bytes : t -> file_id:int -> int
(** O(resident blocks); for tests and forensics, not the hot path. *)

val hits : t -> int
val misses : t -> int
val admissions : t -> int
val evictions : t -> int
val rejections : t -> int
val invalidations : t -> int
val hit_ratio : t -> float

val register_metrics : Obs.Registry.t -> ?prefix:string -> t -> unit
(** Registers [prefix.hits], [prefix.misses], [prefix.admissions],
    [prefix.evictions], [prefix.rejections], [prefix.invalidations],
    [prefix.resident_bytes], [prefix.resident_blocks],
    [prefix.capacity_bytes] and [prefix.hit_ratio]. [prefix] defaults to
    ["cache"]. *)

(* K-way merge of sorted entry runs with version shadowing.

   Inputs are lists sorted by Kv.compare_entry (key asc, seq desc); runs are
   merged newest-version-first, older versions of a key are dropped, and
   tombstones are dropped only when [drop_tombstones] says the output lands
   at the bottom of the tree. Merge CPU is charged to the virtual clock per
   entry and per byte, matching the S2 model of the scheduling
   experiments. *)

type stats = {
  input_entries : int;
  output_entries : int;
  dropped_versions : int;    (* shadowed versions removed *)
  dropped_tombstones : int;
}

let cpu_per_entry_ns = 150.0
let cpu_per_byte_ns = 1.0

module Heap = struct
  (* Binary min-heap of (entry, run id, rest-of-run). Run id breaks ties so
     the merge is stable; inputs must already place newer versions first
     within a run. *)
  type item = Util.Kv.entry * int * Util.Kv.entry list

  let compare_item (e1, r1, _) (e2, r2, _) =
    let c = Util.Kv.compare_entry e1 e2 in
    if c <> 0 then c else compare r1 r2

  type t = { mutable data : item array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let push h item =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (max 8 (2 * h.size)) item in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- item;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      compare_item h.data.(!i) h.data.(parent) < 0
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(!i) in
      h.data.(!i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && compare_item h.data.(l) h.data.(!smallest) < 0 then smallest := l;
        if r < h.size && compare_item h.data.(r) h.data.(!smallest) < 0 then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let merge ?(drop_tombstones = false) ~clock runs =
  let t0 = Sim.Clock.now clock in
  let heap = Heap.create () in
  List.iteri
    (fun run_id entries ->
      match entries with e :: rest -> Heap.push heap (e, run_id, rest) | [] -> ())
    runs;
  let out = ref [] in
  let input_entries = ref 0 in
  let dropped_versions = ref 0 in
  let dropped_tombstones = ref 0 in
  let bytes = ref 0 in
  let last_key = ref None in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (e, run_id, rest) ->
        incr input_entries;
        bytes := !bytes + Util.Kv.encoded_size e;
        (match rest with
        | next :: rest' -> Heap.push heap (next, run_id, rest')
        | [] -> ());
        (match !last_key with
        | Some k when k = e.Util.Kv.key -> incr dropped_versions
        | _ ->
            last_key := Some e.key;
            if drop_tombstones && e.kind = Util.Kv.Delete then incr dropped_tombstones
            else out := e :: !out);
        drain ()
  in
  drain ();
  Sim.Clock.advance clock
    ((float_of_int !input_entries *. cpu_per_entry_ns)
    +. (float_of_int !bytes *. cpu_per_byte_ns));
  let output = List.rev !out in
  let stats =
    {
      input_entries = !input_entries;
      output_entries = List.length output;
      dropped_versions = !dropped_versions;
      dropped_tombstones = !dropped_tombstones;
    }
  in
  if Obs.Trace.is_enabled () then
    Obs.Trace.complete "compaction.merge" ~ts:t0 ~dur:(Sim.Clock.now clock -. t0)
      ~attrs:(fun () ->
        [
          ("runs", Obs.Trace.Int (List.length runs));
          ("input_entries", Obs.Trace.Int stats.input_entries);
          ("output_entries", Obs.Trace.Int stats.output_entries);
          ("dropped_versions", Obs.Trace.Int stats.dropped_versions);
          ("dropped_tombstones", Obs.Trace.Int stats.dropped_tombstones);
        ]);
  (output, stats)

(* Cut a sorted run into consecutive slices of at most [target_bytes],
   never splitting the versions of one key across slices. *)
let split_run ~target_bytes entries =
  let rec loop acc current current_bytes = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | e :: rest ->
        let size = Util.Kv.encoded_size e in
        let same_key =
          match current with
          | prev :: _ -> prev.Util.Kv.key = e.Util.Kv.key
          | [] -> false
        in
        if current <> [] && current_bytes + size > target_bytes && not same_key then
          loop (List.rev current :: acc) [ e ] size rest
        else loop acc (e :: current) (current_bytes + size) rest
  in
  loop [] [] 0 entries

(* Pipelined compaction (see pipeline.mli for the two-plane design).

   The data plane stays serial and byte-exact in the engine; this module
   owns the stage vocabulary, the cost-token recording, the bounded SPSC
   queues, and the staged replay that turns a recording into a measured
   makespan on a shadow coroutine scheduler. *)

module Co = Coroutine.Co
module Scheduler = Coroutine.Scheduler

type stage = Read | Merge | Build | Write

let all_stages = [ Read; Merge; Build; Write ]
let stage_count = 4
let stage_index = function Read -> 0 | Merge -> 1 | Build -> 2 | Write -> 3

let stage_name = function
  | Read -> "read"
  | Merge -> "merge"
  | Build -> "build"
  | Write -> "write"

let attr_phase = function
  | Read -> Obs.Attr.Pipe_read
  | Merge -> Obs.Attr.Pipe_merge
  | Build -> Obs.Attr.Pipe_build
  | Write -> Obs.Attr.Pipe_write

(* The stage the engine's serial data plane is executing right now.
   Device fault hooks read it so a crash site counts against the stage it
   interrupted (the crash sweep's per-stage coverage). Global like
   Obs.Attr's state: the engine timeline is single-threaded. *)
let cur : stage option ref = ref None

let current_stage () = !cur

let with_stage stage f =
  let saved = !cur in
  cur := Some stage;
  Fun.protect
    ~finally:(fun () -> cur := saved)
    (fun () -> Obs.Attr.with_phase (attr_phase stage) f)

(* --- Cost-token recording (data plane) ---------------------------------- *)

type medium = Pm | Ssd

type token = { t_medium : medium; t_bytes : int; t_cost_ns : float }

type recording = {
  mutable reads : token list;  (* newest first *)
  mutable merge_ns : float;
  mutable merge_entries : int;
  mutable builds_ns : float;
  mutable writes : token list;  (* newest first *)
}

let create_recording () =
  { reads = []; merge_ns = 0.0; merge_entries = 0; builds_ns = 0.0; writes = [] }

let record_read r medium ~bytes ~cost_ns =
  r.reads <- { t_medium = medium; t_bytes = max 0 bytes; t_cost_ns = Float.max 0.0 cost_ns } :: r.reads

let record_merge r ~entries ~cost_ns =
  r.merge_entries <- r.merge_entries + max 0 entries;
  r.merge_ns <- r.merge_ns +. Float.max 0.0 cost_ns

let record_build r ~cost_ns = r.builds_ns <- r.builds_ns +. Float.max 0.0 cost_ns

let record_write r medium ~bytes ~cost_ns =
  r.writes <- { t_medium = medium; t_bytes = max 0 bytes; t_cost_ns = Float.max 0.0 cost_ns } :: r.writes

let sum_costs = List.fold_left (fun acc t -> acc +. t.t_cost_ns) 0.0

let serial_ns r = sum_costs r.reads +. r.merge_ns +. r.builds_ns +. sum_costs r.writes

let has_overlap_work r = r.reads <> [] && r.writes <> []

(* --- Bounded SPSC queues ------------------------------------------------ *)

(* Every enqueued item carries a fresh handoff latch: push signals it,
   pop awaits it (sticky, so the await resumes immediately) — that
   signal→await pair is the release→acquire happens-before edge schedsan
   draws for the handoff. Each item is additionally annotated as its own
   schedsan variable ("<queue>#<seq>"), so dropping the edge is a
   reportable race, not silence. Parking latches (not_empty / not_full)
   are recreated per wait; latches are one-shot. *)

type 'a queue = {
  q_name : string;
  capacity : int;
  items : ('a * Co.latch * int) Stdlib.Queue.t;
  mutable closed : bool;
  mutable not_empty : Co.latch option;  (* consumer parked here *)
  mutable not_full : Co.latch option;  (* producer parked here *)
  mutable seq : int;  (* items ever enqueued *)
  mutable q_max_depth : int;
  mutable producer_wait : float;
  mutable consumer_wait : float;
  san : Sanitize.Schedsan.t option;
  drop_hb : bool;  (* planted bug: skip the handoff acquire, poll instead *)
}

let queue_create ?(drop_hb = false) ~san ~name ~capacity () =
  if capacity < 1 then invalid_arg "Pipeline.queue_create: capacity < 1";
  {
    q_name = name;
    capacity;
    items = Stdlib.Queue.create ();
    closed = false;
    not_empty = None;
    not_full = None;
    seq = 0;
    q_max_depth = 0;
    producer_wait = 0.0;
    consumer_wait = 0.0;
    san;
    drop_hb;
  }

let queue_depth q = Stdlib.Queue.length q.items
let queue_max_depth q = q.q_max_depth
let queue_wait_ns q = q.producer_wait +. q.consumer_wait

let item_var q seq = Printf.sprintf "%s#%d" q.q_name seq

let wake_slot get set =
  match get () with
  | None -> ()
  | Some l ->
      set None;
      Co.signal l

let queue_push q x =
  let t0 = Co.now () in
  while Stdlib.Queue.length q.items >= q.capacity do
    let l = Co.latch ~name:(q.q_name ^ ".not_full") () in
    q.not_full <- Some l;
    Co.await l
  done;
  let waited = Co.now () -. t0 in
  if waited > 0.0 then begin
    q.producer_wait <- q.producer_wait +. waited;
    Obs.Attr.charge Obs.Attr.Pipe_queue_wait waited
  end;
  (match q.san with Some s -> Sanitize.Schedsan.write s (item_var q q.seq) | None -> ());
  let handoff = Co.latch ~name:(item_var q q.seq) () in
  Stdlib.Queue.push (x, handoff, q.seq) q.items;
  q.seq <- q.seq + 1;
  q.q_max_depth <- max q.q_max_depth (Stdlib.Queue.length q.items);
  (* the enqueue→dequeue release edge *)
  Co.signal handoff;
  wake_slot (fun () -> q.not_empty) (fun v -> q.not_empty <- v)

let queue_pop q =
  let t0 = Co.now () in
  let rec wait_nonempty () =
    if Stdlib.Queue.is_empty q.items && not q.closed then
      if q.drop_hb then begin
        (* planted bug: poll — no happens-before from the producer *)
        Co.yield ();
        wait_nonempty ()
      end
      else begin
        let l = Co.latch ~name:(q.q_name ^ ".not_empty") () in
        q.not_empty <- Some l;
        Co.await l;
        wait_nonempty ()
      end
  in
  wait_nonempty ();
  let waited = Co.now () -. t0 in
  if waited > 0.0 then begin
    q.consumer_wait <- q.consumer_wait +. waited;
    Obs.Attr.charge Obs.Attr.Pipe_queue_wait waited
  end;
  if Stdlib.Queue.is_empty q.items then None
  else begin
    let x, handoff, seq = Stdlib.Queue.pop q.items in
    (* the dequeue acquire edge: the latch is already signaled, so this
       resumes immediately but still orders us after the push *)
    if not q.drop_hb then Co.await handoff;
    (match q.san with Some s -> Sanitize.Schedsan.read s (item_var q seq) | None -> ());
    wake_slot (fun () -> q.not_full) (fun v -> q.not_full <- v);
    Some x
  end

let queue_close q =
  q.closed <- true;
  wake_slot (fun () -> q.not_empty) (fun v -> q.not_empty <- v)

(* --- The staged replay (time plane) ------------------------------------- *)

type sim_config = {
  cores : int;
  queue_capacity : int;
  block_bytes : int;
  q_max : int;
  flush_reserve : int;
  ssd_params : Ssd.params;
}

type plant = No_plant | Drop_hb | Serial_stages

type stage_stat = { s_stage : stage; busy_ns : float; wait_ns : float; items : int }

type result = {
  makespan : float;
  sim_serial_ns : float;
  stages : stage_stat list;
  queue_max_depths : (string * int) list;
  queue_wait_total_ns : float;
  sched : Scheduler.report;
  races : int;
  lost_wakeups : int;
}

(* Split a token into ~block_bytes chunks, cost prorated by bytes. *)
let chunk_token ~block_bytes tok =
  if tok.t_bytes <= block_bytes then [ tok ]
  else begin
    let n = (tok.t_bytes + block_bytes - 1) / block_bytes in
    let base = tok.t_bytes / n and rem = tok.t_bytes mod n in
    List.init n (fun i ->
        let b = base + if i < rem then 1 else 0 in
        {
          tok with
          t_bytes = b;
          t_cost_ns = tok.t_cost_ns *. float_of_int b /. float_of_int tok.t_bytes;
        })
  end

let sim_switch_cost = 500.0 (* ns; coroutine-scale, matches Scheduler defaults *)

let simulate ?(plant = No_plant) cfg r =
  (* Detach the caller's attribution context: replay bookkeeping books to
     the background domain, and the caller's op/frame stack survives the
     scheduler's per-task context switching untouched. *)
  let caller_ctx = Obs.Attr.capture_task () in
  Fun.protect ~finally:(fun () -> Obs.Attr.restore_task caller_ctx) @@ fun () ->
  let clock = Sim.Clock.create () in
  let des = Sim.Des.create clock in
  let ssd = Ssd.create ~params:cfg.ssd_params clock in
  let policy =
    Scheduler.Flush_coroutine { switch_cost = sim_switch_cost; q_max = cfg.q_max }
  in
  let sched = Scheduler.create ~cores:(max 1 cfg.cores) ~policy des ssd in
  let san = Scheduler.sanitizer sched in
  let block_bytes = max 1 cfg.block_bytes in

  (* Work decomposition: read tokens chunked into blocks; the merge cost
     rides the read stream (prorated by bytes); write tokens chunked, the
     build cost prorated over them the same way. *)
  let rblocks = List.concat_map (chunk_token ~block_bytes) (List.rev r.reads) in
  let wblocks = List.concat_map (chunk_token ~block_bytes) (List.rev r.writes) in
  let total_rbytes = List.fold_left (fun a t -> a + t.t_bytes) 0 rblocks in
  let total_wbytes = List.fold_left (fun a t -> a + t.t_bytes) 0 wblocks in
  let merge_share blk =
    if total_rbytes <= 0 then r.merge_ns /. float_of_int (max 1 (List.length rblocks))
    else r.merge_ns *. float_of_int blk.t_bytes /. float_of_int total_rbytes
  in
  let build_share blk =
    if total_wbytes <= 0 then 0.0
    else r.builds_ns *. float_of_int blk.t_bytes /. float_of_int total_wbytes
  in
  let survive_ratio =
    if total_rbytes <= 0 then 0.0 else float_of_int total_wbytes /. float_of_int total_rbytes
  in

  let capacity =
    (* the Serial plant drains each stage fully before the next starts, so
       its queues must hold a whole stage's output *)
    match plant with Serial_stages -> max_int / 2 | _ -> max 1 cfg.queue_capacity
  in
  let drop_hb = plant = Drop_hb in
  let q_read_merge = queue_create ~drop_hb ~san ~name:"pipe.q.read_merge" ~capacity () in
  let q_merge_build = queue_create ~drop_hb ~san ~name:"pipe.q.merge_build" ~capacity () in
  let q_build_write = queue_create ~drop_hb ~san ~name:"pipe.q.build_write" ~capacity () in

  let busy = Array.make stage_count 0.0 in
  let admission_wait = Array.make stage_count 0.0 in
  let items = Array.make stage_count 0 in
  let timed i f =
    let t0 = Co.now () in
    f ();
    busy.(i) <- busy.(i) +. (Co.now () -. t0);
    items.(i) <- items.(i) + 1
  in
  (* Per-stage I/O admission, the q_flush extension: the read stage's
     prefetch may never take the last [flush_reserve] device slots, so the
     write stage (the flush side) always finds headroom. *)
  let admit i limit =
    let limit = max 1 limit in
    let t0 = Co.now () in
    while Ssd.in_flight ssd >= limit do
      Co.yield ()
    done;
    let w = Co.now () -. t0 in
    if w > 0.0 then begin
      admission_wait.(i) <- admission_wait.(i) +. w;
      Obs.Attr.charge Obs.Attr.Pipe_queue_wait w
    end
  in

  (* Serial plant gates: stage i starts only once stage i-1 signals done. *)
  let done_gates = Array.init stage_count (fun i ->
      Co.latch ~name:(Printf.sprintf "pipe.serial.done%d" i) ())
  in
  let serial_gate i = if plant = Serial_stages && i > 0 then Co.await done_gates.(i - 1) in
  let serial_done i = if plant = Serial_stages then Co.signal done_gates.(i) in

  let read_stage () =
    serial_gate 0;
    List.iter
      (fun blk ->
        (match blk.t_medium with
        | Ssd -> admit 0 (cfg.q_max - cfg.flush_reserve)
        | Pm -> ());
        timed 0 (fun () ->
            match blk.t_medium with
            | Pm -> Co.work blk.t_cost_ns
            | Ssd ->
                let latency = Co.read blk.t_bytes in
                let residual = blk.t_cost_ns -. latency in
                if residual > 0.0 then Co.work residual);
        queue_push q_read_merge blk)
      rblocks;
    queue_close q_read_merge;
    serial_done 0
  in
  let merge_stage () =
    serial_gate 1;
    let rec loop () =
      match queue_pop q_read_merge with
      | None -> ()
      | Some blk ->
          timed 1 (fun () ->
              let share = merge_share blk in
              if share > 0.0 then Co.work share);
          queue_push q_merge_build blk.t_bytes;
          loop ()
    in
    loop ();
    queue_close q_merge_build;
    serial_done 1
  in
  let build_stage () =
    serial_gate 2;
    let wchunks = Array.of_list wblocks in
    let cum = Array.make (Array.length wchunks) 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. float_of_int w.t_bytes;
        cum.(i) <- !acc)
      wchunks;
    let next = ref 0 in
    let survivors = ref 0.0 in
    let emit_due () =
      while !next < Array.length wchunks && cum.(!next) <= !survivors +. 0.5 do
        let w = wchunks.(!next) in
        timed 2 (fun () ->
            let share = build_share w in
            if share > 0.0 then Co.work share);
        queue_push q_build_write w;
        incr next
      done
    in
    let rec loop () =
      match queue_pop q_merge_build with
      | None -> ()
      | Some merged_bytes ->
          survivors := !survivors +. (float_of_int merged_bytes *. survive_ratio);
          emit_due ();
          loop ()
    in
    loop ();
    (* input drained: whatever is still pending is due now *)
    survivors := infinity;
    emit_due ();
    queue_close q_build_write;
    serial_done 2
  in
  let write_stage () =
    serial_gate 3;
    let rec loop () =
      match queue_pop q_build_write with
      | None -> ()
      | Some w ->
          (match w.t_medium with Ssd -> admit 3 cfg.q_max | Pm -> ());
          timed 3 (fun () ->
              match w.t_medium with
              | Pm -> Co.work w.t_cost_ns
              | Ssd ->
                  let latency = Co.write w.t_bytes in
                  let residual = w.t_cost_ns -. latency in
                  if residual > 0.0 then Co.work residual);
          loop ()
    in
    loop ();
    serial_done 3
  in

  Scheduler.spawn ~name:"pipe.read" sched 0 read_stage;
  Scheduler.spawn ~name:"pipe.merge" sched 1 merge_stage;
  Scheduler.spawn ~name:"pipe.build" sched 2 build_stage;
  Scheduler.spawn ~name:"pipe.write" sched 3 write_stage;
  let makespan = Scheduler.run_to_completion sched in
  let sched_report = Scheduler.report sched ~makespan in
  let stage_waits =
    [|
      admission_wait.(0) +. q_read_merge.producer_wait;
      q_read_merge.consumer_wait +. q_merge_build.producer_wait;
      q_merge_build.consumer_wait +. q_build_write.producer_wait;
      admission_wait.(3) +. q_build_write.consumer_wait;
    |]
  in
  let stages =
    List.map
      (fun s ->
        let i = stage_index s in
        { s_stage = s; busy_ns = busy.(i); wait_ns = stage_waits.(i); items = items.(i) })
      all_stages
  in
  {
    makespan;
    sim_serial_ns = serial_ns r;
    stages;
    queue_max_depths =
      [
        ("read_merge", queue_max_depth q_read_merge);
        ("merge_build", queue_max_depth q_merge_build);
        ("build_write", queue_max_depth q_build_write);
      ];
    queue_wait_total_ns =
      queue_wait_ns q_read_merge +. queue_wait_ns q_merge_build
      +. queue_wait_ns q_build_write
      +. admission_wait.(0) +. admission_wait.(3);
    sched = sched_report;
    races = (match san with Some s -> Sanitize.Schedsan.races s | None -> 0);
    lost_wakeups = (match san with Some s -> Sanitize.Schedsan.lost_wakeups s | None -> 0);
  }

(* --- Cumulative accounting and metrics ---------------------------------- *)

type totals = {
  mutable runs : int;
  mutable serial_total_ns : float;
  mutable pipelined_total_ns : float;
  mutable rebate_total_ns : float;
  mutable blocks_total : int;
  mutable queue_wait_total : float;
  mutable races_total : int;
  mutable lost_wakeups_total : int;
  stage_busy_total : float array;
  mutable last : result option;
}

let create_totals () =
  {
    runs = 0;
    serial_total_ns = 0.0;
    pipelined_total_ns = 0.0;
    rebate_total_ns = 0.0;
    blocks_total = 0;
    queue_wait_total = 0.0;
    races_total = 0;
    lost_wakeups_total = 0;
    stage_busy_total = Array.make stage_count 0.0;
    last = None;
  }

let note_result tot res ~rebate_ns =
  tot.runs <- tot.runs + 1;
  tot.serial_total_ns <- tot.serial_total_ns +. res.sim_serial_ns;
  tot.pipelined_total_ns <- tot.pipelined_total_ns +. res.makespan;
  tot.rebate_total_ns <- tot.rebate_total_ns +. Float.max 0.0 rebate_ns;
  tot.queue_wait_total <- tot.queue_wait_total +. res.queue_wait_total_ns;
  tot.races_total <- tot.races_total + res.races;
  tot.lost_wakeups_total <- tot.lost_wakeups_total + res.lost_wakeups;
  List.iter
    (fun st ->
      let i = stage_index st.s_stage in
      tot.stage_busy_total.(i) <- tot.stage_busy_total.(i) +. st.busy_ns;
      if st.s_stage = Read then tot.blocks_total <- tot.blocks_total + st.items)
    res.stages;
  tot.last <- Some res

let queue_names = [ "read_merge"; "merge_build"; "build_write" ]

let register_metrics reg ?(prefix = "pipeline") tot =
  let p name = prefix ^ "." ^ name in
  let open Obs.Registry in
  register_int reg ~help:"staged compaction replays" (p "runs") (fun () -> tot.runs);
  register_float reg ~kind:Counter ~help:"serial cost of staged sections"
    (p "serial_ns") (fun () -> tot.serial_total_ns);
  register_float reg ~kind:Counter ~help:"replayed pipeline makespans"
    (p "makespan_ns") (fun () -> tot.pipelined_total_ns);
  register_float reg ~kind:Counter ~help:"clock rebate from stage overlap"
    (p "rebate_ns") (fun () -> tot.rebate_total_ns);
  register_int reg ~help:"blocks streamed through the read stage" (p "blocks")
    (fun () -> tot.blocks_total);
  register_float reg ~kind:Counter ~help:"backpressure + admission waits"
    (p "queue_wait_ns") (fun () -> tot.queue_wait_total);
  register_int reg ~help:"schedsan races inside replays" (p "races") (fun () ->
      tot.races_total);
  register_int reg ~help:"schedsan lost wakeups inside replays" (p "lost_wakeups")
    (fun () -> tot.lost_wakeups_total);
  List.iter
    (fun s ->
      register_float reg ~kind:Counter
        ~help:(Printf.sprintf "busy time of the %s stage" (stage_name s))
        (p (Printf.sprintf "stage_busy_ns.%s" (stage_name s)))
        (fun () -> tot.stage_busy_total.(stage_index s)))
    all_stages;
  List.iter
    (fun qn ->
      register_int reg ~kind:Gauge
        ~help:(Printf.sprintf "high-water depth of the %s queue (last replay)" qn)
        (p (Printf.sprintf "queue_depth.%s" qn))
        (fun () ->
          match tot.last with
          | None -> 0
          | Some res -> ( try List.assoc qn res.queue_max_depths with Not_found -> 0)))
    queue_names

(** Pipelined compaction: staged read / merge / build / write with bounded
    SPSC queues and multi-core overlap (ROADMAP item 1, after Pome).

    The engine timeline is single-threaded over a virtual clock, so the
    pipeline is realised in two planes:

    - {b Data plane} (in the engine, serial): the compaction's byte-exact
      work runs unchanged — same reads, same merge, same manifest commit
      point, same fault-injection sites — but bracketed into stages with
      {!with_stage}, which tags crash sites with the live stage and charges
      the [Pipe_*] attribution phases. Each staged section records a cost
      token (medium, bytes, measured clock delta) into a {!recording}.

    - {b Time plane} ({!simulate}): the recording is replayed as four real
      coroutines — one per stage — on a fresh {!Coroutine.Scheduler} with
      its own clock, DES and shadow SSD, connected by bounded SPSC queues
      with backpressure. The replay's makespan is what the staged pipeline
      would have taken; the engine rewinds its clock by
      [serial_ns - makespan], replacing the old fixed
      [coroutine_overlap_efficiency] rebate with a measured mechanism.

    Queue handoffs are checked concurrency: every enqueue signals a
    per-item latch the dequeue awaits, which is exactly the
    release→acquire happens-before edge schedsan draws, and each item is
    also annotated as a schedsan shared variable — drop the edge (the
    {!Drop_hb} plant) and the race checker fires.

    I/O admission extends the paper's [q_flush] policy with per-stage
    quotas: the read stage's prefetch is admitted only while in-flight
    requests stay at or under [q_max - flush_reserve], so flush/write
    admission always finds headroom and never starves behind a deep
    prefetch pipeline. *)

type stage = Read | Merge | Build | Write

val all_stages : stage list
val stage_name : stage -> string

val attr_phase : stage -> Obs.Attr.phase

val with_stage : stage -> (unit -> 'a) -> 'a
(** Run a data-plane stage section: publishes the stage in
    {!current_stage} (so fault hooks can tag crash sites with the stage
    they interrupted) and frames the section in the stage's [Pipe_*]
    attribution phase. Nestable and exception-safe. *)

val current_stage : unit -> stage option
(** The data-plane stage executing right now, if any — read from device
    fault hooks by the crash sweep's stage-coverage accounting. *)

(** {1 Cost-token recording (data plane)} *)

type medium = Pm | Ssd

type recording

val create_recording : unit -> recording
val record_read : recording -> medium -> bytes:int -> cost_ns:float -> unit
val record_merge : recording -> entries:int -> cost_ns:float -> unit
val record_build : recording -> cost_ns:float -> unit
val record_write : recording -> medium -> bytes:int -> cost_ns:float -> unit

val serial_ns : recording -> float
(** Sum of every recorded cost: what the staged sections measurably took
    on the serial engine timeline. *)

val has_overlap_work : recording -> bool
(** True when the recording holds both read and write tokens — the
    degenerate cases (empty merge output, empty level) have nothing to
    overlap and skip the replay. *)

(** {1 Bounded SPSC queues}

    Usable only from coroutines running under a {!Coroutine.Scheduler}
    (push/pop suspend via latches). Single producer, single consumer. *)

type 'a queue

val queue_create :
  ?drop_hb:bool ->
  san:Sanitize.Schedsan.t option ->
  name:string ->
  capacity:int ->
  unit ->
  'a queue
(** [drop_hb] is the planted-bug switch: the consumer polls with
    {!Coroutine.Co.yield} instead of parking and skips the per-item
    handoff acquire, so schedsan must report the enqueue→dequeue pairs as
    races (tests prove the checker has teeth). *)

val queue_push : 'a queue -> 'a -> unit
(** Blocks (parks on a latch) while the queue is at capacity; charges the
    wait to [Pipe_queue_wait]. *)

val queue_pop : 'a queue -> 'a option
(** Blocks while the queue is empty and not closed; [None] once it is
    closed and drained. Acquires the item's handoff edge. *)

val queue_close : 'a queue -> unit
val queue_depth : 'a queue -> int
val queue_max_depth : 'a queue -> int
val queue_wait_ns : 'a queue -> float
(** Producer + consumer wait so far. *)

(** {1 The staged replay (time plane)} *)

type sim_config = {
  cores : int;  (** simulated cores of the stage scheduler *)
  queue_capacity : int;  (** bound of each inter-stage queue *)
  block_bytes : int;  (** granularity blocks stream through the stages *)
  q_max : int;  (** I/O admission cap (the paper's q) *)
  flush_reserve : int;
      (** slots of [q_max] the read stage may never occupy — reserved
          flush/write headroom (the per-stage quota extension of q_flush) *)
  ssd_params : Ssd.params;  (** shadow-device parameters for stage I/O *)
}

type plant =
  | No_plant
  | Drop_hb  (** drop the enqueue→dequeue happens-before edge (see above) *)
  | Serial_stages
      (** run the stages strictly one-after-another (each stage starts
          only when its predecessor drained) — the planted regression the
          pipeline check script must catch as speedup <= 1 *)

type stage_stat = {
  s_stage : stage;
  busy_ns : float;  (** processing time (CPU work + the stage's own I/O) *)
  wait_ns : float;  (** queue backpressure + admission waits *)
  items : int;  (** blocks processed *)
}

type result = {
  makespan : float;
  sim_serial_ns : float;  (** the recording's {!serial_ns}, for speedup *)
  stages : stage_stat list;  (** in [Read; Merge; Build; Write] order *)
  queue_max_depths : (string * int) list;
  queue_wait_total_ns : float;
  sched : Coroutine.Scheduler.report;
  races : int;  (** schedsan findings inside the replay (0 when healthy) *)
  lost_wakeups : int;
}

val simulate : ?plant:plant -> sim_config -> recording -> result
(** Replay the recording through the staged pipeline. Deterministic;
    never touches the caller's clock or devices (fresh shadow clock, DES,
    SSD and scheduler per call). The caller's {!Obs.Attr} op/frame
    context is detached for the duration, so replay bookkeeping
    ([Pipe_queue_wait], [Sched_wait]) lands in the background books. *)

(** {1 Cumulative accounting and metrics} *)

type totals = {
  mutable runs : int;
  mutable serial_total_ns : float;
  mutable pipelined_total_ns : float;
  mutable rebate_total_ns : float;
  mutable blocks_total : int;
  mutable queue_wait_total : float;
  mutable races_total : int;
  mutable lost_wakeups_total : int;
  stage_busy_total : float array;  (** indexed in {!all_stages} order *)
  mutable last : result option;
}

val create_totals : unit -> totals
val note_result : totals -> result -> rebate_ns:float -> unit

val register_metrics : Obs.Registry.t -> ?prefix:string -> totals -> unit
(** Register [pipeline.*] readouts: run/rebate counters, per-stage busy
    counters, per-stage-queue depth gauges (last replay's high-water
    marks) and the replay sanitizer counters, under [prefix] (default
    ["pipeline"]). *)

(* Snappy-like LZ byte compressor.

   Stands in for Google Snappy in the Array-snappy / Array-snappy-group
   baselines of Fig. 6: a greedy LZ77 with a small hash table over 4-byte
   sequences, emitting a stream of literal runs and (offset, length) copies.
   Format (all varints little-endian base-128):

     header  : varint uncompressed_length
     element : tag byte 'L' + varint len + len literal bytes
             | tag byte 'C' + varint offset + varint len (copy from output)

   Like Snappy it favours speed over ratio: no entropy coding, greedy
   matching, minimum match length 4. The simulated CPU cost of using it is
   charged by callers via Cost. *)

let min_match = 4
let hash_bits = 13
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let b k = Char.code s.[i + k] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (v * 0x9E3779B1) lsr (31 - hash_bits) land (hash_size - 1)

let compress input =
  let n = String.length input in
  let out = Buffer.create (n / 2) in
  Util.Varint.write out n;
  if n < min_match then begin
    if n > 0 then begin
      Buffer.add_char out 'L';
      Util.Varint.write_string out input
    end;
    Buffer.contents out
  end
  else begin
    let table = Array.make hash_size (-1) in
    let lit_start = ref 0 in
    let emit_literals upto =
      if upto > !lit_start then begin
        Buffer.add_char out 'L';
        Util.Varint.write out (upto - !lit_start);
        Buffer.add_substring out input !lit_start (upto - !lit_start)
      end
    in
    let i = ref 0 in
    while !i + min_match <= n do
      let h = hash4 input !i in
      let candidate = table.(h) in
      table.(h) <- !i;
      if
        candidate >= 0
        && String.sub input candidate min_match = String.sub input !i min_match
      then begin
        (* Extend the match as far as possible. *)
        let len = ref min_match in
        while !i + !len < n && input.[candidate + !len] = input.[!i + !len] do
          incr len
        done;
        emit_literals !i;
        Buffer.add_char out 'C';
        Util.Varint.write out (!i - candidate);
        Util.Varint.write out !len;
        i := !i + !len;
        lit_start := !i
      end
      else incr i
    done;
    emit_literals n;
    Buffer.contents out
  end

let decompress compressed =
  let total, pos = Util.Varint.read compressed 0 in
  let out = Buffer.create total in
  let pos = ref pos in
  let n = String.length compressed in
  while !pos < n do
    let tag = compressed.[!pos] in
    incr pos;
    match tag with
    | 'L' ->
        let len, p = Util.Varint.read compressed !pos in
        if p + len > n then failwith "Lz.decompress: truncated literal";
        Buffer.add_substring out compressed p len;
        pos := p + len
    | 'C' ->
        let offset, p = Util.Varint.read compressed !pos in
        let len, p = Util.Varint.read compressed p in
        pos := p;
        let start = Buffer.length out - offset in
        if start < 0 || offset = 0 then failwith "Lz.decompress: bad copy offset";
        (* Copies may overlap forward (RLE-style); copy byte-by-byte. *)
        for k = 0 to len - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
    | c -> failwith (Printf.sprintf "Lz.decompress: bad tag %C" c)
  done;
  let result = Buffer.contents out in
  if String.length result <> total then failwith "Lz.decompress: length mismatch";
  result

(* Simulated CPU costs — Snappy-class software codec: ~1 GB/s compression,
   ~2 GB/s decompression, plus a fixed per-call overhead (setup, hash-table
   clearing) that penalises compressing tiny units. Used by the table
   builders to charge the virtual clock. *)
let compress_cost_ns_per_byte = 1.0
let decompress_cost_ns_per_byte = 0.5
let compress_call_ns = 300.0
let decompress_call_ns = 100.0

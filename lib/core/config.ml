(* Engine configurations: one engine, eight paper variants.

   All byte sizes follow the repository-wide ~1000x scale-down of the
   paper's deployment (GB -> MB): memtable 64 MB -> 64 KB, level-0 PM
   80 GB -> 80 MB, MatrixKV's 8 GB -> 8 MB, and the cost-model thresholds
   scaled identically, so every capacity *ratio* the behaviour depends on is
   preserved. *)

type l0_medium = L0_pm | L0_ssd

type l0_strategy =
  | Conventional of { max_tables : int option; max_bytes : int option }
      (* flush-and-forget level-0: major-compact the whole partition L0
         when either trigger fires (RocksDB: 4 tables; PMBlade-PM: PM
         nearly full) *)
  | Cost_based of Compaction.Cost_model.params
      (* the paper's method: internal compaction under Eq. 1/2, major
         compaction of the non-warm partitions under Eq. 3 *)
  | Matrix of { columns : int; trigger_bytes : int }
      (* MatrixKV: matrix container rows + fine-grained column compaction
         of the lowest uncompacted key range once L0 exceeds the trigger *)

type t = {
  name : string;
  memtable_bytes : int;
  l0_medium : l0_medium;
  l0_capacity : int;              (* PM budget for level-0 *)
  l0_strategy : l0_strategy;
  table_kind : Pmtable.Table.kind;
  group_size : int;               (* PM-table prefix group size *)
  l0_run_table_bytes : int;       (* target size of sorted-run tables *)
  partition_count : int;
  level_base_bytes : int;         (* L1 target size *)
  level_ratio : int;
  sstable_target_bytes : int;
  bottom_level : int;             (* deepest level index (1-based); tombstones drop there *)
  coroutine_compaction : bool;    (* overlap CPU and I/O during major compaction *)
  pipeline_compaction : bool;
      (* stage major/internal compaction as a read/merge/build/write
         pipeline over bounded SPSC queues (Compaction.Pipeline): the
         engine's serial data plane records per-stage cost tokens, the
         staged replay on a coroutine scheduler measures the overlapped
         makespan, and the difference is applied as the timing rebate —
         replacing coroutine_compaction's fixed overlap efficiency with a
         measured mechanism *)
  pipeline_cores : int;           (* simulated cores of the stage scheduler *)
  pipeline_queue_capacity : int;  (* bound of each inter-stage SPSC queue *)
  pipeline_block_bytes : int;     (* granularity blocks stream through stages *)
  pipeline_q_max : int;           (* I/O admission cap of the stage scheduler *)
  pipeline_flush_reserve : int;
      (* device slots of pipeline_q_max the read stage may never occupy,
         reserved for flush/write admission (the q_flush extension) *)
  background_share : float;
      (* compactions run on background cores; the foreground operation that
         triggered one observes only this share of its duration
         (interference and backpressure), like RocksDB's background jobs *)
  durable : bool;
      (* maintain a write-ahead log and persist the manifest on structural
         changes so Engine.recover can rebuild after a crash; requires the
         compressed PM table (the only self-describing level-0 format) *)
  matrix_flush_overhead_ns_per_byte : float;
      (* extra level-0 construction cost at flush (MatrixKV cross-hint) *)
  ssd_retry_limit : int;
      (* bounded retries of a transiently-failed SSD request before the
         error surfaces to the caller *)
  ssd_retry_backoff_ns : float;
      (* base backoff before the first retry; doubles per attempt *)
  ssd_retry_jitter : float;
      (* seeded jitter fraction on each backoff: the sleep is scaled by a
         factor drawn uniformly from [1 - j/2, 1 + j/2], decorrelating
         retry storms across shards; 0 restores pure exponential *)
  scrub_rate_limit_mb_s : float option;
      (* background scrub I/O budget; None verifies at device speed *)
  block_cache_mb : int;
      (* DRAM budget of the engine-wide shared SSTable block cache, in MiB;
         0 disables it (every uncached block read hits the SSD) *)
  pm_bloom_bits_per_key : int;
      (* Bloom filter density of PM level-0 tables (format v2); 0 writes
         bloom-less v1 tables — negative lookups then always probe PM *)
  sanitize : bool;
      (* attach the persistence-ordering sanitizer (lib/sanitize) to the PM
         device and check the engine's commit points; on by default so the
         test suite runs sanitized, and subject to the process-wide
         [Sanitize.Control] switch *)
  shard_count : int;
      (* range shards behind the router front door (lib/shard); 1 = a
         single engine, the classic configuration *)
  group_commit_window_ns : float;
      (* how long a group-commit leader holds the batch open for followers
         to join before syncing the shard's WAL *)
  group_commit_max : int;
      (* close and sync the batch once this many writers have joined *)
  admission_soft_tables : int;
      (* per-shard compaction-debt table count where admission starts
         delaying writers proportionally *)
  admission_hard_tables : int;
      (* per-shard debt table count where admission stalls writers until
         compaction drains below the limit *)
  admission_soft_delay_ns : float;
      (* delay per unit of soft-zone overshoot, scaled linearly from the
         soft to the hard limit *)
  breaker_enabled : bool;
      (* per-shard circuit breakers in the router (lib/health): open on
         error bursts or fail-slow drift, answer degraded/unavailable fast
         instead of queueing behind a sick device *)
  breaker_window : int;
      (* sliding outcome window per shard breaker *)
  breaker_failure_threshold : int;
      (* consecutive failures that trip a breaker open *)
  breaker_error_rate : float;
      (* windowed failure rate that trips a breaker open *)
  breaker_slow_factor : float;
      (* latency-tracker drift (EWMA/baseline) diagnosed as fail-slow *)
  breaker_cooldown_ns : float;
      (* open-state dwell before half-open probing *)
  breaker_half_open_probes : int;
      (* probe successes required to close a half-open breaker *)
  deadline_read_ns : float;
      (* per-read latency budget for deadline-aware serving; 0 = none *)
  deadline_write_ns : float;
      (* per-write latency budget; past-deadline writes are shed at
         admission rather than queued; 0 = none *)
  manifest_root : string;
      (* named superblock root slot this engine's manifest chain persists
         under; "" is the classic unnamed pair. Shards set "shard<i>" so
         N manifest chains coexist on the shared SSD. *)
  wal_external_sync : bool;
      (* stage WAL records but leave the durability-point sync to an
         external group-commit batcher; a put's ack is then deferred until
         the batch leader calls [Engine.sync_wal] *)
  pm_params : Pmem.params;
  ssd_params : Ssd.params;
  seed : int;
}

let mib n = n * 1024 * 1024
let kib n = n * 1024

let scaled_cost_model =
  {
    Compaction.Cost_model.default with
    tau_w = kib 512;
    tau_m = mib 72;
    tau_t = mib 48;
  }

let base =
  {
    name = "base";
    memtable_bytes = kib 64;
    l0_medium = L0_pm;
    l0_capacity = mib 80;
    l0_strategy = Cost_based scaled_cost_model;
    table_kind = Pmtable.Table.Pm_compressed;
    group_size = 8;
    l0_run_table_bytes = kib 256;
    partition_count = 8;
    (* per-partition L1 target; with 8 partitions and ratio 10 the global
       levels are 4 MB / 40 MB / 400 MB, RocksDB-proportioned at this
       scale *)
    level_base_bytes = kib 512;
    level_ratio = 10;
    sstable_target_bytes = kib 256;
    bottom_level = 3;
    coroutine_compaction = false;
    pipeline_compaction = true;
    pipeline_cores = 4;
    pipeline_queue_capacity = 4;
    pipeline_block_bytes = kib 256;
    pipeline_q_max = 8;
    pipeline_flush_reserve = 2;
    background_share = 0.3;
    durable = false;
    matrix_flush_overhead_ns_per_byte = 0.0;
    ssd_retry_limit = 3;
    ssd_retry_backoff_ns = 100_000.0;  (* 100 us, doubling *)
    ssd_retry_jitter = 0.5;
    scrub_rate_limit_mb_s = None;
    block_cache_mb = 0;
    pm_bloom_bits_per_key = 10;
    sanitize = true;
    shard_count = 1;
    group_commit_window_ns = 20_000.0;  (* 20 us *)
    group_commit_max = 8;
    admission_soft_tables = 12;
    admission_hard_tables = 24;
    admission_soft_delay_ns = 100_000.0;  (* 100 us at the hard limit *)
    breaker_enabled = true;
    breaker_window = 32;
    breaker_failure_threshold = 4;
    breaker_error_rate = 0.5;
    breaker_slow_factor = 8.0;
    breaker_cooldown_ns = 10_000_000.0;  (* 10 ms *)
    breaker_half_open_probes = 3;
    deadline_read_ns = 0.0;
    deadline_write_ns = 0.0;
    manifest_root = "";
    wal_external_sync = false;
    pm_params = { Pmem.default_params with capacity = mib 128 };
    ssd_params = Ssd.default_params;
    seed = 42;
  }

(* The full system: every technique of the paper enabled. *)
let pmblade = { base with name = "PMBlade"; coroutine_compaction = true }

(* 80 GB PM level-0 but the conventional whole-L0 compaction strategy and
   uncompressed tables (the PMBlade-PM configuration of §VI-B). *)
let pmblade_pm =
  {
    base with
    name = "PMBlade-PM";
    l0_strategy = Conventional { max_tables = None; max_bytes = Some (mib 72) };
    table_kind = Pmtable.Table.Array_plain;
    (* like the seed repo's choice of [coroutine_compaction = false] here:
       the placement variants keep serial compaction so Fig. 5-7 isolate
       the L0 medium, not the overlap technique *)
    pipeline_compaction = false;
  }

(* Conventional DRAM+SSD LSM-tree: level-0 on the SSD, major compaction at
   4 level-0 tables (PMBlade-SSD; structurally also the RocksDB model).
   Unpartitioned — range partitioning is a PM-Blade technique (§III), and
   RocksDB's whole memtable flushes as one L0 file. *)
let pmblade_ssd =
  {
    base with
    name = "PMBlade-SSD";
    l0_medium = L0_ssd;
    l0_capacity = 0;
    l0_strategy = Conventional { max_tables = Some 4; max_bytes = None };
    table_kind = Pmtable.Table.Array_plain;
    partition_count = 1;
    pipeline_compaction = false;
  }

(* The RocksDB baseline keeps serial compaction: pipelined staging is one
   of the techniques under evaluation, so the comparison system must not
   get it for free. *)
let rocksdb_like = { pmblade_ssd with name = "RocksDB"; pipeline_compaction = false }

(* Ablation ladder of §VI-D: the coroutine/pipeline compaction technique
   is the ladder's last rung (PMBlade itself), so the PMB-* rungs keep
   serial compaction — otherwise the rung's delta would vanish. *)
let pmb_p =
  {
    base with
    name = "PMB-P";
    l0_strategy = Conventional { max_tables = None; max_bytes = Some (mib 72) };
    table_kind = Pmtable.Table.Array_plain;
    pipeline_compaction = false;
  }

let pmb_pi =
  {
    base with
    name = "PMB-PI";
    table_kind = Pmtable.Table.Array_plain;
    pipeline_compaction = false;
  }

let pmb_pic = { base with name = "PMB-PIC"; pipeline_compaction = false }

(* MatrixKV with its default 8 GB (scaled: 8 MB) level-0, and the enlarged
   80 GB (80 MB) configuration the paper adds for fairness. Unpartitioned
   (it is RocksDB-based); the matrix container's construction overhead
   (row organisation + cross-hint indexing) is charged per flushed byte. *)
let matrixkv_like ~l0_mib =
  {
    base with
    name = Printf.sprintf "MatrixKV-%dGB" l0_mib;
    l0_capacity = mib l0_mib;
    l0_strategy =
      Matrix { columns = 16; trigger_bytes = int_of_float (0.9 *. float_of_int (mib l0_mib)) };
    table_kind = Pmtable.Table.Array_plain;
    partition_count = 1;
    matrix_flush_overhead_ns_per_byte = 4.0;
    (* MatrixKV schedules its column compactions serially, like the
       RocksDB baseline it derives from. *)
    pipeline_compaction = false;
  }

let matrixkv_8 = matrixkv_like ~l0_mib:8
let matrixkv_80 = matrixkv_like ~l0_mib:80

let all_variants =
  [ pmblade; pmblade_pm; pmblade_ssd; rocksdb_like; pmb_p; pmb_pi; pmb_pic;
    matrixkv_8; matrixkv_80 ]

(* Canonical fingerprint over every field that affects simulated behaviour,
   as a CRC32 of a versioned field dump. Bench JSON stamps it so a perf
   gate never compares runs of different configurations (or of the same
   named config after its defaults changed). *)
let fingerprint t =
  let b = Buffer.create 512 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '|')
      fmt
  in
  add "v4";
  add "%s" t.name;
  add "%d" t.memtable_bytes;
  add "%s" (match t.l0_medium with L0_pm -> "pm" | L0_ssd -> "ssd");
  add "%d" t.l0_capacity;
  (match t.l0_strategy with
  | Conventional { max_tables; max_bytes } ->
      add "conv:%d:%d"
        (Option.value max_tables ~default:(-1))
        (Option.value max_bytes ~default:(-1))
  | Cost_based p ->
      add "cost:%g:%g:%g:%g:%g:%d:%d:%d" p.Compaction.Cost_model.i_b p.i_p p.i_s p.t_p
        p.spend_scale p.tau_w p.tau_m p.tau_t
  | Matrix { columns; trigger_bytes } -> add "matrix:%d:%d" columns trigger_bytes);
  add "%s"
    (match t.table_kind with
    | Pmtable.Table.Array_plain -> "plain"
    | Pmtable.Table.Array_snappy -> "snappy"
    | Pmtable.Table.Array_snappy_group -> "snappy-group"
    | Pmtable.Table.Pm_compressed -> "compressed");
  add "%d" t.group_size;
  add "%d" t.l0_run_table_bytes;
  add "%d" t.partition_count;
  add "%d" t.level_base_bytes;
  add "%d" t.level_ratio;
  add "%d" t.sstable_target_bytes;
  add "%d" t.bottom_level;
  add "%b" t.coroutine_compaction;
  add "%b" t.pipeline_compaction;
  add "%d" t.pipeline_cores;
  add "%d" t.pipeline_queue_capacity;
  add "%d" t.pipeline_block_bytes;
  add "%d" t.pipeline_q_max;
  add "%d" t.pipeline_flush_reserve;
  add "%g" t.background_share;
  add "%b" t.durable;
  add "%g" t.matrix_flush_overhead_ns_per_byte;
  add "%d" t.ssd_retry_limit;
  add "%g" t.ssd_retry_backoff_ns;
  add "%g" t.ssd_retry_jitter;
  add "%s"
    (match t.scrub_rate_limit_mb_s with None -> "none" | Some r -> Printf.sprintf "%g" r);
  add "%d" t.block_cache_mb;
  add "%d" t.pm_bloom_bits_per_key;
  add "%b" t.sanitize;
  add "%d" t.shard_count;
  add "%g" t.group_commit_window_ns;
  add "%d" t.group_commit_max;
  add "%d" t.admission_soft_tables;
  add "%d" t.admission_hard_tables;
  add "%g" t.admission_soft_delay_ns;
  add "%b" t.breaker_enabled;
  add "%d" t.breaker_window;
  add "%d" t.breaker_failure_threshold;
  add "%g" t.breaker_error_rate;
  add "%g" t.breaker_slow_factor;
  add "%g" t.breaker_cooldown_ns;
  add "%d" t.breaker_half_open_probes;
  add "%g" t.deadline_read_ns;
  add "%g" t.deadline_write_ns;
  add "%s" t.manifest_root;
  add "%b" t.wal_external_sync;
  let pm = t.pm_params in
  add "pm:%d:%g:%g:%g:%g:%g:%g" pm.Pmem.capacity pm.read_access_ns pm.write_access_ns
    pm.read_byte_ns pm.write_byte_ns pm.flush_ns pm.drain_ns;
  let sd = t.ssd_params in
  add "ssd:%d:%g:%g:%g:%g:%g:%d" sd.Ssd.page_size sd.read_latency_ns sd.write_latency_ns
    sd.read_byte_ns sd.write_byte_ns sd.fsync_latency_ns sd.channels;
  add "%d" t.seed;
  Printf.sprintf "%08x" (Util.Crc32.string (Buffer.contents b) land 0xFFFFFFFF)

(** Engine configurations: one engine, the paper's eight variants.

    All byte sizes follow the repository-wide ~1000x scale-down (GB -> MB)
    so every capacity ratio the behaviour depends on is preserved; see
    EXPERIMENTS.md. *)

type l0_medium = L0_pm | L0_ssd

type l0_strategy =
  | Conventional of { max_tables : int option; max_bytes : int option }
  | Cost_based of Compaction.Cost_model.params
  | Matrix of { columns : int; trigger_bytes : int }

type t = {
  name : string;
  memtable_bytes : int;
  l0_medium : l0_medium;
  l0_capacity : int;
  l0_strategy : l0_strategy;
  table_kind : Pmtable.Table.kind;
  group_size : int;
  l0_run_table_bytes : int;
  partition_count : int;
  level_base_bytes : int;
  level_ratio : int;
  sstable_target_bytes : int;
  bottom_level : int;
  coroutine_compaction : bool;
  pipeline_compaction : bool;
      (** stage major/internal compaction as a read/merge/build/write
          pipeline over bounded SPSC queues (Compaction.Pipeline) and
          rebate the measured stage overlap, replacing
          [coroutine_compaction]'s fixed overlap efficiency *)
  pipeline_cores : int;  (** simulated cores of the stage scheduler *)
  pipeline_queue_capacity : int;  (** bound of each inter-stage SPSC queue *)
  pipeline_block_bytes : int;
      (** granularity at which blocks stream through the stages *)
  pipeline_q_max : int;  (** I/O admission cap of the stage scheduler *)
  pipeline_flush_reserve : int;
      (** device slots of [pipeline_q_max] the read stage may never occupy,
          reserved so flush/write admission (q_flush) cannot starve *)
  background_share : float;
  durable : bool;
  matrix_flush_overhead_ns_per_byte : float;
  ssd_retry_limit : int;
  ssd_retry_backoff_ns : float;
  ssd_retry_jitter : float;
      (** seeded jitter fraction on retry backoff: each sleep is scaled by
          a factor uniform in [1 - j/2, 1 + j/2]; 0 = pure exponential *)
  scrub_rate_limit_mb_s : float option;
  block_cache_mb : int;
      (** DRAM budget of the engine-wide shared SSTable block cache (MiB);
          0 disables it *)
  pm_bloom_bits_per_key : int;
      (** Bloom density of PM level-0 tables (format v2); 0 writes
          bloom-less v1 tables *)
  sanitize : bool;
      (** attach the persistence-ordering sanitizer to the PM device and
          check commit points (default true; also gated by the
          process-wide [Sanitize.Control] switch) *)
  shard_count : int;
      (** range shards behind the router front door (lib/shard); 1 = a
          single engine *)
  group_commit_window_ns : float;
      (** how long a group-commit leader holds a batch open for followers *)
  group_commit_max : int;  (** close and sync a batch at this many writers *)
  admission_soft_tables : int;
      (** per-shard compaction-debt tables where admission starts delaying *)
  admission_hard_tables : int;
      (** per-shard debt tables where admission stalls until drained *)
  admission_soft_delay_ns : float;
      (** delay per unit of soft-zone overshoot (linear to the hard limit) *)
  breaker_enabled : bool;
      (** per-shard circuit breakers in the router: open on error bursts or
          fail-slow drift and answer degraded/unavailable fast *)
  breaker_window : int;  (** sliding outcome window per shard breaker *)
  breaker_failure_threshold : int;
      (** consecutive failures that trip a breaker open *)
  breaker_error_rate : float;
      (** windowed failure rate that trips a breaker open *)
  breaker_slow_factor : float;
      (** latency-tracker drift (EWMA/baseline) diagnosed as fail-slow *)
  breaker_cooldown_ns : float;  (** open-state dwell before probing *)
  breaker_half_open_probes : int;
      (** probe successes required to close a half-open breaker *)
  deadline_read_ns : float;
      (** per-read latency budget for deadline-aware serving; 0 = none *)
  deadline_write_ns : float;
      (** per-write budget; past-deadline writes are shed at admission;
          0 = none *)
  manifest_root : string;
      (** named superblock root slot for the manifest chain; "" = the
          classic unnamed pair (shards use "shard<i>") *)
  wal_external_sync : bool;
      (** stage WAL records but leave the sync durability point to an
          external group-commit batcher calling [Engine.sync_wal] *)
  pm_params : Pmem.params;
  ssd_params : Ssd.params;
  seed : int;
}

val mib : int -> int
val kib : int -> int
val scaled_cost_model : Compaction.Cost_model.params

val base : t
val pmblade : t
val pmblade_pm : t
val pmblade_ssd : t
val rocksdb_like : t
val pmb_p : t
val pmb_pi : t
val pmb_pic : t
val matrixkv_like : l0_mib:int -> t
val matrixkv_8 : t
val matrixkv_80 : t
val all_variants : t list

val fingerprint : t -> string
(** Canonical 8-hex-digit CRC32 over every behaviour-affecting field
    (including nested device and cost-model parameters). Bench JSON stamps
    it so the perf gate never compares runs of different configurations. *)

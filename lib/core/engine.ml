(* The PM-Blade storage engine (§III), configuration-driven so that every
   variant of the evaluation — PMBlade, PMBlade-PM, PMBlade-SSD, the
   PMB-P/PI/PIC ablation ladder, RocksDB-like and MatrixKV-like — runs
   through the same code paths.

   Data flow: writes land in the DRAM memtable; a full memtable is split by
   key range across partitions and flushed (minor compaction) to each
   partition's level-0 — PM tables on the PM device, or SSTables on the SSD
   for the SSD-level-0 variants. Within a partition, level-0 holds a stack
   of *unsorted* tables (mutually overlapping, newest first) plus one
   *sorted run* (key-disjoint tables). Internal compaction merges the stack
   into the run (§IV-B); the cost models of §IV-C decide when, and which
   partitions a major compaction pushes to the SSD levels (L1..Ln,
   levelled, ratio 10).

   Reads go memtable -> unsorted L0 (newest first) -> sorted run -> SSD L0
   (variants) -> L1..Ln, returning the first version found; every device
   touch charges the virtual clock, so an operation's latency is the clock
   delta across the call. *)

(* Fence pointers: per-partition arrays of table boundaries, rebuilt lazily
   so a [get] binary-searches to its candidate tables instead of walking
   every structure with [overlaps].

   Invalidation is structural, not imperative: the set stores the exact
   list values it was built from, and OCaml lists are immutable, so every
   structural change (flush, compaction, split, quarantine, salvage)
   necessarily assigns a new list and the physical-equality check in
   [fences_of] rejects the stale set. No mutation site needs to remember
   to invalidate — the whole bug class is off the table. *)
type fences = {
  f_src_sorted : Pmtable.Table.t list;     (* == p.sorted_run while valid *)
  f_src_ssd_l0 : Sstable.t list;           (* == p.ssd_l0 while valid *)
  f_src_levels : Sstable.t list array;     (* .(j) == p.levels.(j) while valid *)
  (* sorted_run and each level hold key-disjoint tables: ascending by min
     key, binary-searched to at most one candidate per probe *)
  f_sorted : Pmtable.Table.t array;
  f_sorted_min : string array;
  f_levels : Sstable.t array array;
  f_levels_min : string array array;
  (* unsorted-stack SSTables (SSD-L0 variants) mutually overlap: kept
     newest-first, pruned by a min/max scan without touching the tables *)
  f_l0 : Sstable.t array;
  f_l0_min : string array;
  f_l0_max : string array;
}

type partition = {
  mutable idx : int;
  mutable lo : string;
  mutable hi : string;  (* key range [lo, hi); splits shrink it *)
  mutable unsorted : Pmtable.Table.t list;       (* newest first *)
  mutable sorted_run : Pmtable.Table.t list;     (* key-disjoint, ascending *)
  mutable ssd_l0 : Sstable.t list;               (* newest first (SSD-L0 variants) *)
  mutable levels : Sstable.t list array;         (* levels.(j) = L(j+1), ascending *)
  mutable fences : fences option;                (* lazily built, self-invalidating *)
  (* matrix-container watermarks, one per row (physical assq): the row's
     keys below its watermark have been column-compacted into L1 already.
     Rows flushed after a column compaction are absent (watermark ""), so
     fresh writes are never skipped. *)
  mutable matrix_wms : (Pmtable.Table.t * string) list;
  (* cost-model statistics (reset at each compaction of this partition) *)
  mutable reads : int;
  mutable writes : int;
  mutable updates : int;
  mutable window_start : float;
}

type t = {
  config : Config.t;
  clock : Sim.Clock.t;
  pm : Pmem.t;
  ssd : Ssd.t;
  (* engine-wide capacity-bounded DRAM block cache shared by all SSTables
     (config.block_cache_mb; None when 0) *)
  block_cache : Cache.Block_cache.t option;
  mutable memtable : Memtable.t;
  mutable next_seq : int;
  mutable partitions : partition array;
  metrics : Metrics.t;
  mutable memtable_seed : int;
  (* seeded jitter source for retry backoff; deterministic per engine seed
     and independent of the workload/memtable streams *)
  retry_rng : Util.Xoshiro.t;
  (* true while executing a foreground operation (put/delete): compactions
     triggered inside it charge only config.background_share of their
     duration to the operation's timeline *)
  mutable in_foreground : bool;
  (* durability (config.durable): WAL ahead of the memtable, manifest
     persisted on structural changes *)
  mutable wal : Wal.t option;
  (* damage records of structures pulled from the read path (or salvaged
     with losses): persisted with the manifest so recovery neither reopens
     nor garbage-collects them, and so callers can ask whether a missing
     key may have been lost rather than never written *)
  mutable quarantined : Manifest.quarantine list;
  (* staged compaction pipeline (config.pipeline_compaction): the live
     cost-token recording while a staged compaction runs, and the
     cumulative replay totals behind the pipeline.* metrics *)
  mutable pipe_recording : Compaction.Pipeline.recording option;
  pipe_totals : Compaction.Pipeline.totals;
}

(* A read that crossed a quarantine: [fallback] is the best surviving
   answer (an older version, a deeper level, or nothing), which may be
   stale if the newest version lived in the corrupt structure. *)
type read_error = {
  key : string;
  fallback : string option;
  quarantined : Manifest.quarantined_source list;
}

type scan_error = {
  partial : (string * string) list;
  scan_quarantined : Manifest.quarantined_source list;
}

exception Degraded_read of read_error
exception Degraded_scan of scan_error

let max_key_sentinel = "\xff\xff\xff\xff\xff\xff\xff\xff"

(* --- Construction ---------------------------------------------------- *)

(* The engine starts with a single partition covering the whole keyspace
   and splits partitions at their data median as they grow (see
   maybe_split), up to [config.partition_count]. Explicit [boundaries]
   pre-create the partitioning instead. *)
let create ?(boundaries = []) ?(clock = Sim.Clock.create ()) ?pm ?ssd ?cache config =
  (* Shards pass shared [pm]/[ssd]/[cache] devices; the clock is then the
     devices' clock so every shard charges time to the same timeline. *)
  let clock = match pm with Some p -> Pmem.clock p | None -> clock in
  let boundaries = List.sort_uniq String.compare boundaries in
  let lows = "" :: boundaries in
  let highs = boundaries @ [ max_key_sentinel ] in
  let partitions =
    Array.of_list
      (List.mapi
         (fun idx (lo, hi) ->
           {
             idx;
             lo;
             hi;
             unsorted = [];
             sorted_run = [];
             ssd_l0 = [];
             levels = Array.make config.Config.bottom_level [];
             fences = None;
             matrix_wms = [];
             reads = 0;
             writes = 0;
             updates = 0;
             window_start = Sim.Clock.now clock;
           })
         (List.combine lows highs))
  in
  let pm =
    match pm with
    | Some p -> p
    | None ->
        let p = Pmem.create ~params:config.Config.pm_params clock in
        if not config.Config.sanitize then Pmem.set_sanitizer p None;
        p
  in
  let ssd =
    match ssd with Some s -> s | None -> Ssd.create ~params:config.Config.ssd_params clock
  in
  {
    config;
    clock;
    pm;
    ssd;
    block_cache =
      (match cache with
      | Some _ as c -> c
      | None ->
          if config.Config.block_cache_mb > 0 then
            Some
              (Cache.Block_cache.create ~clock
                 ~capacity_bytes:(config.Config.block_cache_mb * 1024 * 1024) ())
          else None);
    memtable = Memtable.create ~seed:config.Config.seed clock;
    next_seq = 1;
    partitions;
    metrics = Metrics.create ();
    memtable_seed = config.Config.seed;
    retry_rng = Util.Xoshiro.create (config.Config.seed lxor 0x7e77);
    in_foreground = false;
    wal = (if config.Config.durable then Some (Wal.create ssd) else None);
    quarantined = [];
    pipe_recording = None;
    pipe_totals = Compaction.Pipeline.create_totals ();
  }

let config t = t.config
let clock t = t.clock
let pm t = t.pm
let ssd t = t.ssd
let metrics t = t.metrics
let wal t = t.wal
let block_cache t = t.block_cache

(* Every SSTable the engine creates reads through the shared cache (when
   one is configured); tables built elsewhere (tests, tools) stay
   cache-less unless attached explicitly. *)
let new_sst t entries =
  let sst = Sstable.of_sorted_list t.ssd entries in
  (match t.block_cache with
  | Some c -> Sstable.attach_shared_cache sst c
  | None -> ());
  sst

let pm_bloom_bits t = t.config.Config.pm_bloom_bits_per_key

(* Transient SSD errors (injected by lib/fault, or a flaky device model)
   are retried with bounded exponential backoff before they surface; each
   retry charges the backoff to the virtual clock. Only wrap operations
   that are idempotent at the device level: reads, and WAL syncs (the
   group buffer survives a failed sync, so re-syncing writes the same
   group once). *)
let rec with_ssd_retry ?(attempt = 0) t f =
  try f ()
  with Ssd.Io_error _ as e ->
    if attempt >= t.config.Config.ssd_retry_limit then raise e
    else begin
      t.metrics.Metrics.ssd_retries <- t.metrics.Metrics.ssd_retries + 1;
      let backoff = t.config.Config.ssd_retry_backoff_ns *. (2.0 ** float_of_int attempt) in
      (* Seeded jitter decorrelates retry storms across engines that share
         a sick device: scale each sleep uniformly within [1-j/2, 1+j/2]. *)
      let backoff =
        let j = t.config.Config.ssd_retry_jitter in
        if j <= 0.0 then backoff
        else backoff *. (1.0 -. (j /. 2.0) +. Util.Xoshiro.float t.retry_rng j)
      in
      if Obs.Trace.is_enabled () then
        Obs.Trace.instant "engine.ssd_retry" ~attrs:(fun () ->
            [ ("attempt", Obs.Trace.Int (attempt + 1)); ("backoff_ns", Obs.Trace.Float backoff) ]);
      Sim.Clock.advance t.clock backoff;
      with_ssd_retry ~attempt:(attempt + 1) t f
    end

let partition_of t key =
  let n = Array.length t.partitions in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if String.compare t.partitions.(mid).lo key <= 0 then lo := mid else hi := mid - 1
  done;
  t.partitions.(!lo)

let partitions t = t.partitions

(* Level-0 bytes of one partition (PM variants). *)
let partition_l0_bytes p =
  List.fold_left (fun acc tbl -> acc + Pmtable.Table.byte_size tbl) 0 p.unsorted
  + List.fold_left (fun acc tbl -> acc + Pmtable.Table.byte_size tbl) 0 p.sorted_run

let l0_bytes t =
  Array.fold_left (fun acc p -> acc + partition_l0_bytes p) 0 t.partitions

(* --- Write amplification --------------------------------------------- *)

let user_bytes t = t.metrics.Metrics.user_bytes_written
let pm_bytes_written t = (Pmem.stats t.pm).Pmem.bytes_written
let ssd_bytes_written t = (Ssd.stats t.ssd).Ssd.bytes_written
let pm_bytes_read t = (Pmem.stats t.pm).Pmem.bytes_read
let ssd_bytes_read t = (Ssd.stats t.ssd).Ssd.bytes_read

let write_amplification t =
  float_of_int (pm_bytes_written t + ssd_bytes_written t)
  /. float_of_int (max 1 t.metrics.Metrics.user_bytes_written)

let read_amplification t =
  float_of_int (pm_bytes_read t + ssd_bytes_read t)
  /. float_of_int (max 1 t.metrics.Metrics.user_bytes_read)

(* Compaction debt: the level-0 backlog (both media) still awaiting
   internal or major compaction. *)
let compaction_debt_bytes t =
  l0_bytes t
  + Array.fold_left
      (fun acc p ->
        acc + List.fold_left (fun a sst -> a + Sstable.byte_size sst) 0 p.ssd_l0)
      0 t.partitions

let compaction_debt_tables t =
  Array.fold_left
    (fun acc p ->
      acc + List.length p.unsorted + List.length p.sorted_run + List.length p.ssd_l0)
    0 t.partitions

(* --- Level helpers ---------------------------------------------------- *)

let level_target t j = t.config.Config.level_base_bytes * int_of_float (float_of_int t.config.Config.level_ratio ** float_of_int j)

let level_bytes p j =
  List.fold_left (fun acc sst -> acc + Sstable.byte_size sst) 0 p.levels.(j)

(* Is [level_idx] the deepest level holding data overlapping [lo, hi]?
   Tombstones can be dropped when compacting into such a level. *)
let is_bottom_for p ~into_level ~lo ~hi =
  let deeper_has_data = ref false in
  for j = into_level + 1 to Array.length p.levels - 1 do
    if List.exists (fun sst -> Sstable.overlaps sst ~min:lo ~max:hi) p.levels.(j) then
      deeper_has_data := true
  done;
  not !deeper_has_data

(* Replace the overlapping SSTables of level [j] with [fresh] (ascending),
   keeping the level sorted by min key. *)
let install_level p j ~removed ~fresh =
  let kept = List.filter (fun sst -> not (List.memq sst removed)) p.levels.(j) in
  let merged =
    List.sort (fun a b -> String.compare (Sstable.min_key a) (Sstable.min_key b)) (kept @ fresh)
  in
  p.levels.(j) <- merged;
  List.iter Sstable.delete removed

(* --- Staged compaction pipeline (§V extension; ROADMAP item 1) --------- *)

(* Compaction is staged read / merge / build / write. The data plane below
   stays serial and byte-exact — same merge, same crash sites, same
   manifest commit point — but each stage section runs under
   [Compaction.Pipeline.with_stage] (Pipe_* attribution, crash-site stage
   tagging) and records a cost token into the live recording. After the
   serial sections finish, [with_pipeline_overlap] replays the recording
   as four coroutines on simulated cores connected by bounded SPSC queues
   and rewinds the clock by the measured overlap (serial - makespan),
   replacing [coroutine_overlap_efficiency]'s fixed rebate. *)

let pipeline_sim_config t =
  {
    Compaction.Pipeline.cores = t.config.Config.pipeline_cores;
    queue_capacity = t.config.Config.pipeline_queue_capacity;
    block_bytes = t.config.Config.pipeline_block_bytes;
    q_max = t.config.Config.pipeline_q_max;
    flush_reserve = t.config.Config.pipeline_flush_reserve;
    ssd_params = t.config.Config.ssd_params;
  }

let pipeline_stats t = t.pipe_totals

(* Run one compaction's staged sections under a fresh recording, then
   replay it and rebate the overlap. Reentrant (cascades nest inside the
   enclosing compaction's recording; a nested compaction gets its own). *)
let with_pipeline_overlap t f =
  if not t.config.Config.pipeline_compaction then f ()
  else begin
    let saved = t.pipe_recording in
    let r = Compaction.Pipeline.create_recording () in
    t.pipe_recording <- Some r;
    let finish () = t.pipe_recording <- saved in
    let result =
      try f ()
      with e ->
        finish ();
        raise e
    in
    finish ();
    if Compaction.Pipeline.has_overlap_work r then begin
      let res = Compaction.Pipeline.simulate (pipeline_sim_config t) r in
      let rebate =
        Float.max 0.0 (Compaction.Pipeline.serial_ns r -. res.Compaction.Pipeline.makespan)
      in
      if rebate > 0.0 then Sim.Clock.rewind t.clock rebate;
      Compaction.Pipeline.note_result t.pipe_totals res ~rebate_ns:rebate
    end;
    result
  end

(* Read-stage section: [f] materialises one input run; its clock delta
   becomes a read token on [medium]. *)
let staged_read t ~medium f =
  match t.pipe_recording with
  | None -> f ()
  | Some r ->
      Compaction.Pipeline.with_stage Compaction.Pipeline.Read @@ fun () ->
      let t0 = Sim.Clock.now t.clock in
      let entries = f () in
      let bytes =
        List.fold_left (fun acc e -> acc + Util.Kv.encoded_size e) 0 entries
      in
      Compaction.Pipeline.record_read r medium ~bytes
        ~cost_ns:(Sim.Clock.now t.clock -. t0);
      entries

(* Merge-stage section around a [Compaction.Merge.merge] call. *)
let staged_merge t f =
  match t.pipe_recording with
  | None -> f ()
  | Some r ->
      Compaction.Pipeline.with_stage Compaction.Pipeline.Merge @@ fun () ->
      let t0 = Sim.Clock.now t.clock in
      let merged, stats = f () in
      Compaction.Pipeline.record_merge r ~entries:(List.length merged)
        ~cost_ns:(Sim.Clock.now t.clock -. t0);
      (merged, stats)

(* Build+write section for one output SSTable: the SSD write time of the
   section is the write token, the remainder (serialisation CPU) the
   build token. Runs under the Write frame so the ssd.write crash sites
   it reaches are tagged with the stage that issues them. *)
let staged_new_sst t slice =
  match t.pipe_recording with
  | None -> new_sst t slice
  | Some r ->
      let wr0 = (Ssd.stats t.ssd).Ssd.write_time in
      let t0 = Sim.Clock.now t.clock in
      let sst =
        Compaction.Pipeline.with_stage Compaction.Pipeline.Write (fun () -> new_sst t slice)
      in
      let total = Sim.Clock.now t.clock -. t0 in
      let io = (Ssd.stats t.ssd).Ssd.write_time -. wr0 in
      Compaction.Pipeline.record_build r ~cost_ns:(Float.max 0.0 (total -. io));
      Compaction.Pipeline.record_write r Compaction.Pipeline.Ssd
        ~bytes:(Sstable.byte_size sst) ~cost_ns:(Float.min io total);
      sst

(* PM-table counterpart (internal compaction's output): build and write
   are one section on PM — recorded as a PM write token. *)
let staged_new_pmtable t slice =
  let build () =
    Pmtable.Table.of_sorted_list ~group_size:t.config.Config.group_size
      ~bloom_bits_per_key:(pm_bloom_bits t) t.pm ~kind:t.config.Config.table_kind slice
  in
  match t.pipe_recording with
  | None -> build ()
  | Some r ->
      let t0 = Sim.Clock.now t.clock in
      let tbl = Compaction.Pipeline.with_stage Compaction.Pipeline.Write build in
      Compaction.Pipeline.record_write r Compaction.Pipeline.Pm
        ~bytes:(Pmtable.Table.byte_size tbl)
        ~cost_ns:(Sim.Clock.now t.clock -. t0);
      tbl

(* --- Compaction: shared write-out ------------------------------------ *)

(* Write a merged run into level [j] of partition [p] as target-sized
   SSTables, removing the inputs it replaces. *)
let write_run_to_level t p ~into_level ~replaced entries =
  let split () =
    Compaction.Merge.split_run ~target_bytes:t.config.Config.sstable_target_bytes entries
  in
  let slices =
    match t.pipe_recording with
    | None -> split ()
    | Some r ->
        Compaction.Pipeline.with_stage Compaction.Pipeline.Build @@ fun () ->
        let t0 = Sim.Clock.now t.clock in
        let slices = split () in
        Compaction.Pipeline.record_build r ~cost_ns:(Sim.Clock.now t.clock -. t0);
        slices
  in
  let fresh =
    List.filter_map
      (fun slice ->
        match slice with
        | [] -> None
        | _ -> Some (staged_new_sst t slice))
      slices
  in
  install_level p into_level ~removed:replaced ~fresh

(* Cascade: while level j exceeds its target, push its oldest tables down.
   level_target t 0 is the (per-partition) L1 target. *)
let rec cascade t p j =
  if j < Array.length p.levels - 1 && level_bytes p j > level_target t j then begin
    (* Pick the first (lowest-key) table as the compaction seed, RocksDB
       round-robin style simplified. *)
    match p.levels.(j) with
    | [] -> ()
    | seed :: _ ->
        let lo = Sstable.min_key seed and hi = Sstable.max_key seed in
        let overlapping =
          List.filter (fun sst -> Sstable.overlaps sst ~min:lo ~max:hi) p.levels.(j + 1)
        in
        let drop_tombstones = is_bottom_for p ~into_level:(j + 1) ~lo ~hi in
        let read_sst sst =
          staged_read t ~medium:Compaction.Pipeline.Ssd (fun () -> Sstable.to_list sst)
        in
        let runs = read_sst seed :: List.map read_sst overlapping in
        let merged, _stats =
          staged_merge t (fun () -> Compaction.Merge.merge ~drop_tombstones ~clock:t.clock runs)
        in
        install_level p j ~removed:[ seed ] ~fresh:[];
        write_run_to_level t p ~into_level:(j + 1) ~replaced:overlapping merged;
        cascade t p (j + 1)
  end

(* --- Internal compaction (§IV-B) -------------------------------------- *)

let internal_compaction t p =
  if p.unsorted <> [] then
    Obs.Attr.with_phase Obs.Attr.Compaction @@ fun () ->
    Obs.Trace.with_span "internal_compaction"
      ~attrs:(fun () ->
        [
          ("partition", Obs.Trace.Int p.idx);
          ("unsorted_tables", Obs.Trace.Int (List.length p.unsorted));
          ("sorted_tables", Obs.Trace.Int (List.length p.sorted_run));
          ("l0_bytes", Obs.Trace.Int (partition_l0_bytes p));
        ])
      (fun () ->
    let t0 = Sim.Clock.now t.clock in
    with_pipeline_overlap t (fun () ->
        let read_pm tbl =
          staged_read t ~medium:Compaction.Pipeline.Pm (fun () -> Pmtable.Table.to_list tbl)
        in
        let runs = List.map read_pm p.unsorted @ List.map read_pm p.sorted_run in
        let merged, _stats =
          staged_merge t (fun () ->
              Compaction.Merge.merge ~drop_tombstones:false ~clock:t.clock runs)
        in
        let slices =
          Compaction.Merge.split_run ~target_bytes:t.config.Config.l0_run_table_bytes merged
        in
        (* Build the new run before freeing the old tables (they are the merge
           inputs); if PM runs out mid-build, release the partial output so the
           retry after relieve_pm_pressure starts clean. *)
        let fresh =
          let built = ref [] in
          (try
             List.iter
               (fun slice ->
                 if slice <> [] then built := staged_new_pmtable t slice :: !built)
               slices
           with e ->
             List.iter Pmtable.Table.free !built;
             raise e);
          List.rev !built
        in
        List.iter Pmtable.Table.free p.unsorted;
        List.iter Pmtable.Table.free p.sorted_run;
        p.unsorted <- [];
        p.sorted_run <- fresh);
    p.reads <- 0;
    p.writes <- 0;
    p.updates <- 0;
    p.window_start <- Sim.Clock.now t.clock;
    t.metrics.Metrics.internal_compactions <- t.metrics.Metrics.internal_compactions + 1;
    let duration = Sim.Clock.now t.clock -. t0 in
    t.metrics.Metrics.internal_compaction_time <-
      t.metrics.Metrics.internal_compaction_time +. duration;
    (* Foreground-triggered compaction runs on a background core. *)
    if t.in_foreground then
      Sim.Clock.rewind t.clock ((1.0 -. t.config.Config.background_share) *. duration))

(* --- Major compaction -------------------------------------------------- *)

(* Under the coroutine-based method (§V), major compaction's CPU work
   overlaps its I/O instead of serialising with it. The staged pipeline
   (config.pipeline_compaction, the default) measures that overlap by
   replaying the compaction's recorded stage costs on simulated cores —
   see [with_pipeline_overlap] above. The fixed-efficiency rebate below
   (duration = max(io, other) + (1 - efficiency) * min(io, other)) is the
   pre-pipeline model, kept for configurations that enable
   [coroutine_compaction] with the pipeline off. *)
let coroutine_overlap_efficiency = 0.85

let with_major_timing t f =
  Obs.Attr.with_phase Obs.Attr.Compaction @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let ssd0 = (Ssd.stats t.ssd).Ssd.read_time +. (Ssd.stats t.ssd).Ssd.write_time in
  let result = with_pipeline_overlap t f in
  let io = (Ssd.stats t.ssd).Ssd.read_time +. (Ssd.stats t.ssd).Ssd.write_time -. ssd0 in
  let total = Sim.Clock.now t.clock -. t0 in
  let other = Float.max 0.0 (total -. io) in
  if t.config.Config.coroutine_compaction && not t.config.Config.pipeline_compaction
  then begin
    let saving = coroutine_overlap_efficiency *. Float.min io other in
    Sim.Clock.rewind t.clock saving
  end;
  let duration = Sim.Clock.now t.clock -. t0 in
  t.metrics.Metrics.major_compactions <- t.metrics.Metrics.major_compactions + 1;
  t.metrics.Metrics.major_compaction_time <-
    t.metrics.Metrics.major_compaction_time +. duration;
  (* Foreground-triggered compaction runs on a background core. *)
  if t.in_foreground then
    Sim.Clock.rewind t.clock ((1.0 -. t.config.Config.background_share) *. duration);
  result

let matrix_wm_of p row = try List.assq row p.matrix_wms with Not_found -> ""

(* Push the whole level-0 of partition [p] into L1. Matrix rows may hold
   entries below their watermark whose newer versions already moved to the
   SSD levels; resurrecting them into L1 would shadow deeper, newer data,
   so they are filtered out. *)
let major_compact_partition t p =
  Obs.Trace.with_span "major_compaction"
    ~attrs:(fun () ->
      [
        ("partition", Obs.Trace.Int p.idx);
        ("l0_bytes", Obs.Trace.Int (partition_l0_bytes p));
        ("ssd_l0_tables", Obs.Trace.Int (List.length p.ssd_l0));
      ])
  @@ fun () ->
  with_major_timing t (fun () ->
      let live_row tbl =
        let wm = matrix_wm_of p tbl in
        let entries = Pmtable.Table.to_list tbl in
        if wm = "" then entries
        else List.filter (fun (e : Util.Kv.entry) -> String.compare e.key wm >= 0) entries
      in
      let l0_runs =
        List.map
          (fun tbl -> staged_read t ~medium:Compaction.Pipeline.Pm (fun () -> live_row tbl))
          p.unsorted
        @ List.map
            (fun tbl ->
              staged_read t ~medium:Compaction.Pipeline.Pm (fun () ->
                  Pmtable.Table.to_list tbl))
            p.sorted_run
        @ List.map
            (fun sst ->
              staged_read t ~medium:Compaction.Pipeline.Ssd (fun () -> Sstable.to_list sst))
            p.ssd_l0
      in
      if l0_runs <> [] then begin
        let lo = p.lo and hi = p.hi in
        let overlapping = p.levels.(0) in
        let drop_tombstones = is_bottom_for p ~into_level:0 ~lo ~hi in
        let runs =
          l0_runs
          @ List.map
              (fun sst ->
                staged_read t ~medium:Compaction.Pipeline.Ssd (fun () -> Sstable.to_list sst))
              overlapping
        in
        let merged, _stats =
          staged_merge t (fun () ->
              Compaction.Merge.merge ~drop_tombstones ~clock:t.clock runs)
        in
        List.iter Pmtable.Table.free p.unsorted;
        List.iter Pmtable.Table.free p.sorted_run;
        List.iter Sstable.delete p.ssd_l0;
        p.unsorted <- [];
        p.sorted_run <- [];
        p.ssd_l0 <- [];
        p.matrix_wms <- [];
        write_run_to_level t p ~into_level:0 ~replaced:overlapping merged;
        cascade t p 0;
        p.reads <- 0;
        p.writes <- 0;
        p.updates <- 0;
        p.window_start <- Sim.Clock.now t.clock
      end)

(* MatrixKV column compaction: take the lowest uncompacted key range worth
   ~1/columns of the level-0 entries from every row and push it into L1,
   advancing each row's watermark instead of rewriting rows on PM. *)

let column_compaction t p ~columns =
  Obs.Trace.with_span "column_compaction"
    ~attrs:(fun () ->
      [
        ("partition", Obs.Trace.Int p.idx);
        ("columns", Obs.Trace.Int columns);
        ("rows", Obs.Trace.Int (List.length p.unsorted));
        ("l0_bytes", Obs.Trace.Int (partition_l0_bytes p));
      ])
  @@ fun () ->
  with_major_timing t (fun () ->
      let rows = p.unsorted in
      if rows <> [] then begin
        let lo =
          List.fold_left
            (fun acc row -> min acc (matrix_wm_of p row))
            max_key_sentinel rows
        in
        (* Read a bounded slice of candidates from each row's live range,
           the way the matrix container's column fence pointers bound the
           real read cost: a row never contributes more than ~a column's
           worth of entries per compaction. *)
        let total_live =
          List.fold_left (fun acc row -> acc + Pmtable.Table.count row) 0 rows
        in
        let per_row_cap =
          max 2 ((total_live / max 1 columns / max 1 (List.length rows)) + 2)
        in
        let exhausted_rows = ref 0 in
        let candidate_runs =
          List.map
            (fun row ->
              staged_read t ~medium:Compaction.Pipeline.Pm @@ fun () ->
              let wm = matrix_wm_of p row in
              let acc = ref [] and n = ref 0 in
              (try
                 Pmtable.Table.range row ~start:wm ~stop:max_key_sentinel (fun e ->
                     acc := e :: !acc;
                     incr n;
                     if !n >= per_row_cap then raise Exit)
               with Exit -> ());
              let run = List.rev !acc in
              if !n < per_row_cap then incr exhausted_rows;
              run)
            rows
        in
        (* Keys below the smallest last-candidate of any non-exhausted row
           are completely represented in the candidates: that key is the
           safe new watermark. Exhausted rows impose no bound. *)
        let new_wm =
          List.fold_left2
            (fun acc row run ->
              match run with
              | [] -> acc
              | _ ->
                  let last = List.nth run (List.length run - 1) in
                  let complete =
                    List.length run < per_row_cap
                    || String.compare (Pmtable.Table.max_key row) last.Util.Kv.key <= 0
                  in
                  if complete then acc else min acc last.Util.Kv.key)
            max_key_sentinel rows candidate_runs
        in
        let merged, _stats =
          staged_merge t (fun () ->
              Compaction.Merge.merge ~drop_tombstones:false ~clock:t.clock candidate_runs)
        in
        let column =
          List.filter (fun (e : Util.Kv.entry) -> String.compare e.key new_wm < 0) merged
        in
        if column = [] && new_wm <> max_key_sentinel then
          (* Degenerate slice (duplicate-heavy boundary): fall back to a
             full major compaction of the partition. *)
          major_compact_partition t p
        else begin
          (if column <> [] then begin
             let overlapping =
               List.filter (fun sst -> Sstable.overlaps sst ~min:lo ~max:new_wm) p.levels.(0)
             in
             let drop_tombstones = is_bottom_for p ~into_level:0 ~lo ~hi:new_wm in
             let overlapping_runs =
               List.map
                 (fun sst ->
                   staged_read t ~medium:Compaction.Pipeline.Ssd (fun () ->
                       Sstable.to_list sst))
                 overlapping
             in
             let merged_out, _ =
               staged_merge t (fun () ->
                   Compaction.Merge.merge ~drop_tombstones ~clock:t.clock
                     (column :: overlapping_runs))
             in
             write_run_to_level t p ~into_level:0 ~replaced:overlapping merged_out;
             cascade t p 0
           end);
          (* Advance every row's watermark — never backwards: lowering one
             would resurface versions already compacted to the SSD levels,
             shadowing newer data there. Rows fully below their watermark
             are dead and their PM space is reclaimed. *)
          let advanced_wm row =
            let old = matrix_wm_of p row in
            if String.compare old new_wm > 0 then old else new_wm
          in
          let live, dead =
            List.partition
              (fun row ->
                let wm = advanced_wm row in
                wm <> max_key_sentinel
                && String.compare (Pmtable.Table.max_key row) wm >= 0)
              rows
          in
          let fresh_wms = List.map (fun row -> (row, advanced_wm row)) live in
          List.iter Pmtable.Table.free dead;
          p.unsorted <- live;
          p.matrix_wms <- fresh_wms;
          p.reads <- 0;
          p.writes <- 0;
          p.updates <- 0;
          p.window_start <- Sim.Clock.now t.clock
        end
      end)

(* --- Compaction strategy (Algorithm 1) --------------------------------- *)

let reads_per_sec t p =
  let window = Sim.Clock.now t.clock -. p.window_start in
  if window <= 0.0 then 0.0 else float_of_int p.reads /. (window /. 1e9)

let run_cost_based t p params =
  (* Eq. 1: internal compaction for read amplification. *)
  let rps = reads_per_sec t p in
  let eq1 =
    Compaction.Cost_model.should_internal_compact_rf params ~reads_per_sec:rps
      ~unsorted:(List.length p.unsorted)
  in
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "cost_model.eq1" ~attrs:(fun () ->
        [
          ("partition", Obs.Trace.Int p.idx);
          ("reads_per_sec", Obs.Trace.Float rps);
          ("unsorted_tables", Obs.Trace.Int (List.length p.unsorted));
          ("compact", Obs.Trace.Bool eq1);
        ]);
  if eq1 then internal_compaction t p;
  (* Eq. 2: internal compaction to curb SSD write amplification. *)
  (if p.unsorted <> [] then begin
     let l0_records =
       List.fold_left (fun acc tbl -> acc + Pmtable.Table.count tbl) 0 p.unsorted
       + List.fold_left (fun acc tbl -> acc + Pmtable.Table.count tbl) 0 p.sorted_run
     in
     let eq2 =
       Compaction.Cost_model.should_internal_compact_wf params
         ~size:(partition_l0_bytes p) ~l0_records ~updates:p.updates
     in
     if Obs.Trace.is_enabled () then
       Obs.Trace.instant "cost_model.eq2" ~attrs:(fun () ->
           [
             ("partition", Obs.Trace.Int p.idx);
             ("l0_bytes", Obs.Trace.Int (partition_l0_bytes p));
             ("l0_records", Obs.Trace.Int l0_records);
             ("updates", Obs.Trace.Int p.updates);
             ("compact", Obs.Trace.Bool eq2);
           ]);
     if eq2 then internal_compaction t p
   end);
  (* Eq. 3: major-compact everything outside the preserved warm set. *)
  let eq3 = Compaction.Cost_model.should_major_compact params ~l0_bytes:(l0_bytes t) in
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "cost_model.eq3" ~attrs:(fun () ->
        [
          ("l0_bytes", Obs.Trace.Int (l0_bytes t));
          ("compact", Obs.Trace.Bool eq3);
        ]);
  if eq3 then begin
    let candidates =
      Array.to_list t.partitions
      |> List.filter_map (fun p ->
             let size = partition_l0_bytes p in
             if size = 0 then None else Some (p.idx, p.reads, size))
    in
    let preserved = Compaction.Cost_model.select_preserved params candidates in
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "cost_model.warm_set" ~attrs:(fun () ->
          [
            ("candidates", Obs.Trace.Int (List.length candidates));
            ("preserved", Obs.Trace.Int (List.length preserved));
          ]);
    Array.iter
      (fun p ->
        if partition_l0_bytes p > 0 && not (List.mem p.idx preserved) then
          major_compact_partition t p)
      t.partitions
  end

let run_strategy t p =
  match t.config.Config.l0_strategy with
  | Config.Cost_based params -> run_cost_based t p params
  | Config.Conventional { max_tables; max_bytes } ->
      let table_count =
        match t.config.Config.l0_medium with
        | Config.L0_pm -> List.length p.unsorted
        | Config.L0_ssd -> List.length p.ssd_l0
      in
      let trigger_tables =
        match max_tables with Some m -> table_count >= m | None -> false
      in
      let trigger_bytes =
        match max_bytes with Some m -> l0_bytes t >= m | None -> false
      in
      if trigger_tables then major_compact_partition t p
      else if trigger_bytes then
        (* PM full: flush every partition's level-0 (the conventional
           whole-level-0 compaction of PMBlade-PM). *)
        Array.iter (fun p -> if partition_l0_bytes p > 0 then major_compact_partition t p)
          t.partitions
  | Config.Matrix { columns; trigger_bytes } ->
      (* Column-compact the fullest partition until the matrix container
         fits its budget again; a small container compacts constantly and
         incoming writes absorb the stall (the MatrixKV-8GB behaviour the
         paper measures). *)
      let guard = ref (2 * columns) in
      while l0_bytes t >= trigger_bytes && !guard > 0 do
        decr guard;
        let victim =
          Array.fold_left
            (fun best p ->
              if partition_l0_bytes p > partition_l0_bytes best then p else best)
            t.partitions.(0) t.partitions
        in
        column_compaction t victim ~columns
      done

(* --- Partition splitting ------------------------------------------------ *)

(* Total bytes a partition holds across media. *)
let partition_total_bytes p =
  partition_l0_bytes p
  + List.fold_left (fun acc sst -> acc + Sstable.byte_size sst) 0 p.ssd_l0
  + Array.fold_left
      (fun acc level ->
        acc + List.fold_left (fun acc sst -> acc + Sstable.byte_size sst) 0 level)
      0 p.levels

(* Physical live bytes across PM and SSD structures — the space-amp
   numerator. *)
let space_bytes t =
  Array.fold_left (fun acc p -> acc + partition_total_bytes p) 0 t.partitions

(* Median-ish split key from structure boundaries (no data reads): the
   middle of the sorted min/max keys of every table in the partition. *)
let choose_split_key p =
  let keys = ref [] in
  let add_t tbl = keys := Pmtable.Table.min_key tbl :: Pmtable.Table.max_key tbl :: !keys in
  let add_s sst = keys := Sstable.min_key sst :: Sstable.max_key sst :: !keys in
  List.iter add_t p.unsorted;
  List.iter add_t p.sorted_run;
  List.iter add_s p.ssd_l0;
  Array.iter (List.iter add_s) p.levels;
  let sorted = List.sort_uniq String.compare !keys in
  let inside = List.filter (fun k -> String.compare k p.lo > 0 && String.compare k p.hi < 0) sorted in
  let n = List.length inside in
  if n = 0 then None else Some (List.nth inside (n / 2))

(* Cut a PM table at [key]: tables fully on one side move; a straddling
   table is read back and rebuilt as two (charged like a small internal
   compaction). Returns (left, right) replacement lists in order. *)
let split_pm_table t key tbl =
  if String.compare (Pmtable.Table.max_key tbl) key < 0 then ([ tbl ], [])
  else if String.compare (Pmtable.Table.min_key tbl) key >= 0 then ([], [ tbl ])
  else begin
    let entries = Pmtable.Table.to_list tbl in
    let left, right = List.partition (fun (e : Util.Kv.entry) -> String.compare e.key key < 0) entries in
    let build slice =
      if slice = [] then []
      else
        [ Pmtable.Table.of_sorted_list ~group_size:t.config.Config.group_size
            ~bloom_bits_per_key:(pm_bloom_bits t) t.pm
            ~kind:(Pmtable.Table.kind tbl) slice ]
    in
    let fresh_left = build left and fresh_right = build right in
    Pmtable.Table.free tbl;
    (fresh_left, fresh_right)
  end

let split_sstable t key sst =
  if String.compare (Sstable.max_key sst) key < 0 then ([ sst ], [])
  else if String.compare (Sstable.min_key sst) key >= 0 then ([], [ sst ])
  else begin
    let entries = Sstable.to_list sst in
    let left, right = List.partition (fun (e : Util.Kv.entry) -> String.compare e.key key < 0) entries in
    let build slice = if slice = [] then [] else [ new_sst t slice ] in
    let fresh_left = build left and fresh_right = build right in
    Sstable.delete sst;
    (fresh_left, fresh_right)
  end

let split_partition t p key =
  (* Matrix rows carry watermarks: entries below a row's watermark already
     live in L1, so a rebuilt (straddling) row must drop them physically —
     otherwise stale versions would resurface under the halves' watermark
     bookkeeping. Intact rows keep their watermark association. *)
  let split_unsorted rows =
    List.fold_right
      (fun row (ls, rs, wms) ->
        let wm = matrix_wm_of p row in
        if String.compare (Pmtable.Table.max_key row) key < 0 then
          (row :: ls, rs, (row, wm) :: wms)
        else if String.compare (Pmtable.Table.min_key row) key >= 0 then
          (ls, row :: rs, (row, wm) :: wms)
        else begin
          let entries =
            Pmtable.Table.to_list row
            |> List.filter (fun (e : Util.Kv.entry) -> String.compare e.key wm >= 0)
          in
          let left, right =
            List.partition (fun (e : Util.Kv.entry) -> String.compare e.key key < 0) entries
          in
          let build slice =
            if slice = [] then []
            else
              [ Pmtable.Table.of_sorted_list ~group_size:t.config.Config.group_size
                  ~bloom_bits_per_key:(pm_bloom_bits t) t.pm
                  ~kind:(Pmtable.Table.kind row) slice ]
          in
          let fresh_left = build left and fresh_right = build right in
          Pmtable.Table.free row;
          ( fresh_left @ ls,
            fresh_right @ rs,
            List.map (fun tbl -> (tbl, wm)) (fresh_left @ fresh_right) @ wms )
        end)
      rows ([], [], [])
  in
  let split_tables tables =
    List.fold_right
      (fun tbl (ls, rs) ->
        let l, r = split_pm_table t key tbl in
        (l @ ls, r @ rs))
      tables ([], [])
  in
  let split_sstables tables =
    List.fold_right
      (fun sst (ls, rs) ->
        let l, r = split_sstable t key sst in
        (l @ ls, r @ rs))
      tables ([], [])
  in
  let unsorted_l, unsorted_r, wms = split_unsorted p.unsorted in
  let sorted_l, sorted_r = split_tables p.sorted_run in
  let ssd_l, ssd_r = split_sstables p.ssd_l0 in
  let levels_r = Array.map (fun _ -> []) p.levels in
  Array.iteri
    (fun j level ->
      let l, r = split_sstables level in
      p.levels.(j) <- l;
      levels_r.(j) <- r)
    p.levels;
  let wm_of tbl = try List.assq tbl wms with Not_found -> "" in
  let fresh =
    {
      idx = p.idx + 1;
      lo = key;
      hi = p.hi;
      unsorted = unsorted_r;
      sorted_run = sorted_r;
      ssd_l0 = ssd_r;
      levels = levels_r;
      fences = None;
      matrix_wms = List.map (fun tbl -> (tbl, wm_of tbl)) unsorted_r;
      reads = p.reads / 2;
      writes = p.writes / 2;
      updates = p.updates / 2;
      window_start = p.window_start;
    }
  in
  p.hi <- key;
  p.unsorted <- unsorted_l;
  p.sorted_run <- sorted_l;
  p.ssd_l0 <- ssd_l;
  p.matrix_wms <- List.map (fun tbl -> (tbl, wm_of tbl)) unsorted_l;
  p.reads <- p.reads / 2;
  p.writes <- p.writes / 2;
  p.updates <- p.updates / 2;
  let before = Array.to_list t.partitions in
  let expanded =
    List.concat_map (fun q -> if q == p then [ q; fresh ] else [ q ]) before
  in
  t.partitions <- Array.of_list expanded;
  Array.iteri (fun i q -> q.idx <- i) t.partitions

(* Split the biggest partition once it clearly outweighs an even share of
   the data, until the configured partition count is reached. *)
let maybe_split t =
  let count = Array.length t.partitions in
  if count < t.config.Config.partition_count then begin
    let total = Array.fold_left (fun acc p -> acc + partition_total_bytes p) 0 t.partitions in
    let threshold =
      max (8 * t.config.Config.memtable_bytes)
        (total * 3 / (2 * t.config.Config.partition_count))
    in
    let biggest =
      Array.fold_left
        (fun best p -> if partition_total_bytes p > partition_total_bytes best then p else best)
        t.partitions.(0) t.partitions
    in
    if partition_total_bytes biggest > threshold then
      match choose_split_key biggest with
      | Some key -> split_partition t biggest key
      | None -> ()
  end

(* --- Durability: manifest + WAL ------------------------------------------ *)

let manifest_state t =
  {
    Manifest.next_seq = t.next_seq;
    wal_file_id = Option.map Wal.file_id t.wal;
    partitions =
      Array.to_list t.partitions
      |> List.map (fun p ->
             {
               Manifest.lo = p.lo;
               hi = p.hi;
               unsorted =
                 List.map
                   (fun tbl ->
                     { Manifest.region_id = Pmtable.Table.region_id tbl;
                       watermark = matrix_wm_of p tbl })
                   p.unsorted;
               sorted_run = List.map Pmtable.Table.region_id p.sorted_run;
               ssd_l0 = List.map Sstable.file_id p.ssd_l0;
               levels = Array.to_list p.levels |> List.map (List.map Sstable.file_id);
             });
    quarantined = t.quarantined;
  }

let persist_manifest t =
  if t.config.Config.durable then begin
    Manifest.persist ~root:t.config.Config.manifest_root t.ssd (manifest_state t);
    (* the manifest now references the current PM tables: all of them must
       be fenced or a crash here recovers into unpersisted bytes *)
    Pmem.commit_point t.pm "manifest.install"
  end

(* --- Quarantine & graceful degradation ----------------------------------

   A failed checksum marks a structure as untrustworthy: it is pulled from
   the read path immediately (the DRAM handle keeps its key range, so the
   damage record bounds what may have been lost) but its PM region / SSD
   file is kept for a later salvage pass or forensics. The caller's
   operation is then retried against the remaining structures — it degrades
   to an older or deeper version instead of crashing or, worse, returning
   bytes that failed verification. *)

let note_quarantine (t : t) source ~q_lo ~q_hi =
  let already =
    List.exists (fun (q : Manifest.quarantine) -> q.source = source) t.quarantined
  in
  if not already then begin
    t.quarantined <- t.quarantined @ [ { Manifest.source; q_lo; q_hi } ];
    t.metrics.Metrics.quarantined <- t.metrics.Metrics.quarantined + 1;
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "engine.quarantine" ~attrs:(fun () ->
          [
            ( "source",
              Obs.Trace.Str
                (match source with
                | Manifest.Q_region id -> Printf.sprintf "pm_region:%d" id
                | Manifest.Q_file id -> Printf.sprintf "ssd_file:%d" id) );
            ("lost_lo", Obs.Trace.Str q_lo);
            ("lost_hi", Obs.Trace.Str q_hi);
          ]);
    persist_manifest t
  end

(* Pull the table backed by [region_id] out of every read path (its region
   stays allocated for salvage). *)
let quarantine_region t region_id =
  let removed = ref None in
  Array.iter
    (fun p ->
      let keep tbl =
        if Pmtable.Table.region_id tbl = region_id then begin
          removed := Some tbl;
          false
        end
        else true
      in
      p.unsorted <- List.filter keep p.unsorted;
      p.sorted_run <- List.filter keep p.sorted_run;
      p.matrix_wms <-
        List.filter (fun (tbl, _) -> Pmtable.Table.region_id tbl <> region_id) p.matrix_wms)
    t.partitions;
  let q_lo, q_hi =
    match !removed with
    | Some tbl -> (Pmtable.Table.min_key tbl, Pmtable.Table.max_key tbl)
    | None -> ("", max_key_sentinel)
  in
  note_quarantine t (Manifest.Q_region region_id) ~q_lo ~q_hi

let quarantine_file t file_id =
  let removed = ref None in
  Array.iter
    (fun p ->
      let keep sst =
        if Sstable.file_id sst = file_id then begin
          removed := Some sst;
          false
        end
        else true
      in
      p.ssd_l0 <- List.filter keep p.ssd_l0;
      Array.iteri (fun j level -> p.levels.(j) <- List.filter keep level) p.levels)
    t.partitions;
  (* The file stays on the device for salvage/forensics, but its cached
     blocks must leave DRAM with it: a later hit would serve bytes from a
     structure the read path no longer trusts. (The fence set invalidates
     itself: the list filters above installed new list values.) *)
  (match !removed with Some sst -> Sstable.invalidate_cache sst | None -> ());
  let q_lo, q_hi =
    match !removed with
    | Some sst -> (Sstable.min_key sst, Sstable.max_key sst)
    | None -> ("", max_key_sentinel)
  in
  note_quarantine t (Manifest.Q_file file_id) ~q_lo ~q_hi

(* Run [f]; when it trips over a corrupt structure, quarantine the
   structure and retry — each retry has strictly fewer structures to
   distrust, so the loop terminates. Returns [f]'s result plus the sources
   quarantined along the way (empty on the clean fast path). *)
let guard_integrity t f =
  let hit = ref [] in
  let rec loop n =
    if n > 4096 then failwith "Engine.guard_integrity: corruption retry loop"
    else
      try f () with
      | Pmtable.Integrity.Corrupted { region_id; _ } ->
          quarantine_region t region_id;
          hit := Manifest.Q_region region_id :: !hit;
          loop (n + 1)
      | Sstable.Corrupted_block { file_id; _ } ->
          quarantine_file t file_id;
          hit := Manifest.Q_file file_id :: !hit;
          loop (n + 1)
  in
  let result = loop 0 in
  (result, List.rev !hit)

(* Is [key] inside a quarantined/salvaged structure's lost range? A [None]
   from {!get} for such a key means "possibly lost", not "never written". *)
let damaged_key (t : t) key =
  List.exists
    (fun (q : Manifest.quarantine) ->
      String.compare q.q_lo key <= 0 && String.compare key q.q_hi <= 0)
    t.quarantined

let quarantined (t : t) = t.quarantined

(* Durable engines record their (empty) structure immediately, so recovery
   works even before the first flush. *)
let create ?boundaries ?clock ?pm ?ssd ?cache config =
  let t = create ?boundaries ?clock ?pm ?ssd ?cache config in
  if config.Config.durable then persist_manifest t;
  t

(* --- Minor compaction (memtable flush) --------------------------------- *)

let flush_memtable t =
  if not (Memtable.is_empty t.memtable) then begin
    let flushed_entries = Memtable.count t.memtable in
    let flushed_bytes = Memtable.byte_size t.memtable in
    Obs.Attr.with_phase Obs.Attr.Flush @@ fun () ->
    Obs.Trace.with_span "flush"
      ~attrs:(fun () ->
        [
          ("entries", Obs.Trace.Int flushed_entries);
          ("bytes", Obs.Trace.Int flushed_bytes);
        ])
    @@ fun () ->
    let entries = Memtable.to_list t.memtable in
    t.memtable_seed <- t.memtable_seed + 1;
    t.memtable <- Memtable.create ~seed:t.memtable_seed t.clock;
    t.metrics.Metrics.minor_compactions <- t.metrics.Metrics.minor_compactions + 1;
    (* Split by partition; entries are already sorted so each slice is too. *)
    let by_partition = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let p = partition_of t e.Util.Kv.key in
        let slice = try Hashtbl.find by_partition p.idx with Not_found -> [] in
        Hashtbl.replace by_partition p.idx (e :: slice))
      entries;
    Hashtbl.iter
      (fun idx rev_slice ->
        let p = t.partitions.(idx) in
        let slice = List.rev rev_slice in
        (match t.config.Config.l0_medium with
        | Config.L0_pm ->
            let bytes =
              List.fold_left (fun acc e -> acc + Util.Kv.encoded_size e) 0 slice
            in
            (* MatrixKV's matrix container pays extra construction cost
               (cross-hint indexing) on every flush. *)
            if t.config.Config.matrix_flush_overhead_ns_per_byte > 0.0 then
              Sim.Clock.advance t.clock
                (float_of_int bytes *. t.config.Config.matrix_flush_overhead_ns_per_byte);
            let table =
              Pmtable.Table.of_sorted_list ~group_size:t.config.Config.group_size
                ~bloom_bits_per_key:(pm_bloom_bits t) t.pm
                ~kind:t.config.Config.table_kind slice
            in
            p.unsorted <- table :: p.unsorted
        | Config.L0_ssd ->
            let sst = new_sst t slice in
            p.ssd_l0 <- sst :: p.ssd_l0);
        (* Compaction reads whole tables; a corrupt one is quarantined and
           the strategy retried against the survivors (the merge inputs are
           materialised before any structure is freed, so a retry starts
           clean). *)
        ignore (guard_integrity t (fun () -> run_strategy t p)))
      by_partition;
    maybe_split t;
    (* The flushed data is durable in level-0: retire the old log and
       record the new structure. *)
    (match t.wal with Some w -> Wal.rotate w | None -> ());
    persist_manifest t
  end

(* Out-of-space fallback: force major compaction of the coldest partitions
   until the allocation fits. *)
let relieve_pm_pressure t =
  let by_coldness =
    Array.to_list t.partitions
    |> List.filter (fun p -> partition_l0_bytes p > 0)
    |> List.sort (fun a b -> compare a.reads b.reads)
  in
  match by_coldness with
  | [] -> ()
  | coldest :: _ -> ignore (guard_integrity t (fun () -> major_compact_partition t coldest))

(* --- Write path --------------------------------------------------------- *)

let apply t entry =
  Obs.Attr.with_op Obs.Attr.Write @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  (* Strict durability: the log entry is synced before the write is
     acknowledged (there are no concurrent committers to group with in a
     single-timeline simulation). A transiently-failed sync keeps the
     group buffered, so the retry re-issues the same bytes. *)
  (match t.wal with
  | Some w ->
      Obs.Attr.with_phase Obs.Attr.Wal_stage (fun () -> Wal.append w entry);
      (* under group commit the durability-point sync is deferred to the
         batcher ([sync_wal]); the record stays staged in the group buffer *)
      if not t.config.Config.wal_external_sync then
        Obs.Attr.with_phase Obs.Attr.Wal_sync (fun () ->
            with_ssd_retry t (fun () -> Wal.sync w);
            (* acknowledging the write promises durability of everything the
               entry's visibility depends on — including PM state *)
            Pmem.commit_point t.pm "wal.sync")
  | None -> ());
  Obs.Attr.with_phase Obs.Attr.Memtable_probe (fun () ->
      Memtable.insert t.memtable entry);
  t.metrics.Metrics.user_bytes_written <-
    t.metrics.Metrics.user_bytes_written + Util.Kv.encoded_size entry;
  if Memtable.byte_size t.memtable >= t.config.Config.memtable_bytes then begin
    t.in_foreground <- true;
    let attempts = ref 0 in
    let rec try_flush () =
      match flush_memtable t with
      | () -> ()
      | exception Pmem.Out_of_space _ when !attempts < 32 ->
          incr attempts;
          relieve_pm_pressure t;
          try_flush ()
    in
    (* The foreground write blocks until level-0 has room: everything from
       here to the flush's return is stall time, whatever mix of flush and
       emergency compaction it took to clear the backlog. *)
    let stall0 = Sim.Clock.now t.clock in
    Obs.Attr.with_phase Obs.Attr.Stall_wait (fun () ->
        Fun.protect ~finally:(fun () -> t.in_foreground <- false) try_flush);
    t.metrics.Metrics.write_stalls <- t.metrics.Metrics.write_stalls + 1;
    t.metrics.Metrics.write_stall_time <-
      t.metrics.Metrics.write_stall_time
      +. Float.max 0.0 (Sim.Clock.now t.clock -. stall0)
  end;
  Metrics.note_write t.metrics (Sim.Clock.now t.clock -. t0)

(* Group-commit durability point: sync whatever the WAL has staged (all
   writers' records since the last sync) in one log append + fsync. The
   batcher calls this once per batch; a no-op without a WAL. *)
let sync_wal t =
  match t.wal with
  | Some w ->
      Obs.Attr.with_phase Obs.Attr.Wal_sync (fun () ->
          with_ssd_retry t (fun () -> Wal.sync w);
          Pmem.commit_point t.pm "wal.sync")
  | None -> ()

let memtable_bytes t = Memtable.byte_size t.memtable

let put ?(update = false) t ~key value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p = partition_of t key in
  p.writes <- p.writes + 1;
  if update then p.updates <- p.updates + 1;
  apply t (Util.Kv.entry ~key ~seq value)

let delete t key =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let p = partition_of t key in
  p.writes <- p.writes + 1;
  p.updates <- p.updates + 1;
  apply t (Util.Kv.tombstone ~key ~seq)

(* --- Read path ----------------------------------------------------------- *)

let visible = function
  | Some { Util.Kv.kind = Util.Kv.Put; value; _ } -> Some value
  | Some { Util.Kv.kind = Util.Kv.Delete; _ } | None -> None

(* --- Fence-pointer probe path ---

   The sorted run and every SSD level hold key-disjoint tables
   (Compaction.Merge.split_run never splits one key's versions across
   slices), so a probe binary-searches the fence array to at most one
   candidate table instead of walking the list with [overlaps]. The
   unsorted stacks (PM rows, SSD-L0 files) mutually overlap and stay
   linear — but the L0 fence arrays still prune by min/max without
   touching the tables. *)

(* Debug check (on by default; tests may widen or drop it): a disjoint
   structure's tables must be strictly ordered — overlap here means a
   compaction or split bug that the fence search would silently turn into
   wrong answers, so fail loudly at rebuild time instead. *)
let check_fence_invariants = ref true

let assert_disjoint what p_idx n ~min_of ~max_of =
  if !check_fence_invariants then
    for i = 0 to n - 2 do
      if String.compare (max_of i) (min_of (i + 1)) >= 0 then
        failwith
          (Printf.sprintf
             "Engine: %s of partition %d violates disjointness: table %d [%s..%s] overlaps table %d [%s..%s]"
             what p_idx i (min_of i) (max_of i) (i + 1) (min_of (i + 1)) (max_of (i + 1)))
    done

let build_fences t p =
  t.metrics.Metrics.fence_rebuilds <- t.metrics.Metrics.fence_rebuilds + 1;
  let by_min_t a b = String.compare (Pmtable.Table.min_key a) (Pmtable.Table.min_key b) in
  let by_min_s a b = String.compare (Sstable.min_key a) (Sstable.min_key b) in
  let sorted = Array.of_list p.sorted_run in
  Array.sort by_min_t sorted;
  assert_disjoint "sorted run" p.idx (Array.length sorted)
    ~min_of:(fun i -> Pmtable.Table.min_key sorted.(i))
    ~max_of:(fun i -> Pmtable.Table.max_key sorted.(i));
  let levels =
    Array.map
      (fun lst ->
        let arr = Array.of_list lst in
        Array.sort by_min_s arr;
        arr)
      p.levels
  in
  Array.iteri
    (fun j arr ->
      assert_disjoint (Printf.sprintf "level %d" (j + 1)) p.idx (Array.length arr)
        ~min_of:(fun i -> Sstable.min_key arr.(i))
        ~max_of:(fun i -> Sstable.max_key arr.(i)))
    levels;
  let l0 = Array.of_list p.ssd_l0 (* keep newest-first probe order *) in
  {
    f_src_sorted = p.sorted_run;
    f_src_ssd_l0 = p.ssd_l0;
    f_src_levels = Array.copy p.levels;
    f_sorted = sorted;
    f_sorted_min = Array.map Pmtable.Table.min_key sorted;
    f_levels = levels;
    f_levels_min = Array.map (Array.map Sstable.min_key) levels;
    f_l0 = l0;
    f_l0_min = Array.map Sstable.min_key l0;
    f_l0_max = Array.map Sstable.max_key l0;
  }

let fences_valid p f =
  f.f_src_sorted == p.sorted_run
  && f.f_src_ssd_l0 == p.ssd_l0
  && Array.length f.f_src_levels = Array.length p.levels
  &&
  let ok = ref true in
  Array.iteri (fun j l -> if not (l == p.levels.(j)) then ok := false) f.f_src_levels;
  !ok

let fences_of t p =
  match p.fences with
  | Some f when fences_valid p f -> f
  | _ ->
      let f = build_fences t p in
      p.fences <- Some f;
      f

(* Rightmost index with [mins.(i) <= key], or -1 when the key precedes
   every table. The candidate still needs its max checked. *)
let fence_candidate mins key =
  let n = Array.length mins in
  if n = 0 || String.compare mins.(0) key > 0 then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if String.compare mins.(mid) key <= 0 then lo := mid else hi := mid - 1
    done;
    !lo
  end

(* Search one partition's structures in recency order; the first version
   found is the newest. Returns the entry and where it came from. *)
let find_in_partition t p key =
  let is_matrix =
    match t.config.Config.l0_strategy with Config.Matrix _ -> true | _ -> false
  in
  let f = fences_of t p in
  let from_unsorted () =
    (* Mutually-overlapping stack: recency order is the correctness rule,
       so the walk stays linear (each table's min/max and bloom still
       screen it before any PM group read). *)
    List.find_map
      (fun tbl ->
        (* Under the matrix container, a row's keys below its watermark
           have moved to L1 already: skip the row for those probes. *)
        if is_matrix && String.compare key (matrix_wm_of p tbl) < 0 then None
        else if Pmtable.Table.overlaps tbl ~min:key ~max:key then Pmtable.Table.get tbl key
        else None)
      p.unsorted
  in
  let from_sorted () =
    let i = fence_candidate f.f_sorted_min key in
    if i < 0 then None
    else
      let tbl = f.f_sorted.(i) in
      if String.compare (Pmtable.Table.max_key tbl) key >= 0 then Pmtable.Table.get tbl key
      else None
  in
  let from_ssd_l0 () =
    let n = Array.length f.f_l0 in
    let rec loop i =
      if i >= n then None
      else if
        String.compare f.f_l0_min.(i) key <= 0 && String.compare key f.f_l0_max.(i) <= 0
      then
        match Sstable.get f.f_l0.(i) key with Some e -> Some e | None -> loop (i + 1)
      else loop (i + 1)
    in
    loop 0
  in
  let from_levels () =
    let rec loop j =
      if j >= Array.length f.f_levels then None
      else
        let hit =
          let i = fence_candidate f.f_levels_min.(j) key in
          if i < 0 then None
          else
            let sst = f.f_levels.(j).(i) in
            if String.compare (Sstable.max_key sst) key >= 0 then Sstable.get sst key
            else None
        in
        match hit with
        | Some e -> Some (e, Metrics.From_level (j + 1))
        | None -> loop (j + 1)
    in
    loop 0
  in
  match from_unsorted () with
  | Some e -> Some (e, Metrics.From_pm_l0)
  | None -> (
      match from_sorted () with
      | Some e -> Some (e, Metrics.From_pm_l0)
      | None -> (
          match from_ssd_l0 () with
          | Some e -> Some (e, Metrics.From_ssd_l0)
          | None -> from_levels ()))

(* Point lookup with integrity degradation: a checksum failure quarantines
   the structure and the probe retries against the survivors, so the
   result is the newest *verified* version — possibly older than a version
   that rotted, hence the typed error when a quarantine was crossed. *)
let get_checked t key =
  Obs.Attr.with_op Obs.Attr.Read @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let p = partition_of t key in
  p.reads <- p.reads + 1;
  let found, hit =
    guard_integrity t (fun () ->
        match
          Obs.Attr.with_phase Obs.Attr.Memtable_probe (fun () ->
              Memtable.find t.memtable key)
        with
        | Some e -> Some (e, Metrics.From_memtable)
        | None -> with_ssd_retry t (fun () -> find_in_partition t p key))
  in
  let latency = Sim.Clock.now t.clock -. t0 in
  (match found with
  | Some (_, source) -> Metrics.note_read t.metrics source latency
  | None -> Metrics.note_read t.metrics Metrics.Not_found_ latency);
  let value = visible (Option.map fst found) in
  (match value with
  | Some v ->
      t.metrics.Metrics.user_bytes_read <-
        t.metrics.Metrics.user_bytes_read + String.length key + String.length v
  | None -> ());
  match hit with
  | [] -> Ok value
  | hit ->
      t.metrics.Metrics.degraded_reads <- t.metrics.Metrics.degraded_reads + 1;
      Error { key; fallback = value; quarantined = hit }

let get t key =
  match get_checked t key with Ok v -> v | Error e -> raise (Degraded_read e)

(* PM-only probe for degraded serving behind an open circuit breaker:
   consult only the DRAM memtable and the partition's PM level-0 stack,
   never the SSD. Recency order makes a hit *exact* — the memtable and PM
   L0 hold strictly newer versions than anything on the SSD — so [`Hit]
   answers are never stale. A miss means the newest version may live on
   the (sick) SSD, and a probe that crosses a quarantine also answers
   [`Miss]: the quarantined structure may have hidden a newer version. *)
let get_pm_only t key =
  let p = partition_of t key in
  let is_matrix =
    match t.config.Config.l0_strategy with Config.Matrix _ -> true | _ -> false
  in
  let found, hit =
    guard_integrity t (fun () ->
        match
          Obs.Attr.with_phase Obs.Attr.Memtable_probe (fun () ->
              Memtable.find t.memtable key)
        with
        | Some e -> Some e
        | None -> (
            let f = fences_of t p in
            let from_unsorted =
              List.find_map
                (fun tbl ->
                  if is_matrix && String.compare key (matrix_wm_of p tbl) < 0 then
                    None
                  else if Pmtable.Table.overlaps tbl ~min:key ~max:key then
                    Pmtable.Table.get tbl key
                  else None)
                p.unsorted
            in
            match from_unsorted with
            | Some e -> Some e
            | None ->
                let i = fence_candidate f.f_sorted_min key in
                if i < 0 then None
                else
                  let tbl = f.f_sorted.(i) in
                  if String.compare (Pmtable.Table.max_key tbl) key >= 0 then
                    Pmtable.Table.get tbl key
                  else None))
  in
  match (found, hit) with
  | Some e, [] -> `Hit (visible (Some e))
  | _ -> `Miss

(* Device footprint of this engine, for shard-scoped fault injection and
   health attribution: which SSD files and PM regions a gray fault on this
   engine's range would touch. *)
let owned_file_ids t =
  let ids = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      List.iter (fun sst -> Hashtbl.replace ids (Sstable.file_id sst) ()) p.ssd_l0;
      Array.iter
        (List.iter (fun sst -> Hashtbl.replace ids (Sstable.file_id sst) ()))
        p.levels)
    t.partitions;
  (match t.wal with Some w -> Hashtbl.replace ids (Wal.file_id w) () | None -> ());
  Hashtbl.fold (fun id () acc -> id :: acc) ids [] |> List.sort compare

let owned_region_ids t =
  let ids = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      List.iter
        (fun tbl -> Hashtbl.replace ids (Pmtable.Table.region_id tbl) ())
        p.unsorted;
      List.iter
        (fun tbl -> Hashtbl.replace ids (Pmtable.Table.region_id tbl) ())
        p.sorted_run)
    t.partitions;
  Hashtbl.fold (fun id () acc -> id :: acc) ids [] |> List.sort compare

(* --- Scans ---------------------------------------------------------------- *)

(* Collect all entries with key in [start, stop) from every structure of
   the partitions covering the range, newest version first per key. *)
let collect_range t ~start ~stop =
  let runs = ref [ Memtable.range t.memtable ~start ~stop ] in
  Array.iter
    (fun p ->
      if not (String.compare p.hi start <= 0 || String.compare p.lo stop >= 0) then begin
        let add_table tbl =
          if Pmtable.Table.overlaps tbl ~min:start ~max:stop then begin
            let acc = ref [] in
            Pmtable.Table.range tbl ~start ~stop (fun e -> acc := e :: !acc);
            runs := List.rev !acc :: !runs
          end
        in
        let add_sst sst =
          if Sstable.overlaps sst ~min:start ~max:stop then begin
            let acc = ref [] in
            Sstable.range sst ~start ~stop (fun e -> acc := e :: !acc);
            runs := List.rev !acc :: !runs
          end
        in
        List.iter add_table p.unsorted;
        List.iter add_table p.sorted_run;
        List.iter add_sst p.ssd_l0;
        Array.iter (fun level -> List.iter add_sst level) p.levels
      end)
    t.partitions;
  let merged, _stats = Compaction.Merge.merge ~drop_tombstones:true ~clock:t.clock !runs in
  merged

let degraded_scan (t : t) pairs hit =
  t.metrics.Metrics.degraded_reads <- t.metrics.Metrics.degraded_reads + 1;
  { partial = pairs; scan_quarantined = hit }

(* Bounded forward collection for windowed iteration: up to [per_source]
   entries with key >= start from every structure, merged with newest-wins
   and tombstones dropped. Returns the live pairs and the *safe bound* —
   the smallest last-collected key among truncated sources. Keys up to and
   including the bound are complete (each source's newest version of a key
   precedes its older ones, so a source cut at the bound already yielded
   its newest); keys beyond it must be re-fetched by the next window. *)
let collect_window t ~start ~limit =
  Obs.Attr.with_op Obs.Attr.Scan @@ fun () ->
  let collect () =
  let per_source = limit + 4 in
  let runs = ref [] in
  let safe_bound = ref None in
  let note_truncated last =
    match !safe_bound with
    | Some b when String.compare b last <= 0 -> ()
    | _ -> safe_bound := Some last
  in
  let add_run collect =
    let acc = ref [] and n = ref 0 in
    (try
       collect (fun e ->
           acc := e :: !acc;
           incr n;
           if !n >= per_source then raise Exit)
     with Exit -> ());
    (match !acc with
    | last :: _ when !n >= per_source -> note_truncated last.Util.Kv.key
    | _ -> ());
    if !acc <> [] then runs := List.rev !acc :: !runs
  in
  add_run (fun f -> List.iter f (Memtable.from t.memtable ~start ~limit:per_source));
  Array.iter
    (fun p ->
      if String.compare p.hi start > 0 then begin
        let add_table tbl =
          if String.compare (Pmtable.Table.max_key tbl) start >= 0 then
            add_run (fun f -> Pmtable.Table.range tbl ~start ~stop:max_key_sentinel f)
        in
        let add_sst sst =
          if String.compare (Sstable.max_key sst) start >= 0 then
            add_run (fun f -> Sstable.range sst ~start ~stop:max_key_sentinel f)
        in
        List.iter add_table p.unsorted;
        List.iter add_table p.sorted_run;
        List.iter add_sst p.ssd_l0;
        Array.iter (fun level -> List.iter add_sst level) p.levels
      end)
    t.partitions;
  let merged, _stats = Compaction.Merge.merge ~drop_tombstones:true ~clock:t.clock !runs in
  let live =
    match !safe_bound with
    | None -> merged
    | Some bound ->
        List.filter (fun (e : Util.Kv.entry) -> String.compare e.key bound <= 0) merged
  in
  (List.map (fun (e : Util.Kv.entry) -> (e.key, e.value)) live, !safe_bound)
  in
  (* Iterators degrade like scans: a corrupt source is quarantined, the
     window re-collected from the survivors, and the caller told. *)
  match guard_integrity t collect with
  | result, [] -> result
  | (pairs, _), hit -> raise (Degraded_scan (degraded_scan t pairs hit))

let note_scan_bytes t pairs =
  t.metrics.Metrics.user_bytes_read <-
    t.metrics.Metrics.user_bytes_read
    + List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v) 0 pairs

let scan_range_checked t ~start ~stop =
  Obs.Attr.with_op Obs.Attr.Scan @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let entries, hit =
    guard_integrity t (fun () -> with_ssd_retry t (fun () -> collect_range t ~start ~stop))
  in
  Metrics.note_scan t.metrics (Sim.Clock.now t.clock -. t0);
  let pairs = List.map (fun (e : Util.Kv.entry) -> (e.key, e.value)) entries in
  note_scan_bytes t pairs;
  match hit with [] -> Ok pairs | hit -> Error (degraded_scan t pairs hit)

let scan_range t ~start ~stop =
  match scan_range_checked t ~start ~stop with
  | Ok pairs -> pairs
  | Error e -> raise (Degraded_scan e)

(* Scan [limit] keys from [start]: widen the range geometrically until
   enough distinct keys turn up (how iterator-based stores pay for long
   scans across structures). *)
let scan t ~start ~limit =
  Obs.Attr.with_op Obs.Attr.Scan @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let hit = ref [] in
  let rec widen span =
    let stop =
      if String.length start >= 4 && String.sub start 0 4 = "user" then
        (* YCSB keyspace: numeric widening over the rank suffix, clamped to
           the 12-digit key width. *)
        let rank = int_of_string (String.sub start 4 (String.length start - 4)) in
        if rank + span >= 1_000_000_000_000 then max_key_sentinel
        else Util.Keys.ycsb_key (rank + span)
      else max_key_sentinel
    in
    let entries, round_hit =
      guard_integrity t (fun () -> with_ssd_retry t (fun () -> collect_range t ~start ~stop))
    in
    hit := !hit @ round_hit;
    if List.length entries >= limit || stop = max_key_sentinel then
      (entries, stop)
    else widen (span * 4)
  in
  let entries, _stop = widen (limit * 4) in
  let result =
    List.filteri (fun i _ -> i < limit) entries
    |> List.map (fun (e : Util.Kv.entry) -> (e.key, e.value))
  in
  Metrics.note_scan t.metrics (Sim.Clock.now t.clock -. t0);
  note_scan_bytes t result;
  match !hit with
  | [] -> result
  | h -> raise (Degraded_scan (degraded_scan t result h))

(* --- Maintenance entry points (benchmarks drive these manually) -------- *)

(* Logical live bytes: key+value bytes of the newest visible version of
   every key, via a full merged collection. This reads every structure
   (and so perturbs device read stats) — one-shot diagnostics only. *)
let logical_bytes t =
  let entries = collect_range t ~start:"" ~stop:max_key_sentinel in
  List.fold_left
    (fun acc (e : Util.Kv.entry) -> acc + String.length e.key + String.length e.value)
    0 entries

let flush t = flush_memtable t

let force_internal_compaction t =
  Array.iter (fun p -> if p.unsorted <> [] then internal_compaction t p) t.partitions;
  persist_manifest t

let force_major_compaction t =
  Array.iter
    (fun p ->
      if partition_l0_bytes p > 0 || p.ssd_l0 <> [] then major_compact_partition t p)
    t.partitions;
  persist_manifest t

(* --- Scrub & salvage ----------------------------------------------------

   Walk every live table re-verifying checksums from the medium (around the
   DRAM caches — pinned indexes outlive rot), then repair what failed:
   salvage rebuilds a corrupt table from its surviving blocks and records
   the conservatively-bounded lost key range; with [salvage:false] the
   table is merely quarantined. The optional rate limit charges the
   virtual clock so a budgeted scrub models a background task that does
   not saturate the devices. *)

type scrub_report = {
  scrubbed_tables : int;
  scrubbed_bytes : int;
  corrupt_pm_tables : int;
  corrupt_sstables : int;
  salvaged : int;   (* corrupt tables rebuilt from surviving blocks *)
  dropped : int;    (* corrupt tables with no surviving blocks at all *)
  lost_ranges : (string * string) list;
}

let pp_scrub_report ppf r =
  Fmt.pf ppf
    "scrubbed %d tables (%.1f KB): %d corrupt PM, %d corrupt SST, %d salvaged, %d dropped, %d lost ranges"
    r.scrubbed_tables
    (float_of_int r.scrubbed_bytes /. 1024.)
    r.corrupt_pm_tables r.corrupt_sstables r.salvaged r.dropped
    (List.length r.lost_ranges)

(* Swap [old] for [fresh] (or remove it) wherever the partition holds it,
   preserving position and any matrix watermark. *)
let replace_pm_table p ~old fresh =
  let subst lst =
    List.concat_map (fun tbl -> if tbl == old then Option.to_list fresh else [ tbl ]) lst
  in
  p.unsorted <- subst p.unsorted;
  p.sorted_run <- subst p.sorted_run;
  p.matrix_wms <-
    List.concat_map
      (fun (tbl, wm) ->
        if tbl == old then match fresh with Some f -> [ (f, wm) ] | None -> []
        else [ (tbl, wm) ])
      p.matrix_wms

let replace_sst p ~old fresh =
  let subst lst =
    List.concat_map (fun sst -> if sst == old then Option.to_list fresh else [ sst ]) lst
  in
  p.ssd_l0 <- subst p.ssd_l0;
  Array.iteri (fun j level -> p.levels.(j) <- subst level) p.levels

let scrub ?(salvage = true) ?rate_limit_mb_s t =
  let rate =
    match rate_limit_mb_s with
    | Some _ as r -> r
    | None -> t.config.Config.scrub_rate_limit_mb_s
  in
  let t0 = Sim.Clock.now t.clock in
  let scrubbed = ref 0 and bytes = ref 0 in
  let bad_pm = ref [] and bad_sst = ref [] in
  Array.iter
    (fun p ->
      let check_tbl tbl =
        incr scrubbed;
        bytes := !bytes + Pmtable.Table.byte_size tbl;
        if Pmtable.Table.verify tbl <> [] then bad_pm := (p, tbl) :: !bad_pm
      in
      let check_sst sst =
        incr scrubbed;
        bytes := !bytes + Sstable.byte_size sst;
        if Sstable.verify sst <> [] then bad_sst := (p, sst) :: !bad_sst
      in
      List.iter check_tbl p.unsorted;
      List.iter check_tbl p.sorted_run;
      List.iter check_sst p.ssd_l0;
      Array.iter (List.iter check_sst) p.levels)
    t.partitions;
  (* Rate limit: a budgeted scrub takes at least bytes/rate of wall time. *)
  (match rate with
  | Some mb_s when mb_s > 0.0 ->
      let floor_ns = float_of_int !bytes /. (mb_s *. 1048576.) *. 1e9 in
      let elapsed = Sim.Clock.now t.clock -. t0 in
      if elapsed < floor_ns then Sim.Clock.advance t.clock (floor_ns -. elapsed)
  | _ -> ());
  let salvaged = ref 0 and dropped = ref 0 and lost = ref [] in
  let record source = function
    | Some (lo, hi) ->
        lost := (lo, hi) :: !lost;
        note_quarantine t source ~q_lo:lo ~q_hi:hi
    | None -> ()
  in
  let note_salvage label id survivors =
    incr salvaged;
    t.metrics.Metrics.salvaged <- t.metrics.Metrics.salvaged + 1;
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "engine.salvage" ~attrs:(fun () ->
          [ (label, Obs.Trace.Int id); ("survivors", Obs.Trace.Int survivors) ])
  in
  List.iter
    (fun (p, tbl) ->
      let region_id = Pmtable.Table.region_id tbl in
      if salvage then begin
        let entries, lost_range = Pmtable.Table.salvage_entries tbl in
        let full_range = (Pmtable.Table.min_key tbl, Pmtable.Table.max_key tbl) in
        let fresh =
          match entries with
          | [] -> None
          | entries ->
              Some
                (Pmtable.Table.of_sorted_list ~group_size:t.config.Config.group_size
                   ~bloom_bits_per_key:(pm_bloom_bits t) t.pm
                   ~kind:(Pmtable.Table.kind tbl) entries)
        in
        replace_pm_table p ~old:tbl fresh;
        Pmtable.Table.free tbl;
        (match fresh with
        | Some _ -> note_salvage "pm_region" region_id (List.length entries)
        | None -> incr dropped);
        record (Manifest.Q_region region_id)
          (match fresh with None -> Some full_range | Some _ -> lost_range)
      end
      else begin
        lost := (Pmtable.Table.min_key tbl, Pmtable.Table.max_key tbl) :: !lost;
        quarantine_region t region_id
      end)
    !bad_pm;
  List.iter
    (fun (p, sst) ->
      let file_id = Sstable.file_id sst in
      if salvage then begin
        let entries, lost_range = Sstable.salvage_entries sst in
        let full_range = (Sstable.min_key sst, Sstable.max_key sst) in
        let fresh =
          match entries with
          | [] -> None
          | entries -> Some (new_sst t entries)
        in
        replace_sst p ~old:sst fresh;
        Sstable.delete sst;
        (match fresh with
        | Some _ -> note_salvage "ssd_file" file_id (List.length entries)
        | None -> incr dropped);
        record (Manifest.Q_file file_id)
          (match fresh with None -> Some full_range | Some _ -> lost_range)
      end
      else begin
        lost := (Sstable.min_key sst, Sstable.max_key sst) :: !lost;
        quarantine_file t file_id
      end)
    !bad_sst;
  (* Pure salvages with no loss still changed region/file ids. *)
  if !bad_pm <> [] || !bad_sst <> [] then persist_manifest t;
  {
    scrubbed_tables = !scrubbed;
    scrubbed_bytes = !bytes;
    corrupt_pm_tables = List.length !bad_pm;
    corrupt_sstables = List.length !bad_sst;
    salvaged = !salvaged;
    dropped = !dropped;
    lost_ranges = List.rev !lost;
  }

(* --- Recovery -------------------------------------------------------------

   Rebuild an engine from the devices alone after a crash: the superblock
   points at the manifest, the manifest names every PM region and SSD file,
   the tables are reopened in place (only DRAM handles are rebuilt), and
   the WAL replays the writes the memtable lost. Requires a configuration
   built with [durable = true] and the compressed PM table. *)

let recover ?(orphan_gc = true) ?cache config ~pm ~ssd =
  if not config.Config.sanitize then Pmem.set_sanitizer pm None;
  let clock = Pmem.clock pm in
  let block_cache =
    match cache with
    | Some _ as c -> c
    | None ->
        if config.Config.block_cache_mb > 0 then
          Some
            (Cache.Block_cache.create ~clock
               ~capacity_bytes:(config.Config.block_cache_mb * 1024 * 1024) ())
        else None
  in
  let fallbacks_before = Manifest.fallback_count () in
  let state =
    match Manifest.load ~root:config.Config.manifest_root ssd with
    | Some s -> s
    | None -> failwith "Engine.recover: no manifest on the device"
  in
  (* A fallback snapshot is one generation stale: structures it names may
     have been legitimately freed when the (now rotten) newer snapshot
     superseded it — the rotated-away WAL above all. Under a fallback those
     turn into damage records instead of hard failures; under the current
     snapshot a missing structure stays a loud bug. *)
  let fell_back = Manifest.fallback_count () > fallbacks_before in
  (* A named structure that is *missing* means the manifest and the devices
     disagree — an unrecoverable bug, so it stays a hard [Failure]. A named
     structure that is *present but rotten* (bad magic, footer, meta, or
     checksum) is media decay: quarantine it — with the owning partition's
     key range as the conservative lost bound, since its own footer is no
     longer trusted — and recover the rest. *)
  let fresh_damage = ref [] in
  let note_damage source ~lo ~hi =
    fresh_damage := { Manifest.source; q_lo = lo; q_hi = hi } :: !fresh_damage
  in
  let reopen_table ~lo ~hi region_id =
    match Pmem.find_region pm region_id with
    | Some region -> (
        try Some (Pmtable.Table.open_existing pm region)
        with Pmtable.Integrity.Corrupted _ | Failure _ | Invalid_argument _ ->
          note_damage (Manifest.Q_region region_id) ~lo ~hi;
          None)
    | None when fell_back ->
        note_damage (Manifest.Q_region region_id) ~lo ~hi;
        None
    | None -> failwith (Printf.sprintf "Engine.recover: PM region %d missing" region_id)
  in
  let reopen_sst ~lo ~hi file_id =
    match Ssd.find_file ssd file_id with
    | Some file -> (
        try
          let sst = Sstable.open_existing ssd file in
          (match block_cache with
          | Some c -> Sstable.attach_shared_cache sst c
          | None -> ());
          Some sst
        with Sstable.Corrupted_block _ | Failure _ | Invalid_argument _ ->
          note_damage (Manifest.Q_file file_id) ~lo ~hi;
          None)
    | None when fell_back ->
        note_damage (Manifest.Q_file file_id) ~lo ~hi;
        None
    | None -> failwith (Printf.sprintf "Engine.recover: SSD file %d missing" file_id)
  in
  let partitions =
    state.Manifest.partitions
    |> List.mapi (fun idx (ps : Manifest.partition_state) ->
           let lo = ps.lo and hi = ps.hi in
           let unsorted_with_wm =
             List.filter_map
               (fun (r : Manifest.row) ->
                 Option.map
                   (fun tbl -> (tbl, r.Manifest.watermark))
                   (reopen_table ~lo ~hi r.Manifest.region_id))
               ps.unsorted
           in
           {
             idx;
             lo;
             hi;
             unsorted = List.map fst unsorted_with_wm;
             sorted_run = List.filter_map (reopen_table ~lo ~hi) ps.sorted_run;
             ssd_l0 = List.filter_map (reopen_sst ~lo ~hi) ps.ssd_l0;
             levels = Array.of_list (List.map (List.filter_map (reopen_sst ~lo ~hi)) ps.levels);
             fences = None;
             matrix_wms = List.filter (fun (_, wm) -> wm <> "") unsorted_with_wm;
             reads = 0;
             writes = 0;
             updates = 0;
             window_start = Sim.Clock.now clock;
           })
    |> Array.of_list
  in
  let t =
    {
      config;
      clock;
      pm;
      ssd;
      block_cache;
      memtable = Memtable.create ~seed:config.Config.seed clock;
      next_seq = state.Manifest.next_seq;
      partitions;
      metrics = Metrics.create ();
      memtable_seed = config.Config.seed;
      retry_rng = Util.Xoshiro.create (config.Config.seed lxor 0x7e77);
      in_foreground = false;
      wal = None;
      quarantined = state.Manifest.quarantined @ List.rev !fresh_damage;
      pipe_recording = None;
      pipe_totals = Compaction.Pipeline.create_totals ();
    }
  in
  t.metrics.Metrics.quarantined <- List.length !fresh_damage;
  (* Replay the WAL into the fresh memtable; the high-water mark includes
     logged writes that never reached level-0. Records that fail their CRC
     are skipped (counted, never applied) — returning a value assembled
     from rotten log bytes would be silent corruption. *)
  (match state.Manifest.wal_file_id with
  | Some file_id -> (
      match Wal.open_existing ssd ~file_id with
      | wal ->
          let stats =
            Wal.replay wal (fun entry ->
                Memtable.insert t.memtable entry;
                if entry.Util.Kv.seq >= t.next_seq then t.next_seq <- entry.seq + 1)
          in
          t.metrics.Metrics.wal_corrupt_records <- stats.Wal.corrupt_records;
          t.wal <- Some wal
      | exception Failure _ when fell_back ->
          (* the fallback snapshot names a log that was rotated away when
             its successor (now rotten) was written; the logged writes are
             in a level-0 this snapshot cannot see — report, start fresh *)
          if Obs.Trace.is_enabled () then
            Obs.Trace.instant "recover.wal_missing" ~attrs:(fun () ->
                [ ("file_id", Obs.Trace.Int file_id) ]);
          t.wal <- Some (Wal.create ssd))
  | None -> if config.Config.durable then t.wal <- Some (Wal.create ssd));
  (* Orphan GC: a crash resurrects PM regions and SSD files that were
     freed/deleted after the durable manifest was written (the medium still
     held their bytes), and may leave behind half-built tables from an
     interrupted flush or compaction. Nothing the manifest does not name is
     reachable, so reclaim it. *)
  let region_referenced = Hashtbl.create 64 and file_referenced = Hashtbl.create 64 in
  List.iter
    (fun (ps : Manifest.partition_state) ->
      List.iter (fun (r : Manifest.row) -> Hashtbl.replace region_referenced r.region_id ())
        ps.unsorted;
      List.iter (fun id -> Hashtbl.replace region_referenced id ()) ps.sorted_run;
      List.iter (fun id -> Hashtbl.replace file_referenced id ()) ps.ssd_l0;
      List.iter (List.iter (fun id -> Hashtbl.replace file_referenced id ())) ps.levels)
    state.Manifest.partitions;
  (match state.Manifest.wal_file_id with
  | Some id -> Hashtbl.replace file_referenced id ()
  | None -> ());
  (match t.wal with Some w -> Hashtbl.replace file_referenced (Wal.file_id w) () | None -> ());
  (* Every superblock slot — unnamed and named — stays referenced (each
     previous manifest is its namespace's dual-slot fallback), and
     quarantined structures are preserved for salvage/forensics rather
     than reclaimed. On a shared multi-shard device a single engine's view
     is still too narrow to reclaim safely, so shards recover with
     [~orphan_gc:false] and the router GCs the union. *)
  (let keep_slots (cur, prev) =
     List.iter
       (function Some id -> Hashtbl.replace file_referenced id () | None -> ())
       [ cur; prev ]
   in
   keep_slots (Ssd.root_slots ssd);
   List.iter (fun name -> keep_slots (Ssd.root_slots ~name ssd)) (Ssd.root_names ssd));
  List.iter
    (fun (q : Manifest.quarantine) ->
      match q.Manifest.source with
      | Manifest.Q_region id -> Hashtbl.replace region_referenced id ()
      | Manifest.Q_file id -> Hashtbl.replace file_referenced id ())
    t.quarantined;
  if orphan_gc then begin
    let orphan_regions =
      List.filter (fun r -> not (Hashtbl.mem region_referenced (Pmem.region_id r)))
        (Pmem.live_regions pm)
    in
    let orphan_files =
      List.filter (fun id -> not (Hashtbl.mem file_referenced id)) (Ssd.live_file_ids ssd)
    in
    List.iter (Pmem.free pm) orphan_regions;
    List.iter
      (fun id -> match Ssd.find_file ssd id with Some f -> Ssd.delete_file ssd f | None -> ())
      orphan_files;
    if Obs.Trace.is_enabled () && (orphan_regions <> [] || orphan_files <> []) then
      Obs.Trace.instant "recover.orphan_gc" ~attrs:(fun () ->
          [
            ("pm_regions", Obs.Trace.Int (List.length orphan_regions));
            ("ssd_files", Obs.Trace.Int (List.length orphan_files));
          ])
  end;
  (* Make any newly-discovered damage durable: the corrupt structures are
     out of the manifest's partition lists, their damage records in. *)
  if !fresh_damage <> [] then persist_manifest t;
  t

(* One-look storage report: occupancy per tier, compaction counters, and
   write amplification. *)
let pp_stats ppf t =
  let m = t.metrics in
  let level_line j =
    let files = Array.fold_left (fun acc p -> acc + List.length p.levels.(j)) 0 t.partitions in
    let bytes = Array.fold_left (fun acc p -> acc + level_bytes p j) 0 t.partitions in
    Fmt.pf ppf "  L%d: %d files, %.1f MB@," (j + 1) files (float_of_int bytes /. 1048576.)
  in
  Fmt.pf ppf "@[<v>%s:@," t.config.Config.name;
  Fmt.pf ppf "  partitions: %d@," (Array.length t.partitions);
  Fmt.pf ppf "  memtable: %d entries, %d B@," (Memtable.count t.memtable)
    (Memtable.byte_size t.memtable);
  Fmt.pf ppf "  level-0: %d unsorted + %d sorted tables, %.1f MB of %.1f MB PM@,"
    (Array.fold_left (fun acc p -> acc + List.length p.unsorted) 0 t.partitions)
    (Array.fold_left (fun acc p -> acc + List.length p.sorted_run) 0 t.partitions)
    (float_of_int (l0_bytes t) /. 1048576.)
    (float_of_int t.config.Config.l0_capacity /. 1048576.);
  for j = 0 to Array.length t.partitions.(0).levels - 1 do
    level_line j
  done;
  let latency_line label h =
    if Util.Histogram.count h > 0 then
      Fmt.pf ppf "  %s latency p50/p99/p99.9: %a / %a / %a@," label Sim.Clock.pp_duration
        (Util.Histogram.percentile h 50.0)
        Sim.Clock.pp_duration
        (Util.Histogram.percentile h 99.0)
        Sim.Clock.pp_duration
        (Util.Histogram.percentile h 99.9)
  in
  latency_line "read" m.Metrics.read_latency;
  latency_line "write" m.Metrics.write_latency;
  latency_line "scan" m.Metrics.scan_latency;
  Fmt.pf ppf "  compactions: %d minor, %d internal, %d major@," m.Metrics.minor_compactions
    m.internal_compactions m.major_compactions;
  Fmt.pf ppf "  bytes user/PM/SSD: %d / %d / %d (WA %.2fx)@,"
    m.user_bytes_written (pm_bytes_written t) (ssd_bytes_written t)
    (write_amplification t);
  if m.Metrics.user_bytes_read > 0 then
    Fmt.pf ppf "  bytes returned/PM-read/SSD-read: %d / %d / %d (RA %.2fx)@,"
      m.user_bytes_read (pm_bytes_read t) (ssd_bytes_read t) (read_amplification t);
  Fmt.pf ppf "  compaction debt: %.1f MB in %d level-0 tables@,"
    (float_of_int (compaction_debt_bytes t) /. 1048576.)
    (compaction_debt_tables t);
  if m.Metrics.write_stalls > 0 then
    Fmt.pf ppf "  write stalls: %d totalling %a@," m.Metrics.write_stalls
      Sim.Clock.pp_duration m.Metrics.write_stall_time;
  (match t.block_cache with
  | Some c ->
      Fmt.pf ppf "  block cache: %.1f/%.1f MB resident, hit ratio %.2f (%d evictions)@,"
        (float_of_int (Cache.Block_cache.resident_bytes c) /. 1048576.)
        (float_of_int (Cache.Block_cache.capacity_bytes c) /. 1048576.)
        (Cache.Block_cache.hit_ratio c)
        (Cache.Block_cache.evictions c)
  | None -> ());
  (let probes = !Pmtable.Pm_table.bloom_probes in
   if probes > 0 then
     Fmt.pf ppf "  PM bloom: %d probes, filter rate %.2f@," probes
       (float_of_int !Pmtable.Pm_table.bloom_negatives /. float_of_int probes));
  Fmt.pf ppf "  fence rebuilds: %d@," m.Metrics.fence_rebuilds;
  (* Sharding knobs, when this engine runs behind the router front door:
     the perf gate and doctor must be able to tell a sharded run apart. *)
  (let c = t.config in
   if c.Config.shard_count > 1 || c.Config.manifest_root <> "" || c.Config.wal_external_sync
   then
     Fmt.pf ppf
       "  shard: %d shards, root '%s', group commit %s (window %a, max %d), admission \
        soft/hard %d/%d tables@,"
       c.Config.shard_count c.Config.manifest_root
       (if c.Config.wal_external_sync then "external" else "inline")
       Sim.Clock.pp_duration c.Config.group_commit_window_ns c.Config.group_commit_max
       c.Config.admission_soft_tables c.Config.admission_hard_tables);
  Fmt.pf ppf "  PM hit ratio: %.2f@]" (Metrics.pm_hit_ratio m)

(* One registry covering every namespace the evaluation reads: engine.*
   plus the devices' pmem.* / ssd.* counters. All readouts pull at
   exposition time; registration costs the hot paths nothing. *)
let register_metrics reg t =
  let m = t.metrics in
  let open Obs.Registry in
  register_int reg "engine.reads" ~help:"point lookups" (fun () -> m.Metrics.reads);
  register_int reg "engine.writes" ~help:"puts and deletes" (fun () -> m.Metrics.writes);
  register_int reg "engine.scans" ~help:"range scans and iterator windows" (fun () ->
      m.Metrics.scans);
  register_int reg "engine.reads_from_memtable" ~help:"reads served by the memtable"
    (fun () -> m.Metrics.reads_from_memtable);
  register_int reg "engine.reads_from_pm" ~help:"reads served by PM level-0" (fun () ->
      m.Metrics.reads_from_pm);
  register_int reg "engine.reads_from_ssd" ~help:"reads served by the SSD levels"
    (fun () -> m.Metrics.reads_from_ssd);
  register_int reg "engine.reads_not_found" ~help:"point lookups that found no value"
    (fun () -> m.Metrics.reads_not_found);
  register_float reg "engine.pm_hit_ratio" ~help:"reads served without touching the SSD"
    (fun () -> Metrics.pm_hit_ratio m);
  register_int reg "engine.user_bytes_written"
    ~help:"encoded key+value bytes accepted from the user" (fun () ->
      m.Metrics.user_bytes_written);
  register_int reg "engine.user_bytes_read"
    ~help:"key+value bytes returned to the user by gets and scans" (fun () ->
      m.Metrics.user_bytes_read);
  register_int reg "engine.minor_compactions" ~help:"memtable flushes into level-0"
    (fun () -> m.Metrics.minor_compactions);
  register_int reg "engine.internal_compactions"
    ~help:"level-0 unsorted-to-sorted merges inside PM" (fun () ->
      m.Metrics.internal_compactions);
  register_int reg "engine.major_compactions" ~help:"level-0 pushes into the SSD levels"
    (fun () -> m.Metrics.major_compactions);
  register_float reg "engine.internal_compaction_time_ns" ~kind:Counter
    ~help:"simulated ns spent in internal compaction" (fun () ->
      m.Metrics.internal_compaction_time);
  register_float reg "engine.major_compaction_time_ns" ~kind:Counter
    ~help:"simulated ns spent in major compaction" (fun () ->
      m.Metrics.major_compaction_time);
  register_float reg "engine.write_stall_ns" ~kind:Counter
    ~help:"simulated ns foreground writes spent stalled on backpressure relief"
    (fun () -> m.Metrics.write_stall_time);
  register_int reg "engine.write_stalls"
    ~help:"foreground writes that blocked on backpressure relief" (fun () ->
      m.Metrics.write_stalls);
  register_int reg "engine.ssd_retries" ~help:"transient SSD errors retried with backoff"
    (fun () -> m.Metrics.ssd_retries);
  register_int reg "engine.quarantined"
    ~help:"structures pulled from the read path on corruption" (fun () ->
      m.Metrics.quarantined);
  register_int reg "engine.degraded_reads"
    ~help:"reads/scans that crossed a quarantine" (fun () -> m.Metrics.degraded_reads);
  register_int reg "engine.salvaged" ~help:"corrupt tables rebuilt by the scrubber"
    (fun () -> m.Metrics.salvaged);
  register_int reg "engine.wal_corrupt_records"
    ~help:"rotten WAL records skipped at replay" (fun () -> m.Metrics.wal_corrupt_records);
  register_int reg "engine.fence_rebuilds"
    ~help:"fence-pointer sets rebuilt after structural changes" (fun () ->
      m.Metrics.fence_rebuilds);
  register_int reg "pmtable.bloom_probes" ~help:"gets that consulted a PM-table bloom"
    (fun () -> !Pmtable.Pm_table.bloom_probes);
  register_int reg "pmtable.bloom_negatives"
    ~help:"gets answered absent by a PM-table bloom without touching PM" (fun () ->
      !Pmtable.Pm_table.bloom_negatives);
  register_float reg "pmtable.bloom_filter_rate"
    ~help:"fraction of bloom probes answered absent without touching PM" (fun () ->
      let probes = !Pmtable.Pm_table.bloom_probes in
      if probes = 0 then 0.0
      else float_of_int !Pmtable.Pm_table.bloom_negatives /. float_of_int probes);
  register_int reg "manifest.fallback" ~help:"dual-slot manifest fallbacks at load"
    (fun () -> Manifest.fallback_count ());
  register_int reg "engine.partitions" ~kind:Gauge ~help:"live range partitions"
    (fun () -> Array.length t.partitions);
  register_int reg "engine.l0_bytes" ~kind:Gauge ~help:"PM level-0 resident bytes"
    (fun () -> l0_bytes t);
  register_int reg "engine.memtable_bytes" ~kind:Gauge
    ~help:"bytes buffered in the active memtable" (fun () ->
      Memtable.byte_size t.memtable);
  register_int reg "engine.memtable_entries" ~kind:Gauge
    ~help:"entries buffered in the active memtable" (fun () ->
      Memtable.count t.memtable);
  register_float reg "engine.write_amplification"
    ~help:"device bytes written per user byte written (WAF)" (fun () ->
      write_amplification t);
  register_float reg "engine.read_amplification"
    ~help:"device bytes read per user byte returned (RAF)" (fun () ->
      read_amplification t);
  register_int reg "engine.space_bytes" ~kind:Gauge
    ~help:"physical live bytes across PM and SSD structures" (fun () -> space_bytes t);
  register_int reg "engine.compaction_debt_bytes" ~kind:Gauge
    ~help:"level-0 backlog bytes (both media) awaiting compaction" (fun () ->
      compaction_debt_bytes t);
  register_int reg "engine.compaction_debt_tables" ~kind:Gauge
    ~help:"level-0 backlog tables (both media) awaiting compaction" (fun () ->
      compaction_debt_tables t);
  register_histogram reg "engine.read_latency_ns" ~help:"point-lookup latency in ns"
    (fun () -> m.Metrics.read_latency);
  register_histogram reg "engine.write_latency_ns" ~help:"write latency in ns"
    (fun () -> m.Metrics.write_latency);
  register_histogram reg "engine.scan_latency_ns" ~help:"scan latency in ns" (fun () ->
      m.Metrics.scan_latency);
  Obs.Attr.register_metrics reg;
  Compaction.Pipeline.register_metrics reg t.pipe_totals;
  (match t.block_cache with
  | Some c -> Cache.Block_cache.register_metrics reg c
  | None -> ());
  (match Pmem.sanitizer t.pm with
  | Some san -> Sanitize.Pmsan.register_metrics san reg
  | None -> ());
  Pmem.register_metrics reg t.pm;
  Ssd.register_metrics reg t.ssd

let unsorted_table_count t =
  Array.fold_left (fun acc p -> acc + List.length p.unsorted) 0 t.partitions

let sorted_table_count t =
  Array.fold_left (fun acc p -> acc + List.length p.sorted_run) 0 t.partitions

let level_file_count t j =
  Array.fold_left (fun acc p -> acc + List.length p.levels.(j)) 0 t.partitions

(** The PM-Blade storage engine (§III), configuration-driven so every
    evaluation variant — PMBlade, PMBlade-PM, PMBlade-SSD, the ablation
    ladder, RocksDB-like and MatrixKV-like — runs the same code paths.

    Writes land in the DRAM memtable and flush by key range across
    partitions to level-0 (PM tables or SSD SSTables per config); internal
    compaction merges a partition's unsorted stack into its sorted run under
    the §IV-C cost models; major compaction pushes the non-warm partitions
    to the levelled SSD tiers. Every device touch charges the virtual
    clock, so an operation's latency is the clock delta across the call. *)

type t
type partition

(** {1 Integrity errors}

    A checksum failure never surfaces as a wrong answer or a crash: the
    corrupt structure is quarantined (pulled from the read path, its damage
    record persisted with the manifest) and the operation retried against
    the surviving structures. The result is the best *verified* answer —
    possibly an older version than one that rotted — so it is delivered
    through a typed error, never silently. *)

type read_error = {
  key : string;
  fallback : string option;
      (** best surviving answer — may predate a rotted newer version *)
  quarantined : Manifest.quarantined_source list;
}

type scan_error = {
  partial : (string * string) list;
  scan_quarantined : Manifest.quarantined_source list;
}

exception Degraded_read of read_error
exception Degraded_scan of scan_error

val create :
  ?boundaries:string list ->
  ?clock:Sim.Clock.t ->
  ?pm:Pmem.t ->
  ?ssd:Ssd.t ->
  ?cache:Cache.Block_cache.t ->
  Config.t ->
  t
(** The engine starts with one partition and splits at the data median as
    partitions grow, up to [config.partition_count]; explicit [boundaries]
    pre-create the partitioning instead. With [config.durable] a WAL and a
    persisted manifest make {!recover} possible. [pm]/[ssd]/[cache] supply
    pre-existing (shared) devices instead of creating fresh ones — range
    shards pass the same devices and block cache to every engine; when [pm]
    is given its clock becomes the engine clock. The manifest chain
    persists under the named superblock slot [config.manifest_root]. *)

val recover :
  ?orphan_gc:bool -> ?cache:Cache.Block_cache.t -> Config.t -> pm:Pmem.t -> ssd:Ssd.t -> t
(** Rebuild an engine from the devices after a crash: the superblock points
    at the manifest (the [config.manifest_root] named slot), tables are
    reopened in place, and the WAL replays the (durable) writes the
    memtable lost. PM regions and SSD files the manifest does not name —
    crash-resurrected frees and half-built tables from an interrupted
    compaction — are garbage-collected (every superblock slot, named and
    unnamed, and quarantined structures stay referenced). On a shared
    multi-shard device one engine's view is too narrow to reclaim safely:
    pass [~orphan_gc:false] (the router GCs the union instead). A named
    table that is present but fails its checksums is quarantined with the
    partition's key range as the lost bound; WAL records that fail their
    CRC are skipped and counted, never applied. Raises [Failure] when the
    device holds no manifest or a named region/file is missing. *)

val config : t -> Config.t
val clock : t -> Sim.Clock.t
val pm : t -> Pmem.t
val ssd : t -> Ssd.t
val metrics : t -> Metrics.t

val wal : t -> Wal.t option
(** The live write-ahead log of a durable engine (fault plans arm their
    [wal.sync] site through this handle). *)

val block_cache : t -> Cache.Block_cache.t option
(** The engine-wide shared SSTable block cache, when
    [config.block_cache_mb > 0]. All SSTables the engine creates or reopens
    route {!Sstable.read_block} misses through it. *)

val check_fence_invariants : bool ref
(** When set (the default), every fence-pointer rebuild asserts that the
    sorted run and each SSD level hold strictly disjoint, ordered key
    ranges, raising [Failure] on violation. Tests may clear it to probe
    behaviour without the guard. *)

(** {1 Operations} *)

val put : ?update:bool -> t -> key:string -> string -> unit
(** [update] feeds the cost model's n_u estimate (workloads know whether a
    write overwrites). May trigger minor/internal/major compactions. *)

val delete : t -> string -> unit

val sync_wal : t -> unit
(** Group-commit durability point: one log append + fsync of everything
    the WAL has staged since the last sync (all writers' records), plus
    the [wal.sync] PM commit point. Used by the shard batcher together
    with [config.wal_external_sync]; a no-op without a WAL. *)

val memtable_bytes : t -> int
(** Current encoded byte size of the live memtable (the router's pre-put
    flush check reads this without touching devices). *)

val get : t -> string -> string option
(** Newest visible value; [None] for absent or deleted keys. Raises
    {!Degraded_read} when the lookup crossed a quarantine. *)

val get_checked : t -> string -> (string option, read_error) result
(** Like {!get} but integrity degradation comes back as [Error] instead of
    an exception. *)

val get_pm_only : t -> string -> [ `Hit of string option | `Miss ]
(** Degraded probe that consults only the DRAM memtable and the PM
    level-0 stack, never the SSD (for serving behind an open circuit
    breaker). A [`Hit] is exact — those structures hold strictly newer
    versions than anything on the SSD — while [`Miss] means the newest
    version may live on the (unreachable) SSD. A probe that crosses a
    quarantine conservatively answers [`Miss]. *)

val scan_range : t -> start:string -> stop:string -> (string * string) list
(** All live key/value pairs with key in [\[start, stop)]. Raises
    {!Degraded_scan} when the collection crossed a quarantine. *)

val scan_range_checked :
  t -> start:string -> stop:string -> ((string * string) list, scan_error) result

val scan : t -> start:string -> limit:int -> (string * string) list
(** Up to [limit] live pairs from [start] (YCSB-style scans). Raises
    {!Degraded_scan} when the collection crossed a quarantine. *)

val collect_window : t -> start:string -> limit:int -> (string * string) list * string option
(** Bounded forward collection for {!Iterator}: live pairs with key >=
    [start], complete up to the returned safe bound (inclusive) when one is
    present; [None] means the keyspace from [start] was exhausted. Raises
    {!Degraded_scan} like {!scan}. *)

(** {1 Maintenance (benchmarks drive these manually)} *)

val flush : t -> unit
(** Flush the memtable to level-0 (minor compaction) if non-empty. *)

val force_internal_compaction : t -> unit
val force_major_compaction : t -> unit

(** {1 Scrub, salvage & quarantine} *)

type scrub_report = {
  scrubbed_tables : int;
  scrubbed_bytes : int;
  corrupt_pm_tables : int;
  corrupt_sstables : int;
  salvaged : int;  (** corrupt tables rebuilt from surviving blocks *)
  dropped : int;  (** corrupt tables with no surviving blocks at all *)
  lost_ranges : (string * string) list;
}

val scrub : ?salvage:bool -> ?rate_limit_mb_s:float -> t -> scrub_report
(** Re-verify every live PM table and SSTable from the medium. Corrupt
    tables are rebuilt from their surviving blocks ([salvage], the default)
    with the lost key range recorded as a damage record, or quarantined
    ([salvage:false]). [rate_limit_mb_s] (default
    [config.scrub_rate_limit_mb_s]) floors the scrub's wall time to model a
    budgeted background task. *)

val pp_scrub_report : scrub_report Fmt.t

val quarantined : t -> Manifest.quarantine list
(** Damage records accumulated so far (also persisted in the manifest). *)

val damaged_key : t -> string -> bool
(** Is [key] inside a recorded lost range? A [None] from {!get} for such a
    key means "possibly lost to corruption", not "never written". *)

(** {1 Introspection} *)

val owned_file_ids : t -> int list
(** Ids of every SSD file this engine currently reaches — level files,
    SSD-L0 tables, and the live WAL — ascending. The device footprint a
    shard-scoped gray fault should target. *)

val owned_region_ids : t -> int list
(** Ids of every live PM region this engine's level-0 references,
    ascending. *)

val partitions : t -> partition array
val partition_of : t -> string -> partition
val partition_l0_bytes : partition -> int
val l0_bytes : t -> int
val unsorted_table_count : t -> int
val sorted_table_count : t -> int
val level_file_count : t -> int -> int
(** [level_file_count t 0] counts L1 files across partitions. *)

val user_bytes : t -> int
val pm_bytes_written : t -> int
val ssd_bytes_written : t -> int
val pm_bytes_read : t -> int
val ssd_bytes_read : t -> int

val write_amplification : t -> float
(** Device bytes written (PM + SSD) per user byte written. *)

val read_amplification : t -> float
(** Device bytes read (PM + SSD) per key+value byte returned to the user. *)

val compaction_debt_bytes : t -> int
(** Level-0 backlog bytes (both media) still awaiting compaction. *)

val compaction_debt_tables : t -> int

val space_bytes : t -> int
(** Physical live bytes across PM and SSD structures. *)

val logical_bytes : t -> int
(** Key+value bytes of the newest visible version of every key, via a full
    merged collection. Reads every structure (perturbing device read
    stats) — one-shot diagnostics only. *)

val pipeline_stats : t -> Compaction.Pipeline.totals
(** Cumulative staged-compaction replay accounting
    ([Config.pipeline_compaction]): runs, serial vs pipelined time, clock
    rebate, per-stage busy time, queue waits and replay sanitizer counts.
    All zero while the pipeline is disabled. *)

val pp_stats : t Fmt.t
(** One-look storage report: per-tier occupancy, latency percentiles,
    compaction counters, write amplification, PM hit ratio. *)

val register_metrics : Obs.Registry.t -> t -> unit
(** Register this engine's readouts under stable dotted names
    ([engine.reads], [engine.l0_bytes], latency histograms, ...) together
    with its devices' [pmem.*] / [ssd.*] namespaces. *)

(* The manifest: the engine's structural state, persisted to an SSD file
   whose id is the device's superblock root pointer. Recovery starts here:
   it names every PM region and SSD file of every partition, the WAL, and
   the sequence-number high-water mark, so a fresh process can rebuild the
   DRAM handles without moving any data.

   Serialized with the varint codec; rewritten as a whole on structural
   changes (flushes, compactions, splits), RocksDB-MANIFEST style but
   snapshot-only. *)

let magic = 0x504D4D46 (* "PMMF" *)

type row = { region_id : int; watermark : string }

type partition_state = {
  lo : string;
  hi : string;
  unsorted : row list;          (* newest first, as the engine holds them *)
  sorted_run : int list;        (* region ids, ascending *)
  ssd_l0 : int list;            (* file ids, newest first *)
  levels : int list list;       (* file ids per level, ascending *)
}

type state = {
  next_seq : int;
  wal_file_id : int option;
  partitions : partition_state list;
}

let encode state =
  let buf = Buffer.create 1024 in
  Util.Varint.write buf magic;
  Util.Varint.write buf state.next_seq;
  (match state.wal_file_id with
  | Some id ->
      Util.Varint.write buf 1;
      Util.Varint.write buf id
  | None -> Util.Varint.write buf 0);
  Util.Varint.write buf (List.length state.partitions);
  List.iter
    (fun p ->
      Util.Varint.write_string buf p.lo;
      Util.Varint.write_string buf p.hi;
      Util.Varint.write buf (List.length p.unsorted);
      List.iter
        (fun r ->
          Util.Varint.write buf r.region_id;
          Util.Varint.write_string buf r.watermark)
        p.unsorted;
      Util.Varint.write buf (List.length p.sorted_run);
      List.iter (Util.Varint.write buf) p.sorted_run;
      Util.Varint.write buf (List.length p.ssd_l0);
      List.iter (Util.Varint.write buf) p.ssd_l0;
      Util.Varint.write buf (List.length p.levels);
      List.iter
        (fun level ->
          Util.Varint.write buf (List.length level);
          List.iter (Util.Varint.write buf) level)
        p.levels)
    state.partitions;
  Buffer.contents buf

let decode raw =
  let m, pos = Util.Varint.read raw 0 in
  if m <> magic then failwith "Manifest.decode: bad magic";
  let next_seq, pos = Util.Varint.read raw pos in
  let has_wal, pos = Util.Varint.read raw pos in
  let wal_file_id, pos =
    if has_wal = 1 then
      let id, pos = Util.Varint.read raw pos in
      (Some id, pos)
    else (None, pos)
  in
  let read_list pos read_item =
    let n, pos = Util.Varint.read raw pos in
    let rec loop i pos acc =
      if i = n then (List.rev acc, pos)
      else
        let item, pos = read_item pos in
        loop (i + 1) pos (item :: acc)
    in
    loop 0 pos []
  in
  let read_int pos = Util.Varint.read raw pos in
  let n_partitions, pos = Util.Varint.read raw pos in
  let rec read_partitions i pos acc =
    if i = n_partitions then (List.rev acc, pos)
    else begin
      let lo, pos = Util.Varint.read_string raw pos in
      let hi, pos = Util.Varint.read_string raw pos in
      let unsorted, pos =
        read_list pos (fun pos ->
            let region_id, pos = Util.Varint.read raw pos in
            let watermark, pos = Util.Varint.read_string raw pos in
            ({ region_id; watermark }, pos))
      in
      let sorted_run, pos = read_list pos read_int in
      let ssd_l0, pos = read_list pos read_int in
      let levels, pos = read_list pos (fun pos -> read_list pos read_int) in
      read_partitions (i + 1) pos ({ lo; hi; unsorted; sorted_run; ssd_l0; levels } :: acc)
    end
  in
  let partitions, _ = read_partitions 0 pos [] in
  { next_seq; wal_file_id; partitions }

(* Persist: write a fresh manifest file, point the superblock at it, and
   delete the previous one. Crash-consistency hinges on the ordering: the
   new manifest is fully durable (seal = barrier) *before* the atomic
   superblock flip, and the old manifest is deleted only *after* it — a
   crash at any point leaves the superblock naming a complete manifest. *)
let persist ssd state =
  let previous = Option.bind (Ssd.root ssd) (Ssd.find_file ssd) in
  let file = Ssd.create_file ssd in
  Ssd.append ssd file (encode state);
  Ssd.seal ssd file;
  Ssd.set_root ssd (Ssd.file_id file);
  (match previous with Some old -> Ssd.delete_file ssd old | None -> ());
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "manifest.persist" ~attrs:(fun () ->
        [ ("file", Obs.Trace.Int (Ssd.file_id file)) ])

(* Load from the superblock pointer; None when no manifest was ever
   written (fresh device). *)
let load ssd =
  match Option.bind (Ssd.root ssd) (Ssd.find_file ssd) with
  | None -> None
  | Some file ->
      let raw = Ssd.pread ssd file ~off:0 ~len:(Ssd.file_size file) in
      Some (decode raw)

(* The manifest: the engine's structural state, persisted to an SSD file
   whose id is the device's superblock root pointer. Recovery starts here:
   it names every PM region and SSD file of every partition, the WAL, the
   sequence-number high-water mark, and any quarantined (damage-recorded)
   structures, so a fresh process can rebuild the DRAM handles without
   moving any data.

   Serialized with the varint codec plus a trailing CRC32; rewritten as a
   whole on structural changes (flushes, compactions, splits),
   RocksDB-MANIFEST style but snapshot-only. The superblock keeps two
   slots, so the previous manifest file is kept alive alongside the
   current one: if the current snapshot rots on the medium, [load] falls
   back to the previous good one instead of bricking recovery. *)

let magic = 0x504D4D46 (* "PMMF" *)

type row = { region_id : int; watermark : string }

type partition_state = {
  lo : string;
  hi : string;
  unsorted : row list;          (* newest first, as the engine holds them *)
  sorted_run : int list;        (* region ids, ascending *)
  ssd_l0 : int list;            (* file ids, newest first *)
  levels : int list list;       (* file ids per level, ascending *)
}

(* A damage record: the structure was quarantined (pulled from the read
   path) or salvaged with losses; [lo, hi] conservatively bounds the keys
   that may have been lost with it. Recovery must neither reopen nor
   garbage-collect the named structure. *)
type quarantined_source = Q_region of int | Q_file of int

type quarantine = { source : quarantined_source; q_lo : string; q_hi : string }

type state = {
  next_seq : int;
  wal_file_id : int option;
  partitions : partition_state list;
  quarantined : quarantine list;  (* newest first *)
}

let encode state =
  let buf = Buffer.create 1024 in
  Util.Varint.write buf magic;
  Util.Varint.write buf state.next_seq;
  (match state.wal_file_id with
  | Some id ->
      Util.Varint.write buf 1;
      Util.Varint.write buf id
  | None -> Util.Varint.write buf 0);
  Util.Varint.write buf (List.length state.partitions);
  List.iter
    (fun p ->
      Util.Varint.write_string buf p.lo;
      Util.Varint.write_string buf p.hi;
      Util.Varint.write buf (List.length p.unsorted);
      List.iter
        (fun r ->
          Util.Varint.write buf r.region_id;
          Util.Varint.write_string buf r.watermark)
        p.unsorted;
      Util.Varint.write buf (List.length p.sorted_run);
      List.iter (Util.Varint.write buf) p.sorted_run;
      Util.Varint.write buf (List.length p.ssd_l0);
      List.iter (Util.Varint.write buf) p.ssd_l0;
      Util.Varint.write buf (List.length p.levels);
      List.iter
        (fun level ->
          Util.Varint.write buf (List.length level);
          List.iter (Util.Varint.write buf) level)
        p.levels)
    state.partitions;
  Util.Varint.write buf (List.length state.quarantined);
  List.iter
    (fun q ->
      (match q.source with
      | Q_region id ->
          Util.Varint.write buf 0;
          Util.Varint.write buf id
      | Q_file id ->
          Util.Varint.write buf 1;
          Util.Varint.write buf id);
      Util.Varint.write_string buf q.q_lo;
      Util.Varint.write_string buf q.q_hi)
    state.quarantined;
  (* trailing checksum over everything above: decode refuses a snapshot
     whose bytes rotted, which is what triggers the dual-slot fallback *)
  let body = Buffer.contents buf in
  let crc = Util.Crc32.string body in
  Buffer.add_char buf (Char.chr (crc land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff));
  Buffer.contents buf

let decode raw =
  let total = String.length raw in
  if total < 5 then failwith "Manifest.decode: truncated";
  let body_len = total - 4 in
  let stored =
    Char.code raw.[body_len]
    lor (Char.code raw.[body_len + 1] lsl 8)
    lor (Char.code raw.[body_len + 2] lsl 16)
    lor (Char.code raw.[body_len + 3] lsl 24)
  in
  if Util.Crc32.update 0 raw 0 body_len <> stored then
    failwith "Manifest.decode: bad checksum";
  let m, pos = Util.Varint.read raw 0 in
  if m <> magic then failwith "Manifest.decode: bad magic";
  let next_seq, pos = Util.Varint.read raw pos in
  let has_wal, pos = Util.Varint.read raw pos in
  let wal_file_id, pos =
    if has_wal = 1 then
      let id, pos = Util.Varint.read raw pos in
      (Some id, pos)
    else (None, pos)
  in
  let read_list pos read_item =
    let n, pos = Util.Varint.read raw pos in
    let rec loop i pos acc =
      if i = n then (List.rev acc, pos)
      else
        let item, pos = read_item pos in
        loop (i + 1) pos (item :: acc)
    in
    loop 0 pos []
  in
  let read_int pos = Util.Varint.read raw pos in
  let n_partitions, pos = Util.Varint.read raw pos in
  let rec read_partitions i pos acc =
    if i = n_partitions then (List.rev acc, pos)
    else begin
      let lo, pos = Util.Varint.read_string raw pos in
      let hi, pos = Util.Varint.read_string raw pos in
      let unsorted, pos =
        read_list pos (fun pos ->
            let region_id, pos = Util.Varint.read raw pos in
            let watermark, pos = Util.Varint.read_string raw pos in
            ({ region_id; watermark }, pos))
      in
      let sorted_run, pos = read_list pos read_int in
      let ssd_l0, pos = read_list pos read_int in
      let levels, pos = read_list pos (fun pos -> read_list pos read_int) in
      read_partitions (i + 1) pos ({ lo; hi; unsorted; sorted_run; ssd_l0; levels } :: acc)
    end
  in
  let partitions, pos = read_partitions 0 pos [] in
  let quarantined, _ =
    read_list pos (fun pos ->
        let tag, pos = Util.Varint.read raw pos in
        let id, pos = Util.Varint.read raw pos in
        let q_lo, pos = Util.Varint.read_string raw pos in
        let q_hi, pos = Util.Varint.read_string raw pos in
        let source = if tag = 0 then Q_region id else Q_file id in
        ({ source; q_lo; q_hi }, pos))
  in
  { next_seq; wal_file_id; partitions; quarantined }

(* Fallbacks are rare enough that a process-wide counter (exposed as the
   manifest.fallback metric) is the right grain. *)
let fallbacks = ref 0
let fallback_count () = !fallbacks

(* Persist: write a fresh manifest file, point the superblock at it, and
   delete the manifest that falls off the two-slot window. Ordering is the
   crash-consistency story: the new manifest is fully durable (seal =
   barrier) *before* the atomic superblock flip, and files are deleted
   only *after* it — a crash at any point leaves the superblock naming at
   least one complete manifest, and medium rot in the current one still
   has the previous slot to fall back to. *)
let persist ?(root = "") ssd state =
  let _, prev = Ssd.root_slots ~name:root ssd in
  let falling_off = Option.bind prev (Ssd.find_file ssd) in
  let file = Ssd.create_file ssd in
  Ssd.append ssd file (encode state);
  Ssd.seal ssd file;
  Ssd.set_root ~name:root ssd (Ssd.file_id file);
  (match falling_off with Some old -> Ssd.delete_file ssd old | None -> ());
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "manifest.persist" ~attrs:(fun () ->
        [ ("file", Obs.Trace.Int (Ssd.file_id file)) ])

let load_slot ssd id =
  match Ssd.find_file ssd id with
  | None -> Error (Printf.sprintf "manifest file %d missing" id)
  | Some file -> (
      match decode (Ssd.pread ssd file ~off:0 ~len:(Ssd.file_size file)) with
      | state -> Ok state
      | exception Failure msg -> Error msg
      | exception Invalid_argument msg -> Error msg)

(* Load from the superblock: try the current slot, fall back to the
   previous one when the current snapshot is rotten. None only on a fresh
   device; raises [Failure] when every slot is unreadable (recovery must
   fail loudly, never proceed on a guess). *)
let load ?(root = "") ssd =
  match Ssd.root_slots ~name:root ssd with
  | None, _ -> None
  | Some current, prev -> (
      match load_slot ssd current with
      | Ok state -> Some state
      | Error msg -> (
          incr fallbacks;
          if Obs.Trace.is_enabled () then
            Obs.Trace.instant "manifest.fallback" ~attrs:(fun () ->
                [ ("slot", Obs.Trace.Int current); ("error", Obs.Trace.Str msg) ]);
          match prev with
          | None ->
              failwith
                (Printf.sprintf "Manifest.load: current slot unreadable (%s), no previous slot"
                   msg)
          | Some p -> (
              match load_slot ssd p with
              | Ok state -> Some state
              | Error msg2 ->
                  failwith
                    (Printf.sprintf "Manifest.load: both slots unreadable (%s; %s)" msg msg2)
              )))

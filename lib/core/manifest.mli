(** The engine's structural state, persisted to an SSD file reachable from
    the device superblock: every PM region and SSD file of every partition,
    the WAL id, the sequence high-water mark, and the damage records of
    quarantined structures. Recovery starts here. Snapshots carry a
    trailing CRC32 and the superblock keeps two slots, so a rotten current
    snapshot falls back to the previous good one. *)

type row = { region_id : int; watermark : string }

type partition_state = {
  lo : string;
  hi : string;
  unsorted : row list;
  sorted_run : int list;
  ssd_l0 : int list;
  levels : int list list;
}

type quarantined_source = Q_region of int | Q_file of int

type quarantine = { source : quarantined_source; q_lo : string; q_hi : string }
(** A damage record: the structure was quarantined (pulled from the read
    path) or salvaged with losses; [q_lo, q_hi] conservatively bounds the
    keys that may have been lost. Recovery must neither reopen nor
    garbage-collect the named structure. *)

type state = {
  next_seq : int;
  wal_file_id : int option;
  partitions : partition_state list;
  quarantined : quarantine list;
}

val encode : state -> string
val decode : string -> state
(** Raises [Failure] on a bad magic, bad checksum, or truncation. *)

val persist : ?root:string -> Ssd.t -> state -> unit
(** Write a fresh manifest file, repoint the superblock (shifting the
    current root into the previous slot), and delete the manifest that
    falls off the two-slot window. [root] names the superblock slot pair
    used (default the unnamed pair) so several manifest chains — one per
    shard — can coexist on a shared device. *)

val load : ?root:string -> Ssd.t -> state option
(** [None] on a fresh device. Tries the current superblock slot first and
    falls back to the previous one when the current snapshot is unreadable
    (counting it in {!fallback_count} and emitting a [manifest.fallback]
    trace instant). Raises [Failure] when every slot is unreadable. *)

val fallback_count : unit -> int
(** Process-wide count of dual-slot fallbacks taken by {!load} (exposed as
    the [manifest.fallback] metric). *)

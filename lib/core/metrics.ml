(* Engine-level measurements backing the evaluation figures: latency
   histograms per operation class, device write amplification, where reads
   were served from (the PM hit ratio of Fig. 8b), and compaction
   counters/durations. *)

type source = From_memtable | From_pm_l0 | From_ssd_l0 | From_level of int | Not_found_

type t = {
  read_latency : Util.Histogram.t;
  write_latency : Util.Histogram.t;
  scan_latency : Util.Histogram.t;
  mutable reads : int;
  mutable writes : int;
  mutable scans : int;
  mutable reads_from_memtable : int;
  mutable reads_from_pm : int;
  mutable reads_from_ssd : int;
  mutable reads_not_found : int;
  mutable user_bytes_written : int;
  mutable user_bytes_read : int;  (* key+value bytes returned to the user *)
  mutable minor_compactions : int;
  mutable internal_compactions : int;
  mutable major_compactions : int;
  mutable internal_compaction_time : float;
  mutable major_compaction_time : float;
  mutable write_stall_time : float;
  mutable write_stalls : int;  (* foreground writes that blocked on backpressure *)
  mutable ssd_retries : int;  (* transient SSD I/O errors retried with backoff *)
  mutable quarantined : int;  (* structures pulled from the read path on corruption *)
  mutable degraded_reads : int;  (* reads/scans that hit a quarantine (typed error) *)
  mutable salvaged : int;  (* corrupt tables rebuilt from their surviving blocks *)
  mutable wal_corrupt_records : int;  (* rotten WAL records skipped at replay *)
  mutable fence_rebuilds : int;  (* fence-pointer sets rebuilt after structural changes *)
}

let create () =
  {
    read_latency = Util.Histogram.create ();
    write_latency = Util.Histogram.create ();
    scan_latency = Util.Histogram.create ();
    reads = 0;
    writes = 0;
    scans = 0;
    reads_from_memtable = 0;
    reads_from_pm = 0;
    reads_from_ssd = 0;
    reads_not_found = 0;
    user_bytes_written = 0;
    user_bytes_read = 0;
    minor_compactions = 0;
    internal_compactions = 0;
    major_compactions = 0;
    internal_compaction_time = 0.0;
    major_compaction_time = 0.0;
    write_stall_time = 0.0;
    write_stalls = 0;
    ssd_retries = 0;
    quarantined = 0;
    degraded_reads = 0;
    salvaged = 0;
    wal_corrupt_records = 0;
    fence_rebuilds = 0;
  }

let note_write t latency =
  t.writes <- t.writes + 1;
  Util.Histogram.record t.write_latency latency

let note_scan t latency =
  t.scans <- t.scans + 1;
  Util.Histogram.record t.scan_latency latency

let note_read t source latency =
  t.reads <- t.reads + 1;
  Util.Histogram.record t.read_latency latency;
  match source with
  | From_memtable -> t.reads_from_memtable <- t.reads_from_memtable + 1
  | From_pm_l0 -> t.reads_from_pm <- t.reads_from_pm + 1
  | From_ssd_l0 | From_level _ -> t.reads_from_ssd <- t.reads_from_ssd + 1
  | Not_found_ -> t.reads_not_found <- t.reads_not_found + 1

(* Fig. 8b's metric: reads answered without touching the SSD. *)
let pm_hit_ratio t =
  let found = t.reads_from_memtable + t.reads_from_pm + t.reads_from_ssd in
  if found = 0 then 0.0
  else float_of_int (t.reads_from_memtable + t.reads_from_pm) /. float_of_int found

let reset_read_sources t =
  t.reads_from_memtable <- 0;
  t.reads_from_pm <- 0;
  t.reads_from_ssd <- 0;
  t.reads_not_found <- 0

(** Engine-level measurements backing the evaluation figures: latency
    histograms per operation class, read-source accounting (Fig. 8b's PM
    hit ratio), and compaction counters/durations. Device-level write
    amplification comes from {!Pmem.stats} / {!Ssd.stats}. *)

type source = From_memtable | From_pm_l0 | From_ssd_l0 | From_level of int | Not_found_

type t = {
  read_latency : Util.Histogram.t;
  write_latency : Util.Histogram.t;
  scan_latency : Util.Histogram.t;
  mutable reads : int;
  mutable writes : int;
  mutable scans : int;
  mutable reads_from_memtable : int;
  mutable reads_from_pm : int;
  mutable reads_from_ssd : int;
  mutable reads_not_found : int;
  mutable user_bytes_written : int;
  mutable user_bytes_read : int;
      (** key+value bytes returned to the user by gets/scans *)
  mutable minor_compactions : int;
  mutable internal_compactions : int;
  mutable major_compactions : int;
  mutable internal_compaction_time : float;
  mutable major_compaction_time : float;
  mutable write_stall_time : float;
  mutable write_stalls : int;
      (** foreground writes that blocked on backpressure relief *)
  mutable ssd_retries : int;
      (** transient SSD I/O errors retried with backoff *)
  mutable quarantined : int;
      (** structures pulled from the read path on corruption *)
  mutable degraded_reads : int;
      (** reads/scans that hit a quarantine (surfaced as typed errors) *)
  mutable salvaged : int;
      (** corrupt tables rebuilt from their surviving blocks *)
  mutable wal_corrupt_records : int;
      (** rotten WAL records skipped at replay *)
  mutable fence_rebuilds : int;
      (** fence-pointer sets rebuilt after structural changes *)
}

val create : unit -> t
val note_read : t -> source -> float -> unit

val note_write : t -> float -> unit
(** Count one write and record its latency. *)

val note_scan : t -> float -> unit
(** Count one scan and record its latency. *)

val pm_hit_ratio : t -> float
(** Fraction of successful reads answered without touching the SSD. *)

val reset_read_sources : t -> unit

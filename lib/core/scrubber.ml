(* Full-store integrity pass: every live PM table and SSTable re-verified
   from the medium (via Engine.scrub, optionally salvaging), the durable
   WAL checksum-walked, and the dual-slot manifest superblock checked. One
   call answers "is everything on these devices still trustworthy, and what
   did we lose?" — the scrub CLI subcommand and the corruption sweep both
   drive it. *)

type report = {
  engine : Engine.scrub_report;
  wal : Wal.replay_stats option;  (* None when the engine is not durable *)
  manifest_slots : int;           (* superblock slots currently populated *)
  manifest_rotted : bool;         (* the newest slot failed its checksum *)
  manifest_fallbacks : int;       (* dual-slot fallbacks taken this process *)
}

let clean r =
  r.engine.Engine.corrupt_pm_tables = 0
  && r.engine.Engine.corrupt_sstables = 0
  && (not r.manifest_rotted)
  && (match r.wal with
     | Some s -> s.Wal.corrupt_records = 0 && not s.Wal.torn_tail
     | None -> true)

let run ?salvage ?rate_limit_mb_s engine =
  let scrub = Engine.scrub ?salvage ?rate_limit_mb_s engine in
  let wal = Option.map Wal.verify (Engine.wal engine) in
  let cur, prev = Ssd.root_slots (Engine.ssd engine) in
  let manifest_slots = (if cur = None then 0 else 1) + if prev = None then 0 else 1 in
  (* Trial-load the manifest: a rotted newest slot surfaces here as a
     dual-slot fallback (counted process-wide), not at the next restart. *)
  let fb_before = Manifest.fallback_count () in
  let manifest_rotted =
    match Manifest.load (Engine.ssd engine) with
    | Some _ -> Manifest.fallback_count () > fb_before
    | None -> manifest_slots > 0
    | exception _ -> true
  in
  let report =
    { engine = scrub; wal; manifest_slots; manifest_rotted;
      manifest_fallbacks = Manifest.fallback_count () }
  in
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "scrubber.report" ~attrs:(fun () ->
        [
          ("tables", Obs.Trace.Int scrub.Engine.scrubbed_tables);
          ("corrupt_pm", Obs.Trace.Int scrub.Engine.corrupt_pm_tables);
          ("corrupt_sst", Obs.Trace.Int scrub.Engine.corrupt_sstables);
          ("salvaged", Obs.Trace.Int scrub.Engine.salvaged);
          ("clean", Obs.Trace.Bool (clean report));
        ]);
  report

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%a@," Engine.pp_scrub_report r.engine;
  (match r.wal with
  | Some s ->
      Fmt.pf ppf "wal: %d entries, %d corrupt records, torn tail: %b@," s.Wal.entries
        s.Wal.corrupt_records s.Wal.torn_tail
  | None -> Fmt.pf ppf "wal: none (not durable)@,");
  Fmt.pf ppf "manifest: %d slot(s)%s, %d fallback(s)@]" r.manifest_slots
    (if r.manifest_rotted then " (newest slot ROTTED)" else "")
    r.manifest_fallbacks

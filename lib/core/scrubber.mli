(** Full-store integrity pass: every live table re-verified from the medium
    (via {!Engine.scrub}, optionally salvaging), the durable WAL
    checksum-walked, and the dual-slot manifest superblock checked. The
    [scrub] CLI subcommand and the corruption sweep drive this. *)

type report = {
  engine : Engine.scrub_report;
  wal : Wal.replay_stats option;  (** [None] when the engine is not durable *)
  manifest_slots : int;  (** superblock slots currently populated *)
  manifest_rotted : bool;
      (** a trial load of the newest manifest slot failed its checksum (the
          dual-slot fallback would serve the previous snapshot) *)
  manifest_fallbacks : int;  (** dual-slot fallbacks taken this process *)
}

val run : ?salvage:bool -> ?rate_limit_mb_s:float -> Engine.t -> report
(** Defaults mirror {!Engine.scrub}: salvage on, rate limit from the
    engine's configuration. *)

val clean : report -> bool
(** No corrupt tables, no rotted manifest slot, no corrupt WAL records, no
    torn tail. *)

val pp_report : report Fmt.t

(* Write-ahead log on the SSD.

   Every write is appended (and durable) before it enters the DRAM
   memtable, so a crash loses nothing: recovery replays the log into a
   fresh memtable. The log rotates after each memtable flush — the flushed
   data is durable in level-0 by then, so the old log is deleted.

   [append] only stages the entry in the DRAM group-commit buffer; [sync]
   is the durability point — it writes the buffered group to the device and
   issues the barrier (fsync), the way production WALs amortise device
   writes across concurrent committers. [replay] reads the device alone:
   entries that were buffered but never synced before a crash do not exist
   and must not be resurrected, and a torn tail (a partial page image of
   the last unsynced group) truncates the replay at the last complete
   entry. *)

type sync_outcome = Sync_ok | Sync_skip_fsync

type t = {
  ssd : Ssd.t;
  mutable file : Ssd.file;
  buf : Buffer.t;
  group_bytes : int;
  mutable appended : int;  (* entries in the current log, buffered included *)
  mutable sync_hook : (entries:int -> bytes:int -> sync_outcome) option;
}

let default_group_bytes = 4096

let create ?(group_bytes = default_group_bytes) ssd =
  {
    ssd;
    file = Ssd.create_file ssd;
    buf = Buffer.create group_bytes;
    group_bytes;
    appended = 0;
    sync_hook = None;
  }

let file_id t = Ssd.file_id t.file

let set_sync_hook t hook = t.sync_hook <- hook

let buffered_bytes t = Buffer.length t.buf

(* Durability point. The fault hook runs first: it may raise (crash at the
   site) or downgrade the sync to a barrier-less write (sync loss). On a
   transient device error the buffer is left intact, so the caller can
   retry the sync without duplicating entries. *)
let sync t =
  if Buffer.length t.buf > 0 then begin
    let outcome =
      match t.sync_hook with
      | Some hook -> hook ~entries:t.appended ~bytes:(Buffer.length t.buf)
      | None -> Sync_ok
    in
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "wal.sync" ~attrs:(fun () ->
          [ ("bytes", Obs.Trace.Int (Buffer.length t.buf)) ]);
    Ssd.append t.ssd t.file (Buffer.contents t.buf);
    (match outcome with
    | Sync_ok -> Ssd.fsync t.ssd t.file
    | Sync_skip_fsync -> ());
    Buffer.clear t.buf
  end

(* Stage the entry in the group-commit buffer; it reaches the device (and
   becomes durable) at the next [sync]. *)
let append t entry =
  Util.Kv.encode t.buf entry;
  t.appended <- t.appended + 1

(* Start a new log; the previous one's contents are durable in level-0. *)
let rotate t =
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "wal.rotate" ~attrs:(fun () ->
        [ ("entries", Obs.Trace.Int t.appended) ]);
  Buffer.clear t.buf;
  Ssd.delete_file t.ssd t.file;
  t.file <- Ssd.create_file t.ssd;
  t.appended <- 0

let entry_count t = t.appended

(* Decode every *durable* entry, oldest first (replay order). The DRAM
   buffer is deliberately not consulted: after a crash those entries were
   never acknowledged as synced and must not be resurrected. A torn tail —
   the crash kept only part of the final page — decodes short and ends the
   replay at the last complete entry. *)
let replay t f =
  let size = Ssd.file_size t.file in
  if size > 0 then begin
    let raw = Ssd.pread t.ssd t.file ~off:0 ~len:size in
    let pos = ref 0 in
    let torn = ref false in
    while (not !torn) && !pos < size do
      match Util.Kv.decode raw !pos with
      | entry, next ->
          pos := next;
          f entry
      | exception _ ->
          torn := true;
          if Obs.Trace.is_enabled () then
            Obs.Trace.instant "wal.torn_tail" ~attrs:(fun () ->
                [ ("offset", Obs.Trace.Int !pos); ("size", Obs.Trace.Int size) ])
    done
  end

(* Reattach to a persisted log after a restart. *)
let open_existing ssd ~file_id =
  match Ssd.find_file ssd file_id with
  | Some file ->
      let t =
        {
          ssd;
          file;
          buf = Buffer.create default_group_bytes;
          group_bytes = default_group_bytes;
          appended = 0;
          sync_hook = None;
        }
      in
      (* entry count unknown until replay; leave 0, replay recomputes *)
      t
  | None -> failwith (Printf.sprintf "Wal.open_existing: log file %d missing" file_id)

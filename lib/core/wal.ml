(* Write-ahead log on the SSD.

   Every write is appended (and durable) before it enters the DRAM
   memtable, so a crash loses nothing: recovery replays the log into a
   fresh memtable. The log rotates after each memtable flush — the flushed
   data is durable in level-0 by then, so the old log is deleted.

   Appends are buffered and synced in small groups (group commit), the way
   production WALs amortise device writes across concurrent committers. *)

type t = {
  ssd : Ssd.t;
  mutable file : Ssd.file;
  buf : Buffer.t;
  group_bytes : int;
  mutable appended : int;  (* entries in the current log, buffered included *)
}

let default_group_bytes = 4096

let create ?(group_bytes = default_group_bytes) ssd =
  { ssd; file = Ssd.create_file ssd; buf = Buffer.create group_bytes; group_bytes; appended = 0 }

let file_id t = Ssd.file_id t.file

let sync t =
  if Buffer.length t.buf > 0 then begin
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "wal.sync" ~attrs:(fun () ->
          [ ("bytes", Obs.Trace.Int (Buffer.length t.buf)) ]);
    Ssd.append t.ssd t.file (Buffer.contents t.buf);
    Buffer.clear t.buf
  end

let append t entry =
  Util.Kv.encode t.buf entry;
  t.appended <- t.appended + 1;
  if Buffer.length t.buf >= t.group_bytes then sync t

(* Start a new log; the previous one's contents are durable in level-0. *)
let rotate t =
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "wal.rotate" ~attrs:(fun () ->
        [ ("entries", Obs.Trace.Int t.appended) ]);
  Buffer.clear t.buf;
  Ssd.delete_file t.ssd t.file;
  t.file <- Ssd.create_file t.ssd;
  t.appended <- 0

let entry_count t = t.appended

(* Decode every logged entry, oldest first (replay order). *)
let replay t f =
  sync t;
  let size = Ssd.file_size t.file in
  if size > 0 then begin
    let raw = Ssd.pread t.ssd t.file ~off:0 ~len:size in
    let pos = ref 0 in
    while !pos < size do
      let entry, next = Util.Kv.decode raw !pos in
      pos := next;
      f entry
    done
  end

(* Reattach to a persisted log after a restart. *)
let open_existing ssd ~file_id =
  match Ssd.find_file ssd file_id with
  | Some file ->
      let t = { ssd; file; buf = Buffer.create default_group_bytes; group_bytes = default_group_bytes; appended = 0 } in
      (* entry count unknown until replay; leave 0, replay recomputes *)
      t
  | None -> failwith (Printf.sprintf "Wal.open_existing: log file %d missing" file_id)

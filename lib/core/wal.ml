(* Write-ahead log on the SSD.

   Every write is appended (and durable) before it enters the DRAM
   memtable, so a crash loses nothing: recovery replays the log into a
   fresh memtable. The log rotates after each memtable flush — the flushed
   data is durable in level-0 by then, so the old log is deleted.

   [append] only stages the entry in the DRAM group-commit buffer; [sync]
   is the durability point — it writes the buffered group to the device and
   issues the barrier (fsync), the way production WALs amortise device
   writes across concurrent committers. [replay] reads the device alone:
   entries that were buffered but never synced before a crash do not exist
   and must not be resurrected, and a torn tail (a partial page image of
   the last unsynced group) truncates the replay at the last complete
   entry.

   Each record is framed as [crc32 | length | payload] so replay can tell
   medium rot from a torn tail: a record whose checksum fails but whose
   length field still bounds a plausible payload is skipped and counted,
   and replay continues with the next frame; a frame that does not fit the
   remaining bytes ends the replay (torn tail). *)

type sync_outcome = Sync_ok | Sync_skip_fsync

type replay_stats = {
  entries : int;  (* entries decoded and delivered *)
  corrupt_records : int;  (* checksum-failed records skipped *)
  torn_tail : bool;  (* replay ended at an incomplete trailing frame *)
  dropped_bytes : int;  (* bytes not delivered (skipped + torn) *)
}

type t = {
  ssd : Ssd.t;
  mutable file : Ssd.file;
  buf : Buffer.t;
  scratch : Buffer.t;  (* one encoded entry, reused across appends *)
  group_bytes : int;
  mutable appended : int;  (* entries in the current log, buffered included *)
  mutable sync_hook : (entries:int -> bytes:int -> sync_outcome) option;
}

let default_group_bytes = 4096

(* A record longer than this cannot be real: a "length" above it is frame
   garbage, not a skippable record. *)
let max_record_bytes = 16 * 1024 * 1024

let frame_header_bytes = 8

let write_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let read_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let create ?(group_bytes = default_group_bytes) ssd =
  {
    ssd;
    file = Ssd.create_file ssd;
    buf = Buffer.create group_bytes;
    scratch = Buffer.create 256;
    group_bytes;
    appended = 0;
    sync_hook = None;
  }

let file_id t = Ssd.file_id t.file

let set_sync_hook t hook = t.sync_hook <- hook

let buffered_bytes t = Buffer.length t.buf

(* Durability point. The fault hook runs first: it may raise (crash at the
   site) or downgrade the sync to a barrier-less write (sync loss). On a
   transient device error the buffer is left intact, so the caller can
   retry the sync without duplicating entries. *)
let sync t =
  if Buffer.length t.buf > 0 then begin
    let outcome =
      match t.sync_hook with
      | Some hook -> hook ~entries:t.appended ~bytes:(Buffer.length t.buf)
      | None -> Sync_ok
    in
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "wal.sync" ~attrs:(fun () ->
          [ ("bytes", Obs.Trace.Int (Buffer.length t.buf)) ]);
    Ssd.append t.ssd t.file (Buffer.contents t.buf);
    (match outcome with
    | Sync_ok -> Ssd.fsync t.ssd t.file
    | Sync_skip_fsync -> ());
    Buffer.clear t.buf
  end

(* Stage the entry in the group-commit buffer; it reaches the device (and
   becomes durable) at the next [sync]. *)
let append t entry =
  Buffer.clear t.scratch;
  Util.Kv.encode t.scratch entry;
  let payload = Buffer.contents t.scratch in
  write_u32 t.buf (Util.Crc32.string payload);
  write_u32 t.buf (String.length payload);
  Buffer.add_string t.buf payload;
  t.appended <- t.appended + 1

(* Start a new log; the previous one's contents are durable in level-0. *)
let rotate t =
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "wal.rotate" ~attrs:(fun () ->
        [ ("entries", Obs.Trace.Int t.appended) ]);
  Buffer.clear t.buf;
  Ssd.delete_file t.ssd t.file;
  t.file <- Ssd.create_file t.ssd;
  t.appended <- 0

let entry_count t = t.appended

(* Decode every *durable* entry, oldest first (replay order). The DRAM
   buffer is deliberately not consulted: after a crash those entries were
   never acknowledged as synced and must not be resurrected. A frame whose
   checksum fails is skipped (and counted) using its length field; a frame
   that does not fit the remaining bytes is a torn tail and ends the
   replay. *)
let replay t f =
  let size = Ssd.file_size t.file in
  if size = 0 then
    { entries = 0; corrupt_records = 0; torn_tail = false; dropped_bytes = 0 }
  else begin
    let raw = Ssd.pread t.ssd t.file ~off:0 ~len:size in
    let pos = ref 0 in
    let entries = ref 0 in
    let corrupt = ref 0 in
    let skipped_bytes = ref 0 in
    let torn = ref false in
    while (not !torn) && !pos < size do
      if !pos + frame_header_bytes > size then begin
        torn := true;
        if Obs.Trace.is_enabled () then
          Obs.Trace.instant "wal.torn_tail" ~attrs:(fun () ->
              [ ("offset", Obs.Trace.Int !pos); ("size", Obs.Trace.Int size) ])
      end
      else begin
        let crc = read_u32 raw !pos in
        let len = read_u32 raw (!pos + 4) in
        if len <= 0 || len > max_record_bytes || !pos + frame_header_bytes + len > size
        then begin
          (* the frame does not fit: either the crash tore the final group,
             or rot hit the length field itself — either way nothing beyond
             this point can be trusted *)
          torn := true;
          if Obs.Trace.is_enabled () then
            Obs.Trace.instant "wal.torn_tail" ~attrs:(fun () ->
                [ ("offset", Obs.Trace.Int !pos); ("size", Obs.Trace.Int size) ])
        end
        else begin
          let payload_off = !pos + frame_header_bytes in
          if Util.Crc32.update 0 raw payload_off len <> crc then begin
            (* checksum failure with an intact-looking frame: skip exactly
               this record and keep replaying the ones after it *)
            incr corrupt;
            skipped_bytes := !skipped_bytes + frame_header_bytes + len;
            if Obs.Trace.is_enabled () then
              Obs.Trace.instant "wal.corrupt_record" ~attrs:(fun () ->
                  [ ("offset", Obs.Trace.Int !pos); ("len", Obs.Trace.Int len) ]);
            pos := payload_off + len
          end
          else
            match Util.Kv.decode raw payload_off with
            | entry, next when next <= payload_off + len ->
                pos := payload_off + len;
                incr entries;
                f entry
            | _ | (exception _) ->
                (* checksum passed but the payload does not decode — frame
                   garbage that happened to checksum; treat as corrupt *)
                incr corrupt;
                skipped_bytes := !skipped_bytes + frame_header_bytes + len;
                pos := payload_off + len
        end
      end
    done;
    {
      entries = !entries;
      corrupt_records = !corrupt;
      torn_tail = !torn;
      dropped_bytes = !skipped_bytes + (if !torn then size - !pos else 0);
    }
  end

(* Checksum-walk the durable log without delivering entries (scrub). *)
let verify t = replay t (fun _ -> ())

(* Reattach to a persisted log after a restart. *)
let open_existing ssd ~file_id =
  match Ssd.find_file ssd file_id with
  | Some file ->
      let t =
        {
          ssd;
          file;
          buf = Buffer.create default_group_bytes;
          scratch = Buffer.create 256;
          group_bytes = default_group_bytes;
          appended = 0;
          sync_hook = None;
        }
      in
      (* entry count unknown until replay; leave 0, replay recomputes *)
      t
  | None -> failwith (Printf.sprintf "Wal.open_existing: log file %d missing" file_id)

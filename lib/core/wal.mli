(** Write-ahead log on the SSD: appended (durably) before the memtable, so
    recovery replays it after a crash. Rotates after each memtable flush.
    {!append} only stages into the DRAM group-commit buffer; {!sync} is the
    durability point (device write + barrier). Every record is framed with
    a CRC32 so replay can skip rotten records and report them instead of
    delivering garbage. *)

type t

val create : ?group_bytes:int -> Ssd.t -> t
val file_id : t -> int

val append : t -> Util.Kv.entry -> unit
(** Stage the entry in the group-commit buffer. It becomes durable only at
    the next {!sync}. *)

val sync : t -> unit
(** Write the buffered group to the device and issue the barrier. On a
    transient [Ssd.Io_error] the buffer is preserved, so the call can be
    retried without duplicating entries. *)

val buffered_bytes : t -> int
(** Bytes staged but not yet synced (0 right after a successful sync). *)

val rotate : t -> unit
(** Start a fresh log; the previous one's data is durable in level-0. *)

val entry_count : t -> int

type replay_stats = {
  entries : int;  (** entries decoded and delivered *)
  corrupt_records : int;  (** checksum-failed records skipped *)
  torn_tail : bool;  (** replay ended at an incomplete trailing frame *)
  dropped_bytes : int;  (** bytes not delivered (skipped + torn) *)
}

val replay : t -> (Util.Kv.entry -> unit) -> replay_stats
(** Visit every {e durable} logged entry oldest-first. Buffered-but-unsynced
    entries are not consulted (they did not survive the crash). A record
    whose checksum fails but whose frame is intact is skipped and counted
    in [corrupt_records]; a frame that no longer fits the durable bytes is
    a torn tail and ends the replay. *)

val verify : t -> replay_stats
(** Checksum-walk the durable log without delivering entries (scrub). *)

val open_existing : Ssd.t -> file_id:int -> t
(** Reattach to a persisted log. Raises [Failure] if the file is gone. *)

(** {1 Fault-injection hook} *)

type sync_outcome =
  | Sync_ok  (** normal sync: device write + barrier *)
  | Sync_skip_fsync
      (** sync loss: the group is written but the barrier is swallowed, so
          the bytes do not survive a crash — the deliberate durability bug
          the crash sweep must catch *)

val set_sync_hook : t -> (entries:int -> bytes:int -> sync_outcome) option -> unit
(** Consulted at the start of every non-empty {!sync}; may raise to model a
    crash at the site. *)

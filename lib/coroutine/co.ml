(* Coroutine primitives as OCaml 5 effects.

   A coroutine is ordinary OCaml code that performs these effects; the
   scheduler's handler suspends the one-shot continuation and decides when
   (in simulated time) to resume it. This mirrors the paper's C++
   stackful-coroutine implementation: suspension points are exactly the
   simulated-CPU and simulated-I/O calls. *)

type io_kind = Read | Write

(* One-shot wakeup latch: tasks park on it with [await] until some other
   task [signal]s it. The scheduler owns the waiter list; the sanitizer
   draws its signal->await happens-before edge through [lid]. *)
type latch = {
  lid : int;
  latch_name : string;
  mutable signaled : bool;
  mutable waiters : (unit -> unit) list;
}

let next_lid = ref 0

let latch ?(name = "latch") () =
  incr next_lid;
  { lid = !next_lid; latch_name = name; signaled = false; waiters = [] }

let is_signaled l = l.signaled

type _ Effect.t +=
  | Work : float -> unit Effect.t
      (* consume simulated CPU for the duration on the owning core *)
  | Io : io_kind * int -> float Effect.t
      (* blocking device I/O of [bytes]; resumes with the observed latency *)
  | Offload_write : int -> unit Effect.t
      (* hand an S3 write of [bytes] to the worker's flush coroutine and
         continue immediately (PM-Blade §V-C) *)
  | Yield : unit Effect.t
  | Now : float Effect.t
      (* current simulated time; resumes immediately (tracing) *)
  | Await : latch -> unit Effect.t
      (* park until the latch is signaled (immediate if it already was) *)
  | Signal : latch -> unit Effect.t
      (* signal the latch and wake every parked waiter *)

let work duration = Effect.perform (Work duration)
let io kind bytes = Effect.perform (Io (kind, bytes))
let read bytes = io Read bytes
let write bytes = io Write bytes
let offload_write bytes = Effect.perform (Offload_write bytes)
let yield () = Effect.perform Yield
let now () = Effect.perform Now
let await l = Effect.perform (Await l)
let signal l = Effect.perform (Signal l)

(** Coroutine primitives as OCaml 5 effects.

    A coroutine is ordinary OCaml code performing these effects; the
    {!Scheduler}'s handler suspends the one-shot continuation and resumes it
    at the right simulated time. Suspension points mirror the paper's
    stackful coroutines: simulated CPU bursts and simulated device I/O. *)

type io_kind = Read | Write

type latch = {
  lid : int;  (** unique id; the sanitizer's sync-object key *)
  latch_name : string;
  mutable signaled : bool;
  mutable waiters : (unit -> unit) list;  (** owned by the scheduler *)
}
(** One-shot wakeup latch: tasks park on it with {!await} until another
    task {!signal}s it. Signals are sticky (awaiting an already-signaled
    latch resumes immediately). *)

type _ Effect.t +=
  | Work : float -> unit Effect.t
  | Io : io_kind * int -> float Effect.t
  | Offload_write : int -> unit Effect.t
  | Yield : unit Effect.t
  | Now : float Effect.t
  | Await : latch -> unit Effect.t
  | Signal : latch -> unit Effect.t

val work : float -> unit
(** Consume simulated CPU for the duration on the owning core. *)

val io : io_kind -> int -> float
(** Blocking device I/O; returns the observed latency (queueing included). *)

val read : int -> float
val write : int -> float

val offload_write : int -> unit
(** Hand an S3 write to the worker's flush coroutine and continue without
    blocking (the PM-Blade §V-C optimisation). Falls back to blocking
    {!write} under schedulers with no flush coroutine. *)

val yield : unit -> unit

val now : unit -> float
(** Current simulated time; resumes immediately (for stage tracing). *)

val latch : ?name:string -> unit -> latch
val is_signaled : latch -> bool

val await : latch -> unit
(** Park the calling task until the latch is signaled; a no-op if it
    already was. The scheduler records a happens-before edge from the
    signaler, so latch-protected shared state is race-free to schedsan. *)

val signal : latch -> unit
(** Signal the latch and wake every parked waiter. Sticky. *)

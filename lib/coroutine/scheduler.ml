(* Scheduling of compaction coroutines over simulated cores and the SSD.

   Three policies, matching the configurations of §VI-C:

   - [Thread_like]: one schedulable unit per task, synchronous I/O (the
     unit blocks until completion), preemptive round-robin time slices with
     an OS-scale context-switch cost, and a wakeup delay between an I/O
     completing and the blocked unit becoming runnable. This is the
     RocksDB-style baseline.

   - [Cooperative]: basic coroutines — switch to another coroutine whenever
     one performs I/O; cheap switches, no preemption, no admission control.

   - [Flush_coroutine]: the paper's method. Each worker owns its own flush
     queue and flush coroutine (not a single shared queue: offloaded S3
     writes stay with the worker that produced them) that takes over all
     S3 writes ([Co.offload_write] returns immediately, so S2 is never
     clipped by S3), and writes are admitted to the device only while

       q_flush = q_max - q_comp - q_cli > 0

     i.e. while total outstanding I/O pressure stays under the user cap.
     [pump_flush] re-evaluates the budget at every scheduling decision and
     I/O completion, across all workers' queues.

   Compaction.Pipeline extends this admission policy to its staged
   read/merge/build/write pipeline: the read stage's prefetch I/O is
   admitted only while in-flight requests stay under
   q_max - pipeline_flush_reserve, so the reserved headroom guarantees the
   flush coroutine (and the write stage behind it) always finds q_flush > 0
   and never starves behind a deep prefetch pipeline. The per-stage quota
   logic lives in lib/compaction/pipeline.ml; this scheduler only exposes
   the live [q_flush]/[Ssd.in_flight] figures it arbitrates with.

   A worker models one core: it executes one continuation at a time, Work
   effects occupy it for their duration via a DES event, Io effects suspend
   the continuation and free it. CPU busy/idle accounting feeds Table III
   and Fig. 9a. *)

type policy =
  | Thread_like of { time_slice : float; switch_cost : float; wakeup_delay : float }
  | Cooperative of { switch_cost : float }
  | Flush_coroutine of { switch_cost : float; q_max : int }

let default_thread_like =
  Thread_like
    { time_slice = Sim.Clock.us 200.0; switch_cost = Sim.Clock.us 3.0;
      wakeup_delay = Sim.Clock.us 5.0 }

let default_cooperative = Cooperative { switch_cost = Sim.Clock.us 0.5 }

let default_flush_coroutine ?(q_max = 8) () =
  Flush_coroutine { switch_cost = Sim.Clock.us 0.5; q_max }

(* What a coroutine does when it next suspends (or finishes). *)
type answer =
  | Done
  | Work of float * (unit, answer) Effect.Deep.continuation
  | Io of Co.io_kind * int * (float, answer) Effect.Deep.continuation
  | Offload of int * (unit, answer) Effect.Deep.continuation
  | Yielded of (unit, answer) Effect.Deep.continuation
  | Awaiting of Co.latch * (unit, answer) Effect.Deep.continuation
  | Signaled of Co.latch * (unit, answer) Effect.Deep.continuation

type worker = {
  wid : int;
  ready : (float * (unit -> unit)) Queue.t;  (* (enqueue ts, continuation) *)
  cpu : Sim.Resource.t;
  mutable running : bool;
  flush_queue : int Queue.t;      (* offloaded S3 writes, in bytes *)
  mutable flush_in_flight : int;
}

type t = {
  des : Sim.Des.t;
  ssd : Ssd.t;
  policy : policy;
  workers : worker array;
  mutable live_tasks : int;
  mutable client_io : int;        (* q_cli: foreground reads on the SSD *)
  mutable switches : int;
  mutable io_issued : int;
  mutable wait_ns : float;        (* cumulative ready-queue wait before dispatch *)
  (* happens-before checker (lib/sanitize); attached at creation when the
     global switch is on *)
  san : Sanitize.Schedsan.t option;
}

let create ~cores ~policy des ssd =
  if cores <= 0 then invalid_arg "Scheduler.create: cores must be positive";
  let clock = Sim.Des.clock des in
  Ssd.attach_des ssd des;
  {
    des;
    ssd;
    policy;
    workers =
      Array.init cores (fun wid ->
          {
            wid;
            ready = Queue.create ();
            cpu = Sim.Resource.create ~name:(Printf.sprintf "cpu%d" wid) clock;
            running = false;
            flush_queue = Queue.create ();
            flush_in_flight = 0;
          });
    live_tasks = 0;
    client_io = 0;
    switches = 0;
    io_issued = 0;
    wait_ns = 0.0;
    san =
      (if Sanitize.Control.is_enabled () then
         Some (Sanitize.Schedsan.create ())
       else None);
  }

let switch_cost t =
  match t.policy with
  | Thread_like { switch_cost; _ }
  | Cooperative { switch_cost }
  | Flush_coroutine { switch_cost; _ } -> switch_cost

let set_client_io t n = t.client_io <- n
let sanitizer t = t.san
let workers t = Array.length t.workers
let switches t = t.switches
let io_issued t = t.io_issued

let q_flush t =
  match t.policy with
  | Flush_coroutine { q_max; _ } -> max 0 (q_max - Ssd.in_flight t.ssd - t.client_io)
  | Thread_like _ | Cooperative _ -> 0

let total_pending_flush t =
  Array.fold_left
    (fun acc w -> acc + Queue.length w.flush_queue + w.flush_in_flight)
    0 t.workers

(* The flush coroutine's admission loop: issue queued S3 writes while the
   paper's q_flush permits. Invoked at every scheduling decision and on
   every I/O completion — the moments the real flush coroutine is woken. *)
let rec pump_flush t w =
  if (not (Queue.is_empty w.flush_queue)) && q_flush t > 0 then begin
    let bytes = Queue.pop w.flush_queue in
    if Obs.Trace.is_enabled () then begin
      Obs.Trace.instant "sched.flush_admit" ~tid:(w.wid + 1) ~attrs:(fun () ->
          [ ("bytes", Obs.Trace.Int bytes); ("q_flush", Obs.Trace.Int (q_flush t)) ]);
      Obs.Trace.counter "sched.q_flush" (float_of_int (q_flush t))
    end;
    w.flush_in_flight <- w.flush_in_flight + 1;
    t.io_issued <- t.io_issued + 1;
    Ssd.submit t.ssd Ssd.Write ~bytes (fun _latency ->
        w.flush_in_flight <- w.flush_in_flight - 1;
        pump_all_flush t);
    pump_flush t w
  end

and pump_all_flush t = Array.iter (fun w -> pump_flush t w) t.workers

(* Give the core to the next ready continuation if the core is free. The
   continuation always resumes through the DES (after the switch cost), so
   runnable units queued at the same instant interleave fairly instead of
   the releasing unit re-dispatching itself synchronously. *)
let dispatch t w =
  pump_flush t w;
  if (not w.running) && not (Queue.is_empty w.ready) then begin
    let queued_at, k = Queue.pop w.ready in
    let wait = Float.max 0.0 (Sim.Clock.now (Sim.Des.clock t.des) -. queued_at) in
    t.wait_ns <- t.wait_ns +. wait;
    Obs.Attr.charge Obs.Attr.Sched_wait wait;
    w.running <- true;
    Sim.Resource.mark_busy w.cpu;
    t.switches <- t.switches + 1;
    if Obs.Trace.is_enabled () then
      Obs.Trace.instant "sched.switch" ~tid:(w.wid + 1) ~attrs:(fun () ->
          [ ("ready", Obs.Trace.Int (Queue.length w.ready)) ]);
    Sim.Des.schedule_after t.des (switch_cost t) k
  end
  else if not w.running then Sim.Resource.mark_idle w.cpu

let release t w =
  w.running <- false;
  Sim.Resource.mark_idle w.cpu;
  dispatch t w

let enqueue t w k =
  Queue.push (Sim.Clock.now (Sim.Des.clock t.des), k) w.ready;
  dispatch t w

let spawn_on ?(name = "task") t w f =
  let clock = Sim.Des.clock t.des in
  let handler : (unit, answer) Effect.Deep.handler =
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Co.Work duration ->
              Some (fun (k : (a, answer) Effect.Deep.continuation) -> Work (duration, k))
          | Co.Io (kind, bytes) -> Some (fun k -> Io (kind, bytes, k))
          | Co.Offload_write bytes -> Some (fun k -> Offload (bytes, k))
          | Co.Yield -> Some (fun k -> Yielded k)
          | Co.Now ->
              (* resumes inline: no suspension, no scheduling decision *)
              Some (fun k -> Effect.Deep.continue k (Sim.Clock.now clock))
          | Co.Await l -> Some (fun k -> Awaiting (l, k))
          | Co.Signal l -> Some (fun k -> Signaled (l, k))
          | _ -> None);
    }
  in
  t.live_tasks <- t.live_tasks + 1;
  (* schedsan bookkeeping: the task is registered at spawn (fork edge from
     whoever is running), and [enter]/[leave] bracket every slice so
     annotated accesses inside the task body attribute to it. *)
  let stask = Option.map (fun s -> Sanitize.Schedsan.on_spawn s ~name) t.san in
  let with_san f = match (t.san, stask) with
    | Some s, Some task -> f s task
    | _ -> ()
  in
  let enter () = with_san (fun s task -> Sanitize.Schedsan.enter s task) in
  let leave () = with_san (fun s task -> Sanitize.Schedsan.leave s task) in
  (* Latency attribution follows the task across suspensions: its live op
     and open frames are detached at the end of every slice and
     reinstalled at the next, so interleaved clients don't mix books. *)
  let actx = ref Obs.Attr.empty_task_ctx in
  let rec step (a : answer) =
    match a with
    | Done ->
        with_san (fun s task -> Sanitize.Schedsan.on_task_done s task);
        t.live_tasks <- t.live_tasks - 1;
        release t w
    | Work (duration, k) -> run_work duration k
    | Io (kind, bytes, k) ->
        (* Synchronous I/O: suspend, submit, wake on completion (threads pay
           an extra OS wakeup delay), and give the core away meanwhile. *)
        submit_io kind bytes (fun latency ->
            wake (fun () -> resume k latency));
        release t w
    | Offload (bytes, k) -> (
        match t.policy with
        | Flush_coroutine _ ->
            Queue.push bytes w.flush_queue;
            pump_flush t w;
            (* Continue immediately: S2 is not clipped by S3. *)
            resume k ()
        | Thread_like _ | Cooperative _ ->
            (* No flush coroutine: degrade to a blocking write. *)
            submit_io Co.Write bytes (fun _latency ->
                wake (fun () -> resume k ()));
            release t w)
    | Yielded k ->
        enqueue t w (fun () -> resume k ());
        release t w
    | Awaiting (l, k) ->
        if l.Co.signaled then begin
          (* already signaled: sticky latches resume immediately, but the
             signal's clock still orders us after the signaler *)
          with_san (fun s task -> Sanitize.Schedsan.acquire s task ~sync:l.Co.lid);
          resume k ()
        end
        else begin
          with_san (fun s task ->
              Sanitize.Schedsan.note_blocked s task l.Co.latch_name);
          l.Co.waiters <-
            (fun () ->
              with_san (fun s task ->
                  Sanitize.Schedsan.note_unblocked s task;
                  Sanitize.Schedsan.acquire s task ~sync:l.Co.lid);
              wake (fun () -> resume k ()))
            :: l.Co.waiters;
          release t w
        end
    | Signaled (l, k) ->
        with_san (fun s task -> Sanitize.Schedsan.release s task ~sync:l.Co.lid);
        l.Co.signaled <- true;
        let ws = l.Co.waiters in
        l.Co.waiters <- [];
        List.iter (fun wakeup -> wakeup ()) ws;
        resume k ()
  and resume : type a. (a, answer) Effect.Deep.continuation -> a -> unit =
   fun k v ->
    enter ();
    Obs.Attr.restore_task !actx;
    let a = Effect.Deep.continue k v in
    actx := Obs.Attr.capture_task ();
    leave ();
    step a
  and submit_io kind bytes completion =
    let kind = match kind with Co.Read -> Ssd.Read | Co.Write -> Ssd.Write in
    t.io_issued <- t.io_issued + 1;
    Ssd.submit t.ssd kind ~bytes (fun latency ->
        completion latency;
        pump_all_flush t)
  and wake k =
    match t.policy with
    | Thread_like { wakeup_delay; _ } when wakeup_delay > 0.0 ->
        Sim.Des.schedule_after t.des wakeup_delay (fun () -> enqueue t w k)
    | _ -> enqueue t w k
  and run_work duration k =
    (* Occupy the core; under the preemptive policy cut long bursts into
       time slices so equal-priority units interleave like OS threads. *)
    match t.policy with
    | Thread_like { time_slice; _ }
      when duration > time_slice && not (Queue.is_empty w.ready) ->
        Sim.Des.schedule_after t.des time_slice (fun () ->
            enqueue t w (fun () -> run_work (duration -. time_slice) k);
            release t w)
    | _ ->
        Sim.Des.schedule_after t.des duration (fun () -> resume k ())
  in
  enqueue t w (fun () ->
      enter ();
      Obs.Attr.restore_task !actx;
      let a = Effect.Deep.match_with f () handler in
      actx := Obs.Attr.capture_task ();
      leave ();
      step a)

let spawn ?name t i f = spawn_on ?name t t.workers.(i mod Array.length t.workers) f

(* Run everything to completion; returns the simulated makespan. *)
let run_to_completion t =
  let clock = Sim.Des.clock t.des in
  let t0 = Sim.Clock.now clock in
  Sim.Des.run t.des;
  (* Settle flush stragglers that q_flush throttled on behalf of client I/O:
     with the DES drained nothing else can move, so admit them directly. *)
  while total_pending_flush t > 0 do
    Array.iter
      (fun w ->
        while not (Queue.is_empty w.flush_queue) do
          let bytes = Queue.pop w.flush_queue in
          w.flush_in_flight <- w.flush_in_flight + 1;
          t.io_issued <- t.io_issued + 1;
          Ssd.submit t.ssd Ssd.Write ~bytes (fun _ ->
              w.flush_in_flight <- w.flush_in_flight - 1)
        done)
      t.workers;
    Sim.Des.run t.des
  done;
  (* the scheduler just ran dry: any task still parked on a latch will
     never be woken *)
  (match t.san with Some s -> Sanitize.Schedsan.on_run_end s | None -> ());
  Sim.Clock.now clock -. t0

(* Stable dotted metric names; q_flush reads the live admission headroom,
   so a sampler can reproduce the paper's flush-admission curves. *)
let register_metrics reg ?(prefix = "sched") t =
  let name suffix = prefix ^ "." ^ suffix in
  let open Obs.Registry in
  register_int reg (name "cores") ~kind:Gauge ~help:"simulated cores (workers)"
    (fun () -> Array.length t.workers);
  register_int reg (name "switches") ~help:"context/coroutine switches" (fun () ->
      t.switches);
  register_int reg (name "io_issued") ~help:"I/O requests submitted to the SSD"
    (fun () -> t.io_issued);
  register_int reg (name "live_tasks") ~kind:Gauge ~help:"spawned tasks not yet done"
    (fun () -> t.live_tasks);
  register_int reg (name "client_io") ~kind:Gauge
    ~help:"foreground reads outstanding on the SSD (q_cli)" (fun () -> t.client_io);
  register_int reg (name "q_flush") ~kind:Gauge
    ~help:"flush-coroutine admission headroom (q_max - q_comp - q_cli)" (fun () ->
      q_flush t);
  register_int reg (name "pending_flush") ~kind:Gauge
    ~help:"offloaded S3 writes queued or in flight" (fun () -> total_pending_flush t);
  register_float reg (name "wait_ns") ~kind:Counter
    ~help:"cumulative simulated ns continuations waited in ready queues" (fun () ->
      t.wait_ns);
  match t.san with
  | Some s -> Sanitize.Schedsan.register_metrics s reg
  | None -> ()

type report = {
  makespan : float;
  cpu_utilization : float;  (* mean across workers *)
  cpu_idleness : float;
  io_utilization : float;
  io_idleness : float;
  io_mean_latency : float;
  io_requests : int;
  switches : int;
}

let report t ~makespan =
  let cpu_util =
    let sum =
      Array.fold_left (fun acc w -> acc +. Sim.Resource.busy_time w.cpu) 0.0 t.workers
    in
    if makespan <= 0.0 then 0.0
    else sum /. (makespan *. float_of_int (Array.length t.workers))
  in
  let io_busy = Sim.Resource.busy_time (Ssd.busy_tracker t.ssd) in
  let io_util = if makespan <= 0.0 then 0.0 else Float.min 1.0 (io_busy /. makespan) in
  let stats = Ssd.stats t.ssd in
  {
    makespan;
    cpu_utilization = cpu_util;
    cpu_idleness = 1.0 -. cpu_util;
    io_utilization = io_util;
    io_idleness = 1.0 -. io_util;
    io_mean_latency = Util.Histogram.mean stats.request_latency;
    io_requests = Util.Histogram.count stats.request_latency;
    switches = t.switches;
  }

(** Scheduling of compaction coroutines over simulated cores and the SSD
    (paper §V).

    Three policies matching the experiment configurations of §VI-C:
    [Thread_like] (preemptive, synchronous I/O, OS-scale switch/wakeup
    costs), [Cooperative] (basic coroutines: switch on I/O wait), and
    [Flush_coroutine] (the paper's method: a per-worker flush coroutine owns
    every S3 write, admitted under [q_flush = q_max - q_comp - q_cli]). *)

type policy =
  | Thread_like of { time_slice : float; switch_cost : float; wakeup_delay : float }
  | Cooperative of { switch_cost : float }
  | Flush_coroutine of { switch_cost : float; q_max : int }

val default_thread_like : policy
val default_cooperative : policy
val default_flush_coroutine : ?q_max:int -> unit -> policy

type t

val create : cores:int -> policy:policy -> Sim.Des.t -> Ssd.t -> t
(** Attaches the DES to the SSD's async interface. *)

val spawn : ?name:string -> t -> int -> (unit -> unit) -> unit
(** [spawn t i f] pins coroutine [f] to worker [i mod cores]. [f] may use
    the {!Co} effects. [name] labels the task in sanitizer reports. *)

val set_client_io : t -> int -> unit
(** Set q_cli, the count of foreground reads concurrently using the SSD. *)

val run_to_completion : t -> float
(** Drive the DES until all coroutines and flush queues drain; returns the
    simulated makespan. Declares end-of-run to the sanitizer, which then
    reports tasks still parked on a latch as lost wakeups. *)

val sanitizer : t -> Sanitize.Schedsan.t option
(** The happens-before checker attached at creation (when
    [Sanitize.Control] was enabled); [None] otherwise. *)

val q_flush : t -> int
(** Current admission budget of the flush coroutines (0 under other
    policies); exposed for tests. *)

val workers : t -> int

val register_metrics : Obs.Registry.t -> ?prefix:string -> t -> unit
(** Register scheduler counters and gauges (switches, io_issued, live
    q_flush headroom, pending flush bytes, ...) under [prefix] (default
    ["sched"]) dotted names. *)

val switches : t -> int
val io_issued : t -> int

type report = {
  makespan : float;
  cpu_utilization : float;
  cpu_idleness : float;
  io_utilization : float;
  io_idleness : float;
  io_mean_latency : float;
  io_requests : int;
  switches : int;
}

val report : t -> makespan:float -> report

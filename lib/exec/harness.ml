(* Measurement harness for the scheduling experiments.

   Builds a fresh virtual clock + DES + SSD, spawns compaction (sub)tasks
   under the requested policy, runs to completion, and reports makespan,
   CPU/I-O utilisation and idleness, and mean I/O latency — the columns of
   Table III and the series of Fig. 9. *)

type mode = Thread | Basic_coroutine | Pmblade

type config = {
  mode : mode;
  cores : int;
  tasks : int;          (* logical compaction tasks *)
  q_max : int;          (* user cap on concurrent I/O (the paper's q) *)
  ssd_params : Ssd.params;
  task_params : Task.params;
}

let default =
  {
    mode = Thread;
    cores = 1;
    tasks = 1;
    q_max = 4;
    ssd_params = Ssd.default_params;
    task_params = Task.default;
  }

let policy_of config =
  match config.mode with
  | Thread -> Coroutine.Scheduler.default_thread_like
  | Basic_coroutine -> Coroutine.Scheduler.default_cooperative
  | Pmblade -> Coroutine.Scheduler.default_flush_coroutine ~q_max:config.q_max ()

(* The compaction task manager of §V-C: under coroutine modes each logical
   task is split into k = max(q/c, 1) coroutine subtasks per worker-sized
   share; under threads, one unit per task. *)
let subtask_count config =
  match config.mode with
  | Thread -> config.tasks
  | Basic_coroutine | Pmblade ->
      let k = max (config.q_max / config.cores) 1 in
      max config.tasks (k * config.cores)

let run ?(inspect = fun (_ : Coroutine.Scheduler.t) -> ()) config =
  let clock = Sim.Clock.create () in
  let des = Sim.Des.create clock in
  let ssd = Ssd.create ~params:config.ssd_params clock in
  let sched = Coroutine.Scheduler.create ~cores:config.cores ~policy:(policy_of config) des ssd in
  let units = subtask_count config in
  let per_unit = config.task_params.input_bytes * config.tasks / units in
  for i = 0 to units - 1 do
    let params =
      {
        config.task_params with
        input_bytes = per_unit;
        offload_s3 = (config.mode = Pmblade);
        seed = config.task_params.seed + (31 * i);
      }
    in
    Coroutine.Scheduler.spawn
      ~name:(Printf.sprintf "compaction-%d" i)
      sched i (Task.compaction params)
  done;
  let makespan = Coroutine.Scheduler.run_to_completion sched in
  (* post-run hook: the CLI's sanitize subcommand reads the scheduler's
     sanitizer findings here before the scheduler is dropped *)
  inspect sched;
  Coroutine.Scheduler.report sched ~makespan

(** Measurement harness for the scheduling experiments (Table III, Fig. 9):
    fresh clock + DES + SSD per run, compaction subtasks under the requested
    policy, and a utilisation/latency report. *)

type mode = Thread | Basic_coroutine | Pmblade

type config = {
  mode : mode;
  cores : int;
  tasks : int;
  q_max : int;
  ssd_params : Ssd.params;
  task_params : Task.params;
}

val default : config

val subtask_count : config -> int
(** §V-C's task manager: k = max(q/c, 1) coroutine subtasks per core under
    coroutine modes, one unit per task under threads. *)

val run : ?inspect:(Coroutine.Scheduler.t -> unit) -> config -> Coroutine.Scheduler.report
(** [inspect] (default no-op) sees the scheduler after the run completes,
    e.g. to read its sanitizer findings before it is dropped. *)

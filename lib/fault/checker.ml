(* The invariant checker: interrogates a freshly-recovered engine against
   the golden model. Violations are collected, not raised, so one run
   reports everything it broke. *)

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.invariant v.detail

let max_key_sentinel = "\xff\xff\xff\xff\xff\xff\xff\xff"

(* A store under check, as closures: the single engine or the sharded
   router both satisfy it, so every golden-model invariant below applies
   unchanged to the router's merged cross-shard view. *)
type view = {
  v_scan_all : unit -> (string * string) list;
  v_get : string -> string option;
  v_iter_all : unit -> (string * string) list;
}

let view_of_engine engine =
  {
    v_scan_all =
      (fun () -> Core.Engine.scan_range engine ~start:"" ~stop:max_key_sentinel);
    v_get = (fun key -> Core.Engine.get engine key);
    v_iter_all =
      (fun () ->
        Core.Iterator.fold engine ~start:"" ~init:[] (fun acc k v -> (k, v) :: acc)
        |> List.rev);
  }

let check_view golden view =
  let violations = ref [] in
  let fail invariant detail =
    violations := { invariant; detail } :: !violations
  in
  (* One full-range scan: the recovered store's live view. *)
  let visible = Hashtbl.create 256 in
  List.iter
    (fun (k, v) ->
      if Hashtbl.mem visible k then
        fail "scan" (Fmt.str "key %S returned twice by full scan" k);
      Hashtbl.replace visible k v)
    (view.v_scan_all ());
  let pending = Golden.pending golden in
  let pending_key =
    match pending with Some (o : Golden.op) -> Some o.key | None -> None
  in
  (* Durability: every acknowledged op survived exactly; tombstones do not
     resurrect. The key of the op in flight at the crash is judged by the
     atomicity clause below instead. *)
  List.iter
    (fun (key, expect) ->
      if pending_key <> Some key then
        match (expect, Hashtbl.find_opt visible key) with
        | Some v, Some v' when String.equal v v' -> ()
        | Some v, Some v' ->
            fail "durability"
              (Fmt.str "key %S: acked value %S but recovered %S" key v v')
        | Some v, None ->
            fail "durability" (Fmt.str "acked write lost: %S -> %S" key v)
        | None, Some v' ->
            fail "no-resurrection"
              (Fmt.str "deleted key %S came back with %S" key v')
        | None, None -> ())
    (Golden.entries golden);
  (* Atomicity: the unacknowledged op is either fully applied or fully
     absent — no third state. *)
  (match pending with
  | None -> ()
  | Some { key; value = after } ->
      let before =
        match Golden.acked golden key with Some v -> v | None -> None
      in
      let got = Hashtbl.find_opt visible key in
      if got <> before && got <> after then
        fail "atomicity"
          (Fmt.str
             "pending op on %S half-visible: recovered %a, expected %a or %a"
             key
             Fmt.(Dump.option Dump.string)
             got
             Fmt.(Dump.option Dump.string)
             before
             Fmt.(Dump.option Dump.string)
             after));
  (* No phantoms: the engine shows nothing the model never wrote. *)
  Hashtbl.iter
    (fun key _ ->
      let known =
        Option.is_some (Golden.acked golden key) || pending_key = Some key
      in
      if not known then
        fail "phantom" (Fmt.str "key %S visible but never written" key))
    visible;
  (* Point reads agree with the scan (the two paths differ internally). *)
  List.iter
    (fun (key, _) ->
      if pending_key <> Some key then
        let via_scan = Hashtbl.find_opt visible key in
        let via_get = view.v_get key in
        if via_scan <> via_get then
          fail "scan-get-agreement"
            (Fmt.str "key %S: scan %a, get %a" key
               Fmt.(Dump.option Dump.string)
               via_scan
               Fmt.(Dump.option Dump.string)
               via_get))
    (Golden.entries golden);
  (* The iterator walks the same consistent view. *)
  let via_iter = view.v_iter_all () in
  if List.length via_iter <> Hashtbl.length visible then
    fail "iterator"
      (Fmt.str "iterator returned %d pairs, scan %d" (List.length via_iter)
         (Hashtbl.length visible))
  else
    List.iter
      (fun (k, v) ->
        match Hashtbl.find_opt visible k with
        | Some v' when String.equal v v' -> ()
        | _ -> fail "iterator" (Fmt.str "iterator pair %S disagrees with scan" k))
      via_iter;
  List.rev !violations

(* Structural agreement: everything the manifest names exists on the
   devices (recovery itself would have failed on a missing piece, but a
   re-load guards against the manifest drifting after recovery). *)
let check_manifest engine =
  let violations = ref [] in
  let fail invariant detail = violations := { invariant; detail } :: !violations in
  let root = (Core.Engine.config engine).Core.Config.manifest_root in
  (match Core.Manifest.load ~root (Core.Engine.ssd engine) with
  | None -> fail "manifest" "no manifest on the device after recovery"
  | Some state ->
      let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
      let check_region id =
        match Pmem.find_region pm id with
        | Some _ -> ()
        | None ->
            fail "manifest" (Fmt.str "manifest names missing PM region %d" id)
      in
      let check_file id =
        match Ssd.find_file ssd id with
        | Some _ -> ()
        | None ->
            fail "manifest" (Fmt.str "manifest names missing SSD file %d" id)
      in
      List.iter
        (fun (p : Core.Manifest.partition_state) ->
          List.iter
            (fun (r : Core.Manifest.row) -> check_region r.region_id)
            p.unsorted;
          List.iter check_region p.sorted_run;
          List.iter check_file p.ssd_l0;
          List.iter (List.iter check_file) p.levels)
        state.partitions;
      Option.iter check_file state.wal_file_id);
  List.rev !violations

let check golden engine =
  check_view golden (view_of_engine engine) @ check_manifest engine

(* The corruption invariant: after injected bit rot, an engine may degrade
   — typed errors, damage records, skipped WAL records — but it must never
   crash on a read and never return a silently wrong answer. A mismatch is
   excused only when the engine *told* someone: the key lies in a recorded
   lost range, or the caller passes [excuse_lost] because a coarser
   detection signal (WAL corruption count, manifest fallback) already
   covers the whole history. *)
let check_corruption ?(excuse_lost = false) golden engine =
  let violations = ref [] in
  let fail invariant detail = violations := { invariant; detail } :: !violations in
  let pending_key =
    match Golden.pending golden with Some (o : Golden.op) -> Some o.key | None -> None
  in
  List.iter
    (fun (key, expect) ->
      if pending_key <> Some key then
        match Core.Engine.get_checked engine key with
        | exception e ->
            fail "no-crash"
              (Fmt.str "get %S raised %s under corruption" key (Printexc.to_string e))
        | Error _ -> () (* degradation reported through the typed error *)
        | Ok got ->
            let matches =
              match (expect, got) with
              | Some v, Some v' -> String.equal v v'
              | None, None -> true
              | _ -> false
            in
            if (not matches) && not (excuse_lost || Core.Engine.damaged_key engine key)
            then
              fail "silent-wrong-answer"
                (Fmt.str
                   "key %S: expected %a, got %a with no damage record covering it" key
                   Fmt.(Dump.option Dump.string)
                   expect
                   Fmt.(Dump.option Dump.string)
                   got))
    (Golden.entries golden);
  (* Scans must degrade the same way: typed error or clean result, no
     crash. *)
  (match Core.Engine.scan_range_checked engine ~start:"" ~stop:max_key_sentinel with
  | Ok _ | Error _ -> ()
  | exception e ->
      fail "no-crash"
        (Fmt.str "full-range scan raised %s under corruption" (Printexc.to_string e)));
  List.rev !violations

(** Post-recovery invariant checker.

    Run against a freshly-recovered engine and the {!Golden} model of the
    acknowledged history. Checks, in order: every acknowledged write is
    visible with its exact value and no tombstone resurrects (durability);
    the single op in flight at the crash is all-or-nothing (atomicity); the
    engine shows no key the model never wrote (phantoms); point gets agree
    with the full-range scan; the iterator walks the same view; and
    everything the manifest names exists on the devices. *)

type violation = { invariant : string; detail : string }

val pp_violation : violation Fmt.t

val check : Golden.t -> Core.Engine.t -> violation list
(** Empty list = all invariants hold. The engine is read (scans, gets,
    iterator) but not modified. *)

(** A store under check, as closures — the single engine and the sharded
    router both satisfy it, so the golden-model invariants apply unchanged
    to a merged cross-shard view. *)
type view = {
  v_scan_all : unit -> (string * string) list;  (** full-range scan *)
  v_get : string -> string option;  (** point lookup *)
  v_iter_all : unit -> (string * string) list;  (** full iterator walk *)
}

val view_of_engine : Core.Engine.t -> view

val check_view : Golden.t -> view -> violation list
(** The golden-model invariants of {!check} (durability, atomicity,
    phantoms, scan/get agreement, iterator agreement) without the
    engine-specific manifest structural check. *)

val check_manifest : Core.Engine.t -> violation list
(** The structural check alone: everything the engine's manifest (under
    its [manifest_root] slot) names exists on the devices. *)

val check_corruption : ?excuse_lost:bool -> Golden.t -> Core.Engine.t -> violation list
(** The corruption invariant: no read crashes, and no silently wrong
    answer — a mismatch against the golden history is excused only when
    the key lies in a recorded lost range ({!Core.Engine.damaged_key}), a
    typed degradation error was returned, or [excuse_lost] says a coarser
    detection signal (WAL corruption count, manifest fallback) already
    covers the history. May quarantine structures as a side effect of the
    probing reads. *)

(* The corruption sweep: systematic bit-rot exploration.

   Each point runs the seeded workload into a fresh engine, stages the
   store so the target structure exists (flush for PM tables, major
   compaction for SSTables, a manifest persist for the superblock), then
   injects one seeded corruption and demands the stack answers for it:

   - PM table / SSTable points scrub live: the damage must show up in the
     scrub report (else "undetected-corruption"), and after the salvage
     every surviving read must be exact, typed-degraded, or covered by a
     recorded lost range — never silently wrong, never a crash.
   - WAL / manifest points verify live (the scrubber walks the log and
     trial-loads the manifest), then pull the plug and recover: recovery
     must survive the rot — skipping and counting bad WAL records, falling
     back to the previous manifest slot — and the recovered engine is held
     to the same no-crash / no-silent-wrong-answer bar, with staleness
     excused because the coarse detection signal covers the whole history.

   Determinism end to end: the same seed picks the same victim bytes, so a
   failing point replays exactly. *)

type config = {
  seed : int;
  ops : int;
  keyspace : int;
  value_len : int;
  points : int;
  engine_config : Core.Config.t;
}

let config ?(seed = 42) ?(ops = 300) ?(keyspace = 64) ?(value_len = 24)
    ?(points = 8) engine_config =
  if not engine_config.Core.Config.durable then
    invalid_arg "Corruption_sweep.config: engine config must be durable";
  { seed; ops; keyspace; value_len; points; engine_config }

type point = {
  index : int;
  target : Plan.corruption_target;
  mode : Plan.corruption_mode;
  victim : string option;
      (* None: no eligible victim existed and the point was skipped *)
  detected : bool;
  recovered : bool;
  violations : Checker.violation list;
}

type report = {
  points : point list;
  skipped : int;
  stats : Plan.stats;
}

let violation_count r =
  List.fold_left (fun n p -> n + List.length p.violations) 0 r.points

let clean r =
  violation_count r = 0 && List.for_all (fun p -> p.recovered) r.points

let target_name = function
  | Plan.Pm_table_bytes -> "pm-table"
  | Plan.Sstable_bytes -> "sstable"
  | Plan.Wal_bytes -> "wal"
  | Plan.Manifest_bytes -> "manifest"

let mode_name = function
  | Plan.Bit_flip -> "bit-flip"
  | Plan.Zero_range n -> Printf.sprintf "zero-%dB" n

(* The same seeded workload as the crash sweep, mirrored into the golden
   model; no tail flush here — each point stages the store for its own
   target afterwards. *)
let run_workload cfg golden engine =
  let rng = Util.Xoshiro.create (cfg.seed lxor 0x9E3779B9) in
  for i = 0 to cfg.ops - 1 do
    let key = Printf.sprintf "user%06d" (Util.Xoshiro.int rng cfg.keyspace) in
    if Util.Xoshiro.int rng 10 < 8 then begin
      let value = Printf.sprintf "%d:%s" i (Util.Xoshiro.string rng cfg.value_len) in
      Golden.begin_put golden ~key value;
      Core.Engine.put ~update:true engine ~key value;
      Golden.ack golden
    end
    else begin
      Golden.begin_delete golden key;
      Core.Engine.delete engine key;
      Golden.ack golden
    end
  done

let fresh_engine cfg =
  let engine = Core.Engine.create cfg.engine_config in
  Pmem.enable_crash_mode (Core.Engine.pm engine);
  Ssd.enable_crash_mode (Core.Engine.ssd engine);
  engine

(* Stage the store so the target structure holds the workload's data. *)
let stage engine = function
  | Plan.Pm_table_bytes ->
      Core.Engine.flush engine;
      Core.Engine.force_internal_compaction engine
  | Plan.Sstable_bytes ->
      Core.Engine.flush engine;
      Core.Engine.force_major_compaction engine
  | Plan.Wal_bytes -> () (* the durable log holds every acked op *)
  | Plan.Manifest_bytes ->
      (* the flush persists a manifest, so both superblock slots exist *)
      Core.Engine.flush engine

let detected_in (scrub : Core.Scrubber.report) = function
  | Plan.Pm_table_bytes -> scrub.engine.Core.Engine.corrupt_pm_tables > 0
  | Plan.Sstable_bytes -> scrub.engine.Core.Engine.corrupt_sstables > 0
  | Plan.Wal_bytes -> (
      match scrub.wal with
      | Some s -> s.Core.Wal.corrupt_records > 0 || s.Core.Wal.torn_tail
      | None -> false)
  | Plan.Manifest_bytes -> scrub.manifest_rotted

let run_point ?stats (cfg : config) index =
  let target =
    [| Plan.Pm_table_bytes; Sstable_bytes; Wal_bytes; Manifest_bytes |].(index mod 4)
  in
  let mode = if index / 4 mod 2 = 0 then Plan.Bit_flip else Plan.Zero_range 16 in
  let engine = fresh_engine cfg in
  let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
  let golden = Golden.create () in
  run_workload cfg golden engine;
  stage engine target;
  let plan = Plan.create ?stats (cfg.seed + (7919 * index)) in
  match
    Plan.inject_corruption plan ~pm ~ssd ?wal:(Core.Engine.wal engine) ~target
      ~mode ()
  with
  | None ->
      {
        index;
        target;
        mode;
        victim = None;
        detected = false;
        recovered = true;
        violations = [];
      }
  | Some c ->
      (* Live pass first: the scrubber must see the damage on every leg. *)
      let scrub = Core.Scrubber.run engine in
      let undetected =
        if detected_in scrub target then []
        else
          [
            {
              Checker.invariant = "undetected-corruption";
              detail =
                Printf.sprintf "%s %s at %s passed the scrub unnoticed"
                  (mode_name mode) (target_name target) c.Plan.victim;
            };
          ]
      in
      let recovered, violations =
        match target with
        | Plan.Pm_table_bytes | Plan.Sstable_bytes ->
            (* the scrub already salvaged; the live engine must now serve
               only exact, degraded, or recorded-lost answers *)
            (true, Checker.check_corruption golden engine)
        | Plan.Wal_bytes | Plan.Manifest_bytes -> (
            Pmem.crash pm;
            Ssd.crash ~keep:(fun ~file_id:_ ~durable:_ ~size:_ -> 0) ssd;
            match Core.Engine.recover cfg.engine_config ~pm ~ssd with
            | fresh ->
                (match stats with
                | Some s -> s.Plan.recoveries <- s.Plan.recoveries + 1
                | None -> ());
                (* stale answers are excused: the WAL corruption count /
                   manifest fallback already reported the loss *)
                (true, Checker.check_corruption ~excuse_lost:true golden fresh)
            | exception Failure msg ->
                ( false,
                  [
                    {
                      Checker.invariant = "recovery";
                      detail =
                        Printf.sprintf "recovery died on corrupted %s: %s"
                          (target_name target) msg;
                    };
                  ] ))
      in
      {
        index;
        target;
        mode;
        victim = Some c.Plan.victim;
        detected = undetected = [];
        recovered;
        (* every leg runs sanitized: ordering findings count as violations
           here too (see Crash_sweep.sanitizer_violations) *)
        violations =
          undetected @ violations @ Crash_sweep.sanitizer_violations pm;
      }

let sweep ?stats ?progress (cfg : config) =
  let stats = match stats with Some s -> s | None -> Plan.make_stats () in
  let points =
    List.init cfg.points (fun i ->
        let p = run_point ~stats cfg i in
        (match progress with Some f -> f p | None -> ());
        if Obs.Trace.is_enabled () then begin
          Obs.Trace.instant "corruption_sweep.point" ~attrs:(fun () ->
              [
                ("index", Obs.Trace.Int p.index);
                ("target", Obs.Trace.Str (target_name p.target));
                ("detected", Obs.Trace.Bool p.detected);
                ("violations", Obs.Trace.Int (List.length p.violations));
              ]);
          (* Durable prefix per completed leg (see Crash_sweep.sweep). *)
          Obs.Trace.flush ()
        end;
        p)
  in
  let skipped = List.length (List.filter (fun p -> p.victim = None) points) in
  { points; skipped; stats }

let pp_point ppf p =
  Fmt.pf ppf "point %d: %s %s -> %a" p.index (mode_name p.mode)
    (target_name p.target)
    Fmt.(Dump.option string)
    p.victim

let pp_report ppf r =
  let bad = List.filter (fun p -> p.violations <> []) r.points in
  Fmt.pf ppf "@[<v>corruption sweep: %d point(s), %d skipped (no victim)@,"
    (List.length r.points) r.skipped;
  Fmt.pf ppf "detected: %d/%d  injected: %d@,"
    (List.length (List.filter (fun p -> p.detected && p.victim <> None) r.points))
    (List.length (List.filter (fun p -> p.victim <> None) r.points))
    r.stats.Plan.injected;
  if bad = [] then Fmt.pf ppf "invariant violations: none@]"
  else begin
    Fmt.pf ppf "invariant violations: %d point(s)@," (List.length bad);
    List.iter
      (fun p ->
        Fmt.pf ppf "  %a:@," pp_point p;
        List.iter (fun v -> Fmt.pf ppf "    %a@," Checker.pp_violation v) p.violations)
      bad;
    Fmt.pf ppf "@]"
  end

(** Systematic bit-rot exploration.

    Each point runs the seeded workload into a fresh engine, stages the
    store so the target structure exists, injects one seeded corruption
    ({!Plan.inject_corruption}) cycling over the four targets and both
    damage modes, and demands the stack answers for it. PM-table and
    SSTable points are scrubbed live: the damage must appear in the scrub
    report and the salvaged engine must serve only exact, typed-degraded,
    or recorded-lost answers. WAL and manifest points additionally pull
    the plug and recover: recovery must survive — skipping and counting
    corrupt WAL records, falling back to the previous manifest slot — and
    the recovered engine is held to the same no-crash /
    no-silent-wrong-answer bar ({!Checker.check_corruption}).

    Same seed, same config -> the same victim bytes, the same failure. *)

type config = {
  seed : int;
  ops : int;
  keyspace : int;
  value_len : int;
  points : int;
  engine_config : Core.Config.t;
}

val config :
  ?seed:int ->
  ?ops:int ->
  ?keyspace:int ->
  ?value_len:int ->
  ?points:int ->
  Core.Config.t ->
  config
(** Defaults: seed 42, 300 ops over 64 keys, 24-byte values, 8 points
    (each target hit by both a bit flip and a zeroed range). Raises
    [Invalid_argument] unless the engine config is durable. *)

type point = {
  index : int;
  target : Plan.corruption_target;
  mode : Plan.corruption_mode;
  victim : string option;
      (** [None]: no eligible victim existed and the point was skipped *)
  detected : bool;  (** the live scrub saw the damage *)
  recovered : bool;  (** recovery survived (always true on live-only legs) *)
  violations : Checker.violation list;
}

type report = { points : point list; skipped : int; stats : Plan.stats }

val violation_count : report -> int

val clean : report -> bool
(** Every injected corruption was detected and every point recovered with
    zero violations. *)

val run_point : ?stats:Plan.stats -> config -> int -> point

val sweep : ?stats:Plan.stats -> ?progress:(point -> unit) -> config -> report
(** [progress] fires after each point (CLI live output). *)

val pp_point : point Fmt.t
val pp_report : report Fmt.t

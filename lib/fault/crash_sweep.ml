(* The crash sweep: systematic crash-consistency exploration.

   One clean counting run measures how many times the seeded workload
   reaches an injection site; the sweep then replays the identical
   workload once per chosen crash point, cutting execution at exactly that
   site, crashing both devices (with a seeded torn SSD tail), recovering,
   and running the invariant checker against the golden model. Determinism
   end to end: same seed, same config -> same site sequence -> the same
   crash point is the same crash, every time. *)

type config = {
  seed : int;
  ops : int;
  keyspace : int;
  value_len : int;
  rules : (string * Plan.trigger * Plan.action) list;
      (* injected on every sweep run (not the counting run) — this is how a
         test plants a durability bug and proves the sweep catches it *)
  double_crash : bool;
      (* arm a second seeded crash schedule over the recovery path itself:
         legs whose recovery trips it crash again mid-recovery and recover
         from the doubly-crashed image, proving recovery is idempotent *)
  engine_config : Core.Config.t;
}

let config ?(seed = 42) ?(ops = 300) ?(keyspace = 64) ?(value_len = 24)
    ?(rules = []) ?(double_crash = true) engine_config =
  if not engine_config.Core.Config.durable then
    invalid_arg "Crash_sweep.config: engine config must be durable";
  { seed; ops; keyspace; value_len; rules; double_crash; engine_config }

type point = {
  crash_at : int;
  crash_site : string option;
      (* None: the workload completed before reaching the point *)
  recovered : bool;
  violations : Checker.violation list;
}

type report = {
  total_sites : int;
  points : point list;
  stats : Plan.stats;
}

let violation_count r =
  List.fold_left (fun n p -> n + List.length p.violations) 0 r.points

let clean r = violation_count r = 0 && List.for_all (fun p -> p.recovered) r.points

(* The seeded workload, mirrored into the golden model op by op. The tail
   flush + internal compaction pull the PM sites (table builds, run
   merges) into every run's site schedule. *)
let run_workload cfg golden engine =
  let rng = Util.Xoshiro.create (cfg.seed lxor 0x9E3779B9) in
  try
    for i = 0 to cfg.ops - 1 do
      let key = Printf.sprintf "user%06d" (Util.Xoshiro.int rng cfg.keyspace) in
      if Util.Xoshiro.int rng 10 < 8 then begin
        let value = Printf.sprintf "%d:%s" i (Util.Xoshiro.string rng cfg.value_len) in
        Golden.begin_put golden ~key value;
        Core.Engine.put ~update:true engine ~key value;
        Golden.ack golden
      end
      else begin
        Golden.begin_delete golden key;
        Core.Engine.delete engine key;
        Golden.ack golden
      end
    done;
    Core.Engine.flush engine;
    Core.Engine.force_internal_compaction engine;
    `Completed
  with Plan.Crashed { site; hit } -> `Crashed (site, hit)

(* A fresh simulated machine per run: devices in crash mode from the first
   write on (the engine's initial manifest is sealed, hence durable, before
   any workload op). *)
let fresh_engine cfg =
  let engine = Core.Engine.create cfg.engine_config in
  Pmem.enable_crash_mode (Core.Engine.pm engine);
  Ssd.enable_crash_mode (Core.Engine.ssd engine);
  engine

let count_sites cfg =
  let engine = fresh_engine cfg in
  let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
  let plan = Plan.create ~counting:true cfg.seed in
  Plan.arm plan ~pm ~ssd ?wal:(Core.Engine.wal engine) ();
  let golden = Golden.create () in
  (match run_workload cfg golden engine with
  | `Completed -> ()
  | `Crashed _ -> assert false (* counting plans never act *));
  Plan.disarm ~pm ~ssd ?wal:(Core.Engine.wal engine) ();
  Plan.global_hits plan

(* Each leg runs sanitized (the engine's PM device carries a pmsan shadow
   checker unless the config opted out): persistence-ordering findings
   from the pre-crash workload or the recovery path count as violations,
   so the sweep fails on ordering bugs even when the crash point happened
   to leave the data intact. *)
let sanitizer_violations pm =
  match Pmem.sanitizer pm with
  | None -> []
  | Some san ->
      List.map
        (fun f ->
          { Checker.invariant = "sanitizer";
            detail = Sanitize.Pmsan.finding_to_string f })
        (Sanitize.Pmsan.findings san)

(* Recover once; when [double_crash] is on, a second seeded schedule is
   armed over the recovery path itself. A leg whose recovery trips it is
   cut mid-recovery, both devices crash again (resurrecting whatever the
   half-finished recovery freed), and recovery reruns from the
   doubly-crashed image — so every orphan-GC, WAL-replay, and
   manifest-repair step must be idempotent. Raises [Failure] like
   [Engine.recover] when even the final attempt cannot rebuild. *)
let recover_double ?stats cfg ~pm ~ssd n =
  if not cfg.double_crash then Core.Engine.recover cfg.engine_config ~pm ~ssd
  else begin
    let rng = Util.Xoshiro.create (cfg.seed lxor (0x2CC + (31 * n))) in
    let plan2 = Plan.create ?stats ~crash_at:(1 + Util.Xoshiro.int rng 12) (cfg.seed + n) in
    Plan.arm plan2 ~pm ~ssd ();
    match Core.Engine.recover cfg.engine_config ~pm ~ssd with
    | t ->
        Plan.disarm ~pm ~ssd ();
        t
    | exception Plan.Crashed _ ->
        Plan.disarm ~pm ~ssd ();
        Pmem.crash pm;
        let keep_rng = Util.Xoshiro.create (cfg.seed + (104729 * n)) in
        Ssd.crash
          ~keep:(fun ~file_id:_ ~durable:_ ~size:_ -> Util.Xoshiro.int keep_rng 4096)
          ssd;
        Core.Engine.recover cfg.engine_config ~pm ~ssd
    | exception e ->
        Plan.disarm ~pm ~ssd ();
        raise e
  end

let run_crash_at ?stats cfg n =
  let engine = fresh_engine cfg in
  let pm = Core.Engine.pm engine and ssd = Core.Engine.ssd engine in
  let plan = Plan.create ?stats ~crash_at:n cfg.seed in
  List.iter
    (fun (site, trigger, action) -> Plan.add_rule plan ~site ~trigger action)
    cfg.rules;
  Plan.arm plan ~pm ~ssd ?wal:(Core.Engine.wal engine) ();
  let golden = Golden.create () in
  let result = run_workload cfg golden engine in
  Plan.disarm ~pm ~ssd ?wal:(Core.Engine.wal engine) ();
  let crash_site =
    match result with
    | `Crashed (site, _) -> Some site
    | `Completed ->
        (* the point lies beyond the run: pull the plug at the end *)
        (Plan.stats plan).Plan.crashes <- (Plan.stats plan).Plan.crashes + 1;
        None
  in
  Pmem.crash pm;
  let keep_rng = Util.Xoshiro.create (cfg.seed + (7919 * n)) in
  Ssd.crash
    ~keep:(fun ~file_id:_ ~durable:_ ~size:_ -> Util.Xoshiro.int keep_rng 4096)
    ssd;
  match recover_double ?stats cfg ~pm ~ssd n with
  | recovered ->
      (Plan.stats plan).Plan.recoveries <-
        (Plan.stats plan).Plan.recoveries + 1;
      let violations = Checker.check golden recovered @ sanitizer_violations pm in
      { crash_at = n; crash_site; recovered = true; violations }
  | exception Failure msg ->
      {
        crash_at = n;
        crash_site;
        recovered = false;
        violations =
          { Checker.invariant = "recovery"; detail = msg }
          :: sanitizer_violations pm;
      }

type selection = All | Sample of int

let select cfg selection total =
  match selection with
  | All -> List.init total (fun i -> i + 1)
  | Sample k when k >= total -> List.init total (fun i -> i + 1)
  | Sample k ->
      let arr = Array.init total (fun i -> i + 1) in
      Util.Xoshiro.shuffle (Util.Xoshiro.create ((cfg.seed * 31) + 17)) arr;
      Array.to_list (Array.sub arr 0 k) |> List.sort compare

let sweep ?(selection = All) ?stats ?progress cfg =
  let stats = match stats with Some s -> s | None -> Plan.make_stats () in
  let total = count_sites cfg in
  let points_to_test = select cfg selection total in
  let points =
    List.map
      (fun n ->
        let p = run_crash_at ~stats cfg n in
        (match progress with Some f -> f p | None -> ());
        if Obs.Trace.is_enabled () then begin
          Obs.Trace.instant "sweep.point" ~attrs:(fun () ->
              [
                ("crash_at", Obs.Trace.Int n);
                ("violations", Obs.Trace.Int (List.length p.violations));
              ]);
          (* One durable trace prefix per completed leg: an aborted sweep
             still yields a loadable trace of every leg it finished. *)
          Obs.Trace.flush ()
        end;
        p)
      points_to_test
  in
  { total_sites = total; points; stats }

let pp_report ppf r =
  let bad = List.filter (fun p -> p.violations <> []) r.points in
  Fmt.pf ppf "@[<v>crash sweep: %d sites, %d crash points tested@,"
    r.total_sites (List.length r.points);
  Fmt.pf ppf "recoveries: %d/%d  injected faults: %d@,"
    (List.length (List.filter (fun p -> p.recovered) r.points))
    (List.length r.points) r.stats.Plan.injected;
  if bad = [] then Fmt.pf ppf "invariant violations: none@]"
  else begin
    Fmt.pf ppf "invariant violations: %d point(s)@," (List.length bad);
    List.iter
      (fun p ->
        Fmt.pf ppf "  crash at site %d (%a):@," p.crash_at
          Fmt.(Dump.option string)
          p.crash_site;
        List.iter
          (fun v -> Fmt.pf ppf "    %a@," Checker.pp_violation v)
          p.violations)
      bad;
    Fmt.pf ppf "@]"
  end

(** Systematic crash-point exploration.

    A counting run measures how many times a seeded workload reaches an
    injection site; {!sweep} then replays that identical workload once per
    crash point — cutting execution at exactly that site, crashing both
    devices (seeded torn SSD tails included), recovering, and checking the
    {!Checker} invariants against the {!Golden} history. Deterministic end
    to end: same seed, same config, same crash point -> the same failure. *)

type config = {
  seed : int;
  ops : int;
  keyspace : int;
  value_len : int;
  rules : (string * Plan.trigger * Plan.action) list;
  double_crash : bool;
  engine_config : Core.Config.t;
}

val config :
  ?seed:int ->
  ?ops:int ->
  ?keyspace:int ->
  ?value_len:int ->
  ?rules:(string * Plan.trigger * Plan.action) list ->
  ?double_crash:bool ->
  Core.Config.t ->
  config
(** Defaults: seed 42, 300 ops over 64 keys, 24-byte values, no rules,
    [double_crash] on. [rules] are armed on every sweep run (not the
    counting run): planting a durability bug — say
    [("wal.sync", Every, Wal_sync_loss)] — and asserting the sweep reports
    violations is the subsystem's self-test. [double_crash] arms a second
    seeded crash schedule over each leg's recovery path: legs whose
    recovery trips it crash again mid-recovery and must recover from the
    doubly-crashed image (recovery idempotence). Raises [Invalid_argument]
    unless the engine config is durable. *)

type point = {
  crash_at : int;  (** the global site hit the run crashed at *)
  crash_site : string option;
      (** [None]: the workload finished before reaching the point (the plug
          is pulled at the end instead) *)
  recovered : bool;
  violations : Checker.violation list;
}

type report = {
  total_sites : int;
  points : point list;
  stats : Plan.stats;
}

val violation_count : report -> int
val clean : report -> bool
(** Every point recovered with zero violations. *)

val count_sites : config -> int
(** Site hits of one clean run of the workload (deterministic in the
    seed). *)

val run_crash_at : ?stats:Plan.stats -> config -> int -> point
(** Fresh engine, crash at the [n]th site hit, recover, check. Runs
    sanitized: pmsan findings join the leg's violation list. *)

val sanitizer_violations : Pmem.t -> Checker.violation list
(** The device's pmsan findings as ["sanitizer"] invariant violations
    (empty without an attached sanitizer). Shared with
    [Corruption_sweep]. *)

type selection = All | Sample of int
(** [Sample k]: a seeded k-subset of the crash points (CI smoke runs). *)

val sweep :
  ?selection:selection ->
  ?stats:Plan.stats ->
  ?progress:(point -> unit) ->
  config ->
  report
(** [progress] fires after each crash point (CLI live output). [stats]
    accumulates across the sweep's plans and is what
    [Plan.register_metrics] exports. *)

val pp_report : report Fmt.t

(* The golden model: the history of operations the engine acknowledged,
   kept in plain DRAM where no fault can touch it. An op is recorded as
   pending before it is handed to the engine and acknowledged once the
   engine's call returns; a crash mid-call leaves it pending, and the
   checker then accepts either its before- or after-state (single-key
   atomicity) while holding every acknowledged op to full durability. *)

type op = { key : string; value : string option }

type t = {
  acked : (string, string option) Hashtbl.t;
      (* key -> Some value (live) | None (deleted) *)
  mutable pending : op option;
}

let create () = { acked = Hashtbl.create 256; pending = None }

let begin_put t ~key value =
  assert (t.pending = None);
  t.pending <- Some { key; value = Some value }

let begin_delete t key =
  assert (t.pending = None);
  t.pending <- Some { key; value = None }

let ack t =
  match t.pending with
  | None -> invalid_arg "Golden.ack: no pending op"
  | Some { key; value } ->
      Hashtbl.replace t.acked key value;
      t.pending <- None

(* A shed write never touched the engine: drop the pending op without
   acknowledging it, restoring the model to its pre-op state. *)
let abort t =
  match t.pending with
  | None -> invalid_arg "Golden.abort: no pending op"
  | Some _ -> t.pending <- None

let pending t = t.pending

let acked t key = Hashtbl.find_opt t.acked key

let entries t =
  Hashtbl.fold (fun key value acc -> (key, value) :: acc) t.acked []
  |> List.sort compare

let live_count t =
  Hashtbl.fold (fun _ v n -> if v = None then n else n + 1) t.acked 0

(** In-memory golden model of the applied-op history.

    The crash-sweep workload mirrors every operation here: {!begin_put} /
    {!begin_delete} before calling the engine, {!ack} when the engine call
    returns. A crash mid-call leaves exactly one op {!pending}, for which
    the {!Checker} accepts either outcome; everything acknowledged must
    survive recovery exactly. *)

type op = { key : string; value : string option }
(** [value = None] is a delete. *)

type t

val create : unit -> t
val begin_put : t -> key:string -> string -> unit
val begin_delete : t -> string -> unit

val ack : t -> unit
(** Promote the pending op into the acknowledged history. *)

val abort : t -> unit
(** Drop the pending op without acknowledging it — the engine refused the
    write before touching anything (admission shed, open breaker), so the
    model's pre-op state stands. *)

val pending : t -> op option

val acked : t -> string -> string option option
(** [None] — never acknowledged; [Some None] — deleted; [Some (Some v)] —
    live with value [v]. *)

val entries : t -> (string * string option) list
(** The acknowledged history, sorted by key (deletes included). *)

val live_count : t -> int

(* A fault plan: the deterministic schedule of what goes wrong.

   Each device hook reports to the plan when execution reaches its named
   site ("pm.flush", "wal.sync", ...). The plan counts the hit, consults
   its crash schedule and rules, and answers with the action to apply — or
   raises {Crashed} to cut the run at exactly that point. Because every
   source of nondeterminism in the repo flows through seeded Xoshiro
   generators, the same seed visits the same sites in the same order, so a
   crash-at-Nth-site schedule is perfectly reproducible: count the sites in
   one clean run, then replay crashing anywhere. *)

type action =
  | Crash
  | Pm_partial_flush of float
  | Pm_drop_flush
  | Ssd_io_error
  | Wal_sync_loss
  | Slow of float

type trigger = Every | Nth of int | Duty of { period : int; on : int }

(* [scope] narrows a rule to specific device objects: the predicate is
   applied to the region/file id the hook reports (gray faults confined to
   one shard's file range). A scoped rule never matches a site that
   reports no id. *)
type rule = {
  site : string;
  trigger : trigger;
  scope : (int -> bool) option;
  action : action;
}

exception Crashed of { site : string; hit : int }

type stats = {
  mutable injected : int;
  mutable crashes : int;
  mutable recoveries : int;
}

let make_stats () = { injected = 0; crashes = 0; recoveries = 0 }

type t = {
  seed : int;
  rng : Util.Xoshiro.t;
  mutable rules : rule list;
  site_hits : (string, int ref) Hashtbl.t;
  mutable global_hits : int;
  mutable crash_at : int option;
  mutable counting : bool;
  stats : stats;
}

let create ?stats ?crash_at ?(counting = false) seed =
  let stats = match stats with Some s -> s | None -> make_stats () in
  {
    seed;
    rng = Util.Xoshiro.create seed;
    rules = [];
    site_hits = Hashtbl.create 8;
    global_hits = 0;
    crash_at;
    counting;
    stats;
  }

let seed t = t.seed
let rng t = t.rng
let stats t = t.stats
let global_hits t = t.global_hits

let site_hit_count t site =
  match Hashtbl.find_opt t.site_hits site with Some r -> !r | None -> 0

let sites t =
  Hashtbl.fold (fun site r acc -> (site, !r) :: acc) t.site_hits []
  |> List.sort compare

let add_rule t ~site ~trigger ?scope action =
  t.rules <- t.rules @ [ { site; trigger; scope; action } ]

let clear_rules t = t.rules <- []

let note_injected t site =
  t.stats.injected <- t.stats.injected + 1;
  if Obs.Trace.is_enabled () then
    Obs.Trace.instant "fault.injected" ~attrs:(fun () ->
        [ ("site", Obs.Trace.Str site); ("hit", Obs.Trace.Int t.global_hits) ])

let crash t site =
  t.stats.crashes <- t.stats.crashes + 1;
  if Obs.Trace.is_enabled () then begin
    Obs.Trace.instant "fault.crash" ~attrs:(fun () ->
        [ ("site", Obs.Trace.Str site); ("hit", Obs.Trace.Int t.global_hits) ]);
    (* The crash unwinds arbitrarily far; make sure the events up to the
       crash point are on disk so a partial trace stays loadable. *)
    Obs.Trace.flush ()
  end;
  raise (Crashed { site; hit = t.global_hits })

(* Execution reached [site], optionally on device object [id]. Count the
   hit; in counting mode that is all. Otherwise the crash schedule takes
   precedence over the rules. *)
let hit ?id t site =
  t.global_hits <- t.global_hits + 1;
  let counter =
    match Hashtbl.find_opt t.site_hits site with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.site_hits site r;
        r
  in
  incr counter;
  if t.counting then None
  else
    match t.crash_at with
    | Some n when t.global_hits >= n -> crash t site
    | _ -> (
        let matches r =
          r.site = site
          && (match r.scope with
             | None -> true
             | Some pred -> ( match id with Some i -> pred i | None -> false))
          && (match r.trigger with
             | Every -> true
             | Nth n -> !counter = n
             (* Duty cycle: [on] matching hits out of every [period] — an
                intermittent storm that comes and goes on a beat. *)
             | Duty { period; on } -> (!counter - 1) mod max 1 period < on)
        in
        match List.find_opt matches t.rules with
        | None -> None
        | Some { action = Crash; _ } -> crash t site
        | Some r ->
            note_injected t site;
            Some r.action)

(* Arming installs one closure per device hook; each maps the plan's
   answer onto that site's outcome type. Actions foreign to a site (e.g. a
   [Wal_sync_loss] rule on "ssd.read") count as injected but degrade to the
   ok outcome. *)
let arm t ~pm ~ssd ?wal () =
  Pmem.set_flush_hook pm
    (Some
       (fun ~region_id ~off:_ ~len ->
         match hit ~id:region_id t "pm.flush" with
         | Some (Pm_partial_flush frac) ->
             Pmem.Flush_partial (int_of_float (frac *. float_of_int len))
         | Some Pm_drop_flush -> Pmem.Flush_dropped
         | Some (Slow mult) -> Pmem.Flush_slow mult
         | _ -> Pmem.Flush_ok));
  Pmem.set_drain_hook pm (Some (fun () -> ignore (hit t "pm.drain")));
  Ssd.set_write_hook ssd
    (Some
       (fun ~file_id ~len:_ ->
         match hit ~id:file_id t "ssd.write" with
         | Some Ssd_io_error -> Ssd.Io_fail
         | Some (Slow mult) -> Ssd.Io_slow mult
         | _ -> Ssd.Io_ok));
  Ssd.set_read_hook ssd
    (Some
       (fun ~file_id ~len:_ ->
         match hit ~id:file_id t "ssd.read" with
         | Some Ssd_io_error -> Ssd.Io_fail
         | Some (Slow mult) -> Ssd.Io_slow mult
         | _ -> Ssd.Io_ok));
  Ssd.set_fsync_hook ssd
    (Some
       (fun ~file_id ->
         match hit ~id:file_id t "ssd.fsync" with
         | Some Ssd_io_error -> Ssd.Io_fail
         | Some (Slow mult) -> Ssd.Io_slow mult
         | _ -> Ssd.Io_ok));
  match wal with
  | None -> ()
  | Some w ->
      Core.Wal.set_sync_hook w
        (Some
           (fun ~entries:_ ~bytes:_ ->
             match hit ~id:(Core.Wal.file_id w) t "wal.sync" with
             | Some Wal_sync_loss -> Core.Wal.Sync_skip_fsync
             | _ -> Core.Wal.Sync_ok))

(* Additional WALs on the same plan (one per shard); all report to the
   shared "wal.sync" site so a crash schedule covers every shard's log.
   The id is re-queried per hit so scoped rules survive WAL rotation. *)
let arm_wal t w =
  Core.Wal.set_sync_hook w
    (Some
       (fun ~entries:_ ~bytes:_ ->
         match hit ~id:(Core.Wal.file_id w) t "wal.sync" with
         | Some Wal_sync_loss -> Core.Wal.Sync_skip_fsync
         | _ -> Core.Wal.Sync_ok))

let disarm_wal w = Core.Wal.set_sync_hook w None

let disarm ~pm ~ssd ?wal () =
  Pmem.set_flush_hook pm None;
  Pmem.set_drain_hook pm None;
  Ssd.set_write_hook ssd None;
  Ssd.set_read_hook ssd None;
  Ssd.set_fsync_hook ssd None;
  match wal with None -> () | Some w -> Core.Wal.set_sync_hook w None

(* --- Seeded corruption injection -----------------------------------------

   Bit rot as a first-class fault: flip or zero a seeded range of a live PM
   region, an SSD table file, the durable WAL bytes, or the current
   manifest snapshot. Injection is latency-free (the medium decays, nobody
   performs I/O) and counts in stats.injected; what the storage stack must
   then prove — the corruption sweep's invariant — is that the damage is
   detected, quarantined, or repaired, never silently served. *)

type corruption_target = Pm_table_bytes | Sstable_bytes | Wal_bytes | Manifest_bytes

type corruption_mode = Bit_flip | Zero_range of int

type corruption = {
  target : corruption_target;
  corruption_mode : corruption_mode;
  victim : string;  (* human-readable: "pm_region:3 off=117 len=1" *)
}

let corruption_len = function Bit_flip -> 1 | Zero_range n -> max 1 n

let target_site = function
  | Pm_table_bytes -> "corrupt.pm"
  | Sstable_bytes -> "corrupt.ssd"
  | Wal_bytes -> "corrupt.wal"
  | Manifest_bytes -> "corrupt.manifest"

let inject_corruption t ~pm ~ssd ?wal ?(wals = []) ~target ~mode () =
  let wals = match wal with Some w -> w :: wals | None -> wals in
  let len = corruption_len mode in
  let dev_mode = match mode with Bit_flip -> `Flip | Zero_range _ -> `Zero in
  let pick_off size = if size <= len then 0 else Util.Xoshiro.int t.rng (size - len + 1) in
  let injected victim =
    note_injected t (target_site target);
    Some { target; corruption_mode = mode; victim }
  in
  let corrupt_ssd_file kind file =
    let size = Ssd.durable_size file in
    if size < len then None
    else begin
      let off = pick_off size in
      Ssd.corrupt_file ~len ~mode:dev_mode ssd file ~off;
      injected (Printf.sprintf "%s:%d off=%d len=%d" kind (Ssd.file_id file) off len)
    end
  in
  match target with
  | Pm_table_bytes -> (
      let regions =
        Pmem.live_regions pm
        |> List.filter (fun r -> Pmem.region_len r >= len)
        |> List.sort (fun a b -> compare (Pmem.region_id a) (Pmem.region_id b))
      in
      match regions with
      | [] -> None
      | regions ->
          let r = List.nth regions (Util.Xoshiro.int t.rng (List.length regions)) in
          let off = pick_off (Pmem.region_len r) in
          Pmem.corrupt_region ~len ~mode:dev_mode pm r ~off;
          injected
            (Printf.sprintf "pm_region:%d off=%d len=%d" (Pmem.region_id r) off len))
  | Sstable_bytes -> (
      (* Every superblock chain — the unnamed pair and each shard's named
         namespace — and every live WAL is off-limits: those have their own
         corruption targets with their own excusal rules. *)
      let excluded =
        List.concat_map
          (fun name ->
            let cur, prev = Ssd.root_slots ~name ssd in
            List.filter_map Fun.id [ cur; prev ])
          ("" :: Ssd.root_names ssd)
        @ List.map Core.Wal.file_id wals
      in
      let candidates =
        Ssd.live_file_ids ssd
        |> List.filter (fun id -> not (List.mem id excluded))
        |> List.filter_map (Ssd.find_file ssd)
        |> List.filter (fun f -> Ssd.durable_size f >= len)
      in
      match candidates with
      | [] -> None
      | candidates ->
          let f = List.nth candidates (Util.Xoshiro.int t.rng (List.length candidates)) in
          corrupt_ssd_file "ssd_file" f)
  | Wal_bytes -> (
      let candidates =
        List.filter_map (fun w -> Ssd.find_file ssd (Core.Wal.file_id w)) wals
      in
      match candidates with
      | [] -> None
      | candidates ->
          let f =
            List.nth candidates (Util.Xoshiro.int t.rng (List.length candidates))
          in
          corrupt_ssd_file "wal_file" f)
  | Manifest_bytes -> (
      let candidates =
        ("" :: Ssd.root_names ssd)
        |> List.filter_map (fun name -> fst (Ssd.root_slots ~name ssd))
        |> List.filter_map (Ssd.find_file ssd)
      in
      match candidates with
      | [] -> None
      | candidates ->
          let f =
            List.nth candidates (Util.Xoshiro.int t.rng (List.length candidates))
          in
          corrupt_ssd_file "manifest_file" f)

let register_metrics reg stats =
  Obs.Registry.register_int reg "fault.injected"
    ~help:"Non-crash faults injected (partial flushes, I/O errors, sync loss)"
    (fun () -> stats.injected);
  Obs.Registry.register_int reg "fault.crashes"
    ~help:"Simulated crashes raised by fault plans" (fun () -> stats.crashes);
  Obs.Registry.register_int reg "fault.recoveries"
    ~help:"Successful post-crash recoveries" (fun () -> stats.recoveries)

(** Deterministic fault plan: arms the device hook points ([Pmem],
    [Ssd], [Core.Wal]) with a seeded schedule of faults and crashes.

    Sites are named ["pm.flush"], ["pm.drain"], ["ssd.write"],
    ["ssd.read"], ["ssd.fsync"], ["wal.sync"]. Every time execution
    reaches an armed site the plan counts the hit; a crash schedule
    ([crash_at]) raises {!Crashed} at exactly the Nth global hit, and
    rules inject non-fatal faults at specific hits of a specific site.
    All randomness is seeded, so the same seed replays the same site
    sequence — the foundation of {!Crash_sweep}. *)

type action =
  | Crash  (** raise {!Crashed} at the site *)
  | Pm_partial_flush of float
      (** only this fraction of the flushed range persists *)
  | Pm_drop_flush  (** the clwb is silently lost *)
  | Ssd_io_error  (** fail the request with [Ssd.Io_error] (transient) *)
  | Wal_sync_loss  (** the WAL group is written but the barrier is swallowed *)
  | Slow of float
      (** fail-slow (gray) fault: the operation succeeds but costs this
          multiple of its normal latency. Maps to [Pmem.Flush_slow] at
          ["pm.flush"] and [Ssd.Io_slow] at ["ssd.write"]/["ssd.read"]/
          ["ssd.fsync"]; foreign to ["pm.drain"] and ["wal.sync"]. *)

type trigger =
  | Every
  | Nth of int  (** the Nth hit of that site, 1-based *)
  | Duty of { period : int; on : int }
      (** intermittent storm: matches the first [on] hits out of every
          [period] hits of the site (per-site counter, 1-based) *)

exception Crashed of { site : string; hit : int }
(** Raised from inside a device hook to cut the run at the site; [hit] is
    the global site counter at the crash. *)

type stats = {
  mutable injected : int;
  mutable crashes : int;
  mutable recoveries : int;
}
(** Shared across plans (a sweep makes one plan per crash point) and
    exported through the metrics registry. *)

val make_stats : unit -> stats

type t

val create : ?stats:stats -> ?crash_at:int -> ?counting:bool -> int -> t
(** [create seed] builds an idle plan. [crash_at n] raises {!Crashed} at
    the [n]th global site hit; [counting] makes every site a no-op counter
    (used to measure a run's site total before sweeping). *)

val seed : t -> int
val rng : t -> Util.Xoshiro.t
val stats : t -> stats

val global_hits : t -> int
(** Total site hits so far, across all sites. *)

val site_hit_count : t -> string -> int
val sites : t -> (string * int) list
(** Per-site hit counts, sorted by site name. *)

val add_rule :
  t -> site:string -> trigger:trigger -> ?scope:(int -> bool) -> action -> unit
(** First matching rule wins; an action foreign to the site (e.g.
    [Wal_sync_loss] at ["ssd.read"]) counts as injected but acts as ok.
    [scope] restricts the rule to device objects whose id satisfies the
    predicate — PM region ids at ["pm.flush"], SSD file ids at the ssd
    sites and ["wal.sync"] — so a gray fault can be confined to one
    shard's file range. A scoped rule never matches ["pm.drain"] (no id). *)

val clear_rules : t -> unit
(** Drop every rule (the crash schedule is untouched); used by episodic
    harnesses that re-arm the same plan between chaos episodes. *)

val arm : t -> pm:Pmem.t -> ssd:Ssd.t -> ?wal:Core.Wal.t -> unit -> unit
(** Install the plan's closures on the device hook points. The WAL handle
    (from [Engine.wal]) arms the ["wal.sync"] site; hooks survive WAL
    rotation but not recovery (which builds a fresh handle). *)

val disarm : pm:Pmem.t -> ssd:Ssd.t -> ?wal:Core.Wal.t -> unit -> unit
(** Uninstall every hook the plan armed (safe on a fresh system too). *)

val arm_wal : t -> Core.Wal.t -> unit
(** Arm one more WAL on the same plan (one per shard); every log reports
    to the shared ["wal.sync"] site, so a crash schedule covers all of
    them in global hit order. *)

val disarm_wal : Core.Wal.t -> unit

(** {1 Seeded corruption injection}

    Bit rot as a first-class fault: flip or zero a seeded range of live
    persisted bytes, latency-free. The corruption sweep's invariant is
    that the damage is detected, quarantined, or repaired — never silently
    served. *)

type corruption_target =
  | Pm_table_bytes  (** a seeded live PM region (some level-0 table) *)
  | Sstable_bytes  (** a seeded SSD file that is not the WAL or a manifest *)
  | Wal_bytes  (** the durable bytes of the live WAL *)
  | Manifest_bytes  (** the current superblock slot's manifest snapshot *)

type corruption_mode = Bit_flip | Zero_range of int

type corruption = {
  target : corruption_target;
  corruption_mode : corruption_mode;
  victim : string;  (** human-readable victim description *)
}

val inject_corruption :
  t ->
  pm:Pmem.t ->
  ssd:Ssd.t ->
  ?wal:Core.Wal.t ->
  ?wals:Core.Wal.t list ->
  target:corruption_target ->
  mode:corruption_mode ->
  unit ->
  corruption option
(** Corrupt one seeded victim of [target]'s kind (the plan's RNG picks the
    victim and offset, so a seed reproduces the same damage). Counts in
    [stats.injected]. [None] when no eligible victim exists — e.g. no live
    PM regions yet, or no WAL handle supplied. Pass every live log via
    [wal]/[wals] (a sharded system has one per shard): [Sstable_bytes]
    must not mistake a WAL — nor any superblock chain, named or unnamed —
    for a data file, and [Wal_bytes]/[Manifest_bytes] pick a seeded victim
    among all logs / all current manifest slots. *)

val register_metrics : Obs.Registry.t -> stats -> unit
(** [fault.injected], [fault.crashes], [fault.recoveries]. *)

(* Circuit breaker over one shard's device neighbourhood.

   Closed admits traffic and counts outcomes over a small sliding window.
   Consecutive failures or a windowed error rate past threshold trip it
   Open; Open rejects instantly (the caller converts the rejection into a
   typed degraded/unavailable answer instead of queueing behind a sick
   device) until a cooldown on the virtual clock elapses. Then Half_open
   admits probe traffic: a run of successful probes closes the breaker, a
   single probe failure re-opens it and restarts the cooldown.

   "Failure" is whatever the caller says it is — an I/O exception, or an
   operation whose latency blew past the tracker's slow-factor threshold.
   The breaker only keeps the state machine; the diagnosis lives with the
   caller, which can see both errors and gray slowness. *)

type state = Closed | Open | Half_open
type decision = Allow | Probe | Reject

type config = {
  window : int;
  failure_threshold : int;
  error_rate : float;
  cooldown_ns : float;
  half_open_probes : int;
}

let default_config =
  {
    window = 32;
    failure_threshold = 4;
    error_rate = 0.5;
    cooldown_ns = 10_000_000.0;
    half_open_probes = 3;
  }

type t = {
  config : config;
  clock : Sim.Clock.t;
  ring : bool array; (* true = failure *)
  mutable ring_len : int;
  mutable ring_pos : int;
  mutable ring_errs : int;
  mutable consec_failures : int;
  mutable state : state;
  mutable opened_at : float;
  mutable probe_successes : int;
  mutable trips : int;
  mutable rejections : int;
}

let create ?(config = default_config) clock =
  {
    config;
    clock;
    ring = Array.make (max 1 config.window) false;
    ring_len = 0;
    ring_pos = 0;
    ring_errs = 0;
    consec_failures = 0;
    state = Closed;
    opened_at = 0.0;
    probe_successes = 0;
    trips = 0;
    rejections = 0;
  }

let state t = t.state
let trips t = t.trips
let rejections t = t.rejections

let error_rate t =
  if t.ring_len = 0 then 0.0
  else float_of_int t.ring_errs /. float_of_int t.ring_len

let push t failed =
  let cap = Array.length t.ring in
  if t.ring_len = cap then begin
    if t.ring.(t.ring_pos) then t.ring_errs <- t.ring_errs - 1
  end
  else t.ring_len <- t.ring_len + 1;
  t.ring.(t.ring_pos) <- failed;
  if failed then t.ring_errs <- t.ring_errs + 1;
  t.ring_pos <- (t.ring_pos + 1) mod cap

let reset_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.ring_len <- 0;
  t.ring_pos <- 0;
  t.ring_errs <- 0;
  t.consec_failures <- 0

let trip t =
  t.state <- Open;
  t.opened_at <- Sim.Clock.now t.clock;
  t.probe_successes <- 0;
  t.trips <- t.trips + 1

let decide t =
  match t.state with
  | Closed -> Allow
  | Half_open -> Probe
  | Open ->
      if Sim.Clock.now t.clock -. t.opened_at >= t.config.cooldown_ns then begin
        t.state <- Half_open;
        t.probe_successes <- 0;
        Probe
      end
      else begin
        t.rejections <- t.rejections + 1;
        Reject
      end

let record_success t =
  match t.state with
  | Closed ->
      push t false;
      t.consec_failures <- 0
  | Half_open ->
      t.probe_successes <- t.probe_successes + 1;
      if t.probe_successes >= t.config.half_open_probes then begin
        t.state <- Closed;
        reset_window t
      end
  | Open -> ()

let record_failure t =
  match t.state with
  | Closed ->
      push t true;
      t.consec_failures <- t.consec_failures + 1;
      (* Either a burst (consecutive) or a sustained duty-cycle storm
         (windowed rate over at least half a window of evidence). *)
      if
        t.consec_failures >= t.config.failure_threshold
        || t.ring_len * 2 >= t.config.window
           && error_rate t >= t.config.error_rate
      then trip t
  | Half_open -> trip t
  | Open -> ()

let force_open t = if t.state <> Open then trip t

let pp_state ppf = function
  | Closed -> Fmt.string ppf "closed"
  | Open -> Fmt.string ppf "open"
  | Half_open -> Fmt.string ppf "half-open"

let pp ppf t =
  Fmt.pf ppf "%a err_rate=%.2f consec=%d trips=%d rejections=%d" pp_state
    t.state (error_rate t) t.consec_failures t.trips t.rejections

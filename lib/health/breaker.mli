(** Circuit breaker: converts a sick device's unbounded waits into fast
    typed rejections.

    Closed admits traffic; consecutive failures or a windowed error rate
    past threshold trip it Open. Open rejects until [cooldown_ns] elapses
    on the virtual clock, then Half_open admits probes: [half_open_probes]
    consecutive probe successes close it, one probe failure re-opens it.
    What counts as "failure" is the caller's diagnosis (I/O error, or a
    latency blow-out against [Tracker]'s baseline). *)

type state = Closed | Open | Half_open

type decision =
  | Allow  (** closed: serve normally *)
  | Probe  (** half-open: serve, but this operation is a probe *)
  | Reject  (** open: do not touch the device; answer degraded instead *)

type config = {
  window : int;  (** sliding outcome window size *)
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  error_rate : float;  (** windowed failure rate that trips the breaker *)
  cooldown_ns : float;  (** open-state dwell before probing, virtual ns *)
  half_open_probes : int;  (** probe successes required to close *)
}

val default_config : config

type t

val create : ?config:config -> Sim.Clock.t -> t
val state : t -> state

val decide : t -> decision
(** Consult before an operation. May transition Open -> Half_open when the
    cooldown has elapsed; counts a rejection when it answers [Reject]. *)

val record_success : t -> unit
val record_failure : t -> unit

val force_open : t -> unit
(** Trip immediately (e.g. the latency tracker diagnosed fail-slow without
    any discrete error). No-op when already open. *)

val error_rate : t -> float
(** Windowed failure rate currently in evidence. *)

val trips : t -> int
(** Times the breaker transitioned to Open. *)

val rejections : t -> int
(** Operations turned away while Open. *)

val pp_state : state Fmt.t
val pp : t Fmt.t

(* Availability ledger: exclusive per-operation outcome counters.

   Every operation lands in exactly one bucket, so the buckets sum to the
   total and ratios are honest. [Deadline_miss] outranks the others: an
   answer that arrived after its budget is a miss even if it was correct,
   because the caller had already given up on it. *)

type outcome = Ok_op | Degraded | Shed | Unavailable | Failed | Deadline_miss

type t = {
  mutable ok : int;
  mutable degraded : int;
  mutable shed : int;
  mutable unavailable : int;
  mutable failed : int;
  mutable deadline_miss : int;
}

let create () =
  { ok = 0; degraded = 0; shed = 0; unavailable = 0; failed = 0; deadline_miss = 0 }

let record t = function
  | Ok_op -> t.ok <- t.ok + 1
  | Degraded -> t.degraded <- t.degraded + 1
  | Shed -> t.shed <- t.shed + 1
  | Unavailable -> t.unavailable <- t.unavailable + 1
  | Failed -> t.failed <- t.failed + 1
  | Deadline_miss -> t.deadline_miss <- t.deadline_miss + 1

let ok t = t.ok
let degraded t = t.degraded
let shed t = t.shed
let unavailable t = t.unavailable
let failed t = t.failed
let deadline_miss t = t.deadline_miss

let total t = t.ok + t.degraded + t.shed + t.unavailable + t.failed + t.deadline_miss

(* Operations that produced a timely, well-typed answer: a fast typed
   rejection (shed/unavailable/degraded) counts as "within deadline" —
   the whole point of the breaker is that refusing fast beats queueing —
   while a missed deadline or an untyped failure does not. *)
let within_deadline t = t.ok + t.degraded + t.shed + t.unavailable

let deadline_ok_ratio t =
  let n = total t in
  if n = 0 then 1.0 else float_of_int (within_deadline t) /. float_of_int n

let merge ~into src =
  into.ok <- into.ok + src.ok;
  into.degraded <- into.degraded + src.degraded;
  into.shed <- into.shed + src.shed;
  into.unavailable <- into.unavailable + src.unavailable;
  into.failed <- into.failed + src.failed;
  into.deadline_miss <- into.deadline_miss + src.deadline_miss

let pp ppf t =
  Fmt.pf ppf
    "ok=%d degraded=%d shed=%d unavailable=%d failed=%d deadline_miss=%d \
     (%.4f within deadline)"
    t.ok t.degraded t.shed t.unavailable t.failed t.deadline_miss
    (deadline_ok_ratio t)

(** Availability ledger: exclusive per-operation outcome counters, one
    bucket per operation so ratios are honest.

    [Deadline_miss] outranks the others — a correct answer that arrived
    after its budget is still a miss. Fast typed refusals ([Shed],
    [Unavailable], [Degraded]) count as within-deadline: refusing fast is
    the availability the breaker buys. *)

type outcome =
  | Ok_op  (** normal answer within budget *)
  | Degraded  (** typed degraded answer (PM-only read, quarantine fallback) *)
  | Shed  (** write refused at admission before any engine mutation *)
  | Unavailable  (** read refused: breaker open and no degraded path *)
  | Failed  (** typed failure after the engine was touched (ambiguous) *)
  | Deadline_miss  (** answer (of any kind) arrived past its budget *)

type t

val create : unit -> t
val record : t -> outcome -> unit
val ok : t -> int
val degraded : t -> int
val shed : t -> int
val unavailable : t -> int
val failed : t -> int
val deadline_miss : t -> int
val total : t -> int

val within_deadline : t -> int
(** Operations that produced a timely, well-typed answer. *)

val deadline_ok_ratio : t -> float
(** [within_deadline / total]; 1.0 on an empty ledger. *)

val merge : into:t -> t -> unit
val pp : t Fmt.t

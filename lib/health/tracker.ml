(* Windowed latency health tracker.

   The first [warmup] samples freeze a baseline (their mean); after that an
   EWMA follows the live latency and [slow_factor] reports how far the
   device has drifted from its own healthy self. A fail-slow device does
   not error — it answers, 10-100x late — so drift against the frozen
   baseline is the only signal that distinguishes "sick" from "busy day
   one". All time comes from the caller (virtual-clock deltas), so the
   tracker itself is clock-free. *)

type t = {
  alpha : float;
  warmup : int;
  mutable warmup_sum : float;
  mutable baseline : float; (* 0.0 until frozen *)
  mutable ewma : float;
  mutable samples : int;
}

let create ?(alpha = 0.2) ?(warmup = 64) () =
  { alpha; warmup; warmup_sum = 0.0; baseline = 0.0; ewma = 0.0; samples = 0 }

let observe t latency_ns =
  let latency_ns = Float.max 0.0 latency_ns in
  t.samples <- t.samples + 1;
  if t.samples <= t.warmup then begin
    t.warmup_sum <- t.warmup_sum +. latency_ns;
    if t.samples = t.warmup then begin
      t.baseline <- Float.max 1.0 (t.warmup_sum /. float_of_int t.warmup);
      t.ewma <- t.baseline
    end
  end
  else t.ewma <- (t.alpha *. latency_ns) +. ((1.0 -. t.alpha) *. t.ewma)

let samples t = t.samples
let baseline t = t.baseline
let ewma t = t.ewma
let warmed_up t = t.baseline > 0.0

let slow_factor t =
  if t.baseline <= 0.0 then 1.0 else Float.max 1.0 (t.ewma /. t.baseline)

let reset_ewma t = if t.baseline > 0.0 then t.ewma <- t.baseline

let pp ppf t =
  Fmt.pf ppf "samples=%d baseline=%.0fns ewma=%.0fns slow=%.2fx" t.samples
    t.baseline t.ewma (slow_factor t)

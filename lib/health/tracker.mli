(** Windowed latency health tracker: freezes a baseline from the first
    warmup samples, then follows live latency with an EWMA. The ratio
    {!slow_factor} is the gray-failure signal — a fail-slow device answers
    correctly but drifts far above its own healthy baseline. *)

type t

val create : ?alpha:float -> ?warmup:int -> unit -> t
(** [alpha] is the EWMA smoothing weight of the newest sample (default
    0.2); [warmup] the number of samples averaged into the frozen baseline
    (default 64). *)

val observe : t -> float -> unit
(** Feed one operation latency in simulated nanoseconds. *)

val samples : t -> int
val baseline : t -> float
(** Frozen healthy-self baseline; 0.0 until warmed up. *)

val ewma : t -> float

val warmed_up : t -> bool
(** True once the baseline is frozen. *)

val slow_factor : t -> float
(** [ewma / baseline], clamped to >= 1.0; 1.0 until warmed up. *)

val reset_ewma : t -> unit
(** Snap the EWMA back to the baseline (after a fault episode clears, so a
    recovered device is not punished for its past). *)

val pp : t Fmt.t

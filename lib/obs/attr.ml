(* Per-operation latency attribution over the simulated clock.

   The engine wraps each user-facing operation in [with_op]; device and
   subsystem layers report time with point charges ([charge]) or frames
   ([with_phase]). At op end the accounted phase times are compared
   against the op's clock delta and the shortfall is booked as [Other],
   so the per-phase breakdown always sums to the measured latency.

   Two accounting domains keep the books exact despite clock rewinds:

   - Op domain: charges and frames between [with_op] enter/exit land in
     the current op's per-phase accumulators. Non-absorbing frames
     (memtable probe, WAL stage/sync) subtract time already claimed by
     nested charges, so a device read inside a WAL sync is counted once.

   - Background domain: work under an absorbing frame (write stall,
     flush, compaction) or outside any op. An absorbing frame inside an
     op charges its full clock delta to the op (that is what the caller
     waited for) and diverts everything underneath — device reads done
     by an inline flush, nested flush/compaction frames — to the global
     background totals. This is what makes attribution robust to the
     scheduler's rewind-based overlap rebates: the op only ever sees the
     post-rebate delta of the frame it actually blocked on.

   Like {!Trace}, the module is process-global and disabled by default;
   the disabled path is one bool check and no allocation. *)

type phase =
  | Memtable_probe
  | Pm_bloom
  | Cache_hit
  | Cache_miss
  | Pm_read
  | Ssd_read
  | Wal_stage
  | Wal_sync
  | Flush
  | Compaction
  | Stall_wait
  | Sched_wait
  | Router_dispatch
  | Group_commit_wait
  | Admission_stall
  | Pipe_read
  | Pipe_merge
  | Pipe_build
  | Pipe_write
  | Pipe_queue_wait
  | Other

type op_kind = Read | Write | Scan

let phase_index = function
  | Memtable_probe -> 0
  | Pm_bloom -> 1
  | Cache_hit -> 2
  | Cache_miss -> 3
  | Pm_read -> 4
  | Ssd_read -> 5
  | Wal_stage -> 6
  | Wal_sync -> 7
  | Flush -> 8
  | Compaction -> 9
  | Stall_wait -> 10
  | Sched_wait -> 11
  | Router_dispatch -> 12
  | Group_commit_wait -> 13
  | Admission_stall -> 14
  | Pipe_read -> 15
  | Pipe_merge -> 16
  | Pipe_build -> 17
  | Pipe_write -> 18
  | Pipe_queue_wait -> 19
  | Other -> 20

let phase_count = 21

let all_phases =
  [ Memtable_probe; Pm_bloom; Cache_hit; Cache_miss; Pm_read; Ssd_read; Wal_stage;
    Wal_sync; Flush; Compaction; Stall_wait; Sched_wait; Router_dispatch;
    Group_commit_wait; Admission_stall; Pipe_read; Pipe_merge; Pipe_build;
    Pipe_write; Pipe_queue_wait; Other ]

let phase_name = function
  | Memtable_probe -> "memtable_probe"
  | Pm_bloom -> "pm_bloom"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Pm_read -> "pm_read"
  | Ssd_read -> "ssd_read"
  | Wal_stage -> "wal_stage"
  | Wal_sync -> "wal_sync"
  | Flush -> "flush"
  | Compaction -> "compaction"
  | Stall_wait -> "stall_wait"
  | Sched_wait -> "sched_wait"
  | Router_dispatch -> "router_dispatch"
  | Group_commit_wait -> "group_commit_wait"
  | Admission_stall -> "admission_stall"
  | Pipe_read -> "pipe_read"
  | Pipe_merge -> "pipe_merge"
  | Pipe_build -> "pipe_build"
  | Pipe_write -> "pipe_write"
  | Pipe_queue_wait -> "pipe_queue_wait"
  | Other -> "other"

(* Absorbing frames mark work the op waits for as a whole; their inner
   detail belongs to the background books. The Pipe_* stage phases are
   deliberately non-absorbing: they run inside a [Compaction] frame, so
   their time lands in the background books as compaction detail while
   the op that triggered the compaction still sees one absorbing delta —
   the ±5% doctor coverage gate is unaffected by the pipeline. *)
let absorbing = function
  | Flush | Compaction | Stall_wait | Group_commit_wait | Admission_stall -> true
  | _ -> false

let kind_index = function Read -> 0 | Write -> 1 | Scan -> 2
let kind_name = function Read -> "read" | Write -> "write" | Scan -> "scan"
let op_kinds = [ Read; Write; Scan ]

(* --- Global state ------------------------------------------------------ *)

type frame = {
  frame_phase : phase;
  start : float;
  mutable child_ns : float;  (* time nested charges/frames already claimed *)
  to_op : bool;  (* self time belongs to the current op, not background *)
}

type op_ctx = { kind : op_kind; op_start : float; acc : float array }

type state = {
  clock : Sim.Clock.t;
  mutable op : op_ctx option;
  mutable frames : frame list;
  mutable absorb_depth : int;
  (* cumulative books *)
  op_phase_ns : float array;
  bg_phase_ns : float array;
  counts : int array;
  ops : int array;          (* per op_kind *)
  op_total_ns : float array; (* per op_kind *)
  histograms : Util.Histogram.t array;  (* per-phase, per-op contribution *)
}

let enabled = ref false
let state : state option ref = ref None

let is_enabled () = !enabled

let enable ~clock =
  state :=
    Some
      {
        clock;
        op = None;
        frames = [];
        absorb_depth = 0;
        op_phase_ns = Array.make phase_count 0.0;
        bg_phase_ns = Array.make phase_count 0.0;
        counts = Array.make phase_count 0;
        ops = Array.make 3 0;
        op_total_ns = Array.make 3 0.0;
        histograms = Array.init phase_count (fun _ -> Util.Histogram.create ());
      };
  enabled := true

let disable () =
  state := None;
  enabled := false

let reset () = match !state with Some st -> enable ~clock:st.clock | None -> ()

(* --- Charges and frames ------------------------------------------------ *)

(* An op is being attributed iff an op context is live and no absorbing
   frame has taken over; otherwise the charge is background work. *)
let charge phase dt =
  if !enabled then
    match !state with
    | None -> ()
    | Some st ->
        let i = phase_index phase in
        st.counts.(i) <- st.counts.(i) + 1;
        let dt = if dt > 0.0 then dt else 0.0 in
        (match st.op with
        | Some op when st.absorb_depth = 0 -> op.acc.(i) <- op.acc.(i) +. dt
        | _ -> st.bg_phase_ns.(i) <- st.bg_phase_ns.(i) +. dt);
        (match st.frames with
        | top :: _ -> top.child_ns <- top.child_ns +. dt
        | [] -> ())

let with_phase phase f =
  if not !enabled then f ()
  else
    match !state with
    | None -> f ()
    | Some st ->
        let to_op = st.op <> None && st.absorb_depth = 0 in
        let frame =
          { frame_phase = phase; start = Sim.Clock.now st.clock; child_ns = 0.0; to_op }
        in
        st.frames <- frame :: st.frames;
        if absorbing phase then st.absorb_depth <- st.absorb_depth + 1;
        let finish () =
          (match st.frames with
          | top :: rest when top == frame -> st.frames <- rest
          | _ -> ());
          if absorbing phase then st.absorb_depth <- st.absorb_depth - 1;
          let delta = Float.max 0.0 (Sim.Clock.now st.clock -. frame.start) in
          (* An absorbing frame billed to an op keeps its full delta (the
             op blocked on all of it; inner charges were diverted to the
             background books). Everything else bills only its self time. *)
          let self =
            if to_op && absorbing phase then delta
            else Float.max 0.0 (delta -. frame.child_ns)
          in
          let i = phase_index phase in
          st.counts.(i) <- st.counts.(i) + 1;
          (match st.op with
          | Some op when to_op -> op.acc.(i) <- op.acc.(i) +. self
          | _ -> st.bg_phase_ns.(i) <- st.bg_phase_ns.(i) +. self);
          match st.frames with
          | parent :: _ -> parent.child_ns <- parent.child_ns +. delta
          | [] -> ()
        in
        (match f () with
        | v ->
            finish ();
            v
        | exception e ->
            finish ();
            raise e)

let with_op kind f =
  if not !enabled then f ()
  else
    match !state with
    | None -> f ()
    | Some st when st.op <> None -> f () (* no nested ops: inner calls inherit *)
    | Some st ->
        let op =
          { kind; op_start = Sim.Clock.now st.clock; acc = Array.make phase_count 0.0 }
        in
        st.op <- Some op;
        let finish () =
          st.op <- None;
          let total = Float.max 0.0 (Sim.Clock.now st.clock -. op.op_start) in
          let accounted = Array.fold_left ( +. ) 0.0 op.acc in
          let other = Float.max 0.0 (total -. accounted) in
          op.acc.(phase_index Other) <- op.acc.(phase_index Other) +. other;
          let k = kind_index kind in
          st.ops.(k) <- st.ops.(k) + 1;
          st.op_total_ns.(k) <- st.op_total_ns.(k) +. total;
          Array.iteri
            (fun i v ->
              if v > 0.0 then begin
                st.op_phase_ns.(i) <- st.op_phase_ns.(i) +. v;
                Util.Histogram.record st.histograms.(i) v
              end)
            op.acc;
          if Trace.is_enabled () then
            Trace.complete ("op." ^ kind_name kind) ~ts:op.op_start ~dur:total
              ~attrs:(fun () ->
                List.filter_map
                  (fun p ->
                    let v = op.acc.(phase_index p) in
                    if v > 0.0 then Some (phase_name p, Trace.Float v) else None)
                  all_phases)
        in
        (match f () with
        | v ->
            finish ();
            v
        | exception e ->
            finish ();
            raise e)

(* --- Deadline budgets --------------------------------------------------- *)

(* The current operation's absolute deadline on the virtual clock.
   Deliberately outside [state]: deadline-aware serving must work even
   when attribution is disabled (health is not observability). The
   router sets it at op entry and clears it at op exit; any layer in
   between may consult it to decide whether finishing slowly is still
   worth anything to the caller. *)
let cur_deadline : float option ref = ref None

let set_deadline d = cur_deadline := d
let current_deadline () = !cur_deadline

(* --- Coroutine context switching ---------------------------------------- *)

(* The books above assume one op at a time; coroutine clients break that
   by suspending mid-op. The scheduler brackets every slice with
   [restore_task]/[capture_task], so each task's live op and open frames
   follow it across suspensions instead of leaking into whichever task
   runs next. Between slices (DES callbacks, the scheduler itself) the
   detached state has no op — charges land in the background books. *)

type task_ctx = {
  t_op : op_ctx option;
  t_frames : frame list;
  t_absorb : int;
  t_deadline : float option;
}

let empty_task_ctx = { t_op = None; t_frames = []; t_absorb = 0; t_deadline = None }

let capture_task () =
  (* The deadline travels with the task even when attribution is off. *)
  let deadline = !cur_deadline in
  cur_deadline := None;
  match !state with
  | None -> { empty_task_ctx with t_deadline = deadline }
  | Some st ->
      let c =
        {
          t_op = st.op;
          t_frames = st.frames;
          t_absorb = st.absorb_depth;
          t_deadline = deadline;
        }
      in
      st.op <- None;
      st.frames <- [];
      st.absorb_depth <- 0;
      c

let restore_task c =
  cur_deadline := c.t_deadline;
  match !state with
  | None -> ()
  | Some st ->
      st.op <- c.t_op;
      st.frames <- c.t_frames;
      st.absorb_depth <- c.t_absorb

(* --- Snapshots and exposition ------------------------------------------ *)

type snapshot = {
  reads : int;
  writes : int;
  scans : int;
  read_ns : float;
  write_ns : float;
  scan_ns : float;
  op_phases : (phase * float) list;  (* cumulative op-attributed ns, all phases *)
  bg_phases : (phase * float) list;  (* cumulative background ns, all phases *)
  phase_counts : (phase * int) list;
}

let empty_snapshot =
  {
    reads = 0;
    writes = 0;
    scans = 0;
    read_ns = 0.0;
    write_ns = 0.0;
    scan_ns = 0.0;
    op_phases = List.map (fun p -> (p, 0.0)) all_phases;
    bg_phases = List.map (fun p -> (p, 0.0)) all_phases;
    phase_counts = List.map (fun p -> (p, 0)) all_phases;
  }

let snapshot () =
  match !state with
  | None -> empty_snapshot
  | Some st ->
      {
        reads = st.ops.(0);
        writes = st.ops.(1);
        scans = st.ops.(2);
        read_ns = st.op_total_ns.(0);
        write_ns = st.op_total_ns.(1);
        scan_ns = st.op_total_ns.(2);
        op_phases = List.map (fun p -> (p, st.op_phase_ns.(phase_index p))) all_phases;
        bg_phases = List.map (fun p -> (p, st.bg_phase_ns.(phase_index p))) all_phases;
        phase_counts = List.map (fun p -> (p, st.counts.(phase_index p))) all_phases;
      }

let op_ns () = match !state with None -> 0.0 | Some st -> Array.fold_left ( +. ) 0.0 st.op_total_ns
let accounted_ns () =
  match !state with None -> 0.0 | Some st -> Array.fold_left ( +. ) 0.0 st.op_phase_ns

let register_metrics registry =
  List.iter
    (fun kind ->
      Registry.register_int registry ~kind:Registry.Counter
        ~help:(Printf.sprintf "Operations attributed by kind (%s)" (kind_name kind))
        (Printf.sprintf "attr.ops.%s" (kind_name kind))
        (fun () -> match !state with None -> 0 | Some st -> st.ops.(kind_index kind));
      Registry.register_float registry ~kind:Registry.Counter
        ~help:
          (Printf.sprintf "Total simulated ns spent in attributed %s operations"
             (kind_name kind))
        (Printf.sprintf "attr.op_ns.%s" (kind_name kind))
        (fun () ->
          match !state with None -> 0.0 | Some st -> st.op_total_ns.(kind_index kind)))
    op_kinds;
  List.iter
    (fun p ->
      let i = phase_index p in
      Registry.register_float registry ~kind:Registry.Counter
        ~help:
          (Printf.sprintf "Simulated ns attributed to the %s phase of user operations"
             (phase_name p))
        (Printf.sprintf "attr.phase_ns.%s" (phase_name p))
        (fun () -> match !state with None -> 0.0 | Some st -> st.op_phase_ns.(i));
      Registry.register_float registry ~kind:Registry.Counter
        ~help:
          (Printf.sprintf "Simulated ns of background work booked to the %s phase"
             (phase_name p))
        (Printf.sprintf "attr.bg_ns.%s" (phase_name p))
        (fun () -> match !state with None -> 0.0 | Some st -> st.bg_phase_ns.(i));
      Registry.register_histogram registry
        ~help:
          (Printf.sprintf "Per-operation ns contributed by the %s phase (nonzero only)"
             (phase_name p))
        (Printf.sprintf "attr.phase.%s" (phase_name p))
        (fun () ->
          match !state with
          | None -> Util.Histogram.create ()
          | Some st -> st.histograms.(i)))
    all_phases

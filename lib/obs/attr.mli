(** Per-operation latency attribution over the simulated clock.

    The engine wraps each user-facing operation in {!with_op}; device and
    subsystem layers report time with point charges ({!charge}) or frames
    ({!with_phase}). At op end the shortfall between the op's clock delta
    and the accounted phase time is booked as [Other], so a breakdown
    always sums to the measured latency.

    Absorbing frames ([Flush], [Compaction], [Stall_wait]) charge their
    full clock delta to the waiting op and divert all nested activity to
    the global background books — this keeps op attribution exact in the
    presence of the scheduler's rewind-based overlap rebates.

    Process-global, disabled by default; the disabled path is a single
    bool check. Not reentrant across ops (ops do not nest — an inner
    [with_op] is a no-op wrapper). *)

type phase =
  | Memtable_probe  (** memtable point/skiplist probe *)
  | Pm_bloom  (** PM-table bloom filter probe *)
  | Cache_hit  (** shared block cache hit (DRAM copy) *)
  | Cache_miss  (** block cache miss bookkeeping; the refill is [Ssd_read] *)
  | Pm_read  (** persistent-memory media read *)
  | Ssd_read  (** SSD media read *)
  | Wal_stage  (** WAL record framing/staging into the group buffer *)
  | Wal_sync  (** WAL group sync to the log device *)
  | Flush  (** memtable/PM flush work *)
  | Compaction  (** compaction work *)
  | Stall_wait  (** foreground write stalled on backpressure relief *)
  | Sched_wait  (** time queued behind the coroutine scheduler *)
  | Router_dispatch  (** shard lookup + dispatch bookkeeping in the router *)
  | Group_commit_wait  (** follower waiting for its group-commit leader's sync *)
  | Admission_stall  (** write held at admission until shard debt drains *)
  | Pipe_read  (** pipelined compaction: block-read stage (source prefetch) *)
  | Pipe_merge  (** pipelined compaction: k-way merge stage *)
  | Pipe_build  (** pipelined compaction: output-table build stage *)
  | Pipe_write  (** pipelined compaction: PM/SSD write stage *)
  | Pipe_queue_wait  (** pipelined compaction: blocked on a stage queue *)
  | Other  (** unattributed remainder, computed at op end *)

type op_kind = Read | Write | Scan

val all_phases : phase list
val phase_name : phase -> string
val kind_name : op_kind -> string

val enable : clock:Sim.Clock.t -> unit
(** Start attribution; timestamps come from [clock]. Resets all books. *)

val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Clear all accumulated books, keeping attribution enabled. *)

val charge : phase -> float -> unit
(** [charge phase dt] books [dt] simulated ns (clamped at 0) to [phase] in
    the current domain — the live op, or the background books when no op
    is active or an absorbing frame is open. Safe to call when disabled. *)

val with_phase : phase -> (unit -> 'a) -> 'a
(** Frame [f ()] and book its self time (clock delta minus time claimed by
    nested charges/frames) to [phase]. Absorbing phases book the full
    delta to the waiting op instead and divert nested work to the
    background books. Exception-safe; identity when disabled. *)

val with_op : op_kind -> (unit -> 'a) -> 'a
(** Attribute one user-facing operation. On exit, records per-phase
    contributions into the cumulative books and histograms, books the
    unaccounted remainder as [Other], and (when tracing is on) emits a
    Chrome-trace complete span [op.<kind>] with nonzero phases as args. *)

(** {2 Deadline budgets}

    The current operation's absolute deadline on the virtual clock.
    Deliberately independent of {!enable}: deadline-aware degraded serving
    must work even when attribution is off. The router sets the deadline
    at op entry and clears it at op exit; any layer in between may consult
    it to decide whether finishing slowly is still worth anything to the
    caller. Travels with the task across coroutine suspensions like the
    rest of the context. *)

val set_deadline : float option -> unit
(** Install (or clear with [None]) the current op's absolute deadline in
    simulated ns. *)

val current_deadline : unit -> float option

(** {2 Coroutine context switching} *)

type task_ctx
(** A suspended task's attribution context: its live op and open frames.
    The coroutine scheduler detaches the context when a task suspends and
    reinstalls it on resume, so interleaved clients keep separate books
    (an op's absorbing wait frame spans its suspension; other tasks' work
    never leaks into it). *)

val empty_task_ctx : task_ctx
(** The context of a task that has not run yet. *)

val capture_task : unit -> task_ctx
(** Detach and return the current op/frame context, leaving no live op
    (subsequent charges book to the background domain). *)

val restore_task : task_ctx -> unit
(** Reinstall a context captured by {!capture_task}. *)

type snapshot = {
  reads : int;
  writes : int;
  scans : int;
  read_ns : float;
  write_ns : float;
  scan_ns : float;
  op_phases : (phase * float) list;  (** cumulative op-attributed ns *)
  bg_phases : (phase * float) list;  (** cumulative background ns *)
  phase_counts : (phase * int) list;  (** charge/frame event counts *)
}

val snapshot : unit -> snapshot
(** All-zero when disabled. *)

val op_ns : unit -> float
(** Total measured ns across all attributed ops. *)

val accounted_ns : unit -> float
(** Total ns booked to op phases (including [Other]); equals {!op_ns} up
    to clamping of over-attributed ops. *)

val register_metrics : Registry.t -> unit
(** Register [attr.ops.*], [attr.op_ns.*], [attr.phase_ns.*],
    [attr.bg_ns.*] counters and [attr.phase.*] histograms. *)

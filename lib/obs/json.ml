(* Minimal JSON values for the observability exporters.

   The environment ships no JSON library, so the trace sink, the metrics
   snapshot and the bench reports share this hand-rolled printer/parser.
   The parser exists for round-trip tests and for tools that post-process
   traces in OCaml; it accepts exactly the subset the printer emits (all of
   RFC 8259 minus \u escapes beyond the BMP surrogate handling — escapes
   decode to UTF-8 bytes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- Printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_nan x || Float.is_integer (x /. 0.0) then
        (* JSON has no NaN/inf; null is the conventional stand-in. *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- Parsing ----------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> Buffer.add_char buf '"'; advance cur
        | Some '\\' -> Buffer.add_char buf '\\'; advance cur
        | Some '/' -> Buffer.add_char buf '/'; advance cur
        | Some 'n' -> Buffer.add_char buf '\n'; advance cur
        | Some 'r' -> Buffer.add_char buf '\r'; advance cur
        | Some 't' -> Buffer.add_char buf '\t'; advance cur
        | Some 'b' -> Buffer.add_char buf '\b'; advance cur
        | Some 'f' -> Buffer.add_char buf '\012'; advance cur
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then fail cur "truncated \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape"
            in
            cur.pos <- cur.pos + 4;
            (* encode the code point as UTF-8 bytes (BMP only) *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
        | _ -> fail cur "bad escape");
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let raw = String.sub cur.src start (cur.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) raw in
  if is_float then
    match float_of_string_opt raw with
    | Some x -> Float x
    | None -> fail cur "bad number"
  else
    match int_of_string_opt raw with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt raw with
        | Some x -> Float x
        | None -> fail cur "bad number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin advance cur; List [] end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin advance cur; Obj [] end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          fields := field () :: !fields;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let parse s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- Accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

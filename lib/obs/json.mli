(** Minimal JSON values shared by the observability exporters (the
    environment ships no JSON library). The parser accepts exactly the
    subset the printer emits and exists for round-trip tests and OCaml-side
    trace post-processing. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors or a missing key. *)

val to_float_opt : t -> float option
(** Numeric coercion: [Int] widens to float. *)

val to_string_opt : t -> string option

(* The perf-regression comparator: a committed bench JSON baseline versus a
   fresh run of the same experiment.

   The simulation is deterministic, so honest same-code reruns reproduce
   the baseline exactly; tolerances exist to absorb intentional small
   drift (an extra metrics sample, a tweaked constant) without churning
   the committed file. Comparison is direction-aware and only the *worse*
   side gates: a latency metric may improve without bound, but a
   beyond-tolerance move in its bad direction fails the gate.

   Two documents are comparable only when their headers agree: same
   [schema_version], and an identical config-name -> fingerprint map
   (Config.fingerprint covers every behaviour-affecting field, so config
   drift is reported as such instead of surfacing as a fake regression). *)

type direction = Lower_is_better | Higher_is_better

type rule = { pattern : string; tol : float; direction : direction }

let rule ?(tol = 0.05) ?(direction = Lower_is_better) pattern =
  { pattern; tol; direction }

(* Exact name, or a prefix glob written "prefix*". *)
let matches name ~pattern =
  match String.index_opt pattern '*' with
  | None -> String.equal name pattern
  | Some i ->
      let prefix = String.sub pattern 0 i in
      String.length name >= i && String.equal (String.sub name 0 i) prefix

type status = Ok | Improved | Regressed | Missing

type result = {
  metric : string;
  base : float;
  current : float;
  delta : float;  (* signed fractional change relative to the baseline *)
  tol : float;
  status : status;
}

type report = { header_errors : string list; results : result list }

let passed r =
  r.header_errors = []
  && List.for_all
       (fun res -> match res.status with Ok | Improved -> true | _ -> false)
       r.results

(* --- document access ---------------------------------------------------- *)

let obj_fields doc key =
  match Json.member key doc with Some (Json.Obj fields) -> Some fields | _ -> None

let header_errors baseline current =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (match (Json.member "schema_version" baseline, Json.member "schema_version" current) with
  | Some (Json.Int a), Some (Json.Int b) when a = b -> ()
  | Some (Json.Int a), Some (Json.Int b) ->
      err "schema_version mismatch: baseline %d vs current %d" a b
  | _ -> err "schema_version missing from one of the documents");
  (match (obj_fields baseline "configs", obj_fields current "configs") with
  | Some base_cfgs, Some cur_cfgs ->
      List.iter
        (fun (name, fp) ->
          match List.assoc_opt name cur_cfgs with
          | None -> err "config %S present in baseline but not in current run" name
          | Some fp' when fp <> fp' ->
              err "config %S fingerprint changed (baseline %s, current %s)" name
                (match fp with Json.String s -> s | _ -> "?")
                (match fp' with Json.String s -> s | _ -> "?")
          | Some _ -> ())
        base_cfgs;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name base_cfgs) then
            err "config %S present in current run but not in baseline" name)
        cur_cfgs
  | _ -> err "configs object missing from one of the documents");
  List.rev !errs

let find_rule ~rules ~default name =
  match List.find_opt (fun r -> matches name ~pattern:r.pattern) rules with
  | Some r -> r
  | None -> default

let compare_metric ~rule:r name base current =
  let delta =
    if base = 0.0 then if current = 0.0 then 0.0 else Float.infinity
    else (current -. base) /. Float.abs base
  in
  let worse =
    match r.direction with
    | Lower_is_better -> delta > r.tol
    | Higher_is_better -> delta < -.r.tol
  in
  let better =
    match r.direction with
    | Lower_is_better -> delta < -.r.tol
    | Higher_is_better -> delta > r.tol
  in
  let status = if worse then Regressed else if better then Improved else Ok in
  { metric = name; base; current; delta; tol = r.tol; status }

let compare_docs ?(default = rule "*") ~rules baseline current =
  let header_errors = header_errors baseline current in
  let base_metrics = Option.value (obj_fields baseline "metrics") ~default:[] in
  let cur_metrics = Option.value (obj_fields current "metrics") ~default:[] in
  let results =
    List.filter_map
      (fun (name, v) ->
        match Json.to_float_opt v with
        | None -> None
        | Some base -> (
            let r = find_rule ~rules ~default name in
            match Option.bind (List.assoc_opt name cur_metrics) Json.to_float_opt with
            | None ->
                Some
                  {
                    metric = name;
                    base;
                    current = Float.nan;
                    delta = Float.nan;
                    tol = r.tol;
                    status = Missing;
                  }
            | Some current -> Some (compare_metric ~rule:r name base current)))
      base_metrics
  in
  { header_errors; results }

let status_name = function
  | Ok -> "ok"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Missing -> "MISSING"

let pp_result ppf r =
  Fmt.pf ppf "%-36s %14.4g %14.4g %+8.2f%% (tol %.1f%%) %s" r.metric r.base
    r.current (100.0 *. r.delta) (100.0 *. r.tol) (status_name r.status)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter (fun e -> Fmt.pf ppf "header: %s@," e) r.header_errors;
  Fmt.pf ppf "%-36s %14s %14s %8s@," "metric" "baseline" "current" "delta";
  List.iter (fun res -> Fmt.pf ppf "%a@," pp_result res) r.results;
  let bad =
    List.filter
      (fun res -> match res.status with Regressed | Missing -> true | _ -> false)
      r.results
  in
  if passed r then Fmt.pf ppf "perf gate: PASS (%d metric(s))@]" (List.length r.results)
  else
    Fmt.pf ppf "perf gate: FAIL (%d header error(s), %d bad metric(s))@]"
      (List.length r.header_errors) (List.length bad)

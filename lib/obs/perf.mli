(** Perf-regression comparison of two bench JSON documents (a committed
    baseline versus a fresh run). Direction-aware and worse-side-only: a
    metric may improve without bound, but a beyond-tolerance move in its
    bad direction fails. Documents must agree on [schema_version] and on
    the config-name -> fingerprint map before any metric is compared. *)

type direction = Lower_is_better | Higher_is_better

type rule = { pattern : string; tol : float; direction : direction }
(** [pattern] is an exact metric name or a prefix glob ("attr.*"); [tol] a
    fractional tolerance (0.05 = 5%). *)

val rule : ?tol:float -> ?direction:direction -> string -> rule
(** Defaults: 5% tolerance, lower-is-better. *)

val matches : string -> pattern:string -> bool

type status =
  | Ok  (** within tolerance *)
  | Improved  (** beyond tolerance in the good direction (informational) *)
  | Regressed  (** beyond tolerance in the bad direction — gate fails *)
  | Missing  (** in the baseline but absent from the current run — gate fails *)

type result = {
  metric : string;
  base : float;
  current : float;
  delta : float;  (** signed fractional change relative to the baseline *)
  tol : float;
  status : status;
}

type report = { header_errors : string list; results : result list }

val compare_docs : ?default:rule -> rules:rule list -> Json.t -> Json.t -> report
(** Compare every metric of the baseline document against the current one.
    The first rule whose pattern matches decides tolerance and direction;
    [default] (5%, lower-is-better) covers the rest. Metrics only in the
    current run are ignored — refreshing the baseline picks them up. *)

val passed : report -> bool

val status_name : status -> string
val pp_result : result Fmt.t
val pp_report : report Fmt.t

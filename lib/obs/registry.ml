(* Pull-based metrics registry.

   Subsystems register readouts under stable dotted namespaces — the
   engine and its devices ("engine.", "pmem.", "ssd."), the coroutine
   scheduler ("sched."), the compaction pipeline ("pipeline.", including
   the per-stage queue-depth gauges), per-op latency attribution
   ("attr."), the sharded front door ("shard."), fault-injection plans
   ("fault.") and the sanitizers ("sanitize."). Exporters sample every
   readout at exposition time, so the registry adds zero cost to the hot
   paths — the counters themselves already exist in each subsystem's
   stats record. Two expositions: Prometheus text format (dots mapped to
   underscores, histograms as cumulative [le] buckets) and a JSON
   snapshot. *)

type kind = Counter | Gauge

type metric =
  | Int_metric of { kind : kind; help : string; get : unit -> int }
  | Float_metric of { kind : kind; help : string; get : unit -> float }
  | Histogram_metric of { help : string; get : unit -> Util.Histogram.t }

type t = { mutable metrics : (string * metric) list (* newest first *) }

let create () = { metrics = [] }

let check_fresh t name =
  if List.mem_assoc name t.metrics then
    invalid_arg (Printf.sprintf "Obs.Registry: duplicate metric %S" name)

let register_int t ?(kind = Counter) ?(help = "") name get =
  check_fresh t name;
  t.metrics <- (name, Int_metric { kind; help; get }) :: t.metrics

let register_float t ?(kind = Gauge) ?(help = "") name get =
  check_fresh t name;
  t.metrics <- (name, Float_metric { kind; help; get }) :: t.metrics

let register_histogram t ?(help = "") name get =
  check_fresh t name;
  t.metrics <- (name, Histogram_metric { help; get }) :: t.metrics

let names t = List.rev_map fst t.metrics

(* --- JSON snapshot ------------------------------------------------------ *)

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Util.Histogram.count h));
      ("mean", Json.Float (Util.Histogram.mean h));
      ("stddev", Json.Float (Util.Histogram.stddev h));
      ("min", Json.Float (Util.Histogram.min h));
      ("max", Json.Float (Util.Histogram.max h));
      ("p50", Json.Float (Util.Histogram.percentile h 50.0));
      ("p99", Json.Float (Util.Histogram.percentile h 99.0));
      ("p999", Json.Float (Util.Histogram.percentile h 99.9));
    ]

let snapshot_json t =
  Json.Obj
    (List.rev_map
       (fun (name, metric) ->
         ( name,
           match metric with
           | Int_metric { get; _ } -> Json.Int (get ())
           | Float_metric { get; _ } -> Json.Float (get ())
           | Histogram_metric { get; _ } -> histogram_json (get ()) ))
       t.metrics)

(* --- Prometheus text exposition ----------------------------------------- *)

let prom_name name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

let prom_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

(* Prometheus text-format escaping. HELP text escapes backslash and
   newline; label values additionally escape the double quote. *)
let escape_into buf ~quote s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s

let escape_help s =
  let buf = Buffer.create (String.length s) in
  escape_into buf ~quote:false s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  escape_into buf ~quote:true s;
  Buffer.contents buf

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let header name help kind =
    if help <> "" then
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let kind_str = function Counter -> "counter" | Gauge -> "gauge" in
  List.iter
    (fun (raw_name, metric) ->
      let name = prom_name raw_name in
      match metric with
      | Int_metric { kind; help; get } ->
          header name help (kind_str kind);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name (get ()))
      | Float_metric { kind; help; get } ->
          header name help (kind_str kind);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (prom_float (get ())))
      | Histogram_metric { help; get } ->
          let h = get () in
          header name help "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (upper, count) ->
              cumulative := !cumulative + count;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                   (escape_label_value (prom_float upper))
                   !cumulative))
            (Util.Histogram.buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name (Util.Histogram.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name
               (prom_float (Util.Histogram.mean h *. float_of_int (Util.Histogram.count h))));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name (Util.Histogram.count h)))
    (List.rev t.metrics);
  Buffer.contents buf

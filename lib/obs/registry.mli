(** Pull-based metrics registry: subsystems register readouts under stable
    dotted names; exporters sample them at exposition time, so registration
    adds zero cost to hot paths. *)

type t

type kind = Counter | Gauge

val create : unit -> t

val register_int : t -> ?kind:kind -> ?help:string -> string -> (unit -> int) -> unit
(** Default kind is [Counter]. Raises [Invalid_argument] on a duplicate
    name. *)

val register_float : t -> ?kind:kind -> ?help:string -> string -> (unit -> float) -> unit
(** Default kind is [Gauge]. *)

val register_histogram : t -> ?help:string -> string -> (unit -> Util.Histogram.t) -> unit

val names : t -> string list
(** Registration order. *)

val snapshot_json : t -> Json.t
(** One object keyed by metric name; histograms expand to
    count/mean/stddev/min/max/p50/p99/p999. *)

val to_prometheus : t -> string
(** Prometheus text exposition; dots in names map to underscores and
    histograms export cumulative [le] buckets. Help strings and label
    values are escaped per the text-format rules. *)

val escape_help : string -> string
(** Escape a HELP string for the Prometheus text format: backslash and
    newline. *)

val escape_label_value : string -> string
(** Escape a label value: backslash, double quote and newline. *)

(* Periodic time-series snapshots over the simulated clock.

   Benches and the CLI register named float readouts ("throughput",
   "l0_mb", "pm_hit_ratio", ...) and call [tick] from their operation loop;
   whenever the virtual clock has advanced past the sampling interval a row
   is recorded. The result is a Fig. 7-style over-time curve instead of an
   end-of-run aggregate: stalls, hit-ratio decay and queue pressure become
   visible as a series. *)

type t = {
  clock : Sim.Clock.t;
  interval : float;  (* ns *)
  columns : (string * (unit -> float)) list;
  mutable next_due : float;
  mutable rows : (float * float array) list;  (* (ts ns, column values), newest first *)
}

let create ?(interval_s = 1.0) ~clock columns =
  if interval_s <= 0.0 then invalid_arg "Obs.Sampler.create: interval must be positive";
  if columns = [] then invalid_arg "Obs.Sampler.create: no columns";
  {
    clock;
    interval = Sim.Clock.s interval_s;
    columns;
    next_due = Sim.Clock.now clock +. Sim.Clock.s interval_s;
    rows = [];
  }

let record t =
  let values = Array.of_list (List.map (fun (_, get) -> get ()) t.columns) in
  t.rows <- (Sim.Clock.now t.clock, values) :: t.rows

(* One row per elapsed interval boundary at most: a tick after a long stall
   records a single row (the readouts are cumulative, interpolating the gap
   adds no information) and re-arms relative to now. *)
let tick t =
  if Sim.Clock.now t.clock >= t.next_due then begin
    record t;
    t.next_due <- Sim.Clock.now t.clock +. t.interval
  end

let force t = record t

let columns t = List.map fst t.columns

(* Clock rewinds (coroutine-overlap rebates) can stamp a later row with an
   earlier timestamp; exports promise ascending time, so sort stably by
   timestamp rather than trusting insertion order. *)
let rows t =
  List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev t.rows)

let interval_s t = Sim.Clock.to_s t.interval

let to_json t =
  Json.Obj
    [
      ("interval_s", Json.Float (interval_s t));
      ("columns", Json.List (Json.String "ts_s" :: List.map (fun c -> Json.String c) (columns t)));
      ( "rows",
        Json.List
          (List.map
             (fun (ts, values) ->
               Json.List
                 (Json.Float (Sim.Clock.to_s ts)
                 :: Array.to_list (Array.map (fun v -> Json.Float v) values)))
             (rows t)) );
    ]

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," ("ts_s" :: columns t));
  Buffer.add_char buf '\n';
  List.iter
    (fun (ts, values) ->
      Buffer.add_string buf (Printf.sprintf "%.6f" (Sim.Clock.to_s ts));
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf ",%g" v)) values;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

(** Periodic time-series snapshots over the simulated clock: call {!tick}
    from an operation loop and a row of all column readouts is recorded
    whenever the sampling interval has elapsed, yielding over-time curves
    (throughput, L0 bytes, PM hit ratio, ...) instead of end-of-run
    aggregates. *)

type t

val create : ?interval_s:float -> clock:Sim.Clock.t -> (string * (unit -> float)) list -> t
(** [interval_s] defaults to 1 simulated second. Raises [Invalid_argument]
    on a non-positive interval or an empty column list. *)

val tick : t -> unit
(** Record a row if the interval has elapsed since the last one; cheap
    (one float compare) otherwise. A tick after a long stall records one
    row and re-arms relative to now. *)

val force : t -> unit
(** Record a row unconditionally (e.g. a final end-of-run row). *)

val columns : t -> string list
val rows : t -> (float * float array) list
(** (virtual-clock ns, column values) pairs in ascending timestamp order
    (stable-sorted: clock rewinds can record rows out of order). *)

val interval_s : t -> float

val to_json : t -> Json.t
(** [{"interval_s": ..., "columns": ["ts_s", ...], "rows": [[...], ...]}] *)

val to_csv : t -> string

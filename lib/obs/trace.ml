(* Process-wide event tracer driven by the simulated clock.

   Subsystems emit spans (begin/end pairs), complete events (begin + known
   duration, the shape device I/O naturally has), instants and counters;
   every record is stamped with the virtual-clock time in nanoseconds. A
   pluggable sink consumes the events — the JSONL sink writes one
   Chrome-trace-compatible JSON object per line (timestamps converted to
   microseconds, the trace-event format's unit), the memory sink backs
   tests.

   The tracer is disabled by default and the disabled path is a single
   mutable-bool check: no event record, attribute list or timestamp is
   materialised unless a sink is attached (attributes are passed as thunks
   for exactly this reason). Device-level I/O events are the one hot
   category with their own switch ([io_enabled]) so a trace of the
   compaction structure need not drown in per-read records. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type event =
  | Begin of { name : string; tid : int; ts : float; attrs : attr list }
  | End of { name : string; tid : int; ts : float }
  | Complete of { name : string; tid : int; ts : float; dur : float; attrs : attr list }
  | Instant of { name : string; tid : int; ts : float; attrs : attr list }
  | Counter of { name : string; tid : int; ts : float; value : float }

type sink = { emit : event -> unit; flush : unit -> unit; close : unit -> unit }

let make_sink ?(flush = fun () -> ()) ~emit ~close () = { emit; flush; close }

(* --- Global state ------------------------------------------------------ *)

type state = { clock : Sim.Clock.t; sink : sink }

let enabled = ref false
let io_on = ref false
let state : state option ref = ref None

let is_enabled () = !enabled
let io_enabled () = !io_on

let enable ?(io = true) ~clock sink =
  (match !state with Some st -> st.sink.close () | None -> ());
  state := Some { clock; sink };
  enabled := true;
  io_on := io

let disable () =
  (match !state with Some st -> st.sink.close () | None -> ());
  state := None;
  enabled := false;
  io_on := false

(* Push buffered events to durable storage without detaching the sink.
   Crash-simulation legs and exception paths call this so a partial
   trace is still loadable in chrome://tracing. *)
let flush () = match !state with Some st -> st.sink.flush () | None -> ()

let no_attrs () = []

(* --- Emission ----------------------------------------------------------- *)

let attrs_of = function None -> [] | Some thunk -> thunk ()

let span_begin ?(tid = 0) ?attrs name =
  if !enabled then
    match !state with
    | Some st ->
        st.sink.emit
          (Begin { name; tid; ts = Sim.Clock.now st.clock; attrs = attrs_of attrs })
    | None -> ()

let span_end ?(tid = 0) name =
  if !enabled then
    match !state with
    | Some st -> st.sink.emit (End { name; tid; ts = Sim.Clock.now st.clock })
    | None -> ()

let with_span ?(tid = 0) ?attrs name f =
  if not !enabled then f ()
  else begin
    span_begin ~tid ?attrs name;
    match f () with
    | v ->
        span_end ~tid name;
        v
    | exception e ->
        span_end ~tid name;
        raise e
  end

let instant ?(tid = 0) ?attrs name =
  if !enabled then
    match !state with
    | Some st ->
        st.sink.emit
          (Instant { name; tid; ts = Sim.Clock.now st.clock; attrs = attrs_of attrs })
    | None -> ()

let counter ?(tid = 0) name v =
  if !enabled then
    match !state with
    | Some st -> st.sink.emit (Counter { name; tid; ts = Sim.Clock.now st.clock; value = v })
    | None -> ()

let complete ?(tid = 0) ?attrs name ~ts ~dur =
  if !enabled then
    match !state with
    | Some st -> st.sink.emit (Complete { name; tid; ts; dur; attrs = attrs_of attrs })
    | None -> ()

(* Device I/O fast path: a complete event with a bytes attribute, emitted
   only when I/O-level tracing is on. Callers should guard with
   [io_enabled] so the disabled path does not even compute [ts]. *)
let io_event ?(tid = 0) name ~ts ~dur ~bytes =
  if !io_on then
    match !state with
    | Some st -> st.sink.emit (Complete { name; tid; ts; dur; attrs = [ ("bytes", Int bytes) ] })
    | None -> ()

(* --- Sinks -------------------------------------------------------------- *)

let json_of_value = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float x -> Json.Float x
  | Bool b -> Json.Bool b

let json_args attrs = Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

(* Chrome trace-event records: ts/dur in microseconds, phases B/E/X/i/C.
   The virtual clock counts nanoseconds, hence the /1e3. *)
let json_of_event event =
  let us ns = ns /. 1e3 in
  let common name ph tid ts rest =
    Json.Obj
      ([ ("name", Json.String name);
         ("cat", Json.String "pmblade");
         ("ph", Json.String ph);
         ("ts", Json.Float (us ts));
         ("pid", Json.Int 1);
         ("tid", Json.Int tid) ]
      @ rest)
  in
  match event with
  | Begin { name; tid; ts; attrs } -> common name "B" tid ts [ ("args", json_args attrs) ]
  | End { name; tid; ts } -> common name "E" tid ts []
  | Complete { name; tid; ts; dur; attrs } ->
      common name "X" tid ts [ ("dur", Json.Float (us dur)); ("args", json_args attrs) ]
  | Instant { name; tid; ts; attrs } ->
      common name "i" tid ts [ ("s", Json.String "t"); ("args", json_args attrs) ]
  | Counter { name; tid; ts; value } ->
      common name "C" tid ts [ ("args", Json.Obj [ ("value", Json.Float value) ]) ]

let event_of_json json =
  let get name = Json.member name json in
  let str name = Option.bind (get name) Json.to_string_opt in
  let num name = Option.bind (get name) Json.to_float_opt in
  let require o = match o with Some v -> v | None -> invalid_arg "Trace.event_of_json" in
  let name = require (str "name") in
  let tid = match num "tid" with Some t -> int_of_float t | None -> 0 in
  let ts = require (num "ts") *. 1e3 in
  let attrs =
    match get "args" with
    | Some (Json.Obj fields) ->
        List.map
          (fun (k, v) ->
            ( k,
              match v with
              | Json.String s -> Str s
              | Json.Int i -> Int i
              | Json.Float x -> Float x
              | Json.Bool b -> Bool b
              | _ -> invalid_arg "Trace.event_of_json: nested args" ))
          fields
    | _ -> []
  in
  match require (str "ph") with
  | "B" -> Begin { name; tid; ts; attrs }
  | "E" -> End { name; tid; ts }
  | "X" -> Complete { name; tid; ts; dur = require (num "dur") *. 1e3; attrs }
  | "i" -> Instant { name; tid; ts; attrs }
  | "C" -> (
      match attrs with
      | [ ("value", Float v) ] -> Counter { name; tid; ts; value = v }
      | [ ("value", Int v) ] -> Counter { name; tid; ts; value = float_of_int v }
      | _ -> invalid_arg "Trace.event_of_json: counter args")
  | ph -> invalid_arg ("Trace.event_of_json: phase " ^ ph)

let jsonl_sink oc =
  let buf = Buffer.create 256 in
  {
    emit =
      (fun event ->
        Buffer.clear buf;
        Json.to_buffer buf (json_of_event event);
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf);
    flush = (fun () -> Stdlib.flush oc);
    close = (fun () -> close_out oc);
  }

let memory_sink () =
  let events = ref [] in
  let sink =
    {
      emit = (fun e -> events := e :: !events);
      flush = (fun () -> ());
      close = (fun () -> ());
    }
  in
  (sink, fun () -> List.rev !events)

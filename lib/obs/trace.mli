(** Process-wide event tracer stamped with the simulated clock.

    Disabled by default; the disabled path is a single bool check and
    materialises nothing (attributes are thunks). Enable it with a sink —
    {!jsonl_sink} writes one Chrome-trace-compatible JSON object per line
    (wrap in [\[...\]] or [jq -s] to load in chrome://tracing / Perfetto),
    {!memory_sink} collects events for tests. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type event =
  | Begin of { name : string; tid : int; ts : float; attrs : attr list }
  | End of { name : string; tid : int; ts : float }
  | Complete of { name : string; tid : int; ts : float; dur : float; attrs : attr list }
  | Instant of { name : string; tid : int; ts : float; attrs : attr list }
  | Counter of { name : string; tid : int; ts : float; value : float }

type sink = { emit : event -> unit; flush : unit -> unit; close : unit -> unit }

val make_sink :
  ?flush:(unit -> unit) -> emit:(event -> unit) -> close:(unit -> unit) -> unit -> sink
(** [flush] defaults to a no-op. *)

val jsonl_sink : out_channel -> sink
(** One Chrome trace-event JSON object per line; [flush] flushes and
    [close] closes the channel. *)

val memory_sink : unit -> sink * (unit -> event list)
(** The callback returns the events collected so far, oldest first. *)

val enable : ?io:bool -> clock:Sim.Clock.t -> sink -> unit
(** Attach [sink] and start tracing; timestamps come from [clock]. [io]
    (default true) also enables the per-device I/O event category. An
    already-attached sink is closed first. *)

val disable : unit -> unit
(** Stop tracing and close the sink. Idempotent. *)

val flush : unit -> unit
(** Push buffered events to durable storage without detaching the sink,
    so partial traces survive simulated crashes and uncaught exceptions.
    No-op when disabled. *)

val is_enabled : unit -> bool
val io_enabled : unit -> bool

val no_attrs : unit -> attr list

val span_begin : ?tid:int -> ?attrs:(unit -> attr list) -> string -> unit
val span_end : ?tid:int -> string -> unit

val with_span : ?tid:int -> ?attrs:(unit -> attr list) -> string -> (unit -> 'a) -> 'a
(** Begin/end events around [f ()]; the end event is emitted on exceptions
    too. When disabled this is exactly [f ()]. *)

val instant : ?tid:int -> ?attrs:(unit -> attr list) -> string -> unit
val counter : ?tid:int -> string -> float -> unit

val complete : ?tid:int -> ?attrs:(unit -> attr list) -> string -> ts:float -> dur:float -> unit
(** A span with begin time and duration known up front ([ts]/[dur] in
    virtual-clock nanoseconds). *)

val io_event : ?tid:int -> string -> ts:float -> dur:float -> bytes:int -> unit
(** Device I/O fast path: a complete event with a [bytes] attribute,
    dropped unless {!io_enabled}. Guard call sites with {!io_enabled} so the
    disabled path computes nothing. *)

val json_of_event : event -> Json.t
val event_of_json : Json.t -> event
(** Inverse of {!json_of_event}; raises [Invalid_argument] on records the
    JSONL sink would not have written. *)

(* Persistent-memory device simulator.

   The environment has no Optane hardware, so PM is modelled as an in-memory
   arena whose every access charges calibrated latency to the virtual clock
   and updates byte counters. The cost model is calibrated against the
   paper's own measurements (Table I: binary search over 1M entries costs
   3.3 us on PM vs 2.6 us from the DRAM cache vs 22.3 us from SSD) and the
   published Optane characterisation the paper cites: reads a small factor
   slower than DRAM, writes substantially slower and bandwidth-limited.

   Persistence semantics: writes land in a (simulated) CPU-cache domain and
   become durable only after [flush] + [drain] (clwb + sfence). Crash tests
   use [crash] to discard unflushed writes and [recover] to reopen the
   device from its durable contents. *)

type params = {
  capacity : int;            (* bytes *)
  read_access_ns : float;    (* fixed cost of a random read access *)
  write_access_ns : float;   (* fixed cost of a random write access *)
  read_byte_ns : float;      (* per-byte read cost (1/bandwidth) *)
  write_byte_ns : float;     (* per-byte write cost (1/bandwidth) *)
  flush_ns : float;          (* cost of one cache-line flush (clwb) *)
  drain_ns : float;          (* cost of a persistence fence (sfence) *)
}

(* Calibration notes:
   - read: 160 ns + 0.35 ns/B  (~2.9 GB/s streaming, matching Optane read)
   - write: 450 ns + 1.0 ns/B, plus 40 ns clwb per 64 B line: ~0.6 GB/s
     effective persisted-write bandwidth — faster than the SSD's sustained
     write path, as the paper's Table V requires
   - 20-probe binary search = 20 * (160 + ~8B*0.35) ~= 3.3 us  (Table I). *)
let default_params =
  {
    capacity = 128 * 1024 * 1024;
    read_access_ns = 160.0;
    write_access_ns = 450.0;
    read_byte_ns = 0.35;
    write_byte_ns = 1.0;
    flush_ns = 40.0;
    drain_ns = 50.0;
  }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable flushes : int;
  mutable read_time : float;
  mutable write_time : float;
  mutable flush_time : float;
  mutable allocs : int;
  mutable frees : int;
}

let fresh_stats () =
  {
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    flushes = 0;
    read_time = 0.0;
    write_time = 0.0;
    flush_time = 0.0;
    allocs = 0;
    frees = 0;
  }

type region = {
  id : int;
  buf : Bytes.t;
  len : int;
  mutable live : bool;
  mutable durable_upto : int;  (* bytes [0, durable_upto) survived the last flush *)
  mutable shadow : Bytes.t option;  (* durable image, materialised lazily on crash tests *)
}

(* Fault-injection hook points (lib/fault arms these): the flush hook can
   report a flush as partially applied or silently lost, the drain hook can
   abort the run at the fence (a crash site). Both default to absent and
   cost nothing when unset. *)
type flush_outcome =
  | Flush_ok
  | Flush_partial of int
  | Flush_dropped
  | Flush_slow of float

type t = {
  clock : Sim.Clock.t;
  params : params;
  stats : stats;
  mutable used : int;
  mutable next_id : int;
  mutable regions : region list;
  mutable crash_mode : bool;  (* when true, track durable images for crash tests *)
  (* regions freed while in crash mode: their durable bytes are still on
     the medium (a PM "free" is allocator metadata), so a crash can
     resurrect them — exactly what recovery needs when the manifest that
     referenced them was the last durable one *)
  mutable graveyard : region list;
  mutable flush_hook : (region_id:int -> off:int -> len:int -> flush_outcome) option;
  mutable drain_hook : (unit -> unit) option;
  (* persistence-ordering sanitizer (lib/sanitize); attached at creation
     when the global switch is on, detachable per device *)
  mutable san : Sanitize.Pmsan.t option;
}

exception Out_of_space of { requested : int; available : int }

let create ?(params = default_params) clock =
  {
    clock;
    params;
    stats = fresh_stats ();
    used = 0;
    next_id = 0;
    regions = [];
    crash_mode = false;
    graveyard = [];
    flush_hook = None;
    drain_hook = None;
    san =
      (if Sanitize.Control.is_enabled () then Some (Sanitize.Pmsan.create ())
       else None);
  }

let capacity t = t.params.capacity
let used t = t.used
let available t = t.params.capacity - t.used
let stats t = t.stats
let clock t = t.clock

let enable_crash_mode t = t.crash_mode <- true

let set_flush_hook t hook = t.flush_hook <- hook
let set_drain_hook t hook = t.drain_hook <- hook

let sanitizer t = t.san
let set_sanitizer t san = t.san <- san

let commit_point t name =
  match t.san with
  | Some san -> Sanitize.Pmsan.on_commit_point san name
  | None -> ()

let alloc t len =
  if len < 0 then invalid_arg "Pmem.alloc: negative length";
  if len > available t then raise (Out_of_space { requested = len; available = available t });
  let region =
    { id = t.next_id; buf = Bytes.create len; len; live = true; durable_upto = 0; shadow = None }
  in
  if t.crash_mode then region.shadow <- Some (Bytes.create len);
  t.next_id <- t.next_id + 1;
  t.used <- t.used + len;
  t.stats.allocs <- t.stats.allocs + 1;
  t.regions <- region :: t.regions;
  (match t.san with
  | Some san -> Sanitize.Pmsan.on_alloc san ~id:region.id ~len
  | None -> ());
  region

let free t region =
  if region.live then begin
    region.live <- false;
    t.used <- t.used - region.len;
    t.stats.frees <- t.stats.frees + 1;
    t.regions <- List.filter (fun r -> r.id <> region.id) t.regions;
    (* In crash mode the durable bytes outlive the free: keep the region
       resurrectable until the next crash (the allocator metadata that
       would recycle the space is part of the manifest commit). *)
    if t.crash_mode then t.graveyard <- region :: t.graveyard;
    match t.san with
    | Some san -> Sanitize.Pmsan.on_free san ~id:region.id
    | None -> ()
  end

let region_len region = region.len
let region_id region = region.id

let find_region t id = List.find_opt (fun r -> r.id = id) t.regions

let live_regions t = List.rev t.regions

let check_bounds name region off len =
  if not region.live then invalid_arg (name ^ ": region already freed");
  if off < 0 || len < 0 || off + len > region.len then invalid_arg (name ^ ": out of bounds")

let charge_read t len =
  let dt = t.params.read_access_ns +. (float_of_int len *. t.params.read_byte_ns) in
  if Obs.Trace.io_enabled () then
    Obs.Trace.io_event "pm.read" ~ts:(Sim.Clock.now t.clock) ~dur:dt ~bytes:len;
  Sim.Clock.advance t.clock dt;
  Obs.Attr.charge Obs.Attr.Pm_read dt;
  t.stats.reads <- t.stats.reads + 1;
  t.stats.bytes_read <- t.stats.bytes_read + len;
  t.stats.read_time <- t.stats.read_time +. dt

let charge_write t len =
  let dt = t.params.write_access_ns +. (float_of_int len *. t.params.write_byte_ns) in
  if Obs.Trace.io_enabled () then
    Obs.Trace.io_event "pm.write" ~ts:(Sim.Clock.now t.clock) ~dur:dt ~bytes:len;
  Sim.Clock.advance t.clock dt;
  t.stats.writes <- t.stats.writes + 1;
  t.stats.bytes_written <- t.stats.bytes_written + len;
  t.stats.write_time <- t.stats.write_time +. dt

let read t region ~off ~len =
  check_bounds "Pmem.read" region off len;
  charge_read t len;
  (match t.san with
  | Some san -> Sanitize.Pmsan.on_read san ~id:region.id ~off ~len
  | None -> ());
  Bytes.sub_string region.buf off len

let read_byte t region ~off =
  check_bounds "Pmem.read_byte" region off 1;
  charge_read t 1;
  (match t.san with
  | Some san -> Sanitize.Pmsan.on_read san ~id:region.id ~off ~len:1
  | None -> ());
  Bytes.get region.buf off

let write t region ~off src =
  let len = String.length src in
  check_bounds "Pmem.write" region off len;
  charge_write t len;
  (match t.san with
  | Some san -> Sanitize.Pmsan.on_write san ~id:region.id ~off ~len
  | None -> ());
  Bytes.blit_string src 0 region.buf off len

let flush t region ~off ~len =
  check_bounds "Pmem.flush" region off len;
  let lines = (len + 63) / 64 in
  let dt = float_of_int lines *. t.params.flush_ns in
  if Obs.Trace.io_enabled () then
    Obs.Trace.io_event "pm.flush" ~ts:(Sim.Clock.now t.clock) ~dur:dt ~bytes:len;
  Sim.Clock.advance t.clock dt;
  t.stats.flushes <- t.stats.flushes + lines;
  t.stats.flush_time <- t.stats.flush_time +. dt;
  (* The sanitizer records the program-issued clwb (before fault injection:
     a dropped flush is the medium lying, not an ordering bug). *)
  (match t.san with
  | Some san -> Sanitize.Pmsan.on_flush san ~id:region.id ~off ~len
  | None -> ());
  let persisted =
    match t.flush_hook with
    | None -> len
    | Some hook -> (
        (* The hook may raise (crash at this site), shrink/void the
           persisted range (partial flush, dropped clwb), or inflate the
           flush latency (a fail-slow DIMM: the data persists, late). *)
        match hook ~region_id:region.id ~off ~len with
        | Flush_ok -> len
        | Flush_partial n -> max 0 (min n len)
        | Flush_dropped -> 0
        | Flush_slow mult ->
            let extra = Float.max 0.0 ((mult -. 1.0) *. dt) in
            Sim.Clock.advance t.clock extra;
            t.stats.flush_time <- t.stats.flush_time +. extra;
            len)
  in
  if persisted > 0 then begin
    (match region.shadow with
    | Some shadow -> Bytes.blit region.buf off shadow off persisted
    | None -> ());
    region.durable_upto <- max region.durable_upto (off + persisted)
  end

let drain t =
  (* The hook may raise (crash between flush and fence): the sanitizer
     must only see fences that actually executed, so it runs after. *)
  (match t.drain_hook with Some hook -> hook () | None -> ());
  (match t.san with Some san -> Sanitize.Pmsan.on_drain san | None -> ());
  Sim.Clock.advance t.clock t.params.drain_ns

(* Crash simulation: unflushed bytes revert to the durable image, and
   regions freed since crash mode was enabled come back (their durable
   contents were never overwritten; recovery's orphan GC reclaims the ones
   no manifest references). Only meaningful when crash mode was enabled
   before the writes. *)
let crash t =
  let resurrected = t.graveyard in
  List.iter
    (fun region ->
      region.live <- true;
      t.used <- t.used + region.len;
      t.regions <- region :: t.regions)
    t.graveyard;
  t.graveyard <- [];
  List.iter
    (fun region ->
      match region.shadow with
      | Some shadow -> Bytes.blit shadow 0 region.buf 0 region.len
      | None -> ())
    t.regions;
  (* Every region reverted to its durable image: nothing is outstanding in
     the persistence domain any more, and resurrected regions need fresh
     (clean) shadows. *)
  match t.san with
  | None -> ()
  | Some san ->
      Sanitize.Pmsan.on_crash san;
      List.iter
        (fun region ->
          Sanitize.Pmsan.on_alloc san ~id:region.id ~len:region.len)
        resurrected

let durable_upto region = region.durable_upto

(* Zero-cost peek for tests and invariant checks; charges no simulated time. *)
let unsafe_peek region ~off ~len = Bytes.sub_string region.buf off len

(* Medium-fault injection: damage bytes in place without charging the
   virtual clock — the rot belongs to the medium, not the workload. The
   durable shadow is damaged too, so the corruption survives a crash's
   revert-to-durable-image (bit rot is not undone by power loss). *)
let corrupt_region ?(len = 1) ?(mode = `Flip) _t region ~off =
  if len < 1 then invalid_arg "Pmem.corrupt_region: len < 1";
  if off < 0 || off + len > region.len then
    invalid_arg "Pmem.corrupt_region: out of bounds";
  let damage buf =
    match mode with
    | `Flip ->
        for i = off to off + len - 1 do
          Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0xff))
        done
    | `Zero -> Bytes.fill buf off len '\000'
  in
  damage region.buf;
  match region.shadow with Some shadow -> damage shadow | None -> ()

(* Stable dotted metric names for the registry exporters; every readout
   pulls from [t.stats] at exposition time. *)
let register_metrics reg ?(prefix = "pmem") t =
  let name suffix = prefix ^ "." ^ suffix in
  let open Obs.Registry in
  register_int reg (name "reads") ~help:"PM read accesses" (fun () -> t.stats.reads);
  register_int reg (name "writes") ~help:"PM write accesses" (fun () -> t.stats.writes);
  register_int reg (name "bytes_read") ~help:"bytes read from PM media" (fun () ->
      t.stats.bytes_read);
  register_int reg (name "bytes_written") ~help:"bytes written to PM media" (fun () ->
      t.stats.bytes_written);
  register_int reg (name "flushes") ~help:"cache-line flushes (clwb)" (fun () ->
      t.stats.flushes);
  register_float reg (name "read_time_ns") ~kind:Counter
    ~help:"simulated ns spent in PM reads" (fun () -> t.stats.read_time);
  register_float reg (name "write_time_ns") ~kind:Counter
    ~help:"simulated ns spent in PM writes" (fun () -> t.stats.write_time);
  register_float reg (name "flush_time_ns") ~kind:Counter
    ~help:"simulated ns spent in cache-line flushes" (fun () -> t.stats.flush_time);
  register_int reg (name "allocs") ~help:"PM region allocations" (fun () ->
      t.stats.allocs);
  register_int reg (name "frees") ~help:"PM region frees" (fun () -> t.stats.frees);
  register_int reg (name "used_bytes") ~kind:Gauge ~help:"PM bytes currently allocated"
    (fun () -> t.used);
  register_int reg (name "capacity_bytes") ~kind:Gauge ~help:"configured PM capacity"
    (fun () -> t.params.capacity);
  register_int reg (name "regions") ~kind:Gauge ~help:"live PM regions" (fun () ->
      List.length t.regions)

let reset_stats t =
  let s = t.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.bytes_read <- 0;
  s.bytes_written <- 0;
  s.flushes <- 0;
  s.read_time <- 0.0;
  s.write_time <- 0.0;
  s.flush_time <- 0.0;
  s.allocs <- 0;
  s.frees <- 0

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>reads: %d (%d B, %a)@,writes: %d (%d B, %a)@,flushes: %d@,allocs/frees: %d/%d@]"
    s.reads s.bytes_read Sim.Clock.pp_duration s.read_time s.writes s.bytes_written
    Sim.Clock.pp_duration s.write_time s.flushes s.allocs s.frees

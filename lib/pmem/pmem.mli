(** Persistent-memory device simulator.

    Models Intel Optane as an in-memory arena whose every access charges
    calibrated latency to the virtual clock: fixed per-access costs (reads a
    small factor slower than DRAM, writes ~3x slower than reads) plus
    per-byte bandwidth terms, matching the paper's Table I measurements.
    Writes become durable only after {!flush} + {!drain}; {!crash} discards
    unflushed bytes for recovery tests. *)

type params = {
  capacity : int;
  read_access_ns : float;
  write_access_ns : float;
  read_byte_ns : float;
  write_byte_ns : float;
  flush_ns : float;
  drain_ns : float;
}

val default_params : params
(** 128 MiB capacity (the paper's 128 GB scaled x1000 down), Optane-like
    latency/bandwidth constants. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable flushes : int;
  mutable read_time : float;
  mutable write_time : float;
  mutable flush_time : float;
  mutable allocs : int;
  mutable frees : int;
}

type region
(** A contiguous allocation on the device (one PM table lives in one
    region). *)

type t

exception Out_of_space of { requested : int; available : int }

val create : ?params:params -> Sim.Clock.t -> t
val capacity : t -> int
val used : t -> int
val available : t -> int
val stats : t -> stats
val clock : t -> Sim.Clock.t

val alloc : t -> int -> region
(** Raises {!Out_of_space} when the device cannot fit the request. *)

val free : t -> region -> unit
val region_len : region -> int

val region_id : region -> int
(** Stable identifier, usable in a manifest to relocate the region after a
    restart. *)

val find_region : t -> int -> region option
val live_regions : t -> region list
(** Live regions in allocation order. *)

val read : t -> region -> off:int -> len:int -> string
val read_byte : t -> region -> off:int -> char
val write : t -> region -> off:int -> string -> unit

val flush : t -> region -> off:int -> len:int -> unit
(** Simulated clwb over the range: charges per-cache-line cost and marks the
    bytes durable. *)

val drain : t -> unit
(** Simulated sfence. *)

val enable_crash_mode : t -> unit
(** Track durable images so {!crash} can revert unflushed writes. Must be
    called before the regions under test are allocated. In crash mode,
    {!free}d regions stay resurrectable until the next {!crash} (a PM free
    is allocator metadata; the bytes remain on the medium). *)

val crash : t -> unit
(** Revert every region to its last flushed image and resurrect regions
    freed since crash mode was enabled (crash mode only). Recovery is
    expected to garbage-collect resurrected regions no manifest names. *)

(** {1 Fault-injection hooks}

    Lightweight hook points armed by [Fault.Plan] (lib/fault); both default
    to [None] and cost one option check when unset. Hooks may raise to
    model a crash at the site. *)

type flush_outcome =
  | Flush_ok  (** the whole range persists *)
  | Flush_partial of int  (** only the first [n] bytes persist *)
  | Flush_dropped  (** the flush is silently lost (missing clwb) *)
  | Flush_slow of float
      (** fail-slow DIMM: the range persists but the clwb costs this
          multiple of its normal latency (gray fault, no data loss) *)

val set_flush_hook :
  t -> (region_id:int -> off:int -> len:int -> flush_outcome) option -> unit
(** Consulted on every {!flush} after cost accounting; the outcome decides
    how much of the range reaches the durable image. *)

val set_drain_hook : t -> (unit -> unit) option -> unit
(** Consulted at every {!drain} (persistence fence) before the cost is
    charged; raising models a crash between flush and fence. *)

val durable_upto : region -> int

(** {1 Persistence-ordering sanitizer}

    When [Sanitize.Control] is enabled at device creation, every
    alloc/free/write/flush/drain/read is mirrored into a
    [Sanitize.Pmsan.t] shadow checker, and {!commit_point} declares the
    engine's durability barriers to it. Near-zero cost when detached. *)

val commit_point : t -> string -> unit
(** Declare a durability barrier (e.g. ["wal.sync"], ["pmtable.seal"],
    ["manifest.install"]): the sanitizer reports any PM line that is not
    yet fenced here. No-op without an attached sanitizer. *)

val sanitizer : t -> Sanitize.Pmsan.t option
val set_sanitizer : t -> Sanitize.Pmsan.t option -> unit
(** Attach or detach ([None]) the checker; [Config.sanitize = false]
    detaches it at engine creation. *)

val unsafe_peek : region -> off:int -> len:int -> string
(** Test-only read that charges no simulated time. *)

val corrupt_region :
  ?len:int -> ?mode:[ `Flip | `Zero ] -> t -> region -> off:int -> unit
(** Fault injection: damage [len] bytes (default 1) at [off] in place —
    [`Flip] inverts every byte, [`Zero] models a zeroed page. Latency-free
    (the fault is the medium's, not the workload's) and applied to the
    durable shadow as well, so the damage survives {!crash}. *)

val register_metrics : Obs.Registry.t -> ?prefix:string -> t -> unit
(** Register this device's counters and gauges under [prefix] (default
    ["pmem"]) dotted names, e.g. [pmem.bytes_written]. *)

val reset_stats : t -> unit
val pp_stats : stats Fmt.t

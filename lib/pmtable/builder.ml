(* Buffered sequential writer onto a PM region.

   Table builders append through a DRAM staging buffer that is written to
   the device in [chunk] -sized pieces, amortising the per-access write cost
   the way real PM code batches ntstore/clwb. Spills flush (clwb) only the
   cache lines they complete; a line straddling two chunks is flushed once,
   by the spill that fills it (or by [finish] for the final partial line) —
   flushing it early would be wasted work, since the next chunk rewrites it
   and forces another write-back before the closing fence. pmsan counts
   exactly that pattern as a redundant flush. *)

type t = {
  dev : Pmem.t;
  region : Pmem.region;
  chunk : int;
  staging : Buffer.t;
  mutable written : int;      (* bytes already on the device *)
  mutable flushed_upto : int; (* line-aligned clwb high-water mark *)
}

let default_chunk = 4096
let line_bytes = 64

(* Planted-bug kill switches (cf. [Pm_table.verify_checksums]): drop the
   clwb of spilled chunks, or the closing fence, so the sanitizer tests
   can prove pmsan catches an unpersisted seal. Never set in production
   code. *)
let chaos_skip_flush = ref false
let chaos_skip_drain = ref false

let create ?(chunk = default_chunk) dev region =
  {
    dev;
    region;
    chunk;
    staging = Buffer.create chunk;
    written = 0;
    flushed_upto = 0;
  }

let position t = t.written + Buffer.length t.staging

(* Write back the completed lines in [flushed_upto, upto): each line gets
   exactly one clwb per build. *)
let flush_upto t upto =
  if upto > t.flushed_upto && not !chaos_skip_flush then
    Pmem.flush t.dev t.region ~off:t.flushed_upto ~len:(upto - t.flushed_upto);
  t.flushed_upto <- max t.flushed_upto upto

let spill t =
  let data = Buffer.contents t.staging in
  if String.length data > 0 then begin
    Pmem.write t.dev t.region ~off:t.written data;
    t.written <- t.written + String.length data;
    Buffer.clear t.staging;
    (* leave a partial tail line dirty: the next chunk finishes it *)
    flush_upto t (t.written land lnot (line_bytes - 1))
  end

let add_string t s =
  Buffer.add_string t.staging s;
  if Buffer.length t.staging >= t.chunk then spill t

let add_char t c =
  Buffer.add_char t.staging c;
  if Buffer.length t.staging >= t.chunk then spill t

let add_varint t v =
  Util.Varint.write t.staging v;
  if Buffer.length t.staging >= t.chunk then spill t

(* Fixed-width big-endian u32, for binary-searchable offset slots. *)
let add_u32 t v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Builder.add_u32: out of range";
  add_char t (Char.chr ((v lsr 24) land 0xff));
  add_char t (Char.chr ((v lsr 16) land 0xff));
  add_char t (Char.chr ((v lsr 8) land 0xff));
  add_char t (Char.chr (v land 0xff))

let add_u16 t v =
  if v < 0 || v > 0xFFFF then invalid_arg "Builder.add_u16: out of range";
  add_char t (Char.chr ((v lsr 8) land 0xff));
  add_char t (Char.chr (v land 0xff))

let finish t =
  spill t;
  flush_upto t t.written;  (* the final partial line *)
  if not !chaos_skip_drain then Pmem.drain t.dev;
  (* the seal is a durability barrier: the table must be fully fenced
     before anything references it *)
  (* pmlint:allow flush-before-commit: the only unflushed paths are the
     chaos_skip_flush/chaos_skip_drain kill switches above, planted so the
     sanitizer tests can prove pmsan catches an unpersisted seal; pmsan
     checks the real protocol on every sanitized run *)
  Pmem.commit_point t.dev "pmtable.seal";
  t.written

let read_u32 s pos =
  let b k = Char.code s.[pos + k] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let read_u16 s pos =
  let b k = Char.code s.[pos + k] in
  (b 0 lsl 8) lor b 1

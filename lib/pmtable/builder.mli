(** Buffered sequential writer onto a PM region.

    Appends through a DRAM staging buffer spilled in chunks, amortising the
    per-access PM write cost and flushing (clwb) each chunk so the table is
    durable once {!finish} drains. *)

type t

val default_chunk : int

val chaos_skip_flush : bool ref
(** Planted-bug kill switch for sanitizer tests: drop the clwb of spilled
    chunks, proving pmsan reports the seal. Default [false]; never set
    outside tests. *)

val chaos_skip_drain : bool ref
(** Companion switch: drop the closing fence of {!finish}. *)

val create : ?chunk:int -> Pmem.t -> Pmem.region -> t

val position : t -> int
(** Bytes appended so far (device + staging). *)

val add_string : t -> string -> unit
val add_char : t -> char -> unit
val add_varint : t -> int -> unit
val add_u32 : t -> int -> unit
val add_u16 : t -> int -> unit

val finish : t -> int
(** Spill the staging buffer, drain the persistence fence, declare the
    ["pmtable.seal"] commit point to the sanitizer, and return the total
    byte length written. *)

(** Fixed-width decoders matching [add_u32]/[add_u16]. *)

val read_u32 : string -> int -> int
val read_u16 : string -> int -> int

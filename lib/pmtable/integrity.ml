(* Typed integrity failure for PM tables.

   Raised by the table read paths when a checksum comparison fails, carrying
   enough context for the engine to quarantine the damaged region and keep
   serving: the region, which of the three layers (or the footer) failed,
   and the group index where applicable. Deliberately a separate tiny module
   so both the table variants (raisers) and the engine (catcher) can name it
   without a dependency cycle. *)

exception Corrupted of { region_id : int; layer : string; index : int }

let to_string = function
  | Corrupted { region_id; layer; index } ->
      Printf.sprintf "PM region %d: corrupt %s layer (group %d)" region_id layer index
  | _ -> invalid_arg "Integrity.to_string"

let () =
  Printexc.register_printer (function
    | Corrupted _ as e -> Some (to_string e)
    | _ -> None)

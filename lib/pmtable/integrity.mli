(** Typed integrity failure for PM tables: a checksum comparison failed on
    a read. The engine catches this to quarantine the region instead of
    crashing. *)

exception Corrupted of { region_id : int; layer : string; index : int }
(** [layer] is one of ["entry"], ["prefix"], ["meta"], ["footer"]; [index]
    is the group index for the per-group layers (0 otherwise). *)

val to_string : exn -> string
(** Render {!Corrupted}; raises [Invalid_argument] on other exceptions. *)

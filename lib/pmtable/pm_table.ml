(* The paper's three-layer compressed PM table (§IV-A, Fig. 2b).

   Layout on the region, in write order:

     [ entry layer ][ prefix layer ][ meta layer ]

   - meta layer: one record per run of keys sharing a {tableID} tag ("t" +
     4 digits at the head of database keys). The record stores the run's
     *extended* tag — the tag plus the run's common key prefix (zero-padded
     id digits, index-column headers, ...) — so the superfluous coding
     information is stored once and the bytes that remain in the groups
     discriminate early.

   - prefix layer: one fixed-width record per group of [group_size] keys:

       slot (prefix_len bytes of the group's first stripped key, \000-pad)
       u32 entry-layer offset | u16 entry count
       u8 shared-prefix length | u16 meta index

     Slots are monotone truncations of sorted stripped keys, so the layer
     is binary-searchable with one PM access per probe; when two slots tie,
     the probe reads the group's first entry (a second access) to compare
     exactly.

   - entry layer: per group, entries back-to-back with the group's shared
     prefix removed: varint suffix_len, suffix, varint seq, kind byte,
     varint value_len, value.

   Lookup: locate the run in the (handle-cached) meta layer by extended-tag
   prefix, binary-search the run's groups, scan the landing group
   sequentially, and spill into following groups only while their first key
   still equals the probe's (version runs can cross group boundaries).

   Integrity: every layer is checksummed. Each fixed-width prefix record
   carries an inline CRC32 (verified on every [read_record]); each group's
   entry-layer extent has a CRC32 in a dedicated layer that the handle
   caches in DRAM (verified on every [read_group], costing no extra PM
   access); the meta layer and the footer carry CRC32s verified at
   [open_existing] and re-checked from the medium by [verify] (scrub). A
   failed comparison raises [Integrity.Corrupted] so the engine can
   quarantine the region instead of serving garbage. The only unverified
   read is [read_first_key]'s tie-break peek — it never feeds served data
   (the group read that follows is verified); rot there is caught by the
   next scrub. *)

type meta = { tag : string; g_lo : int; g_hi : int }

type t = {
  bloom : Bloom.t option;  (* format v2: screens absent keys before any PM access *)
  dev : Pmem.t;
  region : Pmem.region;
  count : int;
  group_size : int;
  prefix_len : int;
  group_count : int;
  entry_len : int;   (* entry layer byte length *)
  prefix_off : int;  (* start of the prefix layer *)
  meta_off : int;    (* start of the meta layer *)
  metas : meta array;  (* handle-side cache of the meta layer *)
  gcrcs : int array;   (* handle-side cache of the per-group entry CRCs *)
  meta_crc : int;
  min_key : string;
  max_key : string;
  min_seq : int;
  max_seq : int;
  payload_bytes : int;  (* uncompressed logical size *)
}

(* slot | u32 offset | u16 count | u8 shared | u16 meta_idx | u32 crc *)
let record_width t = t.prefix_len + 13

(* Kill switch for every CRC comparison in this module — exists so a fault
   sweep can plant the "forgot to verify checksums" bug and prove it gets
   caught. Leave it [true]. *)
let verify_checksums = ref true
let encode_cpu_ns = 30.0
let decode_cpu_ns = 25.0
let max_extended_tag = 40
let charge_cpu dev ns = Sim.Clock.advance (Pmem.clock dev) ns

(* Region footer: u32 entry_len | u32 meta_off | u32 group_count |
   u8 prefix_len | u8 group_size | u32 meta_crc | u32 magic |
   u32 footer_crc (over the preceding 22 bytes). The per-group entry-CRC
   layer sits between the prefix and meta layers: u32 per group.

   Format v2 ("PMB2") appends a serialized Bloom filter to the meta layer,
   after the table statistics, so it is covered by the existing meta CRC;
   everything else is byte-identical to v1 and [open_existing] accepts
   both magics. A table built with [bloom_bits_per_key = 0] is written in
   v1 form. *)
let footer_bytes = 26
let magic = 0x504D4254 (* "PMBT", format v1: no bloom *)
let magic_v2 = 0x504D4232 (* "PMB2": bloom appended to the meta layer *)

(* Module-wide telemetry (pattern of [Manifest.fallback_count]): how many
   gets consulted a PM bloom, and how many were answered "absent" without
   touching PM. The bench divides these for the filter rate. *)
let bloom_probes = ref 0
let bloom_negatives = ref 0
let default_bloom_bits_per_key = 10

(* {tableID} extraction: keys built by Util.Keys open with 't' + 4 digits. *)
let extract_tag key =
  if
    String.length key >= 5
    && key.[0] = 't'
    && key.[1] >= '0' && key.[1] <= '9'
    && key.[2] >= '0' && key.[2] <= '9'
    && key.[3] >= '0' && key.[3] <= '9'
    && key.[4] >= '0' && key.[4] <= '9'
  then String.sub key 0 5
  else ""

let pad_slot prefix_len s =
  if String.length s >= prefix_len then String.sub s 0 prefix_len
  else s ^ String.make (prefix_len - String.length s) '\000'

let strip prefix key = String.sub key (String.length prefix) (String.length key - String.length prefix)

type group_plan = {
  gp_meta : int;
  gp_slot : string;
  gp_shared : int;  (* extra shared bytes stripped beyond the extended tag *)
  gp_entries : Util.Kv.entry array;
}

let check_sorted name entries =
  let n = Array.length entries in
  for i = 1 to n - 1 do
    if Util.Kv.compare_entry entries.(i - 1) entries.(i) > 0 then
      invalid_arg (name ^ ": input not sorted by Kv.compare_entry")
  done

let default_prefix_len = 24

let build ?(group_size = 8) ?(prefix_len = default_prefix_len)
    ?(bloom_bits_per_key = default_bloom_bits_per_key) dev
    (entries : Util.Kv.entry array) =
  let n = Array.length entries in
  if n = 0 then invalid_arg "Pm_table.build: empty input";
  check_sorted "Pm_table.build" entries;
  (* 1. Cut into tag runs; per run compute the extended tag (tag + common
     prefix of the whole run, capped); then cut runs into groups. *)
  let metas = ref [] and groups = ref [] and group_count = ref 0 in
  let i = ref 0 in
  while !i < n do
    let tag = extract_tag entries.(!i).Util.Kv.key in
    let run_start = !i in
    while !i < n && extract_tag entries.(!i).Util.Kv.key = tag do
      incr i
    done;
    let run_end = !i in
    let extended =
      let first = entries.(run_start).Util.Kv.key
      and last = entries.(run_end - 1).Util.Kv.key in
      let shared = Util.Keys.common_prefix_len first last in
      let len = min max_extended_tag (max (String.length tag) shared) in
      String.sub first 0 len
    in
    let meta_idx = List.length !metas in
    let g_lo = !group_count in
    let j = ref run_start in
    while !j < run_end do
      let lo = !j and hi = min run_end (!j + group_size) in
      let stripped_first = strip extended entries.(lo).Util.Kv.key in
      let stripped_last = strip extended entries.(hi - 1).Util.Kv.key in
      let shared =
        min prefix_len (Util.Keys.common_prefix_len stripped_first stripped_last)
      in
      groups :=
        {
          gp_meta = meta_idx;
          gp_slot = pad_slot prefix_len stripped_first;
          gp_shared = shared;
          gp_entries = Array.sub entries lo (hi - lo);
        }
        :: !groups;
      incr group_count;
      j := hi
    done;
    metas := { tag = extended; g_lo; g_hi = !group_count } :: !metas
  done;
  let metas = Array.of_list (List.rev !metas) in
  let groups = Array.of_list (List.rev !groups) in
  (* 2. Encode the three layers into DRAM staging, charging encode CPU. *)
  let entry_layer = Buffer.create 4096 in
  let group_offsets = Array.make (Array.length groups) 0 in
  let min_seq = ref max_int and max_seq = ref min_int and payload = ref 0 in
  Array.iteri
    (fun g { gp_shared; gp_entries; gp_meta; _ } ->
      group_offsets.(g) <- Buffer.length entry_layer;
      let strip_len = String.length metas.(gp_meta).tag + gp_shared in
      Array.iter
        (fun (e : Util.Kv.entry) ->
          let suffix = String.sub e.key strip_len (String.length e.key - strip_len) in
          Util.Varint.write_string entry_layer suffix;
          Util.Varint.write entry_layer e.seq;
          Buffer.add_char entry_layer
            (match e.kind with Util.Kv.Put -> '\001' | Delete -> '\000');
          Util.Varint.write_string entry_layer e.value;
          payload := !payload + Util.Kv.encoded_size e;
          if e.seq < !min_seq then min_seq := e.seq;
          if e.seq > !max_seq then max_seq := e.seq)
        gp_entries)
    groups;
  charge_cpu dev (float_of_int n *. encode_cpu_ns);
  (* Per-group CRCs over the entry-layer extents, cached in the handle and
     persisted in their own layer between the prefix and meta layers. *)
  let entry_str = Buffer.contents entry_layer in
  let gcrcs =
    Array.init (Array.length groups) (fun g ->
        let start = group_offsets.(g) in
        let stop =
          if g + 1 < Array.length groups then group_offsets.(g + 1)
          else String.length entry_str
        in
        Util.Crc32.update 0 entry_str start (stop - start))
  in
  let prefix_layer = Buffer.create 1024 in
  let rec_buf = Buffer.create 64 in
  Array.iteri
    (fun g { gp_slot; gp_shared; gp_entries; gp_meta } ->
      Buffer.clear rec_buf;
      Buffer.add_string rec_buf gp_slot;
      let add_u32 v =
        Buffer.add_char rec_buf (Char.chr ((v lsr 24) land 0xff));
        Buffer.add_char rec_buf (Char.chr ((v lsr 16) land 0xff));
        Buffer.add_char rec_buf (Char.chr ((v lsr 8) land 0xff));
        Buffer.add_char rec_buf (Char.chr (v land 0xff))
      and add_u16 v =
        Buffer.add_char rec_buf (Char.chr ((v lsr 8) land 0xff));
        Buffer.add_char rec_buf (Char.chr (v land 0xff))
      in
      add_u32 group_offsets.(g);
      add_u16 (Array.length gp_entries);
      Buffer.add_char rec_buf (Char.chr gp_shared);
      add_u16 gp_meta;
      (* inline record CRC: every prefix-layer probe self-verifies *)
      add_u32 (Util.Crc32.string (Buffer.contents rec_buf));
      Buffer.add_buffer prefix_layer rec_buf)
    groups;
  let gcrc_layer = Buffer.create (4 * Array.length groups) in
  Array.iter
    (fun crc ->
      Buffer.add_char gcrc_layer (Char.chr ((crc lsr 24) land 0xff));
      Buffer.add_char gcrc_layer (Char.chr ((crc lsr 16) land 0xff));
      Buffer.add_char gcrc_layer (Char.chr ((crc lsr 8) land 0xff));
      Buffer.add_char gcrc_layer (Char.chr (crc land 0xff)))
    gcrcs;
  (* Meta layer: the tag records, then the table-level statistics the
     handle caches (counts, seq range, payload), so a table can be reopened
     from its region alone after a restart. *)
  let meta_layer = Buffer.create 128 in
  Util.Varint.write meta_layer (Array.length metas);
  Array.iter
    (fun { tag; g_lo; g_hi } ->
      Util.Varint.write_string meta_layer tag;
      Util.Varint.write meta_layer g_lo;
      Util.Varint.write meta_layer g_hi)
    metas;
  Util.Varint.write meta_layer n;
  Util.Varint.write meta_layer !min_seq;
  Util.Varint.write meta_layer !max_seq;
  Util.Varint.write meta_layer !payload;
  (* Format v2: the bloom rides in the meta layer so the existing meta CRC
     covers it; bits_per_key = 0 keeps the byte-identical v1 layout. *)
  let bloom =
    if bloom_bits_per_key <= 0 then None
    else
      Some
        (Bloom.of_keys ~bits_per_key:bloom_bits_per_key
           (Array.to_list (Array.map (fun (e : Util.Kv.entry) -> e.key) entries)))
  in
  (match bloom with
  | Some b -> Util.Varint.write_string meta_layer (Bloom.serialize b)
  | None -> ());
  (* 3. Allocate and write through the buffered builder; a fixed-width
     footer closes the region (see open_existing). *)
  let entry_len = Buffer.length entry_layer in
  let meta_off = entry_len + Buffer.length prefix_layer + Buffer.length gcrc_layer in
  let meta_crc = Util.Crc32.string (Buffer.contents meta_layer) in
  let footer = Buffer.create footer_bytes in
  let add_u32 v =
    Buffer.add_char footer (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char footer (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char footer (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char footer (Char.chr (v land 0xff))
  in
  add_u32 entry_len;
  add_u32 meta_off;
  add_u32 (Array.length groups);
  Buffer.add_char footer (Char.chr prefix_len);
  Buffer.add_char footer (Char.chr group_size);
  add_u32 meta_crc;
  add_u32 (match bloom with Some _ -> magic_v2 | None -> magic);
  add_u32 (Util.Crc32.string (Buffer.contents footer));
  assert (Buffer.length footer = footer_bytes);
  let total = meta_off + Buffer.length meta_layer + footer_bytes in
  let region = Pmem.alloc dev total in
  let builder = Builder.create dev region in
  Builder.add_string builder (Buffer.contents entry_layer);
  Builder.add_string builder (Buffer.contents prefix_layer);
  Builder.add_string builder (Buffer.contents gcrc_layer);
  Builder.add_string builder (Buffer.contents meta_layer);
  Builder.add_string builder (Buffer.contents footer);
  let written = Builder.finish builder in
  assert (written = total);
  {
    bloom;
    dev;
    region;
    count = n;
    group_size;
    prefix_len;
    group_count = Array.length groups;
    entry_len;
    prefix_off = entry_len;
    meta_off;
    metas;
    gcrcs;
    meta_crc;
    min_key = entries.(0).key;
    max_key = entries.(n - 1).key;
    min_seq = !min_seq;
    max_seq = !max_seq;
    payload_bytes = !payload;
  }

let count t = t.count
let byte_size t = Pmem.region_len t.region
let payload_bytes t = t.payload_bytes
let min_key t = t.min_key
let max_key t = t.max_key
let seq_range t = (t.min_seq, t.max_seq)
let free t = Pmem.free t.dev t.region
let region_id t = Pmem.region_id t.region
let group_count t = t.group_count

type record = { slot : string; offset : int; count_ : int; shared : int; meta_idx : int }

(* One PM access: the fixed-width prefix-layer record of group [g],
   verified against its inline CRC. *)
let read_record t g =
  let w = record_width t in
  let raw = Pmem.read t.dev t.region ~off:(t.prefix_off + (g * w)) ~len:w in
  if
    !verify_checksums
    && Builder.read_u32 raw (w - 4) <> Util.Crc32.update 0 raw 0 (w - 4)
  then
    raise
      (Integrity.Corrupted
         { region_id = Pmem.region_id t.region; layer = "prefix"; index = g });
  {
    slot = String.sub raw 0 t.prefix_len;
    offset = Builder.read_u32 raw t.prefix_len;
    count_ = Builder.read_u16 raw (t.prefix_len + 4);
    shared = Char.code raw.[t.prefix_len + 6];
    meta_idx = Builder.read_u16 raw (t.prefix_len + 7);
  }

let group_prefix t record =
  let tag = t.metas.(record.meta_idx).tag in
  tag ^ String.sub record.slot 0 record.shared

(* The first entry's key of group [g]: read the head of the group's extent
   for the length varint, then the suffix itself (a second access only when
   the suffix outruns the peek). Used only to break slot ties. *)
let read_first_key t record =
  let peek = min 16 (t.entry_len - record.offset) in
  let head = Pmem.read t.dev t.region ~off:record.offset ~len:peek in
  let suffix_len, p = Util.Varint.read head 0 in
  let available = peek - p in
  let suffix =
    if suffix_len <= available then String.sub head p suffix_len
    else
      String.sub head p available
      ^ Pmem.read t.dev t.region ~off:(record.offset + peek) ~len:(suffix_len - available)
  in
  group_prefix t record ^ suffix

let group_extent t g record =
  let stop =
    if g + 1 < t.group_count then (read_record t (g + 1)).offset else t.entry_len
  in
  (record.offset, stop)

(* Decode a group's entries, reconstructing full keys. The raw extent is
   verified against the handle-cached group CRC first — one string pass, no
   extra PM access — so a rotten group raises instead of decoding junk. *)
let read_group t g record =
  let start, stop = group_extent t g record in
  let raw = Pmem.read t.dev t.region ~off:start ~len:(stop - start) in
  if !verify_checksums && Util.Crc32.string raw <> t.gcrcs.(g) then
    raise
      (Integrity.Corrupted
         { region_id = Pmem.region_id t.region; layer = "entry"; index = g });
  charge_cpu t.dev (float_of_int record.count_ *. decode_cpu_ns);
  let prefix = group_prefix t record in
  let pos = ref 0 in
  Array.init record.count_ (fun _ ->
      let suffix, p = Util.Varint.read_string raw !pos in
      let seq, p = Util.Varint.read raw p in
      let kind = if raw.[p] = '\000' then Util.Kv.Delete else Util.Kv.Put in
      let value, p = Util.Varint.read_string raw (p + 1) in
      pos := p;
      { Util.Kv.key = prefix ^ suffix; seq; kind; value })

(* Reopen a table from its persisted region (after a restart or crash):
   the footer locates the layers, the meta layer restores the tag index and
   table statistics, and the boundary keys are re-read from the entry
   layer. Only the DRAM handle is rebuilt; no table data moves. *)
let open_existing dev region =
  let len = Pmem.region_len region in
  if len < footer_bytes then invalid_arg "Pm_table.open_existing: region too small";
  let raw = Pmem.read dev region ~off:(len - footer_bytes) ~len:footer_bytes in
  let format_version =
    let m = Builder.read_u32 raw 18 in
    if m = magic then 1
    else if m = magic_v2 then 2
    else failwith "Pm_table.open_existing: bad magic (not a PM table, or torn write)"
  in
  if
    !verify_checksums
    && Builder.read_u32 raw 22 <> Util.Crc32.update 0 raw 0 (footer_bytes - 4)
  then
    raise
      (Integrity.Corrupted
         { region_id = Pmem.region_id region; layer = "footer"; index = 0 });
  let entry_len = Builder.read_u32 raw 0 in
  let meta_off = Builder.read_u32 raw 4 in
  let group_count = Builder.read_u32 raw 8 in
  let prefix_len = Char.code raw.[12] in
  let group_size = Char.code raw.[13] in
  let meta_crc = Builder.read_u32 raw 14 in
  let meta_raw = Pmem.read dev region ~off:meta_off ~len:(len - footer_bytes - meta_off) in
  if !verify_checksums && Util.Crc32.string meta_raw <> meta_crc then
    raise
      (Integrity.Corrupted
         { region_id = Pmem.region_id region; layer = "meta"; index = 0 });
  let gcrc_off = meta_off - (4 * group_count) in
  let gcrc_raw =
    if group_count = 0 then ""
    else Pmem.read dev region ~off:gcrc_off ~len:(4 * group_count)
  in
  let gcrcs = Array.init group_count (fun g -> Builder.read_u32 gcrc_raw (4 * g)) in
  let meta_count, pos = Util.Varint.read meta_raw 0 in
  let pos = ref pos in
  let metas =
    Array.init meta_count (fun _ ->
        let tag, p = Util.Varint.read_string meta_raw !pos in
        let g_lo, p = Util.Varint.read meta_raw p in
        let g_hi, p = Util.Varint.read meta_raw p in
        pos := p;
        { tag; g_lo; g_hi })
  in
  let count, p = Util.Varint.read meta_raw !pos in
  let min_seq, p = Util.Varint.read meta_raw p in
  let max_seq, p = Util.Varint.read meta_raw p in
  let payload_bytes, p = Util.Varint.read meta_raw p in
  let bloom =
    if format_version < 2 then None
    else
      let raw, _ = Util.Varint.read_string meta_raw p in
      Some (Bloom.deserialize raw)
  in
  let t =
    {
      bloom;
      dev;
      region;
      count;
      group_size;
      prefix_len;
      group_count;
      entry_len;
      prefix_off = entry_len;
      meta_off;
      metas;
      gcrcs;
      meta_crc;
      min_key = "";
      max_key = "";
      min_seq;
      max_seq;
      payload_bytes;
    }
  in
  if group_count = 0 then failwith "Pm_table.open_existing: empty table";
  let first_key = read_first_key t (read_record t 0) in
  let last_group = read_group t (group_count - 1) (read_record t (group_count - 1)) in
  let last_key = last_group.(Array.length last_group - 1).Util.Kv.key in
  { t with min_key = first_key; max_key = last_key }


(* Metas whose extended tag is a prefix of [key], i.e. runs that can hold
   it. Tags are sorted; normally zero or one matches, with a rare second on
   nested prefixes, so we check the rightmost tag <= key and its left
   neighbours while they remain prefixes. *)
let metas_for t key =
  let n = Array.length t.metas in
  if n = 0 then []
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    if String.compare t.metas.(0).tag key > 0 then []
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if String.compare t.metas.(mid).tag key <= 0 then lo := mid else hi := mid - 1
      done;
      let rec collect i acc =
        if i < 0 then acc
        else if Util.Keys.is_prefix ~prefix:t.metas.(i).tag key then
          collect (i - 1) (t.metas.(i) :: acc)
        else acc
      in
      collect !lo []
    end
  end

(* Compare group [g]'s first entry against probe (key, +inf): slots first
   (one access already paid by the caller's [record]), exact first-key read
   only on ties. Returns < 0 when the group starts before the probe. *)
let compare_group_start t record ~probe_slot ~key =
  let c = String.compare record.slot probe_slot in
  if c <> 0 then c
  else begin
    let first_key = read_first_key t record in
    let c = String.compare first_key key in
    if c <> 0 then c else 1 (* same key: first entry sorts after (key, +inf) *)
  end

(* Last group in [g_lo, g_hi) starting at or before the probe, or None when
   the probe precedes the run's first group. *)
let locate t ~g_lo ~g_hi ~probe_slot ~key =
  if g_hi <= g_lo then None
  else if compare_group_start t (read_record t g_lo) ~probe_slot ~key > 0 then None
  else begin
    let lo = ref g_lo and hi = ref (g_hi - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if compare_group_start t (read_record t mid) ~probe_slot ~key <= 0 then lo := mid
      else hi := mid - 1
    done;
    Some !lo
  end

let find_in_group t g record key =
  Array.find_opt (fun (e : Util.Kv.entry) -> e.key = key) (read_group t g record)

let get_in_run t ~g_lo ~g_hi key tag =
  (* Version runs can spill across group boundaries: after the landing
     group, follow groups while they still open with the probe key. *)
  let rec spill g =
    if g >= g_hi then None
    else
      let record = read_record t g in
      if read_first_key t record = key then
        match find_in_group t g record key with
        | Some e -> Some e
        | None -> spill (g + 1)
      else None
  in
  let probe_slot = pad_slot t.prefix_len (strip tag key) in
  match locate t ~g_lo ~g_hi ~probe_slot ~key with
  | None ->
      (* The probe (key, +inf) sorts before every entry of its own key, so
         a key that opens the run lands here: check the first group. *)
      spill g_lo
  | Some g -> (
      let record = read_record t g in
      match find_in_group t g record key with
      | Some e -> Some e
      | None -> spill (g + 1))

let has_bloom t = t.bloom <> None

let get ?(use_bloom = true) t key =
  if key < t.min_key || key > t.max_key then None
  else
    let screened =
      match t.bloom with
      | Some b when use_bloom ->
          incr bloom_probes;
          Obs.Attr.charge Obs.Attr.Pm_bloom 0.0;
          let absent = not (Bloom.mem b key) in
          if absent then incr bloom_negatives;
          absent
      | _ -> false
    in
    if screened then None
    else
      List.find_map
        (fun { tag; g_lo; g_hi } -> get_in_run t ~g_lo ~g_hi key tag)
        (metas_for t key)

let iter t f =
  for g = 0 to t.group_count - 1 do
    let record = read_record t g in
    Array.iter f (read_group t g record)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

(* First group that could contain a key >= [start]: per run, locate and
   step back never needed (locate gives last group starting <= start, whose
   tail may reach start); runs whose tag region sorts entirely before
   [start] are skipped. *)
let range t ~start ~stop f =
  if stop > t.min_key && start <= t.max_key then begin
    let start_group =
      (* Find the first run whose key region may reach [start]. *)
      let rec scan i =
        if i >= Array.length t.metas then t.group_count
        else begin
          let m = t.metas.(i) in
          if Util.Keys.is_prefix ~prefix:m.tag start then
            let probe_slot = pad_slot t.prefix_len (strip m.tag start) in
            match locate t ~g_lo:m.g_lo ~g_hi:m.g_hi ~probe_slot ~key:start with
            | Some g -> g
            | None -> m.g_lo
          else if String.compare m.tag start >= 0 then m.g_lo
          else
            (* Every key of this run shares [m.tag], which sorts before
               [start] without being its prefix, so every key of the run
               sorts before [start]: skip the run. *)
            scan (i + 1)
        end
      in
      scan 0
    in
    let continue = ref true in
    let g = ref start_group in
    while !continue && !g < t.group_count do
      let record = read_record t !g in
      let entries = read_group t !g record in
      Array.iter
        (fun (e : Util.Kv.entry) ->
          if String.compare e.key stop >= 0 then continue := false
          else if String.compare e.key start >= 0 then f e)
        entries;
      incr g
    done
  end

(* Full checksum walk from the medium (scrub). The footer and meta layer
   are re-read from PM — the handle's DRAM copies can outlive rot in the
   persisted bytes — then every prefix record and group extent is checked.
   Returns (layer, group index) per failure, empty when clean. *)
let verify t =
  if not !verify_checksums then []
  else begin
    let bad = ref [] in
    let note layer index = bad := (layer, index) :: !bad in
    let len = Pmem.region_len t.region in
    (try
       let raw = Pmem.read t.dev t.region ~off:(len - footer_bytes) ~len:footer_bytes in
       let m = Builder.read_u32 raw 18 in
       if
         (m <> magic && m <> magic_v2)
         || Builder.read_u32 raw 22 <> Util.Crc32.update 0 raw 0 (footer_bytes - 4)
       then note "footer" 0
     with _ -> note "footer" 0);
    (try
       let meta_raw =
         Pmem.read t.dev t.region ~off:t.meta_off ~len:(len - footer_bytes - t.meta_off)
       in
       if Util.Crc32.string meta_raw <> t.meta_crc then note "meta" 0
     with _ -> note "meta" 0);
    (* The persisted group-checksum layer itself (the DRAM cache used by
       reads would mask rot in it until the next reopen). *)
    (try
       let gcrc_off = t.meta_off - (4 * t.group_count) in
       let raw = Pmem.read t.dev t.region ~off:gcrc_off ~len:(4 * t.group_count) in
       for g = 0 to t.group_count - 1 do
         if Builder.read_u32 raw (4 * g) <> t.gcrcs.(g) then note "gcrc" g
       done
     with _ -> note "gcrc" 0);
    for g = 0 to t.group_count - 1 do
      match read_record t g with
      | record -> (
          try ignore (read_group t g record) with _ -> note "entry" g)
      | exception _ -> note "prefix" g
    done;
    List.rev !bad
  end

(* Salvage: decode every group that still checksums; the keys that may have
   been lost with the failing ones are bounded conservatively by the last
   surviving key before the first bad group and the first surviving key
   after the last one (table boundaries when no such neighbour survives).
   Returns the surviving entries in order plus that lost range, or [None]
   when nothing was lost. *)
let salvage_entries t =
  let groups =
    Array.init t.group_count (fun g ->
        try Some (read_group t g (read_record t g)) with _ -> None)
  in
  let survivors =
    Array.to_list groups
    |> List.concat_map (function Some es -> Array.to_list es | None -> [])
  in
  let first_bad = ref (-1) and last_bad = ref (-1) in
  Array.iteri
    (fun g -> function
      | None ->
          if !first_bad < 0 then first_bad := g;
          last_bad := g
      | Some _ -> ())
    groups;
  if !first_bad < 0 then (survivors, None)
  else begin
    let lo = ref t.min_key and hi = ref t.max_key in
    (try
       for g = !first_bad - 1 downto 0 do
         match groups.(g) with
         | Some es when Array.length es > 0 ->
             lo := es.(Array.length es - 1).Util.Kv.key;
             raise Exit
         | _ -> ()
       done
     with Exit -> ());
    (try
       for g = !last_bad + 1 to t.group_count - 1 do
         match groups.(g) with
         | Some es when Array.length es > 0 ->
             hi := es.(0).Util.Kv.key;
             raise Exit
         | _ -> ()
       done
     with Exit -> ());
    (survivors, Some (!lo, !hi))
  end

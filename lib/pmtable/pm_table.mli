(** The paper's three-layer compressed PM table (§IV-A, Fig. 2b):
    meta layer ({tableID} tags stored once), fixed-width binary-searchable
    prefix layer (one record per group of 8/16 keys), and entry layer
    (prefix-stripped entries). A lookup costs one PM access per binary-search
    probe plus one sequential group read — versus two accesses per probe in
    the array table. *)

type t

val default_prefix_len : int

val build :
  ?group_size:int ->
  ?prefix_len:int ->
  ?bloom_bits_per_key:int ->
  Pmem.t ->
  Util.Kv.entry array ->
  t
(** Build from entries sorted by {!Util.Kv.compare_entry}. [group_size]
    defaults to the paper's 8; [prefix_len] is the fixed slot width
    (default {!default_prefix_len}; larger slots strip more shared bytes
    from the entry layer at ~zero probe cost, since the PM access cost is
    dominated by its fixed term). [bloom_bits_per_key] (default 10) sizes
    the format-v2 Bloom filter persisted in the meta layer; [0] writes the
    byte-identical v1 layout with no bloom. Raises [Invalid_argument] on
    unsorted or empty input, [Pmem.Out_of_space] when the device is
    full. *)

val open_existing : Pmem.t -> Pmem.region -> t
(** Reopen a table from its persisted region after a restart: the footer
    locates the layers, the meta layer restores the tag index, statistics
    and (format v2) the Bloom filter; v1 regions open with no bloom; no
    table data moves. Raises [Failure] on a bad magic (torn or foreign
    region) and [Integrity.Corrupted] on a footer or meta-layer checksum
    failure. *)

val count : t -> int
val byte_size : t -> int
val payload_bytes : t -> int
(** Uncompressed logical size; [byte_size t < payload_bytes t] measures the
    compression win. *)

val group_count : t -> int
val min_key : t -> string
val max_key : t -> string
val seq_range : t -> int * int
val free : t -> unit

val get : ?use_bloom:bool -> t -> string -> Util.Kv.entry option
(** Newest version of the key in this table. When the table carries a
    format-v2 Bloom filter, absent keys are screened in DRAM before any PM
    access unless [~use_bloom:false]. *)

val has_bloom : t -> bool

val bloom_probes : int ref
val bloom_negatives : int ref
(** Module-wide telemetry: gets that consulted a PM bloom, and those
    answered "absent" without touching PM. *)

val default_bloom_bits_per_key : int

val iter : t -> (Util.Kv.entry -> unit) -> unit
val to_list : t -> Util.Kv.entry list
val range : t -> start:string -> stop:string -> (Util.Kv.entry -> unit) -> unit

val extract_tag : string -> string
(** The {tableID} tag stored in the meta layer (exposed for tests). *)

val region_id : t -> int
(** The PM region id, manifest-stable across restarts. *)

(** {1 Integrity}

    Every layer is checksummed: inline CRC32 per prefix record (verified on
    every probe), per-group entry-extent CRC32s cached in the handle
    (verified on every group read at no extra PM access), and meta/footer
    CRC32s (verified at {!open_existing} and by {!verify}). A failed
    comparison on the read path raises [Integrity.Corrupted]. *)

val verify : t -> (string * int) list
(** Full checksum walk, re-reading footer and meta from the medium: returns
    [(layer, group index)] per failure, [[]] when clean (and always [[]]
    while {!verify_checksums} is off). *)

val salvage_entries : t -> Util.Kv.entry list * (string * string) option
(** Decode every group that still checksums; returns the surviving entries
    in order and, when groups were lost, a conservative [lo, hi] bound on
    the keys lost with them. *)

val verify_checksums : bool ref
(** Kill switch for every CRC comparison in this module — exists so a fault
    sweep can plant the "forgot to verify checksums" bug and prove it gets
    caught. Leave it [true]. *)

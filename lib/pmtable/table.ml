(* Unified handle over the four level-0 table structures, so the engine and
   the compaction machinery are agnostic to which structure a configuration
   selects (PM-Blade uses the compressed three-layer table; ablations and
   baselines use the others). *)

type kind =
  | Pm_compressed   (* three-layer prefix-compressed table (the paper's) *)
  | Array_plain
  | Array_snappy
  | Array_snappy_group

type t =
  | Pm of Pm_table.t
  | Array of Array_table.t
  | Snappy of Snappy_table.t

let kind = function
  | Pm _ -> Pm_compressed
  | Array _ -> Array_plain
  | Snappy _ -> Array_snappy (* group mode indistinguishable at this level *)

let build ?(group_size = 8) ?bloom_bits_per_key dev ~kind entries =
  match kind with
  | Pm_compressed -> Pm (Pm_table.build ~group_size ?bloom_bits_per_key dev entries)
  | Array_plain -> Array (Array_table.build dev entries)
  | Array_snappy -> Snappy (Snappy_table.build ~mode:Snappy_table.Per_pair dev entries)
  | Array_snappy_group ->
      Snappy (Snappy_table.build ~mode:(Snappy_table.Grouped group_size) dev entries)

let of_sorted_list ?group_size ?bloom_bits_per_key dev ~kind entries =
  build ?group_size ?bloom_bits_per_key dev ~kind (Array.of_list entries)

let count = function
  | Pm t -> Pm_table.count t
  | Array t -> Array_table.count t
  | Snappy t -> Snappy_table.count t

let byte_size = function
  | Pm t -> Pm_table.byte_size t
  | Array t -> Array_table.byte_size t
  | Snappy t -> Snappy_table.byte_size t

let payload_bytes = function
  | Pm t -> Pm_table.payload_bytes t
  | Array t -> Array_table.payload_bytes t
  | Snappy t -> Snappy_table.payload_bytes t

let min_key = function
  | Pm t -> Pm_table.min_key t
  | Array t -> Array_table.min_key t
  | Snappy t -> Snappy_table.min_key t

let max_key = function
  | Pm t -> Pm_table.max_key t
  | Array t -> Array_table.max_key t
  | Snappy t -> Snappy_table.max_key t

let seq_range = function
  | Pm t -> Pm_table.seq_range t
  | Array t -> Array_table.seq_range t
  | Snappy t -> Snappy_table.seq_range t

let free = function
  | Pm t -> Pm_table.free t
  | Array t -> Array_table.free t
  | Snappy t -> Snappy_table.free t

let get ?use_bloom t key =
  match t with
  | Pm t -> Pm_table.get ?use_bloom t key
  | Array t -> Array_table.get t key
  | Snappy t -> Snappy_table.get t key

let iter t f =
  match t with
  | Pm t -> Pm_table.iter t f
  | Array t -> Array_table.iter t f
  | Snappy t -> Snappy_table.iter t f

let to_list = function
  | Pm t -> Pm_table.to_list t
  | Array t -> Array_table.to_list t
  | Snappy t -> Snappy_table.to_list t

let range t ~start ~stop f =
  match t with
  | Pm t -> Pm_table.range t ~start ~stop f
  | Array t -> Array_table.range t ~start ~stop f
  | Snappy t -> Snappy_table.range t ~start ~stop f

(* Key ranges [min,max] of two tables overlap? Used to decide whether a
   lookup must consult a table and whether runs are disjoint. *)
let overlaps t ~min:lo ~max:hi =
  not (String.compare (max_key t) lo < 0 || String.compare (min_key t) hi > 0)

let region_id = function
  | Pm t -> Pm_table.region_id t
  | Array t -> Array_table.region_id t
  | Snappy t -> Snappy_table.region_id t

(* Recovery path: only the compressed PM table persists a self-describing
   footer (the engine's durable configurations use it). *)
let open_existing dev region = Pm (Pm_table.open_existing dev region)

(* Integrity: only the compressed PM table carries checksums — the array
   variants are non-durable ablation baselines, so a scrub reports them
   clean rather than unverifiable. *)
let verify = function
  | Pm t -> Pm_table.verify t
  | Array _ | Snappy _ -> []

let salvage_entries = function
  | Pm t -> Pm_table.salvage_entries t
  | Array t -> (Array_table.to_list t, None)
  | Snappy t -> (Snappy_table.to_list t, None)

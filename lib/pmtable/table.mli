(** Unified handle over the four level-0 table structures, so the engine and
    compaction machinery are agnostic to which structure a configuration
    selects. *)

type kind =
  | Pm_compressed  (** the paper's three-layer prefix-compressed table *)
  | Array_plain
  | Array_snappy
  | Array_snappy_group

type t

val kind : t -> kind

val build :
  ?group_size:int ->
  ?bloom_bits_per_key:int ->
  Pmem.t ->
  kind:kind ->
  Util.Kv.entry array ->
  t
(** Build from entries sorted by {!Util.Kv.compare_entry}.
    [bloom_bits_per_key] applies to {!Pm_compressed} only (see
    {!Pm_table.build}); the array ablation variants ignore it. *)

val of_sorted_list :
  ?group_size:int ->
  ?bloom_bits_per_key:int ->
  Pmem.t ->
  kind:kind ->
  Util.Kv.entry list ->
  t

val count : t -> int
val byte_size : t -> int
val payload_bytes : t -> int
val min_key : t -> string
val max_key : t -> string
val seq_range : t -> int * int
val free : t -> unit

val get : ?use_bloom:bool -> t -> string -> Util.Kv.entry option
(** [use_bloom] (default true) lets a {!Pm_compressed} table's format-v2
    Bloom filter screen absent keys before any PM access. *)

val iter : t -> (Util.Kv.entry -> unit) -> unit
val to_list : t -> Util.Kv.entry list
val range : t -> start:string -> stop:string -> (Util.Kv.entry -> unit) -> unit

val overlaps : t -> min:string -> max:string -> bool
(** Does the table's key range intersect [\[min, max\]]? *)

val region_id : t -> int
(** The PM region id backing the table (manifest-stable). *)

val open_existing : Pmem.t -> Pmem.region -> t
(** Reopen a persisted {!Pm_compressed} table from its region (recovery).
    Raises [Failure] when the region does not hold a PM table and
    [Integrity.Corrupted] when it holds one whose footer or meta layer
    rotted. *)

val verify : t -> (string * int) list
(** Checksum-walk the table (see {!Pm_table.verify}); [[]] for the
    non-durable array variants, which carry no checksums. *)

val salvage_entries : t -> Util.Kv.entry list * (string * string) option
(** Surviving entries plus the conservative lost key range, if any (see
    {!Pm_table.salvage_entries}). *)

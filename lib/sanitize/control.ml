(* Process-wide sanitizer switch.

   On by default so that `dune runtest` — and any embedder that does not
   opt out — runs fully sanitized. Hot-path hooks in the devices check
   this once at device creation, so flipping it only affects devices
   created afterwards. *)

let enabled = ref true
let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

(** Process-wide sanitizer switch (on by default, so tests run sanitized).

    Devices consult it at creation time: disabling only affects devices
    created afterwards. [Config.sanitize] and the CLI [--no-sanitize]
    flag both funnel into this. *)

val enabled : bool ref
val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

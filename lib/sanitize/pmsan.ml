(* pmsan: shadow-memory persistence-ordering checker.

   The persistence domain of real PM hardware is the 64-byte cache line:
   a store is durable only once its line has been written back (clwb) and
   the write-back drained by a fence (sfence). pmsan shadows every PM
   region with one byte per line and advances a small state machine on
   the device events the [Pmem] shim forwards:

     Clean --write--> Dirty --flush--> Flushed --drain--> Clean

   Violations it reports:
     - missing-flush-at-commit: a commit point (WAL sync, PM-table seal,
       manifest install) executed while some line was still Dirty or
       Flushed-but-unfenced; those bytes would not survive a crash at the
       commit point even though the engine just promised durability.
     - fence-without-flush: a drain issued with no flush since the last
       drain — ordering without write-back persists nothing.
     - read-of-unpersisted: a read touching a line that was unfenced at
       an earlier commit point (marked stale there); recovery-path code
       consuming such bytes depends on unpersisted state.
     - redundant flush (performance, counted per call site): flushing a
       line that is already clean, re-flushing a line already flushed in
       the current fence epoch, or re-writing a flushed-but-unfenced line
       (no fence has banked the first write-back, so that clwb bought
       nothing — the classic chunked-writer tail-line waste). Free
       hot-path wins when eliminated.

   Cost model: the hot path (write/flush) is O(lines touched); commit
   points and reads are O(1) when nothing is outstanding, via an
   incrementally-maintained count of unfenced lines. Only a failing
   commit point scans shadows (to mark stale lines and name regions). *)

let line_bytes = 64
let max_findings = 64

type kind =
  | Missing_flush_at_commit
  | Fence_without_flush
  | Read_of_unpersisted

type finding = { kind : kind; region_id : int; site : string; detail : string }

(* Shadow byte layout (one byte per 64 B line):
   bits 0-1  state: 0 = clean/fenced, 1 = dirty, 2 = flushed-unfenced
   bit  2    flushed during the current fence epoch (redundancy tracking)
   bit  3    stale: line was unfenced at some past commit point; reading
             it afterwards is a read-of-unpersisted. *)
let st_mask = 0x03
let st_dirty = 0x01
let st_flushed = 0x02
let b_epoch = 0x04
let b_stale = 0x08

type shadow = {
  sid : int;
  nlines : int;
  state : Bytes.t;
  mutable s_unfenced : int;  (* lines with state <> clean *)
  mutable dead : bool;       (* freed; kept reachable via the epoch list *)
}

type t = {
  regions : (int, shadow) Hashtbl.t;
  mutable epoch_lines : (shadow * int) list;
      (* lines flushed since the last drain; drained in O(flushes) *)
  mutable epoch_flush_calls : int;
  mutable unfenced_total : int;
  (* counters *)
  mutable commit_points : int;
  mutable missing_flush_at_commit : int;  (* commit points with unfenced lines *)
  mutable unfenced_lines_at_commit : int; (* total lines caught that way *)
  mutable fence_without_flush : int;
  mutable read_of_unpersisted : int;
  mutable redundant_flush : int;          (* line granularity *)
  redundant_sites : (string, int ref) Hashtbl.t;
  mutable findings : finding list;        (* newest first, capped *)
  mutable dropped_findings : int;
}

let create () =
  {
    regions = Hashtbl.create 64;
    epoch_lines = [];
    epoch_flush_calls = 0;
    unfenced_total = 0;
    commit_points = 0;
    missing_flush_at_commit = 0;
    unfenced_lines_at_commit = 0;
    fence_without_flush = 0;
    read_of_unpersisted = 0;
    redundant_flush = 0;
    redundant_sites = Hashtbl.create 16;
    findings = [];
    dropped_findings = 0;
  }

let kind_name = function
  | Missing_flush_at_commit -> "missing-flush-at-commit"
  | Fence_without_flush -> "fence-without-flush"
  | Read_of_unpersisted -> "read-of-unpersisted"

let finding_to_string f =
  Printf.sprintf "pmsan:%s region=%d at %s: %s" (kind_name f.kind) f.region_id
    f.site f.detail

let report t kind ~region_id ~detail =
  let site = Site.capture () in
  (match kind with
  | Missing_flush_at_commit -> t.missing_flush_at_commit <- t.missing_flush_at_commit + 1
  | Fence_without_flush -> t.fence_without_flush <- t.fence_without_flush + 1
  | Read_of_unpersisted -> t.read_of_unpersisted <- t.read_of_unpersisted + 1);
  let f = { kind; region_id; site; detail } in
  if List.length t.findings < max_findings then t.findings <- f :: t.findings
  else t.dropped_findings <- t.dropped_findings + 1;
  Obs.Trace.instant "sanitize.pmsan" ~attrs:(fun () ->
      [ ("kind", Obs.Trace.Str (kind_name kind)); ("site", Obs.Trace.Str site);
        ("region", Obs.Trace.Int region_id); ("detail", Obs.Trace.Str detail) ])

let nlines_of len = (len + line_bytes - 1) / line_bytes

let on_alloc t ~id ~len =
  Hashtbl.replace t.regions id
    { sid = id; nlines = nlines_of len; state = Bytes.make (max 1 (nlines_of len)) '\000';
      s_unfenced = 0; dead = false }

let on_free t ~id =
  match Hashtbl.find_opt t.regions id with
  | None -> ()
  | Some sh ->
      (* Outstanding lines of a freed region can no longer break a commit
         point; its shadow stays reachable from the epoch list but is
         marked dead so the drain walk skips the global accounting. *)
      t.unfenced_total <- t.unfenced_total - sh.s_unfenced;
      sh.s_unfenced <- 0;
      sh.dead <- true;
      Hashtbl.remove t.regions id

let line_range ~off ~len nlines =
  if len <= 0 then (1, 0)
  else (off / line_bytes, min ((off + len - 1) / line_bytes) (nlines - 1))

let bump_site t site =
  match Hashtbl.find_opt t.redundant_sites site with
  | Some r -> incr r
  | None -> Hashtbl.add t.redundant_sites site (ref 1)

let on_write t ~id ~off ~len =
  match Hashtbl.find_opt t.regions id with
  | None -> ()
  | Some sh ->
      let lo, hi = line_range ~off ~len sh.nlines in
      let site = lazy (Site.capture ()) in
      for l = lo to hi do
        let b = Char.code (Bytes.get sh.state l) in
        if b land st_mask = 0 then begin
          sh.s_unfenced <- sh.s_unfenced + 1;
          t.unfenced_total <- t.unfenced_total + 1
        end;
        (* re-dirtying a flushed-but-unfenced line proves the earlier clwb
           was wasted work: no fence banked it, and the rewrite forces
           another write-back anyway (chunked writers flushing a partial
           tail line hit exactly this). The flushed-this-epoch credit is
           revoked too — the next flush of the new bytes is not redundant *)
        if b land st_mask = st_flushed then begin
          t.redundant_flush <- t.redundant_flush + 1;
          bump_site t (Lazy.force site)
        end;
        let b' = b land lnot (st_mask lor b_stale lor b_epoch) lor st_dirty in
        Bytes.set sh.state l (Char.chr b')
      done

let on_flush t ~id ~off ~len =
  t.epoch_flush_calls <- t.epoch_flush_calls + 1;
  match Hashtbl.find_opt t.regions id with
  | None -> ()
  | Some sh ->
      let lo, hi = line_range ~off ~len sh.nlines in
      let site = lazy (Site.capture ()) in
      for l = lo to hi do
        let b = Char.code (Bytes.get sh.state l) in
        let redundant = b land b_epoch <> 0 || b land st_mask = 0 in
        if redundant then begin
          t.redundant_flush <- t.redundant_flush + 1;
          bump_site t (Lazy.force site)
        end;
        let b = if b land b_epoch = 0 then begin
            t.epoch_lines <- (sh, l) :: t.epoch_lines;
            b lor b_epoch
          end else b
        in
        let b = if b land st_mask = st_dirty then b land lnot st_mask lor st_flushed else b in
        Bytes.set sh.state l (Char.chr b)
      done

let on_drain t =
  if t.epoch_flush_calls = 0 then
    report t Fence_without_flush ~region_id:(-1)
      ~detail:"drain issued with no flush since the previous drain";
  List.iter
    (fun (sh, l) ->
      let b = Char.code (Bytes.get sh.state l) in
      let b = b land lnot b_epoch in
      let b =
        if b land st_mask = st_flushed then begin
          if not sh.dead then begin
            sh.s_unfenced <- sh.s_unfenced - 1;
            t.unfenced_total <- t.unfenced_total - 1
          end;
          b land lnot (st_mask lor b_stale)
        end
        else b
      in
      Bytes.set sh.state l (Char.chr b))
    t.epoch_lines;
  t.epoch_lines <- [];
  t.epoch_flush_calls <- 0

let on_commit_point t name =
  t.commit_points <- t.commit_points + 1;
  if t.unfenced_total > 0 then begin
    t.unfenced_lines_at_commit <- t.unfenced_lines_at_commit + t.unfenced_total;
    (* Failure path only: scan shadows to name regions and mark the
       offending lines stale so later reads of them are flagged too. *)
    Hashtbl.iter
      (fun id sh ->
        if sh.s_unfenced > 0 then begin
          let dirty = ref 0 and flushed = ref 0 in
          for l = 0 to sh.nlines - 1 do
            let b = Char.code (Bytes.get sh.state l) in
            if b land st_mask <> 0 then begin
              if b land st_mask = st_dirty then incr dirty else incr flushed;
              Bytes.set sh.state l (Char.chr (b lor b_stale))
            end
          done;
          report t Missing_flush_at_commit ~region_id:id
            ~detail:
              (Printf.sprintf
                 "%d unfenced line(s) (%d dirty, %d flushed-unfenced) at commit point '%s'"
                 (!dirty + !flushed) !dirty !flushed name)
        end)
      t.regions
  end

let on_read t ~id ~off ~len =
  if t.unfenced_total > 0 || t.read_of_unpersisted > 0 then
    match Hashtbl.find_opt t.regions id with
    | None -> ()
    | Some sh ->
        if sh.s_unfenced > 0 then begin
          let lo, hi = line_range ~off ~len sh.nlines in
          let hit = ref false in
          for l = lo to hi do
            if (not !hit) && Char.code (Bytes.get sh.state l) land b_stale <> 0
            then begin
              hit := true;
              report t Read_of_unpersisted ~region_id:id
                ~detail:
                  (Printf.sprintf
                     "read [%d,%d) touches line %d, unpersisted at an earlier commit point"
                     off (off + len) l)
            end
          done
        end

let on_crash t =
  (* The crash reverts every region to its durable image: nothing is
     outstanding any more. Findings and counters survive — they describe
     the pre-crash execution. *)
  Hashtbl.iter
    (fun _ sh ->
      Bytes.fill sh.state 0 (Bytes.length sh.state) '\000';
      sh.s_unfenced <- 0)
    t.regions;
  t.unfenced_total <- 0;
  t.epoch_lines <- [];
  t.epoch_flush_calls <- 0

let error_count t =
  t.missing_flush_at_commit + t.fence_without_flush + t.read_of_unpersisted

let redundant_flushes t = t.redundant_flush
let commit_points t = t.commit_points
let missing_flush_at_commit t = t.missing_flush_at_commit
let fence_without_flush t = t.fence_without_flush
let read_of_unpersisted t = t.read_of_unpersisted
let findings t = List.rev t.findings

let redundant_by_site t =
  Hashtbl.fold (fun site r acc -> (site, !r) :: acc) t.redundant_sites []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let register_metrics t registry =
  let open Obs.Registry in
  register_int registry "sanitize.redundant_flush"
    ~help:"cache-line flushes of already-clean lines" (fun () -> t.redundant_flush);
  register_int registry "sanitize.missing_flush_at_commit"
    ~help:"commit points reached with dirty unflushed lines" (fun () ->
      t.missing_flush_at_commit);
  register_int registry "sanitize.fence_without_flush"
    ~help:"fences issued with no flush since the last fence" (fun () ->
      t.fence_without_flush);
  register_int registry "sanitize.read_of_unpersisted"
    ~help:"recovery-visible reads of never-persisted lines" (fun () ->
      t.read_of_unpersisted);
  register_int registry "sanitize.commit_points"
    ~help:"durability commit points checked by pmsan" (fun () -> t.commit_points)

let pp ppf t =
  Fmt.pf ppf "pmsan: %d commit point(s), %d error(s)@." t.commit_points
    (error_count t);
  Fmt.pf ppf "  missing-flush-at-commit: %d (%d line(s))@."
    t.missing_flush_at_commit t.unfenced_lines_at_commit;
  Fmt.pf ppf "  fence-without-flush:     %d@." t.fence_without_flush;
  Fmt.pf ppf "  read-of-unpersisted:     %d@." t.read_of_unpersisted;
  Fmt.pf ppf "  redundant flushes:       %d@." t.redundant_flush;
  List.iter
    (fun (site, n) -> Fmt.pf ppf "    %-32s %d@." site n)
    (redundant_by_site t);
  List.iter (fun f -> Fmt.pf ppf "  %s@." (finding_to_string f)) (findings t);
  if t.dropped_findings > 0 then
    Fmt.pf ppf "  (+%d finding(s) dropped)@." t.dropped_findings

(** pmsan: shadow-memory persistence-ordering checker for the PM device.

    Tracks every 64-byte PM line through the durability state machine
    (clean → dirty → flushed → fenced) using the write/flush/drain events
    the [Pmem] shim forwards, and checks the engine's declared commit
    points ([Pmem.commit_point]) against it. Correctness findings:
    missing-flush-at-commit, fence-without-flush, read-of-unpersisted.
    Performance finding: redundant flushes, counted per call site.

    The hot path is O(lines touched) per event and O(1) per commit point
    or read while nothing is outstanding; only failing commit points scan
    the shadow. *)

type t

type kind =
  | Missing_flush_at_commit
  | Fence_without_flush
  | Read_of_unpersisted

type finding = { kind : kind; region_id : int; site : string; detail : string }

val create : unit -> t

(** {2 Device events} — forwarded by [Pmem]; offsets are region-relative. *)

val on_alloc : t -> id:int -> len:int -> unit
val on_free : t -> id:int -> unit
val on_write : t -> id:int -> off:int -> len:int -> unit
val on_flush : t -> id:int -> off:int -> len:int -> unit
val on_drain : t -> unit
val on_read : t -> id:int -> off:int -> len:int -> unit

val on_commit_point : t -> string -> unit
(** Durability barrier: every line must be fenced here. Unfenced lines are
    reported once and marked stale, so later reads of them are flagged as
    read-of-unpersisted. *)

val on_crash : t -> unit
(** The device reverted to its durable image: clears all outstanding shadow
    state (counters and findings survive — they describe the pre-crash
    execution). *)

(** {2 Queries} *)

val error_count : t -> int
(** Correctness findings only; redundant flushes are a performance signal
    and not included. *)

val redundant_flushes : t -> int
val redundant_by_site : t -> (string * int) list
(** Sorted by descending count. *)

val commit_points : t -> int
val missing_flush_at_commit : t -> int
val fence_without_flush : t -> int
val read_of_unpersisted : t -> int
val findings : t -> finding list
(** Oldest first, capped at an internal maximum. *)

val finding_to_string : finding -> string
val kind_name : kind -> string
val register_metrics : t -> Obs.Registry.t -> unit
(** Registers [sanitize.redundant_flush], [sanitize.missing_flush_at_commit],
    [sanitize.fence_without_flush], [sanitize.read_of_unpersisted],
    [sanitize.commit_points]. *)

val pp : Format.formatter -> t -> unit

(* schedsan: happens-before checker for the coroutine scheduler.

   The effect-based scheduler interleaves tasks only at yield points
   (Io/Work/Yield/Await), so a data race here is not a torn word but an
   unsynchronized read-modify-write across a yield — the classic lost
   update. schedsan tracks a vector clock per task, draws
   happens-before edges at spawn (parent → child), latch signal → await
   (release → acquire) and task completion, and checks annotated
   shared-variable accesses ([read]/[write] by name) FastTrack-style:
   an access unordered with the previous write (or a write unordered
   with a previous read) is a race.

   It also watches for lost wakeups: a task still parked on a latch when
   the scheduler runs out of work never received its signal. *)

type vc = (int, int) Hashtbl.t

let vc_get (vc : vc) k = Option.value (Hashtbl.find_opt vc k) ~default:0
let vc_leq (a : vc) (b : vc) =
  Hashtbl.fold (fun k v acc -> acc && v <= vc_get b k) a true

let vc_join (dst : vc) (src : vc) =
  Hashtbl.iter (fun k v -> if vc_get dst k < v then Hashtbl.replace dst k v) src

type task = { tid : int; tname : string; vc : vc }

type access = { a_tid : int; a_vc : vc; a_site : string; a_name : string }

type varstate = {
  mutable last_write : access option;
  reads : (int, access) Hashtbl.t;  (* concurrent readers since last write *)
  mutable reported : bool;          (* dedupe findings per variable *)
}

type finding = { f_kind : string; f_detail : string }

let max_findings = 64

type t = {
  mutable next_tid : int;
  root : task;
  mutable cur : task option;
  vars : (string, varstate) Hashtbl.t;
  syncs : (int, vc) Hashtbl.t;      (* latch id -> clock of its signals *)
  locks : (string, vc) Hashtbl.t;   (* named mutex -> clock of last unlock *)
  mutable blocked : (task * string) list;
  mutable races : int;
  mutable lost_wakeups : int;
  mutable findings : finding list;  (* newest first, capped *)
  mutable dropped_findings : int;
}

let create () =
  let root = { tid = 0; tname = "host"; vc = Hashtbl.create 8 } in
  Hashtbl.replace root.vc 0 1;
  {
    next_tid = 1;
    root;
    cur = None;
    vars = Hashtbl.create 16;
    syncs = Hashtbl.create 16;
    locks = Hashtbl.create 8;
    blocked = [];
    races = 0;
    lost_wakeups = 0;
    findings = [];
    dropped_findings = 0;
  }

let finding_to_string f = Printf.sprintf "schedsan:%s %s" f.f_kind f.f_detail

let report t ~kind ~detail =
  let f = { f_kind = kind; f_detail = detail } in
  if List.length t.findings < max_findings then t.findings <- f :: t.findings
  else t.dropped_findings <- t.dropped_findings + 1;
  Obs.Trace.instant "sanitize.schedsan" ~attrs:(fun () ->
      [ ("kind", Obs.Trace.Str kind); ("detail", Obs.Trace.Str detail) ])

let current t = match t.cur with Some task -> task | None -> t.root
let tick task = Hashtbl.replace task.vc task.tid (vc_get task.vc task.tid + 1)

let on_spawn t ~name =
  let parent = current t in
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let child = { tid; tname = name; vc = Hashtbl.copy parent.vc } in
  Hashtbl.replace child.vc tid 1;
  (* the parent's subsequent steps are concurrent with the child *)
  tick parent;
  child

let enter t task = t.cur <- Some task
let leave t _task = t.cur <- None

let on_task_done t task =
  (* completion edge into whoever observes the scheduler afterwards *)
  vc_join t.root.vc task.vc;
  tick task

let race t ~kind ~var ~(prev : access) ~(now : access) =
  t.races <- t.races + 1;
  let vs = Hashtbl.find t.vars var in
  if not vs.reported then begin
    vs.reported <- true;
    report t ~kind
      ~detail:
        (Printf.sprintf
           "'%s': task %d (%s) and task %d (%s) access it unsynchronized" var
           prev.a_tid prev.a_site now.a_tid now.a_site)
  end

let var_state t name =
  match Hashtbl.find_opt t.vars name with
  | Some vs -> vs
  | None ->
      let vs = { last_write = None; reads = Hashtbl.create 4; reported = false } in
      Hashtbl.add t.vars name vs;
      vs

let access_of task name =
  { a_tid = task.tid; a_vc = Hashtbl.copy task.vc; a_site = Site.capture ();
    a_name = name }

let write t name =
  let task = current t in
  tick task;
  let vs = var_state t name in
  let now = access_of task name in
  (match vs.last_write with
  | Some prev when prev.a_tid <> task.tid && not (vc_leq prev.a_vc task.vc) ->
      race t ~kind:"write-write-race" ~var:name ~prev ~now
  | _ -> ());
  Hashtbl.iter
    (fun rtid prev ->
      if rtid <> task.tid && not (vc_leq prev.a_vc task.vc) then
        race t ~kind:"read-write-race" ~var:name ~prev ~now)
    vs.reads;
  vs.last_write <- Some now;
  Hashtbl.reset vs.reads

let read t name =
  let task = current t in
  tick task;
  let vs = var_state t name in
  let now = access_of task name in
  (match vs.last_write with
  | Some prev when prev.a_tid <> task.tid && not (vc_leq prev.a_vc task.vc) ->
      race t ~kind:"write-read-race" ~var:name ~prev ~now
  | _ -> ());
  Hashtbl.replace vs.reads task.tid now

let sync_vc t key =
  match Hashtbl.find_opt t.syncs key with
  | Some vc -> vc
  | None ->
      let vc = Hashtbl.create 8 in
      Hashtbl.add t.syncs key vc;
      vc

let release t task ~sync =
  vc_join (sync_vc t sync) task.vc;
  tick task

let acquire t task ~sync = vc_join task.vc (sync_vc t sync)

(* Named mutexes modelled as release/acquire pairs: [lock] orders the
   current task after every prior [unlock] of the same name, so
   lock-bracketed critical sections form a total happens-before chain and
   annotated accesses inside them never race. In the cooperative scheduler
   sections never interleave, so no ownership tracking is needed. *)
let lock_vc t name =
  match Hashtbl.find_opt t.locks name with
  | Some vc -> vc
  | None ->
      let vc = Hashtbl.create 8 in
      Hashtbl.add t.locks name vc;
      vc

let lock t name =
  let task = current t in
  vc_join task.vc (lock_vc t name)

let unlock t name =
  let task = current t in
  vc_join (lock_vc t name) task.vc;
  tick task

let note_blocked t task label = t.blocked <- (task, label) :: t.blocked

let note_unblocked t task =
  t.blocked <- List.filter (fun (b, _) -> b.tid <> task.tid) t.blocked

let on_run_end t =
  List.iter
    (fun (task, label) ->
      t.lost_wakeups <- t.lost_wakeups + 1;
      report t ~kind:"lost-wakeup"
        ~detail:
          (Printf.sprintf "task %d (%s) still parked on '%s' at scheduler exit"
             task.tid task.tname label))
    t.blocked;
  t.blocked <- []

let races t = t.races
let lost_wakeups t = t.lost_wakeups
let error_count t = t.races + t.lost_wakeups
let findings t = List.rev t.findings

let register_metrics t registry =
  let open Obs.Registry in
  register_int registry "sanitize.sched.races"
    ~help:"conflicting unsynchronized accesses found by schedsan" (fun () -> t.races);
  register_int registry "sanitize.sched.lost_wakeups"
    ~help:"tasks left parked on a latch when the scheduler ran dry" (fun () ->
      t.lost_wakeups)

let pp ppf t =
  Fmt.pf ppf "schedsan: %d race(s), %d lost wakeup(s)@." t.races t.lost_wakeups;
  List.iter (fun f -> Fmt.pf ppf "  %s@." (finding_to_string f)) (findings t);
  if t.dropped_findings > 0 then
    Fmt.pf ppf "  (+%d finding(s) dropped)@." t.dropped_findings

(** schedsan: happens-before checker for the coroutine scheduler.

    One vector clock per task; happens-before edges at spawn
    (parent → child), latch signal → await (release → acquire) and task
    completion. Shared state is declared by annotation: instrumented code
    calls {!read}/{!write} with a stable variable name at each access,
    and an access unordered with the previous write (or a write
    unordered with outstanding reads) is reported as a race. Tasks still
    parked on a latch when the scheduler runs dry are reported as lost
    wakeups. *)

type t
type task
type finding = { f_kind : string; f_detail : string }

val create : unit -> t

(** {2 Scheduler-side hooks} *)

val on_spawn : t -> name:string -> task
(** Fork edge from the currently-running task (or the host context). *)

val enter : t -> task -> unit
(** [task] is about to run (annotated accesses attribute to it). *)

val leave : t -> task -> unit
val on_task_done : t -> task -> unit

val release : t -> task -> sync:int -> unit
(** Signal edge out of [task] through sync object [sync] (latch id). *)

val acquire : t -> task -> sync:int -> unit
(** Wakeup edge into [task] from sync object [sync]. *)

val note_blocked : t -> task -> string -> unit
val note_unblocked : t -> task -> unit

val on_run_end : t -> unit
(** Scheduler ran out of work: any still-blocked task is a lost wakeup. *)

(** {2 Annotations} — called from instrumented shared-state accesses. *)

val read : t -> string -> unit
val write : t -> string -> unit

val lock : t -> string -> unit
(** Acquire edge into the current task from the named mutex: orders it
    after every prior {!unlock} of the same name. Pair with {!unlock}
    around a critical section over annotated shared state. *)

val unlock : t -> string -> unit
(** Release edge out of the current task through the named mutex. *)

(** {2 Queries} *)

val races : t -> int
val lost_wakeups : t -> int
val error_count : t -> int
val findings : t -> finding list
val finding_to_string : finding -> string

val register_metrics : t -> Obs.Registry.t -> unit
(** Registers [sanitize.sched.races] and [sanitize.sched.lost_wakeups]. *)

val pp : Format.formatter -> t -> unit

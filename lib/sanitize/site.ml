(* Call-site capture for sanitizer reports.

   Walks the current backtrace and returns the first frame that does not
   belong to the sanitizer itself or to the instrumented device shims, so
   a redundant flush in [Pmtable.Builder.spill] is attributed to
   "builder.ml:NN" rather than to the pmem wrapper that observed it.
   Requires debug info (dune builds with -g by default); degrades to a
   placeholder otherwise. *)

let internal_files =
  [
    "pmsan.ml"; "schedsan.ml"; "site.ml"; "pmem.ml"; "scheduler.ml"; "co.ml";
    "camlinternalLazy.ml" (* lazy-captured sites force under Lazy.force *);
  ]

let capture () =
  let bt = Printexc.get_callstack 16 in
  match Printexc.backtrace_slots bt with
  | None -> "<no-debug-info>"
  | Some slots ->
      let best = ref "<unknown>" in
      (try
         Array.iter
           (fun slot ->
             match Printexc.Slot.location slot with
             | None -> ()
             | Some loc ->
                 let base = Filename.basename loc.Printexc.filename in
                 if not (List.mem base internal_files) then begin
                   best := Printf.sprintf "%s:%d" base loc.Printexc.line_number;
                   raise Exit
                 end)
           slots
       with Exit -> ());
      !best

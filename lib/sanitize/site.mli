(** Call-site capture for sanitizer reports: first backtrace frame outside
    the sanitizer and the instrumented device shims, as ["file.ml:line"].
    Placeholder strings when debug info is unavailable. *)

val capture : unit -> string

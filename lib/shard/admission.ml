(* Write-stall admission control, per shard.

   The signal is the shard's compaction debt in level-0 tables. Below
   [admission_soft_tables] writes pass untouched. In the soft zone the
   writer is delayed proportionally to the overshoot (RocksDB's
   delayed-write style), giving background compaction a chance to keep up
   without ever blocking. At [admission_hard_tables] the shard stalls: the
   writer waits on the shard's background worker and forces relief until
   the debt drops back below the hard limit. Both zones are visible —
   [shard.stall_*] metrics and the [Admission_stall] attr phase — so a
   backed-up shard shows up in doctor output rather than as mystery
   latency. *)

type t = {
  clock : Sim.Clock.t;
  soft_tables : int;
  hard_tables : int;
  soft_delay_ns : float;
  mutable soft_delays : int;
  mutable stalls : int;
  mutable stall_ns : float;
}

let create ~clock ~soft_tables ~hard_tables ~soft_delay_ns =
  {
    clock;
    soft_tables = max 1 soft_tables;
    hard_tables = max 2 (max soft_tables hard_tables);
    soft_delay_ns = Float.max 0.0 soft_delay_ns;
    soft_delays = 0;
    stalls = 0;
    stall_ns = 0.0;
  }

(* Admit one write to [engine]. [wait_background] blocks the caller until
   the shard's in-flight background job (if any) completes; [relieve]
   forces one round of compaction on the shard when waiting alone cannot
   drain the debt. *)
let admit t engine ~wait_background ~relieve =
  let debt () = Core.Engine.compaction_debt_tables engine in
  let d = debt () in
  if d >= t.hard_tables then begin
    t.stalls <- t.stalls + 1;
    let t0 = Sim.Clock.now t.clock in
    Obs.Attr.with_phase Obs.Attr.Admission_stall (fun () ->
        (* Bounded: each round either rides a finishing background job or
           forces relief, and relief strictly shrinks level-0 — 64 rounds
           outlasts any realistic backlog, and the bound keeps a pathological
           configuration from wedging the writer forever. *)
        let rounds = ref 0 in
        while debt () >= t.hard_tables && !rounds < 64 do
          incr rounds;
          if not (wait_background ()) then relieve ()
        done);
    t.stall_ns <- t.stall_ns +. Float.max 0.0 (Sim.Clock.now t.clock -. t0)
  end
  else if d >= t.soft_tables then begin
    t.soft_delays <- t.soft_delays + 1;
    let span = max 1 (t.hard_tables - t.soft_tables) in
    let over = d - t.soft_tables + 1 in
    let delay = t.soft_delay_ns *. float_of_int over /. float_of_int span in
    Obs.Attr.with_phase Obs.Attr.Admission_stall (fun () ->
        Sim.Clock.advance t.clock delay)
  end

let soft_delays t = t.soft_delays
let stalls t = t.stalls
let stall_ns t = t.stall_ns

(** Write-stall admission control, per shard.

    Signal: the shard's compaction debt in level-0 tables. Below the soft
    limit writes pass untouched; in the soft zone each write is delayed
    proportionally to the overshoot; at the hard limit the writer stalls
    — riding the shard's background worker and forcing compaction relief
    — until the debt drops below the limit again. Stalls and delays are
    counted for the [shard.stall_*] metrics and charged to the
    [Admission_stall] attr phase. *)

type t

val create :
  clock:Sim.Clock.t ->
  soft_tables:int ->
  hard_tables:int ->
  soft_delay_ns:float ->
  t

val admit :
  t ->
  Core.Engine.t ->
  wait_background:(unit -> bool) ->
  relieve:(unit -> unit) ->
  unit
(** Gate one write. [wait_background ()] blocks until the shard's
    in-flight background job finishes, returning [false] when there was
    none to wait for; [relieve ()] then forces one round of compaction. *)

val soft_delays : t -> int
val stalls : t -> int

val stall_ns : t -> float
(** Total simulated ns writers spent hard-stalled at this shard. *)

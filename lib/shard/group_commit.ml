(* Per-shard group commit: coalesce concurrent writers' WAL syncs into one
   log append + fsync.

   Shard engines run with [wal_external_sync]: a put stages its record into
   the WAL's DRAM group buffer but does not sync — the durability point is
   here. Two modes:

   - [Sync]: no scheduler attached (sequential benches, crash sweeps).
     Every commit syncs immediately — a batch of one — so the ack still
     implies durability and the golden model's single-pending-op story is
     unchanged.

   - [Batch]: clients are coroutines under one scheduler. The first writer
     to commit becomes the batch *leader*: it opens a batch and yields
     until either [group_commit_max] writers have joined or the
     [group_commit_window] closes. *Followers* increment the batch and
     park on its latch. The leader then closes the batch, performs the one
     [Engine.sync_wal] covering every staged record, and signals the
     latch; every member's put returns only after that sync, so a crash
     before it loses the whole batch (the staged records were DRAM-only)
     and a crash after it loses nothing — never a partial batch.

   Cooperative tasks only interleave at effect points, but the
   leader/follower handoff still mutates [cur]/[size] across yields; the
   sanitizer can't see that the interleavings are safe unless we tell it,
   so every critical section is bracketed by a named schedsan mutex and
   each access annotated. [plant_race] (the kill-switch test) skips the
   mutex while keeping the annotations: schedsan must then report the
   write-write race — proving the sweep has teeth. *)

type mode = Sync | Batch

type batch = { mutable size : int; latch : Coroutine.Co.latch }

type t = {
  gc_name : string;  (* "shard3.gc": sanitizer var and latch label *)
  window_ns : float;
  max_batch : int;
  mutable mode : mode;
  mutable san : Sanitize.Schedsan.t option;
  mutable cur : batch option;
  mutable batches : int;
  mutable synced_entries : int;
  size_hist : Util.Histogram.t;
}

(* Planted-race kill switch (tests only): skip the schedsan mutex while
   keeping the shared-state annotations. *)
let plant_race = ref false

let create ~name ~window_ns ~max_batch =
  {
    gc_name = name ^ ".gc";
    window_ns;
    max_batch = max 1 max_batch;
    mode = Sync;
    san = None;
    cur = None;
    batches = 0;
    synced_entries = 0;
    size_hist = Util.Histogram.create ();
  }

let set_mode t mode ~san =
  t.mode <- mode;
  t.san <- san

let lock t =
  if not !plant_race then
    match t.san with Some s -> Sanitize.Schedsan.lock s t.gc_name | None -> ()

let unlock t =
  if not !plant_race then
    match t.san with Some s -> Sanitize.Schedsan.unlock s t.gc_name | None -> ()

let note_write t =
  match t.san with Some s -> Sanitize.Schedsan.write s t.gc_name | None -> ()

let note_read t =
  match t.san with Some s -> Sanitize.Schedsan.read s t.gc_name | None -> ()

let record t ~size =
  t.batches <- t.batches + 1;
  t.synced_entries <- t.synced_entries + size;
  Util.Histogram.record t.size_hist (float_of_int size)

let sync_now t engine ~size =
  Core.Engine.sync_wal engine;
  record t ~size

(* The calling writer has just staged its WAL record; return once that
   record is durable. *)
let commit t engine =
  match t.mode with
  | Sync -> sync_now t engine ~size:1
  | Batch -> (
      lock t;
      note_write t;
      match t.cur with
      | Some b ->
          (* Follower: join the open batch; the joining write that fills it
             closes it so late arrivals start a fresh one. *)
          b.size <- b.size + 1;
          if b.size >= t.max_batch then t.cur <- None;
          unlock t;
          Obs.Attr.with_phase Obs.Attr.Group_commit_wait (fun () ->
              Coroutine.Co.await b.latch)
      | None ->
          (* Leader: open a batch and hold it for the window. *)
          let b = { size = 1; latch = Coroutine.Co.latch ~name:t.gc_name () } in
          t.cur <- Some b;
          unlock t;
          let opened = Coroutine.Co.now () in
          let rec hold () =
            lock t;
            note_read t;
            let size = b.size in
            let still_open = match t.cur with Some b' -> b' == b | None -> false in
            unlock t;
            if
              still_open && size < t.max_batch
              && Coroutine.Co.now () -. opened < t.window_ns
            then begin
              let t0 = Coroutine.Co.now () in
              Coroutine.Co.yield ();
              (* A yield that moved neither the clock nor the batch means no
                 other runnable client exists; holding longer is pointless
                 (and would spin forever on an otherwise idle scheduler). *)
              if Coroutine.Co.now () > t0 || b.size > size then hold ()
            end
          in
          Obs.Attr.with_phase Obs.Attr.Group_commit_wait hold;
          lock t;
          note_write t;
          (match t.cur with Some b' when b' == b -> t.cur <- None | _ -> ());
          let size = b.size in
          unlock t;
          sync_now t engine ~size;
          Coroutine.Co.signal b.latch)

let batches t = t.batches
let synced_entries t = t.synced_entries
let size_hist t = t.size_hist

let mean_batch t =
  if t.batches = 0 then 0.0 else float_of_int t.synced_entries /. float_of_int t.batches

(** Per-shard group commit: coalesce concurrent writers' WAL syncs into
    one log append + fsync.

    Shard engines run with [wal_external_sync]: a put stages its record
    but the durability point — {!Core.Engine.sync_wal} — happens here. In
    [Sync] mode (no scheduler) every commit syncs immediately, a batch of
    one, so an ack still implies durability. In [Batch] mode the first
    committing coroutine leads: it holds the batch open for
    [group_commit_window]/[group_commit_max], syncs once for every
    member's staged record, and signals the members' latch — a crash
    before that sync loses the whole batch, never a subset. *)

type mode = Sync | Batch

type t

val plant_race : bool ref
(** Kill switch for the sanitizer test: skip the schedsan mutex around the
    batch state while keeping the shared-var annotations, so schedsan must
    report the leader/follower write-write race. *)

val create : name:string -> window_ns:float -> max_batch:int -> t
(** [name] ("shard3") labels the sanitizer variable and latch. *)

val set_mode : t -> mode -> san:Sanitize.Schedsan.t option -> unit
(** Switch modes; [Batch] requires the callers to be coroutines under one
    scheduler (whose sanitizer is passed as [san]). *)

val commit : t -> Core.Engine.t -> unit
(** The calling writer has just staged its WAL record into [engine]'s
    group buffer; return once that record is durable (leading, joining, or
    syncing inline per mode). *)

val batches : t -> int
val synced_entries : t -> int
val mean_batch : t -> float
val size_hist : t -> Util.Histogram.t

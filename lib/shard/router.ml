(* The range-sharded front door: N engines partitioned by key range behind
   one router, sharing the PM and SSD devices, the block cache, and the
   clock, while each shard owns its WAL, memtable, and manifest chain (a
   named superblock root slot per shard).

   Writes route by binary search over the shard boundaries; cross-shard
   scans concatenate per-shard results in shard order — shards hold
   disjoint ranges, so the concatenation is globally ordered and
   duplicate-free by construction. Each shard also carries:

   - a {!Group_commit} batcher owning the WAL-sync durability point
     (shard engines run [wal_external_sync]);
   - an {!Admission} gate applying soft-delay / hard-stall backpressure
     from the shard's compaction debt;
   - one background worker, modelled as a [busy_until] horizon: a flush or
     forced compaction runs on the foreground clock, is rewound (the
     repo's overlap-rebate idiom, cf. [Engine.with_major_timing]), and
     booked to the horizon — the *next* writer needing background work on
     that shard waits for the horizon first. One shard serialises all
     background work behind one horizon; N shards run N workers, which is
     exactly the concurrency a sharded store buys. *)

type shard = {
  s_idx : int;
  s_lo : string;
  s_hi : string;  (* exclusive upper bound; sentinel on the last shard *)
  engine : Core.Engine.t;
  gc : Group_commit.t;
  adm : Admission.t;
  mutable busy_until : float;  (* background worker horizon *)
  (* gray-failure tolerance (lib/health): the breaker guards this shard's
     device neighbourhood, the trackers hold its healthy-latency
     baselines, and the ledger books every health-API op outcome *)
  breaker : Health.Breaker.t;
  read_tracker : Health.Tracker.t;
  write_tracker : Health.Tracker.t;
  ledger : Health.Ledger.t;
}

type t = {
  config : Core.Config.t;
  clock : Sim.Clock.t;
  pm : Pmem.t;
  ssd : Ssd.t;
  cache : Cache.Block_cache.t option;
  shards : shard array;
  (* Router-level op latencies: include dispatch, admission and
     group-commit waits the per-engine histograms cannot see. *)
  read_lat : Util.Histogram.t;
  write_lat : Util.Histogram.t;
  scan_lat : Util.Histogram.t;
  mutable puts : int;
  mutable gets : int;
  mutable deletes : int;
  mutable scans : int;
}

let max_key_sentinel = "\xff\xff\xff\xff\xff\xff\xff\xff"

(* Per-shard engine configuration: own namespace (manifest root, name,
   seed), shared-budget slices (level-0 capacity and the cost-model
   thresholds split N ways so the shards together spend the configured
   budget), and the WAL durability point handed to the group committer. *)
let shard_config cfg n i =
  let scale x = max 1 (x / n) in
  let l0_strategy =
    match cfg.Core.Config.l0_strategy with
    | Core.Config.Cost_based p ->
        Core.Config.Cost_based
          {
            p with
            Compaction.Cost_model.tau_m = scale p.Compaction.Cost_model.tau_m;
            tau_t = scale p.Compaction.Cost_model.tau_t;
          }
    | Core.Config.Conventional { max_tables; max_bytes } ->
        Core.Config.Conventional { max_tables; max_bytes = Option.map scale max_bytes }
    | Core.Config.Matrix { columns; trigger_bytes } ->
        Core.Config.Matrix { columns; trigger_bytes = scale trigger_bytes }
  in
  {
    cfg with
    Core.Config.name = Printf.sprintf "%s/shard%d" cfg.Core.Config.name i;
    l0_capacity = scale cfg.Core.Config.l0_capacity;
    l0_strategy;
    manifest_root = (if n = 1 then "" else Printf.sprintf "shard%d" i);
    wal_external_sync = cfg.Core.Config.durable;
    shard_count = n;
    seed = cfg.Core.Config.seed + (131 * i);
  }

let ranges n boundaries =
  let boundaries = List.sort_uniq String.compare boundaries in
  if List.length boundaries <> n - 1 then
    invalid_arg
      (Printf.sprintf "Router: %d shards need %d boundaries, got %d" n (n - 1)
         (List.length boundaries));
  List.iter
    (fun b -> if b = "" then invalid_arg "Router: empty boundary key")
    boundaries;
  List.combine ("" :: boundaries) (boundaries @ [ max_key_sentinel ])

(* Fallback split: byte-uniform over the first key byte. Workload-aware
   callers pass real boundaries (see {!ycsb_boundaries}). *)
let default_boundaries n =
  List.init (n - 1) (fun i -> String.make 1 (Char.chr ((i + 1) * 256 / n)))

let ycsb_boundaries ~records ~shards =
  List.init (shards - 1) (fun i -> Util.Keys.ycsb_key (records * (i + 1) / shards))

let retail_boundaries ~tables ~shards =
  List.init (shards - 1) (fun i -> Util.Keys.table_prefix (tables * (i + 1) / shards))

let shared_cache clock cfg =
  if cfg.Core.Config.block_cache_mb > 0 then
    Some
      (Cache.Block_cache.create ~clock
         ~capacity_bytes:(cfg.Core.Config.block_cache_mb * 1024 * 1024) ())
  else None

let breaker_config cfg =
  {
    Health.Breaker.window = cfg.Core.Config.breaker_window;
    failure_threshold = cfg.Core.Config.breaker_failure_threshold;
    error_rate = cfg.Core.Config.breaker_error_rate;
    cooldown_ns = cfg.Core.Config.breaker_cooldown_ns;
    half_open_probes = cfg.Core.Config.breaker_half_open_probes;
  }

let make_shards cfg n mk_engine rs =
  Array.of_list
    (List.mapi
       (fun i (lo, hi) ->
         let scfg = shard_config cfg n i in
         let engine = mk_engine i scfg in
         {
           s_idx = i;
           s_lo = lo;
           s_hi = hi;
           engine;
           breaker =
             Health.Breaker.create ~config:(breaker_config cfg)
               (Core.Engine.clock engine);
           read_tracker = Health.Tracker.create ();
           write_tracker = Health.Tracker.create ();
           ledger = Health.Ledger.create ();
           gc =
             Group_commit.create
               ~name:(Printf.sprintf "shard%d" i)
               ~window_ns:cfg.Core.Config.group_commit_window_ns
               ~max_batch:cfg.Core.Config.group_commit_max;
           adm =
             Admission.create
               ~clock:(Core.Engine.clock engine)
               ~soft_tables:cfg.Core.Config.admission_soft_tables
               ~hard_tables:cfg.Core.Config.admission_hard_tables
               ~soft_delay_ns:cfg.Core.Config.admission_soft_delay_ns;
           busy_until = 0.0;
         })
       rs)

let make config clock pm ssd cache shards =
  {
    config;
    clock;
    pm;
    ssd;
    cache;
    shards;
    read_lat = Util.Histogram.create ();
    write_lat = Util.Histogram.create ();
    scan_lat = Util.Histogram.create ();
    puts = 0;
    gets = 0;
    deletes = 0;
    scans = 0;
  }

let create ?(boundaries = []) ?(clock = Sim.Clock.create ()) cfg =
  let n = max 1 cfg.Core.Config.shard_count in
  let boundaries = if boundaries = [] && n > 1 then default_boundaries n else boundaries in
  let rs = ranges n boundaries in
  let pm = Pmem.create ~params:cfg.Core.Config.pm_params clock in
  if not cfg.Core.Config.sanitize then Pmem.set_sanitizer pm None;
  let ssd = Ssd.create ~params:cfg.Core.Config.ssd_params clock in
  let cache = shared_cache clock cfg in
  let shards = make_shards cfg n (fun _ scfg -> Core.Engine.create ~pm ~ssd ?cache scfg) rs in
  make cfg clock pm ssd cache shards

(* Rebuild every shard from the shared devices. Each shard recovers its
   own manifest chain with [~orphan_gc:false] — one shard's view is too
   narrow to reclaim on a shared device — and the router then GCs the
   union: anything no shard's manifest, WAL, quarantine list, or
   superblock slot references. *)
let recover ?(boundaries = []) cfg ~pm ~ssd =
  let n = max 1 cfg.Core.Config.shard_count in
  let boundaries = if boundaries = [] && n > 1 then default_boundaries n else boundaries in
  let rs = ranges n boundaries in
  let clock = Pmem.clock pm in
  let cache = shared_cache clock cfg in
  let shards =
    make_shards cfg n (fun _ scfg -> Core.Engine.recover ~orphan_gc:false ?cache scfg ~pm ~ssd) rs
  in
  let region_referenced = Hashtbl.create 64 and file_referenced = Hashtbl.create 64 in
  let keep_region id = Hashtbl.replace region_referenced id () in
  let keep_file id = Hashtbl.replace file_referenced id () in
  let keep_state (state : Core.Manifest.state) =
    List.iter
      (fun (ps : Core.Manifest.partition_state) ->
        List.iter (fun (r : Core.Manifest.row) -> keep_region r.region_id) ps.unsorted;
        List.iter keep_region ps.sorted_run;
        List.iter keep_file ps.ssd_l0;
        List.iter (List.iter keep_file) ps.levels)
      state.Core.Manifest.partitions;
    (match state.Core.Manifest.wal_file_id with Some id -> keep_file id | None -> ());
    List.iter
      (fun (q : Core.Manifest.quarantine) ->
        match q.Core.Manifest.source with
        | Core.Manifest.Q_region id -> keep_region id
        | Core.Manifest.Q_file id -> keep_file id)
      state.Core.Manifest.quarantined
  in
  Array.iter
    (fun s ->
      (match
         Core.Manifest.load
           ~root:(Core.Engine.config s.engine).Core.Config.manifest_root ssd
       with
      | Some state -> keep_state state
      | None -> ());
      match Core.Engine.wal s.engine with
      | Some w -> keep_file (Core.Wal.file_id w)
      | None -> ())
    shards;
  let keep_slots (cur, prev) =
    List.iter (function Some id -> keep_file id | None -> ()) [ cur; prev ]
  in
  keep_slots (Ssd.root_slots ssd);
  List.iter (fun name -> keep_slots (Ssd.root_slots ~name ssd)) (Ssd.root_names ssd);
  let orphan_regions =
    List.filter
      (fun r -> not (Hashtbl.mem region_referenced (Pmem.region_id r)))
      (Pmem.live_regions pm)
  in
  let orphan_files =
    List.filter (fun id -> not (Hashtbl.mem file_referenced id)) (Ssd.live_file_ids ssd)
  in
  List.iter (Pmem.free pm) orphan_regions;
  List.iter
    (fun id ->
      match Ssd.find_file ssd id with Some f -> Ssd.delete_file ssd f | None -> ())
    orphan_files;
  make cfg clock pm ssd cache shards

let config t = t.config
let clock t = t.clock
let pm t = t.pm
let ssd t = t.ssd
let block_cache t = t.cache
let shard_count t = Array.length t.shards
let engines t = Array.map (fun s -> s.engine) t.shards

(* Last shard whose lower bound is <= key (boundaries are sorted). *)
let shard_index t key =
  let n = Array.length t.shards in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if String.compare t.shards.(mid).s_lo key <= 0 then bs mid hi else bs lo (mid - 1)
  in
  bs 0 (n - 1)

let shard_of t key = shard_index t key

(* --- Background worker model ------------------------------------------- *)

(* Wait for the shard's in-flight background job; false = nothing to wait
   for. The wait is the sharding bottleneck made visible: on one shard all
   flush/compaction jobs queue behind one horizon. *)
let wait_background t s =
  let now = Sim.Clock.now t.clock in
  if s.busy_until > now then begin
    Sim.Clock.advance_to t.clock s.busy_until;
    true
  end
  else false

(* Run [f] as the shard's background job: measured on the foreground
   clock, rewound (rebated), and booked to the worker horizon. The
   absorbing frame keeps attribution exact: the rewind happens inside
   it, so the op is charged only the post-rebate delta (the wait, if
   any) while [f]'s own flush/compaction detail lands in the background
   books. *)
let background_run t s f =
  Obs.Attr.with_phase Obs.Attr.Stall_wait @@ fun () ->
  ignore (wait_background t s);
  let t0 = Sim.Clock.now t.clock in
  f ();
  let dt = Float.max 0.0 (Sim.Clock.now t.clock -. t0) in
  Sim.Clock.rewind t.clock dt;
  s.busy_until <- t0 +. dt

let flush_engine s =
  let attempts = ref 0 in
  let rec go () =
    try Core.Engine.flush s.engine
    with Pmem.Out_of_space _ when !attempts < 32 ->
      incr attempts;
      Core.Engine.force_major_compaction s.engine;
      go ()
  in
  go ()

(* Conservative per-entry overhead (seq/CRC framing + skiplist node); only
   used to pre-trigger the background flush slightly before the engine's
   own inline threshold. *)
let entry_overhead = 64

(* --- Operations --------------------------------------------------------- *)

let dispatch t key =
  Obs.Attr.with_phase Obs.Attr.Router_dispatch (fun () -> t.shards.(shard_index t key))

let durable t = t.config.Core.Config.durable

let apply_write t ~key ~bytes f =
  Obs.Attr.with_op Obs.Attr.Write @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let s = dispatch t key in
  Admission.admit s.adm s.engine
    ~wait_background:(fun () -> wait_background t s)
    ~relieve:(fun () ->
      background_run t s (fun () ->
          Core.Engine.force_internal_compaction s.engine;
          Core.Engine.force_major_compaction s.engine));
  (* Hand a full memtable to the shard's background worker before the
     engine's inline (fully foreground) flush path would fire. *)
  if
    Core.Engine.memtable_bytes s.engine + bytes + entry_overhead
    >= (Core.Engine.config s.engine).Core.Config.memtable_bytes
  then background_run t s (fun () -> flush_engine s);
  f s.engine;
  if durable t then Group_commit.commit s.gc s.engine;
  Util.Histogram.record t.write_lat (Float.max 0.0 (Sim.Clock.now t.clock -. t0))

let put ?(update = false) t ~key value =
  t.puts <- t.puts + 1;
  apply_write t ~key
    ~bytes:(String.length key + String.length value)
    (* pmlint:allow checked-path: Router.put is the documented unchecked
       API — crash sweeps and benches bypass health gating by design *)
    (fun engine -> Core.Engine.put ~update engine ~key value)

let delete t key =
  t.deletes <- t.deletes + 1;
  apply_write t ~key ~bytes:(String.length key) (fun engine ->
      (* pmlint:allow checked-path: Router.delete is the documented
         unchecked API, same contract as Router.put above *)
      Core.Engine.delete engine key)

let get t key =
  t.gets <- t.gets + 1;
  Obs.Attr.with_op Obs.Attr.Read @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let s = dispatch t key in
  (* pmlint:allow checked-path: Router.get is the documented unchecked
     API — the golden-model checkers need raw answers, not typed degraded
     ones *)
  let r = Core.Engine.get s.engine key in
  Util.Histogram.record t.read_lat (Float.max 0.0 (Sim.Clock.now t.clock -. t0));
  r

(* --- Health-aware operations -------------------------------------------- *)

(* The gray-failure front door: the same dispatch and write path as
   [put]/[get], plus per-shard circuit breaking, latency-vs-baseline
   fail-slow diagnosis, deadline budgets, and typed degraded answers.
   Breakers are consulted *before* any engine mutation, so a shed write
   provably never reached the store; a healthy shard never consults a
   sibling's breaker, so one sick device range cannot stall the rest. *)

type write_result =
  | Acked
  | Write_shed of string
  | Write_failed of string

type read_result =
  | Served of string option
  | Served_degraded of { value : string option; reason : string }
  | Read_unavailable of string

let breaker_decision t s =
  if t.config.Core.Config.breaker_enabled then Health.Breaker.decide s.breaker
  else Health.Breaker.Allow

(* One operation latency against the shard's frozen baseline: a sample
   past [breaker_slow_factor] x baseline is diagnosed fail-slow and
   counts as a breaker failure even though it returned the right answer.
   The instantaneous comparison (not the EWMA) is deliberate — probes
   after the fault clears must read as healthy immediately, or a
   half-open breaker could never close. *)
let note_latency t s tracker lat =
  Health.Tracker.observe tracker lat;
  if t.config.Core.Config.breaker_enabled then
    if
      Health.Tracker.warmed_up tracker
      && lat
         >= t.config.Core.Config.breaker_slow_factor
            *. Health.Tracker.baseline tracker
    then Health.Breaker.record_failure s.breaker
    else Health.Breaker.record_success s.breaker

let note_error t s =
  if t.config.Core.Config.breaker_enabled then
    Health.Breaker.record_failure s.breaker

(* Absolute deadline for this op; explicit argument wins over config. *)
let deadline_of t kind deadline_ns =
  let budget =
    match deadline_ns with
    | Some d -> d
    | None -> (
        match kind with
        | `Read -> t.config.Core.Config.deadline_read_ns
        | `Write -> t.config.Core.Config.deadline_write_ns)
  in
  if budget > 0.0 then Some (Sim.Clock.now t.clock +. budget) else None

(* Would queueing this write behind the shard's backlog blow its budget?
   Shedding at admission is the deadline-aware choice: the caller gets a
   typed refusal now instead of an ack that arrives too late to matter.
   The worker horizon only matters when *this* write would hand a full
   memtable to the background worker (that path waits for the horizon);
   a non-flushing write sails past a busy worker untouched. *)
let would_blow_deadline t s ~bytes deadline =
  let now = Sim.Clock.now t.clock in
  let will_flush =
    Core.Engine.memtable_bytes s.engine + bytes + entry_overhead
    >= (Core.Engine.config s.engine).Core.Config.memtable_bytes
  in
  deadline -. now <= 0.0
  || (will_flush && s.busy_until -. now > deadline -. now)
  || Core.Engine.compaction_debt_tables s.engine
     >= t.config.Core.Config.admission_hard_tables

let missed_deadline t deadline =
  match deadline with Some d -> Sim.Clock.now t.clock > d | None -> false

let apply_write_checked ?deadline_ns t ~key ~bytes f =
  Obs.Attr.with_op Obs.Attr.Write @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let s = dispatch t key in
  let deadline = deadline_of t `Write deadline_ns in
  Obs.Attr.set_deadline deadline;
  let finish result =
    Obs.Attr.set_deadline None;
    Util.Histogram.record t.write_lat (Float.max 0.0 (Sim.Clock.now t.clock -. t0));
    (match (result, missed_deadline t deadline) with
    | _, true -> Health.Ledger.record s.ledger Health.Ledger.Deadline_miss
    | Acked, false -> Health.Ledger.record s.ledger Health.Ledger.Ok_op
    | Write_shed _, false -> Health.Ledger.record s.ledger Health.Ledger.Shed
    | Write_failed _, false -> Health.Ledger.record s.ledger Health.Ledger.Failed);
    result
  in
  match breaker_decision t s with
  | Health.Breaker.Reject -> finish (Write_shed "breaker_open")
  | Health.Breaker.Allow | Health.Breaker.Probe -> (
      match deadline with
      | Some d when would_blow_deadline t s ~bytes d -> finish (Write_shed "deadline")
      | _ -> (
          match
            Admission.admit s.adm s.engine
              ~wait_background:(fun () -> wait_background t s)
              ~relieve:(fun () ->
                background_run t s (fun () ->
                    Core.Engine.force_internal_compaction s.engine;
                    Core.Engine.force_major_compaction s.engine));
            if
              Core.Engine.memtable_bytes s.engine + bytes + entry_overhead
              >= (Core.Engine.config s.engine).Core.Config.memtable_bytes
            then background_run t s (fun () -> flush_engine s);
            (* Device time only: measured after admission and background
               hand-off, so stalls on a *healthy* shard do not read as
               fail-slow. *)
            let t1 = Sim.Clock.now t.clock in
            f s.engine;
            if durable t then Group_commit.commit s.gc s.engine;
            Sim.Clock.now t.clock -. t1
          with
          | device_ns ->
              note_latency t s s.write_tracker device_ns;
              finish Acked
          | exception Ssd.Io_error _ ->
              note_error t s;
              (* The write may or may not have reached the memtable/WAL
                 before the error surfaced — the caller must treat it as
                 ambiguous, exactly like a crash mid-op. *)
              finish (Write_failed "io_error")))

let put_checked ?(update = false) ?deadline_ns t ~key value =
  t.puts <- t.puts + 1;
  apply_write_checked ?deadline_ns t ~key
    ~bytes:(String.length key + String.length value)
    (* pmlint:allow checked-path: this lambda is the checked path's own
       final dispatch — apply_write_checked has already run the breaker,
       deadline and shed gates before it calls the engine *)
    (fun engine -> Core.Engine.put ~update engine ~key value)

let delete_checked ?deadline_ns t key =
  t.deletes <- t.deletes + 1;
  apply_write_checked ?deadline_ns t ~key ~bytes:(String.length key)
    (* pmlint:allow checked-path: final dispatch after gating, same
       contract as put_checked above *)
    (fun engine -> Core.Engine.delete engine key)

let get_checked ?deadline_ns t key =
  t.gets <- t.gets + 1;
  Obs.Attr.with_op Obs.Attr.Read @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let s = dispatch t key in
  let deadline = deadline_of t `Read deadline_ns in
  Obs.Attr.set_deadline deadline;
  let finish result =
    Obs.Attr.set_deadline None;
    Util.Histogram.record t.read_lat (Float.max 0.0 (Sim.Clock.now t.clock -. t0));
    (match (result, missed_deadline t deadline) with
    | _, true -> Health.Ledger.record s.ledger Health.Ledger.Deadline_miss
    | Served _, false -> Health.Ledger.record s.ledger Health.Ledger.Ok_op
    | Served_degraded _, false -> Health.Ledger.record s.ledger Health.Ledger.Degraded
    | Read_unavailable _, false ->
        Health.Ledger.record s.ledger Health.Ledger.Unavailable);
    result
  in
  (* Degraded fallback: the memtable + PM level-0 never touch the sick
     SSD, and a hit there is exact (strictly newer than anything below). *)
  let pm_only reason_hit reason_miss =
    match Core.Engine.get_pm_only s.engine key with
    | `Hit v -> finish (Served_degraded { value = v; reason = reason_hit })
    | `Miss -> finish (Read_unavailable reason_miss)
  in
  match breaker_decision t s with
  | Health.Breaker.Reject -> pm_only "breaker_open_pm" "breaker_open"
  | Health.Breaker.Allow | Health.Breaker.Probe -> (
      match Core.Engine.get_checked s.engine key with
      | Ok v ->
          note_latency t s s.read_tracker (Sim.Clock.now t.clock -. t0);
          finish (Served v)
      | Error e ->
          (* Integrity degradation (quarantine crossing) is the medium's
             rot, not the device's sickness: the device answered fine. *)
          note_latency t s s.read_tracker (Sim.Clock.now t.clock -. t0);
          finish
            (Served_degraded
               { value = e.Core.Engine.fallback; reason = "quarantine" })
      | exception Ssd.Io_error _ ->
          note_error t s;
          pm_only "io_error_pm" "io_error")

(* Shards overlapping [start, stop), in range order. *)
let overlapping t ~start ~stop =
  let acc = ref [] in
  for i = Array.length t.shards - 1 downto 0 do
    let s = t.shards.(i) in
    if String.compare s.s_lo stop < 0 && String.compare start s.s_hi < 0 then
      acc := s :: !acc
  done;
  !acc

let max_str a b = if String.compare a b >= 0 then a else b

let scan_range t ~start ~stop =
  t.scans <- t.scans + 1;
  Obs.Attr.with_op Obs.Attr.Scan @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let r =
    overlapping t ~start ~stop
    |> List.concat_map (fun s ->
           (* pmlint:allow checked-path: Router.scan_range is the
              documented unchecked API — the scan-vs-get checker
              invariants need the raw merged view *)
           Core.Engine.scan_range s.engine ~start:(max_str start s.s_lo)
             ~stop:(if String.compare stop s.s_hi <= 0 then stop else s.s_hi))
  in
  Util.Histogram.record t.scan_lat (Float.max 0.0 (Sim.Clock.now t.clock -. t0));
  r

(* Bounded scan via per-shard iterators: consume the shard holding [start],
   then continue through successive shards until [limit] pairs. *)
let scan t ~start ~limit =
  t.scans <- t.scans + 1;
  Obs.Attr.with_op Obs.Attr.Scan @@ fun () ->
  let t0 = Sim.Clock.now t.clock in
  let n = Array.length t.shards in
  let rec go i from remaining acc =
    if remaining <= 0 || i >= n then List.concat (List.rev acc)
    else
      let s = t.shards.(i) in
      let it = Core.Iterator.seek s.engine (max_str from s.s_lo) in
      let got = Core.Iterator.take it remaining in
      go (i + 1) s.s_hi (remaining - List.length got) (got :: acc)
  in
  let r = go (shard_index t start) start limit [] in
  Util.Histogram.record t.scan_lat (Float.max 0.0 (Sim.Clock.now t.clock -. t0));
  r

(* Full iterator walk in shard order (the checker's third read path). *)
let iter_all t =
  Array.to_list t.shards
  |> List.concat_map (fun s ->
         Core.Iterator.fold s.engine ~start:s.s_lo ~init:[] (fun acc k v -> (k, v) :: acc)
         |> List.rev)

let flush t = Array.iter (fun s -> flush_engine s) t.shards

let close t = flush t

(* --- Group-commit mode -------------------------------------------------- *)

let enable_group_commit t sched =
  let san = Coroutine.Scheduler.sanitizer sched in
  Array.iter (fun s -> Group_commit.set_mode s.gc Group_commit.Batch ~san) t.shards

let disable_group_commit t =
  Array.iter (fun s -> Group_commit.set_mode s.gc Group_commit.Sync ~san:None) t.shards

(* --- Aggregates --------------------------------------------------------- *)

let sum f t = Array.fold_left (fun acc s -> acc + f s) 0 t.shards
let sumf f t = Array.fold_left (fun acc s -> acc +. f s) 0.0 t.shards

let stall_count t = sum (fun s -> Admission.stalls s.adm) t
let stall_ns t = sumf (fun s -> Admission.stall_ns s.adm) t
let soft_delays t = sum (fun s -> Admission.soft_delays s.adm) t
let gc_batches t = sum (fun s -> Group_commit.batches s.gc) t
let gc_synced_entries t = sum (fun s -> Group_commit.synced_entries s.gc) t

let gc_mean_batch t =
  let b = gc_batches t in
  if b = 0 then 0.0 else float_of_int (gc_synced_entries t) /. float_of_int b

let gc_size_hist t =
  let h = Util.Histogram.create () in
  Array.iter (fun s -> Util.Histogram.merge h (Group_commit.size_hist s.gc)) t.shards;
  h

let read_latency t = t.read_lat
let write_latency t = t.write_lat
let scan_latency t = t.scan_lat
let dispatched t = t.puts + t.gets + t.deletes + t.scans

(* --- Health introspection ----------------------------------------------- *)

type shard_health = {
  h_idx : int;
  h_lo : string;
  h_state : Health.Breaker.state;
  h_error_rate : float;
  h_trips : int;
  h_rejections : int;
  h_read_slow : float;  (* read EWMA / baseline *)
  h_write_slow : float;
  h_ledger : Health.Ledger.t;
}

let shard_breaker t i = t.shards.(i).breaker
let shard_ledger t i = t.shards.(i).ledger

let reset_health_baselines t =
  Array.iter
    (fun s ->
      Health.Tracker.reset_ewma s.read_tracker;
      Health.Tracker.reset_ewma s.write_tracker)
    t.shards

let health t =
  Array.map
    (fun s ->
      {
        h_idx = s.s_idx;
        h_lo = s.s_lo;
        h_state = Health.Breaker.state s.breaker;
        h_error_rate = Health.Breaker.error_rate s.breaker;
        h_trips = Health.Breaker.trips s.breaker;
        h_rejections = Health.Breaker.rejections s.breaker;
        h_read_slow = Health.Tracker.slow_factor s.read_tracker;
        h_write_slow = Health.Tracker.slow_factor s.write_tracker;
        h_ledger = s.ledger;
      })
    t.shards

let ledger_totals t =
  let total = Health.Ledger.create () in
  Array.iter (fun s -> Health.Ledger.merge ~into:total s.ledger) t.shards;
  total

let breaker_trips t = sum (fun s -> Health.Breaker.trips s.breaker) t
let breaker_rejections t = sum (fun s -> Health.Breaker.rejections s.breaker) t

let pp_health ppf t =
  Fmt.pf ppf "@[<v>health: breakers %s, %d trips, %d rejections@,"
    (if t.config.Core.Config.breaker_enabled then "on" else "off")
    (breaker_trips t) (breaker_rejections t);
  Fmt.pf ppf "  totals: %a@," Health.Ledger.pp (ledger_totals t);
  Array.iter
    (fun h ->
      Fmt.pf ppf "  shard %d: %a err_rate=%.2f slow r/w %.1fx/%.1fx %a@," h.h_idx
        Health.Breaker.pp_state h.h_state h.h_error_rate h.h_read_slow
        h.h_write_slow Health.Ledger.pp h.h_ledger)
    (health t);
  Fmt.pf ppf "@]"

let sink t =
  {
    Workload.Sink.put = (fun ~update ~key value -> put ~update t ~key value);
    delete = (fun key -> delete t key);
    get = (fun key -> get t key);
    scan = (fun ~start ~limit -> scan t ~start ~limit);
    scan_range = (fun ~start ~stop -> scan_range t ~start ~stop);
  }

let view t =
  {
    Fault.Checker.v_scan_all = (fun () -> scan_range t ~start:"" ~stop:max_key_sentinel);
    v_get = (fun key -> get t key);
    v_iter_all = (fun () -> iter_all t);
  }

(* --- Observability ------------------------------------------------------ *)

let pp_stats ppf t =
  Fmt.pf ppf "@[<v>%s router: %d shards@," t.config.Core.Config.name
    (Array.length t.shards);
  Fmt.pf ppf "  dispatched: %d puts, %d gets, %d deletes, %d scans@," t.puts t.gets
    t.deletes t.scans;
  Fmt.pf ppf "  admission: %d stalls (%a), %d soft delays@," (stall_count t)
    Sim.Clock.pp_duration (stall_ns t) (soft_delays t);
  (let b = gc_batches t in
   if b > 0 then
     Fmt.pf ppf "  group commit: %d batches, %d entries, mean batch %.2f@," b
       (gc_synced_entries t) (gc_mean_batch t));
  let lat label h =
    if Util.Histogram.count h > 0 then
      Fmt.pf ppf "  %s latency p50/p99/p99.9: %a / %a / %a@," label Sim.Clock.pp_duration
        (Util.Histogram.percentile h 50.0)
        Sim.Clock.pp_duration
        (Util.Histogram.percentile h 99.0)
        Sim.Clock.pp_duration
        (Util.Histogram.percentile h 99.9)
  in
  lat "read" t.read_lat;
  lat "write" t.write_lat;
  lat "scan" t.scan_lat;
  Array.iter
    (fun s ->
      Fmt.pf ppf "  shard %d [%S, %s): stalls %d, batches %d, debt %d tables@," s.s_idx
        s.s_lo
        (if s.s_hi = max_key_sentinel then "<max>" else Printf.sprintf "%S" s.s_hi)
        (Admission.stalls s.adm) (Group_commit.batches s.gc)
        (Core.Engine.compaction_debt_tables s.engine))
    t.shards;
  Array.iter (fun s -> Fmt.pf ppf "@,%a" Core.Engine.pp_stats s.engine) t.shards;
  Fmt.pf ppf "@]"

let register_metrics reg t =
  let open Obs.Registry in
  register_int reg "shard.count" ~kind:Gauge ~help:"live range shards behind the router"
    (fun () -> Array.length t.shards);
  register_int reg "shard.dispatch.puts" ~help:"puts routed to a shard" (fun () -> t.puts);
  register_int reg "shard.dispatch.gets" ~help:"gets routed to a shard" (fun () -> t.gets);
  register_int reg "shard.dispatch.deletes" ~help:"deletes routed to a shard" (fun () ->
      t.deletes);
  register_int reg "shard.dispatch.scans" ~help:"scans fanned out across shards"
    (fun () -> t.scans);
  register_int reg "shard.stall_count" ~help:"writes hard-stalled by admission control"
    (fun () -> stall_count t);
  register_float reg "shard.stall_ns" ~kind:Counter
    ~help:"simulated ns writers spent hard-stalled at admission" (fun () -> stall_ns t);
  register_int reg "shard.soft_delays" ~help:"writes delayed in the admission soft zone"
    (fun () -> soft_delays t);
  register_int reg "shard.gc.batches" ~help:"group-commit batches synced" (fun () ->
      gc_batches t);
  register_int reg "shard.gc.synced_entries"
    ~help:"WAL records made durable by group-commit syncs" (fun () ->
      gc_synced_entries t);
  register_float reg "shard.gc.mean_batch" ~help:"mean writers per group-commit batch"
    (fun () -> gc_mean_batch t);
  register_histogram reg "shard.gc.batch_size" ~help:"group-commit batch size distribution"
    (fun () -> gc_size_hist t);
  register_histogram reg "shard.read_latency_ns"
    ~help:"router-level point-lookup latency (dispatch + engine) in ns" (fun () ->
      t.read_lat);
  register_histogram reg "shard.write_latency_ns"
    ~help:"router-level write latency (admission + engine + group commit) in ns"
    (fun () -> t.write_lat);
  register_histogram reg "shard.scan_latency_ns"
    ~help:"router-level scan latency (cross-shard merge) in ns" (fun () -> t.scan_lat);
  register_int reg "shard.health.breaker_trips"
    ~help:"circuit-breaker open transitions across all shards" (fun () ->
      breaker_trips t);
  register_int reg "shard.health.breaker_rejections"
    ~help:"operations fast-rejected by an open shard breaker" (fun () ->
      breaker_rejections t);
  register_int reg "shard.health.ok" ~help:"health-API ops answered normally in budget"
    (fun () -> Health.Ledger.ok (ledger_totals t));
  register_int reg "shard.health.degraded"
    ~help:"health-API ops answered via a typed degraded path" (fun () ->
      Health.Ledger.degraded (ledger_totals t));
  register_int reg "shard.health.shed"
    ~help:"health-API writes refused at admission before any engine mutation"
    (fun () -> Health.Ledger.shed (ledger_totals t));
  register_int reg "shard.health.unavailable"
    ~help:"health-API reads refused with no degraded answer available" (fun () ->
      Health.Ledger.unavailable (ledger_totals t));
  register_int reg "shard.health.failed"
    ~help:"health-API ops that surfaced a typed ambiguous failure" (fun () ->
      Health.Ledger.failed (ledger_totals t));
  register_int reg "shard.health.deadline_miss"
    ~help:"health-API ops whose answer arrived past its deadline budget" (fun () ->
      Health.Ledger.deadline_miss (ledger_totals t));
  Array.iter
    (fun s ->
      let p fmt = Printf.sprintf fmt s.s_idx in
      register_int reg (p "shard%d.debt_tables") ~kind:Gauge
        ~help:"level-0 backlog tables of this shard" (fun () ->
          Core.Engine.compaction_debt_tables s.engine);
      register_int reg (p "shard%d.l0_bytes") ~kind:Gauge
        ~help:"PM level-0 resident bytes of this shard" (fun () ->
          Core.Engine.l0_bytes s.engine);
      register_int reg (p "shard%d.stalls") ~help:"admission hard stalls at this shard"
        (fun () -> Admission.stalls s.adm);
      register_int reg (p "shard%d.gc.batches")
        ~help:"group-commit batches synced by this shard" (fun () ->
          Group_commit.batches s.gc);
      register_int reg (p "shard%d.breaker_state") ~kind:Gauge
        ~help:"circuit-breaker state of this shard (0 closed, 1 half-open, 2 open)"
        (fun () ->
          match Health.Breaker.state s.breaker with
          | Health.Breaker.Closed -> 0
          | Health.Breaker.Half_open -> 1
          | Health.Breaker.Open -> 2))
    t.shards;
  Obs.Attr.register_metrics reg;
  (match t.cache with Some c -> Cache.Block_cache.register_metrics reg c | None -> ());
  (match Pmem.sanitizer t.pm with
  | Some san -> Sanitize.Pmsan.register_metrics san reg
  | None -> ());
  Pmem.register_metrics reg t.pm;
  Ssd.register_metrics reg t.ssd

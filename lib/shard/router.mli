(** Range-sharded multi-engine front door.

    [shard_count] engines partition the keyspace by range behind one
    router that mirrors the single-engine API. Shards share the PM and
    SSD devices, the block cache, and the clock; each owns its WAL,
    memtable, and manifest chain (a named superblock root per shard).
    Writes route by binary search over the boundaries; cross-shard scans
    concatenate per-shard results in shard order — ranges are disjoint,
    so the result is globally ordered and duplicate-free by construction.
    Each shard carries a {!Group_commit} batcher (the WAL durability
    point under [wal_external_sync]) and an {!Admission} gate, plus one
    modelled background worker: flush/compaction time is rewound and
    booked to a [busy_until] horizon, so one shard serialises background
    work while N shards overlap it N ways. *)

type t

val create : ?boundaries:string list -> ?clock:Sim.Clock.t -> Core.Config.t -> t
(** Fresh router with [max 1 config.shard_count] shards. [boundaries]
    (sorted, [shard_count - 1] keys; shard [i] owns keys in
    [\[b(i-1), b(i))]) defaults to a byte-uniform split — pass
    {!ycsb_boundaries} or {!retail_boundaries} for workload-aware
    ranges. Devices and cache are created once and shared. *)

val recover : ?boundaries:string list -> Core.Config.t -> pm:Pmem.t -> ssd:Ssd.t -> t
(** Rebuild every shard from the shared crashed devices — the same
    [boundaries] must be supplied as at {!create} (the split is
    configuration, not persisted state). Each shard recovers its own
    named manifest chain with per-engine orphan GC disabled; the router
    then reclaims the union's orphans: structures referenced by no
    shard's manifest, WAL, quarantine list, or superblock slot. *)

val default_boundaries : int -> string list
(** Byte-uniform fallback split used when [create] gets no boundaries. *)

val ycsb_boundaries : records:int -> shards:int -> string list
(** Equal-population split of the YCSB key space ([Util.Keys.ycsb_key]). *)

val retail_boundaries : tables:int -> shards:int -> string list
(** Split of the retail table space on [Util.Keys.table_prefix] prefixes. *)

(** {1 Accessors} *)

val config : t -> Core.Config.t
val clock : t -> Sim.Clock.t
val pm : t -> Pmem.t
val ssd : t -> Ssd.t
val block_cache : t -> Cache.Block_cache.t option
val shard_count : t -> int

val engines : t -> Core.Engine.t array
(** Underlying engines in shard order (tests and doctor only). *)

val shard_of : t -> string -> int
(** Index of the shard owning [key]. *)

(** {1 Operations} *)

val put : ?update:bool -> t -> key:string -> string -> unit
val delete : t -> string -> unit
val get : t -> string -> string option
val scan_range : t -> start:string -> stop:string -> (string * string) list
val scan : t -> start:string -> limit:int -> (string * string) list

val iter_all : t -> (string * string) list
(** Full iterator walk across all shards (the checker's third path). *)

(** {1 Health-aware operations}

    The gray-failure front door: the same dispatch and write path as
    {!put}/{!get}, plus per-shard circuit breaking, fail-slow diagnosis
    against each shard's own latency baseline, deadline budgets, and
    typed degraded answers. Breakers are consulted before any engine
    mutation, so a [Write_shed] provably never reached the store; a
    healthy shard never consults a sibling's breaker, so one sick device
    range cannot stall the rest. Governed by [config.breaker_enabled]
    and the [config.breaker_*] / [config.deadline_*] knobs. *)

type write_result =
  | Acked
  | Write_shed of string
      (** refused before any engine mutation (open breaker, or the
          deadline budget cannot survive the shard's backlog); the store
          is unchanged *)
  | Write_failed of string
      (** a typed failure after the engine was touched — ambiguous, like
          a crash mid-op: the write may or may not be applied *)

type read_result =
  | Served of string option  (** normal answer *)
  | Served_degraded of { value : string option; reason : string }
      (** typed degraded answer: an exact memtable/PM-only hit behind an
          open breaker, or a quarantine-crossing fallback (possibly
          stale — reason ["quarantine"]) *)
  | Read_unavailable of string
      (** refused: breaker open (or device erroring) and the PM-only
          path cannot prove an answer *)

val put_checked :
  ?update:bool -> ?deadline_ns:float -> t -> key:string -> string -> write_result

val delete_checked : ?deadline_ns:float -> t -> string -> write_result

val get_checked : ?deadline_ns:float -> t -> string -> read_result
(** [deadline_ns] overrides [config.deadline_read_ns] /
    [config.deadline_write_ns] for this op; 0 or an absent config budget
    means no deadline. *)

val flush : t -> unit
val close : t -> unit

(** {1 Group commit} *)

val enable_group_commit : t -> Coroutine.Scheduler.t -> unit
(** Switch every shard's committer to [Batch] mode; writers must be
    coroutines under [sched] (whose sanitizer brackets the batch state). *)

val disable_group_commit : t -> unit

(** {1 Aggregates} *)

val stall_count : t -> int
val stall_ns : t -> float
val soft_delays : t -> int
val gc_batches : t -> int
val gc_synced_entries : t -> int
val gc_mean_batch : t -> float

val gc_size_hist : t -> Util.Histogram.t
(** Batch-size distribution merged across shards (fresh copy). *)

val read_latency : t -> Util.Histogram.t
val write_latency : t -> Util.Histogram.t
val scan_latency : t -> Util.Histogram.t

val dispatched : t -> int
(** Total operations routed (puts + gets + deletes + scans). *)

(** {1 Health introspection} *)

type shard_health = {
  h_idx : int;
  h_lo : string;  (** shard's lower bound key *)
  h_state : Health.Breaker.state;
  h_error_rate : float;  (** windowed breaker failure rate *)
  h_trips : int;
  h_rejections : int;
  h_read_slow : float;  (** read-latency EWMA / frozen baseline *)
  h_write_slow : float;
  h_ledger : Health.Ledger.t;
}

val health : t -> shard_health array

val ledger_totals : t -> Health.Ledger.t
(** Health-API outcome counters merged across shards (fresh copy). *)

val breaker_trips : t -> int
val breaker_rejections : t -> int

val shard_breaker : t -> int -> Health.Breaker.t
(** Shard [i]'s breaker (tests and the chaos harness). *)

val shard_ledger : t -> int -> Health.Ledger.t

val reset_health_baselines : t -> unit
(** Snap every shard's latency EWMA back to its baseline (after a fault
    episode clears, so recovered devices are not punished for the past). *)

val pp_health : t Fmt.t
(** Breaker states, outcome totals and per-shard health table (doctor). *)

val sink : t -> Workload.Sink.t
(** Drive the router from the workload generators. *)

val view : t -> Fault.Checker.view
(** The router's merged read paths for golden-model checking. *)

val pp_stats : t Fmt.t
(** Router aggregate (dispatch counts, admission, group commit, op
    latencies, per-shard summary) followed by every shard's engine
    stats. *)

val register_metrics : Obs.Registry.t -> t -> unit
(** Register [shard.*] aggregates, per-shard gauges, and — exactly once
    for the shared resources — attr phases, block cache, pmsan, and
    device counters. Use instead of [Engine.register_metrics] (which
    would collide on the shared names). *)

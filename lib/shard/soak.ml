(* Chaos soak: a long seeded run that interleaves gray-fault episodes
   (fail-slow devices, error storms, stuck fsyncs), crash-restart cycles
   (including a crash *during* recovery), and bit-rot injection over the
   sharded front door, continuously checked against the golden model.

   Unlike the crash sweeps — which replay one pristine workload per crash
   point — the soak is a single evolving history: faults arrive, breakers
   trip, writes are shed, the machine crashes and recovers, and the model
   tracks every typed outcome. The invariants are the availability story
   of the health layer:

   - no silent wrong answer, ever: a [Served] (or exact degraded) value
     must match the golden model unless the engine recorded the damage;
   - typed refusals are honest: a [Write_shed] provably never reached the
     store (the golden model drops it and the store must agree);
   - a [Write_failed] is ambiguous exactly like a crash mid-op — the
     harness re-reads at the next clean point and folds whichever outcome
     the store proves back into the model;
   - crash checkpoints run the full golden/manifest/sanitizer check (or
     the per-key damage-excusing check once corruption has been injected).

   Everything is seeded: episodes, victims, torn tails, storm phases. *)

type episode_kind =
  | Calm
  | Slow_pm
  | Slow_read
  | Error_storm
  | Stuck_fsync
  | Crash
  | Crash_in_recovery
  | Corrupt

let episode_name = function
  | Calm -> "calm"
  | Slow_pm -> "slow_pm"
  | Slow_read -> "slow_read"
  | Error_storm -> "error_storm"
  | Stuck_fsync -> "stuck_fsync"
  | Crash -> "crash"
  | Crash_in_recovery -> "crash_in_recovery"
  | Corrupt -> "corrupt"

type config = {
  seed : int;
  rounds : int;
  ops_per_round : int;
  keyspace : int;
  value_len : int;
  slow_factor : float;
  router_config : Core.Config.t;
  boundaries : string list;
}

let config ?(seed = 42) ?(rounds = 16) ?(ops_per_round = 600) ?(keyspace = 400)
    ?(value_len = 48) ?(slow_factor = 25.0) ?boundaries router_config =
  if not router_config.Core.Config.durable then
    invalid_arg "Shard.Soak.config: router config must be durable";
  let shards = max 1 router_config.Core.Config.shard_count in
  let boundaries =
    match boundaries with
    | Some b -> b
    | None ->
        if shards > 1 then Sweep.workload_boundaries ~keyspace ~shards else []
  in
  {
    seed;
    rounds;
    ops_per_round;
    keyspace;
    value_len;
    slow_factor;
    router_config;
    boundaries;
  }

type report = {
  soak_rounds : int;
  soak_ops : int;
  episode_counts : (string * int) list;
  ledger : Health.Ledger.t;
  healthy_total : int;
  healthy_served : int;
  sick_total : int;
  sick_within : int;
  trips : int;
  rejections : int;
  injected : int;
  crashes : int;
  double_crashes : int;
  recovery_ns : float list;
  violations : Fault.Checker.violation list;
}

let healthy_ratio (r : report) =
  if r.healthy_total = 0 then 1.0
  else float_of_int r.healthy_served /. float_of_int r.healthy_total

let sick_within_ratio (r : report) =
  if r.sick_total = 0 then 1.0
  else float_of_int r.sick_within /. float_of_int r.sick_total

let deadline_ok_ratio (r : report) = Health.Ledger.deadline_ok_ratio r.ledger
let clean (r : report) = r.violations = []

(* --- Internal state ----------------------------------------------------- *)

type state = {
  cfg : config;
  mutable router : Router.t;
  golden : Fault.Golden.t;
  (* key -> attempted value of a [Write_failed] (None = delete): the write
     may or may not have landed; resolved by read-back at clean points *)
  ambiguous : (string, string option) Hashtbl.t;
  mutable tolerant : bool;
      (* after injected corruption: full-view checks give way to the
         per-key damage-excusing check (mirrors the corruption sweep) *)
  stats : Fault.Plan.stats;
  rng : Util.Xoshiro.t;
  ledger : Health.Ledger.t;
  mutable ops : int;
  mutable healthy_total : int;
  mutable healthy_served : int;
  mutable sick_total : int;
  mutable sick_within : int;
  mutable trips : int;
  mutable rejections : int;
  mutable crashes : int;
  mutable double_crashes : int;
  mutable recovery_ns : float list;
  mutable violations : Fault.Checker.violation list;
  episode_counts : (string, int) Hashtbl.t;
}

exception Dead of string
(* recovery failed even after retries: the soak cannot continue *)

let fail st invariant detail =
  st.violations <- { Fault.Checker.invariant; detail } :: st.violations

let pp_v = Fmt.(Dump.option Dump.string)

let expected st key =
  match Fault.Golden.acked st.golden key with Some v -> v | None -> None

let damaged st key =
  let e = (Router.engines st.router).(Router.shard_of st.router key) in
  Core.Engine.damaged_key e key

let matches_ambiguous st key got =
  match Hashtbl.find_opt st.ambiguous key with
  | Some attempted -> got = attempted
  | None -> false

(* Exact-answer invariant: a served value must be the golden value, the
   still-ambiguous attempted value, or covered by a damage record. *)
let check_exact st ~ctx key got =
  let exp = expected st key in
  if got <> exp && (not (matches_ambiguous st key got)) && not (damaged st key)
  then
    fail st "silent-wrong-answer"
      (Fmt.str "%s: key %S expected %a, got %a" ctx key pp_v exp pp_v got)

let check_read st key = function
  | Router.Served v -> check_exact st ~ctx:"served" key v
  | Router.Served_degraded { value; reason } ->
      (* a quarantine fallback may legitimately be stale; every other
         degraded reason (PM-only behind a breaker) is an exact hit *)
      if reason <> "quarantine" then
        check_exact st ~ctx:("degraded:" ^ reason) key value
  | Router.Read_unavailable _ -> ()

(* --- Per-op accounting --------------------------------------------------- *)

let budget_of st = function
  | `Write -> st.cfg.router_config.Core.Config.deadline_write_ns
  | `Read -> st.cfg.router_config.Core.Config.deadline_read_ns

let account st ~is_sick kind outcome dt =
  let budget = budget_of st kind in
  let within = budget <= 0.0 || dt <= budget in
  let bucket =
    if not within then Health.Ledger.Deadline_miss
    else
      match outcome with
      | `Acked | `Served -> Health.Ledger.Ok_op
      | `Degraded -> Health.Ledger.Degraded
      | `Shed -> Health.Ledger.Shed
      | `Unavailable -> Health.Ledger.Unavailable
      | `Failed -> Health.Ledger.Failed
  in
  Health.Ledger.record st.ledger bucket;
  if is_sick then begin
    st.sick_total <- st.sick_total + 1;
    if within then st.sick_within <- st.sick_within + 1
  end
  else begin
    st.healthy_total <- st.healthy_total + 1;
    (* a healthy shard must *answer*, not refuse: only a definitive
       in-budget answer counts toward the healthy-shard ratio *)
    match bucket with
    | Health.Ledger.Ok_op | Health.Ledger.Degraded ->
        st.healthy_served <- st.healthy_served + 1
    | _ -> ()
  end

let one_op st ~sick i =
  st.ops <- st.ops + 1;
  let key =
    Printf.sprintf "user%06d" (Util.Xoshiro.int st.rng st.cfg.keyspace)
  in
  let is_sick = sick = Some (Router.shard_of st.router key) in
  let clock = Router.clock st.router in
  let t0 = Sim.Clock.now clock in
  let r = Util.Xoshiro.int st.rng 10 in
  if r < 6 then begin
    let v =
      Printf.sprintf "%d:%s" i (Util.Xoshiro.string st.rng st.cfg.value_len)
    in
    Fault.Golden.begin_put st.golden ~key v;
    let outcome =
      match Router.put_checked ~update:true st.router ~key v with
      | Router.Acked ->
          Fault.Golden.ack st.golden;
          Hashtbl.remove st.ambiguous key;
          `Acked
      | Router.Write_shed _ ->
          Fault.Golden.abort st.golden;
          `Shed
      | Router.Write_failed _ ->
          Fault.Golden.abort st.golden;
          Hashtbl.replace st.ambiguous key (Some v);
          `Failed
    in
    account st ~is_sick `Write outcome (Sim.Clock.now clock -. t0)
  end
  else if r < 7 then begin
    Fault.Golden.begin_delete st.golden key;
    let outcome =
      match Router.delete_checked st.router key with
      | Router.Acked ->
          Fault.Golden.ack st.golden;
          Hashtbl.remove st.ambiguous key;
          `Acked
      | Router.Write_shed _ ->
          Fault.Golden.abort st.golden;
          `Shed
      | Router.Write_failed _ ->
          Fault.Golden.abort st.golden;
          Hashtbl.replace st.ambiguous key None;
          `Failed
    in
    account st ~is_sick `Write outcome (Sim.Clock.now clock -. t0)
  end
  else begin
    let res = Router.get_checked st.router key in
    check_read st key res;
    let outcome =
      match res with
      | Router.Served _ -> `Served
      | Router.Served_degraded _ -> `Degraded
      | Router.Read_unavailable _ -> `Unavailable
    in
    account st ~is_sick `Read outcome (Sim.Clock.now clock -. t0)
  end

let run_ops st ~sick =
  for i = 0 to st.cfg.ops_per_round - 1 do
    one_op st ~sick i
  done

(* --- Clean points -------------------------------------------------------- *)

(* Resolve every ambiguous write by read-back: if the store holds the
   attempted value, the failed write did land — fold it into the model; if
   it holds the pre-op value, the model already agrees; anything else is a
   silent wrong answer. A quarantine crossing proves neither, so the key
   stays ambiguous (excused forever, like a crash-pending op). *)
let resolve_ambiguous st =
  let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.ambiguous [] in
  (* Flush first: a half-landed write (memtable yes, WAL no) would
     otherwise read back as its attempted value while still being
     volatile — promoting it into the golden model would turn the next
     crash into a phantom silent-wrong-answer. After a clean flush the
     read-back evidence is durable state. A failing flush (deep
     quarantine) leaves every key ambiguous for another round. *)
  if items <> [] then
    match Router.flush st.router with
    | exception _ -> ()
    | () ->
        List.iter
    (fun (key, attempted) ->
      match Router.get st.router key with
      | got ->
          Hashtbl.remove st.ambiguous key;
          if got = attempted then begin
            if Fault.Golden.acked st.golden key <> Some attempted then begin
              (match attempted with
              | Some v -> Fault.Golden.begin_put st.golden ~key v
              | None -> Fault.Golden.begin_delete st.golden key);
              Fault.Golden.ack st.golden
            end
          end
          else if got <> expected st key && not (damaged st key) then
            fail st "silent-wrong-answer"
              (Fmt.str
                 "ambiguous key %S resolved to %a (neither golden %a nor \
                  attempted %a)"
                 key pp_v got pp_v (expected st key) pp_v attempted)
          | exception Core.Engine.Degraded_read _ -> ())
          items

(* Re-admit traffic after an episode clears, the way an operator would:
   advance past the cooldown and feed each breaker its half-open probe
   quota. Latency EWMAs snap back to baseline so a recovered device is
   not punished for its past. *)
let close_breakers st =
  let clock = Router.clock st.router in
  let cooldown = st.cfg.router_config.Core.Config.breaker_cooldown_ns in
  for i = 0 to Router.shard_count st.router - 1 do
    let b = Router.shard_breaker st.router i in
    let tries = ref 0 in
    while Health.Breaker.state b <> Health.Breaker.Closed && !tries < 100 do
      incr tries;
      Sim.Clock.advance clock (cooldown +. 1.0);
      match Health.Breaker.decide b with
      | Health.Breaker.Allow | Health.Breaker.Probe ->
          Health.Breaker.record_success b
      | Health.Breaker.Reject -> ()
    done
  done;
  Router.reset_health_baselines st.router

let scan_stop = "v" (* workload keys are all [user%06d] *)

(* Clean-point scan check: with no ambiguity and no injected rot, the
   merged scan must reproduce the golden live set exactly. *)
let check_scan st =
  if (not st.tolerant) && Hashtbl.length st.ambiguous = 0 then
    match Router.scan_range st.router ~start:"" ~stop:scan_stop with
    | got ->
        let live =
          List.filter_map
            (fun (k, v) -> Option.map (fun v -> (k, v)) v)
            (Fault.Golden.entries st.golden)
        in
        if got <> live then
          fail st "scan"
            (Fmt.str "clean-point scan returned %d pairs, golden holds %d"
               (List.length got) (List.length live))
    | exception Core.Engine.Degraded_scan _ -> ()

let settle st =
  close_breakers st;
  resolve_ambiguous st;
  check_scan st

(* --- Full checkpoints ---------------------------------------------------- *)

(* Mirrors [Checker.check_corruption] over the router: typed degradation
   and damage-recorded loss are excused, crashes and silent wrong answers
   are not. Ambiguous keys are skipped (either outcome is legal). *)
let tolerant_check st =
  List.iter
    (fun (key, expect) ->
      if not (Hashtbl.mem st.ambiguous key) then
        let e = (Router.engines st.router).(Router.shard_of st.router key) in
        match Core.Engine.get_checked e key with
        | exception ex ->
            fail st "no-crash"
              (Fmt.str "get %S raised %s under damage" key
                 (Printexc.to_string ex))
        | Error _ -> ()
        | Ok got ->
            if got <> expect && not (Core.Engine.damaged_key e key) then
              fail st "silent-wrong-answer"
                (Fmt.str "checkpoint: key %S expected %a, got %a" key pp_v
                   expect pp_v got))
    (Fault.Golden.entries st.golden);
  Array.iter
    (fun e ->
      match Core.Engine.scan_range_checked e ~start:"" ~stop:scan_stop with
      | Ok _ | Error _ -> ()
      | exception ex ->
          fail st "no-crash"
            (Fmt.str "scan raised %s under damage" (Printexc.to_string ex)))
    (Router.engines st.router)

let check_full st =
  if st.tolerant || Hashtbl.length st.ambiguous > 0 then tolerant_check st
  else
    st.violations <-
      List.rev_append
        (Fault.Checker.check_view st.golden (Router.view st.router)
        @ (Array.to_list (Router.engines st.router)
          |> List.concat_map Fault.Checker.check_manifest))
        st.violations;
  st.violations <-
    List.rev_append
      (Fault.Crash_sweep.sanitizer_violations (Router.pm st.router))
      st.violations

(* --- Episodes ------------------------------------------------------------ *)

(* Scope closures re-query ownership per hit, so structures the sick shard
   creates mid-episode (its own flushes and compactions) stay in scope. *)
let arm_gray st ~round ~sick kind =
  let plan = Fault.Plan.create ~stats:st.stats (st.cfg.seed lxor (0x6AF + (37 * round))) in
  let engine = (Router.engines st.router).(sick) in
  let file_scope id = List.mem id (Core.Engine.owned_file_ids engine) in
  let region_scope id = List.mem id (Core.Engine.owned_region_ids engine) in
  let mult = st.cfg.slow_factor in
  (match kind with
  | Slow_pm ->
      Fault.Plan.add_rule plan ~site:"pm.flush" ~trigger:Fault.Plan.Every
        ~scope:region_scope (Fault.Plan.Slow mult)
  | Slow_read ->
      Fault.Plan.add_rule plan ~site:"ssd.read" ~trigger:Fault.Plan.Every
        ~scope:file_scope (Fault.Plan.Slow mult)
  | Error_storm ->
      Fault.Plan.add_rule plan ~site:"ssd.read"
        ~trigger:(Fault.Plan.Duty { period = 6; on = 4 })
        ~scope:file_scope Fault.Plan.Ssd_io_error;
      Fault.Plan.add_rule plan ~site:"ssd.write"
        ~trigger:(Fault.Plan.Duty { period = 6; on = 4 })
        ~scope:file_scope Fault.Plan.Ssd_io_error
  | Stuck_fsync ->
      Fault.Plan.add_rule plan ~site:"ssd.fsync" ~trigger:Fault.Plan.Every
        ~scope:file_scope
        (Fault.Plan.Slow (4.0 *. mult))
  | _ -> assert false);
  Fault.Plan.arm plan ~pm:(Router.pm st.router) ~ssd:(Router.ssd st.router) ()

let disarm st =
  Fault.Plan.disarm ~pm:(Router.pm st.router) ~ssd:(Router.ssd st.router) ()

let torn_keep rng ~file_id:_ ~durable:_ ~size:_ = Util.Xoshiro.int rng 4096

let crash_and_recover st ~double ~round =
  (* the dying router's breaker counters fold into the soak totals *)
  st.trips <- st.trips + Router.breaker_trips st.router;
  st.rejections <- st.rejections + Router.breaker_rejections st.router;
  st.crashes <- st.crashes + 1;
  st.stats.Fault.Plan.crashes <- st.stats.Fault.Plan.crashes + 1;
  let pm = Router.pm st.router and ssd = Router.ssd st.router in
  let clock = Router.clock st.router in
  Pmem.crash pm;
  Ssd.crash
    ~keep:(torn_keep (Util.Xoshiro.create (st.cfg.seed + (7919 * round))))
    ssd;
  let t0 = Sim.Clock.now clock in
  let recover () =
    Router.recover ~boundaries:st.cfg.boundaries st.cfg.router_config ~pm ~ssd
  in
  let recovered =
    if not double then recover ()
    else begin
      (* cut the recovery itself at a seeded early site, crash the
         half-recovered image again, and demand a clean second recovery *)
      st.double_crashes <- st.double_crashes + 1;
      let rng = Util.Xoshiro.create (st.cfg.seed lxor (0x50AC + (31 * round))) in
      let plan2 =
        Fault.Plan.create ~stats:st.stats
          ~crash_at:(1 + Util.Xoshiro.int rng 12)
          (st.cfg.seed + round)
      in
      Fault.Plan.arm plan2 ~pm ~ssd ();
      match recover () with
      | t ->
          Fault.Plan.disarm ~pm ~ssd ();
          t
      | exception Fault.Plan.Crashed _ ->
          Fault.Plan.disarm ~pm ~ssd ();
          Pmem.crash pm;
          Ssd.crash
            ~keep:
              (torn_keep (Util.Xoshiro.create (st.cfg.seed + (104729 * round))))
            ssd;
          recover ()
      | exception e ->
          Fault.Plan.disarm ~pm ~ssd ();
          raise e
    end
  in
  st.stats.Fault.Plan.recoveries <- st.stats.Fault.Plan.recoveries + 1;
  st.recovery_ns <- (Sim.Clock.now clock -. t0) :: st.recovery_ns;
  st.router <- recovered;
  (* a crash settles every in-flight ambiguity into whatever recovery
     rebuilt; the read-back at the next clean point decides each one *)
  check_full st

let inject_rot st ~round =
  let plan =
    Fault.Plan.create ~stats:st.stats (st.cfg.seed lxor (0xB17 + (41 * round)))
  in
  let target =
    if Util.Xoshiro.int st.rng 2 = 0 then Fault.Plan.Pm_table_bytes
    else Fault.Plan.Sstable_bytes
  in
  let mode =
    if Util.Xoshiro.int st.rng 2 = 0 then Fault.Plan.Bit_flip
    else Fault.Plan.Zero_range 64
  in
  let wals =
    Array.to_list (Router.engines st.router)
    |> List.filter_map Core.Engine.wal
  in
  match
    Fault.Plan.inject_corruption plan ~pm:(Router.pm st.router)
      ~ssd:(Router.ssd st.router) ~wals ~target ~mode ()
  with
  | Some _ ->
      st.tolerant <- true;
      (* Scrub-on-detect, as the corruption sweep does: salvage records
         per-key damage (persisted in the manifest), so reads — and every
         checkpoint after the next crash — can excuse exactly the lost
         ranges instead of serving resurrected older versions silently. *)
      Array.iter
        (fun e -> ignore (Core.Scrubber.run e))
        (Router.engines st.router)
  | None -> ()

(* The first rounds are a fixed curriculum: calm rounds warm every
   latency tracker past its baseline freeze, then one round per episode
   kind guarantees coverage even in short CI soaks. Beyond that the mix
   is seeded. *)
let pick_episode st round =
  let curriculum =
    [|
      Calm;
      Calm;
      Calm;
      Slow_read;
      Error_storm;
      Crash;
      Stuck_fsync;
      Crash_in_recovery;
      Slow_pm;
      Corrupt;
    |]
  in
  if round < Array.length curriculum then curriculum.(round)
  else
    let r = Util.Xoshiro.int st.rng 100 in
    if r < 22 then Calm
    else if r < 36 then Slow_pm
    else if r < 52 then Slow_read
    else if r < 66 then Error_storm
    else if r < 76 then Stuck_fsync
    else if r < 85 then Crash
    else if r < 93 then Crash_in_recovery
    else Corrupt

let run_round st ~round ep =
  Hashtbl.replace st.episode_counts (episode_name ep)
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.episode_counts (episode_name ep)));
  (match ep with
  | Calm -> run_ops st ~sick:None
  | Crash | Crash_in_recovery ->
      (match crash_and_recover st ~double:(ep = Crash_in_recovery) ~round with
      | () -> ()
      | exception Failure msg -> raise (Dead msg));
      run_ops st ~sick:None
  | Corrupt ->
      inject_rot st ~round;
      run_ops st ~sick:None
  | Slow_pm | Slow_read | Error_storm | Stuck_fsync ->
      let sick = Util.Xoshiro.int st.rng (Router.shard_count st.router) in
      arm_gray st ~round ~sick ep;
      (match run_ops st ~sick:(Some sick) with
      | () -> disarm st
      | exception e ->
          disarm st;
          raise e));
  settle st

let run ?progress cfg =
  let router = Router.create ~boundaries:cfg.boundaries cfg.router_config in
  Pmem.enable_crash_mode (Router.pm router);
  Ssd.enable_crash_mode (Router.ssd router);
  let st =
    {
      cfg;
      router;
      golden = Fault.Golden.create ();
      ambiguous = Hashtbl.create 64;
      tolerant = false;
      stats = Fault.Plan.make_stats ();
      rng = Util.Xoshiro.create (cfg.seed lxor 0x50A4);
      ledger = Health.Ledger.create ();
      ops = 0;
      healthy_total = 0;
      healthy_served = 0;
      sick_total = 0;
      sick_within = 0;
      trips = 0;
      rejections = 0;
      crashes = 0;
      double_crashes = 0;
      recovery_ns = [];
      violations = [];
      episode_counts = Hashtbl.create 8;
    }
  in
  (try
     for round = 0 to cfg.rounds - 1 do
       let ep = pick_episode st round in
       (match progress with
       | Some f -> f ~round ~episode:(episode_name ep)
       | None -> ());
       run_round st ~round ep
     done;
     (* final checkpoint over the surviving state *)
     Router.flush st.router;
     check_full st
   with Dead msg -> fail st "recovery" msg);
  st.trips <- st.trips + Router.breaker_trips st.router;
  st.rejections <- st.rejections + Router.breaker_rejections st.router;
  {
    soak_rounds = cfg.rounds;
    soak_ops = st.ops;
    episode_counts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.episode_counts []
      |> List.sort compare;
    ledger = st.ledger;
    healthy_total = st.healthy_total;
    healthy_served = st.healthy_served;
    sick_total = st.sick_total;
    sick_within = st.sick_within;
    trips = st.trips;
    rejections = st.rejections;
    injected = st.stats.Fault.Plan.injected;
    crashes = st.crashes;
    double_crashes = st.double_crashes;
    recovery_ns = List.rev st.recovery_ns;
    violations = List.rev st.violations;
  }

let mean_recovery_ns (r : report) =
  match r.recovery_ns with
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>chaos soak: %d rounds, %d ops@," r.soak_rounds r.soak_ops;
  Fmt.pf ppf "episodes: %a@,"
    Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") string int))
    r.episode_counts;
  Fmt.pf ppf "ledger: %a@," Health.Ledger.pp r.ledger;
  Fmt.pf ppf
    "healthy shards: %d/%d served in budget (%.4f)  sick: %d/%d within \
     deadline (%.4f)@,"
    r.healthy_served r.healthy_total (healthy_ratio r) r.sick_within
    r.sick_total (sick_within_ratio r);
  Fmt.pf ppf "breaker trips: %d  rejections: %d  injected faults: %d@," r.trips
    r.rejections r.injected;
  Fmt.pf ppf "crashes: %d (%d during recovery)  mean recovery: %.0f ns@,"
    r.crashes r.double_crashes (mean_recovery_ns r);
  if r.violations = [] then Fmt.pf ppf "invariant violations: none@]"
  else begin
    Fmt.pf ppf "invariant violations: %d@," (List.length r.violations);
    List.iter
      (fun v -> Fmt.pf ppf "  %a@," Fault.Checker.pp_violation v)
      r.violations;
    Fmt.pf ppf "@]"
  end

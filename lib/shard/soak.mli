(** Chaos soak: a long seeded run interleaving gray-fault episodes,
    crash-restart cycles (including crashes {e during} recovery), and
    bit-rot injection over the sharded front door, continuously checked
    against the golden model.

    Each round is one episode: calm traffic, a fail-slow device range
    (PM flush, SSD read, or fsync confined to one sick shard's files), an
    intermittent I/O-error storm, a crash checkpoint, or seeded
    corruption. Operations flow through the health-aware router API
    ({!Router.put_checked} / {!Router.get_checked}), so the soak
    exercises breakers, deadline shedding, and degraded serving while
    holding the availability invariants: no silent wrong answer, honest
    typed refusals, ambiguous failed writes resolved by read-back, and
    full golden/manifest/sanitizer checks at every crash point. The first
    rounds follow a fixed curriculum (tracker warm-up, then one round per
    episode kind) so even short CI soaks cover every fault class. *)

type episode_kind =
  | Calm
  | Slow_pm  (** fail-slow PM flush on the sick shard's regions *)
  | Slow_read  (** fail-slow SSD reads on the sick shard's files *)
  | Error_storm  (** duty-cycled [Ssd.Io_error] on the sick shard's files *)
  | Stuck_fsync  (** stuck-slow fsync (WAL and data) on the sick shard *)
  | Crash  (** crash both devices, recover, full checkpoint *)
  | Crash_in_recovery  (** crash, then crash again mid-recovery *)
  | Corrupt  (** seeded bit rot; later checks excuse recorded damage *)

val episode_name : episode_kind -> string

type config = {
  seed : int;
  rounds : int;
  ops_per_round : int;
  keyspace : int;
  value_len : int;
  slow_factor : float;  (** latency multiple injected by fail-slow episodes *)
  router_config : Core.Config.t;
  boundaries : string list;
}

val config :
  ?seed:int ->
  ?rounds:int ->
  ?ops_per_round:int ->
  ?keyspace:int ->
  ?value_len:int ->
  ?slow_factor:float ->
  ?boundaries:string list ->
  Core.Config.t ->
  config
(** Defaults: seed 42, 16 rounds of 600 ops over 400 keys, 48-byte
    values, 25x fail-slow inflation. Raises [Invalid_argument] unless the
    router config is durable (crash episodes need a WAL). Deadline
    budgets come from the config's [deadline_read_ns] /
    [deadline_write_ns]. *)

type report = {
  soak_rounds : int;
  soak_ops : int;
  episode_counts : (string * int) list;
  ledger : Health.Ledger.t;
      (** soak-side availability ledger (budgets measured on the virtual
          clock around each call) *)
  healthy_total : int;  (** ops routed to shards with no injected fault *)
  healthy_served : int;
      (** of those, definitive in-budget answers (acked or served) —
          refusals do not count: a healthy shard must answer *)
  sick_total : int;
  sick_within : int;
      (** sick-shard ops that produced any typed answer within budget *)
  trips : int;
  rejections : int;
  injected : int;
  crashes : int;
  double_crashes : int;
  recovery_ns : float list;  (** time-to-recover per crash, virtual ns *)
  violations : Fault.Checker.violation list;
}

val run : ?progress:(round:int -> episode:string -> unit) -> config -> report
(** Deterministic in the seed: same config, same episode schedule, same
    outcomes. A recovery failure is reported as a ["recovery"] violation
    and ends the soak early rather than raising. *)

val healthy_ratio : report -> float
(** [healthy_served / healthy_total]; the ISSUE gate demands >= 0.99. *)

val sick_within_ratio : report -> float
val deadline_ok_ratio : report -> float
val mean_recovery_ns : report -> float

val clean : report -> bool
(** Zero invariant violations. *)

val pp_report : report Fmt.t

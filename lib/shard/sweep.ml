(* Sharded crash sweep: the crash-consistency exploration of
   [Fault.Crash_sweep], run against the router instead of a single engine.

   Same discipline: one counting run measures how many times the seeded
   workload reaches an injection site across *all* shards (devices are
   shared, so one plan sees every shard's writes), then one run per chosen
   site crashes both devices there, recovers the whole router — every
   shard from its named manifest root, plus the union orphan GC — and
   checks the router's merged read paths against the golden model. The
   interesting new failure surface is exactly what the router added:
   cross-shard recovery (one shard's crash must not corrupt or reclaim a
   sibling's structures) and the group-commit durability point. *)

type config = {
  seed : int;
  ops : int;
  keyspace : int;
  value_len : int;
  rules : (string * Fault.Plan.trigger * Fault.Plan.action) list;
  double_crash : bool;
      (* crash again during recovery on legs whose recovery trips a second
         seeded schedule, then recover from the doubly-crashed image *)
  router_config : Core.Config.t;
  boundaries : string list;
}

(* Workload keys are [user%06d] over [keyspace]; the default boundaries
   split that population evenly so every shard sees traffic. *)
let workload_boundaries ~keyspace ~shards =
  List.init (shards - 1) (fun i ->
      Printf.sprintf "user%06d" (keyspace * (i + 1) / shards))

let config ?(seed = 42) ?(ops = 300) ?(keyspace = 64) ?(value_len = 24) ?(rules = [])
    ?(double_crash = true) ?boundaries router_config =
  if not router_config.Core.Config.durable then
    invalid_arg "Shard.Sweep.config: router config must be durable";
  let shards = max 1 router_config.Core.Config.shard_count in
  let boundaries =
    match boundaries with
    | Some b -> b
    | None -> if shards > 1 then workload_boundaries ~keyspace ~shards else []
  in
  { seed; ops; keyspace; value_len; rules; double_crash; router_config; boundaries }

type point = {
  crash_at : int;
  crash_site : string option;
  recovered : bool;
  violations : Fault.Checker.violation list;
}

type report = {
  total_sites : int;
  points : point list;
  stats : Fault.Plan.stats;
}

let violation_count r =
  List.fold_left (fun n p -> n + List.length p.violations) 0 r.points

let clean r = violation_count r = 0 && List.for_all (fun p -> p.recovered) r.points

(* Identical op stream to [Fault.Crash_sweep.run_workload], but driven
   through the router: the golden mirror still holds because the sweep
   runs the committers in [Sync] mode, where a returned put is durable. *)
let run_workload cfg golden router =
  let rng = Util.Xoshiro.create (cfg.seed lxor 0x9E3779B9) in
  try
    for i = 0 to cfg.ops - 1 do
      let key = Printf.sprintf "user%06d" (Util.Xoshiro.int rng cfg.keyspace) in
      if Util.Xoshiro.int rng 10 < 8 then begin
        let value = Printf.sprintf "%d:%s" i (Util.Xoshiro.string rng cfg.value_len) in
        Fault.Golden.begin_put golden ~key value;
        Router.put ~update:true router ~key value;
        Fault.Golden.ack golden
      end
      else begin
        Fault.Golden.begin_delete golden key;
        Router.delete router key;
        Fault.Golden.ack golden
      end
    done;
    Router.flush router;
    Array.iter Core.Engine.force_internal_compaction (Router.engines router);
    `Completed
  with Fault.Plan.Crashed { site; hit } -> `Crashed (site, hit)

let fresh_router cfg =
  let router = Router.create ~boundaries:cfg.boundaries cfg.router_config in
  Pmem.enable_crash_mode (Router.pm router);
  Ssd.enable_crash_mode (Router.ssd router);
  router

(* Device sites are armed once (the devices are shared); WAL sync sites
   once per shard's log. *)
let arm plan router =
  Fault.Plan.arm plan ~pm:(Router.pm router) ~ssd:(Router.ssd router) ();
  Array.iter
    (fun e ->
      match Core.Engine.wal e with Some w -> Fault.Plan.arm_wal plan w | None -> ())
    (Router.engines router)

let disarm router =
  Fault.Plan.disarm ~pm:(Router.pm router) ~ssd:(Router.ssd router) ();
  Array.iter
    (fun e ->
      match Core.Engine.wal e with Some w -> Fault.Plan.disarm_wal w | None -> ())
    (Router.engines router)

let count_sites cfg =
  let router = fresh_router cfg in
  let plan = Fault.Plan.create ~counting:true cfg.seed in
  arm plan router;
  let golden = Fault.Golden.create () in
  (match run_workload cfg golden router with
  | `Completed -> ()
  | `Crashed _ -> assert false (* counting plans never act *));
  disarm router;
  Fault.Plan.global_hits plan

let sanitizer_violations pm =
  match Pmem.sanitizer pm with
  | None -> []
  | Some san ->
      List.map
        (fun f ->
          {
            Fault.Checker.invariant = "sanitizer";
            detail = Sanitize.Pmsan.finding_to_string f;
          })
        (Sanitize.Pmsan.findings san)

(* Router recovery with an optional crash-during-recovery leg, mirroring
   [Fault.Crash_sweep.recover_double]: the second schedule covers every
   shard's manifest load, reopen, WAL replay, and the union orphan GC. *)
let recover_double ?stats cfg ~pm ~ssd n =
  let recover () = Router.recover ~boundaries:cfg.boundaries cfg.router_config ~pm ~ssd in
  if not cfg.double_crash then recover ()
  else begin
    let rng = Util.Xoshiro.create (cfg.seed lxor (0x2CC + (31 * n))) in
    let plan2 =
      Fault.Plan.create ?stats ~crash_at:(1 + Util.Xoshiro.int rng 12) (cfg.seed + n)
    in
    Fault.Plan.arm plan2 ~pm ~ssd ();
    match recover () with
    | t ->
        Fault.Plan.disarm ~pm ~ssd ();
        t
    | exception Fault.Plan.Crashed _ ->
        Fault.Plan.disarm ~pm ~ssd ();
        Pmem.crash pm;
        let keep_rng = Util.Xoshiro.create (cfg.seed + (104729 * n)) in
        Ssd.crash
          ~keep:(fun ~file_id:_ ~durable:_ ~size:_ -> Util.Xoshiro.int keep_rng 4096)
          ssd;
        recover ()
    | exception e ->
        Fault.Plan.disarm ~pm ~ssd ();
        raise e
  end

let run_crash_at ?stats cfg n =
  let router = fresh_router cfg in
  let pm = Router.pm router and ssd = Router.ssd router in
  let plan = Fault.Plan.create ?stats ~crash_at:n cfg.seed in
  List.iter
    (fun (site, trigger, action) -> Fault.Plan.add_rule plan ~site ~trigger action)
    cfg.rules;
  arm plan router;
  let golden = Fault.Golden.create () in
  let result = run_workload cfg golden router in
  disarm router;
  let crash_site =
    match result with
    | `Crashed (site, _) -> Some site
    | `Completed ->
        (Fault.Plan.stats plan).Fault.Plan.crashes <-
          (Fault.Plan.stats plan).Fault.Plan.crashes + 1;
        None
  in
  Pmem.crash pm;
  let keep_rng = Util.Xoshiro.create (cfg.seed + (7919 * n)) in
  Ssd.crash
    ~keep:(fun ~file_id:_ ~durable:_ ~size:_ -> Util.Xoshiro.int keep_rng 4096)
    ssd;
  match recover_double ?stats cfg ~pm ~ssd n with
  | recovered ->
      (Fault.Plan.stats plan).Fault.Plan.recoveries <-
        (Fault.Plan.stats plan).Fault.Plan.recoveries + 1;
      let violations =
        Fault.Checker.check_view golden (Router.view recovered)
        @ (Array.to_list (Router.engines recovered)
          |> List.concat_map Fault.Checker.check_manifest)
        @ sanitizer_violations pm
      in
      { crash_at = n; crash_site; recovered = true; violations }
  | exception Failure msg ->
      {
        crash_at = n;
        crash_site;
        recovered = false;
        violations =
          { Fault.Checker.invariant = "recovery"; detail = msg }
          :: sanitizer_violations pm;
      }

type selection = All | Sample of int

let select cfg selection total =
  match selection with
  | All -> List.init total (fun i -> i + 1)
  | Sample k when k >= total -> List.init total (fun i -> i + 1)
  | Sample k ->
      let arr = Array.init total (fun i -> i + 1) in
      Util.Xoshiro.shuffle (Util.Xoshiro.create ((cfg.seed * 31) + 17)) arr;
      Array.to_list (Array.sub arr 0 k) |> List.sort compare

let sweep ?(selection = All) ?stats ?progress cfg =
  let stats = match stats with Some s -> s | None -> Fault.Plan.make_stats () in
  let total = count_sites cfg in
  let points_to_test = select cfg selection total in
  let points =
    List.map
      (fun n ->
        let p = run_crash_at ~stats cfg n in
        (match progress with Some f -> f p | None -> ());
        if Obs.Trace.is_enabled () then begin
          Obs.Trace.instant "shard_sweep.point" ~attrs:(fun () ->
              [
                ("crash_at", Obs.Trace.Int n);
                ("violations", Obs.Trace.Int (List.length p.violations));
              ]);
          Obs.Trace.flush ()
        end;
        p)
      points_to_test
  in
  { total_sites = total; points; stats }

let pp_report ppf r =
  let bad = List.filter (fun p -> p.violations <> []) r.points in
  Fmt.pf ppf "@[<v>sharded crash sweep: %d sites, %d crash points tested@," r.total_sites
    (List.length r.points);
  Fmt.pf ppf "recoveries: %d/%d  injected faults: %d@,"
    (List.length (List.filter (fun p -> p.recovered) r.points))
    (List.length r.points) r.stats.Fault.Plan.injected;
  if bad = [] then Fmt.pf ppf "invariant violations: none@]"
  else begin
    Fmt.pf ppf "invariant violations: %d point(s)@," (List.length bad);
    List.iter
      (fun p ->
        Fmt.pf ppf "  crash at site %d (%a):@," p.crash_at
          Fmt.(Dump.option string)
          p.crash_site;
        List.iter
          (fun v -> Fmt.pf ppf "    %a@," Fault.Checker.pp_violation v)
          p.violations)
      bad;
    Fmt.pf ppf "@]"
  end

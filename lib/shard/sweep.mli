(** Sharded crash sweep: [Fault.Crash_sweep]'s systematic
    crash-consistency exploration, run through the {!Router}.

    One counting run measures the seeded workload's injection sites
    across all shards (the devices — hence the fault plan — are shared),
    then one run per chosen site crashes both devices, recovers the full
    router (per-shard named manifest roots plus the union orphan GC), and
    checks the router's merged read paths against the golden model. The
    committers run in [Sync] mode, so an acked put is durable and the
    golden mirror's single-pending-op story holds unchanged. *)

type config = {
  seed : int;
  ops : int;
  keyspace : int;
  value_len : int;
  rules : (string * Fault.Plan.trigger * Fault.Plan.action) list;
      (** injected on every sweep leg (not the counting run) *)
  double_crash : bool;
      (** crash again during recovery when a second seeded schedule trips *)
  router_config : Core.Config.t;
  boundaries : string list;
}

val config :
  ?seed:int ->
  ?ops:int ->
  ?keyspace:int ->
  ?value_len:int ->
  ?rules:(string * Fault.Plan.trigger * Fault.Plan.action) list ->
  ?double_crash:bool ->
  ?boundaries:string list ->
  Core.Config.t ->
  config
(** Raises [Invalid_argument] unless the config is durable. When
    [boundaries] is omitted a multi-shard config gets an even split of
    the workload's [user%06d] key population. [double_crash] (default on)
    arms a second seeded crash schedule over each leg's recovery — shards'
    manifest loads, WAL replays, and the union orphan GC — and recovers
    again from the doubly-crashed image (recovery idempotence). *)

val workload_boundaries : keyspace:int -> shards:int -> string list

type point = {
  crash_at : int;
  crash_site : string option;
      (** [None]: the workload completed before reaching the point *)
  recovered : bool;
  violations : Fault.Checker.violation list;
}

type report = {
  total_sites : int;
  points : point list;
  stats : Fault.Plan.stats;
}

val violation_count : report -> int
val clean : report -> bool

val count_sites : config -> int
val run_crash_at : ?stats:Fault.Plan.stats -> config -> int -> point

type selection = All | Sample of int

val sweep :
  ?selection:selection ->
  ?stats:Fault.Plan.stats ->
  ?progress:(point -> unit) ->
  config ->
  report

val pp_report : report Fmt.t

(* SSD block-device simulator.

   SSTables live as append-only "files" made of 4 KiB pages. Two access
   interfaces share the cost model:

   - the synchronous interface charges the virtual clock directly and is
     used by the single-threaded engine experiments (a read's latency is the
     clock delta across the call);

   - the asynchronous interface ([submit]) enqueues a request and fires a
     completion callback through the discrete-event scheduler; it models a
     device with bounded internal parallelism ([channels]) so that latency
     grows with queue depth, which is what the scheduling experiments
     (Table III's I/O latency column, Fig. 9c) measure.

   Cost model: fixed per-request latency plus a per-byte transfer term.
   Calibrated against the paper's Table I (single random SSTable lookup
   22.3 us) and Table V (SSD compaction ~2x slower than PM-internal). *)

type params = {
  page_size : int;
  read_latency_ns : float;   (* fixed cost of one random read request *)
  write_latency_ns : float;  (* fixed cost of one write request *)
  read_byte_ns : float;
  write_byte_ns : float;
  fsync_latency_ns : float;  (* cost of a flush/FUA barrier command *)
  channels : int;            (* internal parallelism of the device *)
}

(* ~20 us random read, ~0.45 ns/B (~2.2 GB/s) read bandwidth,
   ~2.0 ns/B (~0.5 GB/s) sustained write -- NVMe-class, matching Table I. *)
let default_params =
  {
    page_size = 4096;
    read_latency_ns = 20_000.0;
    write_latency_ns = 25_000.0;
    read_byte_ns = 0.45;
    write_byte_ns = 2.0;
    fsync_latency_ns = 5_000.0;
    channels = 2;
  }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable read_time : float;
  mutable write_time : float;
  mutable request_latency : Util.Histogram.t;
}

let fresh_stats () =
  {
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    read_time = 0.0;
    write_time = 0.0;
    request_latency = Util.Histogram.create ();
  }

type file = {
  id : int;
  mutable data : Buffer.t;
  mutable closed : bool;
  (* bytes guaranteed to survive a crash; advanced by fsync/seal, enforced
     by [crash] when crash mode is on *)
  mutable durable_len : int;
}

type op = Read | Write

exception Io_error of { op : op; file_id : int }

(* Fault-injection hook points (lib/fault arms these): read/write hooks can
   fail a request transiently (callers are expected to retry with backoff)
   or inflate its latency (a fail-slow device: the request succeeds, late),
   the fsync hook can swallow a barrier (sync loss) or stall it. Hooks may
   raise to model a crash at the site. *)
type io_outcome = Io_ok | Io_fail | Io_slow of float

type request = {
  op : op;
  bytes : int;
  submitted_at : float;
  completion : float -> unit;  (* called with the request's total latency *)
}

type t = {
  clock : Sim.Clock.t;
  params : params;
  stats : stats;
  mutable next_file : int;
  files : (int, file) Hashtbl.t;
  (* Async machinery; only touched via [submit]/[attach_des]. *)
  mutable des : Sim.Des.t option;
  mutable in_service : int;
  queue : request Queue.t;
  busy : Sim.Resource.t;
  (* superblock: a device-level root pointer (the id of the manifest file),
     the one thing recovery can find without any other state. Updating it
     is a single-sector write, modelled as atomic and immediately durable.
     The sector holds two slots: the current root and the one it replaced,
     so recovery can fall back if the current root's file turns out to be
     rotten. *)
  mutable root : int option;
  mutable root_prev : int option;
  (* additional named root slots (one dual-slot pair per name) so several
     logical stores — e.g. range shards — can share the device, each with
     its own recoverable manifest chain. The unnamed slots above stay the
     default namespace. *)
  named_roots : (string, int option * int option) Hashtbl.t;
  mutable crash_mode : bool;
  (* files deleted while in crash mode: a delete is directory metadata, so
     until the next crash the durable pages are still on the device and the
     file is resurrectable (recovery GCs the unreferenced ones) *)
  graveyard : (int, file) Hashtbl.t;
  mutable write_hook : (file_id:int -> len:int -> io_outcome) option;
  mutable read_hook : (file_id:int -> len:int -> io_outcome) option;
  mutable fsync_hook : (file_id:int -> io_outcome) option;
}

let create ?(params = default_params) clock =
  {
    clock;
    params;
    stats = fresh_stats ();
    next_file = 0;
    files = Hashtbl.create 64;
    des = None;
    in_service = 0;
    queue = Queue.create ();
    busy = Sim.Resource.create ~name:"ssd" clock;
    root = None;
    root_prev = None;
    named_roots = Hashtbl.create 8;
    crash_mode = false;
    graveyard = Hashtbl.create 16;
    write_hook = None;
    read_hook = None;
    fsync_hook = None;
  }

let set_root ?(name = "") t id =
  if name = "" then (
    if t.root <> Some id then t.root_prev <- t.root;
    t.root <- Some id)
  else
    let cur, prev =
      match Hashtbl.find_opt t.named_roots name with
      | Some slots -> slots
      | None -> (None, None)
    in
    let prev = if cur <> Some id then cur else prev in
    Hashtbl.replace t.named_roots name (Some id, prev)

let root ?(name = "") t =
  if name = "" then t.root
  else
    match Hashtbl.find_opt t.named_roots name with
    | Some (cur, _) -> cur
    | None -> None

let root_slots ?(name = "") t =
  if name = "" then (t.root, t.root_prev)
  else
    match Hashtbl.find_opt t.named_roots name with
    | Some slots -> slots
    | None -> (None, None)

let root_names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.named_roots []

let stats t = t.stats
let params t = t.params
let clock t = t.clock
let busy_tracker t = t.busy

let service_time t op bytes =
  match op with
  | Read -> t.params.read_latency_ns +. (float_of_int bytes *. t.params.read_byte_ns)
  | Write -> t.params.write_latency_ns +. (float_of_int bytes *. t.params.write_byte_ns)

let account t op bytes dt =
  match op with
  | Read ->
      t.stats.reads <- t.stats.reads + 1;
      t.stats.bytes_read <- t.stats.bytes_read + bytes;
      t.stats.read_time <- t.stats.read_time +. dt
  | Write ->
      t.stats.writes <- t.stats.writes + 1;
      t.stats.bytes_written <- t.stats.bytes_written + bytes;
      t.stats.write_time <- t.stats.write_time +. dt

(* --- Fault hooks and crash mode -------------------------------------- *)

(* An [Io_slow] outcome stretches the request to [mult] times its normal
   service time: the extra latency lands on the clock and in the op-time
   stats, so trackers watching the device see the inflation. *)
let slow_extra t op dt mult =
  let extra = Float.max 0.0 ((mult -. 1.0) *. dt) in
  if extra > 0.0 then begin
    Sim.Clock.advance t.clock extra;
    match op with
    | Read -> t.stats.read_time <- t.stats.read_time +. extra
    | Write -> t.stats.write_time <- t.stats.write_time +. extra
  end;
  extra

let set_write_hook t hook = t.write_hook <- hook
let set_read_hook t hook = t.read_hook <- hook
let set_fsync_hook t hook = t.fsync_hook <- hook

(* --- File namespace ------------------------------------------------- *)

let create_file t =
  let file =
    { id = t.next_file; data = Buffer.create 4096; closed = false; durable_len = 0 }
  in
  t.next_file <- t.next_file + 1;
  Hashtbl.replace t.files file.id file;
  file

let file_id file = file.id
let file_size file = Buffer.length file.data
let durable_size file = file.durable_len

let delete_file t file =
  Hashtbl.remove t.files file.id;
  if t.crash_mode then Hashtbl.replace t.graveyard file.id file

let find_file t id = Hashtbl.find_opt t.files id

let live_file_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.files [] |> List.sort compare

(* Everything already on the device when crash mode starts is considered
   durable; from here on only fsync/seal advance the durable watermark. *)
let enable_crash_mode t =
  t.crash_mode <- true;
  Hashtbl.iter (fun _ file -> file.durable_len <- Buffer.length file.data) t.files

(* Crash simulation: resurrect deleted files (their pages are still on the
   medium), then cut every file back to its durable watermark — plus an
   optional torn tail: [keep] returns how many of the unsynced trailing
   bytes made it to the medium (a partial 4 KiB page image). Files are
   visited in id order so a seeded [keep] is reproducible. *)
let crash ?(keep = fun ~file_id:_ ~durable:_ ~size:_ -> 0) t =
  if t.crash_mode then begin
    Hashtbl.iter (fun id file -> Hashtbl.replace t.files id file) t.graveyard;
    Hashtbl.reset t.graveyard;
    let ids = live_file_ids t in
    List.iter
      (fun id ->
        let file = Hashtbl.find t.files id in
        let size = Buffer.length file.data in
        if size > file.durable_len then begin
          let kept =
            max 0 (min (size - file.durable_len) (keep ~file_id:id ~durable:file.durable_len ~size))
          in
          let cut = file.durable_len + kept in
          let surviving = Buffer.sub file.data 0 cut in
          Buffer.clear file.data;
          Buffer.add_string file.data surviving;
          (* whatever survived the power cut is on the medium now *)
          file.durable_len <- cut
        end)
      ids
  end

(* --- Synchronous interface (engine experiments) --------------------- *)

let append t file data =
  if file.closed then invalid_arg "Ssd.append: file closed";
  let dt = service_time t Write (String.length data) in
  if Obs.Trace.io_enabled () then
    Obs.Trace.io_event "ssd.write" ~ts:(Sim.Clock.now t.clock) ~dur:dt
      ~bytes:(String.length data);
  Sim.Clock.advance t.clock dt;
  account t Write (String.length data) dt;
  t.stats.request_latency |> fun h -> Util.Histogram.record h dt;
  (* A failed request charges its service time but transfers nothing; the
     write is atomic-at-request granularity, so retrying is safe. *)
  (match t.write_hook with
  | None -> ()
  | Some hook -> (
      match hook ~file_id:file.id ~len:(String.length data) with
      | Io_ok -> ()
      | Io_fail -> raise (Io_error { op = Write; file_id = file.id })
      | Io_slow mult -> ignore (slow_extra t Write dt mult)));
  Buffer.add_string file.data data

(* Flush/FUA barrier: everything appended so far is durable afterwards.
   The fsync hook can swallow the barrier (sync loss), stall it (stuck-slow
   fsync: durable, but at a multiple of the normal barrier cost), or raise
   (crash). *)
let fsync t file =
  Sim.Clock.advance t.clock t.params.fsync_latency_ns;
  let effective =
    match t.fsync_hook with
    | None -> true
    | Some hook -> (
        match hook ~file_id:file.id with
        | Io_ok -> true
        | Io_fail -> false
        | Io_slow mult ->
            Sim.Clock.advance t.clock
              (Float.max 0.0 ((mult -. 1.0) *. t.params.fsync_latency_ns));
            true)
  in
  if effective then file.durable_len <- max file.durable_len (Buffer.length file.data)

let seal t file =
  (* Sealing a table is its durability point (build ends with a barrier). *)
  fsync t file;
  file.closed <- true

(* Fault injection for integrity tests: damage bytes in place, free of
   simulated cost (the fault is the medium's, not the workload's). [`Flip]
   inverts every byte in the range; [`Zero] wipes it, modelling a torn or
   unmapped page image. *)
let corrupt_file ?(len = 1) ?(mode = `Flip) t file ~off =
  ignore t;
  let size = Buffer.length file.data in
  if len < 1 then invalid_arg "Ssd.corrupt_file: len < 1";
  if off < 0 || off + len > size then invalid_arg "Ssd.corrupt_file: out of bounds";
  let raw = Bytes.of_string (Buffer.contents file.data) in
  (match mode with
  | `Flip ->
      for i = off to off + len - 1 do
        Bytes.set raw i (Char.chr (Char.code (Bytes.get raw i) lxor 0xff))
      done
  | `Zero -> Bytes.fill raw off len '\000');
  Buffer.clear file.data;
  Buffer.add_bytes file.data raw

let pread t file ~off ~len =
  let size = Buffer.length file.data in
  if off < 0 || len < 0 || off + len > size then invalid_arg "Ssd.pread: out of bounds";
  (* A random read touches ceil(len/page) pages; charge one request plus the
     transfer, modelling readahead within a contiguous range. *)
  let dt = service_time t Read len in
  if Obs.Trace.io_enabled () then
    Obs.Trace.io_event "ssd.read" ~ts:(Sim.Clock.now t.clock) ~dur:dt ~bytes:len;
  Sim.Clock.advance t.clock dt;
  Obs.Attr.charge Obs.Attr.Ssd_read dt;
  account t Read len dt;
  Util.Histogram.record t.stats.request_latency dt;
  (match t.read_hook with
  | None -> ()
  | Some hook -> (
      match hook ~file_id:file.id ~len with
      | Io_ok -> ()
      | Io_fail -> raise (Io_error { op = Read; file_id = file.id })
      | Io_slow mult ->
          let extra = slow_extra t Read dt mult in
          Obs.Attr.charge Obs.Attr.Ssd_read extra));
  Buffer.sub file.data off len

(* --- Asynchronous interface (scheduling experiments) ---------------- *)

let attach_des t des = t.des <- Some des

let des_exn t =
  match t.des with
  | Some des -> des
  | None -> invalid_arg "Ssd.submit: no DES attached (call attach_des first)"

let in_flight t = t.in_service + Queue.length t.queue

let rec start_next t =
  if t.in_service < t.params.channels && not (Queue.is_empty t.queue) then begin
    let req = Queue.pop t.queue in
    t.in_service <- t.in_service + 1;
    Sim.Resource.mark_busy t.busy;
    let dt = service_time t req.op req.bytes in
    if Obs.Trace.io_enabled () then
      Obs.Trace.io_event
        (match req.op with Read -> "ssd.read" | Write -> "ssd.write")
        ~ts:(Sim.Clock.now t.clock) ~dur:dt ~bytes:req.bytes;
    account t req.op req.bytes dt;
    Sim.Des.schedule_after (des_exn t)
      dt
      (fun () ->
        t.in_service <- t.in_service - 1;
        if t.in_service = 0 && Queue.is_empty t.queue then Sim.Resource.mark_idle t.busy;
        let latency = Sim.Clock.now t.clock -. req.submitted_at in
        Util.Histogram.record t.stats.request_latency latency;
        req.completion latency;
        start_next t)
  end

let submit t op ~bytes completion =
  let req = { op; bytes; submitted_at = Sim.Clock.now t.clock; completion } in
  Queue.push req t.queue;
  start_next t

(* Stable dotted metric names for the registry exporters. *)
let register_metrics reg ?(prefix = "ssd") t =
  let name suffix = prefix ^ "." ^ suffix in
  let open Obs.Registry in
  register_int reg (name "reads") ~help:"SSD read requests" (fun () -> t.stats.reads);
  register_int reg (name "writes") ~help:"SSD write requests" (fun () -> t.stats.writes);
  register_int reg (name "bytes_read") ~help:"bytes read from the SSD" (fun () ->
      t.stats.bytes_read);
  register_int reg (name "bytes_written") ~help:"bytes written to the SSD" (fun () ->
      t.stats.bytes_written);
  register_float reg (name "read_time_ns") ~kind:Counter
    ~help:"simulated ns spent in SSD reads" (fun () -> t.stats.read_time);
  register_float reg (name "write_time_ns") ~kind:Counter
    ~help:"simulated ns spent in SSD writes" (fun () -> t.stats.write_time);
  register_int reg (name "files") ~kind:Gauge ~help:"live files on the SSD" (fun () ->
      Hashtbl.length t.files);
  register_int reg (name "in_flight") ~kind:Gauge
    ~help:"async requests queued or in service" (fun () -> in_flight t);
  register_histogram reg (name "request_latency_ns")
    ~help:"per-request SSD service latency in ns" (fun () -> t.stats.request_latency)

let reset_stats t =
  let s = t.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.bytes_read <- 0;
  s.bytes_written <- 0;
  s.read_time <- 0.0;
  s.write_time <- 0.0;
  Util.Histogram.reset s.request_latency

let pp_stats ppf s =
  Fmt.pf ppf "@[<v>reads: %d (%d B, %a)@,writes: %d (%d B, %a)@]" s.reads s.bytes_read
    Sim.Clock.pp_duration s.read_time s.writes s.bytes_written Sim.Clock.pp_duration
    s.write_time

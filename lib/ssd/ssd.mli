(** SSD block-device simulator.

    SSTables live as append-only files of 4 KiB pages. The synchronous
    interface charges the virtual clock directly (engine experiments); the
    asynchronous {!submit} interface models bounded device parallelism so
    latency grows with queue depth (scheduling experiments of Table III and
    Fig. 9). *)

type params = {
  page_size : int;
  read_latency_ns : float;
  write_latency_ns : float;
  read_byte_ns : float;
  write_byte_ns : float;
  fsync_latency_ns : float;  (** cost of a flush/FUA barrier command *)
  channels : int;  (** internal parallelism of the device *)
}

val default_params : params

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable read_time : float;
  mutable write_time : float;
  mutable request_latency : Util.Histogram.t;
}

type file
type op = Read | Write
type t

exception Io_error of { op : op; file_id : int }
(** Transient request failure injected by the read/write hooks; the request
    charged its service time but transferred nothing. Callers retry with
    bounded backoff (see [Engine]). *)

val create : ?params:params -> Sim.Clock.t -> t
val stats : t -> stats
val params : t -> params
val clock : t -> Sim.Clock.t

val busy_tracker : t -> Sim.Resource.t
(** Busy/idle accounting of the device under the async interface. *)

(** {1 File namespace} *)

val set_root : ?name:string -> t -> int -> unit
(** Superblock root pointer: the file id recovery starts from (the
    manifest). The superblock sector keeps two slots — setting a new root
    shifts the current one into the previous slot (one atomic single-sector
    write), so recovery can fall back if the current root's file is
    rotten. [name] selects an additional named root namespace (its own
    dual-slot pair) so several logical stores — e.g. range shards — can
    share the device; the default [""] is the classic unnamed superblock
    pair. Named slots are as atomic and durable as the unnamed ones. *)

val root : ?name:string -> t -> int option

val root_slots : ?name:string -> t -> int option * int option
(** [(current, previous)] superblock slots for [name] (default unnamed). *)

val root_names : t -> string list
(** Named root namespaces in use (excluding the unnamed pair). *)

val create_file : t -> file
val file_id : file -> int
val file_size : file -> int

val durable_size : file -> int
(** Bytes guaranteed to survive a crash (advanced by {!fsync} and {!seal};
    only enforced by {!crash} in crash mode). *)

val delete_file : t -> file -> unit
(** In crash mode the file moves to a graveyard instead of vanishing: a
    delete is directory metadata, so until the next {!crash} the durable
    pages are still on the device. *)

val find_file : t -> int -> file option

val live_file_ids : t -> int list
(** Ids of the live (non-deleted) files, ascending. *)

(** {1 Synchronous access} *)

val append : t -> file -> string -> unit
(** Sequential write; charges fixed + per-byte cost. Raises {!Io_error}
    when the write hook fails the request (nothing is written). *)

val fsync : t -> file -> unit
(** Flush/FUA barrier: everything appended so far is durable afterwards
    (unless the fsync hook swallows it). Charges [fsync_latency_ns]. *)

val seal : t -> file -> unit
(** Mark the file immutable (SSTables are sealed after build); implies
    {!fsync} — sealing is the build's durability point. *)

val pread : t -> file -> off:int -> len:int -> string
(** Random read; charges one request plus transfer. Raises {!Io_error}
    when the read hook fails the request. *)

val corrupt_file :
  ?len:int -> ?mode:[ `Flip | `Zero ] -> t -> file -> off:int -> unit
(** Fault injection: damage [len] bytes (default 1) at [off] — [`Flip]
    inverts every byte, [`Zero] models a torn/zeroed page image. Charges no
    simulated time: the fault is the medium's, not the workload's. *)

(** {1 Crash simulation and fault hooks}

    Crash-mode parity with [Pmem]: appended bytes become durable only at
    {!fsync}/{!seal}; {!crash} cuts every file back to its durable
    watermark, optionally keeping a torn tail. The hooks are lightweight
    injection points armed by [Fault.Plan] (lib/fault); they default to
    [None] and may raise to model a crash at the site. *)

val enable_crash_mode : t -> unit
(** Start tracking durability; everything already on the device is treated
    as durable. *)

val crash : ?keep:(file_id:int -> durable:int -> size:int -> int) -> t -> unit
(** Revert the device to its durable contents (crash mode only): deleted
    files are resurrected, then every file is truncated to its durable
    watermark plus [keep ~file_id ~durable ~size] torn-tail bytes (clamped
    to the unsynced range; default 0 — a partial 4 KiB page image survives
    only as the prefix [keep] grants). Files are visited in id order so a
    seeded [keep] is reproducible. *)

type io_outcome =
  | Io_ok
  | Io_fail
  | Io_slow of float
      (** fail-slow device: the request succeeds but costs this multiple of
          its normal service time (gray fault, no data loss) *)

val set_write_hook : t -> (file_id:int -> len:int -> io_outcome) option -> unit
(** Consulted on every {!append} after cost accounting; [Io_fail] raises
    {!Io_error} with nothing written. *)

val set_read_hook : t -> (file_id:int -> len:int -> io_outcome) option -> unit

val set_fsync_hook : t -> (file_id:int -> io_outcome) option -> unit
(** [Io_fail] swallows the barrier: the call returns but the durable
    watermark does not advance (sync loss). [Io_slow] is a stuck-slow
    fsync: the barrier takes effect, at a multiple of its normal cost. *)

(** {1 Asynchronous access} *)

val attach_des : t -> Sim.Des.t -> unit
(** Required before {!submit}; completions fire through the DES. *)

val submit : t -> op -> bytes:int -> (float -> unit) -> unit
(** Enqueue a request; the callback receives the request's total latency
    (queueing + service) when it completes. *)

val in_flight : t -> int
(** Requests submitted but not yet completed (queued + in service). *)

val service_time : t -> op -> int -> float
(** Raw service time of a request absent queueing (exposed for tests). *)

val register_metrics : Obs.Registry.t -> ?prefix:string -> t -> unit
(** Register this device's counters, gauges and request-latency histogram
    under [prefix] (default ["ssd"]) dotted names. *)

val reset_stats : t -> unit
val pp_stats : stats Fmt.t

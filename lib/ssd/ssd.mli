(** SSD block-device simulator.

    SSTables live as append-only files of 4 KiB pages. The synchronous
    interface charges the virtual clock directly (engine experiments); the
    asynchronous {!submit} interface models bounded device parallelism so
    latency grows with queue depth (scheduling experiments of Table III and
    Fig. 9). *)

type params = {
  page_size : int;
  read_latency_ns : float;
  write_latency_ns : float;
  read_byte_ns : float;
  write_byte_ns : float;
  channels : int;  (** internal parallelism of the device *)
}

val default_params : params

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable read_time : float;
  mutable write_time : float;
  mutable request_latency : Util.Histogram.t;
}

type file
type op = Read | Write
type t

val create : ?params:params -> Sim.Clock.t -> t
val stats : t -> stats
val params : t -> params
val clock : t -> Sim.Clock.t

val busy_tracker : t -> Sim.Resource.t
(** Busy/idle accounting of the device under the async interface. *)

(** {1 File namespace} *)

val set_root : t -> int -> unit
(** Superblock root pointer: the file id recovery starts from (the
    manifest). *)

val root : t -> int option

val create_file : t -> file
val file_id : file -> int
val file_size : file -> int
val delete_file : t -> file -> unit
val find_file : t -> int -> file option

(** {1 Synchronous access} *)

val append : t -> file -> string -> unit
(** Sequential write; charges fixed + per-byte cost. *)

val seal : t -> file -> unit
(** Mark the file immutable (SSTables are sealed after build). *)

val pread : t -> file -> off:int -> len:int -> string
(** Random read; charges one request plus transfer. *)

val corrupt_file : t -> file -> off:int -> unit
(** Fault injection: flip the byte at [off] (integrity tests). *)

(** {1 Asynchronous access} *)

val attach_des : t -> Sim.Des.t -> unit
(** Required before {!submit}; completions fire through the DES. *)

val submit : t -> op -> bytes:int -> (float -> unit) -> unit
(** Enqueue a request; the callback receives the request's total latency
    (queueing + service) when it completes. *)

val in_flight : t -> int
(** Requests submitted but not yet completed (queued + in service). *)

val service_time : t -> op -> int -> float
(** Raw service time of a request absent queueing (exposed for tests). *)

val register_metrics : Obs.Registry.t -> ?prefix:string -> t -> unit
(** Register this device's counters, gauges and request-latency histogram
    under [prefix] (default ["ssd"]) dotted names. *)

val reset_stats : t -> unit
val pp_stats : stats Fmt.t

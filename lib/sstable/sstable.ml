(* SSTable on the simulated SSD, RocksDB-flavoured.

   File layout: data blocks (~4 KiB of encoded entries) appended in key
   order. The index (last key + extent per block) and the Bloom filter are
   kept in the handle, modelling RocksDB's pinned index/filter blocks; data
   block reads hit the device — or DRAM, either via the engine-wide
   capacity-bounded shared block cache ({!Cache.Block_cache}) or via an
   explicit per-table pin ({!warm_cache}), which is how the "SSTable in
   cache" row of Table I is produced.

   Point lookup: bloom check (DRAM, ~free), binary search the index (DRAM),
   read one data block (SSD or cache), scan the block. *)

let default_block_bytes = 4096
let bits_per_key = 10

type block_meta = { last_key : string; off : int; len : int; entries : int; crc : int }

(* [block = -1] means the meta block (index/filter/stats) failed its
   checksum rather than a data block. *)
exception Corrupted_block of { file_id : int; block : int }

(* Kill switch for every CRC comparison in this module — exists so a fault
   sweep can plant the "forgot to verify checksums" bug and prove it gets
   caught. Leave it [true]. *)
let verify_checksums = ref true

type t = {
  ssd : Ssd.t;
  file : Ssd.file;
  blocks : block_meta array;
  bloom : Bloom.t;
  count : int;
  min_key : string;
  max_key : string;
  min_seq : int;
  max_seq : int;
  payload_bytes : int;
  mutable pinned : string option array option;  (* explicit whole-table pin *)
  mutable shared : Cache.Block_cache.t option;  (* engine-wide bounded cache *)
  dram_access_ns : float;
}

let dram_access_ns_default = 100.0
let dram_byte_ns = 0.05
let decode_cpu_ns = 25.0

let charge_cpu t ns = Sim.Clock.advance (Ssd.clock t.ssd) ns

(* --- Builder --------------------------------------------------------- *)

type builder = {
  b_ssd : Ssd.t;
  b_file : Ssd.file;
  b_block_bytes : int;
  mutable b_current : Buffer.t;
  mutable b_current_entries : int;
  mutable b_blocks : block_meta list;
  mutable b_last_key : string;
  mutable b_first_key : string option;
  mutable b_count : int;
  mutable b_min_seq : int;
  mutable b_max_seq : int;
  mutable b_payload : int;
  mutable b_keys : string list;
  mutable b_off : int;
}

let create_builder ?(block_bytes = default_block_bytes) ssd =
  {
    b_ssd = ssd;
    b_file = Ssd.create_file ssd;
    b_block_bytes = block_bytes;
    b_current = Buffer.create block_bytes;
    b_current_entries = 0;
    b_blocks = [];
    b_last_key = "";
    b_first_key = None;
    b_count = 0;
    b_min_seq = max_int;
    b_max_seq = min_int;
    b_payload = 0;
    b_keys = [];
    b_off = 0;
  }

let flush_block b =
  if Buffer.length b.b_current > 0 then begin
    let data = Buffer.contents b.b_current in
    Ssd.append b.b_ssd b.b_file data;
    b.b_blocks <-
      { last_key = b.b_last_key; off = b.b_off; len = String.length data;
        entries = b.b_current_entries; crc = Util.Crc32.string data }
      :: b.b_blocks;
    b.b_off <- b.b_off + String.length data;
    Buffer.clear b.b_current;
    b.b_current_entries <- 0
  end

let add b (e : Util.Kv.entry) =
  if b.b_count > 0 && String.compare b.b_last_key e.key > 0 then
    invalid_arg "Sstable.add: entries must arrive in key order";
  if b.b_first_key = None then b.b_first_key <- Some e.key;
  Util.Kv.encode b.b_current e;
  b.b_current_entries <- b.b_current_entries + 1;
  b.b_last_key <- e.key;
  b.b_count <- b.b_count + 1;
  b.b_payload <- b.b_payload + Util.Kv.encoded_size e;
  if e.seq < b.b_min_seq then b.b_min_seq <- e.seq;
  if e.seq > b.b_max_seq then b.b_max_seq <- e.seq;
  b.b_keys <- e.key :: b.b_keys;
  if Buffer.length b.b_current >= b.b_block_bytes then flush_block b

let estimated_size b = b.b_off + Buffer.length b.b_current

let meta_magic = 0x53535442 (* "SSTB" *)

(* Index + filter are persisted in a meta block so the table can be
   reopened after a restart (and they cost device writes, like RocksDB's
   index/filter blocks), even though the handle pins them in DRAM. *)
let encode_meta b bloom =
  let buf = Buffer.create 1024 in
  let blocks = List.rev b.b_blocks in
  Util.Varint.write buf (List.length blocks);
  List.iter
    (fun m ->
      Util.Varint.write_string buf m.last_key;
      Util.Varint.write buf m.off;
      Util.Varint.write buf m.len;
      Util.Varint.write buf m.entries;
      Util.Varint.write buf m.crc)
    blocks;
  Util.Varint.write_string buf (Bloom.serialize bloom);
  Util.Varint.write buf b.b_count;
  Util.Varint.write_string buf (match b.b_first_key with Some k -> k | None -> "");
  Util.Varint.write_string buf b.b_last_key;
  Util.Varint.write buf b.b_min_seq;
  Util.Varint.write buf b.b_max_seq;
  Util.Varint.write buf b.b_payload;
  (* fixed footer: u32 meta CRC (over the payload above) | u32 meta offset
     | u32 magic — the index that locates every other checksum is itself
     checksummed *)
  let add_u32 v =
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  add_u32 (Util.Crc32.string (Buffer.contents buf));
  add_u32 b.b_off;
  add_u32 meta_magic;
  Buffer.contents buf

let finish b =
  if b.b_count = 0 then invalid_arg "Sstable.finish: empty table";
  flush_block b;
  let bloom = Bloom.of_keys ~bits_per_key b.b_keys in
  Ssd.append b.b_ssd b.b_file (encode_meta b bloom);
  Ssd.seal b.b_ssd b.b_file;
  let blocks = Array.of_list (List.rev b.b_blocks) in
  {
    ssd = b.b_ssd;
    file = b.b_file;
    blocks;
    bloom;
    count = b.b_count;
    min_key = (match b.b_first_key with Some k -> k | None -> "");
    max_key = b.b_last_key;
    min_seq = b.b_min_seq;
    max_seq = b.b_max_seq;
    payload_bytes = b.b_payload;
    pinned = None;
    shared = None;
    dram_access_ns = dram_access_ns_default;
  }

let build ?block_bytes ssd entries =
  let b = create_builder ?block_bytes ssd in
  Array.iter (add b) entries;
  finish b

let of_sorted_list ?block_bytes ssd entries =
  let b = create_builder ?block_bytes ssd in
  List.iter (add b) entries;
  finish b

(* --- Reader ---------------------------------------------------------- *)

(* Reopen a sealed table from its file after a restart: the footer locates
   the meta block, which restores the index, the Bloom filter, and the
   statistics. Charged as one device read of the meta block. *)
let footer_bytes = 12

let open_existing ssd file =
  let size = Ssd.file_size file in
  if size < footer_bytes then invalid_arg "Sstable.open_existing: file too small";
  let footer = Ssd.pread ssd file ~off:(size - footer_bytes) ~len:footer_bytes in
  let u32 pos =
    let b k = Char.code footer.[pos + k] in
    (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
  in
  if u32 8 <> meta_magic then
    failwith "Sstable.open_existing: bad magic (not an SSTable, or torn write)";
  let meta_crc = u32 0 in
  let meta_off = u32 4 in
  if meta_off < 0 || meta_off > size - footer_bytes then
    raise (Corrupted_block { file_id = Ssd.file_id file; block = -1 });
  let meta = Ssd.pread ssd file ~off:meta_off ~len:(size - footer_bytes - meta_off) in
  if !verify_checksums && Util.Crc32.string meta <> meta_crc then
    raise (Corrupted_block { file_id = Ssd.file_id file; block = -1 });
  let block_count, pos = Util.Varint.read meta 0 in
  let pos = ref pos in
  let blocks =
    Array.init block_count (fun _ ->
        let last_key, p = Util.Varint.read_string meta !pos in
        let off, p = Util.Varint.read meta p in
        let len, p = Util.Varint.read meta p in
        let entries, p = Util.Varint.read meta p in
        let crc, p = Util.Varint.read meta p in
        pos := p;
        { last_key; off; len; entries; crc })
  in
  let bloom_raw, p = Util.Varint.read_string meta !pos in
  let bloom = Bloom.deserialize bloom_raw in
  let count, p = Util.Varint.read meta p in
  let min_key, p = Util.Varint.read_string meta p in
  let max_key, p = Util.Varint.read_string meta p in
  let min_seq, p = Util.Varint.read meta p in
  let max_seq, p = Util.Varint.read meta p in
  let payload_bytes, _ = Util.Varint.read meta p in
  {
    ssd;
    file;
    blocks;
    bloom;
    count;
    min_key;
    max_key;
    min_seq;
    max_seq;
    payload_bytes;
    pinned = None;
    shared = None;
    dram_access_ns = dram_access_ns_default;
  }

let count t = t.count
let byte_size t = Ssd.file_size t.file
let file_id t = Ssd.file_id t.file
let payload_bytes t = t.payload_bytes
let min_key t = t.min_key
let max_key t = t.max_key
let seq_range t = (t.min_seq, t.max_seq)
let block_count t = Array.length t.blocks

let attach_shared_cache t cache = t.shared <- Some cache

(* Drop every DRAM copy of this table's blocks — the pin and its entries in
   the shared cache. Must run whenever the file's bytes stop being
   authoritative: deletion, quarantine, or a salvage rewrite; otherwise a
   stale cached block could answer for data the device no longer holds. *)
let invalidate_cache t =
  t.pinned <- None;
  match t.shared with
  | Some c -> Cache.Block_cache.invalidate_file c ~file_id:(Ssd.file_id t.file)
  | None -> ()

let delete t =
  invalidate_cache t;
  Ssd.delete_file t.ssd t.file

(* Read block [i]: DRAM cost when the block is pinned or resident in the
   shared cache, SSD cost on miss (then admitted to the shared cache). The
   checksum persisted at build time detects bit rot and torn writes on the
   way in. *)
let read_block t i =
  let meta = t.blocks.(i) in
  let fetch () =
    let data = Ssd.pread t.ssd t.file ~off:meta.off ~len:meta.len in
    if !verify_checksums && Util.Crc32.string data <> meta.crc then
      raise (Corrupted_block { file_id = Ssd.file_id t.file; block = i });
    data
  in
  let pinned_hit =
    match t.pinned with
    | Some slots -> slots.(i)
    | None -> None
  in
  match pinned_hit with
  | Some data ->
      let dt = t.dram_access_ns +. (float_of_int meta.len *. dram_byte_ns) in
      Sim.Clock.advance (Ssd.clock t.ssd) dt;
      Obs.Attr.charge Obs.Attr.Cache_hit dt;
      data
  | None -> (
      match t.shared with
      | None -> fetch ()
      | Some cache -> (
          let fid = Ssd.file_id t.file in
          match Cache.Block_cache.find cache ~file_id:fid ~block:i with
          | Some data -> data
          | None ->
              let data = fetch () in
              Cache.Block_cache.insert cache ~file_id:fid ~block:i data;
              data))

(* Explicitly pin the whole table in DRAM (one sequential device read) —
   the knapsack's "SSTable in cache" placement. Pinned bytes sit outside
   the shared cache's budget on purpose: the pin is a planner decision,
   the cache is a reactive safety net. *)
let warm_cache t =
  t.pinned <-
    Some
      (Array.map
         (fun m -> Some (Ssd.pread t.ssd t.file ~off:m.off ~len:m.len))
         t.blocks)

let drop_cache t = t.pinned <- None

(* First block whose last_key >= key. *)
let locate_block t key =
  let n = Array.length t.blocks in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    (* Index resides in DRAM (pinned); charge a light touch. *)
    Sim.Clock.advance (Ssd.clock t.ssd) (t.dram_access_ns /. 4.0);
    if String.compare t.blocks.(mid).last_key key < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then None else Some !lo

(* Decode and visit a block's entries; [f] may raise to stop early (the
   caller handles it), decode CPU is charged per entry actually decoded. *)
let scan_block t data ~entries f =
  let pos = ref 0 in
  for _ = 1 to entries do
    let e, next = Util.Kv.decode data !pos in
    pos := next;
    charge_cpu t decode_cpu_ns;
    f e
  done

exception Found of Util.Kv.entry

let get ?(use_bloom = true) t key =
  if key < t.min_key || key > t.max_key then None
  else if use_bloom && not (Bloom.mem t.bloom key) then None
  else
    match locate_block t key with
    | None -> None
    | Some i -> (
        let data = read_block t i in
        (* Newest version of the key can spill into the next block when the
           block boundary splits a key's versions; check it if needed. *)
        let find_in_block idx =
          let data = if idx = i then data else read_block t idx in
          try
            scan_block t data ~entries:t.blocks.(idx).entries (fun e ->
                if e.Util.Kv.key = key then raise (Found e)
                else if String.compare e.key key > 0 then raise Exit);
            None
          with
          | Found e -> Some e
          | Exit -> None
        in
        match find_in_block i with
        | Some e -> Some e
        | None -> None)

let iter t f =
  Array.iteri
    (fun i meta ->
      let data = read_block t i in
      scan_block t data ~entries:meta.entries f)
    t.blocks

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let range t ~start ~stop f =
  if stop > t.min_key && start <= t.max_key then begin
    let i0 = match locate_block t start with None -> Array.length t.blocks | Some i -> i in
    (try
       for i = i0 to Array.length t.blocks - 1 do
         let data = read_block t i in
         scan_block t data ~entries:t.blocks.(i).entries (fun e ->
             if String.compare e.Util.Kv.key stop >= 0 then raise Exit
             else if String.compare e.key start >= 0 then f e)
       done
     with Exit -> ())
  end

let overlaps t ~min:lo ~max:hi =
  not (String.compare t.max_key lo < 0 || String.compare t.min_key hi > 0)

(* Full checksum walk from the medium (scrub): the meta block is re-read
   and re-verified — the handle's pinned DRAM index can outlive rot in the
   persisted copy — and every data block is read around the cache. Returns
   the failing block indices ([-1] for the meta block), [] when clean. *)
let verify t =
  if not !verify_checksums then []
  else begin
    let bad = ref [] in
    (try
       let size = Ssd.file_size t.file in
       if size < footer_bytes then bad := -1 :: !bad
       else begin
         let footer = Ssd.pread t.ssd t.file ~off:(size - footer_bytes) ~len:footer_bytes in
         let u32 pos =
           let b k = Char.code footer.[pos + k] in
           (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3
         in
         let meta_crc = u32 0 and meta_off = u32 4 in
         if
           u32 8 <> meta_magic
           || meta_off < 0
           || meta_off > size - footer_bytes
           ||
           let meta = Ssd.pread t.ssd t.file ~off:meta_off ~len:(size - footer_bytes - meta_off) in
           Util.Crc32.string meta <> meta_crc
         then bad := -1 :: !bad
       end
     with _ -> bad := -1 :: !bad);
    Array.iteri
      (fun i meta ->
        try
          let data = Ssd.pread t.ssd t.file ~off:meta.off ~len:meta.len in
          if Util.Crc32.string data <> meta.crc then bad := i :: !bad
        with _ -> bad := i :: !bad)
      t.blocks;
    List.rev !bad
  end

(* Salvage: decode every data block that still checksums. The lost key
   range is precise here — block [i] covers (blocks[i-1].last_key,
   blocks[i].last_key] — collapsed to one conservative span over all bad
   blocks. A bad meta block ([-1]) loses no data: the handle's pinned index
   still locates every (verified) data block. *)
let salvage_entries t =
  let bad = List.filter (fun i -> i >= 0) (verify t) in
  if bad = [] then (to_list t, None)
  else begin
    let survivors = ref [] in
    Array.iteri
      (fun i meta ->
        if not (List.mem i bad) then
          try
            let data = read_block t i in
            scan_block t data ~entries:meta.entries (fun e -> survivors := e :: !survivors)
          with _ -> ())
      t.blocks;
    let first_bad = List.fold_left min max_int bad in
    let last_bad = List.fold_left max (-1) bad in
    let lo = if first_bad = 0 then t.min_key else t.blocks.(first_bad - 1).last_key in
    let hi = t.blocks.(last_bad).last_key in
    (List.rev !survivors, Some (lo, hi))
  end

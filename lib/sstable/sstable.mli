(** SSTable on the simulated SSD, RocksDB-flavoured: ~4 KiB data blocks in
    key order, with the index and Bloom filter pinned in the DRAM handle.
    Data block reads hit the device, or a DRAM block cache when attached
    (the "SSTable in cache" configuration of Table I). *)

type t
type builder

val default_block_bytes : int

(** {1 Building} *)

val create_builder : ?block_bytes:int -> Ssd.t -> builder
val add : builder -> Util.Kv.entry -> unit
(** Entries must arrive in {!Util.Kv.compare_entry} order. *)

val estimated_size : builder -> int
val finish : builder -> t
(** Raises [Invalid_argument] when no entries were added. *)

val build : ?block_bytes:int -> Ssd.t -> Util.Kv.entry array -> t
val of_sorted_list : ?block_bytes:int -> Ssd.t -> Util.Kv.entry list -> t

(** {1 Reading} *)

val open_existing : Ssd.t -> Ssd.file -> t
(** Reopen a sealed table from its file after a restart: the persisted meta
    block restores the index, Bloom filter, and statistics. Raises
    [Failure] on a bad magic and {!Corrupted_block} (with [block = -1])
    when the meta block fails its checksum. *)

val file_id : t -> int
(** The underlying device file id (manifest-stable across restarts). *)

val count : t -> int
val byte_size : t -> int
val payload_bytes : t -> int
val min_key : t -> string
val max_key : t -> string
val seq_range : t -> int * int
val block_count : t -> int

val delete : t -> unit
(** Deletes the underlying file and invalidates every DRAM copy of its
    blocks (pin + shared cache). *)

val attach_shared_cache : t -> Cache.Block_cache.t -> unit
(** Route this table's block reads through the engine-wide capacity-bounded
    cache: misses are admitted, hits are charged DRAM latency. *)

val warm_cache : t -> unit
(** Explicitly pin the whole table in DRAM (one sequential device read) —
    the knapsack's "SSTable in cache" placement. Pinned bytes sit outside
    the shared cache's budget. *)

val drop_cache : t -> unit
(** Drop the {!warm_cache} pin (the shared cache is unaffected). *)

val invalidate_cache : t -> unit
(** Drop every DRAM copy of this table's blocks — the pin and its entries in
    the shared cache. Must run whenever the file's bytes stop being
    authoritative (quarantine, salvage rewrite); {!delete} calls it. *)

val get : ?use_bloom:bool -> t -> string -> Util.Kv.entry option
(** Newest version of the key. The Bloom filter screens absent keys unless
    [~use_bloom:false]. *)

val iter : t -> (Util.Kv.entry -> unit) -> unit
val to_list : t -> Util.Kv.entry list
val range : t -> start:string -> stop:string -> (Util.Kv.entry -> unit) -> unit
val overlaps : t -> min:string -> max:string -> bool

exception Corrupted_block of { file_id : int; block : int }
(** Raised by reads whose data block fails its persisted CRC32; [block = -1]
    means the meta block (index/filter/stats) failed instead. *)

(** {1 Integrity} *)

val verify : t -> int list
(** Full checksum walk from the medium (scrub): re-verifies the persisted
    meta block (the pinned DRAM index can outlive rot) and every data block
    around the cache. Returns failing block indices ([-1] for meta), [[]]
    when clean (and always [[]] while {!verify_checksums} is off). *)

val salvage_entries : t -> Util.Kv.entry list * (string * string) option
(** Entries of every data block that still checksums, in order, plus a
    conservative [lo, hi] bound on the keys lost with the failing blocks
    ([None] when nothing was lost). *)

val verify_checksums : bool ref
(** Kill switch for every CRC comparison in this module — exists so a fault
    sweep can plant the "forgot to verify checksums" bug and prove it gets
    caught. Leave it [true]. *)

(* Latency histogram with log-spaced buckets (HdrHistogram-style, coarse).

   Values are recorded in nanoseconds of simulated time. Buckets grow
   geometrically so percentile error is bounded by the bucket width (~2%)
   across the full range, which is plenty for reproducing latency *shapes*
   (avg / p50 / p99 / p99.9 series in Fig. 7b and Fig. 11). *)

let bucket_count = 1200

(* Bucket i covers [base^i, base^(i+1)); base chosen so 1ns..~1000s fits. *)
let base = 1.023

let log_base = Float.log base

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    counts = Array.make bucket_count 0;
    n = 0;
    sum = 0.0;
    sum_sq = 0.0;
    min = infinity;
    max = neg_infinity;
  }

let bucket_of value =
  if value < 1.0 then 0
  else
    let b = int_of_float (Float.log value /. log_base) in
    if b >= bucket_count then bucket_count - 1 else b

let record t value =
  let value = Float.max value 0.0 in
  t.counts.(bucket_of value) <- t.counts.(bucket_of value) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. value;
  t.sum_sq <- t.sum_sq +. (value *. value);
  if value < t.min then t.min <- value;
  if value > t.max then t.max <- value

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

(* Population standard deviation from the exact running moments (the
   bucketing does not coarsen it). *)
let stddev t =
  if t.n = 0 then 0.0
  else
    let m = mean t in
    Float.sqrt (Float.max 0.0 ((t.sum_sq /. float_of_int t.n) -. (m *. m)))

let min t = if t.n = 0 then 0.0 else t.min

let max t = if t.n = 0 then 0.0 else t.max

(* Midpoint of the bucket holding the q-quantile observation. *)
let percentile t q =
  if t.n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.of_int t.n *. q /. 100.0) in
    let rank = if rank >= t.n then t.n - 1 else rank in
    let seen = ref 0 in
    let result = ref t.max in
    (try
       for i = 0 to bucket_count - 1 do
         seen := !seen + t.counts.(i);
         if !seen > rank then begin
           result := Float.pow base (float_of_int i +. 0.5);
           raise Exit
         end
       done
     with Exit -> ());
    Float.min !result t.max |> Float.max t.min
  end

(* Occupied buckets as (inclusive upper bound, count) pairs, ascending —
   the shape histogram exporters need (e.g. Prometheus cumulative [le]
   buckets are a running sum over this list). *)
let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (Float.pow base (float_of_int (i + 1)), t.counts.(i)) :: !acc
  done;
  !acc

let merge into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  into.sum_sq <- into.sum_sq +. src.sum_sq;
  if src.n > 0 then begin
    if src.min < into.min then into.min <- src.min;
    if src.max > into.max then into.max <- src.max
  end

let reset t =
  Array.fill t.counts 0 bucket_count 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.sum_sq <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

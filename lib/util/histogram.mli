(** Log-bucketed latency histogram (nanoseconds of simulated time).

    Percentile error is bounded by the geometric bucket width (~2%), which is
    sufficient for reproducing avg / p99 / p99.9 latency series. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val mean : t -> float
val min : t -> float
val max : t -> float

val stddev : t -> float
(** Population standard deviation from exact running moments. *)

val buckets : t -> (float * int) list
(** Occupied buckets as (inclusive upper bound, count) pairs, ascending. *)

val percentile : t -> float -> float
(** [percentile t 99.9] is the value at the given percentile in [0, 100]. *)

val merge : t -> t -> unit
(** [merge into src] accumulates [src] into [into]; [src] is unchanged. *)

val reset : t -> unit

(* Measurement wrapper: runs a workload step function against an engine and
   aggregates what the figures need — throughput over simulated time and
   the engine's latency/WA/hit-ratio counters. *)

type summary = {
  ops : int;
  sim_seconds : float;
  throughput : float;  (* ops per simulated second *)
  read_avg_ns : float;
  read_p999_ns : float;
  write_avg_ns : float;
  scan_avg_ns : float;
  pm_hit_ratio : float;
  user_bytes : int;
  pm_bytes_written : int;
  ssd_bytes_written : int;
}

let measure ?sampler engine ~ops step =
  let clock = Core.Engine.clock engine in
  let metrics = Core.Engine.metrics engine in
  let t0 = Sim.Clock.now clock in
  let r0 = Util.Histogram.count metrics.Core.Metrics.read_latency in
  (match sampler with
  | None ->
      for i = 0 to ops - 1 do
        step i
      done
  | Some sampler ->
      for i = 0 to ops - 1 do
        step i;
        Obs.Sampler.tick sampler
      done;
      Obs.Sampler.force sampler);
  let elapsed = Sim.Clock.now clock -. t0 in
  ignore r0;
  {
    ops;
    sim_seconds = Sim.Clock.to_s elapsed;
    throughput = (if elapsed <= 0.0 then 0.0 else float_of_int ops /. Sim.Clock.to_s elapsed);
    read_avg_ns = Util.Histogram.mean metrics.Core.Metrics.read_latency;
    read_p999_ns = Util.Histogram.percentile metrics.Core.Metrics.read_latency 99.9;
    write_avg_ns = Util.Histogram.mean metrics.Core.Metrics.write_latency;
    scan_avg_ns = Util.Histogram.mean metrics.Core.Metrics.scan_latency;
    pm_hit_ratio = Core.Metrics.pm_hit_ratio metrics;
    user_bytes = Core.Engine.user_bytes engine;
    pm_bytes_written = Core.Engine.pm_bytes_written engine;
    ssd_bytes_written = Core.Engine.ssd_bytes_written engine;
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>ops: %d in %.3f sim-s (%.0f ops/s)@,read avg %a p99.9 %a@,write avg %a@,scan avg %a@,PM hit ratio %.2f@,bytes user/PM/SSD: %d / %d / %d@]"
    s.ops s.sim_seconds s.throughput Sim.Clock.pp_duration s.read_avg_ns
    Sim.Clock.pp_duration s.read_p999_ns Sim.Clock.pp_duration s.write_avg_ns
    Sim.Clock.pp_duration s.scan_avg_ns s.pm_hit_ratio s.user_bytes s.pm_bytes_written
    s.ssd_bytes_written

(** Measurement wrapper: runs a workload step function against an engine and
    aggregates throughput over simulated time plus the engine's
    latency / write-amplification / PM-hit counters. *)

type summary = {
  ops : int;
  sim_seconds : float;
  throughput : float;
  read_avg_ns : float;
  read_p999_ns : float;
  write_avg_ns : float;
  scan_avg_ns : float;
  pm_hit_ratio : float;
  user_bytes : int;
  pm_bytes_written : int;
  ssd_bytes_written : int;
}

val measure : ?sampler:Obs.Sampler.t -> Core.Engine.t -> ops:int -> (int -> unit) -> summary
(** [measure engine ~ops step] calls [step i] for each operation index and
    summarises the run. With [sampler], every operation also ticks the
    sampler (and a final row is forced), yielding over-time series
    alongside the aggregate summary. *)

val pp_summary : summary Fmt.t

(* Synthetic reconstruction of the Meituan online-retail workload of §VI-D.

   The paper describes: 10 tables of ~10 columns, 3 secondary indexes per
   table on frequently accessed columns, orders that insert rows into
   multiple tables (~100 KB per order, scaled here like everything else),
   status updates as the order progresses, and index queries (scan the
   index for row ids, then point-read the rows) biased strongly toward
   recent orders.

   Encoding: row keys are {tableID}{row id}; index keys are
   {tableID}{index id}{column value}#{row id} with ~120-byte index columns
   as the paper measures. Order ids increase monotonically; reads and
   updates choose orders zipfian-by-recency, which produces the hot/warm/
   cold lifecycle of the introduction. *)

type t = {
  rng : Util.Xoshiro.t;
  tables : int;
  indexes_per_table : int;
  row_bytes : int;        (* order row payload per table *)
  index_column_bytes : int;
  rows_per_order : int;   (* tables touched by one new order *)
  mutable next_order : int;
  recency_theta : float;
  mutable zipf_cache : (int * Util.Zipf.t) option;
}

let create ?(seed = 23) ?(tables = 10) ?(indexes_per_table = 3) ?(row_bytes = 256)
    ?(index_column_bytes = 120) ?(rows_per_order = 6) ?(recency_theta = 0.9) () =
  {
    rng = Util.Xoshiro.create seed;
    tables;
    indexes_per_table;
    row_bytes;
    index_column_bytes;
    rows_per_order;
    next_order = 0;
    recency_theta;
    zipf_cache = None;
  }

let order_count t = t.next_order

(* Deterministic per-order index column value: shared digits make keys
   prefix-compressible the way real index columns (user id, merchant id,
   city) are. *)
let index_column t ~order ~index_id =
  let base = Printf.sprintf "c%02d-%s" index_id (Util.Keys.fixed_int ~width:8 (order * 37 mod 99999989)) in
  base ^ String.make (max 0 (t.index_column_bytes - String.length base)) 'x'

let row_value t = Util.Xoshiro.string t.rng t.row_bytes

(* Insert one order: a row in each of [rows_per_order] tables plus its
   index entries. *)
let new_order_sink t (sink : Sink.t) =
  let order = t.next_order in
  t.next_order <- order + 1;
  for table_id = 0 to t.rows_per_order - 1 do
    let key = Util.Keys.record_key ~table_id ~row_id:order in
    sink.put ~update:false ~key (row_value t);
    for index_id = 0 to t.indexes_per_table - 1 do
      let column = index_column t ~order ~index_id in
      let ikey = Util.Keys.index_key ~table_id ~index_id ~column ~row_id:order in
      sink.put ~update:false ~key:ikey (Util.Keys.fixed_int ~width:12 order)
    done
  done

let recent_order t =
  let n = max 1 t.next_order in
  let z =
    match t.zipf_cache with
    | Some (cached_n, z) when n <= cached_n * 11 / 10 -> z
    | _ ->
        let z = Util.Zipf.create ~theta:t.recency_theta ~n t.rng in
        t.zipf_cache <- Some (n, z);
        z
  in
  let rank = Util.Zipf.next z mod n in
  n - 1 - rank

(* Update an order's status: rewrite its row in a couple of tables and
   refresh one index entry (a small random write — the index-table write
   amplification the paper calls out). *)
let update_order_sink t (sink : Sink.t) =
  if t.next_order > 0 then begin
    let order = recent_order t in
    let tables_touched = 1 + Util.Xoshiro.int t.rng 2 in
    for i = 0 to tables_touched - 1 do
      let table_id = i mod t.rows_per_order in
      let key = Util.Keys.record_key ~table_id ~row_id:order in
      sink.put ~update:true ~key (row_value t);
      let index_id = Util.Xoshiro.int t.rng t.indexes_per_table in
      let column = index_column t ~order ~index_id in
      let ikey = Util.Keys.index_key ~table_id ~index_id ~column ~row_id:order in
      sink.put ~update:true ~key:ikey (Util.Keys.fixed_int ~width:12 order)
    done
  end

(* Index query: scan the index for the column value to get row ids, then
   point-read each row (the two-step lookup of §VI-D). *)
let index_query_sink t (sink : Sink.t) =
  if t.next_order > 0 then begin
    let order = recent_order t in
    let table_id = Util.Xoshiro.int t.rng t.rows_per_order in
    let index_id = Util.Xoshiro.int t.rng t.indexes_per_table in
    let column = index_column t ~order ~index_id in
    let prefix = Util.Keys.index_scan_prefix ~table_id ~index_id ~column in
    let hits =
      sink.scan_range ~start:prefix ~stop:(Util.Keys.prefix_successor prefix)
    in
    List.iter
      (fun (_ikey, row_id) ->
        match int_of_string_opt row_id with
        | Some row_id ->
            ignore (sink.get (Util.Keys.record_key ~table_id ~row_id))
        | None -> ())
      hits
  end

(* Primary-key read of a recent order's main row. *)
let point_read_sink t (sink : Sink.t) =
  if t.next_order > 0 then begin
    let order = recent_order t in
    let table_id = Util.Xoshiro.int t.rng t.rows_per_order in
    ignore (sink.get (Util.Keys.record_key ~table_id ~row_id:order))
  end

(* Range scan over recent orders of one table (order history page). *)
let history_scan_sink t (sink : Sink.t) =
  if t.next_order > 0 then begin
    let order = recent_order t in
    let table_id = Util.Xoshiro.int t.rng t.rows_per_order in
    let start = Util.Keys.record_key ~table_id ~row_id:order in
    let stop = Util.Keys.record_key ~table_id ~row_id:(order + 20) in
    ignore (sink.scan_range ~start ~stop)
  end

(* One transaction of the mix: weights follow §VI-D's description — writes
   are inserts + many status updates; most reads are index queries. *)
let step_sink t sink =
  let p = Util.Xoshiro.float t.rng 1.0 in
  if p < 0.15 then new_order_sink t sink
  else if p < 0.45 then update_order_sink t sink
  else if p < 0.75 then index_query_sink t sink
  else if p < 0.95 then point_read_sink t sink
  else history_scan_sink t sink

let run_sink t sink ~transactions =
  for _ = 1 to transactions do
    step_sink t sink
  done

(* Load phase: create [orders] finished orders (insert + one update). *)
let load_sink t sink ~orders =
  for _ = 1 to orders do
    new_order_sink t sink;
    if Util.Xoshiro.float t.rng 1.0 < 0.5 then update_order_sink t sink
  done

(* Engine entry points: the classic single-engine API, as sink wrappers. *)
let new_order t engine = new_order_sink t (Sink.of_engine engine)
let update_order t engine = update_order_sink t (Sink.of_engine engine)
let index_query t engine = index_query_sink t (Sink.of_engine engine)
let point_read t engine = point_read_sink t (Sink.of_engine engine)
let history_scan t engine = history_scan_sink t (Sink.of_engine engine)
let step t engine = step_sink t (Sink.of_engine engine)
let run t engine ~transactions = run_sink t (Sink.of_engine engine) ~transactions
let load t engine ~orders = load_sink t (Sink.of_engine engine) ~orders

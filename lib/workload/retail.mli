(** Synthetic reconstruction of the Meituan online-retail workload (§VI-D):
    10 tables with 3 secondary indexes each, order inserts across tables,
    status updates biased to recent orders, and index queries implemented
    as index-prefix scans followed by point reads. *)

type t

val create :
  ?seed:int ->
  ?tables:int ->
  ?indexes_per_table:int ->
  ?row_bytes:int ->
  ?index_column_bytes:int ->
  ?rows_per_order:int ->
  ?recency_theta:float ->
  unit ->
  t

val order_count : t -> int

val new_order : t -> Core.Engine.t -> unit
val update_order : t -> Core.Engine.t -> unit
val index_query : t -> Core.Engine.t -> unit
val point_read : t -> Core.Engine.t -> unit
val history_scan : t -> Core.Engine.t -> unit

val step : t -> Core.Engine.t -> unit
(** One transaction of the §VI-D mix. *)

val run : t -> Core.Engine.t -> transactions:int -> unit

val load : t -> Core.Engine.t -> orders:int -> unit
(** Create [orders] finished orders (insert plus some updates). *)

(** {2 Sink variants} — the same generators against any {!Sink.t} (e.g.
    the sharded router front door). *)

val step_sink : t -> Sink.t -> unit
val run_sink : t -> Sink.t -> transactions:int -> unit
val load_sink : t -> Sink.t -> orders:int -> unit

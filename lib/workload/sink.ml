(* A store the workloads drive, as closures: the single engine and the
   sharded router both satisfy it, so every workload generator runs
   unchanged against either front door. *)

type t = {
  put : update:bool -> key:string -> string -> unit;
  delete : string -> unit;
  get : string -> string option;
  scan : start:string -> limit:int -> (string * string) list;
  scan_range : start:string -> stop:string -> (string * string) list;
}

let of_engine engine =
  {
    put = (fun ~update ~key value -> Core.Engine.put ~update engine ~key value);
    delete = (fun key -> Core.Engine.delete engine key);
    get = (fun key -> Core.Engine.get engine key);
    scan = (fun ~start ~limit -> Core.Engine.scan engine ~start ~limit);
    scan_range = (fun ~start ~stop -> Core.Engine.scan_range engine ~start ~stop);
  }

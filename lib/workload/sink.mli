(** A store under workload, as closures: the single engine and the sharded
    router both satisfy it, so the workload generators (YCSB, retail) run
    unchanged against either front door. *)

type t = {
  put : update:bool -> key:string -> string -> unit;
  delete : string -> unit;
  get : string -> string option;
  scan : start:string -> limit:int -> (string * string) list;
  scan_range : start:string -> stop:string -> (string * string) list;
}

val of_engine : Core.Engine.t -> t

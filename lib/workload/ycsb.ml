(* YCSB core workloads (Cooper et al., SoCC'10), reimplemented for the
   simulated engine. Key choosers and operation mixes follow the standard
   definitions:

     Load  100% insert
     A     50% read / 50% update          zipfian
     B     95% read /  5% update          zipfian
     C     100% read                      zipfian
     D     95% read /  5% insert          latest
     E     95% scan /  5% insert          zipfian, scan length U(1,100)
     F     50% read / 50% read-modify-write   zipfian

   Keys are "user" + zero-padded scrambled rank, values a single field of
   [value_bytes] (the paper loads 1 KB values). *)

type workload = Load | A | B | C | D | E | F

let name = function
  | Load -> "Load"
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"

let of_string = function
  | "load" | "Load" -> Load
  | "a" | "A" -> A
  | "b" | "B" -> B
  | "c" | "C" -> C
  | "d" | "D" -> D
  | "e" | "E" -> E
  | "f" | "F" -> F
  | s -> invalid_arg ("Ycsb.of_string: unknown workload " ^ s)

type t = {
  rng : Util.Xoshiro.t;
  mutable record_count : int;  (* keys inserted so far *)
  value_bytes : int;
  zipf_theta : float;
  max_scan_len : int;
  (* The zeta precomputation in Zipf.create is O(n); cache the chooser and
     rebuild only once the keyspace has grown by >10%. *)
  mutable zipf_cache : (int * Util.Zipf.t) option;
}

let create ?(seed = 11) ?(value_bytes = 1024) ?(zipf_theta = 0.99) ?(max_scan_len = 100) () =
  {
    rng = Util.Xoshiro.create seed;
    record_count = 0;
    value_bytes;
    zipf_theta;
    max_scan_len;
    zipf_cache = None;
  }

let key_of_rank rank = Util.Keys.ycsb_key rank

let value t = Util.Xoshiro.string t.rng t.value_bytes

let zipf t =
  let n = max 1 t.record_count in
  match t.zipf_cache with
  | Some (cached_n, z) when n <= cached_n * 11 / 10 -> z
  | _ ->
      let z = Util.Zipf.create ~theta:t.zipf_theta ~n t.rng in
      t.zipf_cache <- Some (n, z);
      z

(* Zipfian over the live keyspace, scrambled so hot keys spread out. *)
let zipf_key t =
  let n = max 1 t.record_count in
  key_of_rank (Util.Zipf.next_scrambled (zipf t) mod n)

(* "Latest": zipfian over recency — rank 0 is the newest insert. *)
let latest_key t =
  let n = max 1 t.record_count in
  let rank = Util.Zipf.next (zipf t) mod n in
  key_of_rank (max 0 (t.record_count - 1 - rank))

let insert_next_sink t (sink : Sink.t) =
  let key = key_of_rank t.record_count in
  t.record_count <- t.record_count + 1;
  sink.put ~update:false ~key (value t)

let load_sink t sink ~records =
  for _ = 1 to records do
    insert_next_sink t sink
  done

(* One operation of the given workload against the store. *)
let step_sink t (sink : Sink.t) workload =
  let p = Util.Xoshiro.float t.rng 1.0 in
  match workload with
  | Load -> insert_next_sink t sink
  | A ->
      if p < 0.5 then ignore (sink.get (zipf_key t))
      else sink.put ~update:true ~key:(zipf_key t) (value t)
  | B ->
      if p < 0.95 then ignore (sink.get (zipf_key t))
      else sink.put ~update:true ~key:(zipf_key t) (value t)
  | C -> ignore (sink.get (zipf_key t))
  | D ->
      if p < 0.95 then ignore (sink.get (latest_key t))
      else insert_next_sink t sink
  | E ->
      if p < 0.95 then
        let len = 1 + Util.Xoshiro.int t.rng t.max_scan_len in
        ignore (sink.scan ~start:(zipf_key t) ~limit:len)
      else insert_next_sink t sink
  | F ->
      if p < 0.5 then ignore (sink.get (zipf_key t))
      else begin
        let key = zipf_key t in
        ignore (sink.get key);
        sink.put ~update:true ~key (value t)
      end

let run_sink t sink workload ~ops =
  for _ = 1 to ops do
    step_sink t sink workload
  done

let load t engine ~records = load_sink t (Sink.of_engine engine) ~records
let step t engine workload = step_sink t (Sink.of_engine engine) workload
let run t engine workload ~ops = run_sink t (Sink.of_engine engine) workload ~ops
let record_count t = t.record_count

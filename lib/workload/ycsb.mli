(** YCSB core workloads (Load, A-F) with standard operation mixes and key
    choosers (zipfian, latest, scrambled), driving the simulated engine. *)

type workload = Load | A | B | C | D | E | F

val name : workload -> string
val of_string : string -> workload

type t

val create :
  ?seed:int -> ?value_bytes:int -> ?zipf_theta:float -> ?max_scan_len:int -> unit -> t

val load : t -> Core.Engine.t -> records:int -> unit
(** The YCSB load phase: insert [records] sequential-rank keys. *)

val step : t -> Core.Engine.t -> workload -> unit
(** Execute one operation of the given workload. *)

val run : t -> Core.Engine.t -> workload -> ops:int -> unit
val record_count : t -> int

(** {2 Sink variants} — the same generators against any {!Sink.t} (e.g.
    the sharded router front door). *)

val load_sink : t -> Sink.t -> records:int -> unit
val step_sink : t -> Sink.t -> workload -> unit
val run_sink : t -> Sink.t -> workload -> ops:int -> unit

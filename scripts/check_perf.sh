#!/bin/sh
# Perf-regression gate: run the attribution benchmark fresh and compare its
# scalar metrics against the committed baseline with per-metric tolerances
# (bin/perf_gate.exe). The simulation is deterministic, so an honest
# same-code rerun reproduces the baseline exactly; the gate fails on
# beyond-tolerance moves in a metric's bad direction, on a schema-version
# bump, or on a config-fingerprint change without a baseline refresh.
#
# Usage: scripts/check_perf.sh [BASELINE_JSON]   (default BENCH_attr.json)
#
# To refresh the baseline after an intentional perf change:
#   dune exec bench/main.exe -- attr --json BENCH_attr.json && git add BENCH_attr.json
set -eu

baseline="${1:-BENCH_attr.json}"

if [ ! -f "$baseline" ]; then
    echo "check_perf: baseline $baseline not found (generate it with:" >&2
    echo "  dune exec bench/main.exe -- attr --json $baseline)" >&2
    exit 1
fi

current="$(mktemp)"
trap 'rm -f "$current"' EXIT

dune exec bench/main.exe -- attr --json "$current"

dune exec bin/perf_gate.exe -- "$baseline" "$current"

#!/bin/sh
# Pipelined-compaction smoke check: run the pipeline benchmark and fail
# if the staged overlap is demonstrably broken — 4-core speedup below the
# 1.8x acceptance floor, any stage that never got busy (zero overlap
# work), either idleness figure not measurably below the serial baseline,
# or sanitizer findings inside the replay. The benchmark prints one
# machine-greppable line:
#
#   PIPELINE speedup4=S makespan4_ns=M serial_ns=T cpu_idle4=C io_idle4=I
#            serial_cpu_idle=SC serial_io_idle=SI read_busy=R merge_busy=G
#            build_busy=B write_busy=W races=N lost_wakeups=L
#
# The planted leg (PMB_PLANT=serial_pipeline) forces the stages serial;
# this script must then fail on the speedup floor — CI runs that leg and
# asserts the failure, proving the check has teeth.
#
# Usage: scripts/check_pipeline.sh [OUT_JSON]  (default BENCH_pipeline.json)
set -eu

out_json="${1:-BENCH_pipeline.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

dune exec bench/main.exe -- pipeline --json "$out_json" | tee "$log"

summary="$(grep -o 'PIPELINE [a-z0-9_.=[:space:]]*' "$log" | head -n 1)"
if [ -z "$summary" ]; then
    echo "check_pipeline: no PIPELINE summary line in benchmark output" >&2
    exit 1
fi

field() {
    echo "$summary" | tr ' ' '\n' | sed -n "s/^$1=//p"
}

speedup="$(field speedup4)"
cpu_idle="$(field cpu_idle4)"
io_idle="$(field io_idle4)"
serial_cpu_idle="$(field serial_cpu_idle)"
serial_io_idle="$(field serial_io_idle)"
races="$(field races)"
lost="$(field lost_wakeups)"

echo "check_pipeline: speedup4=$speedup cpu_idle4=$cpu_idle io_idle4=$io_idle" \
     "(serial: cpu $serial_cpu_idle io $serial_io_idle) races=$races"

fail=0
if [ "$(echo "$speedup" | awk '{print ($1 >= 1.8) ? 1 : 0}')" != 1 ]; then
    echo "check_pipeline: FAIL - 4-core pipeline speedup below 1.8x ($speedup)" >&2
    fail=1
fi
for stage in read merge build write; do
    busy="$(field ${stage}_busy)"
    if [ "$(echo "$busy" | awk '{print ($1 > 0) ? 1 : 0}')" != 1 ]; then
        echo "check_pipeline: FAIL - $stage stage shows zero busy time (no overlap work)" >&2
        fail=1
    fi
done
if [ "$(echo "$cpu_idle $serial_cpu_idle" | awk '{print ($1 < $2) ? 1 : 0}')" != 1 ]; then
    echo "check_pipeline: FAIL - bottleneck CPU idleness not below serial ($cpu_idle vs $serial_cpu_idle)" >&2
    fail=1
fi
if [ "$(echo "$io_idle $serial_io_idle" | awk '{print ($1 < $2) ? 1 : 0}')" != 1 ]; then
    echo "check_pipeline: FAIL - device idleness not below serial ($io_idle vs $serial_io_idle)" >&2
    fail=1
fi
if [ "$races" != 0 ] || [ "$lost" != 0 ]; then
    echo "check_pipeline: FAIL - sanitizer findings in the replay (races=$races lost_wakeups=$lost)" >&2
    fail=1
fi
exit $fail

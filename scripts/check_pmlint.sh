#!/bin/sh
# Static-analysis gate: run pmlint over lib/ and fail on any unsuppressed
# finding. Two legs:
#
#   - clean leg (default): `dune exec bin/pmlint.exe -- --json OUT lib`
#     must exit 0 — zero unsuppressed findings on the committed tree —
#     and the machine-readable report lands in OUT for the CI artifact.
#   - planted leg (PMB_PLANT=pmlint_fixture): the dirty fixture tree
#     under test/fixtures/pmlint/dirty joins the scan and pmlint must
#     exit NON-zero (18 planted violations across all five rules),
#     proving the analyzer still has teeth.
#
# Usage: scripts/check_pmlint.sh [OUT_JSON]  (default PMLINT.json)
set -eu
cd "$(dirname "$0")/.."

out_json="${1:-PMLINT.json}"

if [ "${PMB_PLANT:-}" = "pmlint_fixture" ]; then
    echo "check_pmlint: planted leg - the dirty fixtures must fail the scan"
    if dune exec bin/pmlint.exe -- --quiet --json "$out_json" \
         lib test/fixtures/pmlint/dirty; then
        echo "check_pmlint: FAIL - pmlint passed a tree with planted violations" >&2
        exit 1
    fi
    echo "check_pmlint: planted violations caught"
    exit 0
fi

dune exec bin/pmlint.exe -- --json "$out_json" lib
echo "check_pmlint: clean ($out_json written)"
